// Benchmarks: one testing.B target per paper table and figure, each driving
// the same experiment code that cmd/ibpsweep uses to regenerate the artifact
// (at reduced trace length and suite size so `go test -bench=.` stays
// tractable; run `ibpsweep -run <id>` for full-scale numbers), plus raw
// predictor throughput benchmarks.
package ibp_test

import (
	"testing"

	ibp "github.com/oocsb/ibp"
	"github.com/oocsb/ibp/internal/experiment"
	"github.com/oocsb/ibp/internal/workload"
)

// benchSuite returns a reduced benchmark suite covering all Table 3 groups.
func benchSuite(b *testing.B) []workload.Config {
	b.Helper()
	var out []workload.Config
	for _, name := range []string{"idl", "eqn", "xlisp", "perl", "gcc", "go"} {
		cfg, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, cfg)
	}
	return out
}

// runExperiment benchmarks one registered experiment end to end.
func runExperiment(b *testing.B, id string, traceLen int) {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	suite := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := experiment.NewContext(traceLen)
		ctx.Suite = suite
		tables, err := e.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// Benchmark characteristics and baselines.
func BenchmarkTable1Characteristics(b *testing.B) { runExperiment(b, "table1", 2000) }
func BenchmarkFig2BTB(b *testing.B)               { runExperiment(b, "fig2", 2000) }

// Unconstrained two-level design space.
func BenchmarkFig5HistorySharing(b *testing.B) { runExperiment(b, "fig5", 1000) }
func BenchmarkFig7TableSharing(b *testing.B)   { runExperiment(b, "fig7", 1000) }
func BenchmarkFig9PathLength(b *testing.B)     { runExperiment(b, "fig9", 1000) }

// Limited precision.
func BenchmarkFig10Precision(b *testing.B)  { runExperiment(b, "fig10", 600) }
func BenchmarkTable5XorConcat(b *testing.B) { runExperiment(b, "table5", 1000) }

// Resource constraints.
func BenchmarkFig11FullAssoc(b *testing.B)  { runExperiment(b, "fig11", 600) }
func BenchmarkFig12Assoc4096(b *testing.B)  { runExperiment(b, "fig12", 1000) }
func BenchmarkFig14Interleave(b *testing.B) { runExperiment(b, "fig14", 1000) }
func BenchmarkFig15Schemes(b *testing.B)    { runExperiment(b, "fig15", 1000) }
func BenchmarkFig16SizeAssoc(b *testing.B)  { runExperiment(b, "fig16", 400) }

// Hybrid predictors and the appendix.
func BenchmarkFig17HybridMatrix(b *testing.B)   { runExperiment(b, "fig17", 300) }
func BenchmarkFig18BestPredictors(b *testing.B) { runExperiment(b, "fig18", 200) }
func BenchmarkTable6HybridBest(b *testing.B)    { runExperiment(b, "table6", 200) }
func BenchmarkTableA1Appendix(b *testing.B)     { runExperiment(b, "tableA1", 200) }
func BenchmarkTableA2PathLengths(b *testing.B)  { runExperiment(b, "tableA2", 200) }

// Ablations of the paper's design claims.
func BenchmarkAblationUpdateRule(b *testing.B)    { runExperiment(b, "abl-update", 1000) }
func BenchmarkAblationCondTargets(b *testing.B)   { runExperiment(b, "abl-cond", 600) }
func BenchmarkAblationAddrTargets(b *testing.B)   { runExperiment(b, "abl-addr", 1000) }
func BenchmarkAblationMetapredictor(b *testing.B) { runExperiment(b, "abl-meta", 1000) }

// Extensions (related work and §8.1 future work).
func BenchmarkExtensionPPM(b *testing.B)            { runExperiment(b, "ext-ppm", 1000) }
func BenchmarkExtensionSharedHybrid(b *testing.B)   { runExperiment(b, "ext-shared", 1000) }
func BenchmarkExtensionThreeComponent(b *testing.B) { runExperiment(b, "ext-3comp", 1000) }
func BenchmarkExtensionNextBranch(b *testing.B)     { runExperiment(b, "ext-next", 1000) }
func BenchmarkExtensionUnevenHybrid(b *testing.B)   { runExperiment(b, "ext-uneven", 1000) }
func BenchmarkExtensionITTAGE(b *testing.B)         { runExperiment(b, "ext-ittage", 1000) }
func BenchmarkCostModel(b *testing.B)               { runExperiment(b, "cost", 1000) }
func BenchmarkRAS(b *testing.B)                     { runExperiment(b, "ras", 2000) }
func BenchmarkRelatedTargetCache(b *testing.B)      { runExperiment(b, "rel-tcache", 1000) }
func BenchmarkSiteClasses(b *testing.B)             { runExperiment(b, "sites", 2000) }
func BenchmarkLimits(b *testing.B)                  { runExperiment(b, "limits", 1500) }
func BenchmarkVMWorkloads(b *testing.B)             { runExperiment(b, "vm", 1000) }
func BenchmarkContextSwitch(b *testing.B)           { runExperiment(b, "ctxswitch", 1000) }

// Raw predictor throughput: nanoseconds per predicted branch. Predictor
// construction happens outside the timed sections so ns/branch and allocs/op
// measure the steady-state predict/update loop, not table allocation.
func benchPredictor(b *testing.B, mk func() ibp.Predictor) {
	b.Helper()
	tr := ibp.MustBenchmark("eqn", 50_000).Indirect()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := mk()
		b.StartTimer()
		for _, r := range tr {
			p.Predict(r.PC)
			p.Update(r.PC, r.Target)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/branch")
}

func BenchmarkPredictorBTB(b *testing.B) {
	benchPredictor(b, func() ibp.Predictor { return ibp.NewBTB(nil, ibp.UpdateTwoMiss) })
}

func BenchmarkPredictorTwoLevelBounded(b *testing.B) {
	benchPredictor(b, func() ibp.Predictor {
		return ibp.MustTwoLevel(ibp.Config{
			PathLength: 3, Precision: ibp.AutoPrecision,
			Scheme: ibp.Reverse, TableKind: "assoc4", Entries: 4096,
		})
	})
}

func BenchmarkPredictorTwoLevelExact(b *testing.B) {
	benchPredictor(b, func() ibp.Predictor {
		return ibp.MustTwoLevel(ibp.Config{PathLength: 6, Precision: 0, TableKind: "exact"})
	})
}

func BenchmarkPredictorHybrid(b *testing.B) {
	benchPredictor(b, func() ibp.Predictor {
		h, err := ibp.NewDualPath(3, 1, "assoc4", 2048)
		if err != nil {
			b.Fatal(err)
		}
		return h
	})
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	cfg, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := cfg.MustGenerate(20_000)
		if len(tr) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkVMDispatchTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := ibp.RunVMSample("tokens", ibp.VMOptions{TraceDispatch: true}); err != nil {
			b.Fatal(err)
		}
	}
}
