// Command ibpload drives an ibpserved instance: it replays generated
// benchmark traces through M concurrent sessions and reports per-benchmark
// miss rates plus aggregate throughput and frame-latency percentiles.
//
// Examples:
//
//	ibpload -addr 127.0.0.1:9670 -bench all -conns 4
//	ibpload -addr 127.0.0.1:9670 -bench gcc -n 200000 -frame 4096
//	ibpload -addr 127.0.0.1:9670 -bench all -pred btb-2bc -json
//	ibpload -addr 127.0.0.1:9680 -router -bench all -conns 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/serve"
	"github.com/oocsb/ibp/internal/workload"
)

type options struct {
	addr      string
	conns     int
	bench     string
	n         int
	frame     int
	window    int
	warmup    int
	events    bool
	retries   int
	backoff   time.Duration
	timeout   time.Duration
	seed      int64
	asJSON    bool
	router    bool
	tenant    string
	traceID   string
	traceDump string

	pf cli.PredictorFlags
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:9670", "ibpserved address")
	flag.IntVar(&o.conns, "conns", 4, "concurrent sessions")
	flag.StringVar(&o.bench, "bench", "all", "benchmark name or \"all\"")
	flag.IntVar(&o.n, "n", 20000, "indirect branches per generated benchmark")
	flag.IntVar(&o.frame, "frame", 2048, "records per frame (0 = server maximum)")
	flag.IntVar(&o.window, "window", 0, "requested frame window (0 = server default)")
	flag.IntVar(&o.warmup, "warmup", 0, "indirect branches excluded from accounting")
	flag.BoolVar(&o.events, "events", false, "request per-branch outcome events")
	flag.IntVar(&o.retries, "retries", 3, "dial retries per session")
	flag.DurationVar(&o.backoff, "backoff", 100*time.Millisecond, "initial retry backoff (doubles per attempt)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "dial and per-frame I/O timeout")
	flag.Int64Var(&o.seed, "seed", 1, "workload seed offset (added to each benchmark's suite seed)")
	flag.BoolVar(&o.asJSON, "json", false, "emit one JSON document instead of the table")
	flag.BoolVar(&o.router, "router", false, "target an ibprouter ingress: require per-session placement info and report failovers")
	flag.StringVar(&o.tenant, "tenant", "", "tenant tag pinned into each session's Hello (grouping key in /sessions and ibptop)")
	flag.StringVar(&o.traceID, "traceid", "", "pin per-session trace IDs (\"<prefix>-<benchmark>\") into the Hello so server-side flight recorders correlate")
	flag.StringVar(&o.traceDump, "tracedump", "", "write a client-side flight-recorder dump (send/ack stamps per frame) to this file")
	o.pf.Register(flag.CommandLine)
	flag.Parse()
	if err := realMain(o); err != nil {
		fmt.Fprintln(os.Stderr, "ibpload:", err)
		os.Exit(1)
	}
}

// benchResult is one session's outcome.
type benchResult struct {
	Benchmark string        `json:"benchmark"`
	Predictor string        `json:"predictor"`
	Records   int           `json:"records"`
	Frames    int           `json:"frames"`
	Executed  int           `json:"executed"`
	Misses    int           `json:"misses"`
	MissRate  float64       `json:"missRate"`
	Drained   bool          `json:"drained,omitempty"`
	Events    int           `json:"events,omitempty"`
	Backend   string        `json:"backend,omitempty"`
	Failovers int           `json:"failovers,omitempty"`
	Replayed  int           `json:"replayedFrames,omitempty"`
	Elapsed   time.Duration `json:"-"`
	ElapsedMS float64       `json:"elapsedMs"`
	Err       string        `json:"error,omitempty"`
}

// hopStats is one client-side duration family's percentile summary.
type hopStats struct {
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
}

func newHopStats(ds []time.Duration) hopStats {
	return hopStats{
		P50Ms:  percentileMS(ds, 0.50),
		P95Ms:  percentileMS(ds, 0.95),
		P99Ms:  percentileMS(ds, 0.99),
		P999Ms: percentileMS(ds, 0.999),
	}
}

// report is the aggregate -json document.
type report struct {
	Addr        string        `json:"addr"`
	Conns       int           `json:"conns"`
	Benchmarks  []benchResult `json:"benchmarks"`
	Records     int           `json:"records"`
	Elapsed     string        `json:"elapsed"`
	RecordsPS   float64       `json:"recordsPerSec"`
	LatencyP50  float64       `json:"frameLatencyP50Ms"`
	LatencyP95  float64       `json:"frameLatencyP95Ms"`
	LatencyP99  float64       `json:"frameLatencyP99Ms"`
	LatencyP999 float64       `json:"frameLatencyP999Ms"`
	// Hops breaks the client's view of a frame's life into its local
	// stages: window-wait (backpressure before the send), write (socket
	// flush), and rtt (send to ack).
	Hops           map[string]hopStats `json:"hops,omitempty"`
	Failed         int                 `json:"failed"`
	Failovers      int                 `json:"failovers"`
	ReplayedFrames int                 `json:"replayedFrames"`
}

func realMain(o options) error {
	if err := o.pf.Validate(); err != nil {
		return err
	}
	if err := cli.ValidateSeed(o.seed); err != nil {
		return err
	}
	if o.conns <= 0 {
		o.conns = 1
	}

	var cfgs []workload.Config
	if o.bench == "all" {
		cfgs = workload.Suite()
	} else {
		cfg, err := workload.ByName(o.bench)
		if err != nil {
			return err
		}
		cfgs = []workload.Config{cfg}
	}
	// -seed 1 replays the suite's canonical seeds; other values shift every
	// benchmark deterministically.
	for i := range cfgs {
		cfgs[i].Seed += uint64(o.seed - 1)
	}

	// A client-side flight recorder (for -tracedump): each frame's send and
	// ack stamps, fusable with the router's and backends' dumps.
	var rec *flight.Recorder
	if o.traceDump != "" {
		rec = flight.NewRecorder(flight.Options{Service: "ibpload", Capacity: 1 << 14})
	}

	// Round-robin the benchmarks over the connection workers; each worker
	// runs its benchmarks sequentially, one session per benchmark.
	var (
		mu        sync.Mutex
		results   []benchResult
		latencies []time.Duration
		timings   timingAgg
	)
	jobs := make(chan workload.Config)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cfg := range jobs {
				res, lats, tm := runBenchmark(o, cfg, rec)
				mu.Lock()
				results = append(results, res)
				latencies = append(latencies, lats...)
				timings.merge(tm)
				mu.Unlock()
			}
		}()
	}
	for _, cfg := range cfgs {
		jobs <- cfg
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(results, func(i, j int) bool { return results[i].Benchmark < results[j].Benchmark })
	rep := report{Addr: o.addr, Conns: o.conns, Benchmarks: results, Elapsed: elapsed.String()}
	for _, r := range results {
		rep.Records += r.Records
		rep.Failovers += r.Failovers
		rep.ReplayedFrames += r.Replayed
		if r.Err != "" {
			rep.Failed++
		}
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.RecordsPS = float64(rep.Records) / s
	}
	rep.LatencyP50 = percentileMS(latencies, 0.50)
	rep.LatencyP95 = percentileMS(latencies, 0.95)
	rep.LatencyP99 = percentileMS(latencies, 0.99)
	rep.LatencyP999 = percentileMS(latencies, 0.999)
	if len(timings.winWait) > 0 {
		rep.Hops = map[string]hopStats{
			"window-wait": newHopStats(timings.winWait),
			"write":       newHopStats(timings.write),
			"rtt":         newHopStats(timings.rtt),
		}
	}

	if o.traceDump != "" {
		if err := writeTraceDump(o.traceDump, rec); err != nil {
			return err
		}
	}
	if o.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printTable(rep)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d sessions failed", rep.Failed, len(results))
	}
	return nil
}

// timingAgg accumulates the client-side per-hop durations across sessions.
type timingAgg struct {
	winWait []time.Duration
	write   []time.Duration
	rtt     []time.Duration
}

func (a *timingAgg) merge(b timingAgg) {
	a.winWait = append(a.winWait, b.winWait...)
	a.write = append(a.write, b.write...)
	a.rtt = append(a.rtt, b.rtt...)
}

// runBenchmark generates one benchmark trace and streams it through a fresh
// session, collecting per-frame latencies and hop timings.
func runBenchmark(o options, cfg workload.Config, rec *flight.Recorder) (benchResult, []time.Duration, timingAgg) {
	res := benchResult{Benchmark: cfg.Name}
	var tm timingAgg
	tr, err := cfg.Generate(o.n)
	if err != nil {
		res.Err = err.Error()
		return res, nil, tm
	}
	pf := o.pf
	hello := serve.Hello{
		Benchmark: cfg.Name,
		Predictor: &pf,
		Warmup:    o.warmup,
		Events:    o.events,
		Window:    o.window,
		Tenant:    o.tenant,
	}
	if o.traceID != "" {
		// One trace ID per session, so (trace ID, seq) is unique across the
		// concurrent sessions when server-side dumps are fused.
		hello.TraceID = o.traceID + "-" + cfg.Name
	}
	begin := time.Now()
	c, err := serve.Dial(o.addr, hello, serve.DialOptions{
		Timeout: o.timeout,
		Retries: o.retries,
		Backoff: o.backoff,
	})
	if err != nil {
		res.Err = err.Error()
		return res, nil, tm
	}
	defer c.Close()
	if o.events {
		c.OnEvents = func(_ uint64, evs []serve.EventRec) { res.Events += len(evs) }
	}
	// The server (or router) echoes the effective trace ID — the one it
	// minted when the Hello carried none — so the client dump correlates
	// either way.
	tracer := rec.Tracer(c.Session().TraceID, c.Session().Session)
	c.OnTiming = func(t serve.FrameTiming) {
		tm.winWait = append(tm.winWait, t.WindowWait)
		tm.write = append(tm.write, t.Write)
		tm.rtt = append(tm.rtt, t.RTT)
		if tracer != nil {
			sp := tracer.Start(t.Seq)
			sp.StampAt(flight.HopClientSend, t.SentAt.UnixNano())
			sp.StampAt(flight.HopClientAck, t.AckedAt.UnixNano())
			sp.Finish()
		}
	}
	var lats []time.Duration
	sum, err := c.Stream(tr, o.frame, func(_ serve.Ack, rtt time.Duration) {
		if rtt > 0 {
			lats = append(lats, rtt)
		}
	})
	res.Elapsed = time.Since(begin)
	res.ElapsedMS = float64(res.Elapsed) / float64(time.Millisecond)
	if err != nil {
		res.Err = err.Error()
		return res, lats, tm
	}
	res.Predictor = sum.Predictor
	res.Records = sum.Records
	res.Frames = sum.Frames
	res.Executed = sum.Executed
	res.Misses = sum.Misses
	res.MissRate = sum.MissRate
	res.Drained = sum.Drained
	if sum.Router != nil {
		res.Backend = sum.Router.Backend
		res.Failovers = sum.Router.Failovers
		res.Replayed = sum.Router.ReplayedFrames
	} else if o.router {
		// -router promises cluster semantics; a summary without placement
		// info means the address is a plain ibpserved.
		res.Err = "no router placement info in summary (is the address an ibprouter?)"
	}
	return res, lats, tm
}

// percentileMS returns the p-th quantile (p in [0,1]) of ds in milliseconds
// (nearest rank on the sorted slice).
func percentileMS(ds []time.Duration, p float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(float64(len(sorted))*p)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// writeTraceDump serializes the client-side flight recorder in the same JSON
// shape as the /debug/flightrecorder endpoint, so ibpreport -flight fuses it
// with server-side dumps directly.
func writeTraceDump(path string, rec *flight.Recorder) error {
	b, err := json.MarshalIndent(rec.Dump(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func printTable(rep report) {
	fmt.Printf("%-10s %-28s %10s %8s %10s %8s %9s %10s\n",
		"benchmark", "predictor", "records", "frames", "executed", "misses", "miss%", "elapsed")
	for _, r := range rep.Benchmarks {
		if r.Err != "" {
			fmt.Printf("%-10s FAILED: %s\n", r.Benchmark, r.Err)
			continue
		}
		note := ""
		if r.Drained {
			note = " (drained)"
		}
		fmt.Printf("%-10s %-28s %10d %8d %10d %8d %8.2f%% %9.0fms%s\n",
			r.Benchmark, r.Predictor, r.Records, r.Frames, r.Executed, r.Misses,
			r.MissRate, r.ElapsedMS, note)
	}
	fmt.Printf("\n%d records in %s over %d conns — %.0f records/s; frame latency p50 %.2fms p95 %.2fms p99 %.2fms p999 %.2fms\n",
		rep.Records, rep.Elapsed, rep.Conns, rep.RecordsPS,
		rep.LatencyP50, rep.LatencyP95, rep.LatencyP99, rep.LatencyP999)
	if rep.Hops != nil {
		for _, name := range []string{"window-wait", "write", "rtt"} {
			h := rep.Hops[name]
			fmt.Printf("  %-12s p50 %.3fms p95 %.3fms p99 %.3fms p999 %.3fms\n",
				name, h.P50Ms, h.P95Ms, h.P99Ms, h.P999Ms)
		}
	}
	if rep.Failovers > 0 || rep.ReplayedFrames > 0 {
		fmt.Printf("%d failovers, %d frames replayed — every summary above is still bit-identical\n",
			rep.Failovers, rep.ReplayedFrames)
	}
}
