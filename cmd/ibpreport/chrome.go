package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// The sweep manifest is decoded with local types rather than importing
// ibpsweep's (commands don't import commands); only the fields the timeline
// needs are declared, so manifest schema growth doesn't break the export.
type sweepManifest struct {
	Version  int                   `json:"version"`
	TraceLen int                   `json:"trace_len"`
	Done     map[string]sweepEntry `json:"done"`
}

type sweepEntry struct {
	CompletedAt   time.Time          `json:"completed_at"`
	WallMs        int64              `json:"wall_ms"`
	Files         []string           `json:"files"`
	DegradedCells []string           `json:"degraded_cells"`
	Counters      map[string]float64 `json:"counters"`
}

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array (the JSON Perfetto and chrome://tracing load). "X" is a complete
// slice with a duration; "C" a counter sample; "M" process metadata.
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// writeChromeTrace converts an ibpsweep run manifest into a Chrome
// trace-event file: one slice per completed experiment on the sweep
// timeline (start inferred as completion minus wall time), plus cumulative
// counter tracks from each experiment's telemetry snapshot.
func writeChromeTrace(w io.Writer, manifestPath string) error {
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		return err
	}
	var m sweepManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("%s: corrupt manifest: %w", manifestPath, err)
	}
	if len(m.Done) == 0 {
		return fmt.Errorf("%s: no completed experiments", manifestPath)
	}

	type expRow struct {
		id    string
		entry sweepEntry
		start time.Time
	}
	rows := make([]expRow, 0, len(m.Done))
	for id, e := range m.Done {
		rows = append(rows, expRow{id, e, e.CompletedAt.Add(-time.Duration(e.WallMs) * time.Millisecond)})
	}
	// Start time, then id: a stable timeline whatever Go's map order did.
	sort.Slice(rows, func(i, j int) bool {
		if !rows[i].start.Equal(rows[j].start) {
			return rows[i].start.Before(rows[j].start)
		}
		return rows[i].id < rows[j].id
	})
	t0 := rows[0].start
	for _, r := range rows[1:] {
		if r.start.Before(t0) {
			t0 = r.start
		}
	}

	tr := chromeTrace{DisplayTimeUnit: "ms"}
	tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]any{"name": "ibpsweep"},
	})

	// Counter names present anywhere in the manifest, so every track exists
	// from the first sample (Perfetto draws gaps otherwise).
	counterNames := map[string]struct{}{}
	for _, r := range rows {
		for name := range r.entry.Counters {
			counterNames[name] = struct{}{}
		}
	}
	names := make([]string, 0, len(counterNames))
	for n := range counterNames {
		names = append(names, n)
	}
	sort.Strings(names)

	cumulative := make(map[string]float64, len(names))
	for _, r := range rows {
		args := map[string]any{"trace_len": m.TraceLen}
		if len(r.entry.Files) > 0 {
			args["files"] = r.entry.Files
		}
		if len(r.entry.DegradedCells) > 0 {
			args["degraded_cells"] = r.entry.DegradedCells
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: r.id, Ph: "X", Pid: 1, Tid: 1,
			Ts:   r.start.Sub(t0).Microseconds(),
			Dur:  r.entry.WallMs * 1000,
			Args: args,
		})
		ts := r.entry.CompletedAt.Sub(t0).Microseconds()
		for _, name := range names {
			cumulative[name] += r.entry.Counters[name]
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: name, Ph: "C", Pid: 1, Tid: 1, Ts: ts,
				Args: map[string]any{"value": cumulative[name]},
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}
