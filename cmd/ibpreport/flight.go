package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/oocsb/ibp/internal/flight"
)

// stampRow is one hop stamp of one span, ready for timeline sorting.
type stampRow struct {
	name string
	ns   int64
	ord  int // path order (flight.Hop), breaking ties at equal timestamps
}

// writeFlightTrace fuses one or more flight-recorder dumps — the
// /debug/flightrecorder JSON of ibprouter and ibpserved, or ibpload's
// -tracedump file — into a single Chrome trace-event timeline. Every dump
// becomes one process lane (pid) named after its service, every session a
// thread lane (tid); each hop stamp is an instant event named after the hop,
// and each consecutive pair of stamps a duration slice, so the frame's walk
// client → router → backend → back reads left to right across the lanes.
//
// All stamps share one normalized clock (microseconds since the earliest
// stamp in any dump), and every event carries the frame's trace ID and seq
// in args — the cross-process correlation key, which is why the router pins
// its minted trace ID into the Hello it forwards to backends.
func writeFlightTrace(w io.Writer, paths string) error {
	var files []string
	for _, p := range strings.Split(paths, ",") {
		if p = strings.TrimSpace(p); p != "" {
			files = append(files, p)
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("-flight: no dump files")
	}

	dumps := make([]flight.Dump, len(files))
	var t0 int64
	for i, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &dumps[i]); err != nil {
			return fmt.Errorf("%s: corrupt flight dump: %w", path, err)
		}
		for _, sp := range dumps[i].Spans {
			for _, ns := range sp.Hops {
				if ns > 0 && (t0 == 0 || ns < t0) {
					t0 = ns
				}
			}
		}
	}
	if t0 == 0 {
		return fmt.Errorf("-flight: dumps contain no hop stamps")
	}

	hopOrder := make(map[string]int, flight.NumHops)
	for h := flight.Hop(0); h < flight.NumHops; h++ {
		hopOrder[h.String()] = int(h)
	}

	tr := chromeTrace{DisplayTimeUnit: "ms"}
	for i, d := range dumps {
		pid := i + 1
		service := d.Service
		if service == "" {
			service = files[i]
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": service},
		})
		for _, sp := range d.Spans {
			rows := make([]stampRow, 0, len(sp.Hops))
			for name, ns := range sp.Hops {
				if ns > 0 {
					rows = append(rows, stampRow{name, ns, hopOrder[name]})
				}
			}
			sort.Slice(rows, func(a, b int) bool {
				if rows[a].ns != rows[b].ns {
					return rows[a].ns < rows[b].ns
				}
				return rows[a].ord < rows[b].ord
			})
			tid := int(sp.Session)
			args := map[string]any{"traceId": sp.TraceID, "seq": sp.Seq}
			if sp.Records > 0 {
				args["records"] = sp.Records
			}
			for j, row := range rows {
				ts := (row.ns - t0) / 1000
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: row.name, Ph: "i", Ts: ts, Pid: pid, Tid: tid, Args: args,
				})
				if j+1 < len(rows) {
					next := rows[j+1]
					tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
						Name: row.name + "→" + next.name, Ph: "X", Ts: ts,
						Dur: (next.ns - row.ns) / 1000, Pid: pid, Tid: tid, Args: args,
					})
				}
			}
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}
