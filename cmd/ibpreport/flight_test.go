package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/oocsb/ibp/internal/flight"
)

// writeDump records one span per (session, seq, stamps) tuple and writes the
// recorder's dump to dir/name, returning the path.
func writeDump(t *testing.T, dir, name, service string, stamp func(tr *flight.Tracer)) string {
	t.Helper()
	rec := flight.NewRecorder(flight.Options{Service: service, Capacity: 16})
	stamp(rec.Tracer("load-1", 7))
	b, err := json.Marshal(rec.Dump())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlightTraceFusion(t *testing.T) {
	dir := t.TempDir()
	// One frame (trace ID load-1, seq 3) observed by the router and a
	// backend, with a deliberate clock base well away from zero.
	const base = int64(1_700_000_000_000_000_000)
	router := writeDump(t, dir, "router.json", "ibprouter", func(tr *flight.Tracer) {
		sp := tr.Start(3)
		sp.StampAt(flight.HopRouterRecv, base)
		sp.StampAt(flight.HopRouterRelay, base+1_000)
		sp.StampAt(flight.HopRouterAckRecv, base+90_000)
		sp.StampAt(flight.HopRouterAckRelay, base+95_000)
		sp.Finish()
	})
	backend := writeDump(t, dir, "backend.json", "ibpserved-a", func(tr *flight.Tracer) {
		sp := tr.Start(3)
		sp.StampAt(flight.HopServerRecv, base+10_000)
		sp.StampAt(flight.HopServerEnqueue, base+11_000)
		sp.StampAt(flight.HopServerDequeue, base+20_000)
		sp.StampAt(flight.HopServerPredict, base+70_000)
		sp.StampAt(flight.HopServerAckWrite, base+80_000)
		sp.SetRecords(2048)
		sp.Finish()
	})

	var buf bytes.Buffer
	if err := writeFlightTrace(&buf, router+","+backend); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}

	procs := map[string]int{}
	hops := map[string]bool{}
	var slices int
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			procs[ev.Args["name"].(string)] = ev.Pid
		case "i":
			hops[ev.Name] = true
			if ev.Ts < 0 {
				t.Errorf("hop %q has negative ts %d", ev.Name, ev.Ts)
			}
			if ev.Args["traceId"] != "load-1" {
				t.Errorf("hop %q traceId = %v", ev.Name, ev.Args["traceId"])
			}
		case "X":
			slices++
			if ev.Dur < 0 {
				t.Errorf("slice %q has negative dur", ev.Name)
			}
		}
	}
	if procs["ibprouter"] == 0 || procs["ibpserved-a"] == 0 || procs["ibprouter"] == procs["ibpserved-a"] {
		t.Errorf("process lanes wrong: %v", procs)
	}
	if len(hops) < 6 {
		t.Errorf("fused timeline names %d hops, want >= 6: %v", len(hops), hops)
	}
	// Clock normalization: the router's recv stamp is the global minimum.
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "i" && ev.Name == flight.HopRouterRecv.String() && ev.Ts != 0 {
			t.Errorf("earliest hop ts = %d, want 0", ev.Ts)
		}
		if ev.Ph == "i" && ev.Name == flight.HopServerRecv.String() && ev.Ts != 10 {
			t.Errorf("server-recv ts = %d µs, want 10", ev.Ts)
		}
	}
	// 4 router stamps -> 3 slices, 5 backend stamps -> 4 slices.
	if slices != 7 {
		t.Errorf("slices = %d, want 7", slices)
	}
}

func TestFlightTraceBadInputs(t *testing.T) {
	if err := writeFlightTrace(&bytes.Buffer{}, ""); err == nil {
		t.Error("empty path list accepted")
	}
	if err := writeFlightTrace(&bytes.Buffer{}, "/nonexistent.json"); err == nil {
		t.Error("missing dump accepted")
	}
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.json")
	os.WriteFile(corrupt, []byte(`{nope`), 0o644)
	if err := writeFlightTrace(&bytes.Buffer{}, corrupt); err == nil {
		t.Error("corrupt dump accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"service":"x","spans":[]}`), 0o644)
	if err := writeFlightTrace(&bytes.Buffer{}, empty); err == nil {
		t.Error("stampless dump accepted")
	}
}
