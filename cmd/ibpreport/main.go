// Command ibpreport renders mispredict-attribution reports from the
// per-prediction event layer: for any benchmark × predictor cell of the
// sweep grid it captures the full event stream, classifies every miss
// (cold / conflict / alias / meta), and reports the top mispredicting
// branch sites with their polymorphism degree and transition entropy — the
// "why does this cell miss" companion to ibpsim's "how much does it miss".
//
// It also converts a sweep's run manifest into a Chrome trace-event file
// (load it in Perfetto or chrome://tracing) showing the sweep's experiment
// timeline and telemetry counters, and fuses flight-recorder dumps from
// ibpload, ibprouter, and ibpserved into one cross-process frame timeline.
//
// Examples:
//
//	ibpreport -bench perl -p 3 -table assoc4 -entries 1024
//	ibpreport -bench gcc -hybrid 3,1 -table assoc4 -entries 4096 -format json
//	ibpreport -bench xlisp -format csv -o xlisp.csv
//	ibpreport -chrome results/sweep/.sweep-manifest.json -o sweep.trace.json
//	ibpreport -flight router.json,backend.json,load.json -o frames.trace.json
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"github.com/oocsb/ibp/internal/analysis"
	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/experiment"
	"github.com/oocsb/ibp/internal/ptrace"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/workload"
)

type options struct {
	bench  string
	n      int
	warmup int

	pf cli.PredictorFlags

	top     int
	sample  int
	ring    int
	format  string
	out     string
	chrome  string
	flights string
}

func main() {
	var o options
	flag.StringVar(&o.bench, "bench", "", "benchmark name (required unless -chrome)")
	flag.IntVar(&o.n, "n", workload.DefaultBranches, "indirect branches to generate")
	flag.IntVar(&o.warmup, "warmup", 0, "indirect branches excluded from accounting")
	o.pf.Register(flag.CommandLine)
	flag.IntVar(&o.top, "top", 10, "number of branch sites to report")
	flag.IntVar(&o.sample, "sample", 1, "record every Nth event (1 = all; classes degrade when sampling)")
	flag.IntVar(&o.ring, "ring", 0, "event ring capacity (0 = size to the whole trace)")
	flag.StringVar(&o.format, "format", "text", "output format: text, json, csv")
	flag.StringVar(&o.out, "o", "", "output file (default stdout)")
	flag.StringVar(&o.chrome, "chrome", "", "convert a .sweep-manifest.json into a Chrome trace-event file instead")
	flag.StringVar(&o.flights, "flight", "", "fuse comma-separated flight-recorder dumps (/debug/flightrecorder JSON) into a Chrome trace-event timeline instead")
	flag.Parse()
	if err := realMain(o); err != nil {
		fmt.Fprintln(os.Stderr, "ibpreport:", err)
		os.Exit(1)
	}
}

func realMain(o options) error {
	w := io.Writer(os.Stdout)
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if o.chrome != "" {
		return writeChromeTrace(w, o.chrome)
	}
	if o.flights != "" {
		return writeFlightTrace(w, o.flights)
	}
	if o.bench == "" {
		return fmt.Errorf("need -bench (or -chrome, or -flight)")
	}
	rep, err := buildReport(o)
	if err != nil {
		return err
	}
	switch o.format {
	case "text":
		return renderText(w, rep)
	case "json":
		return renderJSON(w, rep)
	case "csv":
		return renderCSV(w, rep)
	}
	return fmt.Errorf("unknown format %q (want text, json, csv)", o.format)
}

// Report is the attribution report for one benchmark × predictor cell; the
// JSON rendering marshals it directly.
type Report struct {
	Benchmark   string `json:"benchmark"`
	Predictor   string `json:"predictor"`
	TraceLen    int    `json:"trace_len"`
	Warmup      int    `json:"warmup"`
	SampleEvery int    `json:"sample_every"`
	// Events counts captured events; Complete reports whether they cover
	// every dynamic indirect branch (no sampling, no ring overwrite) —
	// when false, miss classes are a lower-bound estimate.
	Events   int  `json:"events"`
	Complete bool `json:"complete"`

	Executed int     `json:"executed"`
	Misses   int     `json:"misses"`
	MissPct  float64 `json:"miss_pct"`
	// ByClass counts misses per class ("cold", "conflict", "alias",
	// "meta"); classes with zero misses are present with value 0.
	ByClass map[string]int `json:"miss_classes"`
	// Branches are the top mispredicting sites, worst first.
	Branches []BranchRow `json:"branches"`
}

// BranchRow is one branch site in the report.
type BranchRow struct {
	PC       string  `json:"pc"`
	Executed int     `json:"executed"`
	Misses   int     `json:"misses"`
	MissPct  float64 `json:"miss_pct"`
	Targets  int     `json:"targets"`
	Entropy  float64 `json:"transition_entropy"`
	Cold     int     `json:"cold"`
	Conflict int     `json:"conflict"`
	Alias    int     `json:"alias"`
	Meta     int     `json:"meta"`
}

func buildReport(o options) (*Report, error) {
	bench, err := workload.ByName(o.bench)
	if err != nil {
		return nil, err
	}
	if err := o.pf.Validate(); err != nil {
		return nil, err
	}
	probe, err := o.pf.Build()
	if err != nil {
		return nil, err
	}
	ring := o.ring
	if ring <= 0 {
		ring = o.n
	}
	sink := ptrace.NewEventSink(ring, o.sample)
	ectx := experiment.NewContext(o.n)
	spec := experiment.SweepSpec{
		Mk:   func() (core.Predictor, error) { return o.pf.Build() },
		Opts: sim.Options{Warmup: o.warmup},
	}
	res, err := ectx.RunEvents(bench, spec, sink)
	if err != nil {
		return nil, err
	}
	attr := analysis.Attribute(sink.Events())

	rep := &Report{
		Benchmark:   bench.Name,
		Predictor:   probe.Name(),
		TraceLen:    o.n,
		Warmup:      o.warmup,
		SampleEvery: sink.SampleEvery(),
		Events:      sink.Len(),
		Complete:    sink.Complete(),
		Executed:    res.Executed,
		Misses:      res.Misses,
		MissPct:     res.MissRate(),
		ByClass:     make(map[string]int, 4),
	}
	for _, c := range analysis.MissClasses() {
		rep.ByClass[c] = attr.ByClass[c]
	}
	for _, b := range attr.Top(o.top) {
		rep.Branches = append(rep.Branches, BranchRow{
			PC:       fmt.Sprintf("%08x", b.PC),
			Executed: b.Executed,
			Misses:   b.Misses,
			MissPct:  100 * b.MissRate(),
			Targets:  b.Targets,
			Entropy:  b.TransitionEntropy,
			Cold:     b.ByClass[analysis.MissCold],
			Conflict: b.ByClass[analysis.MissConflict],
			Alias:    b.ByClass[analysis.MissAlias],
			Meta:     b.ByClass[analysis.MissMeta],
		})
	}
	return rep, nil
}

func renderText(w io.Writer, r *Report) error {
	fmt.Fprintf(w, "benchmark: %s\npredictor: %s\n", r.Benchmark, r.Predictor)
	fmt.Fprintf(w, "trace: %d branches, %d warmup\n", r.TraceLen, r.Warmup)
	coverage := "complete"
	if !r.Complete {
		coverage = fmt.Sprintf("partial (sample every %d); classes are lower bounds", r.SampleEvery)
	}
	fmt.Fprintf(w, "events: %d (%s)\n\n", r.Events, coverage)
	fmt.Fprintf(w, "executed %d, missed %d (%.2f%%)\n", r.Executed, r.Misses, r.MissPct)
	fmt.Fprintf(w, "miss classes: cold %d, conflict %d, alias %d, meta %d\n\n",
		r.ByClass[analysis.MissCold], r.ByClass[analysis.MissConflict],
		r.ByClass[analysis.MissAlias], r.ByClass[analysis.MissMeta])
	fmt.Fprintf(w, "top %d mispredicting branches:\n", len(r.Branches))
	fmt.Fprintf(w, "%-10s %9s %8s %7s %8s %8s %6s %8s %6s %5s\n",
		"pc", "executed", "misses", "miss%", "targets", "entropy", "cold", "conflict", "alias", "meta")
	for _, b := range r.Branches {
		fmt.Fprintf(w, "%-10s %9d %8d %7.2f %8d %8.3f %6d %8d %6d %5d\n",
			b.PC, b.Executed, b.Misses, b.MissPct, b.Targets, b.Entropy,
			b.Cold, b.Conflict, b.Alias, b.Meta)
	}
	return nil
}

func renderJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func renderCSV(w io.Writer, r *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pc", "executed", "misses", "miss_pct",
		"targets", "transition_entropy", "cold", "conflict", "alias", "meta"}); err != nil {
		return err
	}
	for _, b := range r.Branches {
		rec := []string{
			b.PC,
			strconv.Itoa(b.Executed),
			strconv.Itoa(b.Misses),
			strconv.FormatFloat(b.MissPct, 'f', 2, 64),
			strconv.Itoa(b.Targets),
			strconv.FormatFloat(b.Entropy, 'f', 3, 64),
			strconv.Itoa(b.Cold),
			strconv.Itoa(b.Conflict),
			strconv.Itoa(b.Alias),
			strconv.Itoa(b.Meta),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
