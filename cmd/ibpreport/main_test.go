package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/cli"
)

// reportOpts is the committed-golden configuration: a paper benchmark (idl,
// the IDL compiler of Table 3) under a bounded two-level predictor small
// enough to show alias misses at n=4000.
func reportOpts() options {
	return options{
		bench: "idl", n: 4000, warmup: 100,
		pf: cli.PredictorFlags{
			Pred: "2lev", Path: 2, HistShare: 32, TabShare: 2,
			Precision: -1, Scheme: "reverse", KeyOp: "xor",
			Table: "assoc4", Entries: 512, Update: "2bc",
		},
		top: 10, sample: 1, format: "text",
	}
}

// golden compares got against testdata/name; the committed files pin the
// deterministic top-10 mispredicting-branch table with its miss-class
// breakdown (regenerate by running the documented command when the
// simulation intentionally changes).
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from testdata/%s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTextReport(t *testing.T) {
	rep, err := buildReport(reportOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := renderText(&buf, rep); err != nil {
		t.Fatal(err)
	}
	golden(t, "report_idl.txt", buf.Bytes())
}

func TestGoldenCSVReport(t *testing.T) {
	rep, err := buildReport(reportOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := renderCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	golden(t, "report_idl.csv", buf.Bytes())
}

func TestReportInvariants(t *testing.T) {
	rep, err := buildReport(reportOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Error("full-ring unsampled capture reported incomplete")
	}
	if rep.Events != rep.TraceLen {
		t.Errorf("captured %d events over %d branches", rep.Events, rep.TraceLen)
	}
	classTotal := 0
	for _, n := range rep.ByClass {
		classTotal += n
	}
	if classTotal != rep.Misses {
		t.Errorf("classes sum to %d, misses are %d — every miss must be classified", classTotal, rep.Misses)
	}
	if len(rep.Branches) != 10 {
		t.Errorf("got %d branch rows, want top 10", len(rep.Branches))
	}
	for i := 1; i < len(rep.Branches); i++ {
		a, b := rep.Branches[i-1], rep.Branches[i]
		if a.Misses < b.Misses || (a.Misses == b.Misses && a.PC >= b.PC) {
			t.Errorf("rows %d/%d out of order: %+v then %+v", i-1, i, a, b)
		}
	}
}

func TestJSONRoundTrips(t *testing.T) {
	rep, err := buildReport(reportOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := renderJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Misses != rep.Misses || len(back.Branches) != len(rep.Branches) {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestSampledCaptureIsMarkedPartial(t *testing.T) {
	o := reportOpts()
	o.sample = 7
	rep, err := buildReport(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Error("sampled capture claims completeness")
	}
	var buf bytes.Buffer
	if err := renderText(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "partial") {
		t.Error("text report hides partial coverage")
	}
}

func TestChromeTraceExport(t *testing.T) {
	var buf bytes.Buffer
	if err := writeChromeTrace(&buf, filepath.Join("testdata", "manifest.json")); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", tr.DisplayTimeUnit)
	}
	var slices, counters int
	var sawFig2, sawFig9 bool
	for _, ev := range tr.TraceEvents {
		if ev.Ts < 0 {
			t.Errorf("negative timestamp on %q", ev.Name)
		}
		switch ev.Ph {
		case "X":
			slices++
			switch ev.Name {
			case "fig2":
				sawFig2 = true
				if ev.Ts != 0 || ev.Dur != 2_000_000 {
					t.Errorf("fig2 slice ts=%d dur=%d, want 0/2000000", ev.Ts, ev.Dur)
				}
			case "fig9":
				sawFig9 = true
				if ev.Dur != 5_000_000 {
					t.Errorf("fig9 dur=%d, want 5000000", ev.Dur)
				}
			}
		case "C":
			counters++
			if ev.Name == "sim_records_total" && ev.Ts == 5_000_000 {
				// fig9 completes last: the cumulative track must have
				// folded fig2's 400 in by then.
				if v := ev.Args["value"].(float64); v != 1400 {
					t.Errorf("cumulative sim_records_total = %v, want 1400", v)
				}
			}
		}
	}
	if !sawFig2 || !sawFig9 || slices != 2 {
		t.Errorf("slices=%d fig2=%v fig9=%v", slices, sawFig2, sawFig9)
	}
	if counters == 0 {
		t.Error("no counter tracks emitted")
	}
}

func TestChromeTraceBadInputs(t *testing.T) {
	if err := writeChromeTrace(&bytes.Buffer{}, "/nonexistent.json"); err == nil {
		t.Error("missing manifest accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"version":2,"done":{}}`), 0o644)
	if err := writeChromeTrace(&bytes.Buffer{}, empty); err == nil {
		t.Error("empty manifest accepted")
	}
	corrupt := filepath.Join(dir, "corrupt.json")
	os.WriteFile(corrupt, []byte(`{nope`), 0o644)
	if err := writeChromeTrace(&bytes.Buffer{}, corrupt); err == nil {
		t.Error("corrupt manifest accepted")
	}
}

func TestBadReportOptions(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.bench = "nonesuch" },
		func(o *options) { o.pf.Pred = "nonesuch" },
		func(o *options) { o.pf.Table = "nonesuch" },
	}
	for i, mod := range cases {
		o := reportOpts()
		mod(&o)
		if _, err := buildReport(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := realMain(options{}); err == nil {
		t.Error("no -bench and no -chrome accepted")
	}
	o := reportOpts()
	o.format = "nonesuch"
	if err := realMain(o); err == nil {
		t.Error("unknown format accepted")
	}
}
