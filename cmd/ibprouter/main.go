// Command ibprouter is the fault-tolerant cluster ingress for a fleet of
// ibpserved backends. Clients speak the ordinary IBPT wire protocol to the
// router; the router places each session onto a backend by consistent
// hashing of its first record's PC, health-checks the fleet, and keeps a
// bounded per-session frame journal so that a backend dying mid-session is
// repaired by replaying the session prefix onto a survivor — the client's
// final summary is bit-identical to an uninterrupted run.
//
// SIGTERM or SIGINT drains the router gracefully: no new sessions are
// accepted and live ones run to completion within the drain budget.
//
// Examples:
//
//	ibprouter -addr 127.0.0.1:9680 -backends 127.0.0.1:9670,127.0.0.1:9671
//	ibprouter -backends host1:9670,host2:9670 -probe 500ms -fails 2 -metrics 127.0.0.1:9092
//	ibprouter -backends host1:9670,host2:9670 -journal 16777216 -summaryjson run.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/cluster"
	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/sessiontrack"
	"github.com/oocsb/ibp/internal/telemetry"
)

type options struct {
	addr           string
	backends       string
	backendMetrics string
	window       int
	maxRecords   int
	maxPayload   int
	journalBytes int64
	probe        time.Duration
	probeTimeout time.Duration
	fails        int
	rises        int
	dialTimeout  time.Duration
	dialRetries  int
	dialBackoff  time.Duration
	maxBackoff   time.Duration
	vnodes       int
	readTimeout  time.Duration
	writeTimeout time.Duration
	drainTimeout time.Duration
	metricsAddr  string
	summaryJSON  string
	logLevel     string
	flightCap    int
	slo          time.Duration
	tunerPolicy  string
	readOnly     bool

	pf cli.PredictorFlags
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:9680", "listen address")
	flag.StringVar(&o.backends, "backends", "", "comma-separated ibpserved addresses (required)")
	flag.StringVar(&o.backendMetrics, "backendmetrics", "", "comma-separated backend -metrics addresses, parallel to -backends; enables the cluster-wide /sessions fan-in")
	flag.IntVar(&o.window, "window", 0, "max unacknowledged frames per session (0 = default)")
	flag.IntVar(&o.maxRecords, "maxrecords", 0, "max records per frame (0 = default)")
	flag.IntVar(&o.maxPayload, "maxpayload", 0, "max frame payload bytes (0 = default)")
	flag.Int64Var(&o.journalBytes, "journal", 0, "per-session replay journal budget in bytes (0 = default 64 MiB, negative = unbounded)")
	flag.DurationVar(&o.probe, "probe", 0, "health probe interval (0 = default)")
	flag.DurationVar(&o.probeTimeout, "probetimeout", 0, "per-probe connect timeout (0 = default)")
	flag.IntVar(&o.fails, "fails", 0, "consecutive probe failures to mark a backend down (0 = default)")
	flag.IntVar(&o.rises, "rises", 0, "consecutive probe successes for a down backend to rejoin (0 = default)")
	flag.DurationVar(&o.dialTimeout, "dialtimeout", 0, "per-attempt backend dial timeout (0 = default)")
	flag.IntVar(&o.dialRetries, "dialretries", 0, "backend dial retries per candidate (0 = default)")
	flag.DurationVar(&o.dialBackoff, "dialbackoff", 0, "initial backend dial backoff (0 = default)")
	flag.DurationVar(&o.maxBackoff, "maxdialbackoff", 0, "backend dial backoff cap (0 = default)")
	flag.IntVar(&o.vnodes, "vnodes", 0, "virtual nodes per backend on the placement ring (0 = default)")
	flag.DurationVar(&o.readTimeout, "readtimeout", 0, "per-frame client read timeout (0 = default)")
	flag.DurationVar(&o.writeTimeout, "writetimeout", 0, "client flush timeout (0 = default)")
	flag.DurationVar(&o.drainTimeout, "draintimeout", 30*time.Second, "graceful drain budget after SIGTERM/SIGINT")
	flag.StringVar(&o.metricsAddr, "metrics", "", "serve /metrics and /vars on this address")
	flag.StringVar(&o.summaryJSON, "summaryjson", "", "write a JSON run summary to this file on exit")
	flag.StringVar(&o.logLevel, "log", "info", "structured log level: debug, info, warn, error, off")
	flag.IntVar(&o.flightCap, "flightrecorder", 0, "trace the last N frames in an in-memory flight recorder (0 = off, served at /debug/flightrecorder on the -metrics address)")
	flag.DurationVar(&o.slo, "slo", 0, "log a per-hop breakdown for frames slower than this end to end (0 = off; needs -flightrecorder)")
	flag.StringVar(&o.tunerPolicy, "tunerpolicy", "", "tuner policy pinned into forwarded Hellos so every backend (including failover replacements) tunes identically; backends need -tuner")
	flag.BoolVar(&o.readOnly, "readonly", false, "reject mutating admin verbs (kill/drain/retune) on the -metrics mux")
	o.pf.Register(flag.CommandLine)
	flag.Parse()
	if err := realMain(o); err != nil {
		fmt.Fprintln(os.Stderr, "ibprouter:", err)
		os.Exit(1)
	}
}

// runSummary is the -summaryjson artifact: the final fleet state plus the
// router's counters, enough for CI to assert a clean drain and zero lost
// sessions.
type runSummary struct {
	Addr     string                  `json:"addr"`
	Backends []cluster.BackendStatus `json:"backends"`
	Graceful bool                    `json:"graceful"`
	Signal   string                  `json:"signal,omitempty"`
	Uptime   string                  `json:"uptime"`
	Flight   *flight.Stats           `json:"flight,omitempty"`
	Metrics  telemetry.Snapshot      `json:"metrics,omitempty"`
}

func realMain(o options) error {
	level, err := telemetry.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	log := telemetry.NewLogger(os.Stderr, level)
	if err := o.pf.Validate(); err != nil {
		return err
	}
	backends := splitBackends(o.backends)
	if len(backends) == 0 {
		return errors.New("no backends: pass -backends host:port[,host:port...]")
	}
	var backendMetrics map[string]string
	if o.backendMetrics != "" {
		maddrs := splitBackends(o.backendMetrics)
		if len(maddrs) != len(backends) {
			return fmt.Errorf("-backendmetrics has %d entries, -backends has %d (they are parallel lists)", len(maddrs), len(backends))
		}
		backendMetrics = make(map[string]string, len(maddrs))
		for i, addr := range backends {
			backendMetrics[addr] = maddrs[i]
		}
	}

	// The registry must exist before cluster.New resolves its handles.
	var reg *telemetry.Registry
	if o.metricsAddr != "" || o.summaryJSON != "" {
		reg = telemetry.Enable(nil)
	}
	var rec *flight.Recorder
	if o.flightCap > 0 {
		rec = flight.NewRecorder(flight.Options{
			Service:  "ibprouter",
			Capacity: o.flightCap,
			SLO:      o.slo,
			Log:      log,
		})
		log.Info("flight recorder on", "capacity", o.flightCap, "slo", o.slo)
	}
	// The router exists before the metrics mux so its session registry and
	// the cluster fan-in can be mounted at /sessions*.
	r, err := cluster.New(cluster.Config{
		Backends:        backends,
		BackendMetrics:  backendMetrics,
		Predictor:       o.pf,
		Window:          o.window,
		MaxFramePayload: o.maxPayload,
		MaxFrameRecords: o.maxRecords,
		JournalBytes:    o.journalBytes,
		ReadTimeout:     o.readTimeout,
		WriteTimeout:    o.writeTimeout,
		DialTimeout:     o.dialTimeout,
		DialRetries:     o.dialRetries,
		DialBackoff:     o.dialBackoff,
		MaxDialBackoff:  o.maxBackoff,
		ProbeInterval:   o.probe,
		ProbeTimeout:    o.probeTimeout,
		FailThreshold:   o.fails,
		RiseThreshold:   o.rises,
		VirtualNodes:    o.vnodes,
		Flight:          rec,
		TunerPolicy:     o.tunerPolicy,
		Log:             log,
	})
	if err != nil {
		return err
	}
	if o.metricsAddr != "" {
		mounts := []func(*http.ServeMux){
			func(mux *http.ServeMux) {
				sessiontrack.Mount(mux, sessiontrack.HTTPConfig{
					// The fan-in merges backend /sessions into the cluster
					// view; /sessions/local stays the router's own registry.
					Source:    r.Fanin(0),
					Local:     r.Sessions(),
					Telemetry: reg,
					Flight:    rec,
					ReadOnly:  o.readOnly,
				})
			},
		}
		if rec != nil {
			mounts = append(mounts, func(mux *http.ServeMux) {
				mux.Handle("/debug/flightrecorder", rec.Handler())
			})
		}
		msrv, maddr, err := telemetry.ServeMetrics(o.metricsAddr, reg, mounts...)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer msrv.Close()
		log.Info("metrics endpoint up", "addr", maddr)
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	start := time.Now()
	fmt.Printf("ibprouter: listening on %s, %d backends\n", ln.Addr(), len(backends))

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- r.Serve(ln) }()

	sum := runSummary{Addr: ln.Addr().String()}
	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigs:
		sum.Signal = sig.String()
		log.Info("signal received, draining", "signal", sig, "budget", o.drainTimeout, "sessions", r.SessionCount())
		ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		forced := make(chan struct{})
		go func() {
			select {
			case <-sigs:
				log.Warn("second signal: forcing shutdown")
				cancel()
			case <-forced:
			}
		}()
		err := r.Shutdown(ctx)
		close(forced)
		cancel()
		<-serveErr
		sum.Graceful = err == nil
		if err != nil {
			log.Warn("drain incomplete, sessions cut", "err", err)
		}
	}
	sum.Uptime = time.Since(start).String()
	sum.Backends = r.BackendStatuses()
	if rec != nil {
		st := rec.Stats()
		sum.Flight = &st
	}
	sum.Metrics = reg.Snapshot()
	if o.summaryJSON != "" {
		if err := writeSummary(o.summaryJSON, sum); err != nil {
			return err
		}
	}
	if !sum.Graceful {
		return errors.New("drain timed out; live sessions were cut")
	}
	fmt.Println("ibprouter: drained cleanly")
	return nil
}

func splitBackends(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func writeSummary(path string, sum runSummary) error {
	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
