// Command ibpserved runs the streaming prediction service: clients open
// sessions over TCP, stream branch-trace frames, and receive per-frame
// prediction outcomes plus a final summary. SIGTERM or SIGINT drains the
// server gracefully: accepted work is processed, acknowledged, and
// summarized before the process exits.
//
// Examples:
//
//	ibpserved -addr 127.0.0.1:9670
//	ibpserved -addr :9670 -shards 8 -window 16 -metrics 127.0.0.1:9091
//	ibpserved -pred btb-2bc -table assoc4 -entries 1024 -summaryjson run.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/serve"
	"github.com/oocsb/ibp/internal/sessiontrack"
	"github.com/oocsb/ibp/internal/telemetry"
	"github.com/oocsb/ibp/internal/tuner"
)

type options struct {
	addr         string
	shards       int
	queue        int
	window       int
	maxRecords   int
	maxPayload   int
	readTimeout  time.Duration
	writeTimeout time.Duration
	drainTimeout time.Duration
	metricsAddr  string
	summaryJSON  string
	logLevel     string
	tag          string
	flightCap    int
	slo          time.Duration
	tuner        bool
	tunerPolicy  string
	tunerMax     int
	readOnly     bool

	pf cli.PredictorFlags
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:9670", "listen address")
	flag.IntVar(&o.shards, "shards", 0, "predictor worker shards (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 0, "per-shard frame queue depth (0 = default)")
	flag.IntVar(&o.window, "window", 0, "max unacknowledged frames per session (0 = default)")
	flag.IntVar(&o.maxRecords, "maxrecords", 0, "max records per frame (0 = default)")
	flag.IntVar(&o.maxPayload, "maxpayload", 0, "max frame payload bytes (0 = default)")
	flag.DurationVar(&o.readTimeout, "readtimeout", 0, "per-frame read timeout (0 = default)")
	flag.DurationVar(&o.writeTimeout, "writetimeout", 0, "response flush timeout (0 = default)")
	flag.DurationVar(&o.drainTimeout, "draintimeout", 30*time.Second, "graceful drain budget after SIGTERM/SIGINT")
	flag.StringVar(&o.metricsAddr, "metrics", "", "serve /metrics and /vars on this address")
	flag.StringVar(&o.summaryJSON, "summaryjson", "", "write a JSON run summary to this file on exit")
	flag.StringVar(&o.logLevel, "log", "info", "structured log level: debug, info, warn, error, off")
	flag.StringVar(&o.tag, "tag", "", "instance label for logs and the run summary (useful under a cluster router)")
	flag.IntVar(&o.flightCap, "flightrecorder", 0, "trace the last N frames in an in-memory flight recorder (0 = off, served at /debug/flightrecorder on the -metrics address)")
	flag.DurationVar(&o.slo, "slo", 0, "log a per-hop breakdown for frames slower than this end to end (0 = off; needs -flightrecorder)")
	flag.BoolVar(&o.tuner, "tuner", false, "enable the per-session predictor auto-tuner")
	flag.StringVar(&o.tunerPolicy, "tunerpolicy", "", "default tuner policy, semicolon-separated k=v (e.g. \"interval=512;miss=0.10;target=ittage:8,512,2\"; empty = built-in defaults)")
	flag.IntVar(&o.tunerMax, "tunermax", 0, "max concurrently tuned sessions (0 = no cap)")
	flag.BoolVar(&o.readOnly, "readonly", false, "reject mutating admin verbs (kill/drain/retune) on the -metrics mux")
	o.pf.Register(flag.CommandLine)
	flag.Parse()
	if err := realMain(o); err != nil {
		fmt.Fprintln(os.Stderr, "ibpserved:", err)
		os.Exit(1)
	}
}

// runSummary is the -summaryjson artifact: enough for CI to assert a clean
// drain and archive the run's counters.
type runSummary struct {
	Addr     string             `json:"addr"`
	Tag      string             `json:"tag,omitempty"`
	Graceful bool               `json:"graceful"`
	Signal   string             `json:"signal,omitempty"`
	Uptime   string             `json:"uptime"`
	Flight   *flight.Stats      `json:"flight,omitempty"`
	Metrics  telemetry.Snapshot `json:"metrics,omitempty"`
}

func realMain(o options) error {
	level, err := telemetry.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	log := telemetry.NewLogger(os.Stderr, level)
	if o.tag != "" {
		log = log.With("tag", o.tag)
	}
	if err := o.pf.Validate(); err != nil {
		return err
	}

	// The registry must exist before serve.New resolves its handles.
	var reg *telemetry.Registry
	if o.metricsAddr != "" || o.summaryJSON != "" {
		reg = telemetry.Enable(nil)
	}
	var rec *flight.Recorder
	if o.flightCap > 0 {
		service := "ibpserved"
		if o.tag != "" {
			service += "-" + o.tag
		}
		rec = flight.NewRecorder(flight.Options{
			Service:  service,
			Capacity: o.flightCap,
			SLO:      o.slo,
			Log:      log,
		})
		log.Info("flight recorder on", "capacity", o.flightCap, "slo", o.slo)
	}
	var tun *tuner.Tuner
	if o.tuner {
		policy := tuner.DefaultPolicy()
		if o.tunerPolicy != "" {
			policy, err = tuner.ParsePolicy(o.tunerPolicy)
			if err != nil {
				return fmt.Errorf("-tunerpolicy: %w", err)
			}
		}
		tun = tuner.New(tuner.Options{
			Policy:      policy,
			MaxSessions: o.tunerMax,
			Telemetry:   reg,
		})
		log.Info("tuner on", "policy", policy.String())
	} else if o.tunerPolicy != "" {
		return errors.New("-tunerpolicy requires -tuner")
	}
	// The server exists before the metrics mux so its session registry can
	// be mounted at /sessions*.
	srv, err := serve.New(serve.Config{
		Predictor:       o.pf,
		Shards:          o.shards,
		QueueDepth:      o.queue,
		Window:          o.window,
		MaxFramePayload: o.maxPayload,
		MaxFrameRecords: o.maxRecords,
		ReadTimeout:     o.readTimeout,
		WriteTimeout:    o.writeTimeout,
		Flight:          rec,
		Tuner:           tun,
		Tag:             o.tag,
		Log:             log,
	})
	if err != nil {
		return err
	}
	if o.metricsAddr != "" {
		mounts := []func(*http.ServeMux){
			func(mux *http.ServeMux) {
				sessiontrack.Mount(mux, sessiontrack.HTTPConfig{
					Local:     srv.Sessions(),
					Telemetry: reg,
					Flight:    rec,
					ReadOnly:  o.readOnly,
				})
			},
		}
		if rec != nil {
			mounts = append(mounts, func(mux *http.ServeMux) {
				mux.Handle("/debug/flightrecorder", rec.Handler())
			})
		}
		msrv, maddr, err := telemetry.ServeMetrics(o.metricsAddr, reg, mounts...)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer msrv.Close()
		log.Info("metrics endpoint up", "addr", maddr)
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	start := time.Now()
	fmt.Printf("ibpserved: listening on %s\n", ln.Addr())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sum := runSummary{Addr: ln.Addr().String(), Tag: o.tag}
	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigs:
		sum.Signal = sig.String()
		log.Info("signal received, draining", "signal", sig, "budget", o.drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		forced := make(chan struct{})
		go func() {
			select {
			case <-sigs:
				log.Warn("second signal: forcing shutdown")
				cancel()
			case <-forced:
			}
		}()
		err := srv.Shutdown(ctx)
		close(forced)
		cancel()
		<-serveErr
		sum.Graceful = err == nil
		if err != nil {
			log.Warn("drain incomplete, sessions cut", "err", err)
		}
	}
	sum.Uptime = time.Since(start).String()
	if rec != nil {
		st := rec.Stats()
		sum.Flight = &st
	}
	sum.Metrics = reg.Snapshot()
	if o.summaryJSON != "" {
		if err := writeSummary(o.summaryJSON, sum); err != nil {
			return err
		}
	}
	if !sum.Graceful {
		return errors.New("drain timed out; live sessions were cut")
	}
	fmt.Println("ibpserved: drained cleanly")
	return nil
}

func writeSummary(path string, sum runSummary) error {
	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
