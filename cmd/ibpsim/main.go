// Command ibpsim simulates a single indirect-branch predictor configuration
// over benchmarks of the suite (or a trace file) and reports misprediction
// rates, the core interactive tool of the reproduction.
//
// Examples:
//
//	ibpsim -bench all -pred btb-2bc
//	ibpsim -bench gcc -p 3 -table assoc4 -entries 1024
//	ibpsim -bench all -hybrid 3,1 -table assoc4 -entries 4096
//	ibpsim -trace gcc.trace -p 6 -table tagless -entries 8192
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/stats"
	"github.com/oocsb/ibp/internal/table"
	"github.com/oocsb/ibp/internal/telemetry"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

type options struct {
	bench     string
	traceFile string
	n         int
	warmup    int

	pf cli.PredictorFlags

	shadow   bool
	sites    bool
	top      int
	stats    bool
	logLevel string
}

func main() {
	var o options
	flag.StringVar(&o.bench, "bench", "all", "benchmark name or \"all\"")
	flag.StringVar(&o.traceFile, "trace", "", "read a trace file instead of generating a benchmark")
	flag.IntVar(&o.n, "n", workload.DefaultBranches, "indirect branches per generated benchmark")
	flag.IntVar(&o.warmup, "warmup", 0, "indirect branches excluded from accounting")
	o.pf.Register(flag.CommandLine)
	flag.BoolVar(&o.shadow, "shadow", false, "attribute capacity/conflict misses with an unbounded twin")
	flag.BoolVar(&o.sites, "sites", false, "report the worst-predicted branch sites")
	flag.IntVar(&o.top, "top", 5, "number of sites to report with -sites")
	flag.BoolVar(&o.stats, "stats", false, "report per-run table occupancy/eviction counters after each benchmark")
	flag.StringVar(&o.logLevel, "log", "warn", "structured log level: debug, info, warn, error, off")
	flag.Parse()
	if err := realMain(o); err != nil {
		fmt.Fprintln(os.Stderr, "ibpsim:", err)
		os.Exit(1)
	}
}

// readTraceFile decodes a trace file, wrapping every failure — including
// corruption detected by the checksummed v2 format — with the offending
// path.
func readTraceFile(path string) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

func realMain(o options) error {
	level, err := telemetry.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	log := telemetry.NewLogger(os.Stderr, level)
	if o.stats {
		// Table snapshots on Results come from the telemetry layer.
		telemetry.Enable(nil)
	}
	var runs []struct {
		name string
		tr   trace.Trace
	}
	switch {
	case o.traceFile != "":
		tr, err := readTraceFile(o.traceFile)
		if err != nil {
			return err
		}
		runs = append(runs, struct {
			name string
			tr   trace.Trace
		}{o.traceFile, tr})
	case o.bench == "all":
		for _, cfg := range workload.Suite() {
			runs = append(runs, struct {
				name string
				tr   trace.Trace
			}{cfg.Name, cfg.MustGenerate(o.n)})
		}
	default:
		cfg, err := workload.ByName(o.bench)
		if err != nil {
			return err
		}
		runs = append(runs, struct {
			name string
			tr   trace.Trace
		}{cfg.Name, cfg.MustGenerate(o.n)})
	}

	if err := o.pf.Validate(); err != nil {
		return err
	}
	probe, err := o.pf.Build()
	if err != nil {
		return err
	}
	log.Debug("simulating", "predictor", probe.Name(), "runs", len(runs), "n", o.n, "warmup", o.warmup)
	fmt.Printf("predictor: %s\n\n", probe.Name())
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "benchmark", "branches", "misses", "miss%", "capacity%")
	rates := make(map[string]float64)
	for _, r := range runs {
		p, err := o.pf.Build()
		if err != nil {
			return err
		}
		opts := sim.Options{Warmup: o.warmup, Sites: o.sites}
		if o.shadow {
			shadow, err := o.pf.Unbounded().Build()
			if err != nil {
				return err
			}
			opts.Shadow = shadow
		}
		res := sim.Run(p, r.tr, opts)
		rates[r.name] = res.MissRate()
		log.Info("benchmark done", "bench", r.name, "executed", res.Executed, "missRate", res.MissRate())
		fmt.Printf("%-10s %10d %10d %10.2f %10.2f\n",
			r.name, res.Executed, res.Misses, res.MissRate(), res.CapacityRate())
		if o.stats && len(res.Tables) > 0 {
			printTableStats(res.Tables)
		}
		if o.sites {
			printWorstSites(res, o.top)
		}
	}
	if len(runs) > 1 {
		fmt.Println()
		ext := stats.WithGroups(rates)
		for _, g := range stats.GroupNames() {
			if v, ok := ext[g]; ok {
				fmt.Printf("%-10s %32s %10.2f\n", g, "", v)
			}
		}
	}
	return nil
}

// printTableStats merges the run's table snapshots per kind and prints one
// line per kind in sorted key order, so output is byte-stable across runs
// however the predictor orders its component tables.
func printTableStats(sts []table.Stats) {
	byKind := make(map[string][]table.Stats)
	for _, st := range sts {
		byKind[st.Kind] = append(byKind[st.Kind], st)
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		st := table.Merge(byKind[k])
		fmt.Printf("    tables[%s]: cap=%d occ=%.2f inserts=%d evictions=%d resets=%d\n",
			k, st.Capacity, st.Occupancy, st.Inserts, st.Evictions, st.Resets)
	}
}

func printWorstSites(res sim.Result, top int) {
	type siteRow struct {
		pc uint32
		st *sim.SiteStats
	}
	rows := make([]siteRow, 0, len(res.PerSite))
	for pc, st := range res.PerSite {
		rows = append(rows, siteRow{pc, st})
	}
	// Misses descending, PC ascending on ties: map iteration order must not
	// leak into which equal-miss sites make the cut or how they print.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].st.Misses != rows[j].st.Misses {
			return rows[i].st.Misses > rows[j].st.Misses
		}
		return rows[i].pc < rows[j].pc
	})
	if top > len(rows) {
		top = len(rows)
	}
	for _, r := range rows[:top] {
		fmt.Printf("    site %08x: %d/%d misses (%.1f%%)\n",
			r.pc, r.st.Misses, r.st.Executed, 100*float64(r.st.Misses)/float64(r.st.Executed))
	}
}
