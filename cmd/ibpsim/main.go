// Command ibpsim simulates a single indirect-branch predictor configuration
// over benchmarks of the suite (or a trace file) and reports misprediction
// rates, the core interactive tool of the reproduction.
//
// Examples:
//
//	ibpsim -bench all -pred btb-2bc
//	ibpsim -bench gcc -p 3 -table assoc4 -entries 1024
//	ibpsim -bench all -hybrid 3,1 -table assoc4 -entries 4096
//	ibpsim -trace gcc.trace -p 6 -table tagless -entries 8192
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/history"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/stats"
	"github.com/oocsb/ibp/internal/table"
	"github.com/oocsb/ibp/internal/telemetry"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

type options struct {
	bench     string
	traceFile string
	n         int
	warmup    int

	pred      string
	path      int
	histShare int
	tabShare  int
	precision int
	scheme    string
	keyop     string
	table     string
	entries   int
	update    string
	hybrid    string
	shadow    bool
	sites     bool
	top       int
	stats     bool
	logLevel  string
}

func main() {
	var o options
	flag.StringVar(&o.bench, "bench", "all", "benchmark name or \"all\"")
	flag.StringVar(&o.traceFile, "trace", "", "read a trace file instead of generating a benchmark")
	flag.IntVar(&o.n, "n", workload.DefaultBranches, "indirect branches per generated benchmark")
	flag.IntVar(&o.warmup, "warmup", 0, "indirect branches excluded from accounting")
	flag.StringVar(&o.pred, "pred", "2lev", "predictor family: 2lev, btb, btb-2bc, tcache, ppm, shared")
	flag.IntVar(&o.path, "p", 3, "path length")
	flag.IntVar(&o.histShare, "s", 32, "history sharing exponent (2=per-branch, 32=global)")
	flag.IntVar(&o.tabShare, "hshare", 2, "history table sharing exponent (full-precision mode)")
	flag.IntVar(&o.precision, "b", core.AutoPrecision, "bits per history target (-1 auto, 0 full precision)")
	flag.StringVar(&o.scheme, "scheme", "reverse", "pattern layout: concat, straight, reverse, pingpong")
	flag.StringVar(&o.keyop, "keyop", "xor", "address folding: xor or concat")
	flag.StringVar(&o.table, "table", "unbounded", "table: exact, unbounded, tagless, assoc1/2/4, fullassoc")
	flag.IntVar(&o.entries, "entries", 0, "table entries for bounded tables")
	flag.StringVar(&o.update, "update", "2bc", "target update rule: 2bc or always")
	flag.StringVar(&o.hybrid, "hybrid", "", "dual-path hybrid \"p1,p2\" (overrides -p)")
	flag.BoolVar(&o.shadow, "shadow", false, "attribute capacity/conflict misses with an unbounded twin")
	flag.BoolVar(&o.sites, "sites", false, "report the worst-predicted branch sites")
	flag.IntVar(&o.top, "top", 5, "number of sites to report with -sites")
	flag.BoolVar(&o.stats, "stats", false, "report per-run table occupancy/eviction counters after each benchmark")
	flag.StringVar(&o.logLevel, "log", "warn", "structured log level: debug, info, warn, error, off")
	flag.Parse()
	if err := realMain(o); err != nil {
		fmt.Fprintln(os.Stderr, "ibpsim:", err)
		os.Exit(1)
	}
}

func buildPredictor(o options) (core.Predictor, error) {
	switch o.pred {
	case "btb":
		tb, err := boundedTable(o)
		if err != nil {
			return nil, err
		}
		return core.NewBTB(tb, core.UpdateAlways), nil
	case "btb-2bc":
		tb, err := boundedTable(o)
		if err != nil {
			return nil, err
		}
		return core.NewBTB(tb, core.UpdateTwoMiss), nil
	case "tcache":
		entries := o.entries
		if entries == 0 {
			entries = 512
		}
		return core.NewTargetCache(9, orDefault(o.table, "tagless"), entries)
	case "ppm":
		p1, p2, err := parsePair(o.hybrid)
		if err != nil {
			return nil, fmt.Errorf("ppm needs -hybrid p1,p2: %w", err)
		}
		return core.NewCascade([]int{p1, p2}, o.table, o.entries)
	case "shared":
		p1, p2, err := parsePair(o.hybrid)
		if err != nil {
			return nil, fmt.Errorf("shared needs -hybrid p1,p2: %w", err)
		}
		return core.NewSharedHybrid(p1, p2, o.table, o.entries)
	case "2lev":
		if o.hybrid != "" {
			p1, p2, err := parsePair(o.hybrid)
			if err != nil {
				return nil, err
			}
			return core.NewDualPath(p1, p2, o.table, o.entries)
		}
		cfg, err := twoLevelConfig(o)
		if err != nil {
			return nil, err
		}
		return core.NewTwoLevel(cfg)
	}
	return nil, fmt.Errorf("unknown predictor %q", o.pred)
}

func twoLevelConfig(o options) (core.Config, error) {
	scheme, err := bits.ParseScheme(o.scheme)
	if err != nil {
		return core.Config{}, err
	}
	var keyop history.KeyOp
	switch o.keyop {
	case "xor":
		keyop = history.OpXor
	case "concat":
		keyop = history.OpConcat
	default:
		return core.Config{}, fmt.Errorf("unknown key op %q", o.keyop)
	}
	var update core.UpdateRule
	switch o.update {
	case "2bc":
		update = core.UpdateTwoMiss
	case "always":
		update = core.UpdateAlways
	default:
		return core.Config{}, fmt.Errorf("unknown update rule %q", o.update)
	}
	return core.Config{
		PathLength: o.path,
		HistShare:  o.histShare,
		TableShare: o.tabShare,
		Precision:  o.precision,
		Scheme:     scheme,
		KeyOp:      keyop,
		TableKind:  o.table,
		Entries:    o.entries,
		Update:     update,
	}, nil
}

// readTraceFile decodes a trace file, wrapping every failure — including
// corruption detected by the checksummed v2 format — with the offending
// path.
func readTraceFile(path string) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// boundedTable builds the BTB's table, or nil for an unbounded one. Errors
// propagate so main exits non-zero through the single failure path.
func boundedTable(o options) (table.Bounded, error) {
	if o.table == "" || o.table == "unbounded" || o.table == "exact" {
		return nil, nil
	}
	return table.New(o.table, o.entries)
}

func realMain(o options) error {
	level, err := telemetry.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	log := telemetry.NewLogger(os.Stderr, level)
	if o.stats {
		// Table snapshots on Results come from the telemetry layer.
		telemetry.Enable(nil)
	}
	var runs []struct {
		name string
		tr   trace.Trace
	}
	switch {
	case o.traceFile != "":
		tr, err := readTraceFile(o.traceFile)
		if err != nil {
			return err
		}
		runs = append(runs, struct {
			name string
			tr   trace.Trace
		}{o.traceFile, tr})
	case o.bench == "all":
		for _, cfg := range workload.Suite() {
			runs = append(runs, struct {
				name string
				tr   trace.Trace
			}{cfg.Name, cfg.MustGenerate(o.n)})
		}
	default:
		cfg, err := workload.ByName(o.bench)
		if err != nil {
			return err
		}
		runs = append(runs, struct {
			name string
			tr   trace.Trace
		}{cfg.Name, cfg.MustGenerate(o.n)})
	}

	probe, err := buildPredictor(o)
	if err != nil {
		return err
	}
	log.Debug("simulating", "predictor", probe.Name(), "runs", len(runs), "n", o.n, "warmup", o.warmup)
	fmt.Printf("predictor: %s\n\n", probe.Name())
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "benchmark", "branches", "misses", "miss%", "capacity%")
	rates := make(map[string]float64)
	for _, r := range runs {
		p, err := buildPredictor(o)
		if err != nil {
			return err
		}
		opts := sim.Options{Warmup: o.warmup, Sites: o.sites}
		if o.shadow {
			so := o
			so.table = "unbounded"
			so.entries = 0
			shadow, err := buildPredictor(so)
			if err != nil {
				return err
			}
			opts.Shadow = shadow
		}
		res := sim.Run(p, r.tr, opts)
		rates[r.name] = res.MissRate()
		log.Info("benchmark done", "bench", r.name, "executed", res.Executed, "missRate", res.MissRate())
		fmt.Printf("%-10s %10d %10d %10.2f %10.2f\n",
			r.name, res.Executed, res.Misses, res.MissRate(), res.CapacityRate())
		if o.stats && len(res.Tables) > 0 {
			st := table.Merge(res.Tables)
			fmt.Printf("    tables: %s cap=%d occ=%.2f inserts=%d evictions=%d resets=%d\n",
				st.Kind, st.Capacity, st.Occupancy, st.Inserts, st.Evictions, st.Resets)
		}
		if o.sites {
			printWorstSites(res, o.top)
		}
	}
	if len(runs) > 1 {
		fmt.Println()
		ext := stats.WithGroups(rates)
		for _, g := range stats.GroupNames() {
			if v, ok := ext[g]; ok {
				fmt.Printf("%-10s %32s %10.2f\n", g, "", v)
			}
		}
	}
	return nil
}

func printWorstSites(res sim.Result, top int) {
	type siteRow struct {
		pc uint32
		st *sim.SiteStats
	}
	rows := make([]siteRow, 0, len(res.PerSite))
	for pc, st := range res.PerSite {
		rows = append(rows, siteRow{pc, st})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].st.Misses > rows[j].st.Misses })
	if top > len(rows) {
		top = len(rows)
	}
	for _, r := range rows[:top] {
		fmt.Printf("    site %08x: %d/%d misses (%.1f%%)\n",
			r.pc, r.st.Misses, r.st.Executed, 100*float64(r.st.Misses)/float64(r.st.Executed))
	}
}

func parsePair(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want \"p1,p2\", got %q", s)
	}
	var a, b int
	if _, err := fmt.Sscanf(parts[0], "%d", &a); err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &b); err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func orDefault(s, def string) string {
	if s == "" || s == "unbounded" {
		return def
	}
	return s
}
