package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

func baseOpts() options {
	return options{
		bench: "xlisp", n: 2000, top: 3,
		pf: cli.PredictorFlags{
			Pred: "2lev", Path: 2, HistShare: 32, TabShare: 2,
			Precision: -1, Scheme: "reverse", KeyOp: "xor",
			Table: "unbounded", Update: "2bc",
		},
	}
}

func TestRunTwoLevel(t *testing.T) {
	if err := realMain(baseOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllPredictorFamilies(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.pf.Pred = "btb" },
		func(o *options) { o.pf.Pred = "btb-2bc"; o.pf.Table = "assoc2"; o.pf.Entries = 64 },
		func(o *options) { o.pf.Pred = "tcache"; o.pf.Table = "tagless"; o.pf.Entries = 256 },
		func(o *options) { o.pf.Pred = "ppm"; o.pf.Hybrid = "3,1"; o.pf.Table = "assoc2"; o.pf.Entries = 256 },
		func(o *options) { o.pf.Pred = "shared"; o.pf.Hybrid = "3,1"; o.pf.Table = "assoc4"; o.pf.Entries = 256 },
		func(o *options) { o.pf.Hybrid = "3,1"; o.pf.Table = "assoc4"; o.pf.Entries = 256 },
		func(o *options) { o.pf.Table = "assoc4"; o.pf.Entries = 128; o.shadow = true; o.sites = true },
		func(o *options) { o.pf.Precision = 0; o.pf.Table = "exact" },
		func(o *options) { o.pf.Update = "always"; o.pf.KeyOp = "concat" },
		func(o *options) { o.warmup = 500 },
	}
	for i, mod := range cases {
		o := baseOpts()
		mod(&o)
		if err := realMain(o); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestRunWholeSuite(t *testing.T) {
	o := baseOpts()
	o.bench = "all"
	o.n = 400
	if err := realMain(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	cfg, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	tr := cfg.MustGenerate(1000)
	path := filepath.Join(t.TempDir(), "perl.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	o := baseOpts()
	o.bench = ""
	o.traceFile = path
	if err := realMain(o); err != nil {
		t.Fatal(err)
	}
}

func TestBadOptions(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.pf.Pred = "nonesuch" },
		func(o *options) { o.bench = "nonesuch" },
		func(o *options) { o.pf.Scheme = "nonesuch" },
		func(o *options) { o.pf.KeyOp = "nonesuch" },
		func(o *options) { o.pf.Update = "nonesuch" },
		func(o *options) { o.pf.Hybrid = "3" },
		func(o *options) { o.pf.Hybrid = "a,b" },
		func(o *options) { o.pf.Pred = "ppm" }, // ppm without -hybrid
		func(o *options) { o.traceFile = "/nonexistent"; o.bench = "" },
	}
	for i, mod := range cases {
		o := baseOpts()
		mod(&o)
		if err := realMain(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestCorruptTraceFile is the table-driven failure-path contract: corrupt
// or truncated inputs are rejected with errors naming the offending file.
func TestCorruptTraceFile(t *testing.T) {
	dir := t.TempDir()
	cfg, err := workload.ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	tr := cfg.MustGenerate(3000)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	flipped := bytes.Clone(clean)
	flipped[len(flipped)/2] ^= 0x08
	cases := []struct {
		name string
		data []byte
	}{
		{"bitflip.trace", flipped},
		{"truncated.trace", clean[:len(clean)/3]},
		{"badmagic.trace", []byte("NOPE\x01\x00")},
		{"empty.trace", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			o := baseOpts()
			o.bench = ""
			o.traceFile = path
			err := realMain(o)
			if err == nil {
				t.Fatal("corrupt trace accepted")
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error does not name the file: %v", err)
			}
		})
	}
}

// TestBadTableConfig: an invalid BTB table is a returned error, not an
// os.Exit from a helper.
func TestBadTableConfig(t *testing.T) {
	o := baseOpts()
	o.pf.Pred = "btb"
	o.pf.Table = "nonesuch"
	o.pf.Entries = 64
	if err := realMain(o); err == nil {
		t.Fatal("unknown table kind accepted")
	}
}

// TestStatsOutputDeterministic pins the -stats satellite fix: per-kind
// merged table lines print in sorted kind order, so repeated runs of a
// hybrid (whose components hold differently-kinded tables) are byte-equal.
func TestStatsOutputDeterministic(t *testing.T) {
	var first string
	for run := 0; run < 5; run++ {
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		old := os.Stdout
		os.Stdout = w
		o := baseOpts()
		o.n = 1000
		o.stats = true
		o.pf.Hybrid = "3,1"
		o.pf.Table = "assoc4"
		o.pf.Entries = 128
		errRun := realMain(o)
		w.Close()
		os.Stdout = old
		out, _ := io.ReadAll(r)
		r.Close()
		if errRun != nil {
			t.Fatal(errRun)
		}
		if run == 0 {
			first = string(out)
			if !strings.Contains(first, "tables[assoc4]:") {
				t.Fatalf("no per-kind stats line in output:\n%s", first)
			}
			continue
		}
		if string(out) != first {
			t.Fatalf("run %d output differs:\n%s\n--- vs ---\n%s", run, out, first)
		}
	}
}
