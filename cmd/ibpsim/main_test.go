package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

func baseOpts() options {
	return options{
		bench: "xlisp", n: 2000,
		pred: "2lev", path: 2, histShare: 32, tabShare: 2,
		precision: -1, scheme: "reverse", keyop: "xor",
		table: "unbounded", update: "2bc", top: 3,
	}
}

func TestRunTwoLevel(t *testing.T) {
	if err := realMain(baseOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllPredictorFamilies(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.pred = "btb" },
		func(o *options) { o.pred = "btb-2bc"; o.table = "assoc2"; o.entries = 64 },
		func(o *options) { o.pred = "tcache"; o.table = "tagless"; o.entries = 256 },
		func(o *options) { o.pred = "ppm"; o.hybrid = "3,1"; o.table = "assoc2"; o.entries = 256 },
		func(o *options) { o.pred = "shared"; o.hybrid = "3,1"; o.table = "assoc4"; o.entries = 256 },
		func(o *options) { o.hybrid = "3,1"; o.table = "assoc4"; o.entries = 256 },
		func(o *options) { o.table = "assoc4"; o.entries = 128; o.shadow = true; o.sites = true },
		func(o *options) { o.precision = 0; o.table = "exact" },
		func(o *options) { o.update = "always"; o.keyop = "concat" },
		func(o *options) { o.warmup = 500 },
	}
	for i, mod := range cases {
		o := baseOpts()
		mod(&o)
		if err := realMain(o); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestRunWholeSuite(t *testing.T) {
	o := baseOpts()
	o.bench = "all"
	o.n = 400
	if err := realMain(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	cfg, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	tr := cfg.MustGenerate(1000)
	path := filepath.Join(t.TempDir(), "perl.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	o := baseOpts()
	o.bench = ""
	o.traceFile = path
	if err := realMain(o); err != nil {
		t.Fatal(err)
	}
}

func TestBadOptions(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.pred = "nonesuch" },
		func(o *options) { o.bench = "nonesuch" },
		func(o *options) { o.scheme = "nonesuch" },
		func(o *options) { o.keyop = "nonesuch" },
		func(o *options) { o.update = "nonesuch" },
		func(o *options) { o.hybrid = "3" },
		func(o *options) { o.hybrid = "a,b" },
		func(o *options) { o.pred = "ppm" }, // ppm without -hybrid
		func(o *options) { o.traceFile = "/nonexistent"; o.bench = "" },
	}
	for i, mod := range cases {
		o := baseOpts()
		mod(&o)
		if err := realMain(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestCorruptTraceFile is the table-driven failure-path contract: corrupt
// or truncated inputs are rejected with errors naming the offending file.
func TestCorruptTraceFile(t *testing.T) {
	dir := t.TempDir()
	cfg, err := workload.ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	tr := cfg.MustGenerate(3000)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	flipped := bytes.Clone(clean)
	flipped[len(flipped)/2] ^= 0x08
	cases := []struct {
		name string
		data []byte
	}{
		{"bitflip.trace", flipped},
		{"truncated.trace", clean[:len(clean)/3]},
		{"badmagic.trace", []byte("NOPE\x01\x00")},
		{"empty.trace", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			o := baseOpts()
			o.bench = ""
			o.traceFile = path
			err := realMain(o)
			if err == nil {
				t.Fatal("corrupt trace accepted")
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error does not name the file: %v", err)
			}
		})
	}
}

// TestBadTableConfig: an invalid BTB table is a returned error, not an
// os.Exit from a helper.
func TestBadTableConfig(t *testing.T) {
	o := baseOpts()
	o.pred = "btb"
	o.table = "nonesuch"
	o.entries = 64
	if err := realMain(o); err == nil {
		t.Fatal("unknown table kind accepted")
	}
}
