package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

func baseOpts() options {
	return options{
		bench: "xlisp", n: 2000,
		pred: "2lev", path: 2, histShare: 32, tabShare: 2,
		precision: -1, scheme: "reverse", keyop: "xor",
		table: "unbounded", update: "2bc", top: 3,
	}
}

func TestRunTwoLevel(t *testing.T) {
	if err := realMain(baseOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllPredictorFamilies(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.pred = "btb" },
		func(o *options) { o.pred = "btb-2bc"; o.table = "assoc2"; o.entries = 64 },
		func(o *options) { o.pred = "tcache"; o.table = "tagless"; o.entries = 256 },
		func(o *options) { o.pred = "ppm"; o.hybrid = "3,1"; o.table = "assoc2"; o.entries = 256 },
		func(o *options) { o.pred = "shared"; o.hybrid = "3,1"; o.table = "assoc4"; o.entries = 256 },
		func(o *options) { o.hybrid = "3,1"; o.table = "assoc4"; o.entries = 256 },
		func(o *options) { o.table = "assoc4"; o.entries = 128; o.shadow = true; o.sites = true },
		func(o *options) { o.precision = 0; o.table = "exact" },
		func(o *options) { o.update = "always"; o.keyop = "concat" },
		func(o *options) { o.warmup = 500 },
	}
	for i, mod := range cases {
		o := baseOpts()
		mod(&o)
		if err := realMain(o); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestRunWholeSuite(t *testing.T) {
	o := baseOpts()
	o.bench = "all"
	o.n = 400
	if err := realMain(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	cfg, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	tr := cfg.MustGenerate(1000)
	path := filepath.Join(t.TempDir(), "perl.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	o := baseOpts()
	o.bench = ""
	o.traceFile = path
	if err := realMain(o); err != nil {
		t.Fatal(err)
	}
}

func TestBadOptions(t *testing.T) {
	cases := []func(*options){
		func(o *options) { o.pred = "nonesuch" },
		func(o *options) { o.bench = "nonesuch" },
		func(o *options) { o.scheme = "nonesuch" },
		func(o *options) { o.keyop = "nonesuch" },
		func(o *options) { o.update = "nonesuch" },
		func(o *options) { o.hybrid = "3" },
		func(o *options) { o.hybrid = "a,b" },
		func(o *options) { o.pred = "ppm" }, // ppm without -hybrid
		func(o *options) { o.traceFile = "/nonexistent"; o.bench = "" },
	}
	for i, mod := range cases {
		o := baseOpts()
		mod(&o)
		if err := realMain(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
