// Benchmark-regression harness: -benchjson records predictor throughput and
// experiment wall-times as a BENCH_<date>.json snapshot so the performance
// trajectory is tracked commit over commit (see scripts/bench.sh).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/experiment"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

// benchReport is the BENCH_<date>.json schema. Fields are stable: downstream
// tooling diffs these files across commits.
type benchReport struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	TraceLen   int    `json:"trace_len"`
	// Predictors are in-process steady-state throughput measurements.
	Predictors []predictorBench `json:"predictors"`
	// Experiments are end-to-end wall-times of registered experiments.
	Experiments []experimentBench `json:"experiments,omitempty"`
	// GoTest carries parsed `go test -bench` results when scripts/bench.sh
	// passes the raw output via -benchraw.
	GoTest []goTestBench `json:"go_test,omitempty"`
	// Loadgen carries an ibpload run's end-to-end numbers (throughput and
	// frame-latency percentiles over real sockets) when scripts/bench.sh
	// passes its JSON report via -loadjson.
	Loadgen *loadgenBench `json:"loadgen,omitempty"`
}

type predictorBench struct {
	Name     string  `json:"name"`
	NsBranch float64 `json:"ns_per_branch"`
	Branches int     `json:"branches"`
	// MissPct is the from-cold miss rate over the measurement trace — the
	// accuracy column that makes adjacent rows (hybrid vs ittage) directly
	// comparable in one snapshot.
	MissPct float64 `json:"miss_rate_pct"`
}

type experimentBench struct {
	ID       string `json:"id"`
	WallMs   int64  `json:"wall_ms"`
	Tables   int    `json:"tables"`
	Degraded int    `json:"degraded_cells,omitempty"`
}

type goTestBench struct {
	Name      string  `json:"name"`
	Iter      int     `json:"iterations"`
	NsOp      float64 `json:"ns_per_op"`
	RecordsPS float64 `json:"records_per_s,omitempty"`
	AllocsOp  float64 `json:"allocs_per_op,omitempty"`
}

// loadgenBench is the subset of ibpload's JSON report that belongs in the
// snapshot; field names mirror the ibpload report so the file parses as-is.
type loadgenBench struct {
	Addr       string  `json:"addr"`
	Conns      int     `json:"conns"`
	Records    int     `json:"records"`
	RecordsPS  float64 `json:"recordsPerSec"`
	LatencyP50 float64 `json:"frameLatencyP50Ms"`
	LatencyP95 float64 `json:"frameLatencyP95Ms"`
	LatencyP99 float64 `json:"frameLatencyP99Ms"`
	Failed     int     `json:"failed"`
}

// benchPredictors are the throughput subjects, mirroring the Predictor*
// benchmarks in bench_test.go.
func benchPredictors() []struct {
	name string
	mk   func() (core.Predictor, error)
} {
	return []struct {
		name string
		mk   func() (core.Predictor, error)
	}{
		{"btb-2bc", func() (core.Predictor, error) { return core.NewBTB(nil, core.UpdateTwoMiss), nil }},
		{"2lev-p3-assoc4-4096", func() (core.Predictor, error) {
			return core.NewTwoLevel(core.Config{
				PathLength: 3, Precision: core.AutoPrecision,
				Scheme: bits.Reverse, TableKind: "assoc4", Entries: 4096,
			})
		}},
		{"2lev-p6-exact", func() (core.Predictor, error) {
			return core.NewTwoLevel(core.Config{PathLength: 6, Precision: 0, TableKind: "exact"})
		}},
		{"hybrid-3.1-assoc4-2048", func() (core.Predictor, error) {
			return core.NewDualPath(3, 1, "assoc4", 2048)
		}},
		{"ittage-8x512-min2", func() (core.Predictor, error) {
			return core.NewITTAGE(8, 512, 2)
		}},
	}
}

// measurePredictor times steady-state predict/update over the trace: one
// untimed warm pass (which doubles as the from-cold accuracy pass), then
// timed passes until minTime accumulates. Returns ns/branch and the warm
// pass's miss rate in percent.
func measurePredictor(ctx context.Context, mk func() (core.Predictor, error), tr trace.Trace) (float64, float64, error) {
	p, err := mk()
	if err != nil {
		return 0, 0, err
	}
	pass := func() {
		for i := range tr {
			p.Predict(tr[i].PC)
			p.Update(tr[i].PC, tr[i].Target)
		}
	}
	// Warm pass: tables populated, steady state from here. Counting misses
	// here (cold tables, like a real run's first pass) gives the accuracy
	// column for free.
	misses := 0
	for i := range tr {
		pred, ok := p.Predict(tr[i].PC)
		if !ok || pred != tr[i].Target {
			misses++
		}
		p.Update(tr[i].PC, tr[i].Target)
	}
	const minTime = 100 * time.Millisecond
	var elapsed time.Duration
	branches := 0
	for elapsed < minTime {
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		pass()
		elapsed += time.Since(start)
		branches += len(tr)
	}
	missPct := 0.0
	if len(tr) > 0 {
		missPct = 100 * float64(misses) / float64(len(tr))
	}
	return float64(elapsed.Nanoseconds()) / float64(branches), missPct, nil
}

// parseGoTestBench extracts "BenchmarkX  N  12345 ns/op" lines from raw
// `go test -bench` output.
func parseGoTestBench(path string) ([]goTestBench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []goTestBench
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iter, err1 := strconv.Atoi(fields[1])
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || fields[3] != "ns/op" {
			continue
		}
		gt := goTestBench{Name: fields[0], Iter: iter, NsOp: ns}
		// Trailing value/unit pairs: custom b.ReportMetric units (records/s)
		// and -benchmem columns (allocs/op).
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "records/s":
				gt.RecordsPS = v
			case "allocs/op":
				gt.AllocsOp = v
			}
		}
		out = append(out, gt)
	}
	return out, sc.Err()
}

// runBenchJSON produces the benchmark snapshot: predictor throughput, wall
// times for the selected experiments, and (optionally) embedded go-test
// results, written atomically to outPath.
func runBenchJSON(ctx context.Context, outPath, benchRaw, loadJSON string, selected []experiment.Experiment, traceLen int) error {
	rep := benchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		TraceLen:   traceLen,
	}
	if rep.TraceLen <= 0 {
		rep.TraceLen = experiment.NewContext(0).TraceLen
	}

	cfg, err := workload.ByName("eqn")
	if err != nil {
		return err
	}
	tr := cfg.MustGenerate(50_000).Indirect()
	for _, pb := range benchPredictors() {
		if err := ctx.Err(); err != nil {
			return err
		}
		ns, missPct, err := measurePredictor(ctx, pb.mk, tr)
		if err != nil {
			return fmt.Errorf("bench %s: %w", pb.name, err)
		}
		fmt.Printf("bench %-24s %8.1f ns/branch  %6.2f%% miss\n", pb.name, ns, missPct)
		rep.Predictors = append(rep.Predictors, predictorBench{
			Name: pb.name, NsBranch: ns, Branches: len(tr), MissPct: missPct,
		})
	}

	ectx := experiment.NewContext(traceLen).WithContext(ctx)
	for _, e := range selected {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		tables, err := e.Run(ectx)
		degraded := ectx.TakeFailures()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		wall := time.Since(start)
		fmt.Printf("bench experiment %-12s %v (%d tables)\n", e.ID, wall.Round(time.Millisecond), len(tables))
		rep.Experiments = append(rep.Experiments, experimentBench{
			ID: e.ID, WallMs: wall.Milliseconds(), Tables: len(tables), Degraded: len(degraded),
		})
	}

	if benchRaw != "" {
		gt, err := parseGoTestBench(benchRaw)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", benchRaw, err)
		}
		rep.GoTest = gt
	}

	if loadJSON != "" {
		data, err := os.ReadFile(loadJSON)
		if err != nil {
			return fmt.Errorf("reading %s: %w", loadJSON, err)
		}
		var lg loadgenBench
		if err := json.Unmarshal(data, &lg); err != nil {
			return fmt.Errorf("parsing %s: %w", loadJSON, err)
		}
		rep.Loadgen = &lg
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := atomicWrite(outPath, append(data, '\n')); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
