// Command ibpsweep reproduces the paper's tables and figures: it runs the
// registered experiments over the 17-benchmark suite and prints paper-style
// result tables.
//
// The sweep is fault tolerant: Ctrl-C stops it cleanly after flushing every
// completed experiment, CSVs are written atomically (a killed run never
// leaves a half-written file), each completed experiment is journaled to
// <csvdir>/.sweep-manifest.json, and -resume skips experiments the manifest
// already records — so an interrupted "-run all" picks up where it left off.
//
// It is also observable: -progress keeps a live cells-done/total + rolling
// miss-rate + ETA line on stderr (and an interrupted run exits with a
// partial-progress summary), -metrics serves the telemetry registry as
// Prometheus text, -pprof serves net/http/pprof, -log controls structured
// slog output, and the -csv journal doubles as a run manifest with
// per-experiment wall times, counter snapshots, workload seeds, and tool/Go
// versions.
//
// Usage:
//
//	ibpsweep -list
//	ibpsweep -run fig9,table5 [-n 80000] [-csv results/]
//	ibpsweep -run all -csv results/ -progress
//	ibpsweep -run all -csv results/ -resume -metrics :9090 -pprof :6060
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/oocsb/ibp/internal/experiment"
	"github.com/oocsb/ibp/internal/stats"
	"github.com/oocsb/ibp/internal/telemetry"
)

// toolVersion names this build in run manifests; bump alongside schema or
// behaviour changes that affect result provenance.
const toolVersion = "ibpsweep/3"

// manifestName is the sweep journal, stored next to the CSVs.
const manifestName = ".sweep-manifest.json"

// manifest journals which experiments of a sweep have completed — and, since
// v2, the full provenance of the run: tool and Go versions, platform, the
// workload seeds and configs the traces were generated from, and a telemetry
// counter snapshot per experiment. An interrupted run resumes from it; a
// completed run's manifest is the machine-readable record of how every CSV
// was produced.
type manifest struct {
	// Version is the manifest schema version.
	Version int `json:"version"`
	// TraceLen is the -n the results were computed with; resuming with a
	// different length is refused.
	TraceLen int `json:"trace_len"`
	// ToolVersion and GoVersion record what produced the results.
	ToolVersion string `json:"tool_version,omitempty"`
	GoVersion   string `json:"go_version,omitempty"`
	// GOOS/GOARCH pin the platform (trace generation is deterministic, but
	// wall times are not portable).
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	// Suite records each benchmark workload's name and PRNG seed: with
	// TraceLen they fully determine every generated trace.
	Suite []suiteEntry `json:"suite,omitempty"`
	// Done maps experiment id to its completion record.
	Done map[string]manifestEntry `json:"done"`
}

// suiteEntry is one benchmark's generation provenance.
type suiteEntry struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
}

type manifestEntry struct {
	CompletedAt time.Time `json:"completed_at"`
	// WallMs is the experiment's wall-clock time in milliseconds.
	WallMs int64 `json:"wall_ms,omitempty"`
	// Files are the CSV files the experiment produced.
	Files []string `json:"files,omitempty"`
	// DegradedCells lists benchmark cells that failed and were recorded
	// as error rows instead of aborting (format "bench: error").
	DegradedCells []string `json:"degraded_cells,omitempty"`
	// Counters is the telemetry movement attributed to this experiment
	// (snapshot delta across its run): records simulated, cache hits,
	// evictions, cell timings, and the rest of the sweep_*/sim_*/trace_*
	// families.
	Counters telemetry.Snapshot `json:"counters,omitempty"`
}

// loadManifest reads the journal; a missing file yields an empty manifest.
func loadManifest(dir string) (*manifest, error) {
	m := &manifest{Version: 2, Done: make(map[string]manifestEntry)}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("%s: corrupt manifest: %w", filepath.Join(dir, manifestName), err)
	}
	if m.Done == nil {
		m.Done = make(map[string]manifestEntry)
	}
	return m, nil
}

// save writes the journal atomically (temp file + rename), so a crash
// mid-write can never corrupt the previous journal.
func (m *manifest) save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, manifestName), data)
}

// stamp fills the manifest's provenance fields from the current run.
func (m *manifest) stamp(ectx *experiment.Context) {
	m.Version = 2
	m.ToolVersion = toolVersion
	m.GoVersion = runtime.Version()
	m.GOOS = runtime.GOOS
	m.GOARCH = runtime.GOARCH
	m.Suite = m.Suite[:0]
	for _, cfg := range ectx.Suite {
		m.Suite = append(m.Suite, suiteEntry{Name: cfg.Name, Seed: cfg.Seed})
	}
}

// atomicWrite writes data to path via a temp file in the same directory and
// an atomic rename; readers never observe a partial file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// options carries every flag of the tool; realMain takes it whole so tests
// drive the full surface in-process.
type options struct {
	list      bool
	run       string
	traceLen  int
	csvDir    string
	resume    bool
	benchJSON string
	benchRaw  string
	loadJSON  string

	progress    bool   // live status line on stderr
	metricsAddr string // serve /metrics + /vars here
	pprofAddr   string // serve /debug/pprof here
	metricsDump string // write a final telemetry snapshot JSON here
	logLevel    string // slog level: debug|info|warn|error|off
}

func main() {
	var o options
	flag.BoolVar(&o.list, "list", false, "list available experiments and exit")
	flag.StringVar(&o.run, "run", "", "comma-separated experiment ids, or \"all\"")
	flag.IntVar(&o.traceLen, "n", 0, "indirect branches per benchmark (default 80000)")
	flag.StringVar(&o.csvDir, "csv", "", "directory to write one CSV per result table (plus the run manifest)")
	flag.BoolVar(&o.resume, "resume", false, "skip experiments already journaled in the -csv dir's manifest")
	flag.StringVar(&o.benchJSON, "benchjson", "", "write a benchmark snapshot (predictor ns/branch + experiment wall-times) to this JSON file instead of printing tables")
	flag.StringVar(&o.benchRaw, "benchraw", "", "with -benchjson: embed parsed `go test -bench` output from this file")
	flag.StringVar(&o.loadJSON, "loadjson", "", "with -benchjson: embed an ibpload -json report (throughput + latency percentiles) from this file")
	flag.BoolVar(&o.progress, "progress", false, "render a live cells-done/total + miss-rate + ETA line on stderr")
	flag.StringVar(&o.metricsAddr, "metrics", "", "serve telemetry at this address (/metrics Prometheus text, /vars JSON)")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof at this address")
	flag.StringVar(&o.metricsDump, "metricsdump", "", "write the final telemetry snapshot as JSON to this file")
	flag.StringVar(&o.logLevel, "log", "info", "structured log level: debug, info, warn, error, off")
	flag.Parse()
	// SIGINT/SIGTERM cancel the run cooperatively: the current experiment
	// stops at the next cancellation point, completed experiments keep
	// their flushed CSVs and manifest entries.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := realMain(ctx, o); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ibpsweep: interrupted; completed experiments are preserved (rerun with -resume)")
		} else {
			fmt.Fprintln(os.Stderr, "ibpsweep:", err)
		}
		os.Exit(1)
	}
}

func realMain(ctx context.Context, o options) error {
	level, err := telemetry.ParseLevel(o.logLevel)
	if err != nil {
		return err
	}
	log := telemetry.NewLogger(os.Stderr, level)
	if o.list {
		for _, e := range experiment.All() {
			fmt.Printf("%-12s %-28s %s\n", e.ID, e.Artifact, e.Desc)
		}
		return nil
	}
	if o.run == "" && o.benchJSON == "" {
		return fmt.Errorf("nothing to do: pass -run <ids>, -benchjson <file>, or -list")
	}
	if o.resume && o.csvDir == "" {
		return fmt.Errorf("-resume needs -csv: the manifest lives next to the CSVs")
	}

	// The registry is always on for a run: its cost is a handful of atomic
	// adds per 8192-record block, and the run manifest wants the snapshots.
	reg := telemetry.Enable(nil)
	if o.metricsDump != "" {
		defer func() {
			data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
			if err == nil {
				err = atomicWrite(o.metricsDump, append(data, '\n'))
			}
			if err != nil {
				log.Error("metrics dump failed", "path", o.metricsDump, "err", err)
			} else {
				log.Info("metrics snapshot written", "path", o.metricsDump)
			}
		}()
	}
	if o.metricsAddr != "" {
		srv, addr, err := telemetry.ServeMetrics(o.metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("-metrics %s: %w", o.metricsAddr, err)
		}
		defer srv.Close()
		log.Info("metrics endpoint listening", "addr", addr, "paths", "/metrics,/vars")
	}
	if o.pprofAddr != "" {
		srv, addr, err := telemetry.ServePprof(o.pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof %s: %w", o.pprofAddr, err)
		}
		defer srv.Close()
		log.Info("pprof endpoint listening", "addr", addr, "paths", "/debug/pprof/")
	}

	var selected []experiment.Experiment
	if o.run == "all" {
		// The appendix experiments share one computation; tableA1 runs
		// once on behalf of its aliases.
		alias := map[string]bool{"fig18": true, "table6": true, "tableA2": true}
		for _, e := range experiment.All() {
			if !alias[e.ID] {
				selected = append(selected, e)
			}
		}
	} else if o.run != "" {
		for _, id := range strings.Split(o.run, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if o.benchJSON != "" {
		return runBenchJSON(ctx, o.benchJSON, o.benchRaw, o.loadJSON, selected, o.traceLen)
	}

	ectx := experiment.NewContext(o.traceLen).WithContext(ctx)

	var man *manifest
	if o.csvDir != "" {
		if err := os.MkdirAll(o.csvDir, 0o755); err != nil {
			return err
		}
		var err error
		man, err = loadManifest(o.csvDir)
		if err != nil {
			return err
		}
		if o.resume {
			if len(man.Done) > 0 && man.TraceLen != ectx.TraceLen {
				return fmt.Errorf("manifest in %s was written with -n %d, current run uses -n %d; rerun with the matching -n or remove %s",
					o.csvDir, man.TraceLen, ectx.TraceLen, manifestName)
			}
		} else if len(man.Done) > 0 {
			// A fresh (non-resume) run invalidates the old journal.
			man.Done = make(map[string]manifestEntry)
		}
		man.TraceLen = ectx.TraceLen
		man.stamp(ectx)
	}

	var prog *progressRenderer
	if o.progress {
		prog = startProgress(os.Stderr, ectx, 250*time.Millisecond)
		defer prog.Stop()
	}

	var (
		completed         []string
		allDegraded       []experiment.CellError
		failedExperiments []string
	)
	// summary reports partial progress when the run is cut short; the
	// status line (if any) is stopped first so the summary lands on a
	// clean stderr line.
	summary := func() {
		if prog != nil {
			prog.Stop()
			prog = nil
		}
		printInterruptSummary(os.Stderr, ectx, completed, allDegraded)
	}
	for i, e := range selected {
		if err := ctx.Err(); err != nil {
			summary()
			return err
		}
		if man != nil && o.resume {
			if _, done := man.Done[e.ID]; done {
				fmt.Printf("=== %s (%s): already complete, skipping (resume)\n", e.ID, e.Artifact)
				continue
			}
		}
		if prog != nil {
			prog.SetLabel(fmt.Sprintf("%d/%d %s", i+1, len(selected), e.ID))
		}
		start := time.Now()
		before := reg.Snapshot()
		fmt.Printf("=== %s (%s): %s\n", e.ID, e.Artifact, e.Desc)
		log.Debug("experiment starting", "id", e.ID, "artifact", e.Artifact)
		tables, err := e.Run(ectx)
		degraded := ectx.TakeFailures()
		allDegraded = append(allDegraded, degraded...)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				summary()
				return err
			}
			// A broken experiment must not kill the rest of the sweep:
			// record it, keep going, fail at the end.
			log.Error("experiment failed", "id", e.ID, "err", err)
			failedExperiments = append(failedExperiments, fmt.Sprintf("%s: %v", e.ID, err))
			continue
		}
		wall := time.Since(start)
		entry := manifestEntry{
			CompletedAt: time.Now().UTC(),
			WallMs:      wall.Milliseconds(),
			Counters:    reg.Snapshot().Delta(before),
		}
		for _, d := range degraded {
			log.Warn("degraded cell", "id", e.ID, "cell", d.Bench, "err", d.Err)
			entry.DegradedCells = append(entry.DegradedCells, d.Error())
		}
		if err := emitTables(e.ID, tables, o.csvDir, &entry); err != nil {
			return err
		}
		if man != nil {
			man.Done[e.ID] = entry
			if err := man.save(o.csvDir); err != nil {
				return fmt.Errorf("journaling %s: %w", e.ID, err)
			}
		}
		completed = append(completed, e.ID)
		log.Info("experiment done", "id", e.ID, "wall", wall.Round(time.Millisecond),
			"tables", len(tables), "degraded", len(degraded))
		fmt.Printf("\n--- %s done in %v\n\n", e.ID, wall.Round(time.Millisecond))
	}
	if len(failedExperiments) > 0 {
		return fmt.Errorf("%d experiment(s) failed: %s",
			len(failedExperiments), strings.Join(failedExperiments, "; "))
	}
	return nil
}

// emitTables renders an experiment's tables to stdout and, when csvDir is
// set, writes each as an atomically-created CSV, recording the file names
// in the manifest entry.
func emitTables(id string, tables []*stats.Table, csvDir string, entry *manifestEntry) error {
	for i, tb := range tables {
		fmt.Println()
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		if csvDir == "" {
			continue
		}
		name := fmt.Sprintf("%s-%d.csv", id, i)
		var buf strings.Builder
		if err := tb.WriteCSV(&buf); err != nil {
			return err
		}
		if err := atomicWrite(filepath.Join(csvDir, name), []byte(buf.String())); err != nil {
			return err
		}
		entry.Files = append(entry.Files, name)
	}
	return nil
}
