// Command ibpsweep reproduces the paper's tables and figures: it runs the
// registered experiments over the 17-benchmark suite and prints paper-style
// result tables.
//
// Usage:
//
//	ibpsweep -list
//	ibpsweep -run fig9,table5 [-n 80000] [-csv results/]
//	ibpsweep -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/oocsb/ibp/internal/experiment"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		run      = flag.String("run", "", "comma-separated experiment ids, or \"all\"")
		traceLen = flag.Int("n", 0, "indirect branches per benchmark (default 80000)")
		csvDir   = flag.String("csv", "", "directory to write one CSV per result table")
	)
	flag.Parse()
	if err := realMain(*list, *run, *traceLen, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "ibpsweep:", err)
		os.Exit(1)
	}
}

func realMain(list bool, run string, traceLen int, csvDir string) error {
	if list {
		for _, e := range experiment.All() {
			fmt.Printf("%-12s %-28s %s\n", e.ID, e.Artifact, e.Desc)
		}
		return nil
	}
	if run == "" {
		return fmt.Errorf("nothing to do: pass -run <ids> or -list")
	}
	var selected []experiment.Experiment
	if run == "all" {
		// The appendix experiments share one computation; tableA1 runs
		// once on behalf of its aliases.
		alias := map[string]bool{"fig18": true, "table6": true, "tableA2": true}
		for _, e := range experiment.All() {
			if !alias[e.ID] {
				selected = append(selected, e)
			}
		}
	} else {
		for _, id := range strings.Split(run, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	ctx := experiment.NewContext(traceLen)
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("=== %s (%s): %s\n", e.ID, e.Artifact, e.Desc)
		tables, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for i, tb := range tables {
			fmt.Println()
			if err := tb.Render(os.Stdout); err != nil {
				return err
			}
			if csvDir != "" {
				name := fmt.Sprintf("%s-%d.csv", e.ID, i)
				f, err := os.Create(filepath.Join(csvDir, name))
				if err != nil {
					return err
				}
				if err := tb.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
		fmt.Printf("\n--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
