// Command ibpsweep reproduces the paper's tables and figures: it runs the
// registered experiments over the 17-benchmark suite and prints paper-style
// result tables.
//
// The sweep is fault tolerant: Ctrl-C stops it cleanly after flushing every
// completed experiment, CSVs are written atomically (a killed run never
// leaves a half-written file), each completed experiment is journaled to
// <csvdir>/.sweep-manifest.json, and -resume skips experiments the manifest
// already records — so an interrupted "-run all" picks up where it left off.
//
// Usage:
//
//	ibpsweep -list
//	ibpsweep -run fig9,table5 [-n 80000] [-csv results/]
//	ibpsweep -run all -csv results/
//	ibpsweep -run all -csv results/ -resume
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/oocsb/ibp/internal/experiment"
	"github.com/oocsb/ibp/internal/stats"
)

// manifestName is the sweep journal, stored next to the CSVs.
const manifestName = ".sweep-manifest.json"

// manifest journals which experiments of a sweep have completed, so an
// interrupted run can resume without recomputing them.
type manifest struct {
	// Version is the manifest schema version.
	Version int `json:"version"`
	// TraceLen is the -n the results were computed with; resuming with a
	// different length is refused.
	TraceLen int `json:"trace_len"`
	// Done maps experiment id to its completion record.
	Done map[string]manifestEntry `json:"done"`
}

type manifestEntry struct {
	CompletedAt time.Time `json:"completed_at"`
	// Files are the CSV files the experiment produced.
	Files []string `json:"files,omitempty"`
	// DegradedCells lists benchmark cells that failed and were recorded
	// as error rows instead of aborting (format "bench: error").
	DegradedCells []string `json:"degraded_cells,omitempty"`
}

// loadManifest reads the journal; a missing file yields an empty manifest.
func loadManifest(dir string) (*manifest, error) {
	m := &manifest{Version: 1, Done: make(map[string]manifestEntry)}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("%s: corrupt manifest: %w", filepath.Join(dir, manifestName), err)
	}
	if m.Done == nil {
		m.Done = make(map[string]manifestEntry)
	}
	return m, nil
}

// save writes the journal atomically (temp file + rename), so a crash
// mid-write can never corrupt the previous journal.
func (m *manifest) save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, manifestName), data)
}

// atomicWrite writes data to path via a temp file in the same directory and
// an atomic rename; readers never observe a partial file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments and exit")
		run       = flag.String("run", "", "comma-separated experiment ids, or \"all\"")
		traceLen  = flag.Int("n", 0, "indirect branches per benchmark (default 80000)")
		csvDir    = flag.String("csv", "", "directory to write one CSV per result table")
		resume    = flag.Bool("resume", false, "skip experiments already journaled in the -csv dir's manifest")
		benchJSON = flag.String("benchjson", "", "write a benchmark snapshot (predictor ns/branch + experiment wall-times) to this JSON file instead of printing tables")
		benchRaw  = flag.String("benchraw", "", "with -benchjson: embed parsed `go test -bench` output from this file")
	)
	flag.Parse()
	// SIGINT/SIGTERM cancel the run cooperatively: the current experiment
	// stops at the next cancellation point, completed experiments keep
	// their flushed CSVs and manifest entries.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := realMain(ctx, *list, *run, *traceLen, *csvDir, *resume, *benchJSON, *benchRaw); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ibpsweep: interrupted; completed experiments are preserved (rerun with -resume)")
		} else {
			fmt.Fprintln(os.Stderr, "ibpsweep:", err)
		}
		os.Exit(1)
	}
}

func realMain(ctx context.Context, list bool, run string, traceLen int, csvDir string, resume bool, benchJSON, benchRaw string) error {
	if list {
		for _, e := range experiment.All() {
			fmt.Printf("%-12s %-28s %s\n", e.ID, e.Artifact, e.Desc)
		}
		return nil
	}
	if run == "" && benchJSON == "" {
		return fmt.Errorf("nothing to do: pass -run <ids>, -benchjson <file>, or -list")
	}
	if resume && csvDir == "" {
		return fmt.Errorf("-resume needs -csv: the manifest lives next to the CSVs")
	}
	var selected []experiment.Experiment
	if run == "all" {
		// The appendix experiments share one computation; tableA1 runs
		// once on behalf of its aliases.
		alias := map[string]bool{"fig18": true, "table6": true, "tableA2": true}
		for _, e := range experiment.All() {
			if !alias[e.ID] {
				selected = append(selected, e)
			}
		}
	} else if run != "" {
		for _, id := range strings.Split(run, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if benchJSON != "" {
		return runBenchJSON(ctx, benchJSON, benchRaw, selected, traceLen)
	}

	var man *manifest
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		var err error
		man, err = loadManifest(csvDir)
		if err != nil {
			return err
		}
		effLen := traceLen
		if effLen <= 0 {
			effLen = experiment.NewContext(0).TraceLen
		}
		if resume {
			if len(man.Done) > 0 && man.TraceLen != effLen {
				return fmt.Errorf("manifest in %s was written with -n %d, current run uses -n %d; rerun with the matching -n or remove %s",
					csvDir, man.TraceLen, effLen, manifestName)
			}
		} else if len(man.Done) > 0 {
			// A fresh (non-resume) run invalidates the old journal.
			man.Done = make(map[string]manifestEntry)
		}
		man.TraceLen = effLen
	}

	ectx := experiment.NewContext(traceLen).WithContext(ctx)
	var failedExperiments []string
	for _, e := range selected {
		if err := ctx.Err(); err != nil {
			return err
		}
		if man != nil && resume {
			if _, done := man.Done[e.ID]; done {
				fmt.Printf("=== %s (%s): already complete, skipping (resume)\n", e.ID, e.Artifact)
				continue
			}
		}
		start := time.Now()
		fmt.Printf("=== %s (%s): %s\n", e.ID, e.Artifact, e.Desc)
		tables, err := e.Run(ectx)
		degraded := ectx.TakeFailures()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			// A broken experiment must not kill the rest of the sweep:
			// record it, keep going, fail at the end.
			fmt.Fprintf(os.Stderr, "ibpsweep: %s failed: %v\n", e.ID, err)
			failedExperiments = append(failedExperiments, fmt.Sprintf("%s: %v", e.ID, err))
			continue
		}
		entry := manifestEntry{CompletedAt: time.Now().UTC()}
		for _, d := range degraded {
			fmt.Fprintf(os.Stderr, "ibpsweep: %s: degraded cell %v\n", e.ID, d)
			entry.DegradedCells = append(entry.DegradedCells, d.Error())
		}
		if err := emitTables(e.ID, tables, csvDir, &entry); err != nil {
			return err
		}
		if man != nil {
			man.Done[e.ID] = entry
			if err := man.save(csvDir); err != nil {
				return fmt.Errorf("journaling %s: %w", e.ID, err)
			}
		}
		fmt.Printf("\n--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if len(failedExperiments) > 0 {
		return fmt.Errorf("%d experiment(s) failed: %s",
			len(failedExperiments), strings.Join(failedExperiments, "; "))
	}
	return nil
}

// emitTables renders an experiment's tables to stdout and, when csvDir is
// set, writes each as an atomically-created CSV, recording the file names
// in the manifest entry.
func emitTables(id string, tables []*stats.Table, csvDir string, entry *manifestEntry) error {
	for i, tb := range tables {
		fmt.Println()
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		if csvDir == "" {
			continue
		}
		name := fmt.Sprintf("%s-%d.csv", id, i)
		var buf strings.Builder
		if err := tb.WriteCSV(&buf); err != nil {
			return err
		}
		if err := atomicWrite(filepath.Join(csvDir, name), []byte(buf.String())); err != nil {
			return err
		}
		entry.Files = append(entry.Files, name)
	}
	return nil
}
