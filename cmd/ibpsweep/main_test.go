package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/experiment"
	"github.com/oocsb/ibp/internal/telemetry"
)

func bg() context.Context { return context.Background() }

// sweep runs realMain with -run set, defaulting everything else.
func sweep(ctx context.Context, run string, n int, mod func(*options)) error {
	o := options{run: run, traceLen: n, logLevel: "off"}
	if mod != nil {
		mod(&o)
	}
	return realMain(ctx, o)
}

func TestRealMainList(t *testing.T) {
	if err := realMain(bg(), options{list: true, logLevel: "off"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRealMainNoArgs(t *testing.T) {
	if err := realMain(bg(), options{logLevel: "off"}); err == nil {
		t.Fatal("no -run accepted")
	}
}

func TestRealMainUnknownExperiment(t *testing.T) {
	if err := sweep(bg(), "nonesuch", 0, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRealMainBadLogLevel(t *testing.T) {
	if err := realMain(bg(), options{list: true, logLevel: "shouty"}); err == nil {
		t.Fatal("invalid -log level accepted")
	}
}

func TestRealMainRunsAndWritesCSV(t *testing.T) {
	dir := t.TempDir()
	// table1 is cheap even at a moderate trace length.
	if err := sweep(bg(), "table1", 2000, func(o *options) { o.csvDir = dir }); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "table1-*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
	// No temp files may survive the atomic writes.
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}

func TestRealMainCommaSeparated(t *testing.T) {
	if err := sweep(bg(), "table1, sites", 1500, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := sweep(ctx, "table1", 2000, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRealMainResumeNeedsCSV(t *testing.T) {
	if err := sweep(bg(), "table1", 2000, func(o *options) { o.resume = true }); err == nil {
		t.Fatal("-resume without -csv accepted")
	}
}

func TestBenchJSONSnapshot(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "bench.txt")
	rawText := "goos: linux\nBenchmarkFig17HybridMatrix \t       3\t  52365556 ns/op\nPASS\n"
	if err := os.WriteFile(raw, []byte(rawText), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_test.json")
	err := sweep(bg(), "table1", 1500, func(o *options) { o.benchJSON, o.benchRaw = out, raw })
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if rep.Date == "" || rep.GoVersion == "" || rep.TraceLen != 1500 {
		t.Errorf("missing metadata: %+v", rep)
	}
	if len(rep.Predictors) == 0 {
		t.Fatal("no predictor measurements")
	}
	for _, p := range rep.Predictors {
		if p.NsBranch <= 0 {
			t.Errorf("%s: ns/branch = %v", p.Name, p.NsBranch)
		}
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "table1" {
		t.Errorf("experiments = %+v", rep.Experiments)
	}
	if len(rep.GoTest) != 1 || rep.GoTest[0].Name != "BenchmarkFig17HybridMatrix" ||
		rep.GoTest[0].NsOp != 52365556 {
		t.Errorf("go test results not embedded: %+v", rep.GoTest)
	}
}

func readManifest(t *testing.T, dir string) *manifest {
	t.Helper()
	m, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManifestJournalsCompletion(t *testing.T) {
	dir := t.TempDir()
	if err := sweep(bg(), "table1,sites", 1500, func(o *options) { o.csvDir = dir }); err != nil {
		t.Fatal(err)
	}
	m := readManifest(t, dir)
	if m.TraceLen != 1500 {
		t.Errorf("manifest trace_len = %d, want 1500", m.TraceLen)
	}
	for _, id := range []string{"table1", "sites"} {
		e, ok := m.Done[id]
		if !ok {
			t.Fatalf("experiment %s not journaled: %+v", id, m.Done)
		}
		if len(e.Files) == 0 || e.CompletedAt.IsZero() {
			t.Errorf("incomplete journal entry for %s: %+v", id, e)
		}
		for _, f := range e.Files {
			if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
				t.Errorf("journaled file missing: %v", err)
			}
		}
	}
}

// TestRunManifestProvenance pins the run-manifest schema: tool/Go versions,
// platform, workload seeds, and per-experiment wall time + telemetry counter
// movement must all be journaled.
func TestRunManifestProvenance(t *testing.T) {
	dir := t.TempDir()
	// fig9 exercises the batched sweep path, so sweep_*/sim_* counters move.
	if err := sweep(bg(), "fig9", 1500, func(o *options) { o.csvDir = dir }); err != nil {
		t.Fatal(err)
	}
	m := readManifest(t, dir)
	if m.Version != 2 {
		t.Errorf("manifest version = %d, want 2", m.Version)
	}
	if m.ToolVersion != toolVersion || m.GoVersion != runtime.Version() {
		t.Errorf("tool provenance missing: tool=%q go=%q", m.ToolVersion, m.GoVersion)
	}
	if m.GOOS != runtime.GOOS || m.GOARCH != runtime.GOARCH {
		t.Errorf("platform missing: %s/%s", m.GOOS, m.GOARCH)
	}
	if len(m.Suite) == 0 {
		t.Fatal("workload suite provenance missing")
	}
	for _, s := range m.Suite {
		if s.Name == "" || s.Seed == 0 {
			t.Errorf("suite entry missing name or seed: %+v", s)
		}
	}
	e, ok := m.Done["fig9"]
	if !ok {
		t.Fatal("fig9 not journaled")
	}
	if len(e.Counters) == 0 {
		t.Error("no telemetry counters journaled for fig9")
	}
	for _, want := range []string{"sim_records_total", "sweep_cells_done_total"} {
		if e.Counters[want] <= 0 {
			t.Errorf("counter %s = %v, want > 0 (have %v)", want, e.Counters[want], e.Counters)
			break
		}
	}
}

func TestResumeSkipsCompleted(t *testing.T) {
	dir := t.TempDir()
	if err := sweep(bg(), "table1", 1500, func(o *options) { o.csvDir = dir }); err != nil {
		t.Fatal(err)
	}
	first := readManifest(t, dir)
	stamp := first.Done["table1"].CompletedAt

	// Resume with one more experiment: table1 must be skipped (its
	// timestamp survives), sites must run.
	err := sweep(bg(), "table1,sites", 1500, func(o *options) { o.csvDir, o.resume = dir, true })
	if err != nil {
		t.Fatal(err)
	}
	m := readManifest(t, dir)
	if got := m.Done["table1"].CompletedAt; !got.Equal(stamp) {
		t.Errorf("table1 was recomputed: %v != %v", got, stamp)
	}
	if _, ok := m.Done["sites"]; !ok {
		t.Error("sites not journaled after resume")
	}
}

func TestResumeRejectsTraceLenMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := sweep(bg(), "table1", 1500, func(o *options) { o.csvDir = dir }); err != nil {
		t.Fatal(err)
	}
	err := sweep(bg(), "table1", 3000, func(o *options) { o.csvDir, o.resume = dir, true })
	if err == nil || !strings.Contains(err.Error(), "-n") {
		t.Fatalf("trace-length mismatch accepted on resume: %v", err)
	}
}

func TestFreshRunInvalidatesManifest(t *testing.T) {
	dir := t.TempDir()
	if err := sweep(bg(), "table1,sites", 1500, func(o *options) { o.csvDir = dir }); err != nil {
		t.Fatal(err)
	}
	// A non-resume run clears previous completions and journals only its
	// own experiments.
	if err := sweep(bg(), "table1", 1500, func(o *options) { o.csvDir = dir }); err != nil {
		t.Fatal(err)
	}
	m := readManifest(t, dir)
	if _, ok := m.Done["sites"]; ok {
		t.Error("stale manifest entry survived a fresh run")
	}
	if _, ok := m.Done["table1"]; !ok {
		t.Error("fresh run not journaled")
	}
}

func TestLoadManifestCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadManifest(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := atomicWrite(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := atomicWrite(path, []byte("world")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "world" {
		t.Fatalf("read %q, %v", data, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("stray files: %v", entries)
	}
}

// TestInterruptMidSweep simulates the SIGINT acceptance flow in-process: a
// context cancelled partway through "-run" of two experiments must leave
// the completed experiment's CSVs + manifest intact, and -resume must
// finish only the remainder.
func TestInterruptMidSweep(t *testing.T) {
	dir := t.TempDir()
	// Cancel shortly after the run starts: table1 (cheap, first) usually
	// completes; the second experiment observes cancellation. Whatever the
	// timing, invariants must hold.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	err := sweep(ctx, "table1,fig9", 60000, func(o *options) { o.csvDir = dir })
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error: %v", err)
	}
	m := readManifest(t, dir)
	// Every journaled experiment's files must exist and parse as CSV.
	for id, e := range m.Done {
		for _, f := range e.Files {
			data, err := os.ReadFile(filepath.Join(dir, f))
			if err != nil || len(data) == 0 {
				t.Errorf("journaled %s file %s: %v", id, f, err)
			}
		}
	}
	// No partial temp files.
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
	// Resume must finish the sweep.
	err = sweep(bg(), "table1,fig9", 60000, func(o *options) { o.csvDir, o.resume = dir, true })
	if err != nil {
		t.Fatal(err)
	}
	m = readManifest(t, dir)
	for _, id := range []string{"table1", "fig9"} {
		if _, ok := m.Done[id]; !ok {
			t.Errorf("%s missing after resume", id)
		}
	}
}

// TestMetricsAndPprofServe checks the observability endpoints: a sweep run
// with -metrics and -pprof on ephemeral ports must start both servers, and
// the telemetry endpoint must serve Prometheus text and JSON directly.
func TestMetricsAndPprofServe(t *testing.T) {
	err := sweep(bg(), "table1", 1500, func(o *options) {
		o.metricsAddr = "127.0.0.1:0"
		o.pprofAddr = "127.0.0.1:0"
	})
	if err != nil {
		t.Fatalf("sweep with -metrics/-pprof: %v", err)
	}

	// Exercise the endpoints against a live server (realMain closed its
	// own on exit; bind a fresh one to inspect responses).
	reg := telemetry.Enable(nil)
	defer telemetry.Disable()
	reg.Counter("sweep_demo_total").Add(3)
	srv, addr, err := telemetry.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "sweep_demo_total 3") {
		t.Errorf("metrics endpoint: status %d, body %q", resp.StatusCode, body)
	}
	psrv, paddr, err := telemetry.ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()
	resp, err = http.Get("http://" + paddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: status %d", resp.StatusCode)
	}
}

func TestMetricsDump(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "metrics.json")
	err := sweep(bg(), "fig9", 1500, func(o *options) { o.metricsDump = dump })
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]float64
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics dump is not a JSON snapshot: %v", err)
	}
	if snap["sim_records_total"] <= 0 {
		t.Errorf("sim_records_total = %v, want > 0 (snapshot %v)", snap["sim_records_total"], snap)
	}
}

// TestProgressLineAndInterruptSummary unit-tests the renderer's line format
// and the partial-progress summary against a fabricated context state.
func TestProgressLineAndInterruptSummary(t *testing.T) {
	ectx := experiment.NewContext(1500)
	// Run one real (cheap) experiment so the progress counters move.
	e, err := experiment.ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(ectx); err != nil {
		t.Fatal(err)
	}
	s := ectx.Progress()
	if s.CellsTotal == 0 || s.CellsDone != s.CellsTotal {
		t.Fatalf("progress after a full run: %+v", s)
	}
	if s.Executed == 0 || s.MissRate() <= 0 {
		t.Errorf("no rolling miss rate: %+v", s)
	}

	p := &progressRenderer{ectx: ectx}
	p.label.Store("2/24 fig9")
	line := p.line()
	for _, want := range []string{"sweep [2/24 fig9]", "cells ", "miss "} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}

	// Stop must be idempotent: the interrupt path stops the renderer for
	// the summary, then the deferred Stop fires again.
	live := startProgress(io.Discard, ectx, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	live.Stop()
	live.Stop()

	var buf strings.Builder
	printInterruptSummary(&buf, ectx, []string{"fig9"},
		[]experiment.CellError{{Bench: "perl", Err: errors.New("boom")}})
	out := buf.String()
	for _, want := range []string{"interrupted after", "1 experiment(s) completed",
		"rolling miss rate", "completed: [fig9]", "degraded cell: perl: boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
