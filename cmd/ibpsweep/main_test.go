package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRealMainList(t *testing.T) {
	if err := realMain(true, "", 0, ""); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRealMainNoArgs(t *testing.T) {
	if err := realMain(false, "", 0, ""); err == nil {
		t.Fatal("no -run accepted")
	}
}

func TestRealMainUnknownExperiment(t *testing.T) {
	if err := realMain(false, "nonesuch", 0, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRealMainRunsAndWritesCSV(t *testing.T) {
	dir := t.TempDir()
	// table1 is cheap even at a moderate trace length.
	if err := realMain(false, "table1", 2000, dir); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "table1-*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
}

func TestRealMainCommaSeparated(t *testing.T) {
	if err := realMain(false, "table1, sites", 1500, ""); err != nil {
		t.Fatal(err)
	}
}
