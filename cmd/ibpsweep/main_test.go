package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func bg() context.Context { return context.Background() }

func TestRealMainList(t *testing.T) {
	if err := realMain(bg(), true, "", 0, "", false, "", ""); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRealMainNoArgs(t *testing.T) {
	if err := realMain(bg(), false, "", 0, "", false, "", ""); err == nil {
		t.Fatal("no -run accepted")
	}
}

func TestRealMainUnknownExperiment(t *testing.T) {
	if err := realMain(bg(), false, "nonesuch", 0, "", false, "", ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRealMainRunsAndWritesCSV(t *testing.T) {
	dir := t.TempDir()
	// table1 is cheap even at a moderate trace length.
	if err := realMain(bg(), false, "table1", 2000, dir, false, "", ""); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "table1-*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
	// No temp files may survive the atomic writes.
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}

func TestRealMainCommaSeparated(t *testing.T) {
	if err := realMain(bg(), false, "table1, sites", 1500, "", false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := realMain(ctx, false, "table1", 2000, "", false, "", "")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRealMainResumeNeedsCSV(t *testing.T) {
	if err := realMain(bg(), false, "table1", 2000, "", true, "", ""); err == nil {
		t.Fatal("-resume without -csv accepted")
	}
}

func TestBenchJSONSnapshot(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "bench.txt")
	rawText := "goos: linux\nBenchmarkFig17HybridMatrix \t       3\t  52365556 ns/op\nPASS\n"
	if err := os.WriteFile(raw, []byte(rawText), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_test.json")
	if err := realMain(bg(), false, "table1", 1500, "", false, out, raw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if rep.Date == "" || rep.GoVersion == "" || rep.TraceLen != 1500 {
		t.Errorf("missing metadata: %+v", rep)
	}
	if len(rep.Predictors) == 0 {
		t.Fatal("no predictor measurements")
	}
	for _, p := range rep.Predictors {
		if p.NsBranch <= 0 {
			t.Errorf("%s: ns/branch = %v", p.Name, p.NsBranch)
		}
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "table1" {
		t.Errorf("experiments = %+v", rep.Experiments)
	}
	if len(rep.GoTest) != 1 || rep.GoTest[0].Name != "BenchmarkFig17HybridMatrix" ||
		rep.GoTest[0].NsOp != 52365556 {
		t.Errorf("go test results not embedded: %+v", rep.GoTest)
	}
}

func readManifest(t *testing.T, dir string) *manifest {
	t.Helper()
	m, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManifestJournalsCompletion(t *testing.T) {
	dir := t.TempDir()
	if err := realMain(bg(), false, "table1,sites", 1500, dir, false, "", ""); err != nil {
		t.Fatal(err)
	}
	m := readManifest(t, dir)
	if m.TraceLen != 1500 {
		t.Errorf("manifest trace_len = %d, want 1500", m.TraceLen)
	}
	for _, id := range []string{"table1", "sites"} {
		e, ok := m.Done[id]
		if !ok {
			t.Fatalf("experiment %s not journaled: %+v", id, m.Done)
		}
		if len(e.Files) == 0 || e.CompletedAt.IsZero() {
			t.Errorf("incomplete journal entry for %s: %+v", id, e)
		}
		for _, f := range e.Files {
			if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
				t.Errorf("journaled file missing: %v", err)
			}
		}
	}
}

func TestResumeSkipsCompleted(t *testing.T) {
	dir := t.TempDir()
	if err := realMain(bg(), false, "table1", 1500, dir, false, "", ""); err != nil {
		t.Fatal(err)
	}
	first := readManifest(t, dir)
	stamp := first.Done["table1"].CompletedAt

	// Resume with one more experiment: table1 must be skipped (its
	// timestamp survives), sites must run.
	if err := realMain(bg(), false, "table1,sites", 1500, dir, true, "", ""); err != nil {
		t.Fatal(err)
	}
	m := readManifest(t, dir)
	if got := m.Done["table1"].CompletedAt; !got.Equal(stamp) {
		t.Errorf("table1 was recomputed: %v != %v", got, stamp)
	}
	if _, ok := m.Done["sites"]; !ok {
		t.Error("sites not journaled after resume")
	}
}

func TestResumeRejectsTraceLenMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := realMain(bg(), false, "table1", 1500, dir, false, "", ""); err != nil {
		t.Fatal(err)
	}
	err := realMain(bg(), false, "table1", 3000, dir, true, "", "")
	if err == nil || !strings.Contains(err.Error(), "-n") {
		t.Fatalf("trace-length mismatch accepted on resume: %v", err)
	}
}

func TestFreshRunInvalidatesManifest(t *testing.T) {
	dir := t.TempDir()
	if err := realMain(bg(), false, "table1,sites", 1500, dir, false, "", ""); err != nil {
		t.Fatal(err)
	}
	// A non-resume run clears previous completions and journals only its
	// own experiments.
	if err := realMain(bg(), false, "table1", 1500, dir, false, "", ""); err != nil {
		t.Fatal(err)
	}
	m := readManifest(t, dir)
	if _, ok := m.Done["sites"]; ok {
		t.Error("stale manifest entry survived a fresh run")
	}
	if _, ok := m.Done["table1"]; !ok {
		t.Error("fresh run not journaled")
	}
}

func TestLoadManifestCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadManifest(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := atomicWrite(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := atomicWrite(path, []byte("world")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "world" {
		t.Fatalf("read %q, %v", data, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("stray files: %v", entries)
	}
}

// TestInterruptMidSweep simulates the SIGINT acceptance flow in-process: a
// context cancelled partway through "-run" of two experiments must leave
// the completed experiment's CSVs + manifest intact, and -resume must
// finish only the remainder.
func TestInterruptMidSweep(t *testing.T) {
	dir := t.TempDir()
	// Cancel shortly after the run starts: table1 (cheap, first) usually
	// completes; the second experiment observes cancellation. Whatever the
	// timing, invariants must hold.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	err := realMain(ctx, false, "table1,fig9", 60000, dir, false, "", "")
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error: %v", err)
	}
	m := readManifest(t, dir)
	// Every journaled experiment's files must exist and parse as CSV.
	for id, e := range m.Done {
		for _, f := range e.Files {
			data, err := os.ReadFile(filepath.Join(dir, f))
			if err != nil || len(data) == 0 {
				t.Errorf("journaled %s file %s: %v", id, f, err)
			}
		}
	}
	// No partial temp files.
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
	// Resume must finish the sweep.
	if err := realMain(bg(), false, "table1,fig9", 60000, dir, true, "", ""); err != nil {
		t.Fatal(err)
	}
	m = readManifest(t, dir)
	for _, id := range []string{"table1", "fig9"} {
		if _, ok := m.Done[id]; !ok {
			t.Errorf("%s missing after resume", id)
		}
	}
}
