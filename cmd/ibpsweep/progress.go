// Live sweep progress: a background renderer that polls the experiment
// context's progress counters a few times per second and keeps one
// carriage-return status line updated on the terminal, plus the partial
// progress summary printed when a run is interrupted.
package main

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oocsb/ibp/internal/experiment"
)

// progressRenderer drives the -progress status line. It owns exactly one
// terminal line on w: every tick rewrites it in place (CR + clear), Stop
// erases it so subsequent output starts clean.
type progressRenderer struct {
	w        io.Writer
	ectx     *experiment.Context
	label    atomic.Value // string: "3/24 fig17"
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// startProgress launches the renderer, updating every interval.
func startProgress(w io.Writer, ectx *experiment.Context, interval time.Duration) *progressRenderer {
	p := &progressRenderer{
		w:    w,
		ectx: ectx,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	p.label.Store("")
	go p.loop(interval)
	return p
}

// SetLabel names the experiment currently running, e.g. "3/24 fig17".
func (p *progressRenderer) SetLabel(s string) { p.label.Store(s) }

func (p *progressRenderer) loop(interval time.Duration) {
	defer close(p.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			// Erase the status line so the next writer gets a clean one.
			fmt.Fprint(p.w, "\r\x1b[2K")
			return
		case <-t.C:
			fmt.Fprintf(p.w, "\r\x1b[2K%s", p.line())
		}
	}
}

// line renders the current status: cells done/total, rolling miss rate, and
// the extrapolated time to completion.
func (p *progressRenderer) line() string {
	s := p.ectx.Progress()
	label, _ := p.label.Load().(string)
	out := fmt.Sprintf("sweep [%s]", label)
	if s.CellsTotal > 0 {
		out += fmt.Sprintf(" cells %d/%d (%.0f%%)", s.CellsDone, s.CellsTotal,
			100*float64(s.CellsDone)/float64(s.CellsTotal))
	} else {
		out += " starting"
	}
	if s.Executed > 0 {
		out += fmt.Sprintf(" · miss %.2f%%", s.MissRate())
	}
	if s.Elapsed > 0 {
		out += " · elapsed " + s.Elapsed.Round(time.Second).String()
	}
	if eta := s.ETA(); eta > 0 {
		out += " · eta " + eta.Round(time.Second).String()
	}
	if s.CellsFailed > 0 {
		out += fmt.Sprintf(" · %d degraded", s.CellsFailed)
	}
	return out
}

// Stop halts the renderer and erases the status line. Idempotent: the
// interrupt-summary path stops it early and the deferred Stop follows.
func (p *progressRenderer) Stop() {
	p.stopOnce.Do(func() {
		close(p.stop)
		<-p.done
	})
}

// printInterruptSummary reports where an interrupted run got to: experiments
// and sweep cells completed, plus every degraded cell recorded before the
// interrupt — so Ctrl-C ends with an accounting of the partial work instead
// of a bare context error.
func printInterruptSummary(w io.Writer, ectx *experiment.Context, completed []string, degraded []experiment.CellError) {
	s := ectx.Progress()
	fmt.Fprintf(w, "ibpsweep: interrupted after %s: %d experiment(s) completed, %d/%d sweep cells done",
		s.Elapsed.Round(time.Second), len(completed), s.CellsDone, s.CellsTotal)
	if s.Executed > 0 {
		fmt.Fprintf(w, ", rolling miss rate %.2f%%", s.MissRate())
	}
	fmt.Fprintln(w)
	if len(completed) > 0 {
		fmt.Fprintf(w, "ibpsweep:   completed: %v\n", completed)
	}
	for _, d := range degraded {
		fmt.Fprintf(w, "ibpsweep:   degraded cell: %v\n", d)
	}
}
