// Command ibptop is the cluster's live session dashboard: it consumes the
// /sessions/stream NDJSON feed of an ibpserved or ibprouter -metrics
// endpoint and renders a refreshing terminal table of the top sessions by
// windowed miss rate, records/s, or queue wait, under a header with backend
// health and aggregate throughput. Against a router with -backendmetrics
// configured the stream is the cluster-wide fan-in view, so every session
// shows the backend it is placed on plus its journal/failover state.
//
// Examples:
//
//	ibptop -addr 127.0.0.1:9092                  # live, 1s refresh
//	ibptop -addr 127.0.0.1:9092 -sort rps -n 20  # top 20 by records/s
//	ibptop -addr 127.0.0.1:9092 -once -json      # one snapshot for scripts
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/oocsb/ibp/internal/sessiontrack"
	"github.com/oocsb/ibp/internal/telemetry"
)

type options struct {
	addr     string
	interval time.Duration
	sortKey  string
	n        int
	once     bool
	asJSON   bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:9091", "-metrics address of an ibpserved or ibprouter")
	flag.DurationVar(&o.interval, "interval", time.Second, "refresh interval")
	flag.StringVar(&o.sortKey, "sort", sessiontrack.SortMissRate, "session order: missrate, rps, wait, records, id")
	flag.IntVar(&o.n, "n", 0, "show at most N sessions (0 = all)")
	flag.BoolVar(&o.once, "once", false, "take one snapshot and exit")
	flag.BoolVar(&o.asJSON, "json", false, "emit JSON instead of the table (with -once: one document; live: raw NDJSON passthrough)")
	flag.Parse()
	if err := realMain(o); err != nil {
		fmt.Fprintln(os.Stderr, "ibptop:", err)
		os.Exit(1)
	}
}

// tick is one fully received stream interval.
type tick struct {
	Tick     sessiontrack.TickLine      `json:"tick"`
	Sessions []sessiontrack.SessionLine `json:"sessions"`
	Stats    telemetry.Snapshot         `json:"stats,omitempty"`
}

func streamURL(o options, ticks int) string {
	q := url.Values{}
	q.Set("interval", o.interval.String())
	q.Set("sort", o.sortKey)
	if o.n > 0 {
		q.Set("limit", fmt.Sprint(o.n))
	}
	if ticks > 0 {
		q.Set("ticks", fmt.Sprint(ticks))
	}
	return fmt.Sprintf("http://%s/sessions/stream?%s", o.addr, q.Encode())
}

// readTicks parses the NDJSON stream, assembling lines into ticks and
// calling each for every completed one. A tick completes when the next tick
// line (or EOF) arrives; when the feed carries stats lines, the stats line
// completes the tick early so rendering does not lag an interval.
func readTicks(r io.Reader, each func(tick) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur *tick
	flush := func() error {
		if cur == nil {
			return nil
		}
		t := *cur
		cur = nil
		return each(t)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			continue // not a feed line (SSE framing etc.)
		}
		switch probe.Type {
		case "tick":
			if err := flush(); err != nil {
				return err
			}
			cur = &tick{}
			if err := json.Unmarshal(line, &cur.Tick); err != nil {
				return fmt.Errorf("bad tick line: %w", err)
			}
		case "session":
			if cur == nil {
				continue
			}
			var sl sessiontrack.SessionLine
			if err := json.Unmarshal(line, &sl); err != nil {
				return fmt.Errorf("bad session line: %w", err)
			}
			cur.Sessions = append(cur.Sessions, sl)
		case "stats":
			if cur == nil {
				continue
			}
			var st sessiontrack.StatsLine
			if err := json.Unmarshal(line, &st); err != nil {
				return fmt.Errorf("bad stats line: %w", err)
			}
			cur.Stats = st.Delta
			if err := flush(); err != nil {
				return err
			}
		case "error":
			var el sessiontrack.ErrorLine
			json.Unmarshal(line, &el)
			fmt.Fprintln(os.Stderr, "ibptop: stream:", el.Error)
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return sc.Err()
}

func realMain(o options) error {
	if o.once {
		return runOnce(o)
	}
	return runLive(o)
}

func runOnce(o options) error {
	resp, err := http.Get(streamURL(o, 1))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /sessions/stream: %s", resp.Status)
	}
	var got *tick
	if err := readTicks(resp.Body, func(t tick) error { got = &t; return nil }); err != nil {
		return err
	}
	if got == nil {
		return fmt.Errorf("stream ended without a tick")
	}
	if o.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(got)
	}
	fmt.Print(render(*got, o.n))
	return nil
}

func runLive(o options) error {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Print("\x1b[0m\n")
		os.Exit(0)
	}()
	retries := 0
	for {
		err := streamOnce(o)
		if err == nil {
			return nil // server closed the stream cleanly (shutdown)
		}
		retries++
		if retries > 5 {
			return err
		}
		fmt.Fprintf(os.Stderr, "ibptop: stream lost (%v), reconnecting...\n", err)
		time.Sleep(o.interval)
	}
}

func streamOnce(o options) error {
	resp, err := http.Get(streamURL(o, 0))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /sessions/stream: %s", resp.Status)
	}
	if o.asJSON { // raw NDJSON passthrough for piping
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	return readTicks(resp.Body, func(t tick) error {
		// Clear screen + home, then the rendered frame.
		fmt.Print("\x1b[2J\x1b[H" + render(t, o.n))
		return nil
	})
}

// render draws one tick: header (service, backends, aggregates) + table.
func render(t tick, n int) string {
	var b strings.Builder
	name := t.Tick.Service
	if t.Tick.Tag != "" {
		name += "/" + t.Tick.Tag
	}
	when := time.Unix(0, t.Tick.UnixNS).Format("15:04:05")
	fmt.Fprintf(&b, "%s  %s  sessions: %d", name, when, t.Tick.Sessions)
	var aggRPS, aggExec, aggMiss float64
	for _, s := range t.Sessions {
		aggRPS += s.Session.Win.RecordsPerSec
		aggExec += float64(s.Session.Win.Executed)
		aggMiss += float64(s.Session.Win.Misses)
	}
	fmt.Fprintf(&b, "  win: %s rec/s", humanCount(aggRPS))
	if aggExec > 0 {
		fmt.Fprintf(&b, ", %.2f%% miss", 100*aggMiss/aggExec)
	}
	b.WriteByte('\n')
	if len(t.Tick.Backends) > 0 {
		b.WriteString("backends:")
		for _, be := range t.Tick.Backends {
			fmt.Fprintf(&b, "  %s %s(%d)", be.Addr, be.State, be.Sessions)
			if be.Err != "" {
				b.WriteString(" [poll: " + be.Err + "]")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-5s %-10s %-8s %-21s %-9s %-12s %2s %9s %7s %7s %9s %4s %8s %3s %10s\n",
		"ID", "BENCH", "TENANT", "BACKEND", "STATE", "PRED", "SW",
		"REC/S", "WMISS%", "MISS%", "QWAIT", "INF", "JRNL", "FO", "RECORDS")
	rows := t.Sessions
	if n > 0 && n < len(rows) {
		rows = rows[:n]
	}
	for _, r := range rows {
		s := r.Session
		fmt.Fprintf(&b, "%-5d %-10s %-8s %-21s %-9s %-12s %2d %9s %6.2f%% %6.2f%% %9s %4d %8s %3d %10s\n",
			s.ID, clip(s.Benchmark, 10), clip(s.Tenant, 8), clip(s.Backend, 21), s.State,
			clip(s.Predictor, 12), s.Swaps,
			humanCount(s.Win.RecordsPerSec), 100*s.Win.MissRate, 100*s.MissRate,
			humanUS(s.Win.QueueWaitAvgUS), s.Inflight, humanBytes(s.JournalBytes),
			s.Failovers, humanCount(float64(s.Records)))
	}
	return b.String()
}

func clip(s string, n int) string {
	if s == "" {
		return "-"
	}
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s
}

func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func humanUS(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.1fms", us/1e3)
	case us > 0:
		return fmt.Sprintf("%.0fµs", us)
	default:
		return "-"
	}
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	case n > 0:
		return fmt.Sprintf("%dB", n)
	default:
		return "-"
	}
}
