package main

import (
	"strings"
	"testing"
)

// feed is two intervals as the server emits them: tick, session lines, stats.
const feed = `{"type":"tick","unixNs":1700000000000000000,"intervalMs":1000,"service":"ibprouter","sessions":2,"backends":[{"addr":"127.0.0.1:9670","state":"up","sessions":1,"metricsAddr":"127.0.0.1:9091"},{"addr":"127.0.0.1:9671","state":"down","sessions":0,"err":"connection refused"}]}
{"type":"session","session":{"id":1,"kind":"serve","backend":"127.0.0.1:9670","benchmark":"gcc","tenant":"teamA","state":"active","records":1500000,"executed":1200000,"misses":60000,"missRate":0.05,"win":{"seconds":1,"records":100000,"executed":90000,"misses":4500,"missRate":0.05,"recordsPerSec":100000,"queueWaitAvgUs":42}},"delta":{"frames":10,"records":100000,"executed":90000,"misses":4500,"missRate":0.05}}
{"type":"session","session":{"id":2,"kind":"proxy","benchmark":"perl","state":"failover","journalBytes":2097152,"failovers":1,"replayedFrames":12,"win":{"seconds":1}},"delta":{"frames":0,"records":0,"executed":0,"misses":0}}
{"type":"stats","delta":{"serve_frames_total":10}}
{"type":"tick","unixNs":1700000001000000000,"intervalMs":1000,"service":"ibprouter","sessions":1}
{"type":"session","session":{"id":1,"kind":"serve","backend":"127.0.0.1:9670","benchmark":"gcc","state":"active","records":1600000,"win":{"seconds":1}},"delta":{"frames":10,"records":100000}}
{"type":"stats","delta":{}}
`

func TestReadTicksAssemblesIntervals(t *testing.T) {
	var got []tick
	if err := readTicks(strings.NewReader(feed), func(tk tick) error {
		got = append(got, tk)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d ticks, want 2", len(got))
	}
	if got[0].Tick.Sessions != 2 || len(got[0].Sessions) != 2 {
		t.Fatalf("tick 0: header says %d sessions, parsed %d",
			got[0].Tick.Sessions, len(got[0].Sessions))
	}
	if got[0].Sessions[0].Session.Benchmark != "gcc" ||
		got[0].Sessions[0].Delta.Records != 100000 {
		t.Fatalf("tick 0 session 0 mismatch: %+v", got[0].Sessions[0])
	}
	if got[0].Stats["serve_frames_total"] != 10 {
		t.Fatalf("tick 0 stats not fused: %v", got[0].Stats)
	}
	if len(got[1].Sessions) != 1 || got[1].Sessions[0].Session.Records != 1600000 {
		t.Fatalf("tick 1 mismatch: %+v", got[1])
	}
}

func TestReadTicksSSEFraming(t *testing.T) {
	// SSE mode prefixes each line with "data: " and blank separators; the
	// probe unmarshal skips what it cannot parse, and data: lines are not
	// valid JSON, so an SSE feed yields no ticks rather than garbage.
	sse := "data: {\"type\":\"tick\",\"sessions\":0}\n\n"
	err := readTicks(strings.NewReader(sse), func(tick) error {
		t.Fatal("SSE framing should not produce ticks")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRenderTable(t *testing.T) {
	var got []tick
	if err := readTicks(strings.NewReader(feed), func(tk tick) error {
		got = append(got, tk)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	out := render(got[0], 0)
	for _, want := range []string{
		"ibprouter", "sessions: 2",
		"127.0.0.1:9670 up(1)", "127.0.0.1:9671 down(0) [poll: connection refused]",
		"BACKEND", "WMISS%", "JRNL",
		"gcc", "teamA", "active",
		"failover", "2.0MiB", // proxy row journal bytes
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// -n 1 keeps only the top row.
	top := render(got[0], 1)
	if strings.Contains(top, "perl") {
		t.Errorf("render with n=1 kept second row:\n%s", top)
	}
}

func TestHumanUnits(t *testing.T) {
	cases := []struct{ got, want string }{
		{humanCount(0), "0"},
		{humanCount(950), "950"},
		{humanCount(12_300), "12.3k"},
		{humanCount(4.2e6), "4.2M"},
		{humanCount(7.5e9), "7.5G"},
		{humanBytes(0), "-"},
		{humanBytes(512), "512B"},
		{humanBytes(2 << 20), "2.0MiB"},
		{humanUS(0), "-"},
		{humanUS(42), "42µs"},
		{humanUS(1500), "1.5ms"},
		{humanUS(2.5e6), "2.50s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestStreamURL(t *testing.T) {
	o := options{addr: "127.0.0.1:9092", sortKey: "rps", n: 5}
	o.interval = 250 * 1e6 // 250ms in ns (time.Duration literal)
	u := streamURL(o, 1)
	for _, want := range []string{
		"http://127.0.0.1:9092/sessions/stream?",
		"interval=250ms", "sort=rps", "limit=5", "ticks=1",
	} {
		if !strings.Contains(u, want) {
			t.Errorf("url %q missing %q", u, want)
		}
	}
}
