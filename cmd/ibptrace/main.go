// Command ibptrace generates, inspects and summarizes indirect-branch trace
// files in the IBPT binary format.
//
// Usage:
//
//	ibptrace gen -bench gcc -n 100000 -o gcc.trace [-returns]
//	ibptrace stats gcc.trace
//	ibptrace stats -bench gcc -n 100000
//	ibptrace dump -count 20 gcc.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "dump":
		err = cmdDump(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibptrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ibptrace gen   (-bench <name> | -config <file.json>) [-n branches] [-returns] -o <file>
  ibptrace stats [-lenient] [-bench <name> [-n branches]] [file]
  ibptrace dump  [-lenient] [-count N] <file>`)
}

// readTraceFile decodes a trace file, wrapping every failure with the
// offending path. In lenient mode a corrupt file is salvaged to its valid
// prefix: the damage is reported on stderr and the recovered records are
// returned.
func readTraceFile(path string, lenient bool) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !lenient {
		tr, err := trace.Read(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return tr, nil
	}
	tr, err := trace.ReadLenient(f)
	if err != nil {
		if len(tr) == 0 {
			return nil, fmt.Errorf("%s: nothing salvageable: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "ibptrace: %s: %v (continuing with %d salvaged records)\n", path, err, len(tr))
	}
	return tr, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name (see DESIGN.md Tables 1–2)")
	config := fs.String("config", "", "JSON workload configuration file (alternative to -bench)")
	n := fs.Int("n", workload.DefaultBranches, "indirect branches to generate")
	out := fs.String("o", "", "output trace file")
	returns := fs.Bool("returns", false, "emit call/return records for RAS studies")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*bench == "") == (*config == "") || *out == "" {
		return fmt.Errorf("gen requires exactly one of -bench/-config, plus -o")
	}
	var cfg workload.Config
	var err error
	if *config != "" {
		cfg, err = workload.LoadConfig(*config)
	} else {
		cfg, err = workload.ByName(*bench)
	}
	if err != nil {
		return err
	}
	cfg.EmitReturns = *returns
	tr, err := cfg.Generate(*n)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := trace.Write(f, tr); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", *out, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%s: %w", *out, err)
	}
	fmt.Printf("wrote %d records (%d indirect) to %s\n", len(tr), *n, *out)
	return nil
}

func loadOrGenerate(fs *flag.FlagSet, bench *string, n *int, lenient bool) (trace.Trace, string, error) {
	if *bench != "" {
		cfg, err := workload.ByName(*bench)
		if err != nil {
			return nil, "", err
		}
		tr, err := cfg.Generate(*n)
		return tr, *bench, err
	}
	if fs.NArg() != 1 {
		return nil, "", fmt.Errorf("need a trace file or -bench")
	}
	path := fs.Arg(0)
	tr, err := readTraceFile(path, lenient)
	return tr, path, err
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	bench := fs.String("bench", "", "generate this benchmark instead of reading a file")
	n := fs.Int("n", workload.DefaultBranches, "indirect branches when generating")
	lenient := fs.Bool("lenient", false, "salvage the valid prefix of a corrupt trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, name, err := loadOrGenerate(fs, bench, n, *lenient)
	if err != nil {
		return err
	}
	s := trace.Summarize(tr)
	fmt.Printf("%s: %d records\n", name, len(tr))
	fmt.Printf("  indirect branches     %d\n", s.Indirect)
	fmt.Printf("  returns / cond        %d / %d\n", s.Returns, s.Conds)
	fmt.Printf("  instructions          %d (%.0f per indirect)\n", s.Instructions, s.InstrPerIndirect)
	fmt.Printf("  cond per indirect     %.1f\n", s.CondPerIndirect)
	fmt.Printf("  virtual-call fraction %.0f%%\n", 100*s.VCallFraction)
	fmt.Printf("  branch sites          %d (max %d targets at one site)\n", s.Sites, s.MaxTargetsPerSite)
	fmt.Printf("  sites for 90/95/99/100%% of branches: %d / %d / %d / %d\n",
		s.Coverage[90], s.Coverage[95], s.Coverage[99], s.Coverage[100])
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	count := fs.Int("count", 20, "records to print (0 = all)")
	lenient := fs.Bool("lenient", false, "salvage the valid prefix of a corrupt trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("dump needs a trace file")
	}
	tr, err := readTraceFile(fs.Arg(0), *lenient)
	if err != nil {
		return err
	}
	return trace.Dump(os.Stdout, tr, *count)
}
