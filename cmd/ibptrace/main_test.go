package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/oocsb/ibp/internal/workload"
)

func TestGenStatsDump(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.trace")
	if err := cmdGen([]string{"-bench", "xlisp", "-n", "2000", "-o", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file: %v %v", fi, err)
	}
	if err := cmdStats([]string{out}); err != nil {
		t.Fatalf("stats file: %v", err)
	}
	if err := cmdStats([]string{"-bench", "xlisp", "-n", "1000"}); err != nil {
		t.Fatalf("stats bench: %v", err)
	}
	if err := cmdDump([]string{"-count", "5", out}); err != nil {
		t.Fatalf("dump: %v", err)
	}
}

func TestGenWithReturns(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.trace")
	if err := cmdGen([]string{"-bench", "jhm", "-n", "1000", "-returns", "-o", out}); err != nil {
		t.Fatal(err)
	}
}

func TestGenFromJSONConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "bench.json")
	cfg, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := filepath.Join(dir, "c.trace")
	if err := cmdGen([]string{"-config", cfgPath, "-n", "500", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-config", cfgPath, "-bench", "perl", "-n", "500", "-o", out}); err == nil {
		t.Error("both -bench and -config accepted")
	}
}

func TestErrors(t *testing.T) {
	if err := cmdGen([]string{"-bench", "xlisp"}); err == nil {
		t.Error("gen without -o accepted")
	}
	if err := cmdGen([]string{"-bench", "nonesuch", "-o", "/tmp/x"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := cmdStats([]string{}); err == nil {
		t.Error("stats without input accepted")
	}
	if err := cmdStats([]string{"/nonexistent/file"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := cmdDump([]string{}); err == nil {
		t.Error("dump without file accepted")
	}
}
