package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

func TestGenStatsDump(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.trace")
	if err := cmdGen([]string{"-bench", "xlisp", "-n", "2000", "-o", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file: %v %v", fi, err)
	}
	if err := cmdStats([]string{out}); err != nil {
		t.Fatalf("stats file: %v", err)
	}
	if err := cmdStats([]string{"-bench", "xlisp", "-n", "1000"}); err != nil {
		t.Fatalf("stats bench: %v", err)
	}
	if err := cmdDump([]string{"-count", "5", out}); err != nil {
		t.Fatalf("dump: %v", err)
	}
}

func TestGenWithReturns(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.trace")
	if err := cmdGen([]string{"-bench", "jhm", "-n", "1000", "-returns", "-o", out}); err != nil {
		t.Fatal(err)
	}
}

func TestGenFromJSONConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "bench.json")
	cfg, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := filepath.Join(dir, "c.trace")
	if err := cmdGen([]string{"-config", cfgPath, "-n", "500", "-o", out}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-config", cfgPath, "-bench", "perl", "-n", "500", "-o", out}); err == nil {
		t.Error("both -bench and -config accepted")
	}
}

func TestErrors(t *testing.T) {
	if err := cmdGen([]string{"-bench", "xlisp"}); err == nil {
		t.Error("gen without -o accepted")
	}
	if err := cmdGen([]string{"-bench", "nonesuch", "-o", "/tmp/x"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := cmdStats([]string{}); err == nil {
		t.Error("stats without input accepted")
	}
	if err := cmdStats([]string{"/nonexistent/file"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := cmdDump([]string{}); err == nil {
		t.Error("dump without file accepted")
	}
}

// corruptTraceFile writes a valid trace, then flips one bit in the back
// half of the file so the leading chunk stays salvageable.
func corruptTraceFile(t *testing.T, dir string) string {
	t.Helper()
	cfg, err := workload.ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	tr := cfg.MustGenerate(5000)
	path := filepath.Join(dir, "corrupt.trace")
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[3*len(data)/4] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCorruptInputPaths is the table-driven contract for failure paths: a
// corrupt trace is rejected with an error naming the offending file and
// matching trace.ErrCorrupt; -lenient salvages it instead.
func TestCorruptInputPaths(t *testing.T) {
	dir := t.TempDir()
	path := corruptTraceFile(t, dir)
	cases := []struct {
		name    string
		run     func() error
		wantErr bool
	}{
		{"stats strict", func() error { return cmdStats([]string{path}) }, true},
		{"dump strict", func() error { return cmdDump([]string{path}) }, true},
		{"stats lenient", func() error { return cmdStats([]string{"-lenient", path}) }, false},
		{"dump lenient", func() error { return cmdDump([]string{"-lenient", "-count", "5", path}) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if !tc.wantErr {
				if err != nil {
					t.Fatalf("lenient mode failed: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("corrupt trace accepted")
			}
			if !errors.Is(err, trace.ErrCorrupt) {
				t.Errorf("error does not match trace.ErrCorrupt: %v", err)
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error does not name the file: %v", err)
			}
		})
	}
}

func TestLenientNothingSalvageable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.trace")
	if err := os.WriteFile(path, []byte("IBPT\x02\xff\xff\xff"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := cmdStats([]string{"-lenient", path})
	if err == nil {
		t.Fatal("unsalvageable file accepted")
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name the file: %v", err)
	}
}
