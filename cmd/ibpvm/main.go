// Command ibpvm assembles and runs programs on the bytecode VM, optionally
// writing the branch trace they produce — a real-program trace source for
// the predictors.
//
// Usage:
//
//	ibpvm run fib                          # built-in sample
//	ibpvm run -dispatch -o fib.trace fib   # with threaded-dispatch records
//	ibpvm run prog.vasm                    # assemble and run a file
//	ibpvm disasm fib
//	ibpvm list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/oocsb/ibp/internal/minilang"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "list":
		for _, n := range vm.SampleNames() {
			fmt.Println(n)
		}
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibpvm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ibpvm run [-dispatch] [-cond] [-steps N] [-o trace] <sample|file.vasm>
  ibpvm disasm <sample|file.vasm>
  ibpvm list`)
}

// loadProgram resolves the argument as a built-in sample name, a minilang
// source file (.ml, compiled), or an assembly file (anything else, e.g.
// .vasm).
func loadProgram(arg string) (*vm.Program, error) {
	if src, ok := vm.Samples()[arg]; ok {
		return vm.Assemble(src)
	}
	if !strings.Contains(arg, ".") && !strings.Contains(arg, "/") {
		return nil, fmt.Errorf("unknown sample %q (see ibpvm list)", arg)
	}
	src, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(arg, ".ml") {
		return minilang.Compile(string(src))
	}
	return vm.Assemble(string(src))
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	dispatch := fs.Bool("dispatch", false, "trace the threaded-code dispatch jumps")
	cond := fs.Bool("cond", false, "trace conditional branches")
	steps := fs.Int("steps", 0, "max VM steps (0 = default)")
	out := fs.String("o", "", "write the branch trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run needs one program")
	}
	prog, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	m := vm.New(prog, vm.Options{TraceDispatch: *dispatch, TraceCond: *cond, MaxSteps: *steps})
	v, err := m.Run()
	if err != nil {
		return err
	}
	tr := m.Trace()
	s := trace.Summarize(tr)
	fmt.Printf("result: %d\n", v)
	fmt.Printf("trace:  %d records, %d indirect branches, %d returns, %d sites\n",
		len(tr), s.Indirect, s.Returns, s.Sites)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := trace.Write(f, tr); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", *out, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("%s: %w", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("disasm needs one program")
	}
	prog, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	return vm.Disassemble(os.Stdout, prog)
}
