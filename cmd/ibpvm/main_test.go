package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSampleAndTraceOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fib.trace")
	if err := cmdRun([]string{"-o", out, "fib"}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("trace output: %v %v", fi, err)
	}
}

func TestRunDispatchAndCond(t *testing.T) {
	if err := cmdRun([]string{"-dispatch", "-cond", "tokens"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	src := "func main\npush 41\npush 1\nadd\nret\n"
	path := filepath.Join(t.TempDir(), "p.vasm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDisasm([]string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := cmdRun([]string{}); err == nil {
		t.Error("no program accepted")
	}
	if err := cmdRun([]string{"nonesuch"}); err == nil {
		t.Error("unknown sample accepted")
	}
	if err := cmdRun([]string{"/nonexistent/p.vasm"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := cmdRun([]string{"-steps", "5", "shapes"}); err == nil {
		t.Error("step limit not enforced")
	}
	if err := cmdDisasm([]string{}); err == nil {
		t.Error("disasm without program accepted")
	}
}
