package ibp_test

import (
	"fmt"

	ibp "github.com/oocsb/ibp"
)

// ExampleMissRate measures a two-level predictor against the ideal BTB on a
// deterministic benchmark trace.
func ExampleMissRate() {
	tr := ibp.MustBenchmark("perl", 40_000)
	btb := ibp.NewBTB(nil, ibp.UpdateTwoMiss)
	two := ibp.MustTwoLevel(ibp.Config{
		PathLength: 2,
		Precision:  ibp.AutoPrecision,
		Scheme:     ibp.Reverse,
		TableKind:  "assoc4",
		Entries:    1024,
	})
	fmt.Printf("two-level beats BTB: %v\n", ibp.MissRate(two, tr) < ibp.MissRate(btb, tr))
	// Output: two-level beats BTB: true
}

// ExampleNewDualPath builds the paper's canonical hybrid predictor.
func ExampleNewDualPath() {
	hyb, err := ibp.NewDualPath(3, 1, "assoc4", 1024)
	if err != nil {
		panic(err)
	}
	fmt.Println(hyb.Name())
	// Output: hybrid(2lev[p=3,b=8,reverse,xor,assoc4/1024]+2lev[p=1,b=24,reverse,xor,assoc4/1024])
}

// ExampleSimulateRAS verifies the paper's §2 premise: a return address stack
// predicts procedure returns almost perfectly.
func ExampleSimulateRAS() {
	_, tr, err := ibp.RunVMSample("fib", ibp.VMOptions{})
	if err != nil {
		panic(err)
	}
	res := ibp.SimulateRAS(tr, 64)
	fmt.Printf("return mispredictions: %d\n", res.Misses)
	// Output: return mispredictions: 0
}

// ExampleRunMinilang compiles and runs a program with the bundled compiler.
func ExampleRunMinilang() {
	src := `
func twice(x) { return x * 2; }
func main() {
  var f = twice;
  return f(21);
}`
	v, _, err := ibp.RunMinilang(src, ibp.VMOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output: 42
}

// ExampleSummarize computes the Tables 1–2 benchmark characteristics of a
// trace.
func ExampleSummarize() {
	tr := ibp.MustBenchmark("xlisp", 20_000)
	s := ibp.Summarize(tr)
	fmt.Printf("sites for 90%% of branches: %d of %d\n", s.Coverage[90], s.Sites)
	// Output: sites for 90% of branches: 9 of 12
}
