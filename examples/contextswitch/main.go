// contextswitch studies predictor interference under multiprogramming (the
// concern [ECP96] raises for hybrid predictors, §7): two programs share one
// predictor, alternating every `quantum` indirect branches. Finer quanta
// mean more cross-program pollution; hybrids recover faster than deep
// single-path predictors.
package main

import (
	"flag"
	"fmt"
	"log"

	ibp "github.com/oocsb/ibp"
)

func main() {
	n := flag.Int("n", 60_000, "indirect branches per program")
	flag.Parse()

	a := ibp.MustBenchmark("eqn", *n).Indirect()
	b := ibp.MustBenchmark("perl", *n).Indirect()

	mk := func() []ibp.Predictor {
		long := ibp.MustTwoLevel(ibp.Config{
			PathLength: 6, Precision: ibp.AutoPrecision,
			Scheme: ibp.Reverse, TableKind: "assoc4", Entries: 4096,
		})
		short := ibp.MustTwoLevel(ibp.Config{
			PathLength: 2, Precision: ibp.AutoPrecision,
			Scheme: ibp.Reverse, TableKind: "assoc4", Entries: 4096,
		})
		hyb, err := ibp.NewDualPath(3, 1, "assoc4", 2048)
		if err != nil {
			log.Fatal(err)
		}
		return []ibp.Predictor{short, long, hyb}
	}

	fmt.Println("misprediction % when two programs share one predictor")
	fmt.Printf("%-12s %12s %12s %12s\n", "quantum", "2lev p=2", "2lev p=6", "hybrid 3.1")
	for _, quantum := range []int{0, 50_000, 5_000, 500} {
		var tr ibp.Trace
		if quantum == 0 {
			tr = ibp.ConcatTraces(a, b) // run to completion, no switching
		} else {
			var err error
			tr, err = ibp.InterleaveTraces(quantum, a, b)
			if err != nil {
				log.Fatal(err)
			}
		}
		label := fmt.Sprintf("%d", quantum)
		if quantum == 0 {
			label = "none"
		}
		fmt.Printf("%-12s", label)
		for _, p := range mk() {
			fmt.Printf(" %12.2f", ibp.MissRate(p, tr))
		}
		fmt.Println()
	}
}
