// hybridtune searches the hybrid design space of §6 for a fixed hardware
// budget: it sweeps dual-path combinations (p1, p2) and prints the
// mini-Figure-17 matrix plus the winner, on one benchmark.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	ibp "github.com/oocsb/ibp"
)

func main() {
	bench := flag.String("bench", "eqn", "suite benchmark to tune for")
	entries := flag.Int("entries", 1024, "total table entries (components get half each)")
	n := flag.Int("n", 80_000, "trace length in indirect branches")
	flag.Parse()

	cfg, err := ibp.BenchmarkByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	tr := cfg.MustGenerate(*n).Indirect()

	const maxP = 8
	fmt.Printf("misprediction %% for hybrid(p1, p2), assoc4, %d total entries, on %s\n\n", *entries, *bench)
	fmt.Print("p1\\p2 ")
	for p2 := 0; p2 < maxP; p2++ {
		fmt.Printf("%7d", p2)
	}
	fmt.Println()

	bestRate := math.Inf(1)
	var bestP1, bestP2 int
	for p1 := 1; p1 <= maxP; p1++ {
		fmt.Printf("%4d  ", p1)
		for p2 := 0; p2 < maxP; p2++ {
			if p2 >= p1 {
				fmt.Printf("%7s", "")
				continue
			}
			hyb, err := ibp.NewDualPath(p1, p2, "assoc4", *entries/2)
			if err != nil {
				log.Fatal(err)
			}
			rate := ibp.MissRate(hyb, tr)
			fmt.Printf("%7.2f", rate)
			if rate < bestRate {
				bestRate, bestP1, bestP2 = rate, p1, p2
			}
		}
		fmt.Println()
	}

	single := ibp.MustTwoLevel(ibp.Config{
		PathLength: 3,
		Precision:  ibp.AutoPrecision,
		Scheme:     ibp.Reverse,
		TableKind:  "assoc4",
		Entries:    *entries,
	})
	fmt.Printf("\nbest hybrid: p=%d.%d at %.2f%%\n", bestP1, bestP2, bestRate)
	fmt.Printf("non-hybrid p=3 of the same total size: %.2f%%\n", ibp.MissRate(single, tr))
}
