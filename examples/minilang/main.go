// minilang compiles a small interpreter-shaped program with the bundled
// compiler, executes it on the bytecode VM with threaded-dispatch tracing,
// and measures the resulting indirect-branch stream — the full pipeline from
// source code to misprediction rates, all inside this repository.
package main

import (
	"fmt"
	"log"

	ibp "github.com/oocsb/ibp"
)

// program is a state-machine workload: a pseudo-random token stream drives a
// dense switch, and a strategy function is picked and invoked indirectly —
// the two indirect-branch shapes the paper's C suite is made of.
const program = `
func step(state) { return (state * 25173 + 13849) % 65536; }
func add1(x) { return x + 1; }
func sub2(x) { return x - 2; }
func fold(x) { return x % 1000003; }

func main() {
  var state = 7;
  var acc = 0;
  var i = 0;
  while (i < 3000) {
    state = step(state);
    var f = add1;
    switch (state % 3) {
      case 0: f = add1;
      case 1: f = sub2;
      case 2: f = fold;
    }
    acc = f(acc) + state % 8;
    i = i + 1;
  }
  return acc;
}
`

func main() {
	result, m, err := ibp.RunMinilang(program, ibp.VMOptions{TraceDispatch: true})
	if err != nil {
		log.Fatal(err)
	}
	tr := m.Trace()
	s := ibp.Summarize(tr)
	fmt.Printf("program result: %d\n", result)
	fmt.Printf("trace: %d indirect branches from %d sites (%d switches, %d indirect calls)\n\n",
		s.Indirect, s.Sites,
		tr.CountKind(ibp.SwitchJump), tr.CountKind(ibp.IndirectCall))

	ind := tr.Indirect()
	fmt.Println("predictor                                misprediction")
	preds := []ibp.Predictor{ibp.NewBTB(nil, ibp.UpdateTwoMiss)}
	for _, p := range []int{2, 4, 6} {
		preds = append(preds, ibp.MustTwoLevel(ibp.Config{
			PathLength: p, Precision: ibp.AutoPrecision,
			Scheme: ibp.Reverse, TableKind: "assoc4", Entries: 4096,
		}))
	}
	hyb, err := ibp.NewDualPath(3, 1, "assoc4", 2048)
	if err != nil {
		log.Fatal(err)
	}
	preds = append(preds, hyb)
	for _, p := range preds {
		fmt.Printf("%-42s %6.2f%%\n", p.Name(), ibp.MissRate(p, ind))
	}
}
