// oopoly studies the object-oriented workloads the paper's introduction
// motivates: virtual function calls. It runs the VM's polymorphic "shapes"
// program and the jhm suite benchmark, reporting how much of each trace is
// virtual dispatch and how the predictor generations fare.
package main

import (
	"fmt"
	"log"

	ibp "github.com/oocsb/ibp"
)

func main() {
	_, shapes, err := ibp.RunVMSample("shapes", ibp.VMOptions{})
	if err != nil {
		log.Fatal(err)
	}
	jhm := ibp.MustBenchmark("jhm", 80_000)

	for _, w := range []struct {
		name string
		tr   ibp.Trace
	}{
		{"shapes (VM program)", shapes},
		{"jhm (suite benchmark)", jhm},
	} {
		s := ibp.Summarize(w.tr)
		fmt.Printf("%s: %d indirect branches, %.0f%% virtual calls, %d sites\n",
			w.name, s.Indirect, 100*s.VCallFraction, s.Sites)
		ind := w.tr.Indirect()
		btb := ibp.NewBTB(nil, ibp.UpdateTwoMiss)
		two := ibp.MustTwoLevel(ibp.Config{
			PathLength: 2,
			Precision:  ibp.AutoPrecision,
			Scheme:     ibp.Reverse,
			TableKind:  "assoc4",
			Entries:    1024,
		})
		hyb, err := ibp.NewDualPath(3, 1, "assoc4", 512)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range []ibp.Predictor{btb, two, hyb} {
			fmt.Printf("  %-40s %6.2f%%\n", p.Name(), ibp.MissRate(p, ind))
		}
		fmt.Println()
	}

	// The paper excludes returns because a return address stack predicts
	// them; demonstrate on a returns-enabled workload (§2).
	cfg, err := ibp.BenchmarkByName("jhm")
	if err != nil {
		log.Fatal(err)
	}
	cfg.EmitReturns = true
	withReturns := cfg.MustGenerate(20_000)
	for _, depth := range []int{2, 8, 64} {
		res := ibp.SimulateRAS(withReturns, depth)
		fmt.Printf("return address stack depth %2d: %5.2f%% return mispredictions (%d returns)\n",
			depth, res.MissRate(), res.Returns)
	}
}
