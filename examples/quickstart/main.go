// Quickstart: generate a benchmark trace, run the paper's three predictor
// generations over it (BTB, two-level, hybrid), and print misprediction
// rates. This is the README example.
package main

import (
	"fmt"
	"log"

	ibp "github.com/oocsb/ibp"
)

func main() {
	// gcc is the paper's hardest frequent-indirect benchmark: an ideal
	// BTB mispredicts about two thirds of its indirect branches.
	tr := ibp.MustBenchmark("gcc", 100_000)

	btb := ibp.NewBTB(nil, ibp.UpdateTwoMiss)

	twoLevel := ibp.MustTwoLevel(ibp.Config{
		PathLength: 3,                 // correlate on the last 3 targets
		Precision:  ibp.AutoPrecision, // b = ⌊24/p⌋ bits per target
		Scheme:     ibp.Reverse,       // interleave bits for the index
		TableKind:  "assoc4",
		Entries:    1024,
	})

	hybrid, err := ibp.NewDualPath(3, 1, "assoc4", 512) // same total budget
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("predictor                                misprediction")
	for _, p := range []ibp.Predictor{btb, twoLevel, hybrid} {
		fmt.Printf("%-42s %6.2f%%\n", p.Name(), ibp.MissRate(p, tr))
	}
}
