// vmdispatch runs the bytecode VM's interpreter-style "tokens" program with
// threaded-dispatch tracing enabled and shows why interpreters motivated
// indirect branch prediction: a BTB collapses on the dispatch branch while a
// path-based predictor learns the token patterns.
package main

import (
	"fmt"
	"log"

	ibp "github.com/oocsb/ibp"
)

func main() {
	_, tr, err := ibp.RunVMSample("tokens", ibp.VMOptions{TraceDispatch: true})
	if err != nil {
		log.Fatal(err)
	}
	ind := tr.Indirect()
	s := ibp.Summarize(tr)
	fmt.Printf("tokens program: %d indirect branches from %d sites (interpreter dispatch)\n\n",
		s.Indirect, s.Sites)

	fmt.Println("predictor                                misprediction")
	preds := []ibp.Predictor{
		ibp.NewBTB(nil, ibp.UpdateTwoMiss),
	}
	for _, p := range []int{1, 2, 4, 6, 8} {
		preds = append(preds, ibp.MustTwoLevel(ibp.Config{
			PathLength: p,
			Precision:  ibp.AutoPrecision,
			Scheme:     ibp.Reverse,
			TableKind:  "assoc4",
			Entries:    4096,
		}))
	}
	for _, p := range preds {
		fmt.Printf("%-42s %6.2f%%\n", p.Name(), ibp.MissRate(p, ind))
	}
}
