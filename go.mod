module github.com/oocsb/ibp

go 1.24
