// Package ibp is a from-scratch reproduction of Driesen & Hölzle, "Accurate
// Indirect Branch Prediction" (UCSB TRCS97-19 / ISCA 1998): two-level
// path-based indirect branch predictors, their hybrid combinations with
// confidence-counter metaprediction, the BTB baselines they are measured
// against, and the simulation substrate (trace format, synthetic benchmark
// suite, bytecode VM) the evaluation runs on.
//
// The package is a thin facade over the implementation packages; it exposes
// everything a downstream user needs to construct predictors, obtain
// workloads, and measure misprediction rates:
//
//	tr := ibp.MustBenchmark("gcc", 100_000)
//	pred := ibp.MustTwoLevel(ibp.Config{
//		PathLength: 3,
//		Precision:  ibp.AutoPrecision,
//		Scheme:     ibp.Reverse,
//		TableKind:  "assoc4",
//		Entries:    1024,
//	})
//	res := ibp.Simulate(pred, tr, ibp.SimOptions{})
//	fmt.Printf("%.2f%% mispredicted\n", res.MissRate())
//
// The cmd/ibpsweep tool regenerates every table and figure of the paper's
// evaluation; see DESIGN.md for the experiment inventory and EXPERIMENTS.md
// for measured-vs-paper results.
package ibp

import (
	"context"

	"github.com/oocsb/ibp/internal/analysis"
	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/history"
	"github.com/oocsb/ibp/internal/minilang"
	"github.com/oocsb/ibp/internal/ras"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/vm"
	"github.com/oocsb/ibp/internal/workload"
)

// Core predictor types and configuration.
type (
	// Predictor is the predict/update contract shared by all predictors.
	Predictor = core.Predictor
	// Component is a predictor usable inside hybrids (adds confidence).
	Component = core.Component
	// Config configures a two-level predictor across the paper's design
	// space (path length, sharing, precision, tables, update rule).
	Config = core.Config
	// TwoLevel is the paper's two-level path-based predictor.
	TwoLevel = core.TwoLevel
	// BTB is the branch target buffer baseline.
	BTB = core.BTB
	// Hybrid combines components with confidence metaprediction.
	Hybrid = core.Hybrid
	// UpdateRule selects how entries replace their stored targets.
	UpdateRule = core.UpdateRule
	// KeyOp folds the branch address into the history pattern (§4.2).
	KeyOp = history.KeyOp
	// Scheme is the history pattern bit layout (§5.2.1).
	Scheme = bits.Scheme
)

// Pattern layout schemes (§5.2.1) and key operations (§4.2).
const (
	Concat   = bits.Concat
	Straight = bits.Straight
	Reverse  = bits.Reverse
	PingPong = bits.PingPong

	OpXor    = history.OpXor
	OpConcat = history.OpConcat

	// UpdateTwoMiss is the paper's "2bc" rule (replace a stored target
	// only after two consecutive misses); UpdateAlways replaces on every
	// miss.
	UpdateTwoMiss = core.UpdateTwoMiss
	UpdateAlways  = core.UpdateAlways

	// AutoPrecision selects b = ⌊24/p⌋ bits per history target.
	AutoPrecision = core.AutoPrecision
)

// Predictor constructors.
var (
	// NewTwoLevel builds a two-level predictor from a Config.
	NewTwoLevel = core.NewTwoLevel
	// MustTwoLevel panics on configuration errors.
	MustTwoLevel = core.MustTwoLevel
	// NewBTB builds a branch target buffer (nil table = unbounded).
	NewBTB = core.NewBTB
	// NewHybrid combines components; earlier components win ties.
	NewHybrid = core.NewHybrid
	// NewDualPath is the paper's canonical two-component hybrid.
	NewDualPath = core.NewDualPath
	// NewBPSTHybrid selects components with a per-branch counter table.
	NewBPSTHybrid = core.NewBPSTHybrid
	// NewCascade is a PPM-style longest-match predictor bank.
	NewCascade = core.NewCascade
	// NewSharedHybrid is the §8.1 shared-table hybrid.
	NewSharedHybrid = core.NewSharedHybrid
	// NewTargetCache is the Chang et al. pattern-history target cache.
	NewTargetCache = core.NewTargetCache
)

// Traces and workloads.
type (
	// Trace is an in-memory branch trace.
	Trace = trace.Trace
	// Record is one traced control transfer.
	Record = trace.Record
	// Kind classifies trace records.
	Kind = trace.Kind
	// TraceSummary holds Tables 1–2 style benchmark characteristics.
	TraceSummary = trace.Summary
	// Benchmark is a synthetic benchmark configuration.
	Benchmark = workload.Config
)

// Trace record kinds.
const (
	IndirectCall = trace.IndirectCall
	IndirectJump = trace.IndirectJump
	VirtualCall  = trace.VirtualCall
	SwitchJump   = trace.SwitchJump
	Return       = trace.Return
	Cond         = trace.Cond
	DirectCall   = trace.DirectCall
)

// Trace and workload helpers.
var (
	// ReadTrace and WriteTrace handle the IBPT binary format (v2,
	// length-framed CRC32-checksummed sections; ReadTrace also accepts
	// legacy v1 streams). ReadTraceLenient salvages the valid prefix of a
	// damaged stream, returning the records recovered together with a
	// *trace.CorruptError (matching ErrCorruptTrace) describing where
	// decoding stopped.
	ReadTrace        = trace.Read
	ReadTraceLenient = trace.ReadLenient
	WriteTrace       = trace.Write
	// Summarize computes benchmark characteristics of a trace.
	Summarize = trace.Summarize
	// ConcatTraces joins traces back to back; InterleaveTraces merges
	// them round-robin in chunks (multiprogramming studies).
	ConcatTraces     = trace.Concat
	InterleaveTraces = trace.Interleave
	// Benchmarks returns the paper's 17-benchmark suite configurations.
	Benchmarks = workload.Suite
	// BenchmarkByName looks up one suite benchmark.
	BenchmarkByName = workload.ByName
	// LoadBenchmark reads a custom benchmark configuration from a JSON
	// file (see Benchmark/workload.Config for the fields).
	LoadBenchmark = workload.LoadConfig
)

// Site analysis.
type (
	// SiteProfile describes one branch site's dynamic behaviour.
	SiteProfile = analysis.SiteProfile
	// SiteBreakdown aggregates sites by behaviour class.
	SiteBreakdown = analysis.Breakdown
)

var (
	// ProfileSites computes per-site behaviour profiles of a trace.
	ProfileSites = analysis.Profile
	// SummarizeSites buckets profiles into behaviour classes.
	SummarizeSites = analysis.Summarize
)

// DefaultTraceLen is the default trace length in indirect branches.
const DefaultTraceLen = workload.DefaultBranches

// MustBenchmark generates n indirect branches of the named suite benchmark
// (panicking on unknown names; see Benchmarks for the list).
func MustBenchmark(name string, n int) Trace {
	cfg, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return cfg.MustGenerate(n)
}

// Simulation.
type (
	// SimOptions configures a simulation run.
	SimOptions = sim.Options
	// SimResult reports misprediction accounting.
	SimResult = sim.Result
)

// ErrCorruptTrace is the sentinel matched (via errors.Is) by every
// corruption error the trace readers produce.
var ErrCorruptTrace = trace.ErrCorrupt

// Simulate drives a predictor over a trace.
func Simulate(p Predictor, tr Trace, opts SimOptions) SimResult {
	return sim.Run(p, tr, opts)
}

// SimulateContext is Simulate with cooperative cancellation: once ctx is
// done the partial result accumulated so far is returned with ctx.Err().
func SimulateContext(ctx context.Context, p Predictor, tr Trace, opts SimOptions) (SimResult, error) {
	return sim.RunContext(ctx, p, tr, opts)
}

// MissRate simulates with default options and returns the misprediction
// percentage.
func MissRate(p Predictor, tr Trace) float64 {
	return sim.MissRate(p, tr)
}

// Return address stack (§2 premise).
var (
	// NewRAS builds a bounded return address stack.
	NewRAS = ras.New
	// SimulateRAS measures return prediction accuracy over a trace.
	SimulateRAS = ras.Simulate
)

// Bytecode VM: real programs as trace sources.
type (
	// VMOptions configures VM tracing.
	VMOptions = vm.Options
	// VMProgram is an executable bytecode image.
	VMProgram = vm.Program
)

var (
	// CompileMinilang compiles minilang source (a tiny imperative
	// language) into a VM program; RunMinilang also executes it and
	// returns the VM for trace access.
	CompileMinilang = minilang.Compile
	RunMinilang     = minilang.Run
	// AssembleVM translates VM assembly into a program.
	AssembleVM = vm.Assemble
	// NewVM constructs a VM over a program.
	NewVM = vm.New
	// RunVMSample executes a built-in sample program ("fib", "tokens",
	// "shapes", "dispatch") and returns its result and branch trace.
	RunVMSample = vm.RunSample
	// VMSampleNames lists the built-in sample programs.
	VMSampleNames = vm.SampleNames
)
