package ibp_test

import (
	"bytes"
	"testing"

	ibp "github.com/oocsb/ibp"
)

// TestQuickstart exercises the facade the way README's quickstart does.
func TestQuickstart(t *testing.T) {
	tr := ibp.MustBenchmark("gcc", 20_000)
	btb := ibp.MissRate(ibp.NewBTB(nil, ibp.UpdateTwoMiss), tr)
	two := ibp.MissRate(ibp.MustTwoLevel(ibp.Config{
		PathLength: 3,
		Precision:  ibp.AutoPrecision,
		Scheme:     ibp.Reverse,
		TableKind:  "assoc4",
		Entries:    1024,
	}), tr)
	hyb, err := ibp.NewDualPath(3, 1, "assoc4", 512)
	if err != nil {
		t.Fatal(err)
	}
	hybRate := ibp.MissRate(hyb, tr)
	t.Logf("gcc: btb=%.1f%% two-level=%.1f%% hybrid=%.1f%%", btb, two, hybRate)
	if two >= btb {
		t.Errorf("two-level (%.1f%%) should beat BTB (%.1f%%)", two, btb)
	}
	if hybRate >= btb {
		t.Errorf("hybrid (%.1f%%) should beat BTB (%.1f%%)", hybRate, btb)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr := ibp.MustBenchmark("perl", 2_000)
	var buf bytes.Buffer
	if err := ibp.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ibp.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr) {
		t.Fatalf("round trip %d != %d", len(back), len(tr))
	}
	s := ibp.Summarize(tr)
	if s.Indirect != 2000 {
		t.Errorf("summary indirect = %d", s.Indirect)
	}
}

func TestFacadeSuite(t *testing.T) {
	if got := len(ibp.Benchmarks()); got != 17 {
		t.Errorf("suite size %d", got)
	}
	if _, err := ibp.BenchmarkByName("idl"); err != nil {
		t.Error(err)
	}
}

func TestFacadeVM(t *testing.T) {
	v, tr, err := ibp.RunVMSample("fib", ibp.VMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1597 {
		t.Errorf("fib = %d", v)
	}
	res := ibp.SimulateRAS(tr, 64)
	if res.MissRate() != 0 {
		t.Errorf("RAS on fib: %.2f%%", res.MissRate())
	}
	if len(ibp.VMSampleNames()) != 4 {
		t.Error("sample names")
	}
}

func TestFacadeSimOptions(t *testing.T) {
	tr := ibp.MustBenchmark("xlisp", 5_000)
	subject := ibp.MustTwoLevel(ibp.Config{
		PathLength: 2, Precision: ibp.AutoPrecision,
		Scheme: ibp.Reverse, TableKind: "assoc2", Entries: 64,
	})
	shadow := ibp.MustTwoLevel(ibp.Config{PathLength: 2, Precision: ibp.AutoPrecision})
	res := ibp.Simulate(subject, tr, ibp.SimOptions{Warmup: 500, Shadow: shadow})
	if res.Executed != 4500 {
		t.Errorf("executed %d", res.Executed)
	}
	if res.Misses < res.CapacityMisses {
		t.Error("capacity misses exceed misses")
	}
}
