// Package analysis profiles the dynamic behaviour of individual indirect
// branch sites: target counts, dominance, and zeroth/first-order target
// entropies. The classes it derives (monomorphic, dominated, cyclic,
// chaotic) explain where each predictor generation earns its keep — BTBs
// cover monomorphic and dominated sites, path-based predictors additionally
// cover cyclic sites, and nothing covers chaotic ones (the noise floor).
package analysis

import (
	"math"
	"sort"

	"github.com/oocsb/ibp/internal/trace"
)

// SiteProfile describes one static indirect branch site.
type SiteProfile struct {
	// PC is the site address.
	PC uint32
	// Kind is the site's branch kind.
	Kind trace.Kind
	// Executions is the dynamic execution count.
	Executions int
	// Targets is the number of distinct targets observed.
	Targets int
	// Dominance is the frequency share of the most common target.
	Dominance float64
	// Entropy is the Shannon entropy of the target distribution in bits
	// (0 for a monomorphic site).
	Entropy float64
	// CondEntropy is the first-order conditional entropy: the entropy of
	// the next target given the site's previous target. Low conditional
	// entropy with high plain entropy is the signature of a cyclic,
	// path-predictable site.
	CondEntropy float64
}

// Class names.
const (
	ClassMonomorphic = "monomorphic" // one target
	ClassDominated   = "dominated"   // >= 90% one target
	ClassCyclic      = "cyclic"      // polymorphic but sequence-predictable
	ClassChaotic     = "chaotic"     // polymorphic and sequence-unpredictable
)

// Classes lists the class names in reporting order.
func Classes() []string {
	return []string{ClassMonomorphic, ClassDominated, ClassCyclic, ClassChaotic}
}

// Class buckets the site by its statistics.
func (p SiteProfile) Class() string {
	switch {
	case p.Targets <= 1:
		return ClassMonomorphic
	case p.Dominance >= 0.9:
		return ClassDominated
	case p.CondEntropy <= p.Entropy/2 || p.CondEntropy < 0.3:
		return ClassCyclic
	default:
		return ClassChaotic
	}
}

// Profile computes per-site statistics for all indirect branches in the
// trace, ordered by descending execution count.
func Profile(tr trace.Trace) []SiteProfile {
	type siteState struct {
		kind   trace.Kind
		counts map[uint32]int
		trans  map[uint64]int // prev<<32|cur transitions
		prev   uint32
		seen   bool
		total  int
	}
	sites := make(map[uint32]*siteState)
	for _, r := range tr {
		if !r.Kind.Indirect() {
			continue
		}
		s := sites[r.PC]
		if s == nil {
			s = &siteState{kind: r.Kind, counts: make(map[uint32]int), trans: make(map[uint64]int)}
			sites[r.PC] = s
		}
		s.counts[r.Target]++
		s.total++
		if s.seen {
			s.trans[uint64(s.prev)<<32|uint64(r.Target)]++
		}
		s.prev = r.Target
		s.seen = true
	}

	out := make([]SiteProfile, 0, len(sites))
	for pc, s := range sites {
		p := SiteProfile{
			PC:         pc,
			Kind:       s.kind,
			Executions: s.total,
			Targets:    len(s.counts),
		}
		maxCount := 0
		for _, c := range s.counts {
			if c > maxCount {
				maxCount = c
			}
			f := float64(c) / float64(s.total)
			p.Entropy -= f * math.Log2(f)
		}
		p.Dominance = float64(maxCount) / float64(s.total)
		p.CondEntropy = condEntropy(s.trans)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Executions != out[j].Executions {
			return out[i].Executions > out[j].Executions
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// condEntropy computes the first-order conditional entropy H(next | prev) in
// bits from a transition count map keyed prev<<32|cur. Zero transitions (a
// site executed at most once) yield zero entropy.
func condEntropy(trans map[uint64]int) float64 {
	prevTotals := make(map[uint32]int)
	total := 0
	for k, c := range trans {
		prevTotals[uint32(k>>32)] += c
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for k, c := range trans {
		pPrev := float64(prevTotals[uint32(k>>32)]) / float64(total)
		pCond := float64(c) / float64(prevTotals[uint32(k>>32)])
		h -= pPrev * pCond * math.Log2(pCond)
	}
	return h
}

// Breakdown aggregates a profile: for each class, the number of sites and
// the share of dynamic indirect branches it accounts for.
type Breakdown struct {
	Sites  map[string]int
	Shares map[string]float64 // fraction of dynamic branches, in [0,1]
}

// Summarize computes the class breakdown of a profile.
func Summarize(profiles []SiteProfile) Breakdown {
	b := Breakdown{Sites: make(map[string]int), Shares: make(map[string]float64)}
	total := 0
	for _, p := range profiles {
		total += p.Executions
	}
	if total == 0 {
		return b
	}
	for _, p := range profiles {
		c := p.Class()
		b.Sites[c]++
		b.Shares[c] += float64(p.Executions) / float64(total)
	}
	return b
}
