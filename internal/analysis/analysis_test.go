package analysis

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/oocsb/ibp/internal/trace"
)

// mkTrace builds a single-site trace from a target sequence.
func mkTrace(pc uint32, targets []uint32) trace.Trace {
	out := make(trace.Trace, len(targets))
	for i, t := range targets {
		out[i] = trace.Record{PC: pc, Target: t, Kind: trace.VirtualCall, Gap: 1}
	}
	return out
}

func seq(cycle []uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = cycle[i%len(cycle)]
	}
	return out
}

func TestProfileMonomorphic(t *testing.T) {
	ps := Profile(mkTrace(0x1000, seq([]uint32{0x2000}, 100)))
	if len(ps) != 1 {
		t.Fatalf("%d profiles", len(ps))
	}
	p := ps[0]
	if p.Class() != ClassMonomorphic || p.Targets != 1 || p.Entropy != 0 || p.Dominance != 1 {
		t.Errorf("monomorphic profile: %+v class=%s", p, p.Class())
	}
}

func TestProfileDominated(t *testing.T) {
	targets := seq([]uint32{0x2000}, 95)
	targets = append(targets, seq([]uint32{0x3000}, 5)...)
	p := Profile(mkTrace(0x1000, targets))[0]
	if p.Class() != ClassDominated {
		t.Errorf("class = %s, dominance %v", p.Class(), p.Dominance)
	}
	if p.Dominance != 0.95 {
		t.Errorf("Dominance = %v", p.Dominance)
	}
}

func TestProfileCyclic(t *testing.T) {
	// A strict period-3 cycle: high entropy (log2 3) but zero
	// first-order conditional entropy.
	p := Profile(mkTrace(0x1000, seq([]uint32{0x2000, 0x3000, 0x4000}, 300)))[0]
	if math.Abs(p.Entropy-math.Log2(3)) > 0.01 {
		t.Errorf("Entropy = %v, want log2(3)", p.Entropy)
	}
	if p.CondEntropy > 0.01 {
		t.Errorf("CondEntropy = %v, want ~0", p.CondEntropy)
	}
	if p.Class() != ClassCyclic {
		t.Errorf("class = %s", p.Class())
	}
}

func TestProfileChaotic(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	targets := make([]uint32, 3000)
	for i := range targets {
		targets[i] = 0x2000 + uint32(rng.IntN(4))*4
	}
	p := Profile(mkTrace(0x1000, targets))[0]
	if p.Class() != ClassChaotic {
		t.Errorf("class = %s (entropy %v, cond %v)", p.Class(), p.Entropy, p.CondEntropy)
	}
	if p.CondEntropy < p.Entropy*0.8 {
		t.Errorf("iid stream: cond entropy %v should approach entropy %v", p.CondEntropy, p.Entropy)
	}
}

func TestProfileOrderingAndKinds(t *testing.T) {
	tr := mkTrace(0x1000, seq([]uint32{0x2000}, 10))
	tr = append(tr, mkTrace(0x2000, seq([]uint32{0x3000}, 50))...)
	tr = append(tr, trace.Record{PC: 0x3000, Target: 0x4000, Kind: trace.Return, Gap: 1})
	ps := Profile(tr)
	if len(ps) != 2 {
		t.Fatalf("returns must be excluded: %d profiles", len(ps))
	}
	if ps[0].PC != 0x2000 {
		t.Errorf("profiles not sorted by executions: %+v", ps)
	}
	if ps[0].Kind != trace.VirtualCall {
		t.Errorf("Kind = %v", ps[0].Kind)
	}
}

func TestSummarize(t *testing.T) {
	tr := mkTrace(0x1000, seq([]uint32{0x2000}, 60))                       // monomorphic
	tr = append(tr, mkTrace(0x2000, seq([]uint32{0x5000, 0x6000}, 40))...) // cyclic
	b := Summarize(Profile(tr))
	if b.Sites[ClassMonomorphic] != 1 || b.Sites[ClassCyclic] != 1 {
		t.Fatalf("sites: %+v", b.Sites)
	}
	if math.Abs(b.Shares[ClassMonomorphic]-0.6) > 1e-9 {
		t.Errorf("monomorphic share %v, want 0.6", b.Shares[ClassMonomorphic])
	}
	sum := 0.0
	for _, s := range b.Shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	empty := Summarize(nil)
	if len(empty.Sites) != 0 {
		t.Errorf("empty summary: %+v", empty)
	}
	if len(Classes()) != 4 {
		t.Error("Classes()")
	}
}
