package analysis

import (
	"sort"

	"github.com/oocsb/ibp/internal/ptrace"
)

// Miss classes. Every post-warmup mispredicted event falls into exactly one:
//
//   - cold: the predictor had never seen this (branch, history pattern) pair
//     and had no entry to predict from — the compulsory misses of a finite
//     warmup, plus genuinely novel history contexts.
//   - conflict: the pattern had been seen before but its entry was gone at
//     predict time — capacity or conflict evictions in a bounded table.
//   - alias: the table hit but predicted the wrong target — either two
//     history patterns folded onto the same entry (history aliasing after
//     precision truncation or interleaving) or the entry's training lagged a
//     target change.
//   - meta: a hybrid's metapredictor chose a component that was wrong while
//     another component was right — the mispredict is steering, not capacity.
const (
	MissCold     = "cold"
	MissConflict = "conflict"
	MissAlias    = "alias"
	MissMeta     = "meta"
)

// MissClasses lists the miss class names in reporting order.
func MissClasses() []string {
	return []string{MissCold, MissConflict, MissAlias, MissMeta}
}

// ClassifyMiss buckets one mispredicted event. patternSeen reports whether
// the event's (PC, Pattern) pair had occurred earlier in the stream —
// Attribute tracks this; callers replaying events themselves must do the
// same. Metapredictor mis-steers take precedence: a hybrid that had the
// right answer available misses for a different reason than one that did
// not, whatever the chosen component's table did.
func ClassifyMiss(ev ptrace.Event, patternSeen bool) string {
	switch {
	case ev.AltCorrect:
		return MissMeta
	case !ev.TableHit && !patternSeen:
		return MissCold
	case !ev.TableHit:
		return MissConflict
	default:
		return MissAlias
	}
}

// BranchProfile aggregates one static branch site's behaviour over a
// captured event stream.
type BranchProfile struct {
	// PC is the branch site address.
	PC uint32
	// Executed and Misses count post-warmup events only.
	Executed int
	Misses   int
	// Targets is the site's polymorphism degree: distinct actual targets
	// observed (warmup included — it is a property of the trace, not of
	// the measurement window).
	Targets int
	// TransitionEntropy is the first-order conditional entropy
	// H(next target | previous target) in bits; low values mean the
	// target sequence is cyclic and path-predictable.
	TransitionEntropy float64
	// ByClass counts the site's misses per miss class.
	ByClass map[string]int
}

// MissRate is Misses/Executed, 0 for an unexecuted site.
func (p BranchProfile) MissRate() float64 {
	if p.Executed == 0 {
		return 0
	}
	return float64(p.Misses) / float64(p.Executed)
}

// Attribution is the whole-stream aggregate Attribute produces.
type Attribution struct {
	// Executed and Misses count post-warmup events.
	Executed int
	Misses   int
	// ByClass counts all misses per miss class.
	ByClass map[string]int
	// Branches holds one profile per site, sorted by descending misses
	// (ties by ascending PC, so reports are deterministic).
	Branches []BranchProfile
}

// MissRate is Misses/Executed, 0 for an empty capture.
func (a Attribution) MissRate() float64 {
	if a.Executed == 0 {
		return 0
	}
	return float64(a.Misses) / float64(a.Executed)
}

// Top returns the first n branch profiles (fewer if the stream had fewer
// sites) — the top mispredicting branches.
func (a Attribution) Top(n int) []BranchProfile {
	if n > len(a.Branches) {
		n = len(a.Branches)
	}
	return a.Branches[:n]
}

// Attribute classifies every post-warmup miss in an event stream and folds
// the events into per-branch profiles. Events must be in stream order
// (ptrace.EventSink.Events returns them oldest-first). Warmup events train
// the pattern-seen set and the per-site target statistics but are excluded
// from execution and miss counts, mirroring how sim.Result excludes warmup.
//
// Classification degrades gracefully on sampled or wrapped captures: a
// pattern whose first occurrence was dropped is classified as if unseen, so
// prefer a complete capture (sink.Complete()) when the classes matter.
func Attribute(events []ptrace.Event) Attribution {
	type patKey struct {
		pc  uint32
		pat uint64
	}
	type siteState struct {
		prof    BranchProfile
		targets map[uint32]struct{}
		trans   map[uint64]int
		prev    uint32
		seen    bool
	}
	patterns := make(map[patKey]struct{})
	sites := make(map[uint32]*siteState)
	agg := Attribution{ByClass: make(map[string]int)}

	for _, ev := range events {
		s := sites[ev.PC]
		if s == nil {
			s = &siteState{
				prof:    BranchProfile{PC: ev.PC, ByClass: make(map[string]int)},
				targets: make(map[uint32]struct{}),
				trans:   make(map[uint64]int),
			}
			sites[ev.PC] = s
		}
		s.targets[ev.Actual] = struct{}{}
		if s.seen {
			s.trans[uint64(s.prev)<<32|uint64(ev.Actual)]++
		}
		s.prev, s.seen = ev.Actual, true

		k := patKey{ev.PC, ev.Pattern}
		_, patSeen := patterns[k]
		patterns[k] = struct{}{}

		if ev.Warmup {
			continue
		}
		s.prof.Executed++
		agg.Executed++
		if !ev.Miss {
			continue
		}
		s.prof.Misses++
		agg.Misses++
		c := ClassifyMiss(ev, patSeen)
		s.prof.ByClass[c]++
		agg.ByClass[c]++
	}

	agg.Branches = make([]BranchProfile, 0, len(sites))
	for _, s := range sites {
		s.prof.Targets = len(s.targets)
		s.prof.TransitionEntropy = condEntropy(s.trans)
		agg.Branches = append(agg.Branches, s.prof)
	}
	sort.Slice(agg.Branches, func(i, j int) bool {
		if agg.Branches[i].Misses != agg.Branches[j].Misses {
			return agg.Branches[i].Misses > agg.Branches[j].Misses
		}
		return agg.Branches[i].PC < agg.Branches[j].PC
	})
	return agg
}
