package analysis

import (
	"testing"

	"github.com/oocsb/ibp/internal/ptrace"
)

func ev(pc uint32, pattern uint64, actual uint32, miss, warmup, tableHit, altCorrect bool) ptrace.Event {
	return ptrace.Event{
		PC: pc, Pattern: pattern, Actual: actual,
		Miss: miss, Warmup: warmup, TableHit: tableHit, AltCorrect: altCorrect,
		HasPred: tableHit,
	}
}

func TestClassifyMissPrecedence(t *testing.T) {
	cases := []struct {
		name    string
		e       ptrace.Event
		patSeen bool
		want    string
	}{
		{"meta wins over everything", ev(1, 1, 1, true, false, false, true), false, MissMeta},
		{"cold: no hit, pattern never seen", ev(1, 1, 1, true, false, false, false), false, MissCold},
		{"conflict: no hit, pattern seen before", ev(1, 1, 1, true, false, false, false), true, MissConflict},
		{"alias: hit with wrong target", ev(1, 1, 1, true, false, true, false), true, MissAlias},
		{"alias even on first-seen pattern", ev(1, 1, 1, true, false, true, false), false, MissAlias},
	}
	for _, c := range cases {
		if got := ClassifyMiss(c.e, c.patSeen); got != c.want {
			t.Errorf("%s: got %q, want %q", c.name, got, c.want)
		}
	}
}

func TestAttributeCountsAndClasses(t *testing.T) {
	events := []ptrace.Event{
		// Warmup: trains pattern 0xA at site 0x100, excluded from counts.
		ev(0x100, 0xA, 0x200, true, true, false, false),
		// Cold miss: pattern 0xB unseen, no table hit.
		ev(0x100, 0xB, 0x200, true, false, false, false),
		// Conflict miss: pattern 0xA was seen (in warmup) but entry gone.
		ev(0x100, 0xA, 0x204, true, false, false, false),
		// Alias miss: table hit, wrong target.
		ev(0x100, 0xA, 0x200, true, false, true, false),
		// Meta miss at a second site.
		ev(0x140, 0xC, 0x300, true, false, true, true),
		// Correct predictions.
		ev(0x100, 0xA, 0x200, false, false, true, false),
		ev(0x140, 0xC, 0x300, false, false, true, false),
	}
	a := Attribute(events)
	if a.Executed != 6 || a.Misses != 4 {
		t.Fatalf("executed/misses = %d/%d, want 6/4", a.Executed, a.Misses)
	}
	want := map[string]int{MissCold: 1, MissConflict: 1, MissAlias: 1, MissMeta: 1}
	for _, c := range MissClasses() {
		if a.ByClass[c] != want[c] {
			t.Errorf("class %s: got %d, want %d", c, a.ByClass[c], want[c])
		}
	}
	if len(a.Branches) != 2 {
		t.Fatalf("got %d branch profiles, want 2", len(a.Branches))
	}
	top := a.Branches[0]
	if top.PC != 0x100 || top.Misses != 3 || top.Executed != 4 {
		t.Errorf("top branch = %+v, want PC 0x100 with 3/4", top)
	}
	if top.Targets != 2 {
		t.Errorf("site 0x100 saw %d targets, want 2 (warmup counts toward polymorphism)", top.Targets)
	}
	if got := top.MissRate(); got != 0.75 {
		t.Errorf("miss rate %v, want 0.75", got)
	}
}

func TestAttributeDeterministicOrder(t *testing.T) {
	// Three sites with equal misses: order must fall back to ascending PC.
	var events []ptrace.Event
	for _, pc := range []uint32{0x300, 0x100, 0x200} {
		events = append(events, ev(pc, 1, 0x900, true, false, true, false))
	}
	for run := 0; run < 10; run++ {
		a := Attribute(events)
		for i, wantPC := range []uint32{0x100, 0x200, 0x300} {
			if a.Branches[i].PC != wantPC {
				t.Fatalf("run %d: branch %d has PC %#x, want %#x", run, i, a.Branches[i].PC, wantPC)
			}
		}
	}
}

func TestAttributeTransitionEntropy(t *testing.T) {
	// A strict 2-cycle has zero conditional entropy despite 2 targets.
	var cyclic []ptrace.Event
	for i := 0; i < 40; i++ {
		cyclic = append(cyclic, ev(0x100, 1, 0x200+uint32(i%2)*4, false, false, true, false))
	}
	a := Attribute(cyclic)
	if p := a.Branches[0]; p.Targets != 2 || p.TransitionEntropy > 1e-9 {
		t.Errorf("cyclic site: targets=%d entropy=%v, want 2 and ~0", p.Targets, p.TransitionEntropy)
	}
	// Alternating pairs (A A B B ...) give H(next|prev) of 1 bit.
	var noisy []ptrace.Event
	for i := 0; i < 40; i++ {
		noisy = append(noisy, ev(0x100, 1, 0x200+uint32((i/2)%2)*4, false, false, true, false))
	}
	if p := Attribute(noisy).Branches[0]; p.TransitionEntropy < 0.9 {
		t.Errorf("alternating-pairs entropy %v, want ~1 bit", p.TransitionEntropy)
	}
}

func TestTopClamps(t *testing.T) {
	a := Attribute([]ptrace.Event{ev(1, 1, 1, false, false, true, false)})
	if got := a.Top(10); len(got) != 1 {
		t.Errorf("Top(10) over 1 site returned %d", len(got))
	}
	if got := a.Top(0); len(got) != 0 {
		t.Errorf("Top(0) returned %d", len(got))
	}
}
