// Package bits provides the low-level bit manipulation used to build
// two-level predictor history patterns: field extraction, xor-folding, and
// the pattern assembly schemes of Driesen & Hölzle §4–§5 (concatenation and
// straight / reverse / ping-pong interleaving of partial target addresses).
package bits

import "fmt"

// Field extracts n bits of x starting at bit lo (bit 0 is the least
// significant). Bits beyond position 31 read as zero. n must be in [0, 32].
func Field(x uint32, lo, n int) uint32 {
	if n <= 0 {
		return 0
	}
	if lo >= 32 {
		return 0
	}
	x >>= uint(lo)
	if n >= 32 {
		return x
	}
	return x & (1<<uint(n) - 1)
}

// Fold xor-folds x into b bits by splitting it into ⌈32/b⌉ chunks of b bits
// and xor-ing them together. Fold(x, 0) is 0; b ≥ 32 returns x unchanged.
// This is the "fold the new target address" variant of §4.1.
func Fold(x uint32, b int) uint32 {
	if b <= 0 {
		return 0
	}
	if b >= 32 {
		return x
	}
	var out uint32
	for x != 0 {
		out ^= x & (1<<uint(b) - 1)
		x >>= uint(b)
	}
	return out
}

// Scheme selects how the partial target addresses of a history are laid out
// in the pattern. The paper's observation (§5.2.1): with limited-associative
// tables the index part of the key should contain bits from as many targets
// as possible, so the interleaving schemes beat plain concatenation.
type Scheme uint8

const (
	// Concat places each target's b bits contiguously, the most recent
	// target in the least significant bits (Figure 13, left).
	Concat Scheme = iota
	// Straight interleaves one bit per target per round, most recent
	// target first, so the most recent targets are represented with the
	// highest precision in the index part (Figure 15, top).
	Straight
	// Reverse interleaves oldest target first, giving older targets the
	// higher precision. The paper found it slightly best on average and
	// uses it for all interleaved results (§5.2.1).
	Reverse
	// PingPong alternates youngest, oldest, second-youngest,
	// second-oldest, … (Figure 15, bottom).
	PingPong
)

var schemeNames = [...]string{"concat", "straight", "reverse", "pingpong"}

func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// ParseScheme converts a scheme name (as produced by String) back to a
// Scheme value.
func ParseScheme(name string) (Scheme, error) {
	for i, n := range schemeNames {
		if n == name {
			return Scheme(i), nil
		}
	}
	return 0, fmt.Errorf("bits: unknown interleave scheme %q", name)
}

// order returns the index into targets (0 = most recent) of the j-th target
// in the scheme's fill order, for a history of p targets.
func (s Scheme) order(j, p int) int {
	switch s {
	case Reverse:
		return p - 1 - j
	case PingPong:
		if j%2 == 0 {
			return j / 2
		}
		return p - 1 - j/2
	default: // Concat and Straight fill youngest-first.
		return j
	}
}

// Assemble builds a history pattern from the p targets (targets[0] is the
// most recent), taking b bits from each target starting at bit `start`
// (paper: a=2, skipping the alignment bits). The result has p*b significant
// bits; p*b must not exceed 32 (the paper caps it at 24).
//
// For Concat, target i occupies bits [i*b, (i+1)*b). For the interleaving
// schemes, pattern bit r*p+j holds bit start+r of the j-th target in the
// scheme's order, so the low-order p bits of the pattern contain bit `start`
// of every target.
func Assemble(targets []uint32, b, start int, scheme Scheme) uint32 {
	p := len(targets)
	if p == 0 || b <= 0 {
		return 0
	}
	if p*b > 32 {
		panic(fmt.Sprintf("bits: pattern of %d targets × %d bits exceeds 32 bits", p, b))
	}
	var pattern uint32
	if scheme == Concat {
		for i, t := range targets {
			pattern |= Field(t, start, b) << uint(i*b)
		}
		return pattern
	}
	// Interleaved schemes: pattern bit r*p+j holds bit start+r of the j-th
	// target in scheme order. Walking target-major (one order lookup and one
	// field extraction per target, then b single-bit deposits with stride p)
	// is equivalent to the bit-major definition but keeps this — the hottest
	// loop of the whole simulator — free of per-bit function calls.
	for j := 0; j < p; j++ {
		t := Field(targets[scheme.order(j, p)], start, b)
		for pos := j; t != 0; pos += p {
			pattern |= (t & 1) << uint(pos)
			t >>= 1
		}
	}
	return pattern
}

// XorKey folds the word-aligned branch address into the history pattern by
// XOR (the gshare-style reduction of §4.2), producing a 30-bit key.
func XorKey(pattern, pc uint32) uint64 {
	return uint64(pattern) ^ uint64(pc>>2)
}

// ConcatKey concatenates the word-aligned branch address above the history
// pattern (patternBits wide), producing a key of up to 30+patternBits bits.
func ConcatKey(pattern, pc uint32, patternBits int) uint64 {
	return uint64(pc>>2)<<uint(patternBits) | uint64(pattern)
}
