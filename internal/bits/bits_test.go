package bits

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestField(t *testing.T) {
	cases := []struct {
		x     uint32
		lo, n int
		want  uint32
	}{
		{0xDEADBEEF, 0, 4, 0xF},
		{0xDEADBEEF, 4, 4, 0xE},
		{0xDEADBEEF, 0, 32, 0xDEADBEEF},
		{0xDEADBEEF, 28, 4, 0xD},
		{0xDEADBEEF, 31, 1, 1},
		{0xDEADBEEF, 32, 4, 0},
		{0xDEADBEEF, 2, 0, 0},
		{0xDEADBEEF, 2, -1, 0},
		{0xFFFFFFFF, 16, 32, 0xFFFF},
		{0, 0, 32, 0},
	}
	for _, c := range cases {
		if got := Field(c.x, c.lo, c.n); got != c.want {
			t.Errorf("Field(%#x, %d, %d) = %#x, want %#x", c.x, c.lo, c.n, got, c.want)
		}
	}
}

func TestFieldWidth(t *testing.T) {
	// The result of Field never exceeds n bits.
	f := func(x uint32, lo, n uint8) bool {
		got := Field(x, int(lo%40), int(n%40))
		w := int(n % 40)
		if w >= 32 {
			return true
		}
		return got < 1<<uint(w) || w == 0 && got == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFold(t *testing.T) {
	if got := Fold(0xFF00FF00, 8); got != 0 {
		t.Errorf("Fold(0xFF00FF00, 8) = %#x, want 0 (chunks cancel)", got)
	}
	if got := Fold(0x12345678, 32); got != 0x12345678 {
		t.Errorf("Fold identity at b=32: got %#x", got)
	}
	if got := Fold(0xABCD, 0); got != 0 {
		t.Errorf("Fold(_, 0) = %#x, want 0", got)
	}
	// Fold into 16 bits: low ^ high halves.
	if got, want := Fold(0x12345678, 16), uint32(0x1234^0x5678); got != want {
		t.Errorf("Fold(0x12345678, 16) = %#x, want %#x", got, want)
	}
}

func TestFoldWidth(t *testing.T) {
	f := func(x uint32, b uint8) bool {
		w := int(b % 34)
		got := Fold(x, w)
		if w == 0 {
			return got == 0
		}
		if w >= 32 {
			return got == x
		}
		return got < 1<<uint(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemeString(t *testing.T) {
	for _, s := range []Scheme{Concat, Straight, Reverse, PingPong} {
		name := s.String()
		back, err := ParseScheme(name)
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", name, err)
		}
		if back != s {
			t.Errorf("round trip %v -> %q -> %v", s, name, back)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme(bogus) succeeded, want error")
	}
}

func TestAssembleConcat(t *testing.T) {
	targets := []uint32{0xABC << 2, 0xDEF << 2} // bits [2..13] hold 0xABC / 0xDEF
	got := Assemble(targets, 12, 2, Concat)
	want := uint32(0xDEF)<<12 | 0xABC
	if got != want {
		t.Errorf("Assemble concat = %#x, want %#x", got, want)
	}
}

func TestAssembleSingleTargetSchemesAgree(t *testing.T) {
	// With one target, all schemes reduce to plain field extraction.
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100; i++ {
		tgt := rng.Uint32() &^ 3
		want := Field(tgt, 2, 24)
		for _, s := range []Scheme{Concat, Straight, Reverse, PingPong} {
			if got := Assemble([]uint32{tgt}, 24, 2, s); got != want {
				t.Fatalf("scheme %v single target: got %#x want %#x", s, got, want)
			}
		}
	}
}

func TestAssembleInterleaveLowBits(t *testing.T) {
	// For every interleaving scheme, the low p bits of the pattern must
	// contain bit `start` of every target (§5.2.1: index part covers all
	// targets). We verify by flipping bit 2 of each target in turn and
	// checking that exactly one of the low-p pattern bits changes.
	rng := rand.New(rand.NewPCG(3, 4))
	for _, scheme := range []Scheme{Straight, Reverse, PingPong} {
		for p := 2; p <= 8; p++ {
			b := 24 / p
			targets := make([]uint32, p)
			for i := range targets {
				targets[i] = rng.Uint32() &^ 3
			}
			base := Assemble(targets, b, 2, scheme)
			seen := make(map[uint32]bool)
			for i := range targets {
				flipped := make([]uint32, p)
				copy(flipped, targets)
				flipped[i] ^= 1 << 2
				pat := Assemble(flipped, b, 2, scheme)
				diff := (pat ^ base) & (1<<uint(p) - 1)
				if diff == 0 || diff&(diff-1) != 0 {
					t.Fatalf("scheme %v p=%d: flipping bit 2 of target %d changed low bits by %#x", scheme, p, i, diff)
				}
				if seen[diff] {
					t.Fatalf("scheme %v p=%d: two targets map to the same low pattern bit", scheme, p)
				}
				seen[diff] = true
			}
		}
	}
}

func TestAssembleConcatLowBitsOnlyYoungest(t *testing.T) {
	// Concatenation leaves older targets out of the low-order bits: with
	// p=2 and b=12, changing the older target must not affect the low 12
	// pattern bits (the Figure 13 aliasing the paper diagnoses).
	t1, t2a, t2b := uint32(0x1234)<<2, uint32(0x5678)<<2, uint32(0x9ABC)<<2
	pa := Assemble([]uint32{t1, t2a}, 12, 2, Concat)
	pb := Assemble([]uint32{t1, t2b}, 12, 2, Concat)
	if pa&0xFFF != pb&0xFFF {
		t.Errorf("concat low bits depend on older target: %#x vs %#x", pa, pb)
	}
	if pa == pb {
		t.Errorf("patterns identical despite differing older target")
	}
}

func TestAssembleIsPermutation(t *testing.T) {
	// Interleaving is a bit permutation of concatenation: the multiset of
	// extracted bits is preserved (popcount equality for random inputs).
	rng := rand.New(rand.NewPCG(5, 6))
	pop := func(x uint32) int {
		n := 0
		for ; x != 0; x &= x - 1 {
			n++
		}
		return n
	}
	for i := 0; i < 200; i++ {
		p := 1 + rng.IntN(12)
		b := 24 / p
		if b == 0 {
			continue
		}
		targets := make([]uint32, p)
		for j := range targets {
			targets[j] = rng.Uint32() &^ 3
		}
		ref := pop(Assemble(targets, b, 2, Concat))
		for _, s := range []Scheme{Straight, Reverse, PingPong} {
			if got := pop(Assemble(targets, b, 2, s)); got != ref {
				t.Fatalf("scheme %v popcount %d, concat %d (p=%d b=%d)", s, got, ref, p, b)
			}
		}
	}
}

func TestAssembleEdgeCases(t *testing.T) {
	if got := Assemble(nil, 8, 2, Reverse); got != 0 {
		t.Errorf("empty targets: got %#x", got)
	}
	if got := Assemble([]uint32{0xFFFF}, 0, 2, Reverse); got != 0 {
		t.Errorf("zero bits: got %#x", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Assemble with p*b > 32 did not panic")
		}
	}()
	Assemble(make([]uint32, 5), 8, 2, Concat)
}

func TestKeys(t *testing.T) {
	pc := uint32(0x0004_0010)
	pat := uint32(0x00AB_CDEF) & 0xFFFFFF
	if got, want := XorKey(pat, pc), uint64(pat)^uint64(pc>>2); got != want {
		t.Errorf("XorKey = %#x, want %#x", got, want)
	}
	if got := XorKey(pat, pc); got >= 1<<30 {
		t.Errorf("XorKey exceeds 30 bits: %#x", got)
	}
	ck := ConcatKey(pat, pc, 24)
	if got, want := ck&0xFFFFFF, uint64(pat); got != want {
		t.Errorf("ConcatKey pattern part = %#x, want %#x", got, want)
	}
	if got, want := ck>>24, uint64(pc>>2); got != want {
		t.Errorf("ConcatKey address part = %#x, want %#x", got, want)
	}
}

func TestXorKeyZeroPattern(t *testing.T) {
	// With an empty history pattern, XorKey degenerates to the branch
	// address, i.e. a BTB key (path length 0 reduces to a BTB, §3.2.3).
	f := func(pc uint32) bool {
		return XorKey(0, pc) == uint64(pc>>2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
