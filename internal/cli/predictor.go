// Package cli holds the flag-level predictor construction shared by the
// command-line tools: ibpsim and ibpreport accept the same
// -pred/-p/-table/... surface and must build bit-identical predictors from
// it, so the mapping lives once, here.
package cli

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/history"
	"github.com/oocsb/ibp/internal/table"
)

// PredictorFlags describes one predictor configuration as the tools expose
// it. Zero value is not useful — call Register to install the defaults.
type PredictorFlags struct {
	Pred      string
	Path      int
	HistShare int
	TabShare  int
	Precision int
	Scheme    string
	KeyOp     string
	Table     string
	Entries   int
	Update    string
	Hybrid    string
}

// Register declares the predictor flags on fs with their defaults.
func (f *PredictorFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Pred, "pred", "2lev", "predictor family: 2lev, btb, btb-2bc, tcache, ppm, shared, ittage[:banks,entries,minhist]")
	fs.IntVar(&f.Path, "p", 3, "path length")
	fs.IntVar(&f.HistShare, "s", 32, "history sharing exponent (2=per-branch, 32=global)")
	fs.IntVar(&f.TabShare, "hshare", 2, "history table sharing exponent (full-precision mode)")
	fs.IntVar(&f.Precision, "b", core.AutoPrecision, "bits per history target (-1 auto, 0 full precision)")
	fs.StringVar(&f.Scheme, "scheme", "reverse", "pattern layout: concat, straight, reverse, pingpong")
	fs.StringVar(&f.KeyOp, "keyop", "xor", "address folding: xor or concat")
	fs.StringVar(&f.Table, "table", "unbounded", "table: exact, unbounded, tagless, assoc1/2/4, fullassoc")
	fs.IntVar(&f.Entries, "entries", 0, "table entries for bounded tables")
	fs.StringVar(&f.Update, "update", "2bc", "target update rule: 2bc or always")
	fs.StringVar(&f.Hybrid, "hybrid", "", "dual-path hybrid \"p1,p2\" (overrides -p)")
}

// FlagError is the typed rejection produced by flag validation: which flag,
// what value, and why. Tools match it with errors.As to distinguish operator
// mistakes (usage errors) from internal failures.
type FlagError struct {
	// Flag is the flag name without the leading dash.
	Flag string
	// Value is the rejected value, rendered.
	Value string
	// Reason says what range or vocabulary the value violated.
	Reason string
}

func (e *FlagError) Error() string {
	return fmt.Sprintf("invalid -%s value %q: %s", e.Flag, e.Value, e.Reason)
}

// MaxPathLength is the longest path-history length any predictor family
// accepts (the two-level predictor's hard limit).
const MaxPathLength = 64

// predNames is the -pred vocabulary Build accepts; the ittage family is
// matched separately because it carries an inline spec (see ParseITTAGE).
var predNames = map[string]bool{
	"2lev": true, "btb": true, "btb-2bc": true,
	"tcache": true, "ppm": true, "shared": true,
}

// ITTAGE spec defaults: bare "ittage" means 8 tagged banks of 512 entries
// over a 1024-entry base, with history lengths doubling from 2.
const (
	ittageDefBanks   = 8
	ittageDefEntries = 512
	ittageDefMinHist = 2
)

// ParseITTAGE interprets the -pred ittage spec grammar: bare "ittage" for
// the defaults, or "ittage:banks,entries,minhist" with banks in [1,16],
// entries a power of two, and minhist positive. ok reports whether pred
// names the ittage family at all; reason is non-empty when it does but the
// spec is malformed — mirroring core.NewITTAGE's construction checks so a
// bad spec fails flag validation, not predictor construction.
func ParseITTAGE(pred string) (banks, entries, minHist int, ok bool, reason string) {
	if pred == "ittage" {
		return ittageDefBanks, ittageDefEntries, ittageDefMinHist, true, ""
	}
	spec, found := strings.CutPrefix(pred, "ittage:")
	if !found {
		return 0, 0, 0, false, ""
	}
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return 0, 0, 0, true, `want "ittage" or "ittage:banks,entries,minhist"`
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return 0, 0, 0, true, fmt.Sprintf("%q is not an integer", p)
		}
		vals[i] = v
	}
	banks, entries, minHist = vals[0], vals[1], vals[2]
	switch {
	case banks < 1 || banks > 16:
		return 0, 0, 0, true, "banks must be in [1,16]"
	case entries <= 0 || entries&(entries-1) != 0:
		return 0, 0, 0, true, "entries must be a positive power of two"
	case minHist < 1:
		return 0, 0, 0, true, "minhist must be positive"
	}
	return banks, entries, minHist, true, ""
}

// validTableKind reports whether kind names a table organization any tool
// accepts: the CLI's named kinds plus the assoc<2^k> family.
func validTableKind(kind string) bool {
	switch kind {
	case "", "exact", "unbounded", "tagless", "fullassoc":
		return true
	}
	var ways int
	if _, err := fmt.Sscanf(kind, "assoc%d", &ways); err == nil && ways > 0 && ways&(ways-1) == 0 {
		return true
	}
	return false
}

// Validate rejects out-of-range or unknown flag values with a *FlagError
// before any predictor construction happens, so every tool reports the same
// typed usage error for the same mistake. Build still performs its own
// construction-time checks; Validate catches the errors worth a clean
// message (unknown -pred, -p outside [0, MaxPathLength], unknown -table,
// negative -entries, malformed -hybrid).
func (f PredictorFlags) Validate() error {
	if _, _, _, isIttage, reason := ParseITTAGE(f.Pred); isIttage {
		if reason != "" {
			return &FlagError{Flag: "pred", Value: f.Pred, Reason: reason}
		}
	} else if !predNames[f.Pred] {
		return &FlagError{Flag: "pred", Value: f.Pred, Reason: "want 2lev, btb, btb-2bc, tcache, ppm, shared, or ittage[:banks,entries,minhist]"}
	}
	if f.Path < 0 || f.Path > MaxPathLength {
		return &FlagError{Flag: "p", Value: fmt.Sprint(f.Path), Reason: fmt.Sprintf("path length must be in [0, %d]", MaxPathLength)}
	}
	if !validTableKind(f.Table) {
		return &FlagError{Flag: "table", Value: f.Table, Reason: "want exact, unbounded, tagless, assoc<2^k>, or fullassoc"}
	}
	if f.Entries < 0 {
		return &FlagError{Flag: "entries", Value: fmt.Sprint(f.Entries), Reason: "entry count cannot be negative"}
	}
	if f.Hybrid != "" {
		p1, p2, err := ParsePair(f.Hybrid)
		if err != nil {
			return &FlagError{Flag: "hybrid", Value: f.Hybrid, Reason: `want "p1,p2"`}
		}
		if p1 < 0 || p1 > MaxPathLength || p2 < 0 || p2 > MaxPathLength {
			return &FlagError{Flag: "hybrid", Value: f.Hybrid, Reason: fmt.Sprintf("component path lengths must be in [0, %d]", MaxPathLength)}
		}
	}
	return nil
}

// ValidateSeed rejects non-positive workload seeds with a *FlagError: seed 0
// is the generators' "unset" sentinel and negative seeds cannot survive the
// uint64 conversion the generators perform.
func ValidateSeed(seed int64) error {
	if seed <= 0 {
		return &FlagError{Flag: "seed", Value: fmt.Sprint(seed), Reason: "seed must be positive"}
	}
	return nil
}

// Build constructs the predictor the flags describe.
func (f PredictorFlags) Build() (core.Predictor, error) {
	if banks, entries, minHist, isIttage, reason := ParseITTAGE(f.Pred); isIttage {
		if reason != "" {
			return nil, &FlagError{Flag: "pred", Value: f.Pred, Reason: reason}
		}
		return core.NewITTAGE(banks, entries, minHist)
	}
	switch f.Pred {
	case "btb":
		tb, err := f.boundedTable()
		if err != nil {
			return nil, err
		}
		return core.NewBTB(tb, core.UpdateAlways), nil
	case "btb-2bc":
		tb, err := f.boundedTable()
		if err != nil {
			return nil, err
		}
		return core.NewBTB(tb, core.UpdateTwoMiss), nil
	case "tcache":
		entries := f.Entries
		if entries == 0 {
			entries = 512
		}
		return core.NewTargetCache(9, orDefault(f.Table, "tagless"), entries)
	case "ppm":
		p1, p2, err := ParsePair(f.Hybrid)
		if err != nil {
			return nil, fmt.Errorf("ppm needs -hybrid p1,p2: %w", err)
		}
		return core.NewCascade([]int{p1, p2}, f.Table, f.Entries)
	case "shared":
		p1, p2, err := ParsePair(f.Hybrid)
		if err != nil {
			return nil, fmt.Errorf("shared needs -hybrid p1,p2: %w", err)
		}
		return core.NewSharedHybrid(p1, p2, f.Table, f.Entries)
	case "2lev":
		if f.Hybrid != "" {
			p1, p2, err := ParsePair(f.Hybrid)
			if err != nil {
				return nil, err
			}
			return core.NewDualPath(p1, p2, f.Table, f.Entries)
		}
		cfg, err := f.TwoLevelConfig()
		if err != nil {
			return nil, err
		}
		return core.NewTwoLevel(cfg)
	}
	return nil, fmt.Errorf("unknown predictor %q", f.Pred)
}

// Unbounded returns the flags with the table widened to unbounded — the
// shadow-twin configuration for capacity-miss attribution.
func (f PredictorFlags) Unbounded() PredictorFlags {
	f.Table = "unbounded"
	f.Entries = 0
	return f
}

// TwoLevelConfig maps the flags onto a core.Config for the 2lev family.
func (f PredictorFlags) TwoLevelConfig() (core.Config, error) {
	scheme, err := bits.ParseScheme(f.Scheme)
	if err != nil {
		return core.Config{}, err
	}
	var keyop history.KeyOp
	switch f.KeyOp {
	case "xor":
		keyop = history.OpXor
	case "concat":
		keyop = history.OpConcat
	default:
		return core.Config{}, fmt.Errorf("unknown key op %q", f.KeyOp)
	}
	var update core.UpdateRule
	switch f.Update {
	case "2bc":
		update = core.UpdateTwoMiss
	case "always":
		update = core.UpdateAlways
	default:
		return core.Config{}, fmt.Errorf("unknown update rule %q", f.Update)
	}
	return core.Config{
		PathLength: f.Path,
		HistShare:  f.HistShare,
		TableShare: f.TabShare,
		Precision:  f.Precision,
		Scheme:     scheme,
		KeyOp:      keyop,
		TableKind:  f.Table,
		Entries:    f.Entries,
		Update:     update,
	}, nil
}

// boundedTable builds the BTB's table, or nil for an unbounded one.
func (f PredictorFlags) boundedTable() (table.Bounded, error) {
	if f.Table == "" || f.Table == "unbounded" || f.Table == "exact" {
		return nil, nil
	}
	return table.New(f.Table, f.Entries)
}

// ParsePair parses the "p1,p2" hybrid path-length argument.
func ParsePair(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want \"p1,p2\", got %q", s)
	}
	var a, b int
	if _, err := fmt.Sscanf(parts[0], "%d", &a); err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &b); err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func orDefault(s, def string) string {
	if s == "" || s == "unbounded" {
		return def
	}
	return s
}
