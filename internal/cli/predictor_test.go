package cli

import (
	"errors"
	"flag"
	"testing"
)

// defaults returns the flags as Register would install them, by actually
// registering on a throwaway FlagSet: the test exercises the same defaults
// the tools ship.
func defaults(t *testing.T) PredictorFlags {
	t.Helper()
	var f PredictorFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidateAcceptsDefaults(t *testing.T) {
	f := defaults(t)
	if err := f.Validate(); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	if _, err := f.Build(); err != nil {
		t.Fatalf("default flags failed to build: %v", err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PredictorFlags)
		flag   string
	}{
		{"negative path", func(f *PredictorFlags) { f.Path = -1 }, "p"},
		{"huge path", func(f *PredictorFlags) { f.Path = MaxPathLength + 1 }, "p"},
		{"unknown table", func(f *PredictorFlags) { f.Table = "cuckoo" }, "table"},
		{"non-pow2 assoc", func(f *PredictorFlags) { f.Table = "assoc3" }, "table"},
		{"unknown pred", func(f *PredictorFlags) { f.Pred = "oracle" }, "pred"},
		{"negative entries", func(f *PredictorFlags) { f.Entries = -4 }, "entries"},
		{"malformed hybrid", func(f *PredictorFlags) { f.Hybrid = "3;1" }, "hybrid"},
		{"hybrid out of range", func(f *PredictorFlags) { f.Hybrid = "3,99" }, "hybrid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := defaults(t)
			tc.mutate(&f)
			err := f.Validate()
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			var fe *FlagError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a *FlagError", err)
			}
			if fe.Flag != tc.flag {
				t.Fatalf("error names flag %q, want %q", fe.Flag, tc.flag)
			}
		})
	}
}

func TestValidateAcceptsKnownShapes(t *testing.T) {
	for _, mutate := range []func(*PredictorFlags){
		func(f *PredictorFlags) { f.Table = "assoc4"; f.Entries = 512 },
		func(f *PredictorFlags) { f.Table = "exact"; f.Path = 0 },
		func(f *PredictorFlags) { f.Pred = "btb-2bc" },
		func(f *PredictorFlags) { f.Hybrid = "3,1"; f.Table = "assoc4"; f.Entries = 1024 },
		func(f *PredictorFlags) { f.Path = MaxPathLength },
	} {
		f := defaults(t)
		mutate(&f)
		if err := f.Validate(); err != nil {
			t.Fatalf("valid flags %+v rejected: %v", f, err)
		}
	}
}

func TestParseITTAGESpec(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		banks, entries, minHist, ok, reason := ParseITTAGE("ittage")
		if !ok || reason != "" {
			t.Fatalf("bare ittage rejected: ok=%v reason=%q", ok, reason)
		}
		if banks != ittageDefBanks || entries != ittageDefEntries || minHist != ittageDefMinHist {
			t.Fatalf("bare ittage = %d,%d,%d; want defaults %d,%d,%d",
				banks, entries, minHist, ittageDefBanks, ittageDefEntries, ittageDefMinHist)
		}
	})
	t.Run("explicit", func(t *testing.T) {
		banks, entries, minHist, ok, reason := ParseITTAGE("ittage:4, 256, 3")
		if !ok || reason != "" {
			t.Fatalf("spec rejected: ok=%v reason=%q", ok, reason)
		}
		if banks != 4 || entries != 256 || minHist != 3 {
			t.Fatalf("got %d,%d,%d; want 4,256,3", banks, entries, minHist)
		}
	})
	t.Run("not ittage", func(t *testing.T) {
		for _, pred := range []string{"2lev", "btb", "ittagex", "ittag"} {
			if _, _, _, ok, _ := ParseITTAGE(pred); ok {
				t.Fatalf("ParseITTAGE(%q) claimed the ittage family", pred)
			}
		}
	})
	t.Run("malformed", func(t *testing.T) {
		for _, pred := range []string{
			"ittage:", "ittage:8", "ittage:8,512", "ittage:8,512,2,9",
			"ittage:x,512,2", "ittage:0,512,2", "ittage:17,512,2",
			"ittage:8,500,2", "ittage:8,0,2", "ittage:8,-512,2", "ittage:8,512,0",
		} {
			_, _, _, ok, reason := ParseITTAGE(pred)
			if !ok {
				t.Fatalf("ParseITTAGE(%q) did not claim the ittage family", pred)
			}
			if reason == "" {
				t.Fatalf("ParseITTAGE(%q) accepted a malformed spec", pred)
			}
		}
	})
}

func TestValidateITTAGE(t *testing.T) {
	f := defaults(t)
	f.Pred = "ittage"
	if err := f.Validate(); err != nil {
		t.Fatalf("bare ittage rejected: %v", err)
	}
	p, err := f.Build()
	if err != nil {
		t.Fatalf("bare ittage failed to build: %v", err)
	}
	if p.Name() == "" {
		t.Fatal("built predictor has no name")
	}

	f.Pred = "ittage:2,128,4"
	if err := f.Validate(); err != nil {
		t.Fatalf("explicit spec rejected: %v", err)
	}
	if _, err := f.Build(); err != nil {
		t.Fatalf("explicit spec failed to build: %v", err)
	}

	f.Pred = "ittage:8,500,2"
	err = f.Validate()
	var fe *FlagError
	if !errors.As(err, &fe) || fe.Flag != "pred" {
		t.Fatalf("malformed spec: want *FlagError on -pred, got %v", err)
	}
}

func TestValidateSeed(t *testing.T) {
	for _, seed := range []int64{0, -1, -1 << 40} {
		err := ValidateSeed(seed)
		var fe *FlagError
		if !errors.As(err, &fe) || fe.Flag != "seed" {
			t.Fatalf("seed %d: want *FlagError on -seed, got %v", seed, err)
		}
	}
	if err := ValidateSeed(1); err != nil {
		t.Fatalf("seed 1 rejected: %v", err)
	}
}
