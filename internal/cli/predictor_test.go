package cli

import (
	"errors"
	"flag"
	"testing"
)

// defaults returns the flags as Register would install them, by actually
// registering on a throwaway FlagSet: the test exercises the same defaults
// the tools ship.
func defaults(t *testing.T) PredictorFlags {
	t.Helper()
	var f PredictorFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidateAcceptsDefaults(t *testing.T) {
	f := defaults(t)
	if err := f.Validate(); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	if _, err := f.Build(); err != nil {
		t.Fatalf("default flags failed to build: %v", err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PredictorFlags)
		flag   string
	}{
		{"negative path", func(f *PredictorFlags) { f.Path = -1 }, "p"},
		{"huge path", func(f *PredictorFlags) { f.Path = MaxPathLength + 1 }, "p"},
		{"unknown table", func(f *PredictorFlags) { f.Table = "cuckoo" }, "table"},
		{"non-pow2 assoc", func(f *PredictorFlags) { f.Table = "assoc3" }, "table"},
		{"unknown pred", func(f *PredictorFlags) { f.Pred = "oracle" }, "pred"},
		{"negative entries", func(f *PredictorFlags) { f.Entries = -4 }, "entries"},
		{"malformed hybrid", func(f *PredictorFlags) { f.Hybrid = "3;1" }, "hybrid"},
		{"hybrid out of range", func(f *PredictorFlags) { f.Hybrid = "3,99" }, "hybrid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := defaults(t)
			tc.mutate(&f)
			err := f.Validate()
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			var fe *FlagError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a *FlagError", err)
			}
			if fe.Flag != tc.flag {
				t.Fatalf("error names flag %q, want %q", fe.Flag, tc.flag)
			}
		})
	}
}

func TestValidateAcceptsKnownShapes(t *testing.T) {
	for _, mutate := range []func(*PredictorFlags){
		func(f *PredictorFlags) { f.Table = "assoc4"; f.Entries = 512 },
		func(f *PredictorFlags) { f.Table = "exact"; f.Path = 0 },
		func(f *PredictorFlags) { f.Pred = "btb-2bc" },
		func(f *PredictorFlags) { f.Hybrid = "3,1"; f.Table = "assoc4"; f.Entries = 1024 },
		func(f *PredictorFlags) { f.Path = MaxPathLength },
	} {
		f := defaults(t)
		mutate(&f)
		if err := f.Validate(); err != nil {
			t.Fatalf("valid flags %+v rejected: %v", f, err)
		}
	}
}

func TestValidateSeed(t *testing.T) {
	for _, seed := range []int64{0, -1, -1 << 40} {
		err := ValidateSeed(seed)
		var fe *FlagError
		if !errors.As(err, &fe) || fe.Flag != "seed" {
			t.Fatalf("seed %d: want *FlagError on -seed, got %v", seed, err)
		}
	}
	if err := ValidateSeed(1); err != nil {
		t.Fatalf("seed 1 rejected: %v", err)
	}
}
