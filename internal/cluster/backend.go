package cluster

import (
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// BackendState is a backend's position in the health state machine:
//
//	          probe ok                probe fail
//	   Up ◄──────────── Suspect ◄──────────────── Up
//	    │                  │ FailThreshold consecutive fails
//	    │                  ▼
//	    │                Down ──── probe ok ────► Rejoining
//	    │                  ▲                         │
//	    │              probe fail                    │ RiseThreshold
//	    └────────────────────────────────────────────┘ consecutive oks
//
// Draining sits outside the probe loop: it is the administrative state
// DrainBackend sets on a membership change. Sessions are placed only on Up,
// Suspect, and Rejoining backends; a transition to Down (or a drain) kicks
// the backend's attached sessions into the journal-replay failover path.
type BackendState int32

const (
	StateUp BackendState = iota
	StateSuspect
	StateDown
	StateRejoining
	StateDraining
)

func (s BackendState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	case StateRejoining:
		return "rejoining"
	case StateDraining:
		return "draining"
	default:
		return "invalid"
	}
}

// backend is one ibpserved instance in the membership.
type backend struct {
	addr      string
	state     atomic.Int32
	stopProbe chan struct{} // closed by RemoveBackend; ends the prober

	// prober-owned consecutive-outcome counters.
	fails, rises int

	mu       sync.Mutex
	attached map[*proxySession]io.Closer // live sessions and their backend connections
}

func newBackend(addr string, initial BackendState) *backend {
	b := &backend{addr: addr, attached: make(map[*proxySession]io.Closer), stopProbe: make(chan struct{})}
	b.state.Store(int32(initial))
	return b
}

func (b *backend) getState() BackendState { return BackendState(b.state.Load()) }

// placeable reports whether new sessions (or failovers) may land here.
func (b *backend) placeable() bool {
	switch b.getState() {
	case StateUp, StateSuspect, StateRejoining:
		return true
	default:
		return false
	}
}

// setState moves the state machine, logging and counting the transition.
func (b *backend) setState(r *Router, to BackendState, reason string) {
	from := BackendState(b.state.Swap(int32(to)))
	if from == to {
		return
	}
	r.m.healthTransitions.Inc()
	r.updateBackendsUpGauge()
	r.log.Info("backend state change", "backend", b.addr, "from", from.String(), "to", to.String(), "reason", reason)
}

// attach registers a session's live backend connection so a Down transition
// or an administrative drain can kick it into failover.
func (b *backend) attach(sess *proxySession, conn io.Closer) {
	b.mu.Lock()
	b.attached[sess] = conn
	b.mu.Unlock()
}

func (b *backend) detach(sess *proxySession) {
	b.mu.Lock()
	delete(b.attached, sess)
	b.mu.Unlock()
}

func (b *backend) sessionCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.attached)
}

// kickSessions severs attached sessions' backend connections, sending each
// one through the failover path. When migratableOnly is set (administrative
// drain), sessions whose journal can no longer replay losslessly are left
// attached — they finish on this backend rather than being killed.
func (b *backend) kickSessions(migratableOnly bool) {
	b.mu.Lock()
	type pair struct {
		sess *proxySession
		conn io.Closer
	}
	kicks := make([]pair, 0, len(b.attached))
	for sess, conn := range b.attached {
		kicks = append(kicks, pair{sess, conn})
	}
	b.mu.Unlock()
	for _, k := range kicks {
		if migratableOnly && !k.sess.replayable() {
			continue
		}
		k.conn.Close()
	}
}

// noteSessionError is a session-level health signal: an I/O failure on a
// live session demotes an Up backend to Suspect immediately instead of
// waiting out a probe interval. Probes alone decide Down.
func (b *backend) noteSessionError(r *Router) {
	if b.state.CompareAndSwap(int32(StateUp), int32(StateSuspect)) {
		r.m.healthTransitions.Inc()
		r.updateBackendsUpGauge()
		r.log.Info("backend state change", "backend", b.addr, "from", "up", "to", "suspect", "reason", "session I/O error")
	}
}

// probeLoop actively health-checks b until the router closes: a TCP connect
// within ProbeTimeout counts as alive. Intervals carry ±10% jitter so a
// fleet of probers does not thunder in lockstep.
func (r *Router) probeLoop(b *backend) {
	defer r.probeWG.Done()
	for {
		d := r.cfg.ProbeInterval
		d = time.Duration(float64(d) * (0.9 + 0.2*rand.Float64()))
		select {
		case <-time.After(d):
		case <-b.stopProbe:
			return
		case <-r.ctx.Done():
			return
		}
		conn, err := net.DialTimeout("tcp", b.addr, r.cfg.ProbeTimeout)
		if err == nil {
			conn.Close()
		}
		r.m.probes.Inc()
		r.observeProbe(b, err)
	}
}

// observeProbe advances the health state machine on one probe outcome.
func (r *Router) observeProbe(b *backend, err error) {
	state := b.getState()
	if state == StateDraining {
		return // administrative; probes don't resurrect a draining backend
	}
	if err != nil {
		r.m.probeFailures.Inc()
		b.fails++
		b.rises = 0
		switch {
		case state == StateDown:
			// stays down
		case b.fails >= r.cfg.FailThreshold:
			b.setState(r, StateDown, err.Error())
			// Sessions still attached to a dead backend are not going to
			// hear an EOF if the host vanished; kick them into failover now.
			b.kickSessions(false)
		case state == StateUp:
			b.setState(r, StateSuspect, err.Error())
		}
		return
	}
	b.fails = 0
	switch state {
	case StateSuspect:
		b.setState(r, StateUp, "probe ok")
	case StateDown:
		b.rises = 1
		b.setState(r, StateRejoining, "probe ok")
	case StateRejoining:
		b.rises++
		if b.rises >= r.cfg.RiseThreshold {
			b.setState(r, StateUp, "rise threshold reached")
		}
	}
}
