// Package cluster is the fault-tolerant ingress for a fleet of ibpserved
// backends. A Router speaks the same IBPT wire protocol as the serve
// package on its client side, places each session onto a backend by
// consistent hashing of its first record's PC (the serve package's FNV-1a
// shard pinning, lifted one level up), and keeps sessions alive across
// backend death: every records frame is journaled until acknowledged, and
// when a backend dies mid-session the router re-dials a survivor, replays
// the journaled prefix through a fresh (deterministic) predictor, and
// relays only the acks the client has not yet seen — the client observes an
// uninterrupted session whose final Summary is bit-identical to a run that
// never failed over.
//
// Health is tracked per backend with active TCP probes driving the
// Up/Suspect/Down/Rejoining state machine (see BackendState); an
// administrative drain migrates a backend's replayable sessions away before
// membership changes.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/serve"
	"github.com/oocsb/ibp/internal/sessiontrack"
	"github.com/oocsb/ibp/internal/telemetry"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/tuner"
)

// Config parameterizes a Router. The zero value of every field except
// Backends is usable; withDefaults fills it.
type Config struct {
	// Backends is the initial membership: ibpserved addresses. At least one
	// is required.
	Backends []string

	// BackendMetrics maps a backend's wire address to its -metrics listener
	// address. The session fan-in polls each mapped backend's /sessions to
	// build the cluster-wide view; unmapped backends simply contribute no
	// per-session detail. Optional.
	BackendMetrics map[string]string

	// Predictor is the default predictor configuration announced to clients
	// and pinned into forwarded Hellos that did not carry their own, so
	// every backend resolves the same predictor regardless of its local
	// default.
	Predictor cli.PredictorFlags

	// Window, MaxFramePayload and MaxFrameRecords bound the client side of
	// the protocol exactly like serve.Config. Defaults: 8, 1 MiB, 8192.
	Window          int
	MaxFramePayload int
	MaxFrameRecords int

	// JournalBytes bounds each session's replay journal. Acknowledged frame
	// payloads are evicted oldest-first past this budget — and eviction
	// forfeits that session's lossless-failover guarantee (see journal).
	// Default 64 MiB; negative means unbounded.
	JournalBytes int64

	// ReadTimeout bounds the wait for the next client frame; WriteTimeout
	// bounds each client-side flush. Defaults: 30s each.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// Backend dialing: per-attempt timeout, retry count, initial backoff
	// and its cap (the serve client adds ±20% jitter). Defaults: 5s, 2,
	// 50ms, 1s.
	DialTimeout    time.Duration
	DialRetries    int
	DialBackoff    time.Duration
	MaxDialBackoff time.Duration

	// FailoverRounds is how many passes over the candidate ring a placement
	// makes before giving up with a no-backend error. Default 2.
	FailoverRounds int

	// Health probing: interval between TCP probes (±10% jitter), per-probe
	// timeout, consecutive failures to mark a backend Down, and consecutive
	// successes for a Down backend to rejoin. Defaults: 1s, 2s, 3, 2.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailThreshold int
	RiseThreshold int

	// VirtualNodes is each backend's point count on the placement ring.
	// Default 64.
	VirtualNodes int

	// Log receives structured router lifecycle events; nil discards them.
	Log *slog.Logger

	// Flight, when non-nil, records per-frame hop spans (receive, relay,
	// backend ack, client relay) into the flight recorder and pins a trace
	// ID into every forwarded Hello so backend spans correlate with the
	// router's. Nil disables tracing at zero per-frame cost.
	Flight *flight.Recorder

	// TunerPolicy, when non-empty, is pinned into forwarded Hellos that did
	// not carry their own — the same fleet-consistency move as Predictor:
	// every backend a session lands on, including a failover replacement
	// replaying the journal, runs the identical tuning policy and so
	// converges to the identical swap decisions. Validated at router start
	// (see New); ignored by backends running without -tuner.
	TunerPolicy string
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.MaxFramePayload <= 0 {
		c.MaxFramePayload = 1 << 20
	}
	if c.MaxFrameRecords <= 0 {
		c.MaxFrameRecords = 8192
	}
	if c.JournalBytes == 0 {
		c.JournalBytes = 64 << 20
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.DialRetries < 0 {
		c.DialRetries = 0
	} else if c.DialRetries == 0 {
		c.DialRetries = 2
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 50 * time.Millisecond
	}
	if c.MaxDialBackoff <= 0 {
		c.MaxDialBackoff = time.Second
	}
	if c.FailoverRounds <= 0 {
		c.FailoverRounds = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RiseThreshold <= 0 {
		c.RiseThreshold = 2
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.Log == nil {
		c.Log = slog.New(slog.DiscardHandler)
	}
	return c
}

// ErrRouterClosed is returned by Serve after Shutdown or Close.
var ErrRouterClosed = errors.New("cluster: router closed")

// Router is the cluster ingress. Create with New, run with
// Serve/ListenAndServe, stop with Shutdown (graceful) or Close (hard).
type Router struct {
	cfg      Config
	m        *metrics
	predName string
	log      *slog.Logger
	pool     *trace.BufferPool // frame payload buffers, shared by all sessions

	ctx    context.Context
	cancel context.CancelFunc

	// track is the proxy-session registry — the same session-lifecycle core
	// internal/serve uses, so the introspection plane sees router and
	// backend sessions through one surface.
	track *sessiontrack.Registry

	mu       sync.Mutex
	ln       net.Listener
	backends map[string]*backend
	ring     *ring

	connWG   sync.WaitGroup
	probeWG  sync.WaitGroup
	draining atomic.Bool
}

// New validates the configuration and returns a Router with its health
// probers running.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	if err := cfg.Predictor.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: default predictor: %w", err)
	}
	pred, err := cfg.Predictor.Build()
	if err != nil {
		return nil, fmt.Errorf("cluster: default predictor: %w", err)
	}
	if cfg.TunerPolicy != "" {
		if _, err := tuner.ParsePolicy(cfg.TunerPolicy); err != nil {
			return nil, fmt.Errorf("cluster: tuner policy: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Router{
		cfg:      cfg,
		m:        newMetrics(telemetry.Default()),
		predName: pred.Name(),
		log:      cfg.Log,
		pool:     trace.NewBufferPool(),
		ctx:      ctx,
		cancel:   cancel,
		track:    sessiontrack.NewRegistry(sessiontrack.Options{Service: "ibprouter"}),
		backends: make(map[string]*backend, len(cfg.Backends)),
	}
	for _, addr := range cfg.Backends {
		if addr == "" {
			cancel()
			return nil, errors.New("cluster: empty backend address")
		}
		if _, dup := r.backends[addr]; dup {
			cancel()
			return nil, fmt.Errorf("cluster: duplicate backend %s", addr)
		}
		// Initial members start optimistically Up; probes demote the dead
		// ones within FailThreshold intervals, and placement dials fail
		// fast against them in the meantime.
		r.backends[addr] = newBackend(addr, StateUp)
	}
	r.rebuildRing()
	r.updateBackendsUpGauge()
	for _, b := range r.backends {
		r.probeWG.Add(1)
		go r.probeLoop(b)
	}
	return r, nil
}

// rebuildRing recomputes the placement ring from the membership. Caller
// holds r.mu, or is the constructor.
func (r *Router) rebuildRing() {
	members := make([]*backend, 0, len(r.backends))
	for _, b := range r.backends {
		members = append(members, b)
	}
	r.ring = buildRing(members, r.cfg.VirtualNodes)
}

// updateBackendsUpGauge recounts router_backends_up.
func (r *Router) updateBackendsUpGauge() {
	r.mu.Lock()
	n := 0
	for _, b := range r.backends {
		if b.getState() == StateUp {
			n++
		}
	}
	r.mu.Unlock()
	r.m.backendsUp.Set(float64(n))
}

// ListenAndServe listens on addr and serves.
func (r *Router) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return r.Serve(ln)
}

// Serve accepts client sessions on ln until Shutdown or Close, then returns
// ErrRouterClosed.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	r.ln = ln
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.draining.Load() || r.ctx.Err() != nil {
				return ErrRouterClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		if r.draining.Load() {
			conn.Close()
			continue
		}
		r.connWG.Add(1)
		go func() {
			defer r.connWG.Done()
			r.handleConn(conn)
		}()
	}
}

// Addr returns the listener address, or "" before Serve.
func (r *Router) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// writeDirect writes one frame straight to a connection (pre-session
// failures, before any writer goroutine exists).
func (r *Router) writeDirect(conn net.Conn, typ uint64, payload []byte) {
	fw := trace.NewFrameWriter(conn)
	fw.WriteFrame(typ, payload)
	conn.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
	fw.Flush()
}

func (r *Router) rejectConn(conn net.Conn, code, msg string) {
	payload, _ := json.Marshal(&serve.WireError{Code: code, Msg: msg})
	r.writeDirect(conn, serve.FrameError, payload)
	conn.Close()
}

// handleConn is a session's reader goroutine: preamble, Hello handshake,
// router-authored HelloAck, then the client frame read loop. The backend
// connection is deferred to the forwarder — placement needs the first
// records frame's PC.
func (r *Router) handleConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout))
	var pre [len(serve.Preamble) + 1]byte
	if _, err := io.ReadFull(conn, pre[:]); err != nil {
		r.log.Debug("preamble read failed", "err", err)
		conn.Close()
		return
	}
	if string(pre[:len(serve.Preamble)]) != serve.Preamble || pre[len(serve.Preamble)] != serve.ProtocolVersion {
		r.log.Debug("bad preamble", "bytes", fmt.Sprintf("%x", pre))
		conn.Close()
		return
	}
	fr := trace.NewPooledFrameReader(conn, r.cfg.MaxFramePayload, r.pool)
	f, err := fr.Next()
	if err != nil {
		r.rejectConn(conn, serve.CodeBadFrame, err.Error())
		return
	}
	if f.Type != serve.FrameHello {
		f.Release()
		r.rejectConn(conn, serve.CodeBadHello, fmt.Sprintf("first frame type %#x, want hello", f.Type))
		return
	}
	var hello serve.Hello
	uerr := json.Unmarshal(f.Payload, &hello)
	f.Release()
	if uerr != nil {
		r.rejectConn(conn, serve.CodeBadHello, uerr.Error())
		return
	}
	// Resolve the predictor locally so the HelloAck can announce its name,
	// and pin the router default into the forwarded Hello: every backend a
	// failover lands on must build the identical predictor.
	pf := r.cfg.Predictor
	if hello.Predictor != nil {
		pf = *hello.Predictor
	} else {
		hello.Predictor = &pf
	}
	if hello.TunerPolicy == "" && r.cfg.TunerPolicy != "" {
		hello.TunerPolicy = r.cfg.TunerPolicy
	}
	if err := pf.Validate(); err != nil {
		r.rejectConn(conn, serve.CodeBadHello, err.Error())
		return
	}
	pred, err := pf.Build()
	if err != nil {
		r.rejectConn(conn, serve.CodeBadHello, err.Error())
		return
	}
	if hello.Warmup < 0 {
		r.rejectConn(conn, serve.CodeBadHello, "negative warmup")
		return
	}
	window := hello.Window
	if window <= 0 || window > r.cfg.Window {
		window = r.cfg.Window
	}
	// The effective trace ID is pinned into the forwarded Hello so every
	// backend the session lands on (including failover replacements) tags
	// its spans with the same ID the router uses.
	traceID := hello.TraceID
	if traceID == "" && r.cfg.Flight.Enabled() {
		traceID = r.cfg.Flight.NextTraceID()
		hello.TraceID = traceID
	}

	sess := &proxySession{
		r:      r,
		conn:   conn,
		hello:  hello,
		window: window,
		j:      newJournal(r.cfg.JournalBytes),
		notify: make(chan struct{}, 1),
		out:    make(chan outFrame, 2*window+8),
		closed: make(chan struct{}),
	}
	entry, rerr := r.track.Register(sess, sessiontrack.Meta{
		Kind:      sessiontrack.KindProxy,
		Benchmark: hello.Benchmark,
		Tenant:    hello.Tenant,
		Predictor: pred.Name(),
		TraceID:   traceID,
		Window:    window,
	})
	if rerr != nil { // draining: no new sessions
		conn.Close()
		return
	}
	sess.id = entry.ID()
	sess.track = entry
	// Pin the proxy-session id into the forwarded Hello: every backend this
	// session lands on (including failover replacements) reports it as
	// Upstream, which is the fan-in's correlation key.
	sess.hello.RouterSession = sess.id
	sess.tracer = r.cfg.Flight.Tracer(traceID, sess.id)
	if sess.tracer != nil {
		sess.spans = make(map[uint64]*flight.Span)
	}
	r.m.sessionsTotal.Inc()
	r.m.sessionsActive.Add(1)

	r.connWG.Add(2)
	go sess.writeLoop()
	go sess.forward()

	ackPayload, _ := json.Marshal(serve.HelloAck{
		Session:         sess.id,
		Predictor:       pred.Name(),
		Window:          window,
		MaxFramePayload: r.cfg.MaxFramePayload,
		MaxFrameRecords: r.cfg.MaxFrameRecords,
		Events:          hello.Events,
		TraceID:         traceID,
	})
	sess.relay(serve.FrameHelloAck, ackPayload, nil, nil, false)
	r.log.Info("session open", "session", sess.id, "benchmark", hello.Benchmark,
		"predictor", pred.Name(), "window", window)
	sess.readLoop(fr)
}

// unregister removes the session from the live set exactly once (keyed on
// the registry's exactly-once Unregister), returns the journal's retained
// buffers to the pool, and settles its contribution to the byte gauge.
func (r *Router) unregister(sess *proxySession) {
	if !r.track.Unregister(sess.track) {
		return
	}
	r.m.sessionsActive.Add(-1)
	sess.mu.Lock()
	bytes := sess.j.releaseAll()
	sess.mu.Unlock()
	if bytes > 0 {
		r.m.journalBytes.Add(-float64(bytes))
	}
}

// candidatesFor snapshots the ring and returns pc's candidate backends in
// failover order, keeping only placeable ones (falling back to the full
// non-draining walk when probes have everything marked dead — the dial will
// sort truth from pessimism).
func (r *Router) candidatesFor(pc uint32) []*backend {
	r.mu.Lock()
	ring := r.ring
	r.mu.Unlock()
	all := ring.candidates(pc)
	placeable := make([]*backend, 0, len(all))
	for _, b := range all {
		if b.placeable() {
			placeable = append(placeable, b)
		}
	}
	if len(placeable) > 0 {
		return placeable
	}
	nonDraining := all[:0]
	for _, b := range all {
		if b.getState() != StateDraining {
			nonDraining = append(nonDraining, b)
		}
	}
	return nonDraining
}

// connectSession dials pc's candidates in ring order (FailoverRounds
// passes) and returns the first backend that accepts the session's Hello.
// avoid is the just-failed backend, skipped on the first pass when there is
// an alternative. A deterministic backend rejection is relayed to the
// client as the session's final frame and reported as errSessionOver.
func (r *Router) connectSession(sess *proxySession, pc uint32, avoid *backend) (*backend, *serve.Client, error) {
	opts := serve.DialOptions{
		Timeout:    r.cfg.DialTimeout,
		Retries:    r.cfg.DialRetries,
		Backoff:    r.cfg.DialBackoff,
		MaxBackoff: r.cfg.MaxDialBackoff,
	}
	lastErr := errors.New("no placeable backend")
	for round := 0; round < r.cfg.FailoverRounds; round++ {
		cands := r.candidatesFor(pc)
		for _, b := range cands {
			if sess.isClosed() || r.ctx.Err() != nil {
				return nil, nil, errSessionOver
			}
			if round == 0 && b == avoid && len(cands) > 1 {
				continue
			}
			r.m.dials.Inc()
			bc, err := serve.DialContext(r.ctx, b.addr, sess.hello, opts)
			if err != nil {
				r.m.dialFailures.Inc()
				var we *serve.WireError
				if errors.As(err, &we) && we.Code != serve.CodeOverload {
					// Deterministic rejection (bad hello, predictor, ...):
					// every backend would refuse identically.
					sess.markDropped()
					payload, _ := json.Marshal(we)
					sess.relay(serve.FrameError, payload, nil, nil, true)
					return nil, nil, errSessionOver
				}
				lastErr = err
				r.log.Warn("backend dial failed", "backend", b.addr, "session", sess.id, "err", err)
				continue
			}
			r.m.placements.Inc()
			b.attach(sess, bc)
			sess.setCurConn(bc)
			return b, bc, nil
		}
	}
	return nil, nil, lastErr
}

// BackendStatus is one backend's externally visible state.
type BackendStatus struct {
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Sessions int    `json:"sessions"`
}

// BackendStatuses reports the membership sorted by address.
func (r *Router) BackendStatuses() []BackendStatus {
	r.mu.Lock()
	members := make([]*backend, 0, len(r.backends))
	for _, b := range r.backends {
		members = append(members, b)
	}
	r.mu.Unlock()
	out := make([]BackendStatus, 0, len(members))
	for _, b := range members {
		out = append(out, BackendStatus{Addr: b.addr, State: b.getState().String(), Sessions: b.sessionCount()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// SessionCount returns the number of live sessions.
func (r *Router) SessionCount() int {
	return r.track.Len()
}

// Sessions returns the router's proxy-session registry, the live set behind
// the /sessions introspection endpoints (sessiontrack.Mount).
func (r *Router) Sessions() *sessiontrack.Registry { return r.track }

// AddBackend joins addr to the membership (or un-drains it). New members
// start Rejoining; probes promote them to Up.
func (r *Router) AddBackend(addr string) error {
	if addr == "" {
		return errors.New("cluster: empty backend address")
	}
	r.mu.Lock()
	if b, ok := r.backends[addr]; ok {
		r.mu.Unlock()
		if b.getState() == StateDraining {
			b.setState(r, StateRejoining, "re-added")
			return nil
		}
		return fmt.Errorf("cluster: backend %s already present", addr)
	}
	b := newBackend(addr, StateRejoining)
	r.backends[addr] = b
	r.rebuildRing()
	r.mu.Unlock()
	r.probeWG.Add(1)
	go r.probeLoop(b)
	r.log.Info("backend added", "backend", addr)
	return nil
}

// DrainBackend excludes addr from placement and kicks its replayable
// sessions into failover; sessions whose journal already evicted finish
// where they are. The backend stays in the membership (AddBackend
// reinstates it).
func (r *Router) DrainBackend(addr string) error {
	r.mu.Lock()
	b, ok := r.backends[addr]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: unknown backend %s", addr)
	}
	b.setState(r, StateDraining, "administrative drain")
	b.kickSessions(true)
	r.log.Info("backend draining", "backend", addr, "sessions", b.sessionCount())
	return nil
}

// RemoveBackend drains addr and removes it from the membership.
func (r *Router) RemoveBackend(addr string) error {
	r.mu.Lock()
	b, ok := r.backends[addr]
	if ok {
		delete(r.backends, addr)
		r.rebuildRing()
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: unknown backend %s", addr)
	}
	b.setState(r, StateDraining, "removed")
	close(b.stopProbe)
	b.kickSessions(true)
	r.updateBackendsUpGauge()
	r.log.Info("backend removed", "backend", addr)
	return nil
}

// Shutdown drains the router: the listener stops accepting, live sessions
// run to completion, then the probers stop. If ctx expires first the
// remaining sessions are cut hard and ctx.Err() is returned.
func (r *Router) Shutdown(ctx context.Context) error {
	r.draining.Store(true)
	r.track.BeginDrain() // refuse new registrations; live sessions run on
	r.mu.Lock()
	if r.ln != nil {
		r.ln.Close()
	}
	r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.connWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		r.closeSessions()
		<-done
	}
	r.cancel()
	r.probeWG.Wait()
	return err
}

// Close hard-stops the router: listener, sessions, probers.
func (r *Router) Close() error {
	r.draining.Store(true)
	r.track.BeginDrain()
	r.mu.Lock()
	if r.ln != nil {
		r.ln.Close()
	}
	r.mu.Unlock()
	r.closeSessions()
	r.cancel()
	r.connWG.Wait()
	r.probeWG.Wait()
	return nil
}

func (r *Router) closeSessions() {
	for _, sess := range r.track.Live() {
		sess.Kill()
	}
}
