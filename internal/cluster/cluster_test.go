package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/serve"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

// defaultFlags mirrors the tools' default predictor configuration (2lev,
// p=3, unbounded) without going through a FlagSet.
func defaultFlags() cli.PredictorFlags {
	return cli.PredictorFlags{
		Pred:      "2lev",
		Path:      3,
		HistShare: 32,
		TabShare:  2,
		Precision: -1,
		Scheme:    "reverse",
		KeyOp:     "xor",
		Table:     "unbounded",
		Update:    "2bc",
	}
}

// startServe runs an in-process ibpserved-equivalent on loopback.
func startServe(t testing.TB) (*serve.Server, string) {
	t.Helper()
	srv, err := serve.New(serve.Config{Predictor: defaultFlags(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// startRouter runs a Router over the given backends on loopback. mut may
// adjust the config before New.
func startRouter(t testing.TB, backends []string, mut func(*Config)) (*Router, string) {
	t.Helper()
	cfg := Config{
		Backends:      backends,
		Predictor:     defaultFlags(),
		ProbeInterval: 100 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailThreshold: 2,
		DialTimeout:   2 * time.Second,
		DialRetries:   1,
		DialBackoff:   20 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(func() { r.Close() })
	return r, ln.Addr().String()
}

var (
	trMu    sync.Mutex
	trMemo  = map[string]trace.Trace{}
	simMemo = map[string]sim.Result{}
)

// suiteTrace memoizes one generated benchmark trace per test binary.
func suiteTrace(t testing.TB, name string, n int) trace.Trace {
	t.Helper()
	key := fmt.Sprintf("%s/%d", name, n)
	trMu.Lock()
	defer trMu.Unlock()
	if tr, ok := trMemo[key]; ok && len(tr) > 0 {
		return tr
	}
	cfg, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := cfg.MustGenerate(n)
	trMemo[key] = tr
	return tr
}

// wantResult memoizes the local uninterrupted sim.Run for a trace.
func wantResult(t testing.TB, name string, tr trace.Trace, warmup int) sim.Result {
	t.Helper()
	key := fmt.Sprintf("%s/%d/%d", name, len(tr), warmup)
	trMu.Lock()
	defer trMu.Unlock()
	if res, ok := simMemo[key]; ok {
		return res
	}
	pred, err := defaultFlags().Build()
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(pred, tr, sim.Options{Warmup: warmup})
	simMemo[key] = res
	return res
}

// checkSummary requires the routed session's accounting to be bit-identical
// to the uninterrupted local sim.Run — the cluster correctness contract.
func checkSummary(t *testing.T, name string, sum serve.Summary, tr trace.Trace, warmup int) {
	t.Helper()
	want := wantResult(t, name, tr, warmup)
	if sum.Executed != want.Executed {
		t.Errorf("%s: executed %d, sim %d", name, sum.Executed, want.Executed)
	}
	if sum.Misses != want.Misses {
		t.Errorf("%s: misses %d, sim %d", name, sum.Misses, want.Misses)
	}
	if sum.NoPrediction != want.NoPrediction {
		t.Errorf("%s: noPrediction %d, sim %d", name, sum.NoPrediction, want.NoPrediction)
	}
	wantRate := 0.0
	if want.Executed > 0 {
		wantRate = 100 * float64(want.Misses) / float64(want.Executed)
	}
	if sum.MissRate != wantRate {
		t.Errorf("%s: miss rate %v, sim %v (must be bit-identical)", name, sum.MissRate, wantRate)
	}
	if sum.Records != len(tr) {
		t.Errorf("%s: records %d, trace %d", name, sum.Records, len(tr))
	}
	if sum.Router == nil {
		t.Errorf("%s: summary carries no router info", name)
	}
}

// TestRouterBasic: a session through the router behaves exactly like a
// direct serve session, and the Summary reports its placement.
func TestRouterBasic(t *testing.T) {
	_, b1 := startServe(t)
	_, b2 := startServe(t)
	r, addr := startRouter(t, []string{b1, b2}, nil)

	const warmup = 64
	tr := suiteTrace(t, "gcc", 8000)
	c, err := serve.Dial(addr, serve.Hello{Benchmark: "gcc", Warmup: warmup}, serve.DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Session().Window <= 0 || c.Session().Predictor == "" {
		t.Fatalf("router handshake granted bad session: %+v", c.Session())
	}
	sum, err := c.Stream(tr, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSummary(t, "gcc", sum, tr, warmup)
	if sum.Router.Failovers != 0 {
		t.Errorf("failovers %d on a healthy cluster", sum.Router.Failovers)
	}
	if sum.Router.Backend != b1 && sum.Router.Backend != b2 {
		t.Errorf("summary backend %q not in membership", sum.Router.Backend)
	}
	if got := r.SessionCount(); got != 0 {
		t.Errorf("%d sessions still registered after completion", got)
	}
}

// TestRouterEmptySession: a Done with no records still yields a summary.
func TestRouterEmptySession(t *testing.T) {
	_, b1 := startServe(t)
	_, addr := startRouter(t, []string{b1}, nil)
	c, err := serve.Dial(addr, serve.Hello{Benchmark: "empty"}, serve.DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sum, err := c.Stream(nil, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 0 || sum.Executed != 0 {
		t.Fatalf("empty session summary %+v", sum)
	}
	if sum.Router == nil {
		t.Fatal("empty session summary carries no router info")
	}
}

// TestRouterDrainMigration: draining the backend that hosts a live session
// migrates it — replay onto the other backend, bit-identical summary.
func TestRouterDrainMigration(t *testing.T) {
	_, b1 := startServe(t)
	_, b2 := startServe(t)
	r, addr := startRouter(t, []string{b1, b2}, nil)

	const warmup = 32
	tr := suiteTrace(t, "perl", 12000)
	c, err := serve.Dial(addr, serve.Hello{Benchmark: "perl", Warmup: warmup}, serve.DialOptions{Timeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var drainOnce sync.Once
	sum, err := c.Stream(tr, 128, func(a serve.Ack, _ time.Duration) {
		if a.Seq < 3 {
			return
		}
		drainOnce.Do(func() {
			for _, st := range r.BackendStatuses() {
				if st.Sessions > 0 {
					if err := r.DrainBackend(st.Addr); err != nil {
						t.Errorf("drain %s: %v", st.Addr, err)
					}
					return
				}
			}
			t.Error("no backend had an attached session to drain")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSummary(t, "perl", sum, tr, warmup)
	if sum.Router.Failovers < 1 {
		t.Errorf("failovers %d after drain, want >= 1", sum.Router.Failovers)
	}
	if sum.Router.ReplayedFrames < 1 {
		t.Errorf("replayedFrames %d after drain, want >= 1", sum.Router.ReplayedFrames)
	}
	for _, st := range r.BackendStatuses() {
		if st.State == StateDraining.String() && st.Sessions != 0 {
			t.Errorf("draining backend %s still has %d sessions", st.Addr, st.Sessions)
		}
	}
}

// TestRouterFailoverLostIsHonest: with a journal budget so small that acked
// frames are evicted immediately, a backend death must fail the session
// with an explicit failover-lost error — never a silently wrong summary.
func TestRouterFailoverLostIsHonest(t *testing.T) {
	srv, b1 := startServe(t)
	_, addr := startRouter(t, []string{b1}, func(c *Config) {
		c.JournalBytes = 1 // evict every acked frame
	})

	tr := suiteTrace(t, "gcc", 8000)
	c, err := serve.Dial(addr, serve.Hello{Benchmark: "gcc"}, serve.DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var killOnce sync.Once
	_, err = c.Stream(tr, 128, func(a serve.Ack, _ time.Duration) {
		if a.Seq >= 3 {
			killOnce.Do(func() { srv.Close() })
		}
	})
	if err == nil {
		t.Fatal("stream succeeded after backend death with an evicted journal")
	}
	var we *serve.WireError
	if !errors.As(err, &we) || we.Code != CodeFailoverLost {
		t.Fatalf("want %s error, got %v", CodeFailoverLost, err)
	}
}

// TestRouterNoBackend: when every backend is gone, a session fails with an
// explicit no-backend error instead of hanging.
func TestRouterNoBackend(t *testing.T) {
	srv, b1 := startServe(t)
	srv.Close() // dead before the session arrives
	_, addr := startRouter(t, []string{b1}, func(c *Config) {
		c.DialRetries = 0
		c.FailoverRounds = 1
	})
	tr := suiteTrace(t, "gcc", 8000)
	c, err := serve.Dial(addr, serve.Hello{Benchmark: "gcc"}, serve.DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Stream(tr, 512, nil)
	var we *serve.WireError
	if !errors.As(err, &we) || we.Code != CodeNoBackend {
		t.Fatalf("want %s error, got %v", CodeNoBackend, err)
	}
}

// TestRouterRejectsBadHello: a deterministic rejection is relayed verbatim,
// not retried around the ring.
func TestRouterRejectsBadHello(t *testing.T) {
	_, b1 := startServe(t)
	_, addr := startRouter(t, []string{b1}, nil)
	bad := defaultFlags()
	bad.Path = -3
	_, err := serve.Dial(addr, serve.Hello{Predictor: &bad}, serve.DialOptions{Timeout: 5 * time.Second})
	var we *serve.WireError
	if !errors.As(err, &we) || we.Code != serve.CodeBadHello {
		t.Fatalf("want %s error, got %v", serve.CodeBadHello, err)
	}
}

// BenchmarkRouterLoopback measures end-to-end throughput through the full
// cluster path — router framing, journaling, relay, and a 2-backend fleet —
// for comparison against BenchmarkServeLoopback's direct-serve baseline.
func BenchmarkRouterLoopback(b *testing.B) {
	_, b1 := startServe(b)
	_, b2 := startServe(b)
	_, addr := startRouter(b, []string{b1, b2}, nil)
	tr := suiteTrace(b, "gcc", 20000)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := serve.Dial(addr, serve.Hello{Benchmark: "gcc"}, serve.DialOptions{Timeout: 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		sum, err := c.Stream(tr, 2048, nil)
		c.Close()
		if err != nil {
			b.Fatal(err)
		}
		if sum.Records != len(tr) {
			b.Fatalf("summary records %d, want %d", sum.Records, len(tr))
		}
	}
	b.StopTimer()
	if elapsed := b.Elapsed(); elapsed > 0 {
		b.ReportMetric(float64(b.N*len(tr))/elapsed.Seconds(), "records/s")
	}
}

// BenchmarkRouterScaling measures aggregate throughput through one router as
// the loopback backend fleet grows, with as many concurrent clients as
// backends. On a multi-core host the records/s column should scale close to
// linearly until the router's own relay loop saturates; the gap from linear
// is the router overhead satellite the bench snapshot tracks.
func BenchmarkRouterScaling(b *testing.B) {
	for _, backends := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends=%d", backends), func(b *testing.B) {
			addrs := make([]string, backends)
			for i := range addrs {
				_, addrs[i] = startServe(b)
			}
			_, addr := startRouter(b, addrs, nil)
			tr := suiteTrace(b, "gcc", 20000)

			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			errc := make(chan error, backends)
			for w := 0; w < backends; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						c, err := serve.Dial(addr, serve.Hello{Benchmark: "gcc"},
							serve.DialOptions{Timeout: 30 * time.Second})
						if err != nil {
							errc <- err
							return
						}
						sum, err := c.Stream(tr, 2048, nil)
						c.Close()
						if err != nil {
							errc <- err
							return
						}
						if sum.Records != len(tr) {
							errc <- fmt.Errorf("summary records %d, want %d", sum.Records, len(tr))
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errc:
				b.Fatal(err)
			default:
			}
			if elapsed := b.Elapsed(); elapsed > 0 {
				b.ReportMetric(float64(b.N*backends*len(tr))/elapsed.Seconds(), "records/s")
			}
		})
	}
}
