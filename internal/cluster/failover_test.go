package cluster

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/faultio"
	"github.com/oocsb/ibp/internal/serve"
	"github.com/oocsb/ibp/internal/workload"
)

// buildServed compiles the real ibpserved binary once per test run, so the
// failover test can SIGKILL an actual backend process — not a polite
// in-process Close, but the way production backends actually die.
var (
	servedOnce sync.Once
	servedBin  string
	servedErr  error
)

func servedBinary(t *testing.T) string {
	t.Helper()
	servedOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ibp-cluster-test")
		if err != nil {
			servedErr = err
			return
		}
		servedBin = filepath.Join(dir, "ibpserved")
		cmd := exec.Command("go", "build", "-o", servedBin, "github.com/oocsb/ibp/cmd/ibpserved")
		if out, err := cmd.CombinedOutput(); err != nil {
			servedErr = fmt.Errorf("build ibpserved: %v\n%s", err, out)
		}
	})
	if servedErr != nil {
		t.Fatal(servedErr)
	}
	return servedBin
}

// spawnServed starts an ibpserved process on an ephemeral port and returns
// its command handle and listen address (parsed from its startup line).
// extra appends backend flags (e.g. "-tuner").
func spawnServed(t *testing.T, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-log", "warn", "-shards", "2"}, extra...)
	cmd := exec.Command(servedBinary(t), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "ibpserved: listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(10 * time.Second):
		t.Fatal("ibpserved did not report a listen address")
		return nil, ""
	}
}

// TestRouterFailoverBitIdentical is the golden failover test: real backend
// processes, a real SIGKILL mid-session under concurrent load, and the
// requirement that every client still receives a Summary bit-identical to
// an uninterrupted local sim.Run. This is the journal/replay invariant,
// proved end to end.
func TestRouterFailoverBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns backend processes")
	}
	proc1, b1 := spawnServed(t)
	proc2, b2 := spawnServed(t)
	procs := map[string]*exec.Cmd{b1: proc1, b2: proc2}

	r, addr := startRouter(t, []string{b1, b2}, nil)

	const (
		n      = 30000
		warmup = 64
		frame  = 96 // small frames so the kill always lands mid-stream
	)
	cfgs := workload.Suite()
	if len(cfgs) < 3 {
		t.Fatalf("suite has %d benchmarks, need >= 3", len(cfgs))
	}

	// Every session parks at its third ack until the killer has SIGKILLed
	// the most loaded backend, guaranteeing the kill lands while all
	// sessions are mid-stream.
	ready := make(chan struct{}, len(cfgs))
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		for range cfgs {
			select {
			case <-ready:
			case <-time.After(30 * time.Second):
				t.Error("sessions never reached the kill point")
				return
			}
		}
		var victim string
		most := 0
		for _, st := range r.BackendStatuses() {
			if st.Sessions > most {
				victim, most = st.Addr, st.Sessions
			}
		}
		if victim == "" {
			t.Error("no backend had attached sessions to kill")
			return
		}
		t.Logf("SIGKILL backend %s (%d sessions)", victim, most)
		if err := procs[victim].Process.Kill(); err != nil {
			t.Errorf("kill %s: %v", victim, err)
		}
	}()

	type outcome struct {
		name string
		sum  serve.Summary
		err  error
	}
	results := make(chan outcome, len(cfgs))
	for _, cfg := range cfgs {
		go func(name string) {
			tr := suiteTrace(t, name, n)
			c, err := serve.Dial(addr, serve.Hello{Benchmark: name, Warmup: warmup},
				serve.DialOptions{Timeout: 60 * time.Second, Retries: 2})
			if err != nil {
				results <- outcome{name: name, err: err}
				return
			}
			defer c.Close()
			var parkOnce sync.Once
			sum, err := c.Stream(tr, frame, func(a serve.Ack, _ time.Duration) {
				if a.Seq >= 3 {
					parkOnce.Do(func() {
						ready <- struct{}{}
						<-killDone
					})
				}
			})
			results <- outcome{name: name, sum: sum, err: err}
		}(cfg.Name)
	}

	failovers := 0
	replayed := 0
	for range cfgs {
		res := <-results
		if res.err != nil {
			t.Errorf("%s: %v", res.name, res.err)
			continue
		}
		checkSummary(t, res.name, res.sum, suiteTrace(t, res.name, n), warmup)
		if res.sum.Router != nil {
			failovers += res.sum.Router.Failovers
			replayed += res.sum.Router.ReplayedFrames
		}
	}
	if failovers < 1 {
		t.Errorf("total failovers %d after SIGKILL, want >= 1", failovers)
	}
	if replayed < 1 {
		t.Errorf("total replayed frames %d after SIGKILL, want >= 1", replayed)
	}
}

// TestRouterChaosMatrix drives the failure matrix through faultio network
// faults: a backend behind a faulty link dies in assorted ways (clean cut,
// byte-budget drop, RST) while a healthy backend survives. Every session
// must end in a bit-identical summary — the faults may cost failovers but
// never correctness — and the router must not leak goroutines.
func TestRouterChaosMatrix(t *testing.T) {
	baseline := runtime.NumGoroutine()

	cases := []struct {
		name  string
		fault faultio.ProxyConfig
		sever bool // cut the live links mid-stream instead of waiting for the fault
	}{
		{name: "sever", fault: faultio.ProxyConfig{}, sever: true},
		{name: "drop-after-bytes", fault: faultio.ProxyConfig{DropAfterBytes: 96 << 10}},
		{name: "drop-rst", fault: faultio.ProxyConfig{DropAfterBytes: 64 << 10, RST: true}},
		{name: "slow-link", fault: faultio.ProxyConfig{Latency: 200 * time.Microsecond, LatencyJitter: 100 * time.Microsecond, ChunkBytes: 4096}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, healthy := startServe(t)
			_, shaky := startServe(t)
			proxy, err := faultio.NewProxy(shaky, tc.fault)
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()

			r, addr := startRouter(t, []string{proxy.Addr(), healthy}, nil)
			defer r.Close()

			const (
				n      = 10000
				warmup = 32
				frame  = 128
			)
			names := []string{"gcc", "perl", "go"}
			var severOnce sync.Once
			type outcome struct {
				name string
				sum  serve.Summary
				err  error
			}
			results := make(chan outcome, len(names))
			for _, name := range names {
				go func(name string) {
					tr := suiteTrace(t, name, n)
					c, err := serve.Dial(addr, serve.Hello{Benchmark: name, Warmup: warmup},
						serve.DialOptions{Timeout: 30 * time.Second, Retries: 2})
					if err != nil {
						results <- outcome{name: name, err: err}
						return
					}
					defer c.Close()
					sum, err := c.Stream(tr, frame, func(a serve.Ack, _ time.Duration) {
						if tc.sever && a.Seq == 5 {
							severOnce.Do(proxy.Sever)
						}
					})
					results <- outcome{name: name, sum: sum, err: err}
				}(name)
			}
			for range names {
				res := <-results
				if res.err != nil {
					t.Errorf("%s: %v", res.name, res.err)
					continue
				}
				checkSummary(t, res.name, res.sum, suiteTrace(t, res.name, n), warmup)
			}
		})
	}

	// Routers, backends, and proxies are closed by the t.Run cleanups above;
	// every goroutine they started must unwind. Generous settle loop: probes
	// and connection teardown are asynchronous.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+4 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}
