package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/oocsb/ibp/internal/sessiontrack"
)

// Fanin merges the router's own proxy-session registry with each backend's
// /sessions listing into one cluster-wide view, keyed by (backend, session):
// a backend session names its proxy leg via Upstream (the RouterSession id
// the router pinned into the forwarded Hello), and the merge attaches the
// router-side placement/journal/failover state to the backend's per-window
// prediction stats. It implements sessiontrack.Source, so the router's
// /sessions and /sessions/stream serve the merged view directly.
//
// Polling is best-effort: an unreachable backend contributes its health line
// (with the poll error) and its sessions stay visible as bare proxy rows, so
// an outage never blanks the dashboard.
type Fanin struct {
	r      *Router
	client *http.Client
}

// Fanin returns the cluster-wide session view source. timeout bounds each
// backend poll; <= 0 means 2s.
func (r *Router) Fanin(timeout time.Duration) *Fanin {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Fanin{r: r, client: &http.Client{Timeout: timeout}}
}

// View implements sessiontrack.Source. It never fails as a whole —
// per-backend poll errors land in the corresponding BackendInfo.Err.
func (f *Fanin) View(ctx context.Context) (sessiontrack.View, error) {
	local, _ := f.r.track.View(ctx)

	// Proxy legs by id: the correlation table for backend Upstream fields.
	proxies := make(map[uint64]*sessiontrack.SessionSnapshot, len(local.Sessions))
	for i := range local.Sessions {
		proxies[local.Sessions[i].ID] = &local.Sessions[i]
	}

	statuses := f.r.BackendStatuses()
	out := sessiontrack.View{
		Service:     local.Service,
		Tag:         local.Tag,
		TakenUnixNS: local.TakenUnixNS,
		Backends:    make([]sessiontrack.BackendInfo, len(statuses)),
		Sessions:    []sessiontrack.SessionSnapshot{},
	}

	type pollResult struct {
		view sessiontrack.View
		err  error
	}
	results := make([]pollResult, len(statuses))
	var wg sync.WaitGroup
	for i, st := range statuses {
		maddr := f.r.cfg.BackendMetrics[st.Addr]
		out.Backends[i] = sessiontrack.BackendInfo{
			Addr:        st.Addr,
			State:       st.State,
			Sessions:    st.Sessions,
			MetricsAddr: maddr,
		}
		if maddr == "" {
			continue
		}
		wg.Add(1)
		go func(i int, maddr string) {
			defer wg.Done()
			results[i].view, results[i].err = f.poll(ctx, maddr)
		}(i, maddr)
	}
	wg.Wait()

	merged := make(map[uint64]bool) // proxy ids covered by a backend row
	for i, st := range statuses {
		if out.Backends[i].MetricsAddr == "" {
			continue
		}
		if err := results[i].err; err != nil {
			out.Backends[i].Err = err.Error()
			continue
		}
		for _, snap := range results[i].view.Sessions {
			snap.Backend = st.Addr // wire address, the cluster-wide key
			if p := proxies[snap.Upstream]; snap.Upstream != 0 && p != nil {
				// Attach the router leg's journal/failover state; the
				// prediction stats stay the backend's (it owns the
				// predictor). A proxy mid-failover/replay knows better than
				// the stale backend row what the session is doing.
				snap.JournalBytes = p.JournalBytes
				snap.Failovers = p.Failovers
				snap.ReplayedFrames = p.ReplayedFrames
				snap.Replayable = p.Replayable
				snap.Inflight = p.Inflight
				if p.State == sessiontrack.StateFailover.String() ||
					p.State == sessiontrack.StateReplaying.String() {
					snap.State = p.State
				}
				if snap.TraceID == "" {
					snap.TraceID = p.TraceID
				}
				merged[snap.Upstream] = true
			}
			out.Sessions = append(out.Sessions, snap)
		}
	}
	// Proxy legs no backend row covered — awaiting placement, mid-failover,
	// or living on a backend without a metrics mapping (or whose poll
	// failed). They stay visible so no live session can hide.
	for _, snap := range local.Sessions {
		if !merged[snap.ID] {
			out.Sessions = append(out.Sessions, snap)
		}
	}
	sessiontrack.SortSessions(out.Sessions, sessiontrack.SortID)
	return out, nil
}

func (f *Fanin) poll(ctx context.Context, maddr string) (sessiontrack.View, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("http://%s/sessions", maddr), nil)
	if err != nil {
		return sessiontrack.View{}, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return sessiontrack.View{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sessiontrack.View{}, fmt.Errorf("GET /sessions: %s", resp.Status)
	}
	var v sessiontrack.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return sessiontrack.View{}, err
	}
	return v, nil
}
