package cluster

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/serve"
	"github.com/oocsb/ibp/internal/sessiontrack"
)

// startServeWithSessions runs a backend with its session registry mounted on
// an httptest mux, returning the backend, its wire address, and the metrics
// host:port the fan-in polls.
func startServeWithSessions(t *testing.T) (*serve.Server, string, string) {
	t.Helper()
	srv, addr := startServe(t)
	mux := http.NewServeMux()
	sessiontrack.Mount(mux, sessiontrack.HTTPConfig{Local: srv.Sessions()})
	ms := httptest.NewServer(mux)
	t.Cleanup(ms.Close)
	u, _ := net.ResolveTCPAddr("tcp", ms.Listener.Addr().String())
	return srv, addr, u.String()
}

// TestFaninMergesBackendAndProxyViews routes sessions through the router and
// asserts the fan-in view attributes each one to a real backend, carries the
// backend's prediction stats, and attaches the router leg's journal state.
func TestFaninMergesBackendAndProxyViews(t *testing.T) {
	_, b1, m1 := startServeWithSessions(t)
	_, b2, m2 := startServeWithSessions(t)
	r, raddr := startRouter(t, []string{b1, b2}, func(c *Config) {
		c.BackendMetrics = map[string]string{b1: m1, b2: m2}
	})

	// Hold several sessions open mid-stream so the view sees them live.
	const n = 4
	tr := suiteTrace(t, "gcc", 4000)
	type open struct{ c *serve.Client }
	var clients []open
	for i := 0; i < n; i++ {
		c, err := serve.Dial(raddr, serve.Hello{Benchmark: "gcc", Tenant: "teamA"},
			serve.DialOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, open{c})
		defer c.Close()
	}
	// Stream a prefix on each so frames flow through journal + backend.
	for _, cl := range clients {
		go cl.c.Stream(tr, 256, nil)
	}

	// Poll the fan-in until every proxy leg is merged with a backend row.
	fan := r.Fanin(time.Second)
	var v sessiontrack.View
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var err error
		v, err = fan.View(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		merged := 0
		for _, s := range v.Sessions {
			// Journal bytes only exist on the proxy leg, so requiring them
			// proves the merge attached router state, not just identity.
			if s.Kind == "serve" && s.Upstream != 0 && s.Backend != "" && s.JournalBytes > 0 {
				merged++
			}
		}
		if merged >= n {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	if len(v.Backends) != 2 {
		t.Fatalf("view has %d backends, want 2", len(v.Backends))
	}
	for _, be := range v.Backends {
		if be.Err != "" {
			t.Fatalf("backend %s poll failed: %s", be.Addr, be.Err)
		}
		if be.MetricsAddr == "" {
			t.Fatalf("backend %s missing metrics addr", be.Addr)
		}
	}
	local, _ := r.Sessions().View(context.Background())
	proxyByID := map[uint64]sessiontrack.SessionSnapshot{}
	for _, p := range local.Sessions {
		proxyByID[p.ID] = p
	}
	merged := 0
	for _, s := range v.Sessions {
		if s.Kind != "serve" {
			continue
		}
		merged++
		if s.Backend != b1 && s.Backend != b2 {
			t.Fatalf("session %d attributed to %q, want one of %q/%q", s.ID, s.Backend, b1, b2)
		}
		if s.Tenant != "teamA" {
			t.Fatalf("session %d lost tenant: %+v", s.ID, s)
		}
		if _, ok := proxyByID[s.Upstream]; !ok {
			t.Fatalf("session %d upstream %d has no proxy leg", s.ID, s.Upstream)
		}
		// A serve session never writes journal accounting of its own, so a
		// non-zero value proves the proxy leg's state was attached. (Exact
		// bytes race with the ongoing stream, so only presence is asserted.)
		if s.JournalBytes == 0 && s.State == "active" {
			t.Fatalf("session %d merged row missing proxy journal state: %+v", s.ID, s)
		}
	}
	if merged < n {
		t.Fatalf("only %d of %d sessions merged with a backend row", merged, n)
	}
}

// TestFaninSurvivesDeadMetricsEndpoint points one backend's metrics address
// at a closed port: its poll error must land in the backend line while the
// sessions stay visible as proxy rows.
func TestFaninSurvivesDeadMetricsEndpoint(t *testing.T) {
	_, b1, _ := startServeWithSessions(t)
	// A dead metrics address: bind a port, then close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	r, raddr := startRouter(t, []string{b1}, func(c *Config) {
		c.BackendMetrics = map[string]string{b1: dead}
	})
	c, err := serve.Dial(raddr, serve.Hello{Benchmark: "gcc"}, serve.DialOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tr := suiteTrace(t, "gcc", 2000)
	go c.Stream(tr, 256, nil)

	fan := r.Fanin(500 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		v, err := fan.View(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Backends) == 1 && v.Backends[0].Err != "" && len(v.Sessions) >= 1 {
			if v.Sessions[0].Kind != "proxy" {
				t.Fatalf("unmerged session should be the proxy row, got %+v", v.Sessions[0])
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("fan-in never reported the dead metrics endpoint alongside the proxy row")
}
