package cluster

import (
	"fmt"

	"github.com/oocsb/ibp/internal/trace"
)

// journal is a session's replay log: every records frame the client has sent,
// retained as the exact FrameRecords payload that went over the wire. It is
// the failover centerpiece — as long as the journal still holds the complete
// prefix (base == 1), a dead backend's session can be rebuilt bit-identically
// on a survivor by replaying frames 1..max in order through a fresh
// predictor, because prediction is deterministic in the record stream.
//
// The journal is bounded: payloads of frames the backend has acknowledged
// become evictable, and are dropped oldest-first once retained bytes exceed
// the budget. Unacknowledged payloads are never evicted (they are bounded by
// the client window regardless). Eviction is a one-way door: once any acked
// payload is gone the prefix is incomplete, replayable() turns false, and a
// later backend death honestly fails the session instead of silently
// resuming with corrupted predictor state.
//
// Payloads arrive borrowed from the router's frame-buffer pool: append takes
// over the frame's reference, and the journal releases it on eviction or
// releaseAll. A sender that writes a payload outside the session lock must
// Retain the buffer returned by get for the duration of the write.
type journal struct {
	base    uint64   // seq of frames[0]; 1 until eviction
	frames  []jframe // frames[i] holds the payload of seq base+uint64(i)
	bytes   int64    // retained payload bytes
	budget  int64    // eviction threshold; <=0 means unbounded
	acked   uint64   // highest backend-acknowledged seq
	evicted int      // payloads evicted so far
}

// jframe is one journaled payload and the pooled buffer backing it (nil for
// unpooled payloads, e.g. in tests).
type jframe struct {
	payload []byte
	buf     *trace.PooledBuf
}

func newJournal(budget int64) *journal {
	return &journal{base: 1, budget: budget}
}

// append records the payload of the next records frame, taking ownership of
// buf (the frame's pool reference); on error the caller keeps it. Frames must
// arrive in seq order with no gaps — the client-facing reader enforces the
// protocol order before calling.
func (j *journal) append(seq uint64, payload []byte, buf *trace.PooledBuf) error {
	if want := j.base + uint64(len(j.frames)); seq != want {
		return fmt.Errorf("cluster: journal append seq %d, want %d", seq, want)
	}
	j.frames = append(j.frames, jframe{payload: payload, buf: buf})
	j.bytes += int64(len(payload))
	return nil
}

// max returns the highest journaled seq (0 when empty and nothing evicted).
func (j *journal) max() uint64 { return j.base + uint64(len(j.frames)) - 1 }

// get returns the payload for seq and its backing buffer, or nil when seq is
// outside the retained range (evicted, released, or not yet received). The
// buffer reference stays the journal's; a caller using the payload after
// dropping the session lock must Retain/Release around the use.
func (j *journal) get(seq uint64) ([]byte, *trace.PooledBuf) {
	if seq < j.base || len(j.frames) == 0 || seq > j.max() {
		return nil, nil
	}
	f := j.frames[seq-j.base]
	return f.payload, f.buf
}

// ack marks seq acknowledged by the backend and evicts acked payloads
// oldest-first while the retained bytes exceed the budget, returning their
// buffers to the pool. It returns the number of payloads and payload bytes
// evicted by this call.
func (j *journal) ack(seq uint64) (frames int, bytes int64) {
	if seq > j.acked {
		j.acked = seq
	}
	for j.budget > 0 && j.bytes > j.budget && j.base <= j.acked && len(j.frames) > 0 {
		n := int64(len(j.frames[0].payload))
		j.bytes -= n
		bytes += n
		j.frames[0].buf.Release()
		j.frames[0] = jframe{}
		j.frames = j.frames[1:]
		j.base++
		j.evicted++
		frames++
	}
	return frames, bytes
}

// releaseAll drops every retained payload and returns the byte count it
// released. It is the session's teardown path: afterwards get returns nil for
// every seq, so a racing sender (which always checks get under the session
// lock) can never touch a recycled buffer.
func (j *journal) releaseAll() (bytes int64) {
	for i := range j.frames {
		j.frames[i].buf.Release()
		j.frames[i] = jframe{}
	}
	bytes = j.bytes
	j.frames = nil
	j.bytes = 0
	return bytes
}

// replayable reports whether the complete session prefix is still retained.
func (j *journal) replayable() bool { return j.evicted == 0 }

// retained returns the number of retained frames and their payload bytes.
func (j *journal) retained() (frames int, bytes int64) {
	return len(j.frames), j.bytes
}
