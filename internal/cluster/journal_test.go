package cluster

import (
	"bytes"
	"testing"
)

func mustAppend(t *testing.T, j *journal, seq uint64, payload []byte) {
	t.Helper()
	if err := j.append(seq, payload, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJournalOrderAndLookup(t *testing.T) {
	j := newJournal(0) // default-free: <=0 budget is unbounded here
	if err := j.append(2, []byte("x"), nil); err == nil {
		t.Fatal("gap append accepted")
	}
	mustAppend(t, j, 1, []byte("a"))
	mustAppend(t, j, 2, []byte("bb"))
	if err := j.append(2, []byte("dup"), nil); err == nil {
		t.Fatal("duplicate append accepted")
	}
	if got := j.max(); got != 2 {
		t.Fatalf("max %d, want 2", got)
	}
	if p1, _ := j.get(1); !bytes.Equal(p1, []byte("a")) {
		t.Fatal("lookup returned wrong payloads")
	}
	if p2, _ := j.get(2); !bytes.Equal(p2, []byte("bb")) {
		t.Fatal("lookup returned wrong payloads")
	}
	if p3, _ := j.get(3); p3 != nil {
		t.Fatal("out-of-range lookup returned a payload")
	}
	if p0, _ := j.get(0); p0 != nil {
		t.Fatal("out-of-range lookup returned a payload")
	}
	if frames, b := j.retained(); frames != 2 || b != 3 {
		t.Fatalf("retained (%d, %d), want (2, 3)", frames, b)
	}
}

func TestJournalEvictionIsOneWay(t *testing.T) {
	j := newJournal(5)
	mustAppend(t, j, 1, []byte("aaa"))
	mustAppend(t, j, 2, []byte("bbb")) // 6 bytes retained, over the 5 budget

	// Nothing acked yet: nothing may be evicted, replay stays possible.
	if f, _ := j.ack(0); f != 0 {
		t.Fatalf("evicted %d unacked frames", f)
	}
	if !j.replayable() {
		t.Fatal("journal not replayable before any eviction")
	}

	// Ack frame 1: it becomes evictable and the budget forces it out.
	f, b := j.ack(1)
	if f != 1 || b != 3 {
		t.Fatalf("ack evicted (%d, %d), want (1, 3)", f, b)
	}
	if j.replayable() {
		t.Fatal("journal still claims replayable after eviction")
	}
	if p1, _ := j.get(1); p1 != nil {
		t.Fatal("evicted payload still retrievable")
	}
	if p2, _ := j.get(2); !bytes.Equal(p2, []byte("bbb")) {
		t.Fatal("unacked payload evicted")
	}
	if got := j.max(); got != 2 {
		t.Fatalf("max %d after eviction, want 2", got)
	}
}

func TestJournalUnackedNeverEvicted(t *testing.T) {
	j := newJournal(1)
	for seq := uint64(1); seq <= 10; seq++ {
		mustAppend(t, j, seq, []byte("payload"))
	}
	// Ack 4: frames 1..4 are evictable; 5..10 must survive any budget.
	j.ack(4)
	for seq := uint64(5); seq <= 10; seq++ {
		if p, _ := j.get(seq); p == nil {
			t.Fatalf("unacked frame %d evicted", seq)
		}
	}
	if p4, _ := j.get(4); p4 != nil {
		t.Fatal("acked frame survived a 1-byte budget")
	}
}

func TestJournalUnboundedNeverEvicts(t *testing.T) {
	j := newJournal(-1)
	for seq := uint64(1); seq <= 100; seq++ {
		mustAppend(t, j, seq, make([]byte, 1024))
	}
	if f, _ := j.ack(100); f != 0 {
		t.Fatalf("unbounded journal evicted %d frames", f)
	}
	if !j.replayable() {
		t.Fatal("unbounded journal not replayable")
	}
}
