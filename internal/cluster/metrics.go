package cluster

import "github.com/oocsb/ibp/internal/telemetry"

// metrics is the router's telemetry surface, resolved once per Router
// against the process registry. Handles are nil (no-op) when telemetry is
// disabled, so the routing path updates them unconditionally.
type metrics struct {
	sessionsActive  *telemetry.Gauge   // router_sessions_active
	sessionsTotal   *telemetry.Counter // router_sessions_total
	sessionsDropped *telemetry.Counter // router_sessions_dropped_total

	placements     *telemetry.Counter // router_placements_total
	failovers      *telemetry.Counter // router_failovers_total
	replayedFrames *telemetry.Counter // router_replayed_frames_total
	replayLost     *telemetry.Counter // router_replay_lost_total

	frames      *telemetry.Counter // router_frames_total
	acksRelayed *telemetry.Counter // router_acks_relayed_total

	journalBytes   *telemetry.Gauge   // router_journal_bytes
	journalEvicted *telemetry.Counter // router_journal_evicted_frames_total

	healthTransitions *telemetry.Counter // router_health_transitions_total
	backendsUp        *telemetry.Gauge   // router_backends_up
	probes            *telemetry.Counter // router_probes_total
	probeFailures     *telemetry.Counter // router_probe_failures_total
	dials             *telemetry.Counter // router_backend_dials_total
	dialFailures      *telemetry.Counter // router_backend_dial_failures_total

	// Hot-path latency histograms, fed from the session's flight spans (so
	// they move only while tracing is on — the router has no other per-frame
	// clock reads).
	frameLatency *telemetry.Histogram // router_frame_latency: client recv → ack relayed
	backendRTT   *telemetry.Histogram // router_backend_rtt: relay → backend ack
}

// newMetrics resolves the handles against r (nil handles when r is nil).
func newMetrics(r *telemetry.Registry) *metrics {
	return &metrics{
		sessionsActive:  r.Gauge("router_sessions_active"),
		sessionsTotal:   r.Counter("router_sessions_total"),
		sessionsDropped: r.Counter("router_sessions_dropped_total"),

		placements:     r.Counter("router_placements_total"),
		failovers:      r.Counter("router_failovers_total"),
		replayedFrames: r.Counter("router_replayed_frames_total"),
		replayLost:     r.Counter("router_replay_lost_total"),

		frames:      r.Counter("router_frames_total"),
		acksRelayed: r.Counter("router_acks_relayed_total"),

		journalBytes:   r.Gauge("router_journal_bytes"),
		journalEvicted: r.Counter("router_journal_evicted_frames_total"),

		healthTransitions: r.Counter("router_health_transitions_total"),
		backendsUp:        r.Gauge("router_backends_up"),
		probes:            r.Counter("router_probes_total"),
		probeFailures:     r.Counter("router_probe_failures_total"),
		dials:             r.Counter("router_backend_dials_total"),
		dialFailures:      r.Counter("router_backend_dial_failures_total"),

		frameLatency: r.Histogram("router_frame_latency"),
		backendRTT:   r.Histogram("router_backend_rtt"),
	}
}
