package cluster

import (
	"fmt"
	"sort"
)

// The placement ring lifts the serve package's FNV-1a shard pinning one
// level up: inside one ibpserved process a session is pinned to a shard by
// the FNV-1a hash of its first record's PC, and across the cluster a session
// is pinned to a backend by the same hash looked up on a consistent-hash
// ring. Each backend contributes VirtualNodes points (FNV-1a of
// "addr#vnode"), so membership changes move only ~1/N of the keyspace and a
// failover walks to the next distinct backend clockwise — a deterministic
// candidate order every router instance agrees on.

// ringPoint is one virtual node.
type ringPoint struct {
	hash uint32
	b    *backend
}

// ring is an immutable consistent-hash ring; the Router rebuilds it on
// membership change and swaps it under its lock.
type ring struct {
	points []ringPoint
}

// fnv32 is FNV-1a over b.
func fnv32(b []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}

// hashPC mixes a PC exactly like serve's shard pinning: FNV-1a over its four
// little-endian bytes.
func hashPC(pc uint32) uint32 {
	var b [4]byte
	b[0] = byte(pc)
	b[1] = byte(pc >> 8)
	b[2] = byte(pc >> 16)
	b[3] = byte(pc >> 24)
	return fnv32(b[:])
}

// buildRing constructs the ring over backends with vnodes points each.
func buildRing(backends []*backend, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{points: make([]ringPoint, 0, len(backends)*vnodes)}
	for _, b := range backends {
		for v := 0; v < vnodes; v++ {
			h := fnv32(fmt.Appendf(nil, "%s#%d", b.addr, v))
			r.points = append(r.points, ringPoint{hash: h, b: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].b.addr < r.points[j].b.addr // deterministic tie-break
	})
	return r
}

// candidates returns every distinct backend in ring-walk order starting at
// pc's hash point: the first entry owns the session, the rest are the
// failover order. The slice is freshly allocated per call.
func (r *ring) candidates(pc uint32) []*backend {
	if len(r.points) == 0 {
		return nil
	}
	h := hashPC(pc)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]*backend, 0, 4)
	seen := make(map[*backend]struct{}, 4)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.b]; dup {
			continue
		}
		seen[p.b] = struct{}{}
		out = append(out, p.b)
	}
	return out
}
