package cluster

import (
	"fmt"
	"testing"
)

func ringOf(addrs ...string) (*ring, []*backend) {
	bs := make([]*backend, len(addrs))
	for i, a := range addrs {
		bs[i] = newBackend(a, StateUp)
	}
	return buildRing(bs, 64), bs
}

// TestRingDeterministic: two rings over the same membership agree on every
// placement and on the full failover order — the property that lets any
// router (or a restarted one) re-derive where a session lives.
func TestRingDeterministic(t *testing.T) {
	addrs := []string{"10.0.0.1:9670", "10.0.0.2:9670", "10.0.0.3:9670"}
	r1, _ := ringOf(addrs...)
	r2, _ := ringOf(addrs[2], addrs[0], addrs[1]) // same membership, different order

	for pc := uint32(0); pc < 4096; pc += 7 {
		c1 := r1.candidates(pc)
		c2 := r2.candidates(pc)
		if len(c1) != len(addrs) || len(c2) != len(addrs) {
			t.Fatalf("pc %#x: candidate walks cover %d/%d backends, want %d", pc, len(c1), len(c2), len(addrs))
		}
		for i := range c1 {
			if c1[i].addr != c2[i].addr {
				t.Fatalf("pc %#x: walk diverges at %d: %s vs %s", pc, i, c1[i].addr, c2[i].addr)
			}
		}
	}
}

// TestRingStability: removing one backend must not move sessions between
// surviving backends — consistent hashing's defining property.
func TestRingStability(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1", "d:1"}
	full, _ := ringOf(addrs...)
	reduced, _ := ringOf(addrs[:3]...) // drop d:1

	moved := 0
	total := 0
	for pc := uint32(1); pc < 1<<16; pc += 131 {
		total++
		before := full.candidates(pc)[0].addr
		after := reduced.candidates(pc)[0].addr
		if before == "d:1" {
			continue // its keys must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d/%d placements on surviving backends moved after removing one member", moved, total)
	}
}

// TestRingSpread: 64 vnodes per backend keep the keyspace roughly balanced.
func TestRingSpread(t *testing.T) {
	r, bs := ringOf("a:1", "b:1", "c:1")
	counts := map[*backend]int{}
	const samples = 20000
	for i := 0; i < samples; i++ {
		counts[r.candidates(uint32(i*2654435761))[0]]++
	}
	for _, b := range bs {
		share := float64(counts[b]) / samples
		if share < 0.15 || share > 0.55 {
			t.Errorf("backend %s owns %.0f%% of the keyspace", b.addr, 100*share)
		}
	}
}

// TestRingWalkDistinct: the candidate walk never repeats a backend.
func TestRingWalkDistinct(t *testing.T) {
	r, _ := ringOf("a:1", "b:1", "c:1", "d:1", "e:1")
	for pc := uint32(0); pc < 1000; pc++ {
		seen := map[string]bool{}
		for _, b := range r.candidates(pc) {
			if seen[b.addr] {
				t.Fatalf("pc %d: backend %s repeated in walk", pc, b.addr)
			}
			seen[b.addr] = true
		}
	}
}

// TestRingMatchesServeSharding: hashPC is FNV-1a over the PC's four
// little-endian bytes — the same mix serve uses for shard pinning.
func TestRingMatchesServeSharding(t *testing.T) {
	for _, pc := range []uint32{0, 1, 0xdeadbeef, 0xffffffff} {
		var b [4]byte
		for i := range b {
			b[i] = byte(pc >> (8 * i))
		}
		if got, want := hashPC(pc), fnv32(b[:]); got != want {
			t.Fatalf("hashPC(%#x) = %#x, want %#x", pc, got, want)
		}
	}
	// Pin a few known FNV-1a values so a quiet hash change cannot slip by
	// (it would silently re-place every session in a mixed-version fleet).
	if got := fnv32([]byte("")); got != 2166136261 {
		t.Fatalf("fnv32 offset basis %d", got)
	}
	if got := fnv32([]byte("a")); got != 0xe40c292c {
		t.Fatalf("fnv32(\"a\") = %#x, want 0xe40c292c", got)
	}
}

// TestRingEmpty: an empty ring yields no candidates rather than panicking.
func TestRingEmpty(t *testing.T) {
	r := buildRing(nil, 64)
	if got := r.candidates(42); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
}

func BenchmarkRingCandidates(b *testing.B) {
	addrs := make([]string, 8)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.0.0.%d:9670", i+1)
	}
	r, _ := ringOf(addrs...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.candidates(uint32(i))
	}
}
