package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/serve"
	"github.com/oocsb/ibp/internal/sessiontrack"
	"github.com/oocsb/ibp/internal/trace"
)

// Router-originated error codes, in the serve.WireError code namespace.
const (
	// CodeNoBackend: no placeable backend accepted the session.
	CodeNoBackend = "no-backend"
	// CodeFailoverLost: the backend died and the journal had already
	// evicted part of the session prefix, so a lossless replay is
	// impossible. The router fails the session honestly instead of
	// resuming with corrupted predictor state.
	CodeFailoverLost = "failover-lost"
)

// errSessionOver is connect's signal that the session already received its
// final frame (a deterministic backend rejection was relayed).
var errSessionOver = errors.New("cluster: session over")

// outFrame is one frame queued for the client writer. buf, when non-nil, is
// the payload's pooled buffer; the writer releases it once the bytes are
// batched. final marks the session's last frame; the writer closes the
// connection after flushing it.
type outFrame struct {
	typ     uint64
	payload []byte
	buf     *trace.PooledBuf
	// span, when non-nil, rides with a relayed ack: the writer stamps its
	// ack-relay hop after the flush that carried it, feeds the frame-latency
	// histogram, and publishes it to the flight recorder.
	span  *flight.Span
	final bool
}

// proxySession is one client connection routed through the cluster. Three
// goroutines run it:
//
//   - the reader (handleConn's goroutine) parses client frames, journals
//     records payloads, and flags Done or client loss;
//   - the writer drains out to the client connection, batching frames per
//     flush like serve's session writer;
//   - the forwarder owns backend placement: it dials a backend, then pumps —
//     a sender streaming journal frames forward and a receiver relaying
//     acks/events back — and on backend death loops around to a survivor,
//     replaying the journaled prefix.
//
// Correctness hinges on the journal invariant (see journal): as long as the
// complete prefix is retained, a replacement backend that replays frames
// 1..max through a fresh predictor reaches bit-identical state, because
// prediction is deterministic in the record stream. The relayedThrough
// watermark suppresses the duplicate acks/events a replay produces, so the
// client sees each seq acknowledged exactly once.
type proxySession struct {
	id     uint64
	r      *Router
	conn   net.Conn
	hello  serve.Hello
	window int // granted client window

	// tracer mints a flight span per journaled frame; nil when tracing is
	// off. spans (guarded by mu, nil when tracing is off) holds each
	// frame's span from journal append until its ack is relayed — stamps
	// from the reader, sender, and receiver goroutines all happen under mu,
	// and the hand-off to the writer rides the out channel.
	tracer *flight.Tracer
	spans  map[uint64]*flight.Span
	// track is this session's stats entry in the router's introspection
	// registry: journal bytes, relayed-ack counters, placement and
	// failover/replay state. Set before the goroutines start.
	track *sessiontrack.Session

	mu         sync.Mutex
	j          *journal
	done       bool // client sent Done
	clientGone bool // client connection failed before Done
	placed     bool
	placedPC   uint32
	curConn    io.Closer // live backend client (for Router.Close kicks)

	// relayedThrough is the highest ack seq relayed to the client; acks and
	// events at or below it are replay duplicates and are suppressed.
	relayedThrough atomic.Uint64

	notify chan struct{} // collapsed reader→forwarder signal
	out    chan outFrame // writer queue
	closed chan struct{}
	close1 sync.Once

	finalQueued atomic.Bool // a final frame has been queued (exactly-once)
	dropped     atomic.Bool // counted in router_sessions_dropped_total

	// Owned by the forwarder/sender chain (attempts are sequenced by
	// wg.Wait, which establishes happens-before between them).
	maxSent   uint64 // highest seq ever sent to any backend
	failovers int
	replayed  atomic.Int64 // frames re-sent during replays
}

func (sess *proxySession) signal() {
	select {
	case sess.notify <- struct{}{}:
	default:
	}
}

func (sess *proxySession) isClosed() bool {
	select {
	case <-sess.closed:
		return true
	default:
		return false
	}
}

// close tears the session down: wakes the writer (which owns closing the
// client connection), severs the live backend connection, and unregisters.
// Idempotent; safe from any goroutine.
func (sess *proxySession) close() {
	sess.close1.Do(func() {
		close(sess.closed)
		sess.mu.Lock()
		bc := sess.curConn
		sess.mu.Unlock()
		if bc != nil {
			bc.Close()
		}
		sess.r.unregister(sess)
	})
}

// Drain and Kill implement sessiontrack.Conn. A router drain lets proxy
// sessions run to completion (the journal guarantees nothing is lost), so
// Drain is deliberately a no-op; Kill is the hard teardown.
func (sess *proxySession) Drain() {}
func (sess *proxySession) Kill()  { sess.close() }

// setCurConn records the live backend connection so close (and backend
// kicks) can sever it. If the session already closed, the new connection is
// severed immediately.
func (sess *proxySession) setCurConn(c io.Closer) {
	sess.mu.Lock()
	sess.curConn = c
	sess.mu.Unlock()
	if c != nil && sess.isClosed() {
		c.Close()
	}
}

// replayable reports whether the journal still holds the complete prefix.
func (sess *proxySession) replayable() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.j.replayable()
}

// markDropped counts the session once in router_sessions_dropped_total.
func (sess *proxySession) markDropped() {
	if sess.dropped.CompareAndSwap(false, true) {
		sess.r.m.sessionsDropped.Inc()
	}
}

// relay queues a frame for the client, blocking for backpressure. buf is the
// payload's pooled buffer (nil for unpooled payloads): on success its
// reference moves to the writer, on failure relay releases it. It returns
// false when the session closed (or a final frame already went out and this
// one is final too).
func (sess *proxySession) relay(typ uint64, payload []byte, buf *trace.PooledBuf, sp *flight.Span, final bool) bool {
	if final && !sess.finalQueued.CompareAndSwap(false, true) {
		buf.Release()
		return false
	}
	select {
	case sess.out <- outFrame{typ: typ, payload: payload, buf: buf, span: sp, final: final}:
		return true
	case <-sess.closed:
		buf.Release()
		return false
	}
}

// failClient ends the session with a WireError, if no final frame went out
// yet. Non-blocking: a client that stopped reading gets a hard close.
func (sess *proxySession) failClient(code, msg string) {
	if !sess.finalQueued.CompareAndSwap(false, true) {
		return
	}
	sess.markDropped()
	sess.r.log.Warn("session failed", "session", sess.id, "code", code, "err", msg)
	payload, _ := json.Marshal(&serve.WireError{Code: code, Msg: msg})
	select {
	case sess.out <- outFrame{typ: serve.FrameError, payload: payload, final: true}:
	default:
		sess.close()
	}
}

// writeLoop drains out to the client connection, mirroring serve's batched
// session writer: every queued frame joins the current flush, and the whole
// batch goes out in one vectored write — relayed backend frames (acks,
// events) are forwarded from their borrowed buffers without re-encoding, and
// the batcher releases each buffer once its bytes are out. It owns the
// client connection's close — after a final frame's flush, or on session
// close (draining anything already queued first, so an early close cannot
// drop a queued Summary).
func (sess *proxySession) writeLoop() {
	defer sess.r.connWG.Done()
	var fb trace.FrameBatcher
	// Spans riding the current batch: stamped with one clock read after the
	// flush that actually put their acks on the wire, then published.
	var spans []*flight.Span
	add := func(m outFrame) {
		fb.Add(m.typ, m.payload, m.buf)
		if m.span != nil {
			spans = append(spans, m.span)
		}
	}
	flush := func() error {
		sess.conn.SetWriteDeadline(time.Now().Add(sess.r.cfg.WriteTimeout))
		err := fb.Flush(sess.conn)
		if len(spans) > 0 {
			if err == nil {
				now := time.Now().UnixNano()
				for _, sp := range spans {
					sp.StampAt(flight.HopRouterAckRelay, now)
					if recvNS := sp.HopNS(flight.HopRouterRecv); recvNS > 0 {
						sess.r.m.frameLatency.Observe(time.Duration(now - recvNS))
					}
					sp.Finish()
				}
			}
			clear(spans)
			spans = spans[:0]
		}
		return err
	}
	// drainReleases returns late stragglers' buffers to the pool after the
	// session is over (best-effort: a relay racing close may still enqueue).
	drainRelease := func() {
		for {
			select {
			case m := <-sess.out:
				m.buf.Release()
			default:
				return
			}
		}
	}
	finish := func() {
		flush()
		sess.conn.Close()
		sess.close()
		drainRelease()
	}
	for {
		select {
		case m := <-sess.out:
			final := m.final
			add(m)
			for !final {
				select {
				case n := <-sess.out:
					add(n)
					final = n.final
					continue
				default:
				}
				break
			}
			if final {
				finish()
				return
			}
			if err := flush(); err != nil {
				sess.conn.Close()
				sess.close()
				drainRelease()
				return
			}
		case <-sess.closed:
			// Deliver anything already queued before closing.
			for {
				select {
				case m := <-sess.out:
					add(m)
					continue
				default:
				}
				break
			}
			flush()
			sess.conn.Close()
			return
		}
	}
}

// readLoop parses client frames until Done, a protocol violation, or client
// loss. Records payloads are journaled verbatim and stay in their borrowed
// frame buffers end to end: the journal takes over each frame's pool
// reference, and the sender forwards the same bytes to the backend.
func (sess *proxySession) readLoop(fr *trace.FrameReader) {
	r := sess.r
	var nextSeq uint64
	for {
		if sess.isClosed() {
			return
		}
		sess.conn.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout))
		f, err := fr.Next()
		if err != nil {
			sess.mu.Lock()
			done := sess.done
			if !done {
				sess.clientGone = true
			}
			sess.mu.Unlock()
			if !done && !sess.isClosed() {
				sess.markDropped()
				r.log.Warn("client connection lost", "session", sess.id, "err", err)
			}
			sess.signal()
			return
		}
		switch f.Type {
		case serve.FrameRecords:
			seq, n := binary.Uvarint(f.Payload)
			if n <= 0 {
				f.Release()
				sess.failClient(serve.CodeBadFrame, "records frame without seq")
				return
			}
			if seq != nextSeq+1 {
				f.Release()
				sess.failClient(serve.CodeBadSeq, fmt.Sprintf("frame seq %d, want %d", seq, nextSeq+1))
				return
			}
			nextSeq = seq
			if seq-sess.relayedThrough.Load() > uint64(sess.window)+1 {
				f.Release()
				sess.failClient(serve.CodeOverLimit, fmt.Sprintf("more than %d frames in flight", sess.window))
				return
			}
			sess.mu.Lock()
			if !sess.placed {
				// Placement key: the first record's PC. The peek reads one
				// field; only a chunk it cannot parse gets the full decode,
				// for the decoder's exact verdict (an empty chunk is legal
				// and places by pc 0).
				if pc, ok := trace.PeekFirstPC(f.Payload[n:]); ok {
					sess.placedPC = pc
				} else if _, derr := trace.DecodeRecords(f.Payload[n:], r.cfg.MaxFrameRecords); derr != nil {
					sess.mu.Unlock()
					f.Release()
					sess.failClient(serve.CodeBadFrame, derr.Error())
					return
				}
				sess.placed = true
			}
			// The journal takes over the frame's buffer reference.
			jerr := sess.j.append(seq, f.Payload, f.Buffer())
			if jerr == nil && sess.spans != nil {
				sp := sess.tracer.Start(seq)
				sp.Stamp(flight.HopRouterRecv)
				sess.spans[seq] = sp
			}
			sess.mu.Unlock()
			if jerr != nil {
				f.Release()
				sess.failClient(serve.CodeBadSeq, jerr.Error())
				return
			}
			r.m.frames.Inc()
			r.m.journalBytes.Add(float64(len(f.Payload)))
			sess.track.JournalDelta(int64(len(f.Payload)))
			// Window occupancy from the seq/watermark distance — the proxy
			// does not count acks symmetrically, it observes the gap.
			sess.track.SetInflight(int32(seq - sess.relayedThrough.Load()))
			sess.signal()
		case serve.FrameDone:
			f.Release()
			sess.mu.Lock()
			sess.done = true
			sess.mu.Unlock()
			sess.signal()
			return
		default:
			// Ignore unknown client frame types for forward compatibility,
			// like serve's session reader.
			f.Release()
		}
	}
}

// awaitPlacement blocks until the session has a placement key (first records
// frame decoded), the client finished an empty session (Done with no
// records: place by pc 0), or there is nothing left to do.
func (sess *proxySession) awaitPlacement() (pc uint32, ok bool) {
	for {
		sess.mu.Lock()
		placed, done, gone := sess.placed, sess.done, sess.clientGone
		pc = sess.placedPC
		sess.mu.Unlock()
		switch {
		case placed:
			return pc, true
		case done:
			return 0, true
		case gone:
			return 0, false
		}
		select {
		case <-sess.notify:
		case <-sess.closed:
			return 0, false
		}
	}
}

// forward owns the session's backend side: place, pump, and on backend loss
// fail over — dial the next ring candidate and replay the journaled prefix.
func (sess *proxySession) forward() {
	defer sess.r.connWG.Done()
	defer func() {
		// If a final frame is queued the writer finishes and closes; a
		// session ending without one (client loss) is torn down here.
		if !sess.finalQueued.Load() {
			sess.close()
		}
	}()
	pc, ok := sess.awaitPlacement()
	if !ok {
		return
	}
	var avoid *backend
	for {
		if sess.isClosed() {
			return
		}
		b, bc, err := sess.r.connectSession(sess, pc, avoid)
		if err == errSessionOver {
			return
		}
		if err != nil {
			sess.failClient(CodeNoBackend, fmt.Sprintf("no backend accepted the session: %v", err))
			return
		}
		sess.track.SetBackend(b.addr)
		res := sess.pump(b, bc)
		bc.Close()
		b.detach(sess)
		sess.setCurConn(nil)
		if res == pumpTerminal {
			return
		}
		// Backend lost mid-session. Replay onto a survivor if the journal
		// still holds the complete prefix.
		if sess.isClosed() {
			return
		}
		sess.mu.Lock()
		replayOK := sess.j.replayable()
		gone := sess.clientGone && !sess.done
		sess.mu.Unlock()
		if gone {
			return // client vanished too; nothing to preserve
		}
		if !replayOK {
			sess.r.m.replayLost.Inc()
			sess.track.SetReplayable(false)
			sess.failClient(CodeFailoverLost,
				"backend lost after journal eviction; lossless replay impossible")
			return
		}
		sess.failovers++
		sess.track.Failover()
		sess.r.m.failovers.Inc()
		sess.r.log.Info("session failover", "session", sess.id,
			"from", b.addr, "failovers", sess.failovers)
		avoid = b
	}
}

type pumpResult int

const (
	pumpTerminal pumpResult = iota // session finished (final frame queued) or client gone
	pumpRetry                      // backend lost; fail over
)

// pump runs one backend attempt: a sender goroutine streams journal frames
// (from seq 1 — a replay on every attempt after the first) and Done, while
// the receiver relays acks and events past the relayedThrough watermark and
// terminates on the backend's Summary or WireError.
func (sess *proxySession) pump(b *backend, bc *serve.Client) pumpResult {
	r := sess.r
	window := bc.Session().Window
	if window < 1 {
		window = 1
	}
	// Every attempt after the first starts by replaying the journal prefix.
	if sess.maxSent > 0 {
		sess.track.SetState(sessiontrack.StateReplaying)
	} else {
		sess.track.SetState(sessiontrack.StateActive)
	}
	// Backend-side in-flight window, released one slot per ack received.
	sem := make(chan struct{}, window)
	abort := make(chan struct{})
	var abortOnce sync.Once
	stopSender := func() { abortOnce.Do(func() { close(abort) }) }
	defer stopSender()

	var senderSawGone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // sender
		defer wg.Done()
		next := uint64(1)
		for {
			sess.mu.Lock()
			payload, pbuf := sess.j.get(next)
			doneAll := sess.done && next > sess.j.max()
			gone := sess.clientGone && !sess.done
			// The journal's reference can be evicted the moment the lock
			// drops; a private one keeps the bytes alive across the write.
			pbuf.Retain()
			sess.mu.Unlock()
			switch {
			case payload != nil:
				select {
				case sem <- struct{}{}:
				case <-abort:
					pbuf.Release()
					return
				case <-sess.closed:
					pbuf.Release()
					return
				}
				if next <= sess.maxSent {
					sess.replayed.Add(1)
					sess.track.ReplayedFrames(1)
					r.m.replayedFrames.Inc()
				} else {
					sess.maxSent = next
					// First fresh frame after a replay: caught up.
					sess.track.SetState(sessiontrack.StateActive)
					// First send only: a failover replay keeps the original
					// relay stamp, so the span's relay→ack gap covers the
					// whole outage rather than the last attempt.
					if sess.spans != nil {
						sess.mu.Lock()
						sess.spans[next].Stamp(flight.HopRouterRelay)
						sess.mu.Unlock()
					}
				}
				err := bc.WriteFrame(serve.FrameRecords, payload)
				if err == nil {
					err = bc.Flush()
				}
				pbuf.Release()
				if err != nil {
					return // receiver sees the conn error
				}
				next++
			case doneAll:
				bc.WriteFrame(serve.FrameDone, nil)
				bc.Flush()
				return
			case gone:
				// No Summary is coming from the client's perspective; wake
				// the receiver out of its read so the attempt ends.
				senderSawGone.Store(true)
				bc.Close()
				return
			default:
				select {
				case <-sess.notify:
				case <-abort:
					return
				case <-sess.closed:
					return
				}
			}
		}
	}()

	result := pumpRetry
recv:
	for {
		f, err := bc.ReadFrame(0)
		if err != nil {
			if senderSawGone.Load() || sess.isClosed() {
				result = pumpTerminal
			} else {
				b.noteSessionError(r)
				result = pumpRetry
			}
			break recv
		}
		switch f.Type {
		case serve.FrameAck:
			// The full decode (7 uvarints, no allocation) gives the proxy
			// session the acked frame's per-frame counts — the router's
			// introspection view carries real miss/throughput windows, not
			// just byte counters.
			ack, aerr := serve.DecodeAck(f.Payload)
			if aerr != nil {
				f.Release()
				b.noteSessionError(r)
				break recv // corrupt ack; treat as backend loss
			}
			seq := ack.Seq
			select {
			case <-sem:
			default:
			}
			sess.mu.Lock()
			evFrames, evBytes := sess.j.ack(seq)
			jmax := sess.j.max()
			var sp *flight.Span
			if sess.spans != nil {
				if sp = sess.spans[seq]; sp != nil {
					delete(sess.spans, seq)
					sp.Stamp(flight.HopRouterAckRecv)
					if relayNS := sp.HopNS(flight.HopRouterRelay); relayNS > 0 {
						r.m.backendRTT.Observe(time.Duration(sp.HopNS(flight.HopRouterAckRecv) - relayNS))
					}
				}
			}
			sess.mu.Unlock()
			if evFrames > 0 {
				r.m.journalEvicted.Add(uint64(evFrames))
				r.m.journalBytes.Add(-float64(evBytes))
				sess.track.JournalDelta(-int64(evBytes))
				// Evicting acknowledged prefix forfeits lossless failover.
				sess.track.SetReplayable(false)
			}
			if seq > sess.relayedThrough.Load() {
				// The ack payload relays as-is; its buffer reference moves
				// to the client writer, and the span rides along for its
				// ack-relay stamp.
				if !sess.relay(serve.FrameAck, f.Payload, f.Buffer(), sp, false) {
					result = pumpTerminal
					break recv
				}
				sess.relayedThrough.Store(seq)
				sess.track.AckRelayed(time.Now().UnixNano(), ack.Records, ack.Executed, ack.Misses)
				if jmax >= seq {
					sess.track.SetInflight(int32(jmax - seq))
				}
				r.m.acksRelayed.Inc()
			} else {
				f.Release() // replay duplicate, suppressed
			}
		case serve.FrameEvents:
			// Events for a frame precede its ack, so the ack watermark also
			// identifies replay-duplicate event frames.
			seq, n := binary.Uvarint(f.Payload)
			if n > 0 && seq > sess.relayedThrough.Load() {
				if !sess.relay(serve.FrameEvents, f.Payload, f.Buffer(), nil, false) {
					result = pumpTerminal
					break recv
				}
			} else {
				f.Release()
			}
		case serve.FrameSummary:
			var sum serve.Summary
			uerr := json.Unmarshal(f.Payload, &sum)
			f.Release()
			if uerr != nil {
				b.noteSessionError(r)
				break recv
			}
			sess.mu.Lock()
			done := sess.done
			sess.mu.Unlock()
			if sum.Drained || !done {
				// The backend drained (its own SIGTERM) before the session
				// finished: its summary covers only a prefix. Discard it
				// and migrate — the replay makes the cut invisible.
				break recv
			}
			sum.Session = sess.id
			sum.Router = &serve.RouterInfo{
				Backend:        b.addr,
				Failovers:      sess.failovers,
				ReplayedFrames: int(sess.replayed.Load()),
			}
			payload, _ := json.Marshal(sum)
			sess.relay(serve.FrameSummary, payload, nil, nil, true)
			result = pumpTerminal
			break recv
		case serve.FrameError:
			var we serve.WireError
			if json.Unmarshal(f.Payload, &we) != nil || we.Code == serve.CodeOverload {
				// Overload is a transient shed: another backend may accept.
				f.Release()
				break recv
			}
			// Deterministic rejection — a replay would fail identically, so
			// relay the backend's verdict as the session's final frame.
			sess.markDropped()
			sess.relay(serve.FrameError, f.Payload, f.Buffer(), nil, true)
			result = pumpTerminal
			break recv
		default:
			f.Release()
		}
	}
	stopSender()
	bc.Close() // wakes a sender blocked in a write
	wg.Wait()
	return result
}
