package cluster

import (
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/serve"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/tuner"
)

// tunedPolicy escalates on the first 256-branch window with >= 1% misses and
// then stops (swaps=1), so a tuned session's final accounting is exactly the
// escalation target run from the first record.
const tunedPolicy = "warmup=0;interval=256;miss=0.01;low=0.001;hyst=1;swaps=1;coldmax=1;target=ittage:4,256,2"

// TestRouterFailoverTunedBitIdentical extends the golden failover contract
// to tuned fleets: backends run -tuner, the router pins -tunerpolicy into
// every forwarded Hello, and a backend is SIGKILLed after sessions have
// already hot-swapped their predictor. The journal replay drives the
// replacement backend's tuner through the identical decisions at the
// identical frame boundaries, so every client's Summary is still
// bit-identical to an uninterrupted from-start run of whatever predictor
// the session finished on. The tuner CI job greps for this test, so it must
// never t.Skip (outside -short).
func TestRouterFailoverTunedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns backend processes")
	}
	proc1, b1 := spawnServed(t, "-tuner")
	proc2, b2 := spawnServed(t, "-tuner")
	procs := map[string]*exec.Cmd{b1: proc1, b2: proc2}

	r, addr := startRouter(t, []string{b1, b2}, func(cfg *Config) {
		cfg.TunerPolicy = tunedPolicy
	})

	const (
		n      = 30000
		warmup = 64
		frame  = 96
	)
	names := []string{"gcc", "perl", "go"}

	// Every session parks at its eighth ack — past the first decision window
	// (warmup 64 + interval 256 < 8*96 records), so the SIGKILL lands on
	// sessions that already swapped and the replacement must reproduce the
	// swap from the journal alone.
	ready := make(chan struct{}, len(names))
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		for range names {
			select {
			case <-ready:
			case <-time.After(30 * time.Second):
				t.Error("sessions never reached the kill point")
				return
			}
		}
		var victim string
		most := 0
		for _, st := range r.BackendStatuses() {
			if st.Sessions > most {
				victim, most = st.Addr, st.Sessions
			}
		}
		if victim == "" {
			t.Error("no backend had attached sessions to kill")
			return
		}
		t.Logf("SIGKILL tuned backend %s (%d sessions)", victim, most)
		if err := procs[victim].Process.Kill(); err != nil {
			t.Errorf("kill %s: %v", victim, err)
		}
	}()

	type outcome struct {
		name string
		sum  serve.Summary
		err  error
	}
	results := make(chan outcome, len(names))
	for _, name := range names {
		go func(name string) {
			tr := suiteTrace(t, name, n)
			c, err := serve.Dial(addr, serve.Hello{Benchmark: name, Warmup: warmup},
				serve.DialOptions{Timeout: 60 * time.Second, Retries: 2})
			if err != nil {
				results <- outcome{name: name, err: err}
				return
			}
			defer c.Close()
			var parkOnce sync.Once
			sum, err := c.Stream(tr, frame, func(a serve.Ack, _ time.Duration) {
				if a.Seq >= 8 {
					parkOnce.Do(func() {
						ready <- struct{}{}
						<-killDone
					})
				}
			})
			results <- outcome{name: name, sum: sum, err: err}
		}(name)
	}

	target, err := tuner.PredictorFor("ittage:4,256,2")
	if err != nil {
		t.Fatal(err)
	}
	failovers, escalated := 0, 0
	for range names {
		res := <-results
		if res.err != nil {
			t.Errorf("%s: %v", res.name, res.err)
			continue
		}
		tr := suiteTrace(t, res.name, n)
		if strings.HasPrefix(res.sum.Predictor, "ittage") {
			// The session escalated: its Summary must be bit-identical to
			// the target predictor run from the very first record.
			escalated++
			pred, err := target.Build()
			if err != nil {
				t.Fatal(err)
			}
			want := sim.Run(pred, tr, sim.Options{Warmup: warmup})
			if res.sum.Executed != want.Executed || res.sum.Misses != want.Misses ||
				res.sum.NoPrediction != want.NoPrediction {
				t.Errorf("%s (tuned): executed/misses/noPred = %d/%d/%d, target-from-start sim = %d/%d/%d",
					res.name, res.sum.Executed, res.sum.Misses, res.sum.NoPrediction,
					want.Executed, want.Misses, want.NoPrediction)
			}
		} else {
			checkSummary(t, res.name, res.sum, tr, warmup)
		}
		if res.sum.Router != nil {
			failovers += res.sum.Router.Failovers
		}
	}
	if failovers < 1 {
		t.Errorf("total failovers %d after SIGKILL, want >= 1", failovers)
	}
	if escalated < 1 {
		t.Errorf("no session escalated under the aggressive pinned policy")
	}
}

// TestRouterRejectsMalformedTunerPolicy: a bad -tunerpolicy fails at router
// construction, before any client can connect.
func TestRouterRejectsMalformedTunerPolicy(t *testing.T) {
	_, err := New(Config{
		Backends:    []string{"127.0.0.1:1"},
		Predictor:   defaultFlags(),
		TunerPolicy: "speed=9",
	})
	if err == nil || !strings.Contains(err.Error(), "tuner policy") {
		t.Fatalf("malformed policy: err = %v", err)
	}
}
