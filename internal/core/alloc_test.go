package core

import "testing"

// cyclicStream is a fully periodic branch stream: each site walks its target
// list round-robin, sites visited in a fixed rotation. After one full period
// every (history, site) state recurs, so a trained predictor replaying the
// stream performs only lookups on existing entries.
func cyclicStream(n int) []access {
	sites := []struct {
		pc      uint32
		targets []uint32
	}{
		{0x1000, []uint32{0x2000, 0x2040, 0x2080}},
		{0x1004, []uint32{0x3000, 0x3040}},
		{0x1008, []uint32{0x4000, 0x4040, 0x4080, 0x40C0}},
		{0x100C, []uint32{0x5000}},
	}
	out := make([]access, 0, n)
	pos := make([]int, len(sites))
	for i := 0; len(out) < n; i++ {
		s := i % len(sites)
		out = append(out, access{sites[s].pc, sites[s].targets[pos[s]%len(sites[s].targets)]})
		pos[s]++
	}
	return out
}

// TestSteadyStateZeroAllocs pins the hot-loop allocation behaviour the batch
// engine depends on: once trained, a predictor replaying a periodic stream
// must not allocate at all. This covers the exact string-keyed table (probe
// via map lookup without key materialization, scratch key buffer reused), the
// dense bounded tables, and the hybrid's component plumbing.
func TestSteadyStateZeroAllocs(t *testing.T) {
	stream := cyclicStream(1 << 10)
	cases := map[string]func() Predictor{
		"2lev-exact-p6": func() Predictor {
			return MustTwoLevel(Config{PathLength: 6, Precision: 0, TableKind: "exact"})
		},
		"2lev-assoc4": func() Predictor {
			return MustTwoLevel(Config{PathLength: 4, Precision: AutoPrecision, Scheme: 2, TableKind: "assoc4", Entries: 256})
		},
		"2lev-tagless": func() Predictor {
			return MustTwoLevel(Config{PathLength: 3, Precision: AutoPrecision, Scheme: 2, TableKind: "tagless", Entries: 512})
		},
		"btb": func() Predictor { return NewBTB(nil, UpdateTwoMiss) },
		"hybrid": func() Predictor {
			h, err := NewDualPath(3, 1, "assoc2", 256)
			if err != nil {
				panic(err)
			}
			return h
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			p := mk()
			// Two training passes: the first populates the tables, the
			// second starts from the end-of-period history state, so its
			// inserts cover exactly the keys every later replay probes.
			for pass := 0; pass < 2; pass++ {
				for _, a := range stream {
					p.Predict(a.pc)
					p.Update(a.pc, a.target)
				}
			}
			allocs := testing.AllocsPerRun(5, func() {
				for _, a := range stream {
					p.Predict(a.pc)
					p.Update(a.pc, a.target)
				}
			})
			if allocs != 0 {
				t.Errorf("%s: %v allocs per replay of %d branches, want 0",
					name, allocs, len(stream))
			}
		})
	}
}
