package core

// AttribState is the per-prediction attribution detail a predictor records
// for the most recent Predict/Update pair while attribution recording is
// enabled: the raw material of the event-tracing layer (internal/ptrace) and
// its miss classifier (internal/analysis). Recording is off by default — it
// costs a handful of stores per branch — and is switched on by the simulator
// when a run attaches an event sink.
type AttribState struct {
	// Pattern is the key the prediction probed the target table with (the
	// folded history pattern + branch address; a hash of the exact key in
	// full-precision mode; the word-aligned address for a BTB).
	Pattern uint64
	// Component is the hybrid component index whose prediction won the
	// confidence vote, -1 for non-hybrid predictors or when no component
	// predicted.
	Component int16
	// Conf is the predicting entry's confidence counter at probe time.
	Conf uint8
	// TableHit reports whether the predict-time probe found a live entry
	// (for hybrids: in the winning component's table).
	TableHit bool
	// NewEntry reports that the update allocated a fresh entry for Pattern.
	NewEntry bool
	// Evicted reports that the allocation displaced a live entry.
	Evicted bool
	// AltCorrect reports that a hybrid component other than the chosen one
	// predicted the resolved target correctly.
	AltCorrect bool
}

// Attributor is implemented by predictors that can report per-prediction
// attribution detail. SetAttribution(true) turns recording on; Attribution
// returns the state of the most recent Predict/Update pair and is only
// meaningful while recording is enabled and after a completed pair.
type Attributor interface {
	SetAttribution(on bool)
	Attribution() AttribState
}

// fnv64 hashes an exact (byte-string) table key into the 64-bit Pattern
// space (FNV-1a), so full-precision predictors report comparable patterns.
func fnv64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
