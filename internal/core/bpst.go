package core

import "fmt"

// BPSTHybrid selects between two component predictors with a branch
// predictor selection table ([McFar93], discussed in §6.1): a table of
// two-bit saturating counters indexed by branch address tracks which
// component has been more accurate for that branch. It is the coarser
// per-branch alternative to the paper's per-pattern confidence counters.
type BPSTHybrid struct {
	a, b Component
	sel  []uint8 // 2-bit counters; >= 2 selects component b
	mask uint32
	name string
}

// NewBPSTHybrid returns a BPST-selected hybrid with the given selector table
// size (a power of two; the selector is indexed by the word-aligned branch
// address).
func NewBPSTHybrid(a, b Component, selectorEntries int) (*BPSTHybrid, error) {
	if selectorEntries <= 0 || selectorEntries&(selectorEntries-1) != 0 {
		return nil, fmt.Errorf("core: BPST selector size must be a positive power of two, got %d", selectorEntries)
	}
	return &BPSTHybrid{
		a:    a,
		b:    b,
		sel:  make([]uint8, selectorEntries),
		mask: uint32(selectorEntries - 1),
		name: fmt.Sprintf("bpst(%s|%s)", a.Name(), b.Name()),
	}, nil
}

func (h *BPSTHybrid) idx(pc uint32) uint32 { return (pc >> 2) & h.mask }

// Predict implements Predictor: the selected component's prediction is used;
// if it has none, the other component's prediction is used instead.
func (h *BPSTHybrid) Predict(pc uint32) (uint32, bool) {
	first, second := h.a, h.b
	if h.sel[h.idx(pc)] >= 2 {
		first, second = h.b, h.a
	}
	if t, ok := first.Predict(pc); ok {
		return t, true
	}
	return second.Predict(pc)
}

// Update implements Predictor: both components train, and the selector
// counter moves toward the component that was correct when exactly one was.
func (h *BPSTHybrid) Update(pc, target uint32) {
	ta, oka := h.a.Predict(pc)
	tb, okb := h.b.Predict(pc)
	aCorrect := oka && ta == target
	bCorrect := okb && tb == target
	i := h.idx(pc)
	switch {
	case bCorrect && !aCorrect:
		if h.sel[i] < 3 {
			h.sel[i]++
		}
	case aCorrect && !bCorrect:
		if h.sel[i] > 0 {
			h.sel[i]--
		}
	}
	h.a.Update(pc, target)
	h.b.Update(pc, target)
}

// Name implements Predictor.
func (h *BPSTHybrid) Name() string { return h.name }

// Reset implements Resetter.
func (h *BPSTHybrid) Reset() {
	clear(h.sel)
	for _, c := range []Component{h.a, h.b} {
		if r, ok := c.(Resetter); ok {
			r.Reset()
		}
	}
}
