package core

import (
	"fmt"

	"github.com/oocsb/ibp/internal/table"
)

// BTB is a branch target buffer: the per-branch last-target predictor used
// by current processors (§3.1, Figure 1). It caches one target per branch
// address in a table of any of the organizations of internal/table; an
// unbounded table gives the paper's "ideal BTB".
//
// The update rule distinguishes the paper's two variants: a standard BTB
// (UpdateAlways) and BTB-2bc, which keeps its target until two consecutive
// mispredictions.
type BTB struct {
	tab  table.Bounded
	rule UpdateRule
	name string

	// Attribution recording (see core.Attributor); off by default.
	attrib bool
	att    AttribState
}

// NewBTB returns a BTB over the given table. A nil table means unbounded
// (the ideal, fully-associative BTB of Figure 2).
func NewBTB(tab table.Bounded, rule UpdateRule) *BTB {
	if tab == nil {
		tab = table.NewUnbounded64()
	}
	name := "btb"
	if rule == UpdateTwoMiss {
		name = "btb-2bc"
	}
	if tab.Capacity() >= 0 {
		name = fmt.Sprintf("%s[%s/%d]", name, tab.Kind(), tab.Capacity())
	}
	return &BTB{tab: tab, rule: rule, name: name}
}

// key maps the branch address to the table key (word-aligned addresses, so
// the two low bits are dropped).
func (b *BTB) key(pc uint32) uint64 { return uint64(pc >> 2) }

// probe looks up the branch's entry, recording attribution when enabled.
func (b *BTB) probe(pc uint32) *table.Entry {
	e := b.tab.Probe(b.key(pc))
	if b.attrib {
		b.att = AttribState{Pattern: b.key(pc), Component: -1, TableHit: e != nil}
		if e != nil {
			b.att.Conf = e.Conf
		}
	}
	return e
}

// Predict implements Predictor.
func (b *BTB) Predict(pc uint32) (uint32, bool) {
	e := b.probe(pc)
	if e == nil {
		return 0, false
	}
	return e.Target, true
}

// PredictConf implements Component, so a BTB can serve as a hybrid
// component (a BTB is the p=0 end of the path-length spectrum).
func (b *BTB) PredictConf(pc uint32) (uint32, uint8, bool) {
	e := b.probe(pc)
	if e == nil {
		return 0, 0, false
	}
	return e.Target, e.Conf, true
}

// Update implements Predictor: a single combined probe-or-insert walk trains
// the entry (the paper's hot loop previously paid a Probe in Predict and a
// second Probe here).
func (b *BTB) Update(pc, target uint32) {
	var ev0 uint64
	if b.attrib {
		_, ev0, _ = b.tab.Counts()
	}
	e, found := b.tab.ProbeOrInsert(b.key(pc))
	if !found {
		e.Target = target
		if b.attrib {
			b.att.NewEntry = true
			_, ev1, _ := b.tab.Counts()
			b.att.Evicted = ev1 > ev0
		}
		return
	}
	correct := applyTarget(e, target, b.rule)
	bumpConf(e, correct, confMax(2))
}

// SetAttribution implements Attributor.
func (b *BTB) SetAttribution(on bool) { b.attrib = on }

// Attribution implements Attributor.
func (b *BTB) Attribution() AttribState { return b.att }

// Name implements Predictor.
func (b *BTB) Name() string { return b.name }

// Reset implements Resetter.
func (b *BTB) Reset() { b.tab.Reset() }

// TableStats implements TableStatser.
func (b *BTB) TableStats() []table.Stats { return []table.Stats{b.tab.Stats()} }
