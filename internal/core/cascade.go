package core

import (
	"fmt"
	"strings"
)

// Cascade is a PPM-style predictor in the spirit of Chen, Coffey & Mudge
// [CCM96] (discussed in §7): an ordered bank of two-level components with
// strictly decreasing path lengths. Prediction uses the longest-path
// component that has a matching pattern, falling back to progressively
// shorter paths; the paper observes that a hybrid with different path
// lengths can mimic this behaviour, and this type exists to test that claim
// at equal hardware budget (experiment ext-ppm).
type Cascade struct {
	comps []*TwoLevel // longest path first
	name  string
}

// NewCascade builds a cascade from components with the given path lengths
// (deduplicated, sorted descending), each with its own table of the given
// kind and size.
func NewCascade(paths []int, tableKind string, entries int) (*Cascade, error) {
	if len(paths) < 2 {
		return nil, fmt.Errorf("core: cascade needs at least 2 path lengths, got %d", len(paths))
	}
	seen := make(map[int]bool, len(paths))
	ordered := make([]int, 0, len(paths))
	for _, p := range paths {
		if p < 0 {
			return nil, fmt.Errorf("core: negative path length %d", p)
		}
		if !seen[p] {
			seen[p] = true
			ordered = append(ordered, p)
		}
	}
	for i := 1; i < len(ordered); i++ { // insertion sort descending
		for j := i; j > 0 && ordered[j] > ordered[j-1]; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	c := &Cascade{}
	names := make([]string, 0, len(ordered))
	for _, p := range ordered {
		t, err := NewTwoLevel(Config{
			PathLength: p,
			Precision:  AutoPrecision,
			Scheme:     defaultScheme(tableKind),
			TableKind:  tableKind,
			Entries:    entries,
		})
		if err != nil {
			return nil, err
		}
		c.comps = append(c.comps, t)
		names = append(names, fmt.Sprintf("%d", p))
	}
	c.name = fmt.Sprintf("ppm[p=%s,%s/%d]", strings.Join(names, "."), tableKind, entries)
	return c, nil
}

// Predict implements Predictor: the first (longest-path) component with a
// prediction wins.
func (c *Cascade) Predict(pc uint32) (uint32, bool) {
	for _, comp := range c.comps {
		if t, ok := comp.Predict(pc); ok {
			return t, true
		}
	}
	return 0, false
}

// Update implements Predictor: all components train on every branch, as in
// a PPM model where every context order is updated.
func (c *Cascade) Update(pc, target uint32) {
	for _, comp := range c.comps {
		comp.Update(pc, target)
	}
}

// Name implements Predictor.
func (c *Cascade) Name() string { return c.name }

// Reset implements Resetter.
func (c *Cascade) Reset() {
	for _, comp := range c.comps {
		comp.Reset()
	}
}
