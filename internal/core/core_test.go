package core

import (
	"math/rand/v2"
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/table"
)

// access is one dynamic branch of a synthetic micro-stream.
type access struct {
	pc, target uint32
}

// run drives a predictor over the stream and returns (misses, total).
func run(p Predictor, stream []access) (int, int) {
	misses := 0
	for _, a := range stream {
		t, ok := p.Predict(a.pc)
		if !ok || t != a.target {
			misses++
		}
		p.Update(a.pc, a.target)
	}
	return misses, len(stream)
}

// repeat builds a stream of n cycles through the given target sequence at a
// single site.
func repeat(pc uint32, targets []uint32, n int) []access {
	out := make([]access, 0, n*len(targets))
	for i := 0; i < n; i++ {
		for _, t := range targets {
			out = append(out, access{pc, t})
		}
	}
	return out
}

func TestApplyTargetTwoMiss(t *testing.T) {
	e := &table.Entry{Target: 100}
	if !applyTarget(e, 100, UpdateTwoMiss) {
		t.Fatal("correct prediction reported as miss")
	}
	if applyTarget(e, 200, UpdateTwoMiss) {
		t.Fatal("wrong prediction reported as hit")
	}
	if e.Target != 100 || e.Hyst == 0 {
		t.Fatalf("first miss must keep target and set hysteresis: %+v", e)
	}
	applyTarget(e, 200, UpdateTwoMiss)
	if e.Target != 200 || e.Hyst != 0 {
		t.Fatalf("second consecutive miss must replace target: %+v", e)
	}
	// A hit in between clears the hysteresis.
	e = &table.Entry{Target: 100}
	applyTarget(e, 200, UpdateTwoMiss)
	applyTarget(e, 100, UpdateTwoMiss)
	applyTarget(e, 200, UpdateTwoMiss)
	if e.Target != 100 {
		t.Fatalf("isolated misses must not replace target: %+v", e)
	}
}

func TestApplyTargetAlways(t *testing.T) {
	e := &table.Entry{Target: 100}
	applyTarget(e, 200, UpdateAlways)
	if e.Target != 200 {
		t.Fatalf("always rule must replace immediately: %+v", e)
	}
}

func TestBumpConf(t *testing.T) {
	e := &table.Entry{}
	max := confMax(2)
	if max != 3 {
		t.Fatalf("confMax(2) = %d", max)
	}
	for i := 0; i < 10; i++ {
		bumpConf(e, true, max)
	}
	if e.Conf != 3 {
		t.Fatalf("Conf saturated at %d, want 3", e.Conf)
	}
	for i := 0; i < 10; i++ {
		bumpConf(e, false, max)
	}
	if e.Conf != 0 {
		t.Fatalf("Conf floored at %d, want 0", e.Conf)
	}
	if confMax(0) != 3 || confMax(1) != 1 || confMax(8) != 255 || confMax(99) != 255 {
		t.Errorf("confMax bounds: %d %d %d %d", confMax(0), confMax(1), confMax(8), confMax(99))
	}
}

func TestUpdateRuleString(t *testing.T) {
	if UpdateTwoMiss.String() != "2bc" || UpdateAlways.String() != "always" {
		t.Error("UpdateRule names")
	}
	if !strings.Contains(UpdateRule(7).String(), "7") {
		t.Error("unknown rule stringer")
	}
}

func TestBTBMonomorphic(t *testing.T) {
	// A monomorphic branch is perfectly predicted after one cold miss.
	for _, rule := range []UpdateRule{UpdateAlways, UpdateTwoMiss} {
		b := NewBTB(nil, rule)
		misses, total := run(b, repeat(0x1000, []uint32{0x2000}, 100))
		if misses != 1 {
			t.Errorf("rule %v: %d/%d misses, want 1", rule, misses, total)
		}
	}
}

func TestBTBAlternatingDiscriminatesRules(t *testing.T) {
	// On a strictly alternating branch, the standard BTB mispredicts
	// every execution while BTB-2bc holds one target and gets half right
	// (the polymorphic-but-dominated pattern of §3.1).
	stream := repeat(0x1000, []uint32{0x2000, 0x3000}, 100)
	always := NewBTB(nil, UpdateAlways)
	twobc := NewBTB(nil, UpdateTwoMiss)
	mAlways, total := run(always, stream)
	mTwoBC, _ := run(twobc, stream)
	if mAlways < total-2 {
		t.Errorf("standard BTB: %d/%d misses, want ~all", mAlways, total)
	}
	if mTwoBC > total/2+2 {
		t.Errorf("BTB-2bc: %d/%d misses, want ~half", mTwoBC, total)
	}
}

func TestBTBBoundedEviction(t *testing.T) {
	// More hot branches than entries: a tiny BTB must keep missing.
	b := NewBTB(table.NewFullAssoc(2), UpdateTwoMiss)
	var stream []access
	for i := 0; i < 50; i++ {
		for site := uint32(0); site < 4; site++ {
			stream = append(stream, access{0x1000 + site*4, 0x2000 + site*0x100})
		}
	}
	misses, total := run(b, stream)
	if misses != total {
		t.Errorf("2-entry BTB over 4 round-robin sites: %d/%d misses, want all (LRU thrash)", misses, total)
	}
	if !strings.Contains(b.Name(), "fullassoc/2") {
		t.Errorf("Name = %q", b.Name())
	}
}

func TestBTBNames(t *testing.T) {
	if got := NewBTB(nil, UpdateAlways).Name(); got != "btb" {
		t.Errorf("Name = %q", got)
	}
	if got := NewBTB(nil, UpdateTwoMiss).Name(); got != "btb-2bc" {
		t.Errorf("Name = %q", got)
	}
}

func TestBTBReset(t *testing.T) {
	b := NewBTB(nil, UpdateTwoMiss)
	b.Update(0x1000, 0x2000)
	b.Reset()
	if _, ok := b.Predict(0x1000); ok {
		t.Error("prediction survived Reset")
	}
}

func mustTL(t *testing.T, cfg Config) *TwoLevel {
	t.Helper()
	tl, err := NewTwoLevel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestTwoLevelP0EquivalentToBTB(t *testing.T) {
	// Path length 0 reduces the two-level predictor to a BTB (§3.2.3).
	stream := repeat(0x1000, []uint32{0x2000, 0x3000, 0x2000, 0x2000}, 50)
	tl := mustTL(t, Config{PathLength: 0, Precision: AutoPrecision, TableKind: "unbounded"})
	btb := NewBTB(nil, UpdateTwoMiss)
	m1, _ := run(tl, stream)
	m2, _ := run(btb, stream)
	if m1 != m2 {
		t.Errorf("p=0 two-level misses %d, BTB misses %d", m1, m2)
	}
}

func TestTwoLevelLearnsCycle(t *testing.T) {
	// A period-3 cycle with distinct targets is perfectly predicted by
	// p=1 once the table is warm; a BTB keeps missing.
	stream := repeat(0x1000, []uint32{0x2000, 0x3000, 0x4000}, 100)
	tl := mustTL(t, Config{PathLength: 1, Precision: AutoPrecision})
	btb := NewBTB(nil, UpdateTwoMiss)
	mTL, total := run(tl, stream)
	mBTB, _ := run(btb, stream)
	if mTL > 6 {
		t.Errorf("two-level p=1: %d/%d misses on period-3 cycle", mTL, total)
	}
	if mBTB < total/2 {
		t.Errorf("BTB unexpectedly good on cycle: %d/%d", mBTB, total)
	}
}

func TestTwoLevelPathLengthDisambiguates(t *testing.T) {
	// Cycle A,B,A,C: after target A the next target alternates B/C, so
	// p=1 stays ambiguous on half the steps while p=2 resolves the cycle
	// completely (§3.2.3: longer paths capture longer regularities).
	stream := repeat(0x1000, []uint32{0x2000, 0x3000, 0x2000, 0x4000}, 100)
	p1 := mustTL(t, Config{PathLength: 1, Precision: AutoPrecision})
	p2 := mustTL(t, Config{PathLength: 2, Precision: AutoPrecision})
	m1, total := run(p1, stream)
	m2, _ := run(p2, stream)
	if m2 > 8 {
		t.Errorf("p=2: %d/%d misses, want near zero", m2, total)
	}
	if m1 < total/8 {
		t.Errorf("p=1: %d/%d misses, expected substantial ambiguity", m1, total)
	}
	if m2 >= m1 {
		t.Errorf("p=2 (%d) not better than p=1 (%d)", m2, m1)
	}
}

func TestTwoLevelGlobalBeatsPerBranchOnCorrelation(t *testing.T) {
	// Site Y takes pseudo-random targets; site X copies Y's choice. A
	// global history predicts X perfectly from Y's target; a per-branch
	// history sees only X's own aperiodic stream (§3.2.1).
	rng := rand.New(rand.NewPCG(31, 32))
	var stream []access
	for i := 0; i < 2000; i++ {
		yt := uint32(0x2000 + rng.IntN(8)*0x100)
		stream = append(stream, access{0x1000, yt})       // site Y
		stream = append(stream, access{0x1004, yt + 0x4}) // site X follows Y
	}
	global := mustTL(t, Config{PathLength: 1, HistShare: 32, Precision: AutoPrecision})
	perBranch := mustTL(t, Config{PathLength: 1, HistShare: 2, Precision: AutoPrecision})
	mG, total := run(global, stream)
	mP, _ := run(perBranch, stream)
	// Global: Y unpredictable (~7/8 miss), X perfect => just under half.
	// Per-branch: both unpredictable => near all.
	if mG >= mP {
		t.Errorf("global %d vs per-branch %d misses (total %d): sharing did not help", mG, mP, total)
	}
	if mG > total*6/10 {
		t.Errorf("global misses %d/%d, want < 60%%", mG, total)
	}
}

func TestTwoLevelTableSharingInterference(t *testing.T) {
	// Full-precision mode: with one globally shared history table (h=32)
	// two branches with identical history compete for one entry; with
	// per-branch tables (h=2) they do not (§3.2.2).
	var stream []access
	for i := 0; i < 200; i++ {
		stream = append(stream, access{0x1000, 0x2000})
		stream = append(stream, access{0x1004, 0x3000})
	}
	shared := mustTL(t, Config{PathLength: 0, Precision: 0, TableKind: "exact", TableShare: 32})
	perBr := mustTL(t, Config{PathLength: 0, Precision: 0, TableKind: "exact", TableShare: 2})
	mS, total := run(shared, stream)
	mP, _ := run(perBr, stream)
	if mP > 2 {
		t.Errorf("per-branch tables: %d/%d misses, want cold misses only", mP, total)
	}
	if mS <= mP {
		t.Errorf("shared table (%d misses) should interfere vs per-branch (%d)", mS, mP)
	}
}

func TestTwoLevelExactMatchesCompressedWhenLossless(t *testing.T) {
	// With few distinct targets whose identifying bits sit inside the
	// selected field, compression loses nothing: 8 bits at start 2 cover
	// targets 0x2000..0x23FC. p=3, b=8, xor keys vs exact keys must
	// predict identically on a deterministic cycle.
	targets := []uint32{0x2000, 0x2004, 0x2008, 0x200C, 0x2010}
	stream := repeat(0x1000, targets, 200)
	exact := mustTL(t, Config{PathLength: 3, Precision: 0, TableKind: "exact"})
	comp := mustTL(t, Config{PathLength: 3, Precision: 8})
	mE, _ := run(exact, stream)
	mC, _ := run(comp, stream)
	if mE != mC {
		t.Errorf("exact %d vs compressed %d misses", mE, mC)
	}
}

func TestTwoLevelPrecisionLoss(t *testing.T) {
	// Targets that differ only above the selected bits alias under heavy
	// compression: two targets 1<<20 apart are identical in bits [2..10),
	// so a 1-bit-per-target pattern cannot distinguish the paths.
	a, b := uint32(0x100000), uint32(0x200000)
	// Cycle: a a b b — after (a,a) comes b, after (a,b)... with p=2.
	stream := repeat(0x1000, []uint32{a, a, b, b}, 150)
	fine := mustTL(t, Config{PathLength: 2, Precision: 0, TableKind: "exact"})
	coarse := mustTL(t, Config{PathLength: 2, Precision: 2, StartBit: 2})
	mF, _ := run(fine, stream)
	mC, total := run(coarse, stream)
	if mF > 8 {
		t.Errorf("full precision: %d/%d misses", mF, total)
	}
	if mC <= mF {
		t.Errorf("coarse patterns (%d misses) should alias vs full precision (%d)", mC, mF)
	}
}

func TestTwoLevelBoundedCapacityMisses(t *testing.T) {
	// The same workload on a 16-entry vs unbounded table: eviction causes
	// extra misses (§5.1). Use many sites with distinct targets.
	rng := rand.New(rand.NewPCG(41, 42))
	var stream []access
	for i := 0; i < 4000; i++ {
		site := uint32(rng.IntN(64))
		stream = append(stream, access{0x1000 + site*4, 0x8000 + site*0x40})
	}
	small := mustTL(t, Config{PathLength: 0, Precision: AutoPrecision, TableKind: "fullassoc", Entries: 16})
	big := mustTL(t, Config{PathLength: 0, Precision: AutoPrecision, TableKind: "fullassoc", Entries: 128})
	mS, _ := run(small, stream)
	mB, _ := run(big, stream)
	if mS <= mB {
		t.Errorf("16-entry (%d misses) should trail 128-entry (%d)", mS, mB)
	}
	if mB > 64+16 {
		t.Errorf("128-entry table: %d misses, want ~64 cold misses", mB)
	}
}

func TestTwoLevelInterleaveBeatsConcatOneWay(t *testing.T) {
	// The Figure 13 pathology: with p=2 and a 1-way table, patterns
	// t2·t1 and t3·t1 share the index under concatenation and conflict;
	// interleaving separates them. Alternate two period-2 sub-cycles
	// sharing their most recent target.
	t1, t2, t3 := uint32(0x2000), uint32(0x2004), uint32(0x2008)
	// Sequence: t1 t2 t1 t3 ... at one site; predictions for the step
	// after t1 depend on (t2|t3) two back.
	stream := repeat(0x1000, []uint32{t1, t2, t1, t3}, 300)
	concat := mustTL(t, Config{PathLength: 2, Precision: AutoPrecision, Scheme: bits.Concat, TableKind: "assoc1", Entries: 4096})
	il := mustTL(t, Config{PathLength: 2, Precision: AutoPrecision, Scheme: bits.Reverse, TableKind: "assoc1", Entries: 4096})
	mC, _ := run(concat, stream)
	mI, total := run(il, stream)
	if mI > total/10 {
		t.Errorf("interleaved: %d/%d misses", mI, total)
	}
	// The concat predictor's conflict behaviour depends on which index
	// bits collide; it must be at least as bad as interleaved here.
	if mC < mI {
		t.Errorf("concat (%d) beat interleaved (%d) on the aliasing stream", mC, mI)
	}
}

func TestTwoLevelTaglessAlwaysAnswers(t *testing.T) {
	tl := mustTL(t, Config{PathLength: 1, Precision: AutoPrecision, Scheme: bits.Reverse, TableKind: "tagless", Entries: 16})
	tl.Update(0x1000, 0x2000)
	// Any pc mapping to the written slot now yields a prediction even
	// with a different key.
	hits := 0
	for pc := uint32(0x1000); pc < 0x1100; pc += 4 {
		if _, ok := tl.Predict(pc); ok {
			hits++
		}
	}
	if hits == 0 {
		t.Error("tagless predictor returned no aliased predictions")
	}
}

func TestTwoLevelUpdateRuleAblation(t *testing.T) {
	// A dominant target with occasional isolated deviations: 2bc keeps
	// the dominant target, always-update loses it for one extra access
	// (§3.2: ignoring a stand-alone miss is a good strategy).
	var targets []uint32
	for i := 0; i < 9; i++ {
		targets = append(targets, 0x2000)
	}
	targets = append(targets, 0x3000)
	// Use a BTB-shaped predictor (p=0) so history plays no role.
	stream := repeat(0x1000, targets, 60)
	twobc := mustTL(t, Config{PathLength: 0, Precision: AutoPrecision, Update: UpdateTwoMiss})
	always := mustTL(t, Config{PathLength: 0, Precision: AutoPrecision, Update: UpdateAlways})
	m2, _ := run(twobc, stream)
	mA, _ := run(always, stream)
	if m2 >= mA {
		t.Errorf("2bc (%d misses) should beat always-update (%d)", m2, mA)
	}
}

func TestTwoLevelIncludeCond(t *testing.T) {
	tl := mustTL(t, Config{PathLength: 2, Precision: AutoPrecision, IncludeCond: true})
	// Train a perfect p=2 cycle, then inject conditional targets and
	// verify predictions are perturbed (the history was diluted).
	stream := repeat(0x1000, []uint32{0x2000, 0x3000, 0x4000}, 50)
	run(tl, stream)
	before, okB := tl.Predict(0x1000)
	tl.ObserveCond(0x5000, 0x6000, true)
	tl.ObserveCond(0x5004, 0x7000, true)
	after, okA := tl.Predict(0x1000)
	if okB && okA && before == after {
		t.Error("conditional targets did not shift the history")
	}
	// Not-taken conditionals must not shift the history.
	tl2 := mustTL(t, Config{PathLength: 2, Precision: AutoPrecision, IncludeCond: true})
	run(tl2, stream)
	b2, _ := tl2.Predict(0x1000)
	tl2.ObserveCond(0x5000, 0, false)
	a2, _ := tl2.Predict(0x1000)
	if b2 != a2 {
		t.Error("not-taken conditional shifted the history")
	}
	// Predictors without the variation ignore conditionals entirely.
	tl3 := mustTL(t, Config{PathLength: 2, Precision: AutoPrecision})
	run(tl3, stream)
	b3, _ := tl3.Predict(0x1000)
	tl3.ObserveCond(0x5000, 0x6000, true)
	a3, _ := tl3.Predict(0x1000)
	if b3 != a3 {
		t.Error("IncludeCond=false predictor consumed a conditional")
	}
}

func TestTwoLevelIncludeAddress(t *testing.T) {
	// With IncludeAddress, each branch consumes two history slots, so a
	// p=2 predictor effectively sees only one branch back.
	tl := mustTL(t, Config{PathLength: 2, Precision: AutoPrecision, IncludeAddress: true})
	m, total := run(tl, repeat(0x1000, []uint32{0x2000, 0x3000, 0x2000, 0x4000}, 100))
	plain := mustTL(t, Config{PathLength: 2, Precision: AutoPrecision})
	mPlain, _ := run(plain, repeat(0x1000, []uint32{0x2000, 0x3000, 0x2000, 0x4000}, 100))
	if m <= mPlain {
		t.Errorf("address-diluted history (%d/%d) should trail targets-only (%d)", m, total, mPlain)
	}
}

func TestTwoLevelResetAndAccessors(t *testing.T) {
	tl := mustTL(t, Config{PathLength: 2, Precision: AutoPrecision, Scheme: bits.Reverse, TableKind: "assoc2", Entries: 64})
	run(tl, repeat(0x1000, []uint32{0x2000, 0x3000}, 50))
	if u := tl.Utilization(); u <= 0 {
		t.Errorf("Utilization = %v", u)
	}
	tl.Reset()
	if u := tl.Utilization(); u != 0 {
		t.Errorf("Utilization after Reset = %v", u)
	}
	if _, ok := tl.Predict(0x1000); ok {
		t.Error("prediction survived Reset")
	}
	if tl.Patterns() != -1 {
		t.Errorf("bounded Patterns = %d, want -1", tl.Patterns())
	}
	un := mustTL(t, Config{PathLength: 2, Precision: AutoPrecision})
	run(un, repeat(0x1000, []uint32{0x2000, 0x3000, 0x4000}, 20))
	if un.Patterns() <= 0 {
		t.Errorf("unbounded Patterns = %d", un.Patterns())
	}
	ex := mustTL(t, Config{PathLength: 2, Precision: 0, TableKind: "exact"})
	run(ex, repeat(0x1000, []uint32{0x2000, 0x3000, 0x4000}, 20))
	if ex.Patterns() <= 0 {
		t.Errorf("exact Patterns = %d", ex.Patterns())
	}
	if ex.Utilization() != 1 {
		t.Errorf("exact Utilization = %v", ex.Utilization())
	}
	ex.Reset()
	if ex.Patterns() != 0 {
		t.Errorf("exact Patterns after Reset = %d", ex.Patterns())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{PathLength: -1},
		{PathLength: 65},
		{PathLength: 4, Precision: 12}, // 48-bit pattern
		{PathLength: 2, Precision: 0, TableKind: "tagless", Entries: 64},
		{PathLength: 2, Precision: 40, TableKind: "exact"},
		{PathLength: 2, Precision: 8, StartBit: 1},
		{PathLength: 2, Precision: 8, StartBit: 40},
		{PathLength: 2, Precision: 8, TableKind: "tagless", Entries: 100},
		{PathLength: 2, Precision: 8, TableKind: "assoc3", Entries: 64},
		{PathLength: 2, Precision: 8, TableKind: "nope", Entries: 64},
		{PathLength: 2, Precision: 8, ConfBits: 99},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
		if _, err := NewTwoLevel(cfg); err == nil {
			t.Errorf("NewTwoLevel accepted config %d", i)
		}
	}
	good := []Config{
		{},
		{PathLength: 8},
		{PathLength: 6, Precision: AutoPrecision, TableKind: "assoc4", Entries: 1024, Scheme: bits.PingPong},
		{PathLength: 12, Precision: AutoPrecision, TableKind: "tagless", Entries: 128},
		{PathLength: 3, Precision: 8, KeyOp: 1, TableKind: "fullassoc", Entries: 256},
		{PathLength: 12, Precision: 8, TableKind: "exact"}, // §4.1 study: wide exact keys
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %d rejected: %v", i, err)
		}
	}
}

func TestConfigDefaultsAndName(t *testing.T) {
	cfg := Config{PathLength: 6, Precision: AutoPrecision, TableKind: "assoc4", Entries: 2048, Scheme: bits.Reverse}.Defaults()
	if cfg.Precision != 4 {
		t.Errorf("auto precision = %d, want 4", cfg.Precision)
	}
	if cfg.HistShare != 32 || cfg.TableShare != 2 || cfg.StartBit != 2 || cfg.ConfBits != 2 {
		t.Errorf("defaults: %+v", cfg)
	}
	name := cfg.Name()
	for _, frag := range []string{"p=6", "b=4", "reverse", "xor", "assoc4/2048"} {
		if !strings.Contains(name, frag) {
			t.Errorf("Name %q missing %q", name, frag)
		}
	}
	exact := Config{PathLength: 8}.Defaults()
	if exact.TableKind != "exact" || exact.Precision != 0 {
		t.Errorf("zero-value defaults: %+v", exact)
	}
	if !strings.Contains(exact.Name(), "full") {
		t.Errorf("exact Name %q", exact.Name())
	}
}

func TestMustTwoLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTwoLevel did not panic on bad config")
		}
	}()
	MustTwoLevel(Config{PathLength: -3})
}
