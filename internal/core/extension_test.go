package core

import (
	"strings"
	"testing"
)

func TestNextBranchPredictsTargetsLikeTwoLevel(t *testing.T) {
	stream := repeat(0x1000, []uint32{0x2000, 0x2004, 0x2000, 0x2008}, 200)
	nb, err := NewNextBranch(2, "assoc4", 1024)
	if err != nil {
		t.Fatal(err)
	}
	m, total := run(nb, stream)
	if m > total/10 {
		t.Errorf("next-branch target prediction: %d/%d misses", m, total)
	}
	if !strings.HasPrefix(nb.Name(), "nextbranch[p=2") {
		t.Errorf("Name = %q", nb.Name())
	}
}

func TestNextBranchPredictsNextSite(t *testing.T) {
	// Two sites strictly alternating: after site A the next indirect
	// branch is always site B and vice versa.
	nb, err := NewNextBranch(1, "assoc4", 256)
	if err != nil {
		t.Fatal(err)
	}
	var stream []access
	for i := 0; i < 200; i++ {
		stream = append(stream, access{0x1000, 0x2000 + uint32(i%3)*4})
		stream = append(stream, access{0x1100, 0x3000 + uint32(i%2)*4})
	}
	misses := 0
	for i, a := range stream {
		if next, ok := nb.PredictNext(a.pc); i > 20 {
			var want uint32 = 0x1000
			if a.pc == 0x1000 {
				want = 0x1100
			}
			if !ok || next != want {
				misses++
			}
		}
		nb.Predict(a.pc)
		nb.Update(a.pc, a.target)
	}
	if misses > 10 {
		t.Errorf("next-site prediction missed %d times on alternating sites", misses)
	}
	nb.Reset()
	if _, ok := nb.PredictNext(0x1000); ok {
		t.Error("next prediction survived Reset")
	}
}

func TestNextBranchErrors(t *testing.T) {
	if _, err := NewNextBranch(-1, "assoc2", 64); err == nil {
		t.Error("negative path accepted")
	}
	if _, err := NewNextBranch(2, "bogus", 64); err == nil {
		t.Error("bad table accepted")
	}
	if _, err := NewNextBranch(2, "exact", 0); err == nil {
		t.Error("exact table accepted")
	}
}

func TestITTAGELearnsShortCycle(t *testing.T) {
	it, err := NewITTAGE(4, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	stream := repeat(0x1000, []uint32{0x2000, 0x2004, 0x2000, 0x2008}, 300)
	m, total := run(it, stream)
	if m > total/10 {
		t.Errorf("ittage on period-4 cycle: %d/%d misses", m, total)
	}
}

func TestITTAGEUsesLongHistories(t *testing.T) {
	// A period-12 cycle with heavy repetition needs deep history; the
	// geometric banks should capture it where a short fixed path cannot.
	cycle := make([]uint32, 12)
	for i := range cycle {
		if i%2 == 0 {
			cycle[i] = 0x2000
		} else {
			cycle[i] = 0x2100 + uint32(i)*4
		}
	}
	stream := repeat(0x1000, cycle, 400)
	it, err := NewITTAGE(5, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	mIT, total := run(it, stream)
	short := MustTwoLevel(Config{PathLength: 1, Precision: AutoPrecision})
	mShort, _ := run(short, stream)
	t.Logf("ittage=%d short=%d total=%d", mIT, mShort, total)
	if mIT >= mShort {
		t.Errorf("ittage (%d) should beat p=1 (%d) on a deep cycle", mIT, mShort)
	}
	if mIT > total/5 {
		t.Errorf("ittage misses %d/%d on deterministic cycle", mIT, total)
	}
}

func TestITTAGEAdaptsAcrossPhases(t *testing.T) {
	// Alternate two behaviours at one site; the allocator must recover
	// after each phase flip.
	it, err := NewITTAGE(4, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	var stream []access
	for phase := 0; phase < 10; phase++ {
		tgt := uint32(0x2000 + phase%2*0x40)
		for i := 0; i < 200; i++ {
			stream = append(stream, access{0x1000, tgt})
		}
	}
	m, total := run(it, stream)
	if m > total/10 {
		t.Errorf("ittage phase adaptation: %d/%d misses", m, total)
	}
	it.Reset()
	if _, ok := it.Predict(0x1000); ok {
		t.Error("prediction survived Reset")
	}
}

func TestITTAGEStorageAndErrors(t *testing.T) {
	it, err := NewITTAGE(4, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := it.Storage(); got != 4*256+512 {
		t.Errorf("Storage = %d", got)
	}
	if !strings.HasPrefix(it.Name(), "ittage[4x256") {
		t.Errorf("Name = %q", it.Name())
	}
	for _, c := range []struct{ banks, entries, hist int }{
		{0, 64, 2}, {20, 64, 2}, {3, 100, 2}, {3, 0, 2}, {3, 64, 0},
	} {
		if _, err := NewITTAGE(c.banks, c.entries, c.hist); err == nil {
			t.Errorf("NewITTAGE(%+v) accepted", c)
		}
	}
}

func TestITTAGEBeatsBTBOnMixedStream(t *testing.T) {
	stream := mixedStream(6000, 31)
	it, err := NewITTAGE(5, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	mIT, _ := run(it, stream)
	btb := NewBTB(nil, UpdateTwoMiss)
	mBTB, total := run(btb, stream)
	t.Logf("ittage=%d btb=%d total=%d", mIT, mBTB, total)
	if mIT >= mBTB {
		t.Errorf("ittage (%d) should beat BTB (%d)", mIT, mBTB)
	}
}

func TestDualPathSizes(t *testing.T) {
	h, err := NewDualPathSizes(3, 2048, 1, 256, "assoc4")
	if err != nil {
		t.Fatal(err)
	}
	m, total := run(h, repeat(0x1000, []uint32{0x2000, 0x2004, 0x2000, 0x2008}, 200))
	if m > total/10 {
		t.Errorf("uneven hybrid: %d/%d misses", m, total)
	}
	if _, err := NewDualPathSizes(3, 0, 1, 256, "assoc4"); err == nil {
		t.Error("zero-size component accepted")
	}
	if _, err := NewDualPathSizes(3, 64, 1, 64, "bogus"); err == nil {
		t.Error("bad table kind accepted")
	}
}
