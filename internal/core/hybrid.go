package core

import (
	"fmt"
	"strings"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/table"
)

// Component is a predictor usable inside a hybrid: it exposes the confidence
// of its prediction so the metapredictor can choose between components
// (§6.1).
type Component interface {
	Predictor
	// PredictConf returns the component's prediction together with the
	// value of the predicting entry's confidence counter.
	PredictConf(pc uint32) (target uint32, conf uint8, ok bool)
}

// Hybrid combines two or more component predictors with per-entry confidence
// metaprediction (§6): on each access every component predicts, and the
// target with the highest confidence wins; ties are broken by component
// order (earlier components win). All components train on every branch.
//
// The paper evaluates two-component hybrids of equal table size and
// different path lengths; NewHybrid accepts any number of components, which
// also covers the three-component extension of §8.1.
type Hybrid struct {
	comps []Component
	name  string

	// Attribution recording (see core.Attributor); off by default. While
	// enabled, Predict keeps every component's prediction in the
	// preallocated attPred/attOK so Update can detect metapredictor
	// mis-steers (a non-chosen component that was right).
	attrib  bool
	att     AttribState
	attPred []uint32
	attOK   []bool
	// attComp is the chosen component's attribution view for the current
	// Predict→Update pair, fetched lazily in Attribution() so per-record
	// cost stays a pointer store (the component's own lazy work — pattern
	// hashing — then only happens for records someone asks about).
	attComp Attributor
}

// NewHybrid returns a hybrid over the given components, with earlier
// components winning confidence ties.
func NewHybrid(comps ...Component) (*Hybrid, error) {
	if len(comps) < 2 {
		return nil, fmt.Errorf("core: hybrid needs at least 2 components, got %d", len(comps))
	}
	names := make([]string, len(comps))
	for i, c := range comps {
		names[i] = c.Name()
	}
	return &Hybrid{comps: comps, name: "hybrid(" + strings.Join(names, "+") + ")"}, nil
}

// MustHybrid is NewHybrid for statically-known component lists.
func MustHybrid(comps ...Component) *Hybrid {
	h, err := NewHybrid(comps...)
	if err != nil {
		panic(err)
	}
	return h
}

// Predict implements Predictor.
func (h *Hybrid) Predict(pc uint32) (uint32, bool) {
	var (
		best     uint32
		bestConf int = -1
	)
	if !h.attrib {
		for _, c := range h.comps {
			if t, conf, ok := c.PredictConf(pc); ok && int(conf) > bestConf {
				best, bestConf = t, int(conf)
			}
		}
		return best, bestConf >= 0
	}
	chosen := -1
	for i, c := range h.comps {
		t, conf, ok := c.PredictConf(pc)
		h.attPred[i], h.attOK[i] = t, ok
		if ok && int(conf) > bestConf {
			best, bestConf, chosen = t, int(conf), i
		}
	}
	h.att = AttribState{Component: int16(chosen)}
	h.attComp = nil
	if chosen >= 0 {
		h.att.Conf = uint8(bestConf)
		h.att.TableHit = true
		if a, ok := h.comps[chosen].(Attributor); ok {
			h.attComp = a
		}
	}
	return best, bestConf >= 0
}

// Update implements Predictor: every component resolves the branch. With
// attribution enabled it additionally records whether a non-chosen component
// had the right target (the metapredictor mis-steer signal); how the chosen
// component's table moved is read lazily by Attribution.
func (h *Hybrid) Update(pc, target uint32) {
	for _, c := range h.comps {
		c.Update(pc, target)
	}
	if !h.attrib {
		return
	}
	chosen := int(h.att.Component)
	for i := range h.comps {
		if i != chosen && h.attOK[i] && h.attPred[i] == target {
			h.att.AltCorrect = true
			break
		}
	}
}

// SetAttribution implements Attributor, propagating to every component that
// records attribution itself.
func (h *Hybrid) SetAttribution(on bool) {
	h.attrib = on
	if on && h.attPred == nil {
		h.attPred = make([]uint32, len(h.comps))
		h.attOK = make([]bool, len(h.comps))
	}
	for _, c := range h.comps {
		if a, ok := c.(Attributor); ok {
			a.SetAttribution(on)
		}
	}
}

// Attribution implements Attributor. The chosen component's detail is
// merged here, lazily — its attribution state stays valid until the next
// Predict, so a caller asking right after Update sees the pair's view.
func (h *Hybrid) Attribution() AttribState {
	if h.attComp != nil {
		ca := h.attComp.Attribution()
		h.att.Pattern, h.att.TableHit = ca.Pattern, ca.TableHit
		h.att.NewEntry, h.att.Evicted = ca.NewEntry, ca.Evicted
		h.attComp = nil
	}
	return h.att
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return h.name }

// Reset implements Resetter.
func (h *Hybrid) Reset() {
	for _, c := range h.comps {
		if r, ok := c.(Resetter); ok {
			r.Reset()
		}
	}
}

// TableStats implements TableStatser: the concatenation of every component's
// table stats, in component order.
func (h *Hybrid) TableStats() []table.Stats {
	var out []table.Stats
	for _, c := range h.comps {
		if ts, ok := c.(TableStatser); ok {
			out = append(out, ts.TableStats()...)
		}
	}
	return out
}

// NewDualPath builds the paper's canonical hybrid: two two-level components
// with path lengths p1 and p2, equal table kind and size, 2-bit confidence
// counters, and the §4–§5 default key construction. The p1 component wins
// confidence ties.
func NewDualPath(p1, p2 int, tableKind string, entries int) (*Hybrid, error) {
	mk := func(p int) (*TwoLevel, error) {
		return NewTwoLevel(Config{
			PathLength: p,
			Precision:  AutoPrecision,
			Scheme:     defaultScheme(tableKind),
			TableKind:  tableKind,
			Entries:    entries,
		})
	}
	a, err := mk(p1)
	if err != nil {
		return nil, err
	}
	b, err := mk(p2)
	if err != nil {
		return nil, err
	}
	return NewHybrid(a, b)
}

// NewDualPathSizes is the §8.1 variant with unequal component sizes: the
// short-path component adapts fast and needs few entries, so most of the
// budget can go to the long-path component (or vice versa).
func NewDualPathSizes(p1, entries1, p2, entries2 int, tableKind string) (*Hybrid, error) {
	mk := func(p, entries int) (*TwoLevel, error) {
		return NewTwoLevel(Config{
			PathLength: p,
			Precision:  AutoPrecision,
			Scheme:     defaultScheme(tableKind),
			TableKind:  tableKind,
			Entries:    entries,
		})
	}
	a, err := mk(p1, entries1)
	if err != nil {
		return nil, err
	}
	b, err := mk(p2, entries2)
	if err != nil {
		return nil, err
	}
	return NewHybrid(a, b)
}

// defaultScheme picks the pattern layout the paper uses for each table
// organization: reverse interleaving for index-based tables, concatenation
// where there is no index to protect (§5.2.1 applies only to limited
// associativity).
func defaultScheme(tableKind string) bits.Scheme {
	switch tableKind {
	case "exact", "unbounded", "fullassoc":
		return bits.Concat
	}
	return bits.Reverse
}
