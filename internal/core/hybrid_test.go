package core

import (
	"math/rand/v2"
	"strings"
	"testing"
)

// mixedStream builds the canonical hybrid test workload: site L runs a
// period-6 cycle with a repeated target (needs a long path to disambiguate),
// site M's target is a deterministic function of the last two targets but is
// surrounded by noise from site N (so long paths see mostly-unique patterns
// and never warm up), and site N is pseudo-random (unpredictable for
// everyone).
func mixedStream(n int, seed uint64) []access {
	rng := rand.New(rand.NewPCG(seed, seed^0xABCD))
	cycleL := []uint32{0x2000, 0x2004, 0x2000, 0x2008, 0x2000, 0x200C}
	li := 0
	var out []access
	for len(out) < n {
		// Noise branch: 64 possible targets, uniformly random.
		nt := uint32(0x8000 + rng.IntN(64)*0x40)
		out = append(out, access{0x1008, nt})
		// Correlated branch M: copies the noise target's low field.
		out = append(out, access{0x1004, 0x4000 + (nt & 0xFC0)})
		// Long-cycle branch L.
		out = append(out, access{0x1000, cycleL[li%len(cycleL)]})
		li++
	}
	return out[:n]
}

func TestHybridBeatsBothComponents(t *testing.T) {
	stream := mixedStream(6000, 77)
	mk := func(p int) *TwoLevel {
		return MustTwoLevel(Config{PathLength: p, Precision: AutoPrecision})
	}
	short, long := mk(2), mk(8)
	mShort, total := run(short, stream)
	mLong, _ := run(long, stream)
	hyb := MustHybrid(mk(2), mk(8))
	mHyb, _ := run(hyb, stream)
	t.Logf("short=%d long=%d hybrid=%d total=%d", mShort, mLong, mHyb, total)
	if mHyb >= mShort || mHyb >= mLong {
		t.Errorf("hybrid (%d) did not beat components (short %d, long %d)", mHyb, mShort, mLong)
	}
}

func TestHybridTieBreakOrder(t *testing.T) {
	// Two fake components with equal confidence and different targets:
	// the earlier component must win the tie.
	a := &fakeComponent{target: 0x1111, conf: 2, ok: true}
	b := &fakeComponent{target: 0x2222, conf: 2, ok: true}
	h := MustHybrid(a, b)
	if got, ok := h.Predict(0x1000); !ok || got != 0x1111 {
		t.Errorf("tie went to %#x, want first component", got)
	}
	// Higher confidence wins regardless of order.
	b.conf = 3
	if got, _ := h.Predict(0x1000); got != 0x2222 {
		t.Errorf("confidence 3 lost to confidence 2 (got %#x)", got)
	}
	// A missing first component falls through to the second.
	a.ok = false
	b.conf = 0
	if got, ok := h.Predict(0x1000); !ok || got != 0x2222 {
		t.Errorf("fallthrough failed: %#x %v", got, ok)
	}
	b.ok = false
	if _, ok := h.Predict(0x1000); ok {
		t.Error("hybrid predicted with no component predictions")
	}
}

func TestHybridUpdatesAllComponents(t *testing.T) {
	a := &fakeComponent{}
	b := &fakeComponent{}
	h := MustHybrid(a, b)
	h.Update(0x1000, 0x2000)
	h.Update(0x1000, 0x3000)
	if a.updates != 2 || b.updates != 2 {
		t.Errorf("updates: a=%d b=%d, want 2 each", a.updates, b.updates)
	}
}

func TestHybridErrorsAndName(t *testing.T) {
	if _, err := NewHybrid(&fakeComponent{}); err == nil {
		t.Error("single-component hybrid accepted")
	}
	h := MustHybrid(&fakeComponent{}, &fakeComponent{})
	if !strings.HasPrefix(h.Name(), "hybrid(") {
		t.Errorf("Name = %q", h.Name())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustHybrid did not panic")
		}
	}()
	MustHybrid(&fakeComponent{})
}

func TestHybridReset(t *testing.T) {
	h := MustHybrid(
		MustTwoLevel(Config{PathLength: 1, Precision: AutoPrecision}),
		MustTwoLevel(Config{PathLength: 3, Precision: AutoPrecision}),
	)
	run(h, repeat(0x1000, []uint32{0x2000, 0x3000}, 50))
	h.Reset()
	if _, ok := h.Predict(0x1000); ok {
		t.Error("prediction survived Reset")
	}
}

func TestNewDualPath(t *testing.T) {
	h, err := NewDualPath(3, 1, "assoc4", 1024)
	if err != nil {
		t.Fatal(err)
	}
	m, total := run(h, repeat(0x1000, []uint32{0x2000, 0x2004, 0x2000, 0x2008}, 200))
	if m > total/10 {
		t.Errorf("dual-path hybrid: %d/%d misses on learnable cycle", m, total)
	}
	if _, err := NewDualPath(3, 1, "bogus", 1024); err == nil {
		t.Error("bad table kind accepted")
	}
	if _, err := NewDualPath(-1, 1, "assoc2", 64); err == nil {
		t.Error("negative path accepted")
	}
}

func TestThreeComponentHybrid(t *testing.T) {
	// §8.1 extension: three path lengths. Must at least match the best
	// pairwise hybrid on the mixed stream within noise.
	stream := mixedStream(6000, 99)
	mk := func(p int) *TwoLevel {
		return MustTwoLevel(Config{PathLength: p, Precision: AutoPrecision})
	}
	h3 := MustHybrid(mk(1), mk(4), mk(10))
	m3, total := run(h3, stream)
	h2 := MustHybrid(mk(1), mk(4))
	m2, _ := run(h2, stream)
	if m3 > m2+total/50 {
		t.Errorf("3-component hybrid (%d) much worse than 2-component (%d)", m3, m2)
	}
}

func TestBTBAsHybridComponent(t *testing.T) {
	// BTB + long-path two-level: the classic "short adapts, long
	// disambiguates" pairing, with the BTB as the degenerate short end.
	h := MustHybrid(
		NewBTB(nil, UpdateTwoMiss),
		MustTwoLevel(Config{PathLength: 4, Precision: AutoPrecision}),
	)
	m, total := run(h, repeat(0x1000, []uint32{0x2000, 0x2004, 0x2000, 0x2008}, 150))
	if m > total/8 {
		t.Errorf("btb+p4 hybrid: %d/%d misses", m, total)
	}
}

// fakeComponent is a scriptable Component for metaprediction unit tests.
type fakeComponent struct {
	target  uint32
	conf    uint8
	ok      bool
	updates int
}

func (f *fakeComponent) Predict(pc uint32) (uint32, bool) { return f.target, f.ok }
func (f *fakeComponent) PredictConf(pc uint32) (uint32, uint8, bool) {
	return f.target, f.conf, f.ok
}
func (f *fakeComponent) Update(pc, target uint32) { f.updates++ }
func (f *fakeComponent) Name() string             { return "fake" }

func TestBPSTHybridLearnsSelection(t *testing.T) {
	// Component a is always wrong, b always right: the selector must
	// migrate to b.
	a := &fakeComponent{target: 0x9999, conf: 0, ok: true}
	b := &fakeComponent{target: 0x2000, conf: 0, ok: true}
	h, err := NewBPSTHybrid(a, b, 64)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for i := 0; i < 20; i++ {
		got, ok := h.Predict(0x1000)
		if !ok || got != 0x2000 {
			misses++
		}
		h.Update(0x1000, 0x2000)
	}
	if misses > 3 {
		t.Errorf("BPST took %d misses to converge", misses)
	}
	if a.updates != 20 || b.updates != 20 {
		t.Errorf("both components must train: a=%d b=%d", a.updates, b.updates)
	}
}

func TestBPSTHybridFallback(t *testing.T) {
	a := &fakeComponent{ok: false}
	b := &fakeComponent{target: 0x2000, ok: true}
	h, err := NewBPSTHybrid(a, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := h.Predict(0x1000); !ok || got != 0x2000 {
		t.Errorf("fallback: %#x %v", got, ok)
	}
	h.Update(0x1000, 0x2000)
	h.Reset()
	if a.updates != 1 || b.updates != 1 {
		t.Error("update counts after reset path")
	}
}

func TestBPSTHybridErrors(t *testing.T) {
	a, b := &fakeComponent{}, &fakeComponent{}
	for _, n := range []int{0, -4, 3} {
		if _, err := NewBPSTHybrid(a, b, n); err == nil {
			t.Errorf("selector size %d accepted", n)
		}
	}
	h, _ := NewBPSTHybrid(a, b, 16)
	if !strings.HasPrefix(h.Name(), "bpst(") {
		t.Errorf("Name = %q", h.Name())
	}
}

// divergentStream builds a workload where the best component differs per
// *pattern* within a single branch site S: on odd rounds S copies the noise
// branch (predictable only by the short component — the noise bits sit above
// the long component's 3-bit fields), on even rounds S follows a long cycle
// with repeats (predictable only by the long component). A per-branch BPST
// cannot split S between components; per-pattern confidence can.
func divergentStream(n int, seed uint64) []access {
	rng := rand.New(rand.NewPCG(seed, seed^0x5555))
	cycle := []uint32{0x2000, 0x2004, 0x2000, 0x2008, 0x2000, 0x200C}
	var out []access
	k := 0
	for len(out) < n {
		// Noise: bits 6..11 vary (invisible to b=3 compression).
		nt := uint32(0x8000 + rng.IntN(64)*0x40)
		out = append(out, access{0x1008, nt})
		var st uint32
		if k%2 == 1 {
			st = 0x4000 + (nt & 0xFC0) // short-predictable behaviour
		} else {
			st = cycle[(k/2)%len(cycle)] // long-predictable behaviour
		}
		out = append(out, access{0x1000, st})
		k++
	}
	return out[:n]
}

func TestConfidenceVsBPSTOnPatternLevelDivergence(t *testing.T) {
	// §6.1: per-pattern confidence metaprediction is finer-grained than a
	// per-branch BPST; on a branch whose best component depends on the
	// pattern, confidence must win.
	stream := divergentStream(8000, 123)
	mk := func(p int) *TwoLevel {
		return MustTwoLevel(Config{PathLength: p, Precision: AutoPrecision})
	}
	conf := MustHybrid(mk(2), mk(8))
	mConf, total := run(conf, stream)
	bp, _ := NewBPSTHybrid(mk(2), mk(8), 1024)
	mBP, _ := run(bp, stream)
	t.Logf("confidence=%d bpst=%d total=%d", mConf, mBP, total)
	if mConf > mBP+total/100 {
		t.Errorf("confidence metaprediction (%d) clearly worse than BPST (%d)", mConf, mBP)
	}
}

func TestSharedHybridSmoke(t *testing.T) {
	s, err := NewSharedHybrid(3, 1, "assoc4", 1024)
	if err != nil {
		t.Fatal(err)
	}
	m, total := run(s, repeat(0x1000, []uint32{0x2000, 0x2004, 0x2000, 0x2008}, 200))
	if m > total/5 {
		t.Errorf("shared hybrid: %d/%d misses on learnable cycle", m, total)
	}
	if !strings.HasPrefix(s.Name(), "shared-hybrid[") {
		t.Errorf("Name = %q", s.Name())
	}
	s.Reset()
	if _, ok := s.Predict(0x1000); ok {
		t.Error("prediction survived Reset")
	}
}

func TestSharedHybridErrors(t *testing.T) {
	if _, err := NewSharedHybrid(3, 3, "assoc4", 64); err == nil {
		t.Error("equal path lengths accepted")
	}
	if _, err := NewSharedHybrid(3, 1, "bogus", 64); err == nil {
		t.Error("bad table accepted")
	}
}

func TestSharedHybridProtectsChosenEntries(t *testing.T) {
	// With a tiny table, the chosen-counter should reduce thrashing
	// relative to two independent tiny tables totalling the same size
	// on a stream with one hot perfectly-predictable branch plus churn.
	rng := rand.New(rand.NewPCG(55, 56))
	var stream []access
	for i := 0; i < 4000; i++ {
		stream = append(stream, access{0x1000, 0x2000}) // hot monomorphic
		site := uint32(rng.IntN(128))
		stream = append(stream, access{0x4000 + site*4, 0x8000 + uint32(rng.IntN(16))*0x40})
	}
	s, err := NewSharedHybrid(1, 0, "assoc4", 64)
	if err != nil {
		t.Fatal(err)
	}
	misses, total := run(s, stream)
	if misses >= total {
		t.Errorf("shared hybrid learned nothing: %d/%d", misses, total)
	}
	// The hot branch at least must be predicted most of the time.
	hot := MustTwoLevel(Config{PathLength: 0, Precision: AutoPrecision, TableKind: "assoc4", Entries: 64})
	mHot, _ := run(hot, stream)
	if misses > mHot*3/2+100 {
		t.Errorf("shared hybrid (%d) far worse than single component (%d)", misses, mHot)
	}
}

func TestCascadePrefersLongestMatch(t *testing.T) {
	c, err := NewCascade([]int{1, 4}, "assoc4", 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Period-4 cycle with a repeat: p=1 ambiguous, p=4 exact; the
	// cascade must approach the p=4 component's accuracy.
	stream := repeat(0x1000, []uint32{0x2000, 0x2004, 0x2000, 0x2008}, 200)
	mC, total := run(c, stream)
	solo := MustTwoLevel(Config{PathLength: 4, Precision: AutoPrecision, TableKind: "assoc4", Entries: 1024})
	mS, _ := run(solo, stream)
	if mC > mS+total/20 {
		t.Errorf("cascade %d misses vs longest component %d", mC, mS)
	}
	if !strings.HasPrefix(c.Name(), "ppm[p=4.1") {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestCascadeFallsBackToShort(t *testing.T) {
	// A fresh long-pattern context must fall back to the short
	// component: train p=1 knowledge, then perturb the deep history.
	c, err := NewCascade([]int{0, 6}, "assoc4", 1024)
	if err != nil {
		t.Fatal(err)
	}
	m, total := run(c, repeat(0x1000, []uint32{0x2000}, 100))
	if m > 2 {
		t.Errorf("cascade on monomorphic branch: %d/%d misses", m, total)
	}
	c.Reset()
	if _, ok := c.Predict(0x1000); ok {
		t.Error("prediction survived Reset")
	}
}

func TestCascadeErrorsAndDedup(t *testing.T) {
	if _, err := NewCascade([]int{3}, "assoc2", 64); err == nil {
		t.Error("single path accepted")
	}
	if _, err := NewCascade([]int{3, -1}, "assoc2", 64); err == nil {
		t.Error("negative path accepted")
	}
	if _, err := NewCascade([]int{1, 3}, "bogus", 64); err == nil {
		t.Error("bad table accepted")
	}
	c, err := NewCascade([]int{3, 3, 1, 1}, "assoc2", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.comps) != 2 {
		t.Errorf("dedup kept %d components", len(c.comps))
	}
}

func TestTargetCache(t *testing.T) {
	tc, err := NewTargetCache(4, "tagless", 512)
	if err != nil {
		t.Fatal(err)
	}
	// An indirect branch whose target is determined by the preceding
	// conditional's direction: the taken/not-taken history separates the
	// two cases. (4 history bits keep the warm-up to 16 patterns.)
	rng := rand.New(rand.NewPCG(61, 62))
	misses := 0
	const n = 2000
	for i := 0; i < n; i++ {
		taken := rng.IntN(2) == 1
		var ct uint32
		if taken {
			ct = 0x5000
		}
		tc.ObserveCond(0x4000, ct, taken)
		want := uint32(0x2000)
		if taken {
			want = 0x3000
		}
		got, ok := tc.Predict(0x1000)
		if !ok || got != want {
			misses++
		}
		tc.Update(0x1000, want)
	}
	if misses > n/10 {
		t.Errorf("target cache: %d/%d misses on cond-correlated branch", misses, n)
	}
	if !strings.HasPrefix(tc.Name(), "tcache[gshare(4)") {
		t.Errorf("Name = %q", tc.Name())
	}
	tc.Reset()
	if _, ok := tc.Predict(0x1000); ok {
		t.Error("prediction survived Reset")
	}
}

func TestTargetCacheCannotSeeTargetPaths(t *testing.T) {
	// The paper's point vs. [CHP97]: without conditional information, a
	// target cache is blind to target-path correlation. Feed the A,B,A,C
	// cycle with no conditionals: the cache degenerates to a BTB.
	tc, err := NewTargetCache(9, "tagless", 512)
	if err != nil {
		t.Fatal(err)
	}
	stream := repeat(0x1000, []uint32{0x2000, 0x3000, 0x2000, 0x4000}, 100)
	mTC, total := run(tc, stream)
	path := MustTwoLevel(Config{PathLength: 2, Precision: AutoPrecision})
	mPath, _ := run(path, stream)
	if mTC <= mPath {
		t.Errorf("target cache (%d/%d) should trail path-based predictor (%d)", mTC, total, mPath)
	}
}

func TestTargetCacheErrors(t *testing.T) {
	if _, err := NewTargetCache(0, "tagless", 64); err == nil {
		t.Error("0 history bits accepted")
	}
	if _, err := NewTargetCache(31, "tagless", 64); err == nil {
		t.Error("31 history bits accepted")
	}
	if _, err := NewTargetCache(9, "bogus", 64); err == nil {
		t.Error("bad table accepted")
	}
}
