package core

import (
	"fmt"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/table"
)

// ITTAGE is a compact indirect-target predictor in the style the paper's
// hybrid results eventually led to (Seznec's ITTAGE): a tagless base
// predictor backed by several tagged banks indexed with geometrically
// growing target-path history lengths. Where the paper picks two fixed path
// lengths and arbitrates with confidence counters, ITTAGE keeps a whole
// spectrum of lengths and lets tag matches select the longest useful one.
// Originally shipped as the "what came next" extension experiment
// (ext-ittage), it is now a first-class citizen: constructible through
// cli.PredictorFlags (-pred ittage:banks,entries,minhist), pool-compatible
// via a generation-stamped O(1) Reset, and able to explain its misses
// through the Attributor hooks.
type ITTAGE struct {
	base     []ittageEntry // tagless, indexed by pc
	baseMask uint32
	banks    []ittageBank
	hist     []uint8 // ring of compressed recent targets, newest at histHead
	histHead int
	rng      uint32 // xorshift for allocation tie-breaks (deterministic)
	gen      uint32 // current generation; entries from older ones are dead
	name     string

	// Attribution recording (see core.Attributor); off by default.
	attrib bool
	att    AttribState

	// Table behaviour counters (base, banks), for TableStatser.
	inserts   [2]uint64
	evictions [2]uint64
	resets    uint64
}

type ittageBank struct {
	entries []ittageEntry
	mask    uint32
	histLen int

	// Folded path history, maintained incrementally (the circular
	// shift-register trick from Seznec's TAGE family): each bank keeps the
	// XOR-fold of its most recent histLen history values compressed to
	// idxW/tagW bits, updated in O(1) per retired branch instead of
	// rehashing histLen entries on every lookup.
	foldIdx   uint32
	foldTag   uint32
	idxW      uint // fold width feeding the index, >= ittageHistBits+1
	tagW      uint // fold width feeding the tag
	outIdxPos uint // rotation offset of the outgoing value: (histLen*bits) % idxW
	outTagPos uint
}

type ittageEntry struct {
	valid  bool
	tag    uint16
	target uint32
	gen    uint32 // generation the entry was written in
	conf   uint8  // 0..3
	useful uint8  // 0..3
	hyst   uint8
}

// ittageHistBits is the number of low-order target bits shifted into the
// path history per branch (the paper's §4.1 compression, at b=4).
const ittageHistBits = 4

// ittageSeed initializes the allocation tie-break generator.
const ittageSeed = 0x2545F491

// NewITTAGE builds a predictor with the given number of tagged banks, each
// of bankEntries entries (a power of two), with history lengths growing
// geometrically from minHist by factor two, over a base table of
// 2*bankEntries entries.
func NewITTAGE(numBanks, bankEntries, minHist int) (*ITTAGE, error) {
	if numBanks < 1 || numBanks > 16 {
		return nil, fmt.Errorf("core: ittage banks %d out of range [1,16]", numBanks)
	}
	if bankEntries <= 0 || bankEntries&(bankEntries-1) != 0 {
		return nil, fmt.Errorf("core: ittage bank size must be a power of two, got %d", bankEntries)
	}
	if minHist < 1 {
		return nil, fmt.Errorf("core: ittage minimum history %d must be positive", minHist)
	}
	t := &ITTAGE{
		base:     make([]ittageEntry, 2*bankEntries),
		baseMask: uint32(2*bankEntries - 1),
		rng:      ittageSeed,
		name:     fmt.Sprintf("ittage[%dx%d,hist>=%d]", numBanks, bankEntries, minHist),
	}
	// Fold widths must be coprime with the 4-bit shift step: with 4 | w,
	// history values whose ages differ by w/4 land on the same rotated bit
	// position and XOR-cancel, collapsing every short-period stream to one
	// aliased context. Odd widths make the rotation walk all positions.
	idxW := uint(5)
	for 1<<idxW < bankEntries && idxW < 27 {
		idxW++ // fold width tracks the index width; <=27 keeps f<<4 in uint32
	}
	if idxW%2 == 0 {
		idxW++
	}
	const tagW = 13
	maxHist := minHist
	for i := 0; i < numBanks; i++ {
		b := ittageBank{
			entries: make([]ittageEntry, bankEntries),
			mask:    uint32(bankEntries - 1),
			histLen: maxHist,
			idxW:    idxW,
			tagW:    tagW,
		}
		b.outIdxPos = uint(b.histLen*ittageHistBits) % b.idxW
		b.outTagPos = uint(b.histLen*ittageHistBits) % b.tagW
		t.banks = append(t.banks, b)
		maxHist *= 2
	}
	t.hist = make([]uint8, t.banks[numBanks-1].histLen)
	return t, nil
}

// live reports whether e holds current-generation state. Entries written
// before the last Reset stay physically in place but read as empty, the
// same generation-stamp trick the dense table organizations use to make
// Reset O(1).
func (t *ITTAGE) live(e *ittageEntry) bool { return e.valid && e.gen == t.gen }

// foldPush rotates a w-bit circular shift register left by ittageHistBits,
// inserts the new value v at the bottom, and XOR-removes the value leaving
// the window (out, now rotated to outPos). Requires ittageHistBits <= w <= 28
// so the pre-fold shift stays inside uint32.
func foldPush(f, v, out uint32, w, outPos uint) uint32 {
	mask := uint32(1)<<w - 1
	f = f<<ittageHistBits ^ v
	f ^= f >> w // wrap the shifted-out top bits back to the bottom
	f &= mask
	o := out << outPos
	return f ^ (o^o>>w)&mask
}

// pushHist records a resolved target into the path history and advances
// every bank's folded registers in O(banks), independent of history length.
func (t *ITTAGE) pushHist(target uint32) {
	v := uint32(bits.Field(target, 2, ittageHistBits))
	for b := range t.banks {
		bank := &t.banks[b]
		out := uint32(t.hist[(t.histHead+bank.histLen-1)%len(t.hist)])
		bank.foldIdx = foldPush(bank.foldIdx, v, out, bank.idxW, bank.outIdxPos)
		bank.foldTag = foldPush(bank.foldTag, v, out, bank.tagW, bank.outTagPos)
	}
	t.histHead--
	if t.histHead < 0 {
		t.histHead = len(t.hist) - 1
	}
	t.hist[t.histHead] = uint8(v)
}

// hash mixes the branch address with bank b's folded history. The low 16
// bits feed the bank index (masked by the caller), the high 16 the tag.
func (t *ITTAGE) hash(pc uint32, b int) uint32 {
	bank := &t.banks[b]
	a := pc >> 2
	idx := a ^ a>>bank.idxW ^ bank.foldIdx
	tag := a ^ bank.foldTag ^ bank.foldTag>>2
	return idx&0xffff | tag<<16
}

// lookup finds the provider (longest matching bank) and the alternate
// prediction. provider == -1 means the base table provides; altBank is the
// alternate's bank index, -1 when the alternate is the base entry.
func (t *ITTAGE) lookup(pc uint32) (provider int, pe *ittageEntry, alt *ittageEntry, altBank int) {
	provider = -1
	for b := len(t.banks) - 1; b >= 0; b-- {
		bank := &t.banks[b]
		h := t.hash(pc, b)
		e := &bank.entries[h&bank.mask]
		if t.live(e) && e.tag == uint16(h>>16) {
			if pe == nil {
				provider = b
				pe = e
			} else {
				return provider, pe, e, b
			}
		}
	}
	be := &t.base[(pc>>2)&t.baseMask]
	if pe == nil {
		return -1, be, nil, -1
	}
	return provider, pe, be, -1
}

// Predict implements Predictor.
func (t *ITTAGE) Predict(pc uint32) (uint32, bool) {
	provider, pe, alt, altBank := t.lookup(pc)
	if t.attrib {
		t.att = AttribState{Component: int16(provider)}
		if provider < 0 {
			t.att.Pattern = uint64(pc >> 2)
			t.att.TableHit = t.live(pe)
		} else {
			h := t.hash(pc, provider)
			t.att.Pattern = uint64(h) | uint64(provider+1)<<32
			t.att.TableHit = true
		}
		if t.live(pe) {
			t.att.Conf = pe.conf
		}
	}
	if provider < 0 {
		if !t.live(pe) {
			return 0, false
		}
		return pe.target, true
	}
	// A freshly allocated (weak) provider defers to a confident
	// alternate, the standard TAGE "use alt on new entry" heuristic.
	if pe.conf == 0 && alt != nil && t.live(alt) && alt.conf > 0 {
		if t.attrib {
			t.att.Component = int16(altBank)
			t.att.Conf = alt.conf
		}
		return alt.target, true
	}
	return pe.target, true
}

// Update implements Predictor.
func (t *ITTAGE) Update(pc, target uint32) {
	provider, pe, alt, _ := t.lookup(pc)
	predicted, havePred := t.Predict(pc)
	correct := havePred && predicted == target

	if provider >= 0 {
		provCorrect := t.live(pe) && pe.target == target
		altCorrect := alt != nil && t.live(alt) && alt.target == target
		if t.attrib && !correct && (provCorrect || altCorrect) {
			t.att.AltCorrect = true
		}
		if provCorrect && !altCorrect && pe.useful < 3 {
			pe.useful++
		}
		if !provCorrect && altCorrect && pe.useful > 0 {
			pe.useful--
		}
		if provCorrect {
			if pe.conf < 3 {
				pe.conf++
			}
			pe.hyst = 0
		} else {
			if pe.conf > 0 {
				pe.conf--
			}
			if pe.hyst != 0 || pe.conf == 0 {
				pe.target = target
				pe.conf = 0
				pe.hyst = 0
			} else {
				pe.hyst = 1
			}
		}
	}

	// The base table always trains (2bc rule).
	be := &t.base[(pc>>2)&t.baseMask]
	if !t.live(be) {
		be.valid = true
		be.gen = t.gen
		be.target = target
		be.conf = 0
		be.useful = 0
		be.hyst = 0
		t.inserts[0]++
	} else if be.target == target {
		be.hyst = 0
		if be.conf < 3 {
			be.conf++
		}
	} else {
		if be.conf > 0 {
			be.conf--
		}
		if be.hyst != 0 {
			be.target = target
			be.hyst = 0
		} else {
			be.hyst = 1
		}
	}

	// On a misprediction, try to allocate a longer-history entry.
	if !correct && provider < len(t.banks)-1 {
		t.allocate(pc, target, provider+1)
	}
	t.pushHist(target)
}

// allocate claims a not-useful entry in one of the banks at or above
// fromBank for (pc, history), decaying useful bits when none is free.
func (t *ITTAGE) allocate(pc, target uint32, fromBank int) {
	// Randomize the starting bank a little so allocations spread.
	start := fromBank
	if start < len(t.banks)-1 && t.nextRand()&1 == 0 {
		start++
	}
	for b := start; b < len(t.banks); b++ {
		bank := &t.banks[b]
		h := t.hash(pc, b)
		e := &bank.entries[h&bank.mask]
		if !t.live(e) || e.useful == 0 {
			if t.live(e) {
				t.evictions[1]++
			}
			t.inserts[1]++
			if t.attrib {
				t.att.NewEntry = true
				t.att.Evicted = t.live(e)
			}
			e.valid = true
			e.gen = t.gen
			e.tag = uint16(h >> 16)
			e.target = target
			e.conf = 0
			e.useful = 0
			e.hyst = 0
			return
		}
	}
	// Nothing free: age the candidates so a future allocation succeeds.
	for b := fromBank; b < len(t.banks); b++ {
		bank := &t.banks[b]
		h := t.hash(pc, b)
		e := &bank.entries[h&bank.mask]
		if t.live(e) && e.useful > 0 {
			e.useful--
		}
	}
}

// nextRand is a deterministic xorshift32.
func (t *ITTAGE) nextRand() uint32 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 17
	t.rng ^= t.rng << 5
	return t.rng
}

// Name implements Predictor.
func (t *ITTAGE) Name() string { return t.name }

// Storage returns the total entry count (base plus banks), for
// equal-budget comparisons.
func (t *ITTAGE) Storage() int {
	n := len(t.base)
	for _, b := range t.banks {
		n += len(b.entries)
	}
	return n
}

// SetAttribution implements Attributor.
func (t *ITTAGE) SetAttribution(on bool) { t.attrib = on }

// Attribution implements Attributor.
func (t *ITTAGE) Attribution() AttribState { return t.att }

// TableStats implements TableStatser: one row for the tagless base, one
// aggregated row for the tagged banks.
func (t *ITTAGE) TableStats() []table.Stats {
	occBase := 0
	for i := range t.base {
		if t.live(&t.base[i]) {
			occBase++
		}
	}
	occBanks, capBanks := 0, 0
	for b := range t.banks {
		entries := t.banks[b].entries
		capBanks += len(entries)
		for i := range entries {
			if t.live(&entries[i]) {
				occBanks++
			}
		}
	}
	return []table.Stats{
		{
			Kind:      "ittage-base",
			Capacity:  len(t.base),
			Occupancy: float64(occBase) / float64(len(t.base)),
			Inserts:   t.inserts[0],
			Evictions: t.evictions[0],
			Resets:    t.resets,
		},
		{
			Kind:      "ittage-banks",
			Capacity:  capBanks,
			Occupancy: float64(occBanks) / float64(capBanks),
			Inserts:   t.inserts[1],
			Evictions: t.evictions[1],
			Resets:    t.resets,
		},
	}
}

// Reset implements Resetter in O(1): bump the generation so every entry
// reads as empty, clear the (short) history ring, and rewind the allocation
// tie-break generator so a reused instance replays bit-identically to a
// fresh one.
func (t *ITTAGE) Reset() {
	t.gen++
	if t.gen == 0 {
		// Generation counter wrapped: physically clear once per 2^32
		// resets so stale entries cannot masquerade as live.
		clear(t.base)
		for i := range t.banks {
			clear(t.banks[i].entries)
		}
	}
	clear(t.hist)
	t.histHead = 0
	for b := range t.banks {
		t.banks[b].foldIdx = 0
		t.banks[b].foldTag = 0
	}
	t.rng = ittageSeed
	t.resets++
	t.att = AttribState{}
}
