package core

import (
	"fmt"

	"github.com/oocsb/ibp/internal/bits"
)

// ITTAGE is a compact indirect-target predictor in the style the paper's
// hybrid results eventually led to (Seznec's ITTAGE): a tagless base
// predictor backed by several tagged banks indexed with geometrically
// growing target-path history lengths. Where the paper picks two fixed path
// lengths and arbitrates with confidence counters, ITTAGE keeps a whole
// spectrum of lengths and lets tag matches select the longest useful one.
// It is included as the "what came next" extension experiment (ext-ittage).
type ITTAGE struct {
	base     []ittageEntry // tagless, indexed by pc
	baseMask uint32
	banks    []ittageBank
	hist     []uint8 // ring of compressed recent targets, newest at histHead
	histHead int
	rng      uint32 // xorshift for allocation tie-breaks (deterministic)
	name     string
}

type ittageBank struct {
	entries []ittageEntry
	mask    uint32
	histLen int
}

type ittageEntry struct {
	valid  bool
	tag    uint16
	target uint32
	conf   uint8 // 0..3
	useful uint8 // 0..3
	hyst   uint8
}

// ittageHistBits is the number of low-order target bits shifted into the
// path history per branch (the paper's §4.1 compression, at b=4).
const ittageHistBits = 4

// ittageSeed initializes the allocation tie-break generator.
const ittageSeed = 0x2545F491

// NewITTAGE builds a predictor with the given number of tagged banks, each
// of bankEntries entries (a power of two), with history lengths growing
// geometrically from minHist by factor two, over a base table of
// 2*bankEntries entries.
func NewITTAGE(numBanks, bankEntries, minHist int) (*ITTAGE, error) {
	if numBanks < 1 || numBanks > 16 {
		return nil, fmt.Errorf("core: ittage banks %d out of range [1,16]", numBanks)
	}
	if bankEntries <= 0 || bankEntries&(bankEntries-1) != 0 {
		return nil, fmt.Errorf("core: ittage bank size must be a power of two, got %d", bankEntries)
	}
	if minHist < 1 {
		return nil, fmt.Errorf("core: ittage minimum history %d must be positive", minHist)
	}
	t := &ITTAGE{
		base:     make([]ittageEntry, 2*bankEntries),
		baseMask: uint32(2*bankEntries - 1),
		rng:      ittageSeed,
		name:     fmt.Sprintf("ittage[%dx%d,hist>=%d]", numBanks, bankEntries, minHist),
	}
	maxHist := minHist
	for i := 0; i < numBanks; i++ {
		t.banks = append(t.banks, ittageBank{
			entries: make([]ittageEntry, bankEntries),
			mask:    uint32(bankEntries - 1),
			histLen: maxHist,
		})
		maxHist *= 2
	}
	t.hist = make([]uint8, t.banks[numBanks-1].histLen)
	return t, nil
}

// pushHist records a resolved target into the path history.
func (t *ITTAGE) pushHist(target uint32) {
	t.histHead--
	if t.histHead < 0 {
		t.histHead = len(t.hist) - 1
	}
	t.hist[t.histHead] = uint8(bits.Field(target, 2, ittageHistBits))
}

// hash mixes the branch address with the most recent histLen history
// entries.
func (t *ITTAGE) hash(pc uint32, histLen int) uint32 {
	h := pc >> 2
	for i := 0; i < histLen; i++ {
		v := t.hist[(t.histHead+i)%len(t.hist)]
		h = h*0x9E3779B1 + uint32(v) + 1
		h ^= h >> 15
	}
	return h
}

// lookup finds the provider (longest matching bank) and the alternate
// prediction. provider == -1 means the base table provides.
func (t *ITTAGE) lookup(pc uint32) (provider int, pe *ittageEntry, alt *ittageEntry, altIsBase bool) {
	provider = -1
	for b := len(t.banks) - 1; b >= 0; b-- {
		bank := &t.banks[b]
		h := t.hash(pc, bank.histLen)
		e := &bank.entries[h&bank.mask]
		if e.valid && e.tag == uint16(h>>16) {
			if pe == nil {
				provider = b
				pe = e
			} else {
				alt = e
				return provider, pe, alt, false
			}
		}
	}
	be := &t.base[(pc>>2)&t.baseMask]
	if pe == nil {
		return -1, be, nil, true
	}
	return provider, pe, be, true
}

// Predict implements Predictor.
func (t *ITTAGE) Predict(pc uint32) (uint32, bool) {
	provider, pe, alt, _ := t.lookup(pc)
	if provider < 0 {
		if !pe.valid {
			return 0, false
		}
		return pe.target, true
	}
	// A freshly allocated (weak) provider defers to a confident
	// alternate, the standard TAGE "use alt on new entry" heuristic.
	if pe.conf == 0 && alt != nil && alt.valid && alt.conf > 0 {
		return alt.target, true
	}
	return pe.target, true
}

// Update implements Predictor.
func (t *ITTAGE) Update(pc, target uint32) {
	provider, pe, alt, _ := t.lookup(pc)
	predicted, havePred := t.Predict(pc)
	correct := havePred && predicted == target

	if provider >= 0 {
		provCorrect := pe.valid && pe.target == target
		altCorrect := alt != nil && alt.valid && alt.target == target
		if provCorrect && !altCorrect && pe.useful < 3 {
			pe.useful++
		}
		if !provCorrect && altCorrect && pe.useful > 0 {
			pe.useful--
		}
		if provCorrect {
			if pe.conf < 3 {
				pe.conf++
			}
			pe.hyst = 0
		} else {
			if pe.conf > 0 {
				pe.conf--
			}
			if pe.hyst != 0 || pe.conf == 0 {
				pe.target = target
				pe.conf = 0
				pe.hyst = 0
			} else {
				pe.hyst = 1
			}
		}
	}

	// The base table always trains (2bc rule).
	be := &t.base[(pc>>2)&t.baseMask]
	if !be.valid {
		be.valid = true
		be.target = target
		be.hyst = 0
	} else if be.target == target {
		be.hyst = 0
		if be.conf < 3 {
			be.conf++
		}
	} else {
		if be.conf > 0 {
			be.conf--
		}
		if be.hyst != 0 {
			be.target = target
			be.hyst = 0
		} else {
			be.hyst = 1
		}
	}

	// On a misprediction, try to allocate a longer-history entry.
	if !correct && provider < len(t.banks)-1 {
		t.allocate(pc, target, provider+1)
	}
	t.pushHist(target)
}

// allocate claims a not-useful entry in one of the banks at or above
// fromBank for (pc, history), decaying useful bits when none is free.
func (t *ITTAGE) allocate(pc, target uint32, fromBank int) {
	// Randomize the starting bank a little so allocations spread.
	start := fromBank
	if start < len(t.banks)-1 && t.nextRand()&1 == 0 {
		start++
	}
	for b := start; b < len(t.banks); b++ {
		bank := &t.banks[b]
		h := t.hash(pc, bank.histLen)
		e := &bank.entries[h&bank.mask]
		if !e.valid || e.useful == 0 {
			e.valid = true
			e.tag = uint16(h >> 16)
			e.target = target
			e.conf = 0
			e.useful = 0
			e.hyst = 0
			return
		}
	}
	// Nothing free: age the candidates so a future allocation succeeds.
	for b := fromBank; b < len(t.banks); b++ {
		bank := &t.banks[b]
		h := t.hash(pc, bank.histLen)
		e := &bank.entries[h&bank.mask]
		if e.useful > 0 {
			e.useful--
		}
	}
}

// nextRand is a deterministic xorshift32.
func (t *ITTAGE) nextRand() uint32 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 17
	t.rng ^= t.rng << 5
	return t.rng
}

// Name implements Predictor.
func (t *ITTAGE) Name() string { return t.name }

// Storage returns the total entry count (base plus banks), for
// equal-budget comparisons.
func (t *ITTAGE) Storage() int {
	n := len(t.base)
	for _, b := range t.banks {
		n += len(b.entries)
	}
	return n
}

// Reset implements Resetter.
func (t *ITTAGE) Reset() {
	clear(t.base)
	for i := range t.banks {
		clear(t.banks[i].entries)
	}
	clear(t.hist)
	t.histHead = 0
	t.rng = ittageSeed
}
