package core

import (
	"fmt"

	"github.com/oocsb/ibp/internal/history"
	"github.com/oocsb/ibp/internal/table"
)

// NextBranch is the paper's §8.1 run-ahead extension: besides the target of
// the current branch, each table entry learns the address of the *next*
// indirect branch that followed it. A front end that trusts both predictions
// can chain them and fetch arbitrarily far ahead of execution; the
// next-address also disambiguates branches on different conditional paths
// that share the same indirect-branch path.
//
// The implementation wraps the standard two-level structure: the entry that
// predicts branch i is remembered until branch i+1 resolves, at which point
// its next-branch field trains on branch i+1's address.
type NextBranch struct {
	spec    history.Spec
	hist    *history.Register
	tab     table.Bounded
	update  UpdateRule
	scratch []uint32
	// pendingKey identifies the entry awaiting its next-branch address;
	// pendingValid gates the first branch of a run.
	pendingKey   uint64
	pendingValid bool
	name         string
}

// NewNextBranch builds a run-ahead predictor with the given path length over
// a bounded table (the §4–§5 default key construction, global history).
func NewNextBranch(p int, tableKind string, entries int) (*NextBranch, error) {
	cfg := Config{
		PathLength: p,
		Precision:  AutoPrecision,
		Scheme:     defaultScheme(tableKind),
		TableKind:  tableKind,
		Entries:    entries,
	}
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TableKind == "exact" {
		return nil, fmt.Errorf("core: next-branch predictor needs a uint64-key table")
	}
	tab, err := table.New(cfg.TableKind, cfg.Entries)
	if err != nil {
		return nil, err
	}
	nb := &NextBranch{
		spec: history.Spec{
			PathLength: cfg.PathLength,
			Bits:       cfg.Precision,
			StartBit:   cfg.StartBit,
			Scheme:     cfg.Scheme,
			Op:         cfg.KeyOp,
		},
		hist:    history.NewRegister(cfg.PathLength),
		tab:     tab,
		update:  cfg.Update,
		scratch: make([]uint32, 0, cfg.PathLength+1),
		name:    fmt.Sprintf("nextbranch[p=%d,%s/%d]", p, cfg.TableKind, cfg.Entries),
	}
	nb.hist.Track(nb.spec)
	return nb, nil
}

func (n *NextBranch) key(pc uint32) uint64 {
	return n.spec.Key(n.hist, pc, n.scratch)
}

// Predict implements Predictor.
func (n *NextBranch) Predict(pc uint32) (uint32, bool) {
	e := n.tab.Probe(n.key(pc))
	if e == nil {
		return 0, false
	}
	return e.Target, true
}

// PredictNext returns the predicted address of the indirect branch that will
// execute after the one at pc.
func (n *NextBranch) PredictNext(pc uint32) (uint32, bool) {
	e := n.tab.Probe(n.key(pc))
	if e == nil || e.Next == 0 {
		return 0, false
	}
	return e.Next, true
}

// Update implements Predictor: it trains the current entry's target, trains
// the previous entry's next-branch address with pc, and shifts the history.
func (n *NextBranch) Update(pc, target uint32) {
	if n.pendingValid {
		if pe := n.tab.Probe(n.pendingKey); pe != nil {
			// The next-branch field follows the same two-miss
			// hysteresis idea as targets: replace only when the
			// stored address is wrong (it shares the entry's
			// hysteresis bit with the target, a deliberate
			// simplification).
			if pe.Next == 0 || pe.Next != pc {
				pe.Next = pc
			}
		}
	}
	key := n.key(pc)
	e := n.tab.Probe(key)
	if e == nil {
		e = n.tab.Insert(key)
		e.Target = target
	} else {
		applyTarget(e, target, n.update)
	}
	n.pendingKey = key
	n.pendingValid = true
	n.hist.Push(target)
}

// Name implements Predictor.
func (n *NextBranch) Name() string { return n.name }

// Reset implements Resetter.
func (n *NextBranch) Reset() {
	n.hist.Reset()
	n.tab.Reset()
	n.pendingValid = false
}
