// Package core implements the indirect branch predictors studied in
// Driesen & Hölzle, "Accurate Indirect Branch Prediction" (TRCS97-19 /
// ISCA'98): branch target buffers, the two-level path-based predictor family
// across the full (s, h, p) design space with limited precision and limited
// tables, and hybrid predictors with confidence-counter metaprediction. It
// also implements the related-work and future-work designs the paper
// discusses: a BPST-selected hybrid, a PPM-style cascade, a shared-table
// hybrid with "chosen" counters, and a Chang-style pattern-history target
// cache.
package core

import (
	"fmt"

	"github.com/oocsb/ibp/internal/table"
)

// Predictor is the contract shared by every predictor in this package.
//
// The simulator calls Predict for each dynamic indirect branch and then
// Update with the resolved target. Predict must not modify architectural
// predictor state (histories shift in Update, after resolution, as the
// hardware pipeline would once the branch retires). Update may be called
// without a preceding Predict; predictors recompute whatever they need.
type Predictor interface {
	// Predict returns the predicted target for the branch at pc and
	// whether the predictor produced a prediction at all. A prediction of
	// the wrong target and a missing prediction both count as
	// mispredictions.
	Predict(pc uint32) (target uint32, ok bool)
	// Update informs the predictor of the branch's resolved target.
	Update(pc, target uint32)
	// Name returns a short configuration string for reports.
	Name() string
}

// CondObserver is implemented by predictors that consume conditional-branch
// outcomes: the §3.3 variation that mixes conditional targets into the path
// history, and the Chang et al. pattern-history target cache, whose first
// level is a taken/not-taken history.
type CondObserver interface {
	// ObserveCond records a dynamic conditional branch. target is zero
	// for a not-taken branch.
	ObserveCond(pc, target uint32, taken bool)
}

// Resetter is implemented by predictors whose state can be cleared for
// reuse across benchmark runs.
type Resetter interface {
	Reset()
}

// TableStatser is implemented by predictors that can report their target
// tables' behaviour counters (occupancy, inserts, evictions, resets). The
// telemetry layer uses it to attach per-table snapshots to simulation
// results; predictors without introspectable tables simply don't implement
// it.
type TableStatser interface {
	// TableStats returns one Stats per underlying table, in a stable order.
	TableStats() []table.Stats
}

// UpdateRule selects how a table entry's target is updated after a
// misprediction (§3.1).
type UpdateRule uint8

const (
	// UpdateTwoMiss replaces the stored target only after two consecutive
	// mispredictions by this entry (the "2bc" rule; one hysteresis bit
	// suffices for indirect branches). The paper found it uniformly
	// slightly better and uses it everywhere after §3.2.
	UpdateTwoMiss UpdateRule = iota
	// UpdateAlways replaces the stored target after every misprediction.
	UpdateAlways
)

func (u UpdateRule) String() string {
	switch u {
	case UpdateTwoMiss:
		return "2bc"
	case UpdateAlways:
		return "always"
	}
	return fmt.Sprintf("UpdateRule(%d)", uint8(u))
}

// applyTarget applies the update rule to a valid entry given the resolved
// target. It returns whether the entry predicted correctly before updating.
func applyTarget(e *table.Entry, target uint32, rule UpdateRule) bool {
	if e.Target == target {
		e.Hyst = 0
		return true
	}
	if rule == UpdateAlways || e.Hyst != 0 {
		e.Target = target
		e.Hyst = 0
	} else {
		e.Hyst = 1
	}
	return false
}

// bumpConf adjusts the entry's saturating confidence counter: +1 when the
// entry's prediction was correct, -1 otherwise, within [0, max].
func bumpConf(e *table.Entry, correct bool, max uint8) {
	if correct {
		if e.Conf < max {
			e.Conf++
		}
	} else if e.Conf > 0 {
		e.Conf--
	}
}

// confMax returns the saturation value of an n-bit confidence counter.
func confMax(bits int) uint8 {
	if bits <= 0 {
		bits = 2
	}
	if bits > 8 {
		bits = 8
	}
	return uint8(1<<uint(bits) - 1)
}
