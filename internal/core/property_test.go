package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randomStream builds an arbitrary (but structured) branch stream from a
// seed: a few sites, small target sets, mixed cyclic and random behaviour.
func randomStream(seed uint64, n int) []access {
	rng := rand.New(rand.NewPCG(seed, seed^0xBEEF))
	nSites := 1 + rng.IntN(6)
	sites := make([]struct {
		pc      uint32
		targets []uint32
		cyclic  bool
		pos     int
	}, nSites)
	for i := range sites {
		sites[i].pc = 0x1000 + uint32(i)*4
		nt := 1 + rng.IntN(4)
		for j := 0; j < nt; j++ {
			sites[i].targets = append(sites[i].targets, 0x2000+uint32(rng.IntN(64))*4)
		}
		sites[i].cyclic = rng.IntN(2) == 0
	}
	out := make([]access, 0, n)
	for len(out) < n {
		s := &sites[rng.IntN(nSites)]
		var tgt uint32
		if s.cyclic {
			tgt = s.targets[s.pos%len(s.targets)]
			s.pos++
		} else {
			tgt = s.targets[rng.IntN(len(s.targets))]
		}
		out = append(out, access{s.pc, tgt})
	}
	return out
}

// predictorMakers builds one instance of every predictor family.
func predictorMakers() map[string]func() Predictor {
	return map[string]func() Predictor{
		"btb":     func() Predictor { return NewBTB(nil, UpdateTwoMiss) },
		"btb-alw": func() Predictor { return NewBTB(nil, UpdateAlways) },
		"2lev-unb": func() Predictor {
			return MustTwoLevel(Config{PathLength: 3, Precision: AutoPrecision})
		},
		"2lev-exact": func() Predictor {
			return MustTwoLevel(Config{PathLength: 3, Precision: 0, TableKind: "exact"})
		},
		"2lev-a4": func() Predictor {
			return MustTwoLevel(Config{PathLength: 4, Precision: AutoPrecision, Scheme: 2, TableKind: "assoc4", Entries: 256})
		},
		"2lev-tagless": func() Predictor {
			return MustTwoLevel(Config{PathLength: 2, Precision: AutoPrecision, Scheme: 2, TableKind: "tagless", Entries: 128})
		},
		"hybrid": func() Predictor {
			h, err := NewDualPath(3, 1, "assoc2", 128)
			if err != nil {
				panic(err)
			}
			return h
		},
		"bpst": func() Predictor {
			a := MustTwoLevel(Config{PathLength: 1, Precision: AutoPrecision, Scheme: 2, TableKind: "assoc2", Entries: 64})
			b := MustTwoLevel(Config{PathLength: 3, Precision: AutoPrecision, Scheme: 2, TableKind: "assoc2", Entries: 64})
			h, err := NewBPSTHybrid(a, b, 64)
			if err != nil {
				panic(err)
			}
			return h
		},
		"ppm": func() Predictor {
			c, err := NewCascade([]int{4, 1}, "assoc2", 128)
			if err != nil {
				panic(err)
			}
			return c
		},
		"shared": func() Predictor {
			s, err := NewSharedHybrid(3, 1, "assoc4", 128)
			if err != nil {
				panic(err)
			}
			return s
		},
		"nextbranch": func() Predictor {
			n, err := NewNextBranch(2, "assoc2", 128)
			if err != nil {
				panic(err)
			}
			return n
		},
		"ittage": func() Predictor {
			it, err := NewITTAGE(4, 64, 2)
			if err != nil {
				panic(err)
			}
			return it
		},
	}
}

// TestPredictorsDeterministic: every predictor family gives bit-identical
// results across repeated runs on the same stream.
func TestPredictorsDeterministic(t *testing.T) {
	for name, mk := range predictorMakers() {
		f := func(seed uint64) bool {
			stream := randomStream(seed, 400)
			m1, _ := run(mk(), stream)
			m2, _ := run(mk(), stream)
			return m1 == m2
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestPredictorsResetEquivalence: Reset restores a predictor to its initial
// behaviour.
func TestPredictorsResetEquivalence(t *testing.T) {
	for name, mk := range predictorMakers() {
		p := mk()
		r, ok := p.(Resetter)
		if !ok {
			t.Errorf("%s does not implement Resetter", name)
			continue
		}
		stream := randomStream(99, 500)
		fresh, _ := run(p, stream)
		r.Reset()
		again, _ := run(p, stream)
		if fresh != again {
			t.Errorf("%s: %d misses fresh vs %d after Reset", name, fresh, again)
		}
	}
}

// TestPredictUpdateSeparation: Predict must not change the prediction a
// subsequent Predict at the same pc returns (no architectural state changes
// before Update).
func TestPredictUpdateSeparation(t *testing.T) {
	for name, mk := range predictorMakers() {
		p := mk()
		stream := randomStream(7, 300)
		for _, a := range stream {
			t1, ok1 := p.Predict(a.pc)
			t2, ok2 := p.Predict(a.pc)
			if t1 != t2 || ok1 != ok2 {
				t.Fatalf("%s: repeated Predict differs: (%#x,%v) vs (%#x,%v)", name, t1, ok1, t2, ok2)
			}
			p.Update(a.pc, a.target)
		}
	}
}

// TestP0MatchesBTBProperty: a p=0 two-level predictor and a BTB are the same
// machine on any stream.
func TestP0MatchesBTBProperty(t *testing.T) {
	f := func(seed uint64) bool {
		stream := randomStream(seed, 500)
		m1, _ := run(MustTwoLevel(Config{PathLength: 0, Precision: AutoPrecision}), stream)
		m2, _ := run(NewBTB(nil, UpdateTwoMiss), stream)
		return m1 == m2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMonotoneLearning: on a fully deterministic cyclic stream, no predictor
// family should miss in the second half more than in the first (they only
// accumulate knowledge; nothing evicts on these small working sets).
func TestMonotoneLearning(t *testing.T) {
	cycle := []uint32{0x2000, 0x2004, 0x2000, 0x2008, 0x200C}
	stream := repeat(0x1000, cycle, 200)
	half := len(stream) / 2
	for name, mk := range predictorMakers() {
		p := mk()
		m1, _ := run(p, stream[:half])
		m2, _ := run(p, stream[half:])
		if m2 > m1 {
			t.Errorf("%s: second half missed more (%d) than first (%d)", name, m2, m1)
		}
	}
}
