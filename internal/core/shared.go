package core

import (
	"fmt"

	"github.com/oocsb/ibp/internal/history"
	"github.com/oocsb/ibp/internal/table"
)

// SharedHybrid is the §8.1 future-work design: two path-length components
// that share a single prediction table. Each entry carries a "chosen"
// counter recording how often the hybrid actually used its prediction; on a
// component miss, a victim entry whose prediction is being chosen is
// protected from replacement (its counter is decayed instead), so each
// component effectively only occupies storage for the branches it predicts
// best.
type SharedHybrid struct {
	specs   [2]history.Spec
	hist    *history.File
	tab     table.Bounded
	update  UpdateRule
	max     uint8
	scratch []uint32
	name    string
}

// chosenMax caps the per-entry chosen counter (2 bits, matching the
// confidence counter width the paper settles on).
const chosenMax = 3

// NewSharedHybrid builds a shared-table hybrid with component path lengths
// p1 and p2 over a single table of the given kind and size. The global
// history register is shared too (it is the same physical register in
// hardware); each component applies its own compression spec.
func NewSharedHybrid(p1, p2 int, tableKind string, entries int) (*SharedHybrid, error) {
	if p1 == p2 {
		return nil, fmt.Errorf("core: shared hybrid components must differ in path length (both %d)", p1)
	}
	tab, err := table.New(tableKind, entries)
	if err != nil {
		return nil, err
	}
	depth := p1
	if p2 > depth {
		depth = p2
	}
	mkSpec := func(p int) history.Spec {
		s := history.DefaultSpec(p)
		s.Scheme = defaultScheme(tableKind)
		return s
	}
	return &SharedHybrid{
		specs:   [2]history.Spec{mkSpec(p1), mkSpec(p2)},
		hist:    history.NewFile(32, depth),
		tab:     tab,
		update:  UpdateTwoMiss,
		max:     confMax(2),
		scratch: make([]uint32, 0, depth+1),
		name:    fmt.Sprintf("shared-hybrid[p=%d.%d,%s/%d]", p1, p2, tableKind, entries),
	}, nil
}

// keys computes both components' lookup keys under the current history.
func (s *SharedHybrid) keys(pc uint32) [2]uint64 {
	reg := s.hist.Get(pc)
	return [2]uint64{
		s.specs[0].Key(reg, pc, s.scratch),
		s.specs[1].Key(reg, pc, s.scratch),
	}
}

// choose returns the index of the component whose entry wins metaprediction
// (-1 if neither has an entry), along with the entries.
func (s *SharedHybrid) choose(keys [2]uint64) (int, [2]*table.Entry) {
	var es [2]*table.Entry
	es[0] = s.tab.Probe(keys[0])
	es[1] = s.tab.Probe(keys[1])
	switch {
	case es[0] == nil && es[1] == nil:
		return -1, es
	case es[1] == nil:
		return 0, es
	case es[0] == nil:
		return 1, es
	case es[1].Conf > es[0].Conf:
		return 1, es
	default:
		return 0, es
	}
}

// Predict implements Predictor.
func (s *SharedHybrid) Predict(pc uint32) (uint32, bool) {
	sel, es := s.choose(s.keys(pc))
	if sel < 0 {
		return 0, false
	}
	return es[sel].Target, true
}

// Update implements Predictor.
func (s *SharedHybrid) Update(pc, target uint32) {
	keys := s.keys(pc)
	sel, _ := s.choose(keys)
	// Entry pointers can be invalidated by table mutations (set shuffles,
	// LRU evictions), so each component re-probes by key before training.
	for i := range keys {
		e := s.tab.Probe(keys[i])
		if e == nil {
			// Component miss: insert unless the victim is an entry
			// whose predictions are actively being chosen by the
			// hybrid — then decay its counter and spare it, letting
			// useful entries of either component keep their slots.
			if v := s.tab.Victim(keys[i]); v != nil && v.Chosen > 0 {
				v.Chosen--
				continue
			}
			s.tab.Insert(keys[i]).Target = target
			continue
		}
		if i == sel {
			if e.Target == target {
				if e.Chosen < chosenMax {
					e.Chosen++
				}
			} else if e.Chosen > 0 {
				e.Chosen--
			}
		}
		bumpConf(e, applyTarget(e, target, s.update), s.max)
	}
	s.hist.Get(pc).Push(target)
}

// Name implements Predictor.
func (s *SharedHybrid) Name() string { return s.name }

// Reset implements Resetter.
func (s *SharedHybrid) Reset() {
	s.hist.Reset()
	s.tab.Reset()
}
