package core

import (
	"fmt"

	"github.com/oocsb/ibp/internal/table"
)

// TargetCache is the Pattern History Target Cache of Chang, Hao & Patt
// [CHP97] in its gshare(k) configuration, the closest prior design the paper
// compares against (§7): a global k-bit history of conditional-branch
// taken/not-taken outcomes is xor-ed with the branch address to index a
// target table. Its first level observes conditional branches, not indirect
// branch targets — the key difference from the paper's path-based design.
type TargetCache struct {
	tab      table.Bounded
	histBits int
	hist     uint32
	rule     UpdateRule
	name     string
}

// NewTargetCache returns a target cache with a k-bit taken/not-taken history
// over the given table.
func NewTargetCache(histBits int, tableKind string, entries int) (*TargetCache, error) {
	if histBits < 1 || histBits > 30 {
		return nil, fmt.Errorf("core: target cache history bits %d out of range [1,30]", histBits)
	}
	tab, err := table.New(tableKind, entries)
	if err != nil {
		return nil, err
	}
	return &TargetCache{
		tab:      tab,
		histBits: histBits,
		rule:     UpdateTwoMiss,
		name:     fmt.Sprintf("tcache[gshare(%d),%s/%d]", histBits, tableKind, entries),
	}, nil
}

func (t *TargetCache) key(pc uint32) uint64 {
	return uint64((pc >> 2) ^ t.hist)
}

// Predict implements Predictor.
func (t *TargetCache) Predict(pc uint32) (uint32, bool) {
	e := t.tab.Probe(t.key(pc))
	if e == nil {
		return 0, false
	}
	return e.Target, true
}

// Update implements Predictor.
func (t *TargetCache) Update(pc, target uint32) {
	k := t.key(pc)
	e := t.tab.Probe(k)
	if e == nil {
		e = t.tab.Insert(k)
		e.Target = target
		return
	}
	applyTarget(e, target, t.rule)
}

// ObserveCond implements CondObserver: each conditional branch shifts its
// outcome bit into the global history.
func (t *TargetCache) ObserveCond(pc, target uint32, taken bool) {
	t.hist <<= 1
	if taken {
		t.hist |= 1
	}
	t.hist &= 1<<uint(t.histBits) - 1
}

// Name implements Predictor.
func (t *TargetCache) Name() string { return t.name }

// Reset implements Resetter.
func (t *TargetCache) Reset() {
	t.hist = 0
	t.tab.Reset()
}
