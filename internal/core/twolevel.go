package core

import (
	"fmt"
	"strings"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/history"
	"github.com/oocsb/ibp/internal/table"
)

// AutoPrecision selects the paper's bits-per-target rule b = ⌊24/p⌋ (§4.1).
const AutoPrecision = -1

// Config describes one point in the paper's two-level predictor design
// space. The zero value is not valid; use Defaults() or fill the fields and
// call Validate. Fields left zero take the documented defaults.
type Config struct {
	// PathLength is p, the number of recent targets in the history
	// pattern (§3.2.3). p = 0 degenerates to a BTB.
	PathLength int
	// HistShare is s, the history-sharing region size exponent (§3.2.1):
	// branches agreeing in address bits s..31 share a history register.
	// 2 = per-branch, 31/32 = global. Default (0) = global.
	HistShare int
	// TableShare is h, the history-table sharing exponent (§3.2.2), used
	// only in full-precision mode: branches agreeing in bits h..31 share
	// a history table. 2 = per-branch tables, 31/32 = one global table.
	// Default (0) = per-branch (h=2).
	TableShare int
	// Precision is b, the number of bits kept per history target (§4.1).
	// 0 selects full 32-bit precision with exact keys (the §3
	// unconstrained mode, which requires TableKind "exact");
	// AutoPrecision selects ⌊24/p⌋. With TableKind "exact", a nonzero
	// Precision truncates each target inside the exact key (the §4.1
	// study without the 24-bit pattern cap).
	Precision int
	// StartBit is a, the lowest target address bit selected (§4.1).
	// Default (0) = bit 2, the first bit above the word alignment.
	StartBit int
	// Scheme is the pattern layout (§5.2.1). Default: concatenation for
	// unbounded and fully-associative tables (where layout is irrelevant)
	// — set explicitly for index-based tables; the paper uses Reverse.
	Scheme bits.Scheme
	// KeyOp folds the branch address into the pattern (§4.2). Default:
	// OpXor.
	KeyOp history.KeyOp
	// TableKind is the table organization: "exact" (unbounded,
	// full-precision string keys), "unbounded", "tagless", "assoc1",
	// "assoc2", "assoc4", or "fullassoc". Default: "exact" when
	// Precision is 0, else "unbounded".
	TableKind string
	// Entries is the table capacity for bounded kinds.
	Entries int
	// Update is the target update rule. Default: UpdateTwoMiss.
	Update UpdateRule
	// ConfBits is the width of the per-entry confidence counter used by
	// hybrid metaprediction (§6.1). Default: 2.
	ConfBits int
	// IncludeCond mixes taken conditional-branch targets into the history
	// (the §3.3 variation; the paper found it hurts).
	IncludeCond bool
	// IncludeAddress records the branch address alongside each target in
	// the history (the other §3.3 variation; also hurts). Each executed
	// branch then consumes two history slots.
	IncludeAddress bool
}

// Defaults returns cfg with zero-valued fields replaced by their defaults.
func (cfg Config) Defaults() Config {
	if cfg.HistShare == 0 {
		cfg.HistShare = 32
	}
	if cfg.TableShare == 0 {
		cfg.TableShare = 2
	}
	if cfg.Precision == AutoPrecision {
		cfg.Precision = history.BitsForPath(cfg.PathLength)
	}
	if cfg.StartBit == 0 {
		cfg.StartBit = 2
	}
	if cfg.TableKind == "" {
		if cfg.Precision == 0 && cfg.PathLength > 0 {
			cfg.TableKind = "exact"
		} else {
			cfg.TableKind = "unbounded"
		}
	}
	if cfg.ConfBits == 0 {
		cfg.ConfBits = 2
	}
	return cfg
}

// Validate reports whether the (defaulted) configuration is realizable.
func (cfg Config) Validate() error {
	cfg = cfg.Defaults()
	if cfg.PathLength < 0 || cfg.PathLength > 64 {
		return fmt.Errorf("core: path length %d out of range [0,64]", cfg.PathLength)
	}
	if cfg.Precision < 0 {
		return fmt.Errorf("core: precision %d invalid", cfg.Precision)
	}
	// Exact (byte-key) tables have no pattern width limit; uint64-key
	// tables cap the pattern at 32 bits (the paper stays within 24).
	if cfg.Precision > 0 && cfg.TableKind != "exact" && cfg.PathLength*cfg.Precision > 32 {
		return fmt.Errorf("core: pattern %d×%d bits exceeds 32", cfg.PathLength, cfg.Precision)
	}
	if cfg.Precision > 32 {
		return fmt.Errorf("core: precision %d exceeds 32 bits", cfg.Precision)
	}
	if cfg.Precision == 0 && cfg.PathLength > 0 && cfg.TableKind != "exact" {
		return fmt.Errorf("core: full precision requires TableKind \"exact\", got %q", cfg.TableKind)
	}
	if cfg.StartBit < 2 || cfg.StartBit > 31 {
		return fmt.Errorf("core: start bit %d out of range [2,31]", cfg.StartBit)
	}
	if cfg.ConfBits < 1 || cfg.ConfBits > 8 {
		return fmt.Errorf("core: confidence bits %d out of range [1,8]", cfg.ConfBits)
	}
	switch cfg.TableKind {
	case "exact", "unbounded":
	default:
		if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
			return fmt.Errorf("core: table %q needs a power-of-two entry count, got %d", cfg.TableKind, cfg.Entries)
		}
		if _, err := table.New(cfg.TableKind, cfg.Entries); err != nil {
			return err
		}
	}
	return nil
}

// Name renders a compact configuration string.
func (cfg Config) Name() string {
	cfg = cfg.Defaults()
	var b strings.Builder
	fmt.Fprintf(&b, "2lev[p=%d", cfg.PathLength)
	if cfg.HistShare < 32 {
		fmt.Fprintf(&b, ",s=%d", cfg.HistShare)
	}
	if cfg.TableKind == "exact" {
		fmt.Fprintf(&b, ",full,h=%d", cfg.TableShare)
	} else if cfg.PathLength > 0 {
		fmt.Fprintf(&b, ",b=%d,%v,%v", cfg.Precision, cfg.Scheme, cfg.KeyOp)
	}
	if cfg.TableKind == "exact" || cfg.TableKind == "unbounded" {
		fmt.Fprintf(&b, ",%s", cfg.TableKind)
	} else {
		fmt.Fprintf(&b, ",%s/%d", cfg.TableKind, cfg.Entries)
	}
	if cfg.Update != UpdateTwoMiss {
		fmt.Fprintf(&b, ",%v", cfg.Update)
	}
	b.WriteString("]")
	return b.String()
}

// TwoLevel is the paper's two-level indirect branch predictor (Figure 3 /
// Figure 8): the first level is a (possibly shared) history of recent branch
// targets; the second level is a table of predicted targets keyed by the
// history pattern combined with the branch address.
type TwoLevel struct {
	cfg     Config
	spec    history.Spec
	hist    *history.File
	tab     table.Bounded       // compressed-key mode
	exact   *table.UnboundedStr // full-precision mode
	max     uint8
	scratch []uint32
	keyBuf  []byte

	// Probe memo: the simulator calls Predict(pc) immediately followed by
	// Update(pc, target), and nothing moves the history in between, so the
	// key (and the entry it selects) computed by the prediction probe is
	// still valid when the update arrives. Caching it halves the per-branch
	// key-assembly and table-lookup work — the hot loop of every
	// figure-class sweep. The memo is invalidated by anything that shifts
	// the history or mutates the table (Update itself, ObserveCond, Reset).
	memoPC    uint32
	memoKey   uint64
	memoReg   *history.Register
	memoEntry *table.Entry
	memoValid bool

	// Attribution recording (see core.Attributor): disabled by default so
	// the hot loop pays only a flag check; when enabled, probe and Update
	// fill att with the detail of the current Predict/Update pair.
	attrib bool
	att    AttribState
	// attPatStale marks att.Pattern as not yet hashed from keyBuf (exact
	// tables only); Attribution() resolves it on demand.
	attPatStale bool
	// tabEvicts caches whether tab is bounded (only bounded tables evict);
	// false for exact and unbounded tables, whose attribution skips the
	// eviction-counter reads entirely.
	tabEvicts bool
}

// NewTwoLevel builds a predictor for the configuration.
func NewTwoLevel(cfg Config) (*TwoLevel, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &TwoLevel{
		cfg: cfg,
		spec: history.Spec{
			PathLength: cfg.PathLength,
			Bits:       cfg.Precision,
			StartBit:   cfg.StartBit,
			Scheme:     cfg.Scheme,
			Op:         cfg.KeyOp,
		},
		hist:    history.NewFile(cfg.HistShare, cfg.PathLength),
		max:     confMax(cfg.ConfBits),
		scratch: make([]uint32, 0, cfg.PathLength+1),
		keyBuf:  make([]byte, 0, 4*(cfg.PathLength+1)),
	}
	if cfg.TableKind == "exact" {
		t.exact = table.NewUnboundedStr()
		return t, nil
	}
	tab, err := table.New(cfg.TableKind, cfg.Entries)
	if err != nil {
		return nil, err
	}
	t.tab = tab
	// Only bounded tables can evict, so only they pay the around-the-update
	// counter reads that attribution uses to detect displacement.
	t.tabEvicts = tab.Capacity() >= 0
	// Compressed-key mode reads the pattern on every probe; maintain it
	// incrementally on push instead of reassembling it from all p targets.
	t.hist.Track(t.spec)
	return t, nil
}

// MustTwoLevel is NewTwoLevel for statically-known configurations; it panics
// on configuration errors.
func MustTwoLevel(cfg Config) *TwoLevel {
	t, err := NewTwoLevel(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the (defaulted) configuration.
func (t *TwoLevel) Config() Config { return t.cfg }

// probe locates the entry for the branch at pc under the current history,
// without modifying prediction state beyond recency, and memoizes the result
// for the Update call that typically follows (see the memo fields).
func (t *TwoLevel) probe(pc uint32) *table.Entry {
	reg := t.hist.Get(pc)
	var e *table.Entry
	if t.exact != nil {
		t.keyBuf = history.FullKey(t.keyBuf[:0], reg, pc, t.cfg.TableShare, t.cfg.StartBit, t.cfg.Precision)
		e = t.exact.Probe(t.keyBuf)
	} else {
		t.memoKey = t.spec.Key(reg, pc, t.scratch)
		e = t.tab.Probe(t.memoKey)
	}
	t.memoPC, t.memoReg, t.memoEntry, t.memoValid = pc, reg, e, true
	if t.attrib {
		t.att = AttribState{Component: -1, TableHit: e != nil}
		if t.exact != nil {
			// Hashing the full key is the expensive part of attribution;
			// defer it to Attribution(), which miss-driven consumers (the
			// tuner) call far less than once per record.
			t.attPatStale = true
		} else {
			t.att.Pattern = t.memoKey
		}
		if e != nil {
			t.att.Conf = e.Conf
		}
	}
	return e
}

// Predict implements Predictor.
func (t *TwoLevel) Predict(pc uint32) (uint32, bool) {
	e := t.probe(pc)
	if e == nil {
		return 0, false
	}
	return e.Target, true
}

// PredictConf implements Component: it additionally returns the entry's
// confidence counter for hybrid metaprediction.
func (t *TwoLevel) PredictConf(pc uint32) (uint32, uint8, bool) {
	e := t.probe(pc)
	if e == nil {
		return 0, 0, false
	}
	return e.Target, e.Conf, true
}

// Update implements Predictor: it trains the table entry under the
// pre-branch history, then shifts the history. When the immediately
// preceding Predict/PredictConf probed the same branch, its memoized key and
// entry are reused instead of recomputed (the history cannot have moved in
// between — only Update, ObserveCond, and Reset shift it, and each clears
// the memo).
func (t *TwoLevel) Update(pc, target uint32) {
	var (
		reg   *history.Register
		e     *table.Entry
		found bool
		ev0   uint64
	)
	if t.attrib && t.tabEvicts {
		_, ev0, _ = t.tab.Counts()
	}
	if t.memoValid && t.memoPC == pc {
		reg, e, found = t.memoReg, t.memoEntry, t.memoEntry != nil
		if !found {
			if t.exact != nil {
				e = t.exact.Insert(t.keyBuf) // keyBuf still holds pc's key
			} else {
				e = t.tab.Insert(t.memoKey)
			}
		}
	} else {
		reg = t.hist.Get(pc)
		if t.exact != nil {
			t.keyBuf = history.FullKey(t.keyBuf[:0], reg, pc, t.cfg.TableShare, t.cfg.StartBit, t.cfg.Precision)
			e, found = t.exact.ProbeOrInsert(t.keyBuf)
		} else {
			e, found = t.tab.ProbeOrInsert(t.spec.Key(reg, pc, t.scratch))
		}
	}
	if !found {
		e.Target = target
	} else {
		bumpConf(e, applyTarget(e, target, t.cfg.Update), t.max)
	}
	if t.attrib && !found {
		t.att.NewEntry = true
		if t.tabEvicts {
			_, ev1, _ := t.tab.Counts()
			t.att.Evicted = ev1 > ev0
		}
	}
	t.memoValid = false
	if t.cfg.IncludeAddress {
		reg.Push(pc)
	}
	reg.Push(target)
}

// ObserveCond implements CondObserver for the §3.3 variation: when enabled,
// taken conditional-branch targets enter the history and dilute it.
func (t *TwoLevel) ObserveCond(pc, target uint32, taken bool) {
	if !t.cfg.IncludeCond || !taken {
		return
	}
	t.memoValid = false // the push below moves the history under any memoized key
	reg := t.hist.Get(pc)
	if t.cfg.IncludeAddress {
		reg.Push(pc)
	}
	reg.Push(target)
}

// Name implements Predictor.
func (t *TwoLevel) Name() string { return t.cfg.Name() }

// Utilization reports the fraction of table entries in use (meaningful for
// bounded tables; the paper quotes it when motivating interleaving, §5.2.1).
func (t *TwoLevel) Utilization() float64 {
	if t.tab != nil {
		return t.tab.Utilization()
	}
	return 1
}

// Patterns returns the number of distinct patterns currently stored, the
// statistic the paper quotes per path length in §5.1 (meaningful for
// unbounded tables).
func (t *TwoLevel) Patterns() int {
	if t.exact != nil {
		return t.exact.Len()
	}
	if u, ok := t.tab.(*table.Unbounded64); ok {
		return u.Len()
	}
	return -1
}

// SetAttribution implements Attributor: it enables per-prediction
// attribution recording (off by default; recording costs a few stores per
// branch, so the sweep hot paths never pay for it).
func (t *TwoLevel) SetAttribution(on bool) { t.attrib = on }

// Attribution implements Attributor: the detail recorded for the most
// recent Predict→Update pair. For exact tables the Pattern hash is computed
// here, lazily — keyBuf still holds the pair's key, because only the next
// probe or update overwrites it.
func (t *TwoLevel) Attribution() AttribState {
	if t.attPatStale {
		t.att.Pattern = fnv64(t.keyBuf)
		t.attPatStale = false
	}
	return t.att
}

// TableStats implements TableStatser.
func (t *TwoLevel) TableStats() []table.Stats {
	if t.exact != nil {
		return []table.Stats{t.exact.Stats()}
	}
	return []table.Stats{t.tab.Stats()}
}

// Reset implements Resetter.
func (t *TwoLevel) Reset() {
	t.memoValid = false
	t.hist.Reset()
	if t.exact != nil {
		t.exact.Reset()
	} else {
		t.tab.Reset()
	}
}
