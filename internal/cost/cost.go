// Package cost converts misprediction rates into execution-time estimates,
// reproducing the arithmetic behind the paper's motivation (§1): with
// indirect branches mispredicted an order of magnitude more often than
// conditional ones, indirect misses dominate total branch overhead once a
// program executes fewer than ~a dozen conditionals per indirect branch, and
// better indirect predictors translate into measurable speedups ([CHP97]
// reports 14% for perl and 5% for gcc).
package cost

import "fmt"

// Model is a simple in-order-issue cost model: a baseline CPI plus a fixed
// penalty per mispredicted branch.
type Model struct {
	// BaseCPI is the no-misprediction cycles per instruction.
	BaseCPI float64
	// Penalty is the pipeline refill cost of one misprediction in cycles.
	Penalty float64
	// CondMissRate is the assumed conditional-branch misprediction rate
	// (the paper's §1 example uses ~3%).
	CondMissRate float64
}

// Default4Wide is the paper's §1 setting: a wide-issue machine where a
// misprediction costs around ten cycles and conditional branches predict at
// 97%.
func Default4Wide() Model {
	return Model{BaseCPI: 0.5, Penalty: 10, CondMissRate: 0.03}
}

// Workload characterizes a benchmark's branch densities.
type Workload struct {
	// InstrPerIndirect is the dynamic instruction count per indirect
	// branch.
	InstrPerIndirect float64
	// CondPerIndirect is the dynamic conditional-branch count per
	// indirect branch.
	CondPerIndirect float64
}

// Validate reports implausible workloads.
func (w Workload) Validate() error {
	if w.InstrPerIndirect <= 0 {
		return fmt.Errorf("cost: instructions per indirect must be positive, got %v", w.InstrPerIndirect)
	}
	if w.CondPerIndirect < 0 {
		return fmt.Errorf("cost: conditionals per indirect must be non-negative, got %v", w.CondPerIndirect)
	}
	return nil
}

// Breakdown is the per-instruction cycle accounting for one predictor.
type Breakdown struct {
	// CPI is the total cycles per instruction.
	CPI float64
	// IndirectOverhead and CondOverhead are the cycles per instruction
	// lost to indirect and conditional mispredictions.
	IndirectOverhead float64
	CondOverhead     float64
}

// IndirectShare returns the fraction of branch-misprediction cycles caused
// by indirect branches (the §1 dominance argument).
func (b Breakdown) IndirectShare() float64 {
	total := b.IndirectOverhead + b.CondOverhead
	if total == 0 {
		return 0
	}
	return b.IndirectOverhead / total
}

// Evaluate computes the cycle breakdown for a workload under a given
// indirect misprediction rate (in percent).
func (m Model) Evaluate(w Workload, indirectMissPct float64) (Breakdown, error) {
	if err := w.Validate(); err != nil {
		return Breakdown{}, err
	}
	if indirectMissPct < 0 || indirectMissPct > 100 {
		return Breakdown{}, fmt.Errorf("cost: miss rate %v%% out of range", indirectMissPct)
	}
	ind := (indirectMissPct / 100) * m.Penalty / w.InstrPerIndirect
	cond := m.CondMissRate * m.Penalty * w.CondPerIndirect / w.InstrPerIndirect
	return Breakdown{
		CPI:              m.BaseCPI + ind + cond,
		IndirectOverhead: ind,
		CondOverhead:     cond,
	}, nil
}

// Speedup returns the execution-time ratio of running the workload with the
// baseline indirect predictor versus the improved one (1.10 = 10% faster).
func (m Model) Speedup(w Workload, baselineMissPct, improvedMissPct float64) (float64, error) {
	base, err := m.Evaluate(w, baselineMissPct)
	if err != nil {
		return 0, err
	}
	better, err := m.Evaluate(w, improvedMissPct)
	if err != nil {
		return 0, err
	}
	return base.CPI / better.CPI, nil
}

// DominanceThreshold returns the §1 break-even point: the number of
// conditional branches per indirect branch below which indirect misses
// account for the majority of branch misprediction cycles, given the
// indirect miss rate (percent).
func (m Model) DominanceThreshold(indirectMissPct float64) float64 {
	if m.CondMissRate <= 0 {
		return 0
	}
	return (indirectMissPct / 100) / m.CondMissRate
}
