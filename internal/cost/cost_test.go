package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperDominanceExample(t *testing.T) {
	// §1: "if indirect branches are mispredicted 12 times more frequently
	// (36% vs. 3%), indirect branch misses will dominate as long as
	// indirect branches occur more frequently than every 12 conditional
	// branches."
	m := Default4Wide()
	if got := m.DominanceThreshold(36); math.Abs(got-12) > 1e-9 {
		t.Errorf("DominanceThreshold(36%%) = %v, want 12", got)
	}
	w := Workload{InstrPerIndirect: 100, CondPerIndirect: 11}
	b, err := m.Evaluate(w, 36)
	if err != nil {
		t.Fatal(err)
	}
	if b.IndirectShare() <= 0.5 {
		t.Errorf("at 11 cond/indirect, indirect share = %v, want > 0.5", b.IndirectShare())
	}
	w.CondPerIndirect = 13
	b, _ = m.Evaluate(w, 36)
	if b.IndirectShare() >= 0.5 {
		t.Errorf("at 13 cond/indirect, indirect share = %v, want < 0.5", b.IndirectShare())
	}
}

func TestEvaluateArithmetic(t *testing.T) {
	m := Model{BaseCPI: 0.5, Penalty: 10, CondMissRate: 0.03}
	w := Workload{InstrPerIndirect: 50, CondPerIndirect: 6}
	b, err := m.Evaluate(w, 25)
	if err != nil {
		t.Fatal(err)
	}
	wantInd := 0.25 * 10 / 50      // 0.05
	wantCond := 0.03 * 10 * 6 / 50 // 0.036
	if math.Abs(b.IndirectOverhead-wantInd) > 1e-12 {
		t.Errorf("IndirectOverhead = %v, want %v", b.IndirectOverhead, wantInd)
	}
	if math.Abs(b.CondOverhead-wantCond) > 1e-12 {
		t.Errorf("CondOverhead = %v, want %v", b.CondOverhead, wantCond)
	}
	if math.Abs(b.CPI-(0.5+wantInd+wantCond)) > 1e-12 {
		t.Errorf("CPI = %v", b.CPI)
	}
}

func TestSpeedupImprovesWithBetterPrediction(t *testing.T) {
	m := Default4Wide()
	w := Workload{InstrPerIndirect: 47, CondPerIndirect: 6} // idl/jhm shape
	s, err := m.Speedup(w, 25, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1 {
		t.Errorf("speedup %v, want > 1", s)
	}
	// Identical rates give no speedup.
	if s2, _ := m.Speedup(w, 10, 10); s2 != 1 {
		t.Errorf("self speedup %v", s2)
	}
	// Sparse indirect branches make the speedup negligible (the AVG-infreq
	// argument for excluding them from averages).
	sparse := Workload{InstrPerIndirect: 56355, CondPerIndirect: 7123}
	sSparse, _ := m.Speedup(sparse, 25, 6)
	if sSparse > 1.001 {
		t.Errorf("go-shaped workload speedup %v, want ~1", sSparse)
	}
}

func TestSpeedupMonotone(t *testing.T) {
	m := Default4Wide()
	f := func(missA, missB uint8, ipi uint16) bool {
		a := float64(missA % 101)
		b := float64(missB % 101)
		w := Workload{InstrPerIndirect: float64(ipi%1000) + 1, CondPerIndirect: 5}
		s, err := m.Speedup(w, a, b)
		if err != nil {
			return false
		}
		switch {
		case a > b:
			return s >= 1
		case a < b:
			return s <= 1
		default:
			return s == 1
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	m := Default4Wide()
	if _, err := m.Evaluate(Workload{InstrPerIndirect: 0}, 10); err == nil {
		t.Error("zero instr/indirect accepted")
	}
	if _, err := m.Evaluate(Workload{InstrPerIndirect: 10, CondPerIndirect: -1}, 10); err == nil {
		t.Error("negative cond/indirect accepted")
	}
	if _, err := m.Evaluate(Workload{InstrPerIndirect: 10}, 120); err == nil {
		t.Error("miss rate > 100 accepted")
	}
	if _, err := m.Speedup(Workload{InstrPerIndirect: 0}, 1, 2); err == nil {
		t.Error("speedup with bad workload accepted")
	}
	if _, err := m.Speedup(Workload{InstrPerIndirect: 10}, 1, 200); err == nil {
		t.Error("speedup with bad rate accepted")
	}
	if th := (Model{}).DominanceThreshold(30); th != 0 {
		t.Errorf("zero cond miss rate threshold = %v", th)
	}
	if b := (Breakdown{}); b.IndirectShare() != 0 {
		t.Error("zero breakdown share")
	}
}
