package experiment

import (
	"fmt"
	"math"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "fig11",
		Artifact: "Figure 11",
		Desc:     "limited-size fully-associative LRU tables, with capacity-miss attribution",
		Run:      runFig11,
	})
	register(Experiment{
		ID:       "fig12",
		Artifact: "Figure 12",
		Desc:     "4096-entry tables by associativity, concatenated patterns",
		Run:      runFig12,
	})
	register(Experiment{
		ID:       "fig14",
		Artifact: "Figure 14",
		Desc:     "4096-entry tables by associativity, reverse interleaving",
		Run:      runFig14,
	})
	register(Experiment{
		ID:       "fig15",
		Artifact: "Figure 15 (§5.2.1)",
		Desc:     "interleaving schemes: straight vs reverse vs ping-pong",
		Run:      runFig15,
	})
	register(Experiment{
		ID:       "fig16",
		Artifact: "Figure 16",
		Desc:     "table size × associativity sweep with best path length per size",
		Run:      runFig16,
	})
}

// fig11Sizes are the table sizes of the §5 experiments.
var fig11Sizes = []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// boundedConfig is the §4–§5 default configuration: b=⌊24/p⌋ bits from bit 2,
// xor key folding.
func boundedConfig(p int, scheme bits.Scheme, kind string, entries int) core.Config {
	return core.Config{
		PathLength: p,
		Precision:  core.AutoPrecision,
		Scheme:     scheme,
		TableKind:  kind,
		Entries:    entries,
	}
}

// avgsWithShadow runs each configuration over the suite with an unbounded
// shadow twin — all configurations batched through shared trace passes — and
// returns per-configuration (AVG misprediction %, AVG capacity-miss %).
func (c *Context) avgsWithShadow(cfgs []core.Config) (miss, capac []float64, err error) {
	specs := make([]SweepSpec, len(cfgs))
	for i, cfg := range cfgs {
		cfg := cfg
		shadowCfg := cfg
		shadowCfg.TableKind = "unbounded"
		shadowCfg.Entries = 0
		specs[i] = SweepSpec{
			Mk:       func() (core.Predictor, error) { return core.NewTwoLevel(cfg) },
			MkShadow: func() (core.Predictor, error) { return core.NewTwoLevel(shadowCfg) },
		}
	}
	res, err := c.SweepSpecs(specs, false)
	if err != nil {
		return nil, nil, err
	}
	miss = make([]float64, len(res))
	capac = make([]float64, len(res))
	for i, m := range res {
		mrates := make(map[string]float64, len(m))
		crates := make(map[string]float64, len(m))
		for bench, r := range m {
			mrates[bench] = r.MissRate()
			crates[bench] = r.CapacityRate()
		}
		miss[i], _ = stats.GroupAverage(mrates, stats.GroupAVG)
		capac[i], _ = stats.GroupAverage(crates, stats.GroupAVG)
	}
	return miss, capac, nil
}

func runFig11(ctx *Context) ([]*stats.Table, error) {
	miss := stats.NewTable("Figure 11: fully-associative LRU tables (AVG misprediction %)", "path")
	capac := stats.NewTable("Figure 11: capacity misses (AVG %, miss the unbounded twin predicts)", "path")
	paths := []int{0, 1, 2, 3, 4, 6, 8, 10, 12}
	var cfgs []core.Config
	for _, p := range paths {
		for _, size := range fig11Sizes {
			cfgs = append(cfgs, boundedConfig(p, bits.Concat, "fullassoc", size))
		}
	}
	m, cp, err := ctx.avgsWithShadow(cfgs)
	if err != nil {
		return nil, err
	}
	for i, p := range paths {
		for j, size := range fig11Sizes {
			col := fmt.Sprintf("%d", size)
			row := fmt.Sprintf("p=%d", p)
			miss.Set(row, col, m[i*len(fig11Sizes)+j])
			capac.Set(row, col, cp[i*len(fig11Sizes)+j])
		}
	}
	return []*stats.Table{miss, capac}, nil
}

// avgsOver returns the AVG misprediction rate for each configuration,
// simulated in one batched sweep.
func (c *Context) avgsOver(cfgs []core.Config) ([]float64, error) {
	rates, err := c.SweepConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rates))
	for i, m := range rates {
		out[i], _ = stats.GroupAverage(m, stats.GroupAVG)
	}
	return out, nil
}

// assocRows are the table organizations of Figures 12/14.
var assocRows = []string{"tagless", "assoc1", "assoc2", "assoc4"}

func runAssocSweep(ctx *Context, title string, scheme bits.Scheme, entries int) (*stats.Table, error) {
	t := stats.NewTable(title, "organization")
	var cfgs []core.Config
	for _, kind := range assocRows {
		for p := 0; p <= 12; p++ {
			cfgs = append(cfgs, boundedConfig(p, scheme, kind, entries))
		}
	}
	avgs, err := ctx.avgsOver(cfgs)
	if err != nil {
		return nil, err
	}
	for i, kind := range assocRows {
		for p := 0; p <= 12; p++ {
			t.Set(kind, fmt.Sprintf("p=%d", p), avgs[i*13+p])
		}
	}
	return t, nil
}

func runFig12(ctx *Context) ([]*stats.Table, error) {
	t, err := runAssocSweep(ctx, "Figure 12: 4096 entries, concatenated patterns (AVG)", bits.Concat, 4096)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

func runFig14(ctx *Context) ([]*stats.Table, error) {
	t, err := runAssocSweep(ctx, "Figure 14: 4096 entries, reverse interleaving (AVG)", bits.Reverse, 4096)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

func runFig15(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 15: interleaving schemes, 1-way 4096 entries (AVG)", "scheme")
	schemes := []bits.Scheme{bits.Concat, bits.Straight, bits.Reverse, bits.PingPong}
	var cfgs []core.Config
	for _, scheme := range schemes {
		for p := 1; p <= 12; p++ {
			cfgs = append(cfgs, boundedConfig(p, scheme, "assoc1", 4096))
		}
	}
	avgs, err := ctx.avgsOver(cfgs)
	if err != nil {
		return nil, err
	}
	for i, scheme := range schemes {
		for p := 1; p <= 12; p++ {
			t.Set(scheme.String(), fmt.Sprintf("p=%d", p), avgs[i*12+p-1])
		}
	}
	return []*stats.Table{t}, nil
}

func runFig16(ctx *Context) ([]*stats.Table, error) {
	full := stats.NewTable("Figure 16: AVG misprediction by size × path (tagless / assoc2 / assoc4)", "config")
	best := stats.NewTable("Figure 16: best path length per size", "organization")
	bestMiss := stats.NewTable("Figure 16: best misprediction per size (AVG)", "organization")
	sizes := []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	kinds := []string{"tagless", "assoc2", "assoc4"}
	var cfgs []core.Config
	for _, kind := range kinds {
		for _, size := range sizes {
			for p := 0; p <= 12; p++ {
				cfgs = append(cfgs, boundedConfig(p, bits.Reverse, kind, size))
			}
		}
	}
	avgs, err := ctx.avgsOver(cfgs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, kind := range kinds {
		for _, size := range sizes {
			bestP, bestV := -1, math.Inf(1)
			for p := 0; p <= 12; p++ {
				avg := avgs[i]
				i++
				full.Set(fmt.Sprintf("%s/%d", kind, size), fmt.Sprintf("p=%d", p), avg)
				if avg < bestV {
					bestP, bestV = p, avg
				}
			}
			col := fmt.Sprintf("%d", size)
			best.Set(kind, col, float64(bestP))
			bestMiss.Set(kind, col, bestV)
		}
	}
	return []*stats.Table{bestMiss, best, full}, nil
}
