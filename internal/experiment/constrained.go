package experiment

import (
	"fmt"
	"math"
	"sync"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "fig11",
		Artifact: "Figure 11",
		Desc:     "limited-size fully-associative LRU tables, with capacity-miss attribution",
		Run:      runFig11,
	})
	register(Experiment{
		ID:       "fig12",
		Artifact: "Figure 12",
		Desc:     "4096-entry tables by associativity, concatenated patterns",
		Run:      runFig12,
	})
	register(Experiment{
		ID:       "fig14",
		Artifact: "Figure 14",
		Desc:     "4096-entry tables by associativity, reverse interleaving",
		Run:      runFig14,
	})
	register(Experiment{
		ID:       "fig15",
		Artifact: "Figure 15 (§5.2.1)",
		Desc:     "interleaving schemes: straight vs reverse vs ping-pong",
		Run:      runFig15,
	})
	register(Experiment{
		ID:       "fig16",
		Artifact: "Figure 16",
		Desc:     "table size × associativity sweep with best path length per size",
		Run:      runFig16,
	})
}

// fig11Sizes are the table sizes of the §5 experiments.
var fig11Sizes = []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// boundedConfig is the §4–§5 default configuration: b=⌊24/p⌋ bits from bit 2,
// xor key folding.
func boundedConfig(p int, scheme bits.Scheme, kind string, entries int) core.Config {
	return core.Config{
		PathLength: p,
		Precision:  core.AutoPrecision,
		Scheme:     scheme,
		TableKind:  kind,
		Entries:    entries,
	}
}

// avgWithShadow runs the configuration over the suite with an unbounded
// shadow twin and returns (AVG misprediction %, AVG capacity-miss %).
func (c *Context) avgWithShadow(cfg core.Config) (float64, float64, error) {
	miss := make(map[string]float64, len(c.Suite))
	capac := make(map[string]float64, len(c.Suite))
	var mu sync.Mutex
	err := forEach(c.ctx, len(c.Suite), func(i int) error {
		bench := c.Suite[i]
		subject, err := core.NewTwoLevel(cfg)
		if err != nil {
			return err
		}
		shadowCfg := cfg
		shadowCfg.TableKind = "unbounded"
		shadowCfg.Entries = 0
		shadow, err := core.NewTwoLevel(shadowCfg)
		if err != nil {
			return err
		}
		res := sim.Run(subject, c.Trace(bench), sim.Options{Shadow: shadow})
		mu.Lock()
		miss[bench.Name] = res.MissRate()
		capac[bench.Name] = res.CapacityRate()
		mu.Unlock()
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	m, _ := stats.GroupAverage(miss, stats.GroupAVG)
	cp, _ := stats.GroupAverage(capac, stats.GroupAVG)
	return m, cp, nil
}

func runFig11(ctx *Context) ([]*stats.Table, error) {
	miss := stats.NewTable("Figure 11: fully-associative LRU tables (AVG misprediction %)", "path")
	capac := stats.NewTable("Figure 11: capacity misses (AVG %, miss the unbounded twin predicts)", "path")
	paths := []int{0, 1, 2, 3, 4, 6, 8, 10, 12}
	for _, p := range paths {
		for _, size := range fig11Sizes {
			cfg := boundedConfig(p, bits.Concat, "fullassoc", size)
			m, cp, err := ctx.avgWithShadow(cfg)
			if err != nil {
				return nil, err
			}
			col := fmt.Sprintf("%d", size)
			row := fmt.Sprintf("p=%d", p)
			miss.Set(row, col, m)
			capac.Set(row, col, cp)
		}
	}
	return []*stats.Table{miss, capac}, nil
}

// avgOver returns the AVG misprediction rate for a configuration.
func (c *Context) avgOver(cfg core.Config) (float64, error) {
	rates, err := c.Sweep(func() (core.Predictor, error) {
		return core.NewTwoLevel(cfg)
	})
	if err != nil {
		return 0, err
	}
	avg, _ := stats.GroupAverage(rates, stats.GroupAVG)
	return avg, nil
}

// assocRows are the table organizations of Figures 12/14.
var assocRows = []string{"tagless", "assoc1", "assoc2", "assoc4"}

func runAssocSweep(ctx *Context, title string, scheme bits.Scheme, entries int) (*stats.Table, error) {
	t := stats.NewTable(title, "organization")
	for _, kind := range assocRows {
		for p := 0; p <= 12; p++ {
			avg, err := ctx.avgOver(boundedConfig(p, scheme, kind, entries))
			if err != nil {
				return nil, err
			}
			t.Set(kind, fmt.Sprintf("p=%d", p), avg)
		}
	}
	return t, nil
}

func runFig12(ctx *Context) ([]*stats.Table, error) {
	t, err := runAssocSweep(ctx, "Figure 12: 4096 entries, concatenated patterns (AVG)", bits.Concat, 4096)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

func runFig14(ctx *Context) ([]*stats.Table, error) {
	t, err := runAssocSweep(ctx, "Figure 14: 4096 entries, reverse interleaving (AVG)", bits.Reverse, 4096)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{t}, nil
}

func runFig15(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 15: interleaving schemes, 1-way 4096 entries (AVG)", "scheme")
	for _, scheme := range []bits.Scheme{bits.Concat, bits.Straight, bits.Reverse, bits.PingPong} {
		for p := 1; p <= 12; p++ {
			avg, err := ctx.avgOver(boundedConfig(p, scheme, "assoc1", 4096))
			if err != nil {
				return nil, err
			}
			t.Set(scheme.String(), fmt.Sprintf("p=%d", p), avg)
		}
	}
	return []*stats.Table{t}, nil
}

func runFig16(ctx *Context) ([]*stats.Table, error) {
	full := stats.NewTable("Figure 16: AVG misprediction by size × path (tagless / assoc2 / assoc4)", "config")
	best := stats.NewTable("Figure 16: best path length per size", "organization")
	bestMiss := stats.NewTable("Figure 16: best misprediction per size (AVG)", "organization")
	sizes := []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	for _, kind := range []string{"tagless", "assoc2", "assoc4"} {
		for _, size := range sizes {
			bestP, bestV := -1, math.Inf(1)
			for p := 0; p <= 12; p++ {
				avg, err := ctx.avgOver(boundedConfig(p, bits.Reverse, kind, size))
				if err != nil {
					return nil, err
				}
				full.Set(fmt.Sprintf("%s/%d", kind, size), fmt.Sprintf("p=%d", p), avg)
				if avg < bestV {
					bestP, bestV = p, avg
				}
			}
			col := fmt.Sprintf("%d", size)
			best.Set(kind, col, float64(bestP))
			bestMiss.Set(kind, col, bestV)
		}
	}
	return []*stats.Table{bestMiss, best, full}, nil
}
