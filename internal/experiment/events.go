package experiment

import (
	"fmt"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/ptrace"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/workload"
)

// RunEvents runs one benchmark × predictor cell with per-prediction event
// capture attached: the sweep-cell equivalent that ibpreport uses to rebuild
// any grid cell with full attribution. The benchmark trace comes from the
// context's single-flight cache, so a report over a cell that a sweep in the
// same process already visited pays no second generation.
//
// The sink belongs to this run alone (see sim.Options.Events); pass a fresh
// one per call. Unlike the batched sweeps, a cell failure here is returned,
// not degraded — a report over a broken cell should say so.
func (c *Context) RunEvents(bench workload.Config, spec SweepSpec, sink *ptrace.EventSink) (sim.Result, error) {
	if spec.Mk == nil {
		return sim.Result{}, fmt.Errorf("experiment: RunEvents needs a predictor factory")
	}
	if spec.Opts.Shadow != nil {
		return sim.Result{}, fmt.Errorf("experiment: set SweepSpec.MkShadow, not Opts.Shadow")
	}
	p, err := spec.Mk()
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiment: %s predictor: %w", bench.Name, err)
	}
	opts := spec.Opts
	opts.Events = sink
	if spec.MkShadow != nil {
		shadow, err := spec.MkShadow()
		if err != nil {
			return sim.Result{}, fmt.Errorf("experiment: %s shadow: %w", bench.Name, err)
		}
		opts.Shadow = shadow
	}
	tr := c.Trace(bench)
	res, err := sim.RunBatchEach(c.ctx, []core.Predictor{p}, tr, []sim.Options{opts})
	if err != nil {
		return sim.Result{}, err
	}
	return res[0], nil
}
