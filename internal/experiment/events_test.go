package experiment

import (
	"testing"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/ptrace"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/workload"
)

func TestRunEventsMatchesSweep(t *testing.T) {
	c := NewContext(2000)
	bench, err := workload.ByName("idl")
	if err != nil {
		t.Fatal(err)
	}
	spec := SweepSpec{
		Mk: func() (core.Predictor, error) {
			return core.NewTwoLevel(core.Config{
				PathLength: 2, Precision: core.AutoPrecision,
				Scheme: bits.Reverse, TableKind: "assoc4", Entries: 512,
			})
		},
		Opts: sim.Options{Warmup: 100},
	}
	sink := ptrace.NewEventSink(4096, 1)
	res, err := c.RunEvents(bench, spec, sink)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed == 0 {
		t.Fatal("no branches executed")
	}
	if sink.Offered() != uint64(res.Executed+100) {
		t.Errorf("sink offered %d events for %d counted + 100 warmup branches",
			sink.Offered(), res.Executed)
	}

	// The same cell through the plain sweep path must agree exactly: event
	// capture may not perturb the simulation.
	p, err := spec.Mk()
	if err != nil {
		t.Fatal(err)
	}
	plain := sim.Run(p, c.Trace(bench), sim.Options{Warmup: 100})
	if plain.Executed != res.Executed || plain.Misses != res.Misses {
		t.Errorf("event-capture run %d/%d != plain run %d/%d",
			res.Executed, res.Misses, plain.Executed, plain.Misses)
	}
}

func TestRunEventsValidation(t *testing.T) {
	c := NewContext(500)
	bench, err := workload.ByName("idl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunEvents(bench, SweepSpec{}, nil); err == nil {
		t.Error("nil Mk accepted")
	}
	spec := SweepSpec{
		Mk:   func() (core.Predictor, error) { return core.NewBTB(nil, core.UpdateAlways), nil },
		Opts: sim.Options{Shadow: core.NewBTB(nil, core.UpdateAlways)},
	}
	if _, err := c.RunEvents(bench, spec, nil); err == nil {
		t.Error("Opts.Shadow accepted (must come from MkShadow)")
	}
}
