// Package experiment reproduces every table and figure of the paper's
// evaluation. Each experiment is a registered runner that simulates the
// relevant predictor configurations over the 17-benchmark suite and returns
// paper-style result tables; cmd/ibpsweep is the front end.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/stats"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

// Context carries the shared parameters of an experiment run and caches the
// generated benchmark traces (the expensive part) across experiments.
type Context struct {
	// TraceLen is the number of indirect branches per benchmark; the
	// paper uses up to 6M, the default here is workload.DefaultBranches.
	TraceLen int
	// Suite is the benchmark set (default: the paper's 17 benchmarks).
	Suite []workload.Config

	ctx context.Context // cancellation for the whole run; never nil

	mu        sync.Mutex
	indirect  map[string]trace.Trace   // cached indirect-only traces
	summaries map[string]trace.Summary // cached full-trace summaries
	appx      appendix                 // memoized Table A-1 computation
	failures  []CellError              // degraded per-cell failures since the last Take
}

// NewContext returns a context over the full suite. traceLen <= 0 selects
// the default length.
func NewContext(traceLen int) *Context {
	if traceLen <= 0 {
		traceLen = workload.DefaultBranches
	}
	return &Context{
		TraceLen:  traceLen,
		Suite:     workload.Suite(),
		ctx:       context.Background(),
		indirect:  make(map[string]trace.Trace),
		summaries: make(map[string]trace.Summary),
	}
}

// WithContext attaches a cancellation context to the run and returns c.
// Sweeps and cancellation-aware experiments stop early (returning ctx's
// error) once it is done.
func (c *Context) WithContext(ctx context.Context) *Context {
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx = ctx
	return c
}

// Ctx returns the run's cancellation context (never nil).
func (c *Context) Ctx() context.Context { return c.ctx }

// Err returns the cancellation error once the run's context is done, nil
// before that. Experiments with hand-rolled benchmark loops call this at
// iteration boundaries.
func (c *Context) Err() error { return c.ctx.Err() }

// CellError records one benchmark cell that failed after retries and was
// degraded to an error row instead of aborting the sweep.
type CellError struct {
	// Bench is the benchmark (suite cell) that failed.
	Bench string
	// Err is the failure, with panics converted to errors.
	Err error
}

func (e CellError) Error() string { return fmt.Sprintf("%s: %v", e.Bench, e.Err) }

// recordFailure remembers a degraded cell.
func (c *Context) recordFailure(bench string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures = append(c.failures, CellError{Bench: bench, Err: err})
}

// TakeFailures returns the degraded cell failures accumulated since the
// previous call and clears the list; the front end reports them alongside
// the (partial) result tables.
func (c *Context) TakeFailures() []CellError {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.failures
	c.failures = nil
	return out
}

// Trace returns the cached indirect-branch-only trace for a benchmark
// (sufficient for every predictor except conditional-history consumers; use
// FullTrace for those).
func (c *Context) Trace(cfg workload.Config) trace.Trace {
	c.mu.Lock()
	tr, ok := c.indirect[cfg.Name]
	c.mu.Unlock()
	if ok {
		return tr
	}
	full := cfg.MustGenerate(c.TraceLen)
	sum := trace.Summarize(full)
	tr = full.Indirect()
	c.mu.Lock()
	c.indirect[cfg.Name] = tr
	c.summaries[cfg.Name] = sum
	c.mu.Unlock()
	return tr
}

// FullTrace regenerates the complete trace (conditionals, returns) for a
// benchmark; it is not cached.
func (c *Context) FullTrace(cfg workload.Config) trace.Trace {
	return cfg.MustGenerate(c.TraceLen)
}

// Summary returns the Tables 1–2 statistics of the benchmark's full trace.
func (c *Context) Summary(cfg workload.Config) trace.Summary {
	c.Trace(cfg) // ensure cached
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.summaries[cfg.Name]
}

// transientError marks a failure worth retrying (flaky I/O, resource
// pressure) as opposed to a deterministic one (bad configuration, panic).
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so forEach's workers retry the cell with capped
// backoff before giving up. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Retry policy for transient cell failures.
const (
	maxCellAttempts = 3
	baseBackoff     = 10 * time.Millisecond
	maxBackoff      = 250 * time.Millisecond
)

// protect runs fn(i), converting a panic into an error carrying the stack,
// so one misbehaving cell cannot take down the whole sweep process.
func protect(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cell %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}

// runCell executes one cell with panic isolation, retrying failures marked
// Transient with capped exponential backoff. Cancellation cuts the backoff
// short.
func runCell(ctx context.Context, i int, fn func(i int) error) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = protect(i, fn)
		if err == nil || !IsTransient(err) || attempt >= maxCellAttempts {
			return err
		}
		delay := baseBackoff << (attempt - 1)
		if delay > maxBackoff {
			delay = maxBackoff
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// forEach runs fn(i) for every i in [0, n) on up to GOMAXPROCS goroutines
// and returns the first error. Panics in fn are recovered into errors,
// errors marked Transient are retried with capped backoff, and dispatch
// stops at the first recorded failure (or context cancellation) — cells
// already in flight finish, no new ones start.
func forEach(ctx context.Context, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		next     = make(chan int)
		done     = make(chan struct{})
		stopOnce sync.Once
		mu       sync.Mutex
		firstErr error
	)
	fail := func(e error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		mu.Unlock()
		stopOnce.Do(func() { close(done) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if e := runCell(ctx, i, fn); e != nil {
					fail(e)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		// Non-blocking check first: a recorded failure must win over an
		// available worker, otherwise the select below could keep picking
		// the send case at random after the failure.
		select {
		case <-done:
			break dispatch
		case <-ctx.Done():
			fail(ctx.Err())
			break dispatch
		default:
		}
		select {
		case <-done:
			break dispatch
		case <-ctx.Done():
			fail(ctx.Err())
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}

// Sweep simulates one predictor per benchmark (constructed by mk, which must
// return a fresh predictor per call) and returns per-benchmark misprediction
// rates in percent.
func (c *Context) Sweep(mk func() (core.Predictor, error)) (map[string]float64, error) {
	return c.sweepOpts(mk, sim.Options{}, false)
}

// SweepFull is Sweep over complete traces (conditional records included),
// for predictors implementing core.CondObserver.
func (c *Context) SweepFull(mk func() (core.Predictor, error)) (map[string]float64, error) {
	return c.sweepOpts(mk, sim.Options{}, true)
}

func (c *Context) sweepOpts(mk func() (core.Predictor, error), opts sim.Options, full bool) (map[string]float64, error) {
	out := make(map[string]float64, len(c.Suite))
	var mu sync.Mutex
	err := forEach(c.ctx, len(c.Suite), func(i int) error {
		cfg := c.Suite[i]
		// Predictor construction errors are deterministic configuration
		// mistakes: every cell would fail identically, so they abort the
		// sweep rather than degrade.
		p, err := mk()
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.Name, err)
		}
		// The per-cell work (trace generation + simulation) is isolated:
		// a panic or error here degrades to a recorded error row so the
		// other benchmarks still produce results. Cancellation stays
		// fatal — it must stop the whole sweep.
		cellErr := protect(i, func(int) error {
			var tr trace.Trace
			if full {
				tr = c.FullTrace(cfg)
			} else {
				tr = c.Trace(cfg)
			}
			res, err := sim.RunContext(c.ctx, p, tr, opts)
			if err != nil {
				return err
			}
			mu.Lock()
			out[cfg.Name] = res.MissRate()
			mu.Unlock()
			return nil
		})
		if cellErr != nil {
			if errors.Is(cellErr, context.Canceled) || errors.Is(cellErr, context.DeadlineExceeded) {
				return cellErr
			}
			c.recordFailure(cfg.Name, cellErr)
		}
		return nil
	})
	return out, err
}

// GroupRow extends per-benchmark rates with the Table 3 group averages and
// returns the value for the requested key ("AVG" etc. or a benchmark name).
func GroupRow(values map[string]float64) map[string]float64 {
	return stats.WithGroups(values)
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the short name used by cmd/ibpsweep and bench targets.
	ID string
	// Artifact names the paper table/figure, e.g. "Figure 9".
	Artifact string
	// Desc is a one-line description.
	Desc string
	// Run produces the experiment's result tables.
	Run func(ctx *Context) ([]*stats.Table, error)
}

var (
	regMu    sync.Mutex
	registry []Experiment
)

// register adds an experiment; called from init functions of this package.
func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, e)
}

// All returns the registered experiments sorted by id.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiment: unknown id %q", id)
}

// groupRows lists the group labels shown as rows in the unconstrained
// figures, AVG first as the headline.
var groupRows = []string{
	stats.GroupAVG, stats.GroupOO, stats.GroupC,
	stats.Group100, stats.Group200, stats.GroupInfreq,
}

// setGroups writes a column of group averages into a table.
func setGroups(t *stats.Table, col string, perBench map[string]float64) {
	ext := stats.WithGroups(perBench)
	for _, g := range groupRows {
		if v, ok := ext[g]; ok {
			t.Set(g, col, v)
		}
	}
}
