// Package experiment reproduces every table and figure of the paper's
// evaluation. Each experiment is a registered runner that simulates the
// relevant predictor configurations over the 17-benchmark suite and returns
// paper-style result tables; cmd/ibpsweep is the front end.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/stats"
	"github.com/oocsb/ibp/internal/telemetry"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

// Context carries the shared parameters of an experiment run and caches the
// generated benchmark traces (the expensive part) across experiments.
type Context struct {
	// TraceLen is the number of indirect branches per benchmark; the
	// paper uses up to 6M, the default here is workload.DefaultBranches.
	TraceLen int
	// Suite is the benchmark set (default: the paper's 17 benchmarks).
	Suite []workload.Config

	ctx context.Context // cancellation for the whole run; never nil

	prog progress // cumulative sweep progress (atomics; see Progress)

	mu       sync.Mutex
	traces   map[string]*traceEntry // single-flight indirect traces + summaries
	fulls    map[string]*traceEntry // single-flight full traces
	appx     appendix               // memoized Table A-1 computation
	failures []CellError            // degraded per-cell failures since the last Take
}

// NewContext returns a context over the full suite. traceLen <= 0 selects
// the default length.
func NewContext(traceLen int) *Context {
	if traceLen <= 0 {
		traceLen = workload.DefaultBranches
	}
	return &Context{
		TraceLen: traceLen,
		Suite:    workload.Suite(),
		ctx:      context.Background(),
		traces:   make(map[string]*traceEntry),
		fulls:    make(map[string]*traceEntry),
	}
}

// WithContext attaches a cancellation context to the run and returns c.
// Sweeps and cancellation-aware experiments stop early (returning ctx's
// error) once it is done.
func (c *Context) WithContext(ctx context.Context) *Context {
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx = ctx
	return c
}

// Ctx returns the run's cancellation context (never nil).
func (c *Context) Ctx() context.Context { return c.ctx }

// Err returns the cancellation error once the run's context is done, nil
// before that. Experiments with hand-rolled benchmark loops call this at
// iteration boundaries.
func (c *Context) Err() error { return c.ctx.Err() }

// CellError records one benchmark cell that failed after retries and was
// degraded to an error row instead of aborting the sweep.
type CellError struct {
	// Bench is the benchmark (suite cell) that failed.
	Bench string
	// Err is the failure, with panics converted to errors.
	Err error
}

func (e CellError) Error() string { return fmt.Sprintf("%s: %v", e.Bench, e.Err) }

// recordFailure remembers a degraded cell.
func (c *Context) recordFailure(bench string, err error) {
	c.prog.cellsFailed.Add(1)
	telemetry.Default().Counter("sweep_cells_failed_total").Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures = append(c.failures, CellError{Bench: bench, Err: err})
}

// TakeFailures returns the degraded cell failures accumulated since the
// previous call and clears the list; the front end reports them alongside
// the (partial) result tables. The order is deterministic — sorted by
// benchmark, then by error text — regardless of the worker interleaving
// that recorded them, so error rows, journal entries, and logs are stable
// across runs.
func (c *Context) TakeFailures() []CellError {
	c.mu.Lock()
	out := c.failures
	c.failures = nil
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Err.Error() < out[j].Err.Error()
	})
	return out
}

// traceEntry is one single-flight cache slot: the sync.Once guarantees a
// benchmark's trace is generated exactly once even when many sweep cells
// request it concurrently (the cache previously dropped its lock around the
// expensive generation, so concurrent cells generated duplicate traces). A
// panic during generation is captured and re-raised in every caller, so each
// requesting cell degrades individually through its own panic isolation
// instead of the once poisoning silently.
type traceEntry struct {
	once     sync.Once
	tr       trace.Trace
	sum      trace.Summary
	panicVal any
}

// entry returns (creating on demand) the cache slot for a benchmark in m.
func (c *Context) entry(m map[string]*traceEntry, name string) *traceEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := m[name]
	if e == nil {
		e = &traceEntry{}
		m[name] = e
	}
	return e
}

// traceDone accounts one trace-cache access: generated distinguishes the
// single caller whose Do closure actually ran from the callers served by the
// cache, and a captured generation panic is counted before being re-raised.
func traceDone(e *traceEntry, generated bool) {
	r := telemetry.Default()
	if generated {
		r.Counter("trace_cache_misses_total").Inc()
	} else {
		r.Counter("trace_cache_hits_total").Inc()
	}
	if e.panicVal != nil {
		r.Counter("trace_gen_panics_total").Inc()
		panic(e.panicVal)
	}
}

// Trace returns the cached indirect-branch-only trace for a benchmark
// (sufficient for every predictor except conditional-history consumers; use
// FullTrace for those). Generation is single-flight across goroutines.
func (c *Context) Trace(cfg workload.Config) trace.Trace {
	e := c.entry(c.traces, cfg.Name)
	generated := false
	e.once.Do(func() {
		generated = true
		defer func() { e.panicVal = recover() }()
		full := cfg.MustGenerate(c.TraceLen)
		e.sum = trace.Summarize(full)
		e.tr = full.Indirect()
	})
	traceDone(e, generated)
	return e.tr
}

// FullTrace returns the cached complete trace (conditionals, returns) for a
// benchmark, generating it single-flight on first use.
func (c *Context) FullTrace(cfg workload.Config) trace.Trace {
	e := c.entry(c.fulls, cfg.Name)
	generated := false
	e.once.Do(func() {
		generated = true
		defer func() { e.panicVal = recover() }()
		e.tr = cfg.MustGenerate(c.TraceLen)
	})
	traceDone(e, generated)
	return e.tr
}

// Summary returns the Tables 1–2 statistics of the benchmark's full trace.
func (c *Context) Summary(cfg workload.Config) trace.Summary {
	c.Trace(cfg) // ensure generated
	return c.entry(c.traces, cfg.Name).sum
}

// transientError marks a failure worth retrying (flaky I/O, resource
// pressure) as opposed to a deterministic one (bad configuration, panic).
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so forEach's workers retry the cell with capped
// backoff before giving up. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Retry policy for transient cell failures.
const (
	maxCellAttempts = 3
	baseBackoff     = 10 * time.Millisecond
	maxBackoff      = 250 * time.Millisecond
)

// protect runs fn(i), converting a panic into an error carrying the stack,
// so one misbehaving cell cannot take down the whole sweep process.
func protect(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cell %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}

// runCell executes one cell with panic isolation, retrying failures marked
// Transient with capped exponential backoff. Cancellation cuts the backoff
// short.
func runCell(ctx context.Context, i int, fn func(i int) error) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = protect(i, fn)
		if err == nil || !IsTransient(err) || attempt >= maxCellAttempts {
			return err
		}
		telemetry.Default().Counter("sweep_cells_retried_total").Inc()
		delay := baseBackoff << (attempt - 1)
		if delay > maxBackoff {
			delay = maxBackoff
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// forEach runs fn(i) for every i in [0, n) on up to GOMAXPROCS goroutines
// and returns the first error. Panics in fn are recovered into errors,
// errors marked Transient are retried with capped backoff, and dispatch
// stops at the first recorded failure (or context cancellation) — cells
// already in flight finish, no new ones start.
func forEach(ctx context.Context, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		next     = make(chan int)
		done     = make(chan struct{})
		stopOnce sync.Once
		mu       sync.Mutex
		firstErr error
	)
	fail := func(e error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		mu.Unlock()
		stopOnce.Do(func() { close(done) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if e := runCell(ctx, i, fn); e != nil {
					fail(e)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		// Non-blocking check first: a recorded failure must win over an
		// available worker, otherwise the select below could keep picking
		// the send case at random after the failure.
		select {
		case <-done:
			break dispatch
		case <-ctx.Done():
			fail(ctx.Err())
			break dispatch
		default:
		}
		select {
		case <-done:
			break dispatch
		case <-ctx.Done():
			fail(ctx.Err())
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}

// SweepSpec describes one predictor lane of a batched sweep.
type SweepSpec struct {
	// Mk constructs the lane's predictor; it must return a fresh instance
	// per call (required).
	Mk func() (core.Predictor, error)
	// MkShadow, when non-nil, constructs the lane's unbounded shadow twin
	// for capacity-miss attribution. A factory rather than an instance:
	// every benchmark cell needs its own shadow, and a shadow must never
	// be shared between lanes.
	MkShadow func() (core.Predictor, error)
	// Opts are the lane's simulation options. Opts.Shadow must be nil
	// (shadows come from MkShadow).
	Opts sim.Options
}

// sweepChunk is how many configuration lanes share one batched trace pass.
// Each sweep cell is (benchmark × chunk): small enough to keep cell failures
// contained and memory bounded, large enough to amortize the per-pass trace
// walk across many configurations.
const sweepChunk = 16

// laneCache keeps one worker's predictors alive between cells of the same
// chunk: consecutive cells differ only in the benchmark, so resetting the
// predictors (bit-identical to fresh construction — tables reset by
// generation bump, histories clear) avoids reallocating hundreds of
// megabytes of tables across a grid sweep. The cache is dropped whenever a
// lane misbehaves, since a panic can leave a predictor mid-mutation where
// Reset's invariants no longer hold.
type laneCache struct {
	chunk      int
	valid      bool
	resettable bool
	ps         []core.Predictor
	shadows    []core.Predictor
}

// lanes returns predictors (and per-lane shadows) for the chunk's specs,
// reusing the cached set via Reset when possible.
func (lc *laneCache) lanes(chunk int, specs []SweepSpec, sm sweepMetrics) (ps, shadows []core.Predictor, err error) {
	if lc.valid && lc.resettable && lc.chunk == chunk {
		sm.laneHits.Inc()
		for _, p := range lc.ps {
			p.(core.Resetter).Reset()
		}
		for _, s := range lc.shadows {
			if s != nil {
				s.(core.Resetter).Reset()
			}
		}
		return lc.ps, lc.shadows, nil
	}
	sm.laneMiss.Inc()
	lc.valid = false
	ps = make([]core.Predictor, len(specs))
	shadows = make([]core.Predictor, len(specs))
	resettable := true
	for i, s := range specs {
		if s.Opts.Shadow != nil {
			return nil, nil, errors.New("experiment: SweepSpec.Opts.Shadow must be nil; use MkShadow")
		}
		p, err := s.Mk()
		if err != nil {
			return nil, nil, err
		}
		ps[i] = p
		if _, ok := p.(core.Resetter); !ok {
			resettable = false
		}
		if s.MkShadow != nil {
			sh, err := s.MkShadow()
			if err != nil {
				return nil, nil, err
			}
			shadows[i] = sh
			if _, ok := sh.(core.Resetter); !ok {
				resettable = false
			}
		}
	}
	lc.chunk, lc.ps, lc.shadows = chunk, ps, shadows
	lc.resettable, lc.valid = resettable, true
	return ps, shadows, nil
}

// SweepSpecs runs every spec over every benchmark and returns
// res[spec][benchmark]. The specs are split into chunks of sweepChunk lanes;
// each (benchmark × chunk) cell is one panic-isolated unit of the worker
// pool, inside which sim.RunBatchEach drives the chunk's predictors over the
// benchmark's trace in a single pass. full selects complete traces
// (conditional records included) instead of indirect-only ones.
//
// Failure handling follows Sweep's contract: predictor construction errors
// abort the sweep; a failing cell (trace generation, a panicking lane)
// degrades to recorded CellErrors while the other cells and lanes still
// produce results; cancellation aborts.
func (c *Context) SweepSpecs(specs []SweepSpec, full bool) ([]map[string]sim.Result, error) {
	out := make([]map[string]sim.Result, len(specs))
	for i := range out {
		out[i] = make(map[string]sim.Result, len(c.Suite))
	}
	if len(specs) == 0 {
		return out, nil
	}
	nb := len(c.Suite)
	chunks := (len(specs) + sweepChunk - 1) / sweepChunk
	sm := newSweepMetrics(telemetry.Default())
	c.prog.begin(nb*chunks, time.Now())
	sm.queued.Add(uint64(nb * chunks))
	var mu sync.Mutex
	pool := sync.Pool{New: func() any { return &laneCache{} }}
	// Cells are ordered chunk-major so a worker's consecutive cells share a
	// chunk and its laneCache keeps hitting.
	err := forEach(c.ctx, nb*chunks, func(ci int) error {
		chunk, bench := ci/nb, c.Suite[ci%nb]
		lo := chunk * sweepChunk
		hi := lo + sweepChunk
		if hi > len(specs) {
			hi = len(specs)
		}
		sub := specs[lo:hi]
		cache := pool.Get().(*laneCache)
		defer pool.Put(cache)
		sm.running.Add(1)
		cellStart := time.Now()
		defer func() {
			sm.running.Add(-1)
			sm.cellTime.Observe(time.Since(cellStart))
			sm.done.Inc()
			c.prog.cellsDone.Add(1)
		}()
		// Construction errors are deterministic configuration mistakes:
		// every cell would fail identically, so they abort the sweep
		// rather than degrade.
		ps, shadows, err := cache.lanes(chunk, sub, sm)
		if err != nil {
			return fmt.Errorf("%s: %w", bench.Name, err)
		}
		// The per-cell work (trace generation + simulation) is isolated:
		// a panic or error here degrades to recorded error rows so the
		// other cells still produce results. Within the cell, sim's own
		// lane isolation keeps one misbehaving configuration from taking
		// down the chunk. Cancellation stays fatal.
		cellErr := protect(ci, func(int) error {
			var tr trace.Trace
			if full {
				tr = c.FullTrace(bench)
			} else {
				tr = c.Trace(bench)
			}
			lopts := make([]sim.Options, len(sub))
			for i, s := range sub {
				lopts[i] = s.Opts
				lopts[i].Shadow = shadows[i]
			}
			rs, err := sim.RunBatchEach(c.ctx, ps, tr, lopts)
			var be *sim.BatchError
			if err != nil && (!errors.As(err, &be) || c.ctx.Err() != nil) {
				return err
			}
			dead := map[int]bool{}
			if be != nil {
				cache.valid = false // panicked lanes may violate Reset invariants
				for _, le := range be.Lanes {
					dead[le.Lane] = true
					c.recordFailure(bench.Name, fmt.Errorf("config %d: %w", lo+le.Lane, le.Err))
				}
			}
			var executed, missed uint64
			mu.Lock()
			for i, r := range rs {
				if !dead[i] {
					out[lo+i][bench.Name] = r
					executed += uint64(r.Executed)
					missed += uint64(r.Misses)
				}
			}
			mu.Unlock()
			c.prog.executed.Add(executed)
			c.prog.misses.Add(missed)
			return nil
		})
		if cellErr != nil {
			cache.valid = false
			if errors.Is(cellErr, context.Canceled) || errors.Is(cellErr, context.DeadlineExceeded) {
				return cellErr
			}
			c.recordFailure(bench.Name, cellErr)
		}
		return nil
	})
	return out, err
}

// rateMaps reduces SweepSpecs results to per-benchmark misprediction rates.
func rateMaps(res []map[string]sim.Result) []map[string]float64 {
	out := make([]map[string]float64, len(res))
	for i, m := range res {
		out[i] = make(map[string]float64, len(m))
		for bench, r := range m {
			out[i][bench] = r.MissRate()
		}
	}
	return out
}

// SweepBatch simulates one predictor per (configuration, benchmark) pair —
// mks[i] constructing fresh predictors for configuration i — in batched
// single-pass trace walks, and returns per-benchmark misprediction rates in
// percent for each configuration. It is the grid form of Sweep.
func (c *Context) SweepBatch(mks []func() (core.Predictor, error)) ([]map[string]float64, error) {
	specs := make([]SweepSpec, len(mks))
	for i, mk := range mks {
		specs[i] = SweepSpec{Mk: mk}
	}
	res, err := c.SweepSpecs(specs, false)
	return rateMaps(res), err
}

// SweepBatchFull is SweepBatch over complete traces (conditional records
// included), for predictors implementing core.CondObserver.
func (c *Context) SweepBatchFull(mks []func() (core.Predictor, error)) ([]map[string]float64, error) {
	specs := make([]SweepSpec, len(mks))
	for i, mk := range mks {
		specs[i] = SweepSpec{Mk: mk}
	}
	res, err := c.SweepSpecs(specs, true)
	return rateMaps(res), err
}

func configMks(cfgs []core.Config) []func() (core.Predictor, error) {
	mks := make([]func() (core.Predictor, error), len(cfgs))
	for i, cfg := range cfgs {
		cfg := cfg
		mks[i] = func() (core.Predictor, error) { return core.NewTwoLevel(cfg) }
	}
	return mks
}

// SweepConfigs is SweepBatch over two-level predictor configurations.
func (c *Context) SweepConfigs(cfgs []core.Config) ([]map[string]float64, error) {
	return c.SweepBatch(configMks(cfgs))
}

// SweepConfigsFull is SweepConfigs over complete traces (conditional records
// included).
func (c *Context) SweepConfigsFull(cfgs []core.Config) ([]map[string]float64, error) {
	return c.SweepBatchFull(configMks(cfgs))
}

// Sweep simulates one predictor per benchmark (constructed by mk, which must
// return a fresh predictor per call) and returns per-benchmark misprediction
// rates in percent.
func (c *Context) Sweep(mk func() (core.Predictor, error)) (map[string]float64, error) {
	rates, err := c.SweepBatch([]func() (core.Predictor, error){mk})
	return rates[0], err
}

// SweepFull is Sweep over complete traces (conditional records included),
// for predictors implementing core.CondObserver.
func (c *Context) SweepFull(mk func() (core.Predictor, error)) (map[string]float64, error) {
	rates, err := c.SweepBatchFull([]func() (core.Predictor, error){mk})
	return rates[0], err
}

// GroupRow extends per-benchmark rates with the Table 3 group averages and
// returns the value for the requested key ("AVG" etc. or a benchmark name).
func GroupRow(values map[string]float64) map[string]float64 {
	return stats.WithGroups(values)
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the short name used by cmd/ibpsweep and bench targets.
	ID string
	// Artifact names the paper table/figure, e.g. "Figure 9".
	Artifact string
	// Desc is a one-line description.
	Desc string
	// Run produces the experiment's result tables.
	Run func(ctx *Context) ([]*stats.Table, error)
}

var (
	regMu    sync.Mutex
	registry []Experiment
)

// register adds an experiment; called from init functions of this package.
func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, e)
}

// All returns the registered experiments sorted by id.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiment: unknown id %q", id)
}

// groupRows lists the group labels shown as rows in the unconstrained
// figures, AVG first as the headline.
var groupRows = []string{
	stats.GroupAVG, stats.GroupOO, stats.GroupC,
	stats.Group100, stats.Group200, stats.GroupInfreq,
}

// setGroups writes a column of group averages into a table.
func setGroups(t *stats.Table, col string, perBench map[string]float64) {
	ext := stats.WithGroups(perBench)
	for _, g := range groupRows {
		if v, ok := ext[g]; ok {
			t.Set(g, col, v)
		}
	}
}
