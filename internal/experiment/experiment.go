// Package experiment reproduces every table and figure of the paper's
// evaluation. Each experiment is a registered runner that simulates the
// relevant predictor configurations over the 17-benchmark suite and returns
// paper-style result tables; cmd/ibpsweep is the front end.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/stats"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

// Context carries the shared parameters of an experiment run and caches the
// generated benchmark traces (the expensive part) across experiments.
type Context struct {
	// TraceLen is the number of indirect branches per benchmark; the
	// paper uses up to 6M, the default here is workload.DefaultBranches.
	TraceLen int
	// Suite is the benchmark set (default: the paper's 17 benchmarks).
	Suite []workload.Config

	mu        sync.Mutex
	indirect  map[string]trace.Trace   // cached indirect-only traces
	summaries map[string]trace.Summary // cached full-trace summaries
	appx      appendix                 // memoized Table A-1 computation
}

// NewContext returns a context over the full suite. traceLen <= 0 selects
// the default length.
func NewContext(traceLen int) *Context {
	if traceLen <= 0 {
		traceLen = workload.DefaultBranches
	}
	return &Context{
		TraceLen:  traceLen,
		Suite:     workload.Suite(),
		indirect:  make(map[string]trace.Trace),
		summaries: make(map[string]trace.Summary),
	}
}

// Trace returns the cached indirect-branch-only trace for a benchmark
// (sufficient for every predictor except conditional-history consumers; use
// FullTrace for those).
func (c *Context) Trace(cfg workload.Config) trace.Trace {
	c.mu.Lock()
	tr, ok := c.indirect[cfg.Name]
	c.mu.Unlock()
	if ok {
		return tr
	}
	full := cfg.MustGenerate(c.TraceLen)
	sum := trace.Summarize(full)
	tr = full.Indirect()
	c.mu.Lock()
	c.indirect[cfg.Name] = tr
	c.summaries[cfg.Name] = sum
	c.mu.Unlock()
	return tr
}

// FullTrace regenerates the complete trace (conditionals, returns) for a
// benchmark; it is not cached.
func (c *Context) FullTrace(cfg workload.Config) trace.Trace {
	return cfg.MustGenerate(c.TraceLen)
}

// Summary returns the Tables 1–2 statistics of the benchmark's full trace.
func (c *Context) Summary(cfg workload.Config) trace.Summary {
	c.Trace(cfg) // ensure cached
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.summaries[cfg.Name]
}

// forEach runs fn(i) for every i in [0, n) on up to GOMAXPROCS goroutines
// and returns the first error.
func forEach(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
		mu   sync.Mutex
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if e := fn(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return err
}

// Sweep simulates one predictor per benchmark (constructed by mk, which must
// return a fresh predictor per call) and returns per-benchmark misprediction
// rates in percent.
func (c *Context) Sweep(mk func() (core.Predictor, error)) (map[string]float64, error) {
	return c.sweepOpts(mk, sim.Options{}, false)
}

// SweepFull is Sweep over complete traces (conditional records included),
// for predictors implementing core.CondObserver.
func (c *Context) SweepFull(mk func() (core.Predictor, error)) (map[string]float64, error) {
	return c.sweepOpts(mk, sim.Options{}, true)
}

func (c *Context) sweepOpts(mk func() (core.Predictor, error), opts sim.Options, full bool) (map[string]float64, error) {
	out := make(map[string]float64, len(c.Suite))
	var mu sync.Mutex
	err := forEach(len(c.Suite), func(i int) error {
		cfg := c.Suite[i]
		var tr trace.Trace
		if full {
			tr = c.FullTrace(cfg)
		} else {
			tr = c.Trace(cfg)
		}
		p, err := mk()
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.Name, err)
		}
		rate := sim.Run(p, tr, opts).MissRate()
		mu.Lock()
		out[cfg.Name] = rate
		mu.Unlock()
		return nil
	})
	return out, err
}

// GroupRow extends per-benchmark rates with the Table 3 group averages and
// returns the value for the requested key ("AVG" etc. or a benchmark name).
func GroupRow(values map[string]float64) map[string]float64 {
	return stats.WithGroups(values)
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the short name used by cmd/ibpsweep and bench targets.
	ID string
	// Artifact names the paper table/figure, e.g. "Figure 9".
	Artifact string
	// Desc is a one-line description.
	Desc string
	// Run produces the experiment's result tables.
	Run func(ctx *Context) ([]*stats.Table, error)
}

var (
	regMu    sync.Mutex
	registry []Experiment
)

// register adds an experiment; called from init functions of this package.
func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, e)
}

// All returns the registered experiments sorted by id.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiment: unknown id %q", id)
}

// groupRows lists the group labels shown as rows in the unconstrained
// figures, AVG first as the headline.
var groupRows = []string{
	stats.GroupAVG, stats.GroupOO, stats.GroupC,
	stats.Group100, stats.Group200, stats.GroupInfreq,
}

// setGroups writes a column of group averages into a table.
func setGroups(t *stats.Table, col string, perBench map[string]float64) {
	ext := stats.WithGroups(perBench)
	for _, g := range groupRows {
		if v, ok := ext[g]; ok {
			t.Set(g, col, v)
		}
	}
}
