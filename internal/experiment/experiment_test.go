package experiment

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/stats"
	"github.com/oocsb/ibp/internal/workload"
)

// tinyContext returns a context over a reduced suite with very short traces,
// fast enough to smoke-test every experiment.
func tinyContext(t *testing.T) *Context {
	t.Helper()
	ctx := NewContext(1500)
	var suite []workload.Config
	for _, name := range []string{"idl", "eqn", "xlisp", "perl", "gcc", "go"} {
		cfg, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, cfg)
	}
	ctx.Suite = suite
	return ctx
}

// expectedIDs is the experiment inventory promised by DESIGN.md.
var expectedIDs = []string{
	"table1", "fig2", "fig5", "fig7", "fig9", "fig10", "table5",
	"fig11", "fig12", "fig14", "fig15", "fig16", "fig17",
	"fig18", "table6", "tableA1", "tableA2",
	"abl-update", "abl-cond", "abl-addr", "abl-meta",
	"ext-ppm", "ext-shared", "ext-3comp",
	"ext-next", "ext-uneven", "ext-ittage", "cost",
	"ras", "rel-tcache", "sites", "limits", "vm", "ctxswitch",
}

func TestRegistryComplete(t *testing.T) {
	have := make(map[string]bool)
	for _, e := range All() {
		if have[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		have[e.ID] = true
		if e.Artifact == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %q incompletely registered", e.ID)
		}
	}
	for _, id := range expectedIDs {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if _, err := ByID("fig9"); err != nil {
		t.Errorf("ByID(fig9): %v", err)
	}
	if _, err := ByID("nonesuch"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestContextTraceCaching(t *testing.T) {
	ctx := tinyContext(t)
	cfg := ctx.Suite[0]
	a := ctx.Trace(cfg)
	b := ctx.Trace(cfg)
	if &a[0] != &b[0] {
		t.Error("trace not cached")
	}
	if len(a) != ctx.TraceLen {
		t.Errorf("cached trace has %d records, want %d indirect", len(a), ctx.TraceLen)
	}
	for _, r := range a {
		if !r.Kind.Indirect() {
			t.Fatal("cached trace contains non-indirect records")
		}
	}
	s := ctx.Summary(cfg)
	if s.Indirect != ctx.TraceLen {
		t.Errorf("summary indirect = %d", s.Indirect)
	}
	if s.Conds == 0 {
		t.Error("summary lost conditional counts (must come from the full trace)")
	}
}

func TestSweepConstructorErrors(t *testing.T) {
	ctx := tinyContext(t)
	wantErr := errors.New("boom")
	_, err := ctx.Sweep(func() (core.Predictor, error) { return nil, wantErr })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Sweep error = %v", err)
	}
}

func TestForEachCoversAll(t *testing.T) {
	seen := make([]bool, 100)
	err := forEach(context.Background(), len(seen), func(i int) error {
		seen[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
	if err := forEach(context.Background(), 0, func(int) error { return nil }); err != nil {
		t.Errorf("forEach(0): %v", err)
	}
}

// TestForEachStopsDispatchAfterError: once a cell fails, no fresh cells may
// start (in-flight ones finish). With a single worker the schedule is
// deterministic: only the failing cell runs.
func TestForEachStopsDispatchAfterError(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	var ran atomic.Int32
	boom := errors.New("boom")
	err := forEach(context.Background(), 50, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Cell 0 fails; the dispatcher may have handed at most one more cell
	// to the worker before observing the failure.
	if n := ran.Load(); n > 2 {
		t.Errorf("%d cells ran after the first failure", n)
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	err := forEach(context.Background(), 4, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	if !strings.Contains(err.Error(), "cell 2") {
		t.Errorf("error does not name the failing cell: %v", err)
	}
}

func TestForEachRetriesTransient(t *testing.T) {
	var attempts atomic.Int32
	err := forEach(context.Background(), 1, func(i int) error {
		if attempts.Add(1) < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("transient failure not retried away: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestForEachTransientGivesUp(t *testing.T) {
	var attempts atomic.Int32
	err := forEach(context.Background(), 1, func(i int) error {
		attempts.Add(1)
		return Transient(errors.New("always down"))
	})
	if !IsTransient(err) {
		t.Fatalf("err = %v, want the transient failure", err)
	}
	if got := attempts.Load(); got != maxCellAttempts {
		t.Errorf("attempts = %d, want %d", got, maxCellAttempts)
	}
}

func TestForEachCancellation(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	started := make(chan struct{}, 1)
	err := func() error {
		go func() {
			<-started
			cancel()
		}()
		return forEach(cctx, 1000, func(i int) error {
			ran.Add(1)
			select {
			case started <- struct{}{}:
			default:
			}
			time.Sleep(time.Millisecond)
			return nil
		})
	}()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); int(n) >= 1000 {
		t.Errorf("cancellation did not stop dispatch (%d cells ran)", n)
	}
}

// TestSweepDegradesPanickingCell: a panic while generating or simulating
// one benchmark must not kill the sweep — the other cells still report, and
// the failure is recorded as an error row.
func TestSweepDegradesPanickingCell(t *testing.T) {
	ctx := tinyContext(t)
	// Poison one cell: an invalid workload config makes MustGenerate panic
	// inside that cell only.
	ctx.Suite[2].Sites = 0
	victim := ctx.Suite[2].Name
	rates, err := ctx.Sweep(func() (core.Predictor, error) {
		return core.NewBTB(nil, core.UpdateTwoMiss), nil
	})
	if err != nil {
		t.Fatalf("sweep aborted: %v", err)
	}
	if _, ok := rates[victim]; ok {
		t.Errorf("panicking cell %s produced a rate", victim)
	}
	if len(rates) != len(ctx.Suite)-1 {
		t.Errorf("got %d rates, want %d", len(rates), len(ctx.Suite)-1)
	}
	fails := ctx.TakeFailures()
	if len(fails) != 1 || fails[0].Bench != victim {
		t.Fatalf("failures = %v, want one for %s", fails, victim)
	}
	if !strings.Contains(fails[0].Err.Error(), "panicked") {
		t.Errorf("failure does not mention the panic: %v", fails[0].Err)
	}
	// The list is drained.
	if again := ctx.TakeFailures(); len(again) != 0 {
		t.Errorf("TakeFailures not drained: %v", again)
	}
}

func TestSweepCancelled(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := tinyContext(t).WithContext(cctx)
	_, err := ctx.Sweep(func() (core.Predictor, error) {
		return core.NewBTB(nil, core.UpdateTwoMiss), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ctx.TakeFailures()) != 0 {
		t.Error("cancellation recorded as a degraded cell failure")
	}
}

// TestAllExperimentsRun smoke-tests every registered experiment on the tiny
// context and checks the outputs render.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		e := e
		if seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		t.Run(e.ID, func(t *testing.T) {
			ctx := tinyContext(t)
			tables, err := e.Run(ctx)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows()) == 0 || len(tb.Cols) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tb.Title)
				}
				var buf bytes.Buffer
				if err := tb.Render(&buf); err != nil {
					t.Errorf("%s: render: %v", e.ID, err)
				}
				if err := tb.WriteCSV(&buf); err != nil {
					t.Errorf("%s: csv: %v", e.ID, err)
				}
			}
		})
	}
}

// TestFig2Shape checks the fig2 experiment reproduces the §3.1 claim on the
// tiny context: BTB-2bc beats the standard BTB on average.
func TestFig2Shape(t *testing.T) {
	ctx := tinyContext(t)
	tables, err := ByIDMust(t, "fig2").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	btb, ok1 := tb.Get(stats.GroupAVG, "btb")
	twobc, ok2 := tb.Get(stats.GroupAVG, "btb-2bc")
	if !ok1 || !ok2 {
		t.Fatalf("missing AVG cells")
	}
	if twobc >= btb {
		t.Errorf("BTB-2bc (%.2f) should beat BTB (%.2f)", twobc, btb)
	}
}

// TestFig9Shape checks the headline curve on the tiny context: two-level
// beats BTB substantially, and very long paths regress.
func TestFig9Shape(t *testing.T) {
	ctx := tinyContext(t)
	tables, err := ByIDMust(t, "fig9").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	p0, _ := tb.Get(stats.GroupAVG, "p=0")
	best := math.Inf(1)
	for _, c := range []string{"p=1", "p=2", "p=3", "p=4", "p=6"} {
		if v, ok := tb.Get(stats.GroupAVG, c); ok && v < best {
			best = v
		}
	}
	p18, _ := tb.Get(stats.GroupAVG, "p=18")
	if best >= p0/1.8 {
		t.Errorf("two-level best %.2f vs BTB %.2f: improvement too small", best, p0)
	}
	if p18 <= best {
		t.Errorf("p=18 (%.2f) should regress past the minimum (%.2f)", p18, best)
	}
}

// TestTable5Shape: xor keys track concatenation closely (§4.2).
func TestTable5Shape(t *testing.T) {
	ctx := tinyContext(t)
	tables, err := ByIDMust(t, "table5").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for _, p := range []string{"p=2", "p=4", "p=6"} {
		diff, ok := tb.Get("Xor-Concat", p)
		if !ok {
			t.Fatalf("missing %s", p)
		}
		if math.Abs(diff) > 3 {
			t.Errorf("%s: xor vs concat differ by %.2f points, paper reports <1", p, diff)
		}
	}
}

// ByIDMust fetches a registered experiment or fails the test.
func ByIDMust(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
