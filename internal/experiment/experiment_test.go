package experiment

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/stats"
	"github.com/oocsb/ibp/internal/workload"
)

// tinyContext returns a context over a reduced suite with very short traces,
// fast enough to smoke-test every experiment.
func tinyContext(t *testing.T) *Context {
	t.Helper()
	ctx := NewContext(1500)
	var suite []workload.Config
	for _, name := range []string{"idl", "eqn", "xlisp", "perl", "gcc", "go"} {
		cfg, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, cfg)
	}
	ctx.Suite = suite
	return ctx
}

// expectedIDs is the experiment inventory promised by DESIGN.md.
var expectedIDs = []string{
	"table1", "fig2", "fig5", "fig7", "fig9", "fig10", "table5",
	"fig11", "fig12", "fig14", "fig15", "fig16", "fig17",
	"fig18", "table6", "tableA1", "tableA2",
	"abl-update", "abl-cond", "abl-addr", "abl-meta",
	"ext-ppm", "ext-shared", "ext-3comp",
	"ext-next", "ext-uneven", "ext-ittage", "cost",
	"ras", "rel-tcache", "sites", "limits", "vm", "ctxswitch",
}

func TestRegistryComplete(t *testing.T) {
	have := make(map[string]bool)
	for _, e := range All() {
		if have[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		have[e.ID] = true
		if e.Artifact == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %q incompletely registered", e.ID)
		}
	}
	for _, id := range expectedIDs {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if _, err := ByID("fig9"); err != nil {
		t.Errorf("ByID(fig9): %v", err)
	}
	if _, err := ByID("nonesuch"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestContextTraceCaching(t *testing.T) {
	ctx := tinyContext(t)
	cfg := ctx.Suite[0]
	a := ctx.Trace(cfg)
	b := ctx.Trace(cfg)
	if &a[0] != &b[0] {
		t.Error("trace not cached")
	}
	if len(a) != ctx.TraceLen {
		t.Errorf("cached trace has %d records, want %d indirect", len(a), ctx.TraceLen)
	}
	for _, r := range a {
		if !r.Kind.Indirect() {
			t.Fatal("cached trace contains non-indirect records")
		}
	}
	s := ctx.Summary(cfg)
	if s.Indirect != ctx.TraceLen {
		t.Errorf("summary indirect = %d", s.Indirect)
	}
	if s.Conds == 0 {
		t.Error("summary lost conditional counts (must come from the full trace)")
	}
}

func TestSweepConstructorErrors(t *testing.T) {
	ctx := tinyContext(t)
	wantErr := errors.New("boom")
	_, err := ctx.Sweep(func() (core.Predictor, error) { return nil, wantErr })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Sweep error = %v", err)
	}
}

func TestForEachCoversAll(t *testing.T) {
	seen := make([]bool, 100)
	err := forEach(len(seen), func(i int) error {
		seen[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
	if err := forEach(0, func(int) error { return nil }); err != nil {
		t.Errorf("forEach(0): %v", err)
	}
}

// TestAllExperimentsRun smoke-tests every registered experiment on the tiny
// context and checks the outputs render.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		e := e
		if seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		t.Run(e.ID, func(t *testing.T) {
			ctx := tinyContext(t)
			tables, err := e.Run(ctx)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows()) == 0 || len(tb.Cols) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tb.Title)
				}
				var buf bytes.Buffer
				if err := tb.Render(&buf); err != nil {
					t.Errorf("%s: render: %v", e.ID, err)
				}
				if err := tb.WriteCSV(&buf); err != nil {
					t.Errorf("%s: csv: %v", e.ID, err)
				}
			}
		})
	}
}

// TestFig2Shape checks the fig2 experiment reproduces the §3.1 claim on the
// tiny context: BTB-2bc beats the standard BTB on average.
func TestFig2Shape(t *testing.T) {
	ctx := tinyContext(t)
	tables, err := ByIDMust(t, "fig2").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	btb, ok1 := tb.Get(stats.GroupAVG, "btb")
	twobc, ok2 := tb.Get(stats.GroupAVG, "btb-2bc")
	if !ok1 || !ok2 {
		t.Fatalf("missing AVG cells")
	}
	if twobc >= btb {
		t.Errorf("BTB-2bc (%.2f) should beat BTB (%.2f)", twobc, btb)
	}
}

// TestFig9Shape checks the headline curve on the tiny context: two-level
// beats BTB substantially, and very long paths regress.
func TestFig9Shape(t *testing.T) {
	ctx := tinyContext(t)
	tables, err := ByIDMust(t, "fig9").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	p0, _ := tb.Get(stats.GroupAVG, "p=0")
	best := math.Inf(1)
	for _, c := range []string{"p=1", "p=2", "p=3", "p=4", "p=6"} {
		if v, ok := tb.Get(stats.GroupAVG, c); ok && v < best {
			best = v
		}
	}
	p18, _ := tb.Get(stats.GroupAVG, "p=18")
	if best >= p0/1.8 {
		t.Errorf("two-level best %.2f vs BTB %.2f: improvement too small", best, p0)
	}
	if p18 <= best {
		t.Errorf("p=18 (%.2f) should regress past the minimum (%.2f)", p18, best)
	}
}

// TestTable5Shape: xor keys track concatenation closely (§4.2).
func TestTable5Shape(t *testing.T) {
	ctx := tinyContext(t)
	tables, err := ByIDMust(t, "table5").Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for _, p := range []string{"p=2", "p=4", "p=6"} {
		diff, ok := tb.Get("Xor-Concat", p)
		if !ok {
			t.Fatalf("missing %s", p)
		}
		if math.Abs(diff) > 3 {
			t.Errorf("%s: xor vs concat differ by %.2f points, paper reports <1", p, diff)
		}
	}
}

// ByIDMust fetches a registered experiment or fails the test.
func ByIDMust(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
