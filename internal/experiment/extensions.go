package experiment

import (
	"fmt"
	"sync"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/cost"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "ext-next",
		Artifact: "§8.1 (future work)",
		Desc:     "run-ahead prediction: target and next-branch-address accuracy",
		Run:      runExtNext,
	})
	register(Experiment{
		ID:       "ext-uneven",
		Artifact: "§8.1 (future work)",
		Desc:     "hybrid components of unequal sizes",
		Run:      runExtUneven,
	})
	register(Experiment{
		ID:       "ext-ittage",
		Artifact: "lineage (ITTAGE)",
		Desc:     "geometric-history tagged predictor vs the paper's best hybrid",
		Run:      runExtITTAGE,
	})
	register(Experiment{
		ID:       "cost",
		Artifact: "§1 (motivation)",
		Desc:     "execution-time impact: speedup of hybrid prediction over a BTB",
		Run:      runCost,
	})
}

// nextRates measures, per benchmark, the target and next-site misprediction
// rates of the run-ahead predictor.
func (c *Context) nextRates(p, entries int) (map[string]float64, map[string]float64, error) {
	target := make(map[string]float64, len(c.Suite))
	next := make(map[string]float64, len(c.Suite))
	var mu sync.Mutex
	err := forEach(c.ctx, len(c.Suite), func(i int) error {
		bench := c.Suite[i]
		nb, err := core.NewNextBranch(p, "assoc4", entries)
		if err != nil {
			return err
		}
		tr := c.Trace(bench)
		var tm, nm, n int
		havePrev := false
		var prevNext uint32
		prevNextOK := false
		for _, r := range tr {
			if !r.Kind.Indirect() {
				continue
			}
			if havePrev {
				// Score the next-site prediction made at the
				// previous branch against this branch's pc.
				if !prevNextOK || prevNext != r.PC {
					nm++
				}
			}
			if t, ok := nb.Predict(r.PC); !ok || t != r.Target {
				tm++
			}
			prevNext, prevNextOK = nb.PredictNext(r.PC)
			nb.Update(r.PC, r.Target)
			havePrev = true
			n++
		}
		mu.Lock()
		if n > 0 {
			target[bench.Name] = 100 * float64(tm) / float64(n)
			next[bench.Name] = 100 * float64(nm) / float64(n-1)
		}
		mu.Unlock()
		return nil
	})
	return target, next, err
}

func runExtNext(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§8.1 extension: run-ahead prediction (AVG, assoc4/4096)", "metric")
	for _, p := range []int{1, 2, 3, 4, 6} {
		target, next, err := ctx.nextRates(p, 4096)
		if err != nil {
			return nil, err
		}
		col := fmt.Sprintf("p=%d", p)
		avgT, _ := stats.GroupAverage(target, stats.GroupAVG)
		avgN, _ := stats.GroupAverage(next, stats.GroupAVG)
		t.Set("target-miss", col, avgT)
		t.Set("next-site-miss", col, avgN)
	}
	return []*stats.Table{t}, nil
}

func runExtUneven(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§8.1 extension: unequal hybrid component sizes (AVG, p=3.1 assoc4)", "split")
	totals := []int{1024, 4096, 16384}
	rows := []struct {
		row      string
		num, den int // component-1 share of the total
	}{
		{"even(1/2+1/2)", 1, 2},
		{"long-heavy(3/4+1/4)", 3, 4},
		{"short-heavy(1/4+3/4)", 1, 4},
	}
	var mks []func() (core.Predictor, error)
	for _, total := range totals {
		for _, s := range rows {
			e1 := roundPow2(total * s.num / s.den)
			e2 := roundPow2(total - total*s.num/s.den)
			mks = append(mks, func() (core.Predictor, error) {
				return core.NewDualPathSizes(3, e1, 1, e2, "assoc4")
			})
		}
	}
	rates, err := ctx.SweepBatch(mks)
	if err != nil {
		return nil, err
	}
	for i, total := range totals {
		col := fmt.Sprintf("%d", total)
		for j, s := range rows {
			avg, _ := stats.GroupAverage(rates[i*len(rows)+j], stats.GroupAVG)
			t.Set(s.row, col, avg)
		}
	}
	return []*stats.Table{t}, nil
}

func runExtITTAGE(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("lineage: ITTAGE-style predictor vs the paper's designs (AVG)", "predictor")
	// Budgets in total table entries (ittage: 5 banks + a 2x base).
	bankSizes := []int{128, 512, 2048}
	rows := []string{"ittage", "hybrid-3.1-assoc4", "2lev-p2-assoc4"}
	var mks []func() (core.Predictor, error)
	for _, bankSize := range bankSizes {
		total := 5*bankSize + 2*bankSize
		cfg := boundedConfig(2, 2, "assoc4", roundPow2(total))
		mks = append(mks,
			func() (core.Predictor, error) { return core.NewITTAGE(5, bankSize, 1) },
			hybridMk(1, 3, "assoc4", roundPow2(total/2)),
			func() (core.Predictor, error) { return core.NewTwoLevel(cfg) },
		)
	}
	rates, err := ctx.SweepBatch(mks)
	if err != nil {
		return nil, err
	}
	for i, bankSize := range bankSizes {
		col := fmt.Sprintf("~%d", 5*bankSize+2*bankSize)
		for j, row := range rows {
			avg, _ := stats.GroupAverage(rates[i*len(rows)+j], stats.GroupAVG)
			t.Set(row, col, avg)
		}
	}
	return []*stats.Table{t}, nil
}

func runCost(ctx *Context) ([]*stats.Table, error) {
	model := cost.Default4Wide()
	t := stats.NewTable("§1 motivation: execution-time impact (BTB → hybrid 3.1 assoc4/2048)", "benchmark")
	pair, err := ctx.SweepBatch([]func() (core.Predictor, error){
		func() (core.Predictor, error) { return core.NewBTB(nil, core.UpdateTwoMiss), nil },
		hybridMk(1, 3, "assoc4", 1024),
	})
	if err != nil {
		return nil, err
	}
	btbRates, hybRates := pair[0], pair[1]
	for _, cfg := range ctx.Suite {
		w := cost.Workload{
			InstrPerIndirect: float64(cfg.Meta.InstrPerIndirect),
			CondPerIndirect:  float64(cfg.Meta.CondPerIndirect),
		}
		btb, okB := btbRates[cfg.Name]
		hyb, okH := hybRates[cfg.Name]
		if !okB || !okH {
			continue
		}
		base, err := model.Evaluate(w, btb)
		if err != nil {
			return nil, err
		}
		speedup, err := model.Speedup(w, btb, hyb)
		if err != nil {
			return nil, err
		}
		t.Set(cfg.Name, "btb-miss%", btb)
		t.Set(cfg.Name, "hybrid-miss%", hyb)
		t.Set(cfg.Name, "indirect-share%", 100*base.IndirectShare())
		t.Set(cfg.Name, "speedup%", 100*(speedup-1))
	}
	return []*stats.Table{t}, nil
}
