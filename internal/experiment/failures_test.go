package experiment

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
)

func TestCellErrorFormatting(t *testing.T) {
	base := errors.New("predictor panicked: index out of range")
	e := CellError{Bench: "perl", Err: base}
	if got, want := e.Error(), "perl: predictor panicked: index out of range"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	// The underlying error stays reachable for errors.Is inspection.
	if !errors.Is(e.Err, base) {
		t.Error("underlying error lost")
	}
}

// TestTakeFailuresDeterministicOrder records failures in a scrambled order
// and checks TakeFailures returns them sorted by benchmark then error text,
// independent of insertion order.
func TestTakeFailuresDeterministicOrder(t *testing.T) {
	c := NewContext(1000)
	c.recordFailure("perl", errors.New("z-error"))
	c.recordFailure("gcc", errors.New("b-error"))
	c.recordFailure("perl", errors.New("a-error"))
	c.recordFailure("gcc", errors.New("a-error"))
	got := c.TakeFailures()
	want := []string{"gcc: a-error", "gcc: b-error", "perl: a-error", "perl: z-error"}
	if len(got) != len(want) {
		t.Fatalf("TakeFailures returned %d failures, want %d", len(got), len(want))
	}
	for i, f := range got {
		if f.Error() != want[i] {
			t.Errorf("failure[%d] = %q, want %q", i, f.Error(), want[i])
		}
	}
	if again := c.TakeFailures(); len(again) != 0 {
		t.Errorf("second TakeFailures not empty: %v", again)
	}
}

// TestRecordFailureConcurrent hammers recordFailure from many goroutines
// (the real callers are sweep worker-pool cells); under -race this pins the
// locking, and the result must contain every failure exactly once, sorted.
func TestRecordFailureConcurrent(t *testing.T) {
	c := NewContext(1000)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range perWorker {
				c.recordFailure(fmt.Sprintf("bench%02d", w), fmt.Errorf("cell %02d failed", i))
			}
		}()
	}
	wg.Wait()
	got := c.TakeFailures()
	if len(got) != workers*perWorker {
		t.Fatalf("%d failures recorded, want %d", len(got), workers*perWorker)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		if got[i].Bench != got[j].Bench {
			return got[i].Bench < got[j].Bench
		}
		return got[i].Err.Error() < got[j].Err.Error()
	}) {
		t.Error("concurrent failures not in deterministic order")
	}
	seen := make(map[string]bool, len(got))
	for _, f := range got {
		if seen[f.Error()] {
			t.Fatalf("duplicate failure %q", f.Error())
		}
		seen[f.Error()] = true
	}
	// Progress must agree with the failure count.
	if s := c.Progress(); s.CellsFailed != workers*perWorker {
		t.Errorf("Progress().CellsFailed = %d, want %d", s.CellsFailed, workers*perWorker)
	}
}
