package experiment

import (
	"fmt"
	"math"
	"sync"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "fig17",
		Artifact: "Figure 17",
		Desc:     "hybrid path-length combination matrix (assoc4, 2-bit confidence)",
		Run:      runFig17,
	})
	register(Experiment{
		ID:       "tableA1",
		Artifact: "Table A-1 (+Figure 18, Tables 6, A-2)",
		Desc:     "best predictors per table size and organization, hybrid and non-hybrid",
		Run:      runAppendix,
	})
	register(Experiment{
		ID:       "fig18",
		Artifact: "Figure 18",
		Desc:     "best hybrid vs non-hybrid vs fully-associative per total size",
		Run:      runAppendix,
	})
	register(Experiment{
		ID:       "table6",
		Artifact: "Table 6",
		Desc:     "best hybrid misprediction rates and path length combinations",
		Run:      runAppendix,
	})
	register(Experiment{
		ID:       "tableA2",
		Artifact: "Table A-2",
		Desc:     "path length of the best predictor per associativity and size",
		Run:      runAppendix,
	})
	register(Experiment{
		ID:       "abl-meta",
		Artifact: "§6.1 (metaprediction)",
		Desc:     "per-entry confidence counters vs per-branch BPST selection",
		Run:      runAblMeta,
	})
	register(Experiment{
		ID:       "ext-ppm",
		Artifact: "§7 [CCM96]",
		Desc:     "PPM-style cascade vs confidence hybrid at equal budget",
		Run:      runExtPPM,
	})
	register(Experiment{
		ID:       "ext-shared",
		Artifact: "§8.1 (future work)",
		Desc:     "shared-table hybrid with chosen counters vs split tables",
		Run:      runExtShared,
	})
	register(Experiment{
		ID:       "ext-3comp",
		Artifact: "§8.1 (future work)",
		Desc:     "three-component hybrids vs the best two-component hybrid",
		Run:      runExt3Comp,
	})
}

// hybridMk constructs dual-path hybrids for batched sweeps.
func hybridMk(p1, p2 int, kind string, componentEntries int) func() (core.Predictor, error) {
	return func() (core.Predictor, error) {
		return core.NewDualPath(p1, p2, kind, componentEntries)
	}
}

// hybridRates runs a dual-path hybrid over the suite and returns per-benchmark
// rates.
func (c *Context) hybridRates(p1, p2 int, kind string, componentEntries int) (map[string]float64, error) {
	return c.Sweep(hybridMk(p1, p2, kind, componentEntries))
}

func runFig17(ctx *Context) ([]*stats.Table, error) {
	var tables []*stats.Table
	for _, compSize := range []int{2048, 8192} {
		t := stats.NewTable(
			fmt.Sprintf("Figure 17: AVG prediction hit rates, hybrid assoc4, component size %d", compSize),
			"p1")
		// The whole path-length combination matrix runs as one batch.
		type cell struct{ p1, p2 int }
		var cells []cell
		var mks []func() (core.Predictor, error)
		for p1 := 0; p1 <= 12; p1++ {
			for p2 := 0; p2 <= p1; p2++ {
				cells = append(cells, cell{p1, p2})
				if p1 == p2 {
					// Diagonal: the paper shows the non-hybrid
					// predictor of twice the component size.
					cfg := boundedConfig(p1, bits.Reverse, "assoc4", 2*compSize)
					mks = append(mks, func() (core.Predictor, error) {
						return core.NewTwoLevel(cfg)
					})
				} else {
					mks = append(mks, hybridMk(p1, p2, "assoc4", compSize))
				}
			}
		}
		rates, err := ctx.SweepBatch(mks)
		if err != nil {
			return nil, err
		}
		for i, cl := range cells {
			avg, _ := stats.GroupAverage(rates[i], stats.GroupAVG)
			t.Set(fmt.Sprintf("p1=%d", cl.p1), fmt.Sprintf("p2=%d", cl.p2), 100-avg)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// appendix holds the shared Table A-1 computation (also feeding Figure 18
// and Tables 6 and A-2), memoized on the context.
type appendix struct {
	once sync.Once
	err  error
	// best[family][size] = (missAVG, p1, p2); p2 < 0 for non-hybrids.
	best map[string]map[int]appendixCell
}

type appendixCell struct {
	miss     float64
	p1, p2   int
	perBench map[string]float64
}

var appendixSizes = fig11Sizes

// nonHybridFamilies maps Table A-1 column names to table kinds.
var nonHybridFamilies = []struct{ family, kind string }{
	{"btb-fullassoc", "fullassoc"}, // p fixed at 0
	{"tagless", "tagless"},
	{"assoc1", "assoc1"},
	{"assoc2", "assoc2"},
	{"assoc4", "assoc4"},
	{"fullassoc", "fullassoc"},
}

var hybridFamilies = []struct{ family, kind string }{
	{"hyb-tagless", "tagless"},
	{"hyb-assoc1", "assoc1"},
	{"hyb-assoc2", "assoc2"},
	{"hyb-assoc4", "assoc4"},
}

// hybridPairs are the candidate (short, long) component path lengths; the
// paper's winners (Table A-2) all lie inside this set.
func hybridPairs() [][2]int {
	var out [][2]int
	for a := 0; a <= 3; a++ {
		hi := 8
		if a == 3 {
			hi = 9
		}
		for b := a + 1; b <= hi; b++ {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

func (c *Context) appendix() (*appendix, error) {
	c.appx.once.Do(func() {
		c.appx.best = make(map[string]map[int]appendixCell)
		c.appx.err = c.computeAppendix(&c.appx)
	})
	return &c.appx, c.appx.err
}

func (c *Context) computeAppendix(a *appendix) error {
	record := func(family string, size int, cell appendixCell) {
		m := a.best[family]
		if m == nil {
			m = make(map[int]appendixCell)
			a.best[family] = m
		}
		if old, ok := m[size]; !ok || cell.miss < old.miss {
			m[size] = cell
		}
	}
	// The full grid — every (size, family, path length) candidate, hybrid
	// and non-hybrid — runs as one batch. Candidates are recorded in the
	// same order they are enumerated, so best-cell tie-breaking (first
	// strict improvement wins) matches the sequential computation.
	type candidate struct {
		family string
		size   int
		p1, p2 int
	}
	var cands []candidate
	var mks []func() (core.Predictor, error)
	for _, size := range appendixSizes {
		for _, fam := range nonHybridFamilies {
			maxP := 8
			if fam.family == "btb-fullassoc" {
				maxP = 0
			}
			for p := 0; p <= maxP; p++ {
				cfg := boundedConfig(p, bits.Reverse, fam.kind, size)
				cands = append(cands, candidate{fam.family, size, p, -1})
				mks = append(mks, func() (core.Predictor, error) {
					return core.NewTwoLevel(cfg)
				})
			}
		}
		for _, fam := range hybridFamilies {
			comp := size / 2
			if comp < 8 {
				continue
			}
			for _, pair := range hybridPairs() {
				cands = append(cands, candidate{fam.family, size, pair[0], pair[1]})
				mks = append(mks, hybridMk(pair[0], pair[1], fam.kind, comp))
			}
		}
	}
	rates, err := c.SweepBatch(mks)
	if err != nil {
		return err
	}
	for i, cand := range cands {
		avg, _ := stats.GroupAverage(rates[i], stats.GroupAVG)
		record(cand.family, cand.size, appendixCell{miss: avg, p1: cand.p1, p2: cand.p2, perBench: rates[i]})
	}
	return nil
}

func runAppendix(ctx *Context) ([]*stats.Table, error) {
	a, err := ctx.appendix()
	if err != nil {
		return nil, err
	}
	families := make([]string, 0, 10)
	for _, f := range nonHybridFamilies {
		families = append(families, f.family)
	}
	for _, f := range hybridFamilies {
		families = append(families, f.family)
	}

	a1 := stats.NewTable("Table A-1: AVG misprediction (best path length per cell)", "size")
	a2 := stats.NewTable("Table A-2: path lengths of the best predictors (p1 [+ p2/10 for hybrids])", "size")
	t6 := stats.NewTable("Table 6: best hybrid predictors (miss% and components)", "size")
	fig18 := stats.NewTable("Figure 18: best predictor per total size (AVG misprediction %)", "size")
	for _, size := range appendixSizes {
		row := fmt.Sprintf("%d", size)
		for _, fam := range families {
			cell, ok := a.best[fam][size]
			if !ok {
				continue
			}
			a1.Set(row, fam, cell.miss)
			enc := float64(cell.p1)
			if cell.p2 >= 0 {
				enc = float64(cell.p1) + float64(cell.p2)/10
			}
			a2.Set(row, fam, enc)
		}
		for _, fam := range []string{"hyb-tagless", "hyb-assoc2", "hyb-assoc4"} {
			if cell, ok := a.best[fam][size]; ok {
				t6.Set(row, fam+"-miss", cell.miss)
				t6.Set(row, fam+"-p1", float64(cell.p1))
				t6.Set(row, fam+"-p2", float64(cell.p2))
			}
		}
		for _, fam := range []string{"tagless", "assoc2", "assoc4", "fullassoc",
			"hyb-tagless", "hyb-assoc2", "hyb-assoc4"} {
			if cell, ok := a.best[fam][size]; ok {
				fig18.Set(row, fam, cell.miss)
			}
		}
	}

	// Per-benchmark Table A-1 slices at two representative sizes.
	var perBench []*stats.Table
	for _, size := range []int{1024, 8192} {
		t := stats.NewTable(fmt.Sprintf("Table A-1 per benchmark, %d entries", size), "benchmark")
		for _, fam := range families {
			cell, ok := a.best[fam][size]
			if !ok {
				continue
			}
			ext := stats.WithGroups(cell.perBench)
			for _, k := range stats.SortedKeys(ext) {
				t.Set(k, fam, ext[k])
			}
		}
		perBench = append(perBench, t)
	}

	out := []*stats.Table{a1, a2, t6, fig18}
	return append(out, perBench...), nil
}

// pairSweep batches a (row × size-column) comparison grid — two predictor
// variants per budget column, as used by the §6–§8 comparison experiments —
// and fills the table with AVG rates.
func pairSweep(ctx *Context, t *stats.Table, sizes []int,
	rows [2]string, mk func(which, size int) func() (core.Predictor, error)) ([]*stats.Table, error) {
	var mks []func() (core.Predictor, error)
	for _, size := range sizes {
		for which := 0; which < 2; which++ {
			mks = append(mks, mk(which, size))
		}
	}
	rates, err := ctx.SweepBatch(mks)
	if err != nil {
		return nil, err
	}
	for i, size := range sizes {
		col := fmt.Sprintf("%d", size)
		for which := 0; which < 2; which++ {
			avg, _ := stats.GroupAverage(rates[2*i+which], stats.GroupAVG)
			t.Set(rows[which], col, avg)
		}
	}
	return []*stats.Table{t}, nil
}

func runAblMeta(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§6.1 ablation: metaprediction (AVG, hybrid p=3.1 assoc4)", "selector")
	return pairSweep(ctx, t, []int{512, 2048, 8192}, [2]string{"confidence", "bpst"},
		func(which, size int) func() (core.Predictor, error) {
			comp := size / 2
			if which == 0 {
				return hybridMk(1, 3, "assoc4", comp)
			}
			return func() (core.Predictor, error) {
				mk := func(p int) (*core.TwoLevel, error) {
					return core.NewTwoLevel(boundedConfig(p, bits.Reverse, "assoc4", comp))
				}
				a, err := mk(1)
				if err != nil {
					return nil, err
				}
				b, err := mk(3)
				if err != nil {
					return nil, err
				}
				return core.NewBPSTHybrid(a, b, 1024)
			}
		})
}

func runExtPPM(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§7 extension: PPM cascade vs confidence hybrid (AVG, p=3&1)", "predictor")
	return pairSweep(ctx, t, []int{512, 2048, 8192}, [2]string{"hybrid", "ppm-cascade"},
		func(which, size int) func() (core.Predictor, error) {
			comp := size / 2
			if which == 0 {
				return hybridMk(1, 3, "assoc4", comp)
			}
			return func() (core.Predictor, error) {
				return core.NewCascade([]int{3, 1}, "assoc4", comp)
			}
		})
}

func runExtShared(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§8.1 extension: shared-table hybrid (AVG, p=3.1 assoc4)", "predictor")
	return pairSweep(ctx, t, []int{512, 2048, 8192}, [2]string{"split-tables", "shared-table"},
		func(which, size int) func() (core.Predictor, error) {
			if which == 0 {
				return hybridMk(1, 3, "assoc4", size/2)
			}
			return func() (core.Predictor, error) {
				return core.NewSharedHybrid(3, 1, "assoc4", size)
			}
		})
}

func runExt3Comp(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§8.1 extension: three-component hybrids (AVG, assoc4)", "predictor")
	return pairSweep(ctx, t, []int{1536, 6144, 24576}, [2]string{"two-comp(3.1)", "three-comp(7.3.1)"},
		func(which, total int) func() (core.Predictor, error) {
			if which == 0 {
				return hybridMk(1, 3, "assoc4", roundPow2(total/2))
			}
			comp3 := roundPow2(total / 3)
			return func() (core.Predictor, error) {
				comps := make([]core.Component, 0, 3)
				for _, p := range []int{1, 3, 7} {
					c, err := core.NewTwoLevel(boundedConfig(p, bits.Reverse, "assoc4", comp3))
					if err != nil {
						return nil, err
					}
					comps = append(comps, c)
				}
				return core.NewHybrid(comps...)
			}
		})
}

// roundPow2 rounds n to the nearest power of two (ties up).
func roundPow2(n int) int {
	if n < 1 {
		return 1
	}
	lg := math.Log2(float64(n))
	return 1 << int(lg+0.5)
}
