package experiment

import (
	"fmt"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/stats"
	"github.com/oocsb/ibp/internal/vm"
)

func init() {
	register(Experiment{
		ID:       "limits",
		Artifact: "TRCS97-10 (companion)",
		Desc:     "predictability limits: static and first-order oracles vs realizable predictors",
		Run:      runLimits,
	})
	register(Experiment{
		ID:       "vm",
		Artifact: "§1 (interpreters)",
		Desc:     "predictor generations on real VM program traces",
		Run:      runVM,
	})
	register(Experiment{
		ID:       "ctxswitch",
		Artifact: "§7 [ECP96]",
		Desc:     "misprediction under periodic predictor flushes (context switches)",
		Run:      runCtxSwitch,
	})
}

func runLimits(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Predictability limits (misprediction %, per benchmark)", "benchmark",
		"oracle-static", "oracle-1st", "btb-2bc", "2lev-p2", "hybrid-3.1")
	for _, cfg := range ctx.Suite {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tr := ctx.Trace(cfg)
		t.Set(cfg.Name, "oracle-static", sim.OracleStatic(tr))
		t.Set(cfg.Name, "oracle-1st", sim.OracleFirstOrder(tr))
		t.Set(cfg.Name, "btb-2bc", sim.MissRate(core.NewBTB(nil, core.UpdateTwoMiss), tr))
		two := core.MustTwoLevel(core.Config{PathLength: 2, Precision: 0, TableKind: "exact"})
		t.Set(cfg.Name, "2lev-p2", sim.MissRate(two, tr))
		hyb, err := core.NewDualPath(3, 1, "assoc4", 4096)
		if err != nil {
			return nil, err
		}
		t.Set(cfg.Name, "hybrid-3.1", sim.MissRate(hyb, tr))
	}
	return []*stats.Table{t}, nil
}

func runVM(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("VM program traces: misprediction (%) by predictor", "program")
	for _, name := range vm.SampleNames() {
		opts := vm.Options{}
		if name == "tokens" {
			opts.TraceDispatch = true // the interpreter-dispatch workload
		}
		_, tr, err := vm.RunSample(name, opts)
		if err != nil {
			return nil, err
		}
		ind := tr.Indirect()
		if len(ind) == 0 {
			continue
		}
		t.Set(name, "btb-2bc", sim.MissRate(core.NewBTB(nil, core.UpdateTwoMiss), ind))
		for _, p := range []int{1, 2, 4, 6} {
			pred := core.MustTwoLevel(boundedConfig(p, bits.Reverse, "assoc4", 4096))
			t.Set(name, fmt.Sprintf("2lev-p%d", p), sim.MissRate(pred, ind))
		}
		hyb, err := core.NewDualPath(3, 1, "assoc4", 2048)
		if err != nil {
			return nil, err
		}
		t.Set(name, "hybrid-3.1", sim.MissRate(hyb, ind))
	}
	return []*stats.Table{t}, nil
}

func runCtxSwitch(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Context switches: AVG misprediction (%) with periodic predictor flushes", "flush-interval")
	intervals := []int{0, 16384, 4096, 1024}
	for _, iv := range intervals {
		row := "none"
		if iv > 0 {
			row = fmt.Sprintf("%d", iv)
		}
		for _, pcfg := range []struct {
			col string
			mk  func() (core.Predictor, error)
		}{
			{"btb-2bc", func() (core.Predictor, error) { return core.NewBTB(nil, core.UpdateTwoMiss), nil }},
			{"2lev-p2", func() (core.Predictor, error) {
				return core.NewTwoLevel(boundedConfig(2, bits.Reverse, "assoc4", 4096))
			}},
			{"2lev-p6", func() (core.Predictor, error) {
				return core.NewTwoLevel(boundedConfig(6, bits.Reverse, "assoc4", 4096))
			}},
			{"hybrid-3.1", func() (core.Predictor, error) { return core.NewDualPath(3, 1, "assoc4", 2048) }},
		} {
			rates := make(map[string]float64, len(ctx.Suite))
			for _, cfg := range ctx.Suite {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				p, err := pcfg.mk()
				if err != nil {
					return nil, err
				}
				rates[cfg.Name] = sim.Run(p, ctx.Trace(cfg), sim.Options{FlushEvery: iv}).MissRate()
			}
			avg, _ := stats.GroupAverage(rates, stats.GroupAVG)
			t.Set(row, pcfg.col, avg)
		}
	}
	return []*stats.Table{t}, nil
}
