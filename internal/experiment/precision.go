package experiment

import (
	"fmt"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/history"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "fig10",
		Artifact: "Figure 10",
		Desc:     "history pattern precision: b bits per target vs full addresses",
		Run:      runFig10,
	})
	register(Experiment{
		ID:       "table5",
		Artifact: "Table 5",
		Desc:     "xor vs concatenation of history pattern with branch address",
		Run:      runTable5,
	})
}

func runFig10(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 10: bits per target (unconstrained tables, AVG)", "bits")
	rows := []struct {
		label string
		bits  int
	}{
		{"b=1", 1}, {"b=2", 2}, {"b=3", 3}, {"b=4", 4}, {"b=8", 8}, {"full", 0},
	}
	for p := 0; p <= 12; p++ {
		for _, r := range rows {
			p, r := p, r
			cfg := exactConfig(p)
			if p > 0 {
				cfg.TableKind = "exact"
				cfg.Precision = r.bits
			}
			rates, err := ctx.Sweep(func() (core.Predictor, error) {
				return core.NewTwoLevel(cfg)
			})
			if err != nil {
				return nil, err
			}
			avg, _ := stats.GroupAverage(rates, stats.GroupAVG)
			t.Set(r.label, fmt.Sprintf("p=%d", p), avg)
		}
	}
	return []*stats.Table{t}, nil
}

func runTable5(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Table 5: xor vs concatenation with branch address (AVG, b=⌊24/p⌋)", "operation")
	for p := 0; p <= 12; p++ {
		var xor, concat float64
		for _, op := range []history.KeyOp{history.OpXor, history.OpConcat} {
			p, op := p, op
			cfg := core.Config{
				PathLength: p,
				Precision:  core.AutoPrecision,
				KeyOp:      op,
				TableKind:  "unbounded",
			}
			rates, err := ctx.Sweep(func() (core.Predictor, error) {
				return core.NewTwoLevel(cfg)
			})
			if err != nil {
				return nil, err
			}
			avg, _ := stats.GroupAverage(rates, stats.GroupAVG)
			if op == history.OpXor {
				xor = avg
			} else {
				concat = avg
			}
		}
		col := fmt.Sprintf("p=%d", p)
		t.Set("Xor", col, xor)
		t.Set("Concat", col, concat)
		t.Set("Xor-Concat", col, xor-concat)
	}
	return []*stats.Table{t}, nil
}
