package experiment

import (
	"fmt"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/history"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "fig10",
		Artifact: "Figure 10",
		Desc:     "history pattern precision: b bits per target vs full addresses",
		Run:      runFig10,
	})
	register(Experiment{
		ID:       "table5",
		Artifact: "Table 5",
		Desc:     "xor vs concatenation of history pattern with branch address",
		Run:      runTable5,
	})
}

func runFig10(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 10: bits per target (unconstrained tables, AVG)", "bits")
	rows := []struct {
		label string
		bits  int
	}{
		{"b=1", 1}, {"b=2", 2}, {"b=3", 3}, {"b=4", 4}, {"b=8", 8}, {"full", 0},
	}
	var cfgs []core.Config
	for p := 0; p <= 12; p++ {
		for _, r := range rows {
			cfg := exactConfig(p)
			if p > 0 {
				cfg.TableKind = "exact"
				cfg.Precision = r.bits
			}
			cfgs = append(cfgs, cfg)
		}
	}
	avgs, err := ctx.avgsOver(cfgs)
	if err != nil {
		return nil, err
	}
	for p := 0; p <= 12; p++ {
		for j, r := range rows {
			t.Set(r.label, fmt.Sprintf("p=%d", p), avgs[p*len(rows)+j])
		}
	}
	return []*stats.Table{t}, nil
}

func runTable5(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Table 5: xor vs concatenation with branch address (AVG, b=⌊24/p⌋)", "operation")
	ops := []history.KeyOp{history.OpXor, history.OpConcat}
	var cfgs []core.Config
	for p := 0; p <= 12; p++ {
		for _, op := range ops {
			cfgs = append(cfgs, core.Config{
				PathLength: p,
				Precision:  core.AutoPrecision,
				KeyOp:      op,
				TableKind:  "unbounded",
			})
		}
	}
	avgs, err := ctx.avgsOver(cfgs)
	if err != nil {
		return nil, err
	}
	for p := 0; p <= 12; p++ {
		xor, concat := avgs[p*2], avgs[p*2+1]
		col := fmt.Sprintf("p=%d", p)
		t.Set("Xor", col, xor)
		t.Set("Concat", col, concat)
		t.Set("Xor-Concat", col, xor-concat)
	}
	return []*stats.Table{t}, nil
}
