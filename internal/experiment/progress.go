// Sweep progress accounting: lock-free counters the front end polls to
// render a live cells-done/total line with ETA and rolling miss rate, and
// that feed the telemetry registry's sweep_* metrics.
package experiment

import (
	"sync/atomic"
	"time"

	"github.com/oocsb/ibp/internal/telemetry"
)

// progress is the Context's cumulative sweep accounting. Counters only grow
// (cells from successive sweeps of one run accumulate), so a snapshot taken
// at any moment is internally consistent enough for display.
type progress struct {
	startNanos  atomic.Int64 // wall clock of the first queued cell, 0 before
	cellsTotal  atomic.Int64
	cellsDone   atomic.Int64 // includes degraded cells: they consumed their slot
	cellsFailed atomic.Int64 // degraded cell/lane failures recorded
	executed    atomic.Uint64
	misses      atomic.Uint64
}

// begin marks the queueing of n more cells, stamping the start time on the
// first call.
func (p *progress) begin(n int, now time.Time) {
	p.startNanos.CompareAndSwap(0, now.UnixNano())
	p.cellsTotal.Add(int64(n))
}

// ProgressSnapshot is a point-in-time reading of a run's sweep progress.
// Cells are (benchmark × configuration-chunk) work units of the batched
// sweeps; hand-rolled experiment loops don't contribute, so the totals cover
// the grid sweeps that dominate a full run.
type ProgressSnapshot struct {
	// CellsTotal is the number of cells queued so far (it grows as
	// successive experiments start their sweeps).
	CellsTotal int
	// CellsDone is the number of cells finished, including degraded ones.
	CellsDone int
	// CellsFailed counts degraded cell and lane failures recorded.
	CellsFailed int
	// Executed and Misses accumulate over every completed cell's lanes,
	// giving the rolling misprediction rate of the run so far.
	Executed, Misses uint64
	// Elapsed is the wall time since the first cell was queued (0 before).
	Elapsed time.Duration
}

// MissRate returns the rolling misprediction rate in percent.
func (s ProgressSnapshot) MissRate() float64 {
	if s.Executed == 0 {
		return 0
	}
	return 100 * float64(s.Misses) / float64(s.Executed)
}

// ETA extrapolates the remaining wall time from the done/elapsed rate;
// zero until at least one cell has finished.
func (s ProgressSnapshot) ETA() time.Duration {
	if s.CellsDone == 0 || s.CellsTotal <= s.CellsDone {
		return 0
	}
	perCell := s.Elapsed / time.Duration(s.CellsDone)
	return perCell * time.Duration(s.CellsTotal-s.CellsDone)
}

// Progress returns the run's cumulative sweep progress. It is safe to call
// concurrently with running sweeps — the counters are atomics — and cheap
// enough to poll a few times per second.
func (c *Context) Progress() ProgressSnapshot {
	s := ProgressSnapshot{
		CellsTotal:  int(c.prog.cellsTotal.Load()),
		CellsDone:   int(c.prog.cellsDone.Load()),
		CellsFailed: int(c.prog.cellsFailed.Load()),
		Executed:    c.prog.executed.Load(),
		Misses:      c.prog.misses.Load(),
	}
	if start := c.prog.startNanos.Load(); start != 0 {
		s.Elapsed = time.Since(time.Unix(0, start))
	}
	return s
}

// sweepMetrics is the per-sweep set of registry handles (nil handles when
// telemetry is disabled; all uses are nil-safe).
type sweepMetrics struct {
	queued    *telemetry.Counter
	done      *telemetry.Counter
	failed    *telemetry.Counter
	retried   *telemetry.Counter
	running   *telemetry.Gauge
	cellTime  *telemetry.Histogram
	laneHits  *telemetry.Counter
	laneMiss  *telemetry.Counter
	traceHits *telemetry.Counter
	traceMiss *telemetry.Counter
	tracePan  *telemetry.Counter
}

func newSweepMetrics(r *telemetry.Registry) sweepMetrics {
	if r == nil {
		return sweepMetrics{}
	}
	return sweepMetrics{
		queued:    r.Counter("sweep_cells_queued_total"),
		done:      r.Counter("sweep_cells_done_total"),
		failed:    r.Counter("sweep_cells_failed_total"),
		retried:   r.Counter("sweep_cells_retried_total"),
		running:   r.Gauge("sweep_cells_running"),
		cellTime:  r.Histogram("sweep_cell"),
		laneHits:  r.Counter("sweep_lane_cache_hits_total"),
		laneMiss:  r.Counter("sweep_lane_cache_misses_total"),
		traceHits: r.Counter("trace_cache_hits_total"),
		traceMiss: r.Counter("trace_cache_misses_total"),
		tracePan:  r.Counter("trace_gen_panics_total"),
	}
}
