package experiment

import (
	"fmt"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/ras"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "ras",
		Artifact: "§2 (premise)",
		Desc:     "return address stack accuracy on workloads with returns",
		Run:      runRAS,
	})
	register(Experiment{
		ID:       "rel-tcache",
		Artifact: "§7 [CHP97]",
		Desc:     "Chang-style pattern-history target cache vs path-based two-level",
		Run:      runRelTCache,
	})
}

func runRAS(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§2: return address stack misprediction (%) by depth", "benchmark")
	depths := []int{1, 2, 4, 8, 16, 64}
	for _, cfg := range ctx.Suite {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := cfg
		cfg.EmitReturns = true
		tr := cfg.MustGenerate(ctx.TraceLen / 4)
		for _, d := range depths {
			res := ras.Simulate(tr, d)
			t.Set(cfg.Name, fmt.Sprintf("depth=%d", d), res.MissRate())
		}
	}
	return []*stats.Table{t}, nil
}

func runRelTCache(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§7: target cache (gshare over conditionals) vs path-based (AVG)", "predictor")
	for _, size := range []int{512, 4096} {
		col := fmt.Sprintf("%d", size)
		// Chang et al.'s gshare(9) pattern history target cache; the
		// first level sees conditional outcomes, so it needs full
		// traces.
		tcache, err := ctx.SweepFull(func() (core.Predictor, error) {
			return core.NewTargetCache(9, "tagless", size)
		})
		if err != nil {
			return nil, err
		}
		avgTC, _ := stats.GroupAverage(tcache, stats.GroupAVG)
		t.Set("target-cache(9)", col, avgTC)
		// The paper's comparable non-hybrid (p=3, tagless) and best
		// hybrid configurations (§7 discussion).
		for _, pcfg := range []struct {
			row string
			p   int
		}{{"2lev-p3-tagless", 3}} {
			rates, err := ctx.Sweep(func() (core.Predictor, error) {
				cfg := boundedConfig(pcfg.p, bits.Reverse, "tagless", size)
				return core.NewTwoLevel(cfg)
			})
			if err != nil {
				return nil, err
			}
			avg, _ := stats.GroupAverage(rates, stats.GroupAVG)
			t.Set(pcfg.row, col, avg)
		}
		hyb, err := ctx.hybridRates(1, 3, "assoc4", size/2)
		if err != nil {
			return nil, err
		}
		avgHyb, _ := stats.GroupAverage(hyb, stats.GroupAVG)
		t.Set("hybrid-3.1-assoc4", col, avgHyb)
	}
	return []*stats.Table{t}, nil
}
