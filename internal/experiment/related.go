package experiment

import (
	"fmt"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/ras"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "ras",
		Artifact: "§2 (premise)",
		Desc:     "return address stack accuracy on workloads with returns",
		Run:      runRAS,
	})
	register(Experiment{
		ID:       "rel-tcache",
		Artifact: "§7 [CHP97]",
		Desc:     "Chang-style pattern-history target cache vs path-based two-level",
		Run:      runRelTCache,
	})
}

func runRAS(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§2: return address stack misprediction (%) by depth", "benchmark")
	depths := []int{1, 2, 4, 8, 16, 64}
	for _, cfg := range ctx.Suite {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := cfg
		cfg.EmitReturns = true
		tr := cfg.MustGenerate(ctx.TraceLen / 4)
		for _, d := range depths {
			res := ras.Simulate(tr, d)
			t.Set(cfg.Name, fmt.Sprintf("depth=%d", d), res.MissRate())
		}
	}
	return []*stats.Table{t}, nil
}

func runRelTCache(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§7: target cache (gshare over conditionals) vs path-based (AVG)", "predictor")
	sizes := []int{512, 4096}
	// Chang et al.'s gshare(9) pattern history target cache; the first
	// level sees conditional outcomes, so it needs full traces and batches
	// separately from the indirect-only path-based predictors.
	var tcMks, pathMks []func() (core.Predictor, error)
	for _, size := range sizes {
		tcMks = append(tcMks, func() (core.Predictor, error) {
			return core.NewTargetCache(9, "tagless", size)
		})
		// The paper's comparable non-hybrid (p=3, tagless) and best
		// hybrid configurations (§7 discussion).
		cfg := boundedConfig(3, bits.Reverse, "tagless", size)
		pathMks = append(pathMks,
			func() (core.Predictor, error) { return core.NewTwoLevel(cfg) },
			hybridMk(1, 3, "assoc4", size/2),
		)
	}
	tcache, err := ctx.SweepBatchFull(tcMks)
	if err != nil {
		return nil, err
	}
	path, err := ctx.SweepBatch(pathMks)
	if err != nil {
		return nil, err
	}
	for i, size := range sizes {
		col := fmt.Sprintf("%d", size)
		avgTC, _ := stats.GroupAverage(tcache[i], stats.GroupAVG)
		t.Set("target-cache(9)", col, avgTC)
		avg2lev, _ := stats.GroupAverage(path[2*i], stats.GroupAVG)
		t.Set("2lev-p3-tagless", col, avg2lev)
		avgHyb, _ := stats.GroupAverage(path[2*i+1], stats.GroupAVG)
		t.Set("hybrid-3.1-assoc4", col, avgHyb)
	}
	return []*stats.Table{t}, nil
}
