package experiment

import (
	"github.com/oocsb/ibp/internal/analysis"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "sites",
		Artifact: "§2 (benchmark discussion)",
		Desc:     "per-benchmark branch-site behaviour classes (monomorphic/dominated/cyclic/chaotic)",
		Run:      runSites,
	})
}

func runSites(ctx *Context) ([]*stats.Table, error) {
	shares := stats.NewTable("Branch-site classes: share of dynamic indirect branches (%)", "benchmark")
	counts := stats.NewTable("Branch-site classes: static site counts", "benchmark")
	for _, cfg := range ctx.Suite {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := analysis.Summarize(analysis.Profile(ctx.Trace(cfg)))
		for _, class := range analysis.Classes() {
			shares.Set(cfg.Name, class, 100*b.Shares[class])
			counts.Set(cfg.Name, class, float64(b.Sites[class]))
		}
	}
	return []*stats.Table{shares, counts}, nil
}
