package experiment

import (
	"sync"
	"testing"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/sim"
)

// TestTraceSingleFlight hammers the trace caches from many goroutines: every
// caller must get the same backing array (the trace is generated exactly once
// and shared), for both the indirect-only and the full variants.
func TestTraceSingleFlight(t *testing.T) {
	ctx := tinyContext(t)
	cfg := ctx.Suite[0]
	const callers = 16
	indirect := make([][]uint32, callers) // first-element addresses as identity
	full := make([][]uint32, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := ctx.Trace(cfg)
			ftr := ctx.FullTrace(cfg)
			indirect[i] = []uint32{tr[0].PC, ftr[0].PC}
			full[i] = []uint32{uint32(len(tr)), uint32(len(ftr))}
		}()
	}
	wg.Wait()
	a := ctx.Trace(cfg)
	fa := ctx.FullTrace(cfg)
	for i := 0; i < callers; i++ {
		if indirect[i][0] != a[0].PC || indirect[i][1] != fa[0].PC {
			t.Fatalf("caller %d saw different trace head", i)
		}
		if int(full[i][0]) != len(a) || int(full[i][1]) != len(fa) {
			t.Fatalf("caller %d saw different trace length", i)
		}
	}
	// Identity check on the cache itself: repeated calls alias one array.
	b := ctx.Trace(cfg)
	if &a[0] != &b[0] {
		t.Error("indirect trace not cached")
	}
	fb := ctx.FullTrace(cfg)
	if &fa[0] != &fb[0] {
		t.Error("full trace not cached")
	}
}

// sweepGrid is a configuration grid wide enough to span multiple sweepChunk
// chunks, mixing table kinds so lanes are genuinely heterogeneous.
func sweepGrid() []core.Config {
	var cfgs []core.Config
	kinds := []string{"tagless", "assoc2", "fullassoc"}
	for p := 0; p <= 5; p++ {
		for _, kind := range kinds {
			cfgs = append(cfgs, boundedConfig(p, 0, kind, 256))
		}
	}
	return cfgs // 18 configs > sweepChunk
}

// TestSweepBatchMatchesSequential is the golden guarantee behind every
// batched experiment: running a grid of configurations through SweepConfigs
// (chunked lanes, shared trace passes, predictor reuse via Reset) must give
// exactly the rates of running each configuration alone.
func TestSweepBatchMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := tinyContext(t)
	cfgs := sweepGrid()
	batched, err := ctx.SweepConfigs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ctx.TakeFailures()); n != 0 {
		t.Fatalf("%d degraded cells in healthy sweep", n)
	}
	for i, cfg := range cfgs {
		cfg := cfg
		solo, err := ctx.Sweep(func() (core.Predictor, error) { return core.NewTwoLevel(cfg) })
		if err != nil {
			t.Fatal(err)
		}
		if len(batched[i]) != len(solo) {
			t.Fatalf("config %d: %d benchmarks batched, %d solo", i, len(batched[i]), len(solo))
		}
		for bench, want := range solo {
			if got := batched[i][bench]; got != want {
				t.Errorf("config %d (%s): %s: batched %v != solo %v",
					i, cfg.TableKind, bench, got, want)
			}
		}
	}
}

// TestSweepSpecsShadowMatchesSolo checks the capacity-attribution path: a
// batched spec with an unbounded shadow twin must report the same miss and
// capacity rates as the same spec swept alone.
func TestSweepSpecsShadowMatchesSolo(t *testing.T) {
	ctx := tinyContext(t)
	cfg := boundedConfig(2, 0, "fullassoc", 64)
	shadowCfg := cfg
	shadowCfg.TableKind = "unbounded"
	shadowCfg.Entries = 0
	spec := SweepSpec{
		Mk:       func() (core.Predictor, error) { return core.NewTwoLevel(cfg) },
		MkShadow: func() (core.Predictor, error) { return core.NewTwoLevel(shadowCfg) },
	}
	// Two copies of the same spec in one batch: both lanes must agree with
	// each other (no cross-lane contamination) and with a solo run.
	batch, err := ctx.SweepSpecs([]SweepSpec{spec, spec}, false)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := ctx.SweepSpecs([]SweepSpec{spec}, false)
	if err != nil {
		t.Fatal(err)
	}
	key := func(r sim.Result) [4]int {
		return [4]int{r.Executed, r.Misses, r.NoPrediction, r.CapacityMisses}
	}
	for _, bench := range []string{"idl", "gcc"} {
		a, b, s := batch[0][bench], batch[1][bench], solo[0][bench]
		if key(a) != key(b) {
			t.Errorf("%s: lane results differ: %+v vs %+v", bench, a, b)
		}
		if key(a) != key(s) {
			t.Errorf("%s: batched %+v != solo %+v", bench, a, s)
		}
		if a.CapacityRate() < 0 || a.CapacityRate() > a.MissRate() {
			t.Errorf("%s: capacity rate %v outside [0, miss %v]",
				bench, a.CapacityRate(), a.MissRate())
		}
	}
}

// TestSweepSpecsRejectsInlineShadow pins the API contract: shadows must come
// from MkShadow so each lane × benchmark cell gets a private instance.
func TestSweepSpecsRejectsInlineShadow(t *testing.T) {
	ctx := tinyContext(t)
	sh, err := core.NewTwoLevel(core.Config{TableKind: "unbounded"})
	if err != nil {
		t.Fatal(err)
	}
	spec := SweepSpec{
		Mk:   func() (core.Predictor, error) { return core.NewTwoLevel(exactConfig(1)) },
		Opts: sim.Options{Shadow: sh},
	}
	if _, err := ctx.SweepSpecs([]SweepSpec{spec}, false); err == nil {
		t.Fatal("inline Opts.Shadow accepted")
	}
}
