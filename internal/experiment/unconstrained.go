package experiment

import (
	"fmt"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "table1",
		Artifact: "Tables 1–2",
		Desc:     "benchmark characteristics: branch counts, densities, site coverage",
		Run:      runTable1,
	})
	register(Experiment{
		ID:       "fig2",
		Artifact: "Figure 2",
		Desc:     "unconstrained BTB vs BTB-2bc misprediction rates",
		Run:      runFig2,
	})
	register(Experiment{
		ID:       "fig5",
		Artifact: "Figure 5",
		Desc:     "history pattern sharing s (per-branch … global), p=8",
		Run:      runFig5,
	})
	register(Experiment{
		ID:       "fig7",
		Artifact: "Figure 7",
		Desc:     "history table sharing h (per-branch … global), p=8, global history",
		Run:      runFig7,
	})
	register(Experiment{
		ID:       "fig9",
		Artifact: "Figure 9",
		Desc:     "path length sweep p=0..18, unconstrained two-level",
		Run:      runFig9,
	})
	register(Experiment{
		ID:       "abl-update",
		Artifact: "§3.2 (update rule claim)",
		Desc:     "update-always vs two-miss (2bc) target update across path lengths",
		Run:      runAblUpdate,
	})
	register(Experiment{
		ID:       "abl-cond",
		Artifact: "§3.3 (variation)",
		Desc:     "including conditional-branch targets in the history",
		Run:      runAblCond,
	})
	register(Experiment{
		ID:       "abl-addr",
		Artifact: "§3.3 (variation)",
		Desc:     "including branch addresses alongside targets in the history",
		Run:      runAblAddr,
	})
}

func runTable1(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Tables 1–2: benchmark characteristics", "benchmark",
		"branches", "instr/ind", "cond/ind", "vcall%", "sites90", "sites95", "sites99", "sites100")
	for _, cfg := range ctx.Suite {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := ctx.Summary(cfg)
		t.AddRow(cfg.Name,
			float64(s.Indirect),
			s.InstrPerIndirect,
			s.CondPerIndirect,
			100*s.VCallFraction,
			float64(s.Coverage[90]),
			float64(s.Coverage[95]),
			float64(s.Coverage[99]),
			float64(s.Coverage[100]),
		)
	}
	return []*stats.Table{t}, nil
}

// exactConfig returns the unconstrained (§3) configuration for a path
// length: full-precision keys, exact tables (p=0 keys are just the branch
// address, which fits the unbounded 64-bit table).
func exactConfig(p int) core.Config {
	cfg := core.Config{PathLength: p, Precision: 0}
	if p == 0 {
		cfg.TableKind = "unbounded"
	} else {
		cfg.TableKind = "exact"
	}
	return cfg
}

func runFig2(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 2: unconstrained BTB misprediction rates", "benchmark", "btb", "btb-2bc")
	rules := []struct {
		col  string
		rule core.UpdateRule
	}{{"btb", core.UpdateAlways}, {"btb-2bc", core.UpdateTwoMiss}}
	mks := make([]func() (core.Predictor, error), len(rules))
	for i, r := range rules {
		rule := r.rule
		mks[i] = func() (core.Predictor, error) { return core.NewBTB(nil, rule), nil }
	}
	rates, err := ctx.SweepBatch(mks)
	if err != nil {
		return nil, err
	}
	for i, r := range rules {
		ext := stats.WithGroups(rates[i])
		for _, k := range stats.SortedKeys(ext) {
			t.Set(k, r.col, ext[k])
		}
	}
	return []*stats.Table{t}, nil
}

// shareSweepValues are the sharing exponents simulated for Figures 5 and 7
// (the paper sweeps 2..22 plus 31 = global).
var shareSweepValues = []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 31}

func runFig5(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 5: history sharing (p=8, per-branch tables)", "group")
	cfgs := make([]core.Config, len(shareSweepValues))
	for i, s := range shareSweepValues {
		cfgs[i] = exactConfig(8)
		cfgs[i].HistShare = s
	}
	rates, err := ctx.SweepConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	for i, s := range shareSweepValues {
		setGroups(t, fmt.Sprintf("s=%d", s), rates[i])
	}
	return []*stats.Table{t}, nil
}

func runFig7(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 7: history table sharing (p=8, global history)", "group")
	cfgs := make([]core.Config, len(shareSweepValues))
	for i, h := range shareSweepValues {
		cfgs[i] = exactConfig(8)
		cfgs[i].TableShare = h
	}
	rates, err := ctx.SweepConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	for i, h := range shareSweepValues {
		setGroups(t, fmt.Sprintf("h=%d", h), rates[i])
	}
	return []*stats.Table{t}, nil
}

func runFig9(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 9: misprediction vs path length (global history, per-address tables)", "group")
	var cfgs []core.Config
	for p := 0; p <= 18; p++ {
		cfgs = append(cfgs, exactConfig(p))
	}
	rates, err := ctx.SweepConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	for p := 0; p <= 18; p++ {
		setGroups(t, fmt.Sprintf("p=%d", p), rates[p])
	}
	return []*stats.Table{t}, nil
}

func runAblUpdate(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§3.2 ablation: target update rule (AVG)", "rule")
	type cell struct {
		p    int
		rule core.UpdateRule
	}
	var cells []cell
	var cfgs []core.Config
	for p := 0; p <= 8; p++ {
		for _, rule := range []core.UpdateRule{core.UpdateAlways, core.UpdateTwoMiss} {
			cfg := exactConfig(p)
			cfg.Update = rule
			cells = append(cells, cell{p, rule})
			cfgs = append(cfgs, cfg)
		}
	}
	rates, err := ctx.SweepConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	for i, cl := range cells {
		avg, _ := stats.GroupAverage(rates[i], stats.GroupAVG)
		t.Set(cl.rule.String(), fmt.Sprintf("p=%d", cl.p), avg)
	}
	return []*stats.Table{t}, nil
}

// ablVariation runs the §3.3 history-variation grids: path lengths × the
// include flag, batched over the whole grid.
func ablVariation(ctx *Context, t *stats.Table, offRow, onRow string,
	set func(cfg *core.Config, include bool), full bool) ([]*stats.Table, error) {
	paths := []int{2, 4, 6, 8, 12}
	var cfgs []core.Config
	for _, p := range paths {
		for _, include := range []bool{false, true} {
			cfg := exactConfig(p)
			set(&cfg, include)
			cfgs = append(cfgs, cfg)
		}
	}
	var rates []map[string]float64
	var err error
	if full {
		rates, err = ctx.SweepConfigsFull(cfgs)
	} else {
		rates, err = ctx.SweepConfigs(cfgs)
	}
	if err != nil {
		return nil, err
	}
	for i, p := range paths {
		for j, row := range []string{offRow, onRow} {
			avg, _ := stats.GroupAverage(rates[2*i+j], stats.GroupAVG)
			t.Set(row, fmt.Sprintf("p=%d", p), avg)
		}
	}
	return []*stats.Table{t}, nil
}

func runAblCond(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§3.3 ablation: conditional targets in the history (AVG)", "history")
	return ablVariation(ctx, t, "indirect-only", "with-conditionals",
		func(cfg *core.Config, include bool) { cfg.IncludeCond = include }, true)
}

func runAblAddr(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§3.3 ablation: branch addresses in the history (AVG)", "history")
	return ablVariation(ctx, t, "targets-only", "targets+addresses",
		func(cfg *core.Config, include bool) { cfg.IncludeAddress = include }, false)
}
