package experiment

import (
	"fmt"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "table1",
		Artifact: "Tables 1–2",
		Desc:     "benchmark characteristics: branch counts, densities, site coverage",
		Run:      runTable1,
	})
	register(Experiment{
		ID:       "fig2",
		Artifact: "Figure 2",
		Desc:     "unconstrained BTB vs BTB-2bc misprediction rates",
		Run:      runFig2,
	})
	register(Experiment{
		ID:       "fig5",
		Artifact: "Figure 5",
		Desc:     "history pattern sharing s (per-branch … global), p=8",
		Run:      runFig5,
	})
	register(Experiment{
		ID:       "fig7",
		Artifact: "Figure 7",
		Desc:     "history table sharing h (per-branch … global), p=8, global history",
		Run:      runFig7,
	})
	register(Experiment{
		ID:       "fig9",
		Artifact: "Figure 9",
		Desc:     "path length sweep p=0..18, unconstrained two-level",
		Run:      runFig9,
	})
	register(Experiment{
		ID:       "abl-update",
		Artifact: "§3.2 (update rule claim)",
		Desc:     "update-always vs two-miss (2bc) target update across path lengths",
		Run:      runAblUpdate,
	})
	register(Experiment{
		ID:       "abl-cond",
		Artifact: "§3.3 (variation)",
		Desc:     "including conditional-branch targets in the history",
		Run:      runAblCond,
	})
	register(Experiment{
		ID:       "abl-addr",
		Artifact: "§3.3 (variation)",
		Desc:     "including branch addresses alongside targets in the history",
		Run:      runAblAddr,
	})
}

func runTable1(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Tables 1–2: benchmark characteristics", "benchmark",
		"branches", "instr/ind", "cond/ind", "vcall%", "sites90", "sites95", "sites99", "sites100")
	for _, cfg := range ctx.Suite {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := ctx.Summary(cfg)
		t.AddRow(cfg.Name,
			float64(s.Indirect),
			s.InstrPerIndirect,
			s.CondPerIndirect,
			100*s.VCallFraction,
			float64(s.Coverage[90]),
			float64(s.Coverage[95]),
			float64(s.Coverage[99]),
			float64(s.Coverage[100]),
		)
	}
	return []*stats.Table{t}, nil
}

// exactConfig returns the unconstrained (§3) configuration for a path
// length: full-precision keys, exact tables (p=0 keys are just the branch
// address, which fits the unbounded 64-bit table).
func exactConfig(p int) core.Config {
	cfg := core.Config{PathLength: p, Precision: 0}
	if p == 0 {
		cfg.TableKind = "unbounded"
	} else {
		cfg.TableKind = "exact"
	}
	return cfg
}

func runFig2(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 2: unconstrained BTB misprediction rates", "benchmark", "btb", "btb-2bc")
	rules := []struct {
		col  string
		rule core.UpdateRule
	}{{"btb", core.UpdateAlways}, {"btb-2bc", core.UpdateTwoMiss}}
	for _, r := range rules {
		rates, err := ctx.Sweep(func() (core.Predictor, error) {
			return core.NewBTB(nil, r.rule), nil
		})
		if err != nil {
			return nil, err
		}
		ext := stats.WithGroups(rates)
		for _, k := range stats.SortedKeys(ext) {
			t.Set(k, r.col, ext[k])
		}
	}
	return []*stats.Table{t}, nil
}

// shareSweepValues are the sharing exponents simulated for Figures 5 and 7
// (the paper sweeps 2..22 plus 31 = global).
var shareSweepValues = []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 31}

func runFig5(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 5: history sharing (p=8, per-branch tables)", "group")
	for _, s := range shareSweepValues {
		s := s
		cfg := exactConfig(8)
		cfg.HistShare = s
		rates, err := ctx.Sweep(func() (core.Predictor, error) {
			return core.NewTwoLevel(cfg)
		})
		if err != nil {
			return nil, err
		}
		setGroups(t, fmt.Sprintf("s=%d", s), rates)
	}
	return []*stats.Table{t}, nil
}

func runFig7(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 7: history table sharing (p=8, global history)", "group")
	for _, h := range shareSweepValues {
		h := h
		cfg := exactConfig(8)
		cfg.TableShare = h
		rates, err := ctx.Sweep(func() (core.Predictor, error) {
			return core.NewTwoLevel(cfg)
		})
		if err != nil {
			return nil, err
		}
		setGroups(t, fmt.Sprintf("h=%d", h), rates)
	}
	return []*stats.Table{t}, nil
}

func runFig9(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("Figure 9: misprediction vs path length (global history, per-address tables)", "group")
	for p := 0; p <= 18; p++ {
		p := p
		rates, err := ctx.Sweep(func() (core.Predictor, error) {
			return core.NewTwoLevel(exactConfig(p))
		})
		if err != nil {
			return nil, err
		}
		setGroups(t, fmt.Sprintf("p=%d", p), rates)
	}
	return []*stats.Table{t}, nil
}

func runAblUpdate(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§3.2 ablation: target update rule (AVG)", "rule")
	for p := 0; p <= 8; p++ {
		for _, rule := range []core.UpdateRule{core.UpdateAlways, core.UpdateTwoMiss} {
			p, rule := p, rule
			cfg := exactConfig(p)
			cfg.Update = rule
			rates, err := ctx.Sweep(func() (core.Predictor, error) {
				return core.NewTwoLevel(cfg)
			})
			if err != nil {
				return nil, err
			}
			avg, _ := stats.GroupAverage(rates, stats.GroupAVG)
			t.Set(rule.String(), fmt.Sprintf("p=%d", p), avg)
		}
	}
	return []*stats.Table{t}, nil
}

func runAblCond(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§3.3 ablation: conditional targets in the history (AVG)", "history")
	for _, p := range []int{2, 4, 6, 8, 12} {
		for _, include := range []bool{false, true} {
			p, include := p, include
			cfg := exactConfig(p)
			cfg.IncludeCond = include
			rates, err := ctx.SweepFull(func() (core.Predictor, error) {
				return core.NewTwoLevel(cfg)
			})
			if err != nil {
				return nil, err
			}
			avg, _ := stats.GroupAverage(rates, stats.GroupAVG)
			row := "indirect-only"
			if include {
				row = "with-conditionals"
			}
			t.Set(row, fmt.Sprintf("p=%d", p), avg)
		}
	}
	return []*stats.Table{t}, nil
}

func runAblAddr(ctx *Context) ([]*stats.Table, error) {
	t := stats.NewTable("§3.3 ablation: branch addresses in the history (AVG)", "history")
	for _, p := range []int{2, 4, 6, 8, 12} {
		for _, include := range []bool{false, true} {
			p, include := p, include
			cfg := exactConfig(p)
			cfg.IncludeAddress = include
			rates, err := ctx.Sweep(func() (core.Predictor, error) {
				return core.NewTwoLevel(cfg)
			})
			if err != nil {
				return nil, err
			}
			avg, _ := stats.GroupAverage(rates, stats.GroupAVG)
			row := "targets-only"
			if include {
				row = "targets+addresses"
			}
			t.Set(row, fmt.Sprintf("p=%d", p), avg)
		}
	}
	return []*stats.Table{t}, nil
}
