// Package faultio provides fault injection for robustness tests at two
// levels: io.Reader and io.Writer wrappers for stream codecs (readers that
// fail or truncate after a byte budget, readers that flip bits mid-stream,
// writers that fail or perform short writes — the trace format's
// corruption-recovery tests are the primary consumer), and a network fault
// Proxy that forwards TCP connections while injecting drops, latency,
// partial writes, and abrupt resets (the cluster router's chaos matrix is
// the primary consumer).
package faultio

import (
	"errors"
	"io"
)

// ErrInjected is the default error produced by the failing wrappers; tests
// can match it with errors.Is to distinguish injected faults from real ones.
var ErrInjected = errors.New("faultio: injected fault")

// errReader fails with err once n bytes have been delivered.
type errReader struct {
	r    io.Reader
	n    int64
	err  error
	done bool
}

// ErrAfter returns a reader that delivers the first n bytes of r and then
// fails every subsequent Read with err (ErrInjected if err is nil). Reads
// spanning the boundary are shortened, so the failure lands exactly at
// offset n.
func ErrAfter(r io.Reader, n int64, err error) io.Reader {
	if err == nil {
		err = ErrInjected
	}
	return &errReader{r: r, n: n, err: err}
}

// TruncateAfter returns a reader that behaves like r for the first n bytes
// and then reports a clean io.EOF, simulating a truncated file.
func TruncateAfter(r io.Reader, n int64) io.Reader {
	return &errReader{r: r, n: n, err: io.EOF}
}

func (e *errReader) Read(p []byte) (int, error) {
	if e.done || e.n <= 0 {
		e.done = true
		return 0, e.err
	}
	if int64(len(p)) > e.n {
		p = p[:e.n]
	}
	n, err := e.r.Read(p)
	e.n -= int64(n)
	if err != nil {
		e.done = true
		return n, err
	}
	return n, nil
}

// flipReader XORs mask into the byte at a fixed stream offset.
type flipReader struct {
	r      io.Reader
	off    int64
	mask   byte
	passed int64
}

// FlipBit returns a reader that passes r through unchanged except for the
// byte at stream offset off, which is XORed with mask (a single-bit mask
// flips one bit; 0xff inverts the byte). If the stream is shorter than off
// the reader is equivalent to r.
func FlipBit(r io.Reader, off int64, mask byte) io.Reader {
	return &flipReader{r: r, off: off, mask: mask}
}

func (f *flipReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 {
		if i := f.off - f.passed; i >= 0 && i < int64(n) {
			p[i] ^= f.mask
		}
		f.passed += int64(n)
	}
	return n, err
}

// errWriter accepts n bytes then fails.
type errWriter struct {
	w    io.Writer
	n    int64
	err  error
	done bool
}

// ErrAfterWriter returns a writer that accepts the first n bytes and fails
// every subsequent Write with err (ErrInjected if err is nil). A Write
// spanning the boundary is a short write: the leading bytes are written and
// the error is returned with the partial count, exercising callers' short-
// write handling.
func ErrAfterWriter(w io.Writer, n int64, err error) io.Writer {
	if err == nil {
		err = ErrInjected
	}
	return &errWriter{w: w, n: n, err: err}
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.done || e.n <= 0 {
		e.done = true
		return 0, e.err
	}
	if int64(len(p)) > e.n {
		n, err := e.w.Write(p[:e.n])
		e.n -= int64(n)
		e.done = true
		if err != nil {
			return n, err
		}
		return n, e.err
	}
	n, err := e.w.Write(p)
	e.n -= int64(n)
	if err != nil {
		e.done = true
	}
	return n, err
}

// shortWriter never accepts more than chunk bytes per call without
// reporting an error, exposing callers that ignore short-write counts.
type shortWriter struct {
	w     io.Writer
	chunk int
}

// ShortWriter returns a writer that silently truncates every Write larger
// than chunk bytes to chunk bytes, returning the short count with a nil
// error — the pathological behaviour io.Writer implementations must never
// have, which bufio and friends are expected to surface as io.ErrShortWrite.
func ShortWriter(w io.Writer, chunk int) io.Writer {
	if chunk < 1 {
		chunk = 1
	}
	return &shortWriter{w: w, chunk: chunk}
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.w.Write(p)
}
