package faultio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestErrAfter(t *testing.T) {
	src := strings.NewReader("hello world")
	r := ErrAfter(src, 5, nil)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q before fault, want %q", got, "hello")
	}
	// The failure is sticky.
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read err = %v", err)
	}
}

func TestErrAfterCustomError(t *testing.T) {
	boom := errors.New("boom")
	r := ErrAfter(strings.NewReader("abc"), 0, boom)
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestTruncateAfter(t *testing.T) {
	r := TruncateAfter(strings.NewReader("hello world"), 5)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestFlipBit(t *testing.T) {
	for _, readSize := range []int{1, 3, 64} {
		src := bytes.Repeat([]byte{0x00}, 10)
		r := FlipBit(bytes.NewReader(src), 7, 0x10)
		var got []byte
		buf := make([]byte, readSize)
		for {
			n, err := r.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				break
			}
		}
		want := bytes.Repeat([]byte{0x00}, 10)
		want[7] = 0x10
		if !bytes.Equal(got, want) {
			t.Fatalf("readSize %d: got % x, want % x", readSize, got, want)
		}
	}
}

func TestFlipBitPastEnd(t *testing.T) {
	r := FlipBit(strings.NewReader("abc"), 100, 0xff)
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "abc" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestErrAfterWriter(t *testing.T) {
	var sink bytes.Buffer
	w := ErrAfterWriter(&sink, 5, nil)
	n, err := w.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = %d, %v; want 5, ErrInjected", n, err)
	}
	if sink.String() != "hello" {
		t.Fatalf("sink %q", sink.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-fault write err = %v", err)
	}
}

func TestShortWriter(t *testing.T) {
	var sink bytes.Buffer
	w := ShortWriter(&sink, 4)
	n, err := w.Write([]byte("hello world"))
	if err != nil || n != 4 {
		t.Fatalf("Write = %d, %v; want 4, nil", n, err)
	}
	if sink.String() != "hell" {
		t.Fatalf("sink %q", sink.String())
	}
}
