package faultio

import (
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ProxyConfig selects the faults a Proxy injects into the links it carries.
// The zero value is a transparent TCP proxy.
type ProxyConfig struct {
	// DropAfterBytes severs a link once that many payload bytes have been
	// forwarded across it (both directions combined). The byte at the
	// boundary is forwarded, then the link dies — so a drop landing inside
	// a wire frame produces exactly the mid-frame truncation a crashed peer
	// leaves behind. Zero never drops.
	DropAfterBytes int64
	// RST severs links abruptly (SO_LINGER 0, so the peer sees a connection
	// reset) instead of a clean FIN. Applies to DropAfterBytes cuts and to
	// Sever/Close.
	RST bool
	// Latency delays every forwarded chunk; LatencyJitter adds a uniform
	// extra in [0, LatencyJitter). Zero forwards immediately.
	Latency       time.Duration
	LatencyJitter time.Duration
	// ChunkBytes caps the bytes moved per write, splitting large frames
	// into many small partial writes. Zero forwards whole reads.
	ChunkBytes int
	// Seed makes the latency jitter reproducible; zero derives one from a
	// shared sequence so two proxies in one test still differ.
	Seed int64
}

// Proxy is a fault-injecting TCP proxy for chaos tests: it listens on a
// loopback port, forwards every accepted connection to Target, and injects
// the configured faults into the byte streams. It is safe for use by any
// package's tests (the cluster chaos matrix is the primary consumer):
// placing one between a client and a server — or between the ibprouter and a
// backend — simulates slow networks, flaky links, and peers that die
// mid-frame, without touching either endpoint.
type Proxy struct {
	Target string
	cfg    ProxyConfig

	ln     net.Listener
	mu     sync.Mutex
	links  map[*proxyLink]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

var proxySeq atomic.Int64

// NewProxy starts a proxy for target on an ephemeral loopback port.
func NewProxy(target string, cfg ProxyConfig) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x1bf00d + proxySeq.Add(1)
	}
	p := &Proxy{Target: target, cfg: cfg, ln: ln, links: make(map[*proxyLink]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Links reports the number of live proxied connections.
func (p *Proxy) Links() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links)
}

// Sever cuts every live link (with RST when configured) while continuing to
// accept new connections — the "backend process died and came right back"
// shape.
func (p *Proxy) Sever() {
	p.mu.Lock()
	links := make([]*proxyLink, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		l.sever()
	}
}

// Close stops accepting, severs every live link, and waits for the pumps to
// exit. Safe to call more than once.
func (p *Proxy) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := p.ln.Close()
	p.Sever()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.Target)
		if err != nil {
			conn.Close()
			continue
		}
		l := &proxyLink{p: p, down: conn, up: up}
		l.budget.Store(p.cfg.DropAfterBytes)
		p.mu.Lock()
		if p.closed.Load() {
			p.mu.Unlock()
			l.sever()
			continue
		}
		p.links[l] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go l.pump(l.down, l.up, p.cfg.Seed*2+1)
		go l.pump(l.up, l.down, p.cfg.Seed*2+2)
	}
}

// proxyLink is one proxied connection pair. Both directions share the drop
// budget, so the cut lands at a single well-defined total byte count.
type proxyLink struct {
	p        *Proxy
	down, up net.Conn // client side, target side
	budget   atomic.Int64
	severed  atomic.Bool
	pumps    atomic.Int32
}

// sever kills both sides of the link exactly once.
func (l *proxyLink) sever() {
	if !l.severed.CompareAndSwap(false, true) {
		return
	}
	if l.p.cfg.RST {
		if tc, ok := l.down.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		if tc, ok := l.up.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
	l.down.Close()
	l.up.Close()
	l.p.mu.Lock()
	delete(l.p.links, l)
	l.p.mu.Unlock()
}

// pump copies src to dst through the fault pipeline until the link dies.
func (l *proxyLink) pump(src, dst net.Conn, seed int64) {
	defer l.p.wg.Done()
	// Once both directions are finished (clean FINs included) the link is
	// gone: close what remains and drop it from the live set.
	defer func() {
		if l.pumps.Add(1) == 2 {
			l.sever()
		}
	}()
	cfg := l.p.cfg
	rng := rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x9e3779b97f4a7c15))
	readBuf := 32 << 10
	if cfg.ChunkBytes > 0 && cfg.ChunkBytes < readBuf {
		readBuf = cfg.ChunkBytes
	}
	buf := make([]byte, readBuf)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if cfg.Latency > 0 || cfg.LatencyJitter > 0 {
				d := cfg.Latency
				if cfg.LatencyJitter > 0 {
					d += time.Duration(rng.Int64N(int64(cfg.LatencyJitter)))
				}
				time.Sleep(d)
			}
			out := buf[:n]
			if cfg.DropAfterBytes > 0 {
				left := l.budget.Add(-int64(n))
				if left <= 0 {
					// Forward exactly up to the boundary, then cut.
					keep := int64(n) + left
					if keep > 0 {
						dst.Write(out[:keep])
					}
					l.sever()
					return
				}
			}
			if _, err := dst.Write(out); err != nil {
				l.sever()
				return
			}
		}
		if err != nil {
			if err == io.EOF && !l.severed.Load() {
				// Clean half-close: propagate the FIN, let the other
				// direction finish.
				if tc, ok := dst.(*net.TCPConn); ok {
					tc.CloseWrite()
					return
				}
			}
			l.sever()
			return
		}
	}
}
