package faultio_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/faultio"
)

// echoServer accepts connections and echoes bytes back until EOF.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(conn, conn)
				conn.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, cfg faultio.ProxyConfig) net.Conn {
	t.Helper()
	p, err := faultio.NewProxy(echoServer(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestProxyTransparent: the zero config forwards everything intact.
func TestProxyTransparent(t *testing.T) {
	conn := dialProxy(t, faultio.ProxyConfig{})
	msg := bytes.Repeat([]byte("indirect-branch"), 1000)
	go func() {
		conn.Write(msg)
		conn.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %d bytes, want %d identical", len(got), len(msg))
	}
}

// TestProxyChunkedStaysIntact: partial writes reorder nothing and lose
// nothing — the stream is merely delivered in small pieces.
func TestProxyChunkedStaysIntact(t *testing.T) {
	conn := dialProxy(t, faultio.ProxyConfig{ChunkBytes: 7})
	msg := bytes.Repeat([]byte{0xab, 0xcd, 0xef}, 4096)
	go func() {
		conn.Write(msg)
		conn.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("chunked echo corrupted: %d bytes, want %d identical", len(got), len(msg))
	}
}

// TestProxyDropAfterBytes: the link dies once the forwarded byte budget is
// spent; everything before the boundary still arrives.
func TestProxyDropAfterBytes(t *testing.T) {
	const budget = 1000
	conn := dialProxy(t, faultio.ProxyConfig{DropAfterBytes: budget})
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(i)
	}
	conn.Write(msg)
	got, err := io.ReadAll(conn)
	if err == nil && len(got) == len(msg) {
		t.Fatal("link survived past its drop budget")
	}
	// The budget is shared across both directions, so the echo gets at most
	// the budget; what does arrive must be the true prefix.
	if len(got) > budget {
		t.Fatalf("received %d bytes, budget %d", len(got), budget)
	}
	if !bytes.Equal(got, msg[:len(got)]) {
		t.Fatal("bytes before the drop boundary were corrupted")
	}
}

// TestProxyRST: an RST-configured cut surfaces as a connection reset, not a
// clean EOF.
func TestProxyRST(t *testing.T) {
	conn := dialProxy(t, faultio.ProxyConfig{DropAfterBytes: 64, RST: true})
	conn.Write(make([]byte, 4096))
	_, err := io.ReadAll(conn)
	if err == nil {
		t.Log("kernel delivered FIN before RST; nothing to assert")
		return
	}
	var ne *net.OpError
	if !errors.As(err, &ne) {
		t.Fatalf("want net.OpError from RST, got %v", err)
	}
}

// TestProxyLatency: injected latency shows up in round-trip time.
func TestProxyLatency(t *testing.T) {
	const lat = 50 * time.Millisecond
	conn := dialProxy(t, faultio.ProxyConfig{Latency: lat})
	start := time.Now()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	// Two traversals (request + echo), each delayed once.
	if rtt := time.Since(start); rtt < 2*lat {
		t.Fatalf("rtt %v with %v per-chunk latency; fault not applied", rtt, lat)
	}
}

// TestProxySever cuts live links on demand while the listener stays up.
func TestProxySever(t *testing.T) {
	p, err := faultio.NewProxy(echoServer(t), faultio.ProxyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	p.Sever()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded after Sever")
	}
	// New connections still go through.
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn2, buf); err != nil {
		t.Fatalf("post-sever connection failed: %v", err)
	}
}
