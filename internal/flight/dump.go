// The flight recorder's externally visible face: the JSON dump format served
// at /debug/flightrecorder and consumed by `ibpreport -flight` for timeline
// fusion. The format is deliberately self-contained — service name, stats,
// and named hop stamps per span — so dumps from different processes can be
// fused with no out-of-band context.
package flight

import (
	"encoding/json"
	"net/http"
)

// Dump is the serialized flight recorder.
type Dump struct {
	Service    string     `json:"service"`
	Capacity   int        `json:"capacity"`
	Recorded   uint64     `json:"recorded"`
	SlowFrames uint64     `json:"slowFrames"`
	Spans      []SpanJSON `json:"spans"`
}

// SpanJSON is one span with hop stamps keyed by hop name (unix ns). Hops the
// frame never reached are omitted.
type SpanJSON struct {
	TraceID string           `json:"traceId"`
	Session uint64           `json:"session"`
	Seq     uint64           `json:"seq"`
	Records int              `json:"records,omitempty"`
	Hops    map[string]int64 `json:"hops"`
}

// Dump snapshots the ring (zero value with a nil Spans slice on nil).
func (r *Recorder) Dump() Dump {
	st := r.Stats()
	spans := r.Spans()
	d := Dump{
		Service:    st.Service,
		Capacity:   st.Capacity,
		Recorded:   st.Recorded,
		SlowFrames: st.SlowFrames,
		Spans:      make([]SpanJSON, 0, len(spans)),
	}
	for i := range spans {
		d.Spans = append(d.Spans, spans[i].JSON())
	}
	return d
}

// JSON converts one record to its dump form.
func (r *SpanRecord) JSON() SpanJSON {
	s := SpanJSON{
		TraceID: r.TraceID,
		Session: r.Session,
		Seq:     r.Seq,
		Records: r.Records,
		Hops:    make(map[string]int64, NumHops),
	}
	for h := Hop(0); h < NumHops; h++ {
		if ns := r.Hops[h]; ns != 0 {
			s.Hops[h.String()] = ns
		}
	}
	return s
}

// Handler serves the dump as indented JSON — mounted at
// /debug/flightrecorder by ibpserved and ibprouter. Safe on the nil
// recorder (serves an empty dump).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := w.Header()
		h.Set("Content-Type", "application/json; charset=utf-8")
		h.Set("X-Content-Type-Options", "nosniff")
		h.Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Dump())
	})
}
