// Package flight is the frame-level distributed tracing layer: a span that
// rides alongside one records frame from the client's send through the
// router's journal and relay, the backend's shard queue and predictor, and
// back out the ack write — plus a bounded ring "flight recorder" that keeps
// the last N completed spans for the /debug/flightrecorder endpoint and
// ibpreport's cross-process timeline fusion.
//
// Design constraints, inherited from the telemetry layer (PRs 3-4):
//
//   - Nil is disabled. A nil *Recorder, nil *Tracer, and nil *Span are all
//     valid no-op values; every method is nil-safe, and the disabled path
//     allocates nothing (asserted by TestSpanRecordZeroAllocs).
//   - No locks on the stamping path. A span is owned by exactly one
//     goroutine at a time and handed off with the frame it describes
//     (reader → shard queue → worker → writer in serve; reader → journal →
//     backend pump → writer in cluster), so hop stamps are plain stores —
//     the channel hand-offs are the happens-before edges. The only
//     synchronized step is the final publish into the ring.
//   - Wall-clock stamps. Hops are recorded as unix nanoseconds so spans
//     from different processes (router and backend) fuse onto one timeline;
//     NTP-level skew between hosts is visible but irrelevant on loopback,
//     and ordering within a process is exact.
//
// The trace ID itself travels in the Hello/HelloAck JSON control frames
// (which tolerate unknown fields by construction), so the IBPT v2 byte
// format of records and ack frames — and every bit-identical golden test —
// is untouched.
package flight

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Hop names one timestamped point on a frame's path. The enum is ordered
// client → router → backend → back, which is also the expected stamp order
// of a frame that crosses every tier.
type Hop uint8

const (
	// HopClientSend — ibpload wrote the records frame to its socket.
	HopClientSend Hop = iota
	// HopRouterRecv — ibprouter read the frame and journaled it.
	HopRouterRecv
	// HopRouterRelay — ibprouter first relayed the frame to a backend
	// (replays after failover keep the original stamp).
	HopRouterRelay
	// HopRouterAckRecv — ibprouter received the backend's ack.
	HopRouterAckRecv
	// HopRouterAckRelay — ibprouter flushed the ack to the client.
	HopRouterAckRelay
	// HopServerRecv — ibpserved read the frame off the wire.
	HopServerRecv
	// HopServerEnqueue — the frame entered its shard queue.
	HopServerEnqueue
	// HopServerDequeue — a shard worker picked the frame up.
	HopServerDequeue
	// HopServerPredict — the predictor finished the frame's records.
	HopServerPredict
	// HopServerAckWrite — the ack left in a flushed write batch.
	HopServerAckWrite
	// HopClientAck — ibpload received the ack.
	HopClientAck

	// NumHops sizes the per-span stamp array.
	NumHops
)

var hopNames = [NumHops]string{
	"client-send",
	"router-recv",
	"router-relay",
	"router-ack-recv",
	"router-ack-relay",
	"server-recv",
	"server-enqueue",
	"server-dequeue",
	"server-predict",
	"server-ack-write",
	"client-ack",
}

// String returns the hop's stable wire name (used in JSON dumps, slow-frame
// logs, and Perfetto event names).
func (h Hop) String() string {
	if h >= NumHops {
		return "unknown"
	}
	return hopNames[h]
}

// SpanRecord is one completed frame span: identity plus one unix-ns stamp
// per hop (0 = the frame never reached that hop in this process).
type SpanRecord struct {
	TraceID string
	Session uint64
	Seq     uint64
	Records int
	Hops    [NumHops]int64
}

// first returns the earliest non-zero stamp, 0 if none.
func (r *SpanRecord) first() int64 {
	for _, ns := range r.Hops {
		if ns != 0 {
			return ns
		}
	}
	return 0
}

// last returns the latest non-zero stamp, 0 if none.
func (r *SpanRecord) last() int64 {
	var max int64
	for _, ns := range r.Hops {
		if ns > max {
			max = ns
		}
	}
	return max
}

// Span is an in-progress frame span. It is NOT safe for concurrent use by
// design: ownership follows the frame through the pipeline, and each hop is
// stamped by the one goroutine holding the frame at that moment.
type Span struct {
	rec SpanRecord
	r   *Recorder
}

// Stamp records hop h at the current wall clock. Nil-safe.
func (s *Span) Stamp(h Hop) {
	if s != nil {
		s.rec.Hops[h] = time.Now().UnixNano()
	}
}

// StampAt records hop h at an explicit unix-ns time (used when one clock
// read serves a whole flushed batch). Nil-safe.
func (s *Span) StampAt(h Hop, unixNS int64) {
	if s != nil {
		s.rec.Hops[h] = unixNS
	}
}

// HopNS returns hop h's stamp, 0 if unstamped or on the nil span.
func (s *Span) HopNS(h Hop) int64 {
	if s == nil {
		return 0
	}
	return s.rec.Hops[h]
}

// SetRecords annotates the span with the frame's record count. Nil-safe.
func (s *Span) SetRecords(n int) {
	if s != nil {
		s.rec.Records = n
	}
}

// Finish publishes the span into its recorder's ring and runs the slow-frame
// check. The span must not be touched afterwards. Nil-safe.
func (s *Span) Finish() {
	if s != nil {
		s.r.publish(&s.rec)
	}
}

// Tracer mints spans for one session. The nil Tracer returns nil spans, so a
// disabled recorder costs one nil check per frame and zero allocations.
type Tracer struct {
	r       *Recorder
	traceID string
	session uint64
}

// Start begins a span for frame seq. Allocates one Span (the per-frame cost
// of enabled tracing); returns nil on the nil Tracer.
func (t *Tracer) Start(seq uint64) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		rec: SpanRecord{TraceID: t.traceID, Session: t.session, Seq: seq},
		r:   t.r,
	}
}

// TraceID returns the tracer's trace ID ("" on nil).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Options configures a Recorder.
type Options struct {
	// Service names this process in dumps and fused timelines
	// ("ibpserved", "ibprouter", "ibpload").
	Service string
	// Capacity bounds the ring; <= 0 means DefaultCapacity.
	Capacity int
	// SLO, when > 0, logs frames whose first→last hop walltime exceeds it.
	SLO time.Duration
	// Log receives slow-frame reports; nil means slog.Default.
	Log *slog.Logger
	// SlowLogEvery rate-limits slow-frame logs (min gap between reports);
	// <= 0 means DefaultSlowLogEvery.
	SlowLogEvery time.Duration
}

// DefaultCapacity is the ring size when Options.Capacity is unset: enough
// for every frame of several large sessions without the dump getting silly.
const DefaultCapacity = 2048

// DefaultSlowLogEvery is the default minimum gap between slow-frame log
// lines — one report a second keeps a pathological run readable.
const DefaultSlowLogEvery = time.Second

// Recorder is the bounded flight-recorder ring shared by every session of
// one process. The nil Recorder is the disabled recorder: Tracer returns
// nil and all other methods are no-ops.
type Recorder struct {
	service  string
	slo      int64 // ns; 0 disables slow-frame logging
	logEvery int64 // ns between slow-frame log lines
	log      *slog.Logger
	enabled  atomic.Bool
	lastSlow atomic.Int64 // unix ns of the last slow-frame log line
	slowSeen atomic.Uint64
	total    atomic.Uint64
	seqID    atomic.Uint64 // trace-ID generator
	mu       sync.Mutex
	ring     []SpanRecord
	next     int
	wrapped  bool
}

// NewRecorder builds an enabled recorder.
func NewRecorder(o Options) *Recorder {
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	if o.Log == nil {
		o.Log = slog.Default()
	}
	if o.SlowLogEvery <= 0 {
		o.SlowLogEvery = DefaultSlowLogEvery
	}
	r := &Recorder{
		service:  o.Service,
		slo:      o.SLO.Nanoseconds(),
		logEvery: o.SlowLogEvery.Nanoseconds(),
		log:      o.Log,
		ring:     make([]SpanRecord, o.Capacity),
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled flips recording. While disabled, Tracer returns nil, so spans
// in flight when the flag flips still publish (the ring keeps accepting
// finished spans; only new frames stop being traced).
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports whether new frames are being traced (false on nil).
func (r *Recorder) Enabled() bool {
	return r != nil && r.enabled.Load()
}

// Tracer returns a span factory for one session, or nil when the recorder
// is nil or disabled (the zero-cost path).
func (r *Recorder) Tracer(traceID string, session uint64) *Tracer {
	if r == nil || !r.enabled.Load() {
		return nil
	}
	return &Tracer{r: r, traceID: traceID, session: session}
}

// NextTraceID mints a process-unique trace ID for sessions that arrived
// without one ("" on nil). The prefix is the service name, so IDs minted by
// the router and a backend never collide.
func (r *Recorder) NextTraceID() string {
	if r == nil {
		return ""
	}
	n := r.seqID.Add(1)
	// Cheap manual formatting; this runs once per session, not per frame.
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return r.service + "-" + string(buf[i:])
}

// publish appends a finished span to the ring and applies the slow-frame
// SLO check. Called via Span.Finish.
func (r *Recorder) publish(rec *SpanRecord) {
	if r == nil {
		return
	}
	r.total.Add(1)
	r.mu.Lock()
	r.ring[r.next] = *rec
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
	if r.slo > 0 {
		r.checkSlow(rec)
	}
}

// checkSlow logs a hop breakdown for frames over the SLO, at most one line
// per logEvery window (a CAS on the last-log stamp keeps racing frames from
// stampeding the logger).
func (r *Recorder) checkSlow(rec *SpanRecord) {
	first, last := rec.first(), rec.last()
	if first == 0 || last-first < r.slo {
		return
	}
	r.slowSeen.Add(1)
	now := time.Now().UnixNano()
	prev := r.lastSlow.Load()
	if now-prev < r.logEvery || !r.lastSlow.CompareAndSwap(prev, now) {
		return
	}
	attrs := make([]any, 0, 2*NumHops+10)
	attrs = append(attrs,
		"traceId", rec.TraceID,
		"session", rec.Session,
		"seq", rec.Seq,
		"records", rec.Records,
		"totalMs", float64(last-first)/1e6,
	)
	prevNS := int64(0)
	for h := Hop(0); h < NumHops; h++ {
		ns := rec.Hops[h]
		if ns == 0 {
			continue
		}
		if prevNS != 0 {
			attrs = append(attrs, h.String()+"Ms", float64(ns-prevNS)/1e6)
		}
		prevNS = ns
	}
	r.log.Warn("slow frame over SLO", attrs...)
}

// Stats summarizes the recorder for run summaries.
type Stats struct {
	Service    string `json:"service"`
	Capacity   int    `json:"capacity"`
	Recorded   uint64 `json:"recorded"`
	SlowFrames uint64 `json:"slowFrames,omitempty"`
}

// Stats returns lifetime counts (zero value on nil).
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	return Stats{
		Service:    r.service,
		Capacity:   len(r.ring),
		Recorded:   r.total.Load(),
		SlowFrames: r.slowSeen.Load(),
	}
}

// Spans returns the ring's contents oldest-first (nil on the nil recorder).
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]SpanRecord, r.next)
		copy(out, r.ring[:r.next])
		return out
	}
	out := make([]SpanRecord, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}
