package flight

import (
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHopNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for h := Hop(0); h < NumHops; h++ {
		n := h.String()
		if n == "" || n == "unknown" {
			t.Errorf("hop %d has no name", h)
		}
		if seen[n] {
			t.Errorf("duplicate hop name %q", n)
		}
		seen[n] = true
	}
	if Hop(250).String() != "unknown" {
		t.Error("out-of-range hop must stringify as unknown")
	}
}

func TestSpanLifecycle(t *testing.T) {
	r := NewRecorder(Options{Service: "test", Capacity: 8})
	tr := r.Tracer("t1", 42)
	if tr == nil {
		t.Fatal("enabled recorder returned nil tracer")
	}
	sp := tr.Start(7)
	sp.Stamp(HopServerRecv)
	sp.StampAt(HopServerPredict, sp.HopNS(HopServerRecv)+1000)
	sp.SetRecords(2048)
	sp.Finish()

	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("ring holds %d spans, want 1", len(spans))
	}
	got := spans[0]
	if got.TraceID != "t1" || got.Session != 42 || got.Seq != 7 || got.Records != 2048 {
		t.Errorf("span identity = %+v", got)
	}
	if got.Hops[HopServerRecv] == 0 || got.Hops[HopServerPredict] != got.Hops[HopServerRecv]+1000 {
		t.Errorf("hop stamps = %v", got.Hops)
	}
	if got.Hops[HopRouterRecv] != 0 {
		t.Error("unstamped hop must stay 0")
	}
	if st := r.Stats(); st.Recorded != 1 || st.Service != "test" {
		t.Errorf("stats = %+v", st)
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r := NewRecorder(Options{Service: "test", Capacity: 4})
	tr := r.Tracer("t", 1)
	for seq := uint64(1); seq <= 10; seq++ {
		sp := tr.Start(seq)
		sp.Stamp(HopServerRecv)
		sp.Finish()
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(spans))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if spans[i].Seq != want {
			t.Errorf("spans[%d].Seq = %d, want %d (oldest-first)", i, spans[i].Seq, want)
		}
	}
	if r.Stats().Recorded != 10 {
		t.Errorf("Recorded = %d, want 10", r.Stats().Recorded)
	}
}

// TestSpanRecordZeroAllocs is the disabled-path contract (ISSUE 8 satellite):
// with tracing off — nil recorder, nil tracer, nil span — the whole per-frame
// span ceremony costs zero allocations.
func TestSpanRecordZeroAllocs(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		tr := nilRec.Tracer("id", 1)
		sp := tr.Start(9)
		sp.Stamp(HopServerRecv)
		sp.StampAt(HopServerEnqueue, 123)
		sp.SetRecords(100)
		_ = sp.HopNS(HopServerRecv)
		sp.Finish()
	}); n != 0 {
		t.Errorf("nil-recorder span path allocates %v/op", n)
	}
	// A live but disabled recorder must be just as free.
	r := NewRecorder(Options{Service: "test", Capacity: 4})
	r.SetEnabled(false)
	if n := testing.AllocsPerRun(1000, func() {
		tr := r.Tracer("id", 1)
		sp := tr.Start(9)
		sp.Stamp(HopServerRecv)
		sp.Finish()
	}); n != 0 {
		t.Errorf("disabled-recorder span path allocates %v/op", n)
	}
}

// TestRecorderToggleRace hammers concurrent span recording, dumps, and
// Enable/Disable toggles; run under -race by the CI tracing job.
func TestRecorderToggleRace(t *testing.T) {
	r := NewRecorder(Options{Service: "race", Capacity: 64})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(session uint64) {
			defer wg.Done()
			seq := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq++
				tr := r.Tracer("race", session)
				sp := tr.Start(seq)
				sp.Stamp(HopServerRecv)
				sp.Stamp(HopServerPredict)
				sp.Finish()
			}
		}(uint64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			r.SetEnabled(i%2 == 0)
			_ = r.Spans()
			_ = r.Dump()
		}
		close(stop)
	}()
	wg.Wait()
}

func TestSlowFrameLogging(t *testing.T) {
	var buf strings.Builder
	log := slog.New(slog.NewTextHandler(&buf, nil))
	r := NewRecorder(Options{
		Service: "test", Capacity: 8,
		SLO: time.Millisecond, Log: log, SlowLogEvery: time.Nanosecond,
	})
	tr := r.Tracer("slow", 1)

	fast := tr.Start(1)
	now := time.Now().UnixNano()
	fast.StampAt(HopServerRecv, now)
	fast.StampAt(HopServerAckWrite, now+int64(100*time.Microsecond))
	fast.Finish()
	if r.Stats().SlowFrames != 0 {
		t.Fatal("fast frame counted as slow")
	}
	if buf.Len() != 0 {
		t.Fatalf("fast frame logged: %s", buf.String())
	}

	slow := tr.Start(2)
	slow.StampAt(HopServerRecv, now)
	slow.StampAt(HopServerDequeue, now+int64(4*time.Millisecond))
	slow.StampAt(HopServerAckWrite, now+int64(5*time.Millisecond))
	slow.Finish()
	if r.Stats().SlowFrames != 1 {
		t.Fatalf("SlowFrames = %d, want 1", r.Stats().SlowFrames)
	}
	out := buf.String()
	for _, want := range []string{"slow frame over SLO", "traceId=slow", "seq=2", "server-dequeue"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-frame log missing %q: %s", want, out)
		}
	}
}

func TestSlowLogRateLimit(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	log := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), nil))
	r := NewRecorder(Options{
		Service: "test", Capacity: 8,
		SLO: time.Millisecond, Log: log, SlowLogEvery: time.Hour,
	})
	tr := r.Tracer("s", 1)
	now := time.Now().UnixNano()
	for seq := uint64(1); seq <= 20; seq++ {
		sp := tr.Start(seq)
		sp.StampAt(HopServerRecv, now)
		sp.StampAt(HopServerAckWrite, now+int64(10*time.Millisecond))
		sp.Finish()
	}
	if got := r.Stats().SlowFrames; got != 20 {
		t.Errorf("SlowFrames = %d, want 20 (counting is not rate-limited)", got)
	}
	mu.Lock()
	lines := strings.Count(buf.String(), "slow frame over SLO")
	mu.Unlock()
	if lines != 1 {
		t.Errorf("%d slow-frame log lines, want exactly 1 within the rate window", lines)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestDumpHandlerJSON(t *testing.T) {
	r := NewRecorder(Options{Service: "ibpserved", Capacity: 8})
	tr := r.Tracer("t9", 3)
	sp := tr.Start(1)
	sp.Stamp(HopServerRecv)
	sp.Stamp(HopServerPredict)
	sp.SetRecords(512)
	sp.Finish()

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var d Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if d.Service != "ibpserved" || d.Recorded != 1 || len(d.Spans) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	s := d.Spans[0]
	if s.TraceID != "t9" || s.Session != 3 || s.Seq != 1 || s.Records != 512 {
		t.Errorf("span = %+v", s)
	}
	if _, ok := s.Hops["server-recv"]; !ok {
		t.Errorf("hops missing server-recv: %v", s.Hops)
	}
	if _, ok := s.Hops["router-recv"]; ok {
		t.Errorf("unstamped hop serialized: %v", s.Hops)
	}

	// The nil recorder serves an empty dump rather than panicking.
	var nilRec *Recorder
	rec2 := httptest.NewRecorder()
	nilRec.Handler().ServeHTTP(rec2, httptest.NewRequest("GET", "/", nil))
	if err := json.Unmarshal(rec2.Body.Bytes(), &d); err != nil {
		t.Fatalf("nil dump not JSON: %v", err)
	}
}

func TestNextTraceID(t *testing.T) {
	r := NewRecorder(Options{Service: "ibprouter"})
	a, b := r.NextTraceID(), r.NextTraceID()
	if a == b || !strings.HasPrefix(a, "ibprouter-") {
		t.Errorf("trace IDs %q, %q", a, b)
	}
	var nilRec *Recorder
	if nilRec.NextTraceID() != "" {
		t.Error("nil recorder must mint empty trace IDs")
	}
}
