// Package history implements the first level of the two-level indirect
// branch predictor: history registers holding the targets of recently
// executed indirect branches (the branch "path"), per-set history files
// parameterized by the paper's sharing parameter s, and the construction of
// lookup keys from (compressed) history patterns and branch addresses.
package history

import (
	"encoding/binary"
	"fmt"

	"github.com/oocsb/ibp/internal/bits"
)

// Register is a fixed-capacity ring buffer of the most recent branch
// targets. A fresh register reads as all-zero targets, matching a hardware
// history register that powers up cleared.
type Register struct {
	buf  []uint32
	head int // index of the most recent target

	// Incremental pattern state (see Track): when tracking is enabled the
	// compressed pattern of §4 is maintained on every Push in O(b) bit
	// deposits instead of being reassembled from all p targets on every
	// probe — the dominant cost of the simulator's hot loop.
	track    bool
	scheme   bits.Scheme
	b, start int
	patMask  uint32 // low p*b bits (Concat shift-out mask)
	colClear uint32 // column holding the exiting target (interleaved schemes)
	pat      uint32
}

// NewRegister returns a register recording the last p targets. p = 0 yields
// a degenerate register whose pattern is always empty (the BTB case).
func NewRegister(p int) *Register {
	if p < 0 {
		panic(fmt.Sprintf("history: negative path length %d", p))
	}
	return &Register{buf: make([]uint32, p)}
}

// Depth returns the register's path length p.
func (r *Register) Depth() int { return len(r.buf) }

// Push records target as the most recent branch target.
func (r *Register) Push(target uint32) {
	if len(r.buf) == 0 {
		return
	}
	r.head--
	if r.head < 0 {
		r.head = len(r.buf) - 1
	}
	r.buf[r.head] = target
	if r.track {
		r.pushPattern(target)
	}
}

// Track enables incremental maintenance of the compressed pattern for spec,
// so Spec.Pattern reads it in O(1). Tracking silently stays off when the
// spec does not permit it (mismatched depth, zero pattern width, or the
// PingPong scheme, whose columns do not shift uniformly on a push); Pattern
// then falls back to reassembly. Call Track only on a freshly created or
// reset register: the pattern is maintained from this point on.
func (r *Register) Track(s Spec) {
	p := len(r.buf)
	if p == 0 || s.PathLength != p || s.Bits <= 0 || p*s.Bits > 32 || s.Scheme == bits.PingPong {
		return
	}
	r.track = true
	r.scheme = s.Scheme
	r.b, r.start = s.Bits, s.StartBit
	r.patMask = uint32(uint64(1)<<uint(p*s.Bits) - 1)
	r.colClear = 0
	for i := 0; i < s.Bits; i++ {
		switch s.Scheme {
		case bits.Straight:
			// Pushing shifts every column up by one; the oldest
			// target leaves from column p-1.
			r.colClear |= 1 << uint(i*p+p-1)
		case bits.Reverse:
			// Columns shift down; the oldest target leaves from
			// column 0.
			r.colClear |= 1 << uint(i*p)
		}
	}
	r.pat = 0
	for i := p - 1; i >= 0; i-- {
		r.pushPattern(r.Recent(i))
	}
}

// Tracks reports whether the register maintains the pattern for spec.
func (r *Register) Tracks(s Spec) bool {
	return r.track && r.scheme == s.Scheme && r.b == s.Bits &&
		r.start == s.StartBit && len(r.buf) == s.PathLength
}

// TrackedPattern returns the incrementally maintained pattern; only valid
// when Tracks(spec) holds.
func (r *Register) TrackedPattern() uint32 { return r.pat }

// pushPattern folds the new target into the maintained pattern. A push moves
// every recorded target one position deeper in the history, which moves each
// target's column of pattern bits by exactly one (dropping the oldest), so
// the pattern updates with one masked shift plus b single-bit deposits for
// the incoming target — equivalent to reassembling via bits.Assemble but
// p times cheaper.
func (r *Register) pushPattern(target uint32) {
	p := len(r.buf)
	t := bits.Field(target, r.start, r.b)
	switch r.scheme {
	case bits.Concat:
		// Most recent target occupies the low b bits; older ones shift up.
		r.pat = (r.pat<<uint(r.b) | t) & r.patMask
	case bits.Straight:
		// Youngest target sits in column 0 of each b-bit round.
		pat := (r.pat &^ r.colClear) << 1
		for pos := 0; t != 0; pos += p {
			pat |= (t & 1) << uint(pos)
			t >>= 1
		}
		r.pat = pat
	case bits.Reverse:
		// Youngest target sits in column p-1 of each round.
		pat := (r.pat &^ r.colClear) >> 1
		for pos := p - 1; t != 0; pos += p {
			pat |= (t & 1) << uint(pos)
			t >>= 1
		}
		r.pat = pat
	}
}

// Targets appends the register contents to dst, most recent target first,
// and returns the extended slice.
func (r *Register) Targets(dst []uint32) []uint32 {
	// Two straight copies instead of a modulo per element: the ring reads
	// buf[head..], then wraps to buf[..head].
	dst = append(dst, r.buf[r.head:]...)
	return append(dst, r.buf[:r.head]...)
}

// Recent returns the i-th most recent target (0 = newest). It panics if i is
// out of range.
func (r *Register) Recent(i int) uint32 {
	if i < 0 || i >= len(r.buf) {
		panic(fmt.Sprintf("history: Recent(%d) on depth-%d register", i, len(r.buf)))
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Reset clears the register to the powered-up (all-zero) state.
func (r *Register) Reset() {
	for i := range r.buf {
		r.buf[i] = 0
	}
	r.head = 0
	r.pat = 0
}

// File is a set of history registers shared per address region: all branches
// whose addresses agree in bits s..31 use the same register (Figure 4).
// s=2 gives per-branch histories; s=31 (or more) is a single global history
// for word-aligned 32-bit address spaces.
type File struct {
	shareBits int // s
	depth     int // p
	global    *Register
	regs      map[uint32]*Register
	spec      Spec // incremental-pattern spec applied to registers (see Track)
	track     bool
}

// NewFile returns a history file with sharing parameter s and path length p.
// s is clamped to [2, 32]; s >= 32 is fully global.
func NewFile(s, p int) *File {
	if s < 2 {
		s = 2
	}
	if s > 32 {
		s = 32
	}
	f := &File{shareBits: s, depth: p}
	if s >= 32 {
		f.global = NewRegister(p)
	} else {
		f.regs = make(map[uint32]*Register)
	}
	return f
}

// ShareBits returns the sharing parameter s.
func (f *File) ShareBits() int { return f.shareBits }

// Track enables incremental pattern maintenance (Register.Track) on every
// register of the file, present and future.
func (f *File) Track(spec Spec) {
	f.spec, f.track = spec, true
	if f.global != nil {
		f.global.Track(spec)
	}
	for _, r := range f.regs {
		r.Track(spec)
	}
}

// Get returns the register used by the branch at pc, creating it on first
// use.
func (f *File) Get(pc uint32) *Register {
	if f.global != nil {
		return f.global
	}
	set := pc >> uint(f.shareBits)
	r := f.regs[set]
	if r == nil {
		r = NewRegister(f.depth)
		if f.track {
			r.Track(f.spec)
		}
		f.regs[set] = r
	}
	return r
}

// Registers returns the number of distinct registers materialized so far.
func (f *File) Registers() int {
	if f.global != nil {
		return 1
	}
	return len(f.regs)
}

// Reset clears all registers.
func (f *File) Reset() {
	if f.global != nil {
		f.global.Reset()
		return
	}
	clear(f.regs)
}

// KeyOp selects how the branch address is folded into the history pattern
// when forming the table lookup key (§4.2).
type KeyOp uint8

const (
	// OpXor xors the word-aligned branch address with the pattern
	// (gshare-style), yielding a 30-bit key.
	OpXor KeyOp = iota
	// OpConcat concatenates the address above the pattern, yielding a key
	// of up to 54 bits.
	OpConcat
)

func (op KeyOp) String() string {
	switch op {
	case OpXor:
		return "xor"
	case OpConcat:
		return "concat"
	}
	return fmt.Sprintf("KeyOp(%d)", uint8(op))
}

// Spec describes the compressed history pattern of §4: p targets, b bits per
// target taken from bit StartBit up, laid out per Scheme, combined with the
// branch address per Op.
type Spec struct {
	PathLength int         // p
	Bits       int         // b; the paper keeps p*b <= 24
	StartBit   int         // a; the paper found a=2 best
	Scheme     bits.Scheme // pattern layout
	Op         KeyOp       // address folding
}

// BitsForPath returns the paper's choice of bits per target for path length
// p: the largest b with b*p <= 24 (capped at 24 for p <= 1).
func BitsForPath(p int) int {
	if p <= 0 {
		return 0
	}
	b := 24 / p
	if b > 24 {
		b = 24
	}
	return b
}

// DefaultSpec returns the paper's §4–§6 configuration for path length p:
// b = BitsForPath(p) bits starting at bit 2, reverse interleaving, xor
// address folding.
func DefaultSpec(p int) Spec {
	return Spec{
		PathLength: p,
		Bits:       BitsForPath(p),
		StartBit:   2,
		Scheme:     bits.Reverse,
		Op:         OpXor,
	}
}

// PatternBits returns the width of the compressed pattern in bits.
func (s Spec) PatternBits() int { return s.PathLength * s.Bits }

// Pattern builds the compressed history pattern from the register. scratch
// is reused to avoid allocation; pass a slice with capacity >= p.
func (s Spec) Pattern(r *Register, scratch []uint32) uint32 {
	if s.PathLength == 0 || s.Bits == 0 {
		return 0
	}
	if r.Tracks(s) {
		return r.pat
	}
	targets := r.Targets(scratch[:0])
	if len(targets) > s.PathLength {
		targets = targets[:s.PathLength]
	}
	return bits.Assemble(targets, s.Bits, s.StartBit, s.Scheme)
}

// Key builds the table lookup key for the branch at pc using the register's
// current contents.
func (s Spec) Key(r *Register, pc uint32, scratch []uint32) uint64 {
	pattern := s.Pattern(r, scratch)
	if s.Op == OpConcat {
		return bits.ConcatKey(pattern, pc, s.PatternBits())
	}
	return bits.XorKey(pattern, pc)
}

// KeyBits returns the number of significant bits in keys produced by Key.
func (s Spec) KeyBits() int {
	if s.Op == OpConcat {
		return 30 + s.PatternBits()
	}
	if pb := s.PatternBits(); pb > 30 {
		return pb
	}
	return 30
}

// FullKey appends the exact key for unconstrained (§3–§4) predictors to
// dst: the table selector pc>>h followed by the register's p targets. With
// bits = 0 each target contributes its full 32-bit address; otherwise each
// target contributes its `bits`-wide field starting at startBit (the §4.1
// limited-precision variant, without the 24-bit pattern cap — exact byte
// keys have no width limit). Using exact bytes guarantees these experiments
// are free of aliasing artifacts.
func FullKey(dst []byte, r *Register, pc uint32, tableShareBits, startBit, nbits int) []byte {
	h := tableShareBits
	if h < 2 {
		h = 2
	}
	var sel uint32
	if h < 32 {
		sel = pc >> uint(h)
	}
	dst = binary.LittleEndian.AppendUint32(dst, sel)
	for i := 0; i < r.Depth(); i++ {
		t := r.Recent(i)
		if nbits > 0 {
			t = bits.Field(t, startBit, nbits)
		}
		dst = binary.LittleEndian.AppendUint32(dst, t)
	}
	return dst
}
