package history

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/oocsb/ibp/internal/bits"
)

func TestRegisterPushOrder(t *testing.T) {
	r := NewRegister(4)
	for _, v := range []uint32{4, 8, 12, 16, 20} {
		r.Push(v)
	}
	got := r.Targets(nil)
	want := []uint32{20, 16, 12, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Targets = %v, want %v", got, want)
		}
	}
	if r.Recent(0) != 20 || r.Recent(3) != 8 {
		t.Errorf("Recent: %d, %d", r.Recent(0), r.Recent(3))
	}
}

func TestRegisterZeroDepth(t *testing.T) {
	r := NewRegister(0)
	r.Push(100) // must not panic
	if got := r.Targets(nil); len(got) != 0 {
		t.Errorf("zero-depth register returned targets %v", got)
	}
	if r.Depth() != 0 {
		t.Errorf("Depth = %d", r.Depth())
	}
}

func TestRegisterInitialZeros(t *testing.T) {
	r := NewRegister(3)
	r.Push(40)
	got := r.Targets(nil)
	if got[0] != 40 || got[1] != 0 || got[2] != 0 {
		t.Errorf("partially filled register: %v", got)
	}
}

func TestRegisterReset(t *testing.T) {
	r := NewRegister(3)
	r.Push(4)
	r.Push(8)
	r.Reset()
	for _, v := range r.Targets(nil) {
		if v != 0 {
			t.Fatalf("Reset left %v", r.Targets(nil))
		}
	}
}

func TestRegisterRecentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Recent out of range did not panic")
		}
	}()
	NewRegister(2).Recent(2)
}

func TestNewRegisterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRegister(-1) did not panic")
		}
	}()
	NewRegister(-1)
}

func TestRegisterRing(t *testing.T) {
	// Property: after pushing sequence v0..vn, Targets returns the last
	// min(n+1, p) values in reverse order (padded with zeros).
	f := func(vals []uint32, depth uint8) bool {
		p := int(depth%8) + 1
		r := NewRegister(p)
		for _, v := range vals {
			r.Push(v)
		}
		got := r.Targets(nil)
		for i := 0; i < p; i++ {
			var want uint32
			if i < len(vals) {
				want = vals[len(vals)-1-i]
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFileSharing(t *testing.T) {
	// s=12: branches within the same 4KB region share a register.
	f := NewFile(12, 4)
	a := f.Get(0x0000_1000)
	b := f.Get(0x0000_1FFC)
	c := f.Get(0x0000_2000)
	if a != b {
		t.Error("same-region branches got distinct registers")
	}
	if a == c {
		t.Error("cross-region branches share a register")
	}
	if f.Registers() != 2 {
		t.Errorf("Registers = %d, want 2", f.Registers())
	}
}

func TestFileGlobal(t *testing.T) {
	for _, s := range []int{31, 32, 40} {
		f := NewFile(s, 4)
		if f.Get(0x1000) != f.Get(0x7FFF_FFFC) {
			// At s=31 addresses below 2^31 share register 0; our
			// address spaces stay below 2^31 so this must hold.
			t.Errorf("s=%d: registers differ for low addresses", s)
		}
	}
	f := NewFile(32, 2)
	if f.Registers() != 1 {
		t.Errorf("global file Registers = %d", f.Registers())
	}
	f.Get(0x1000).Push(99)
	f.Reset()
	if f.Get(0x1000).Recent(0) != 0 {
		t.Error("Reset did not clear global register")
	}
}

func TestFilePerBranch(t *testing.T) {
	f := NewFile(2, 2)
	if f.Get(0x1000) == f.Get(0x1004) {
		t.Error("s=2 should give per-branch registers")
	}
	// Clamping: s below 2 behaves as 2.
	g := NewFile(0, 2)
	if g.ShareBits() != 2 {
		t.Errorf("ShareBits = %d, want clamped 2", g.ShareBits())
	}
	g.Get(0x1000).Push(8)
	g.Reset()
	if g.Registers() != 0 {
		t.Errorf("Reset left %d registers", g.Registers())
	}
}

func TestBitsForPath(t *testing.T) {
	cases := map[int]int{0: 0, 1: 24, 2: 12, 3: 8, 4: 6, 6: 4, 8: 3, 12: 2, 18: 1, 24: 1, 25: 0}
	for p, want := range cases {
		if got := BitsForPath(p); got != want {
			t.Errorf("BitsForPath(%d) = %d, want %d", p, got, want)
		}
	}
	for p := 1; p <= 24; p++ {
		if b := BitsForPath(p); b*p > 24 {
			t.Errorf("BitsForPath(%d)=%d exceeds 24-bit budget", p, b)
		}
	}
}

func TestSpecPattern(t *testing.T) {
	r := NewRegister(2)
	r.Push(0xABC << 2) // older after next push
	r.Push(0xDEF << 2)
	spec := Spec{PathLength: 2, Bits: 12, StartBit: 2, Scheme: bits.Concat, Op: OpXor}
	got := spec.Pattern(r, make([]uint32, 0, 8))
	want := uint32(0xABC)<<12 | 0xDEF
	if got != want {
		t.Errorf("Pattern = %#x, want %#x", got, want)
	}
	if spec.PatternBits() != 24 {
		t.Errorf("PatternBits = %d", spec.PatternBits())
	}
}

func TestSpecKeyP0IsBTBKey(t *testing.T) {
	r := NewRegister(0)
	spec := DefaultSpec(0)
	for _, pc := range []uint32{0x1000, 0x4_0000, 0x7FFF_FFFC} {
		if got := spec.Key(r, pc, nil); got != uint64(pc>>2) {
			t.Errorf("p=0 key for %#x = %#x, want %#x", pc, got, pc>>2)
		}
	}
}

func TestSpecKeyOps(t *testing.T) {
	r := NewRegister(3)
	for _, v := range []uint32{0x100, 0x200, 0x300} {
		r.Push(v)
	}
	scratch := make([]uint32, 0, 8)
	xs := Spec{PathLength: 3, Bits: 8, StartBit: 2, Scheme: bits.Reverse, Op: OpXor}
	cs := xs
	cs.Op = OpConcat
	pc := uint32(0x0040_0010)
	xk, ck := xs.Key(r, pc, scratch), cs.Key(r, pc, scratch)
	if xk >= 1<<30 {
		t.Errorf("xor key has more than 30 bits: %#x", xk)
	}
	if got, want := ck>>24, uint64(pc>>2); got != want {
		t.Errorf("concat key address part %#x, want %#x", got, want)
	}
	if xs.KeyBits() != 30 || cs.KeyBits() != 54 {
		t.Errorf("KeyBits: xor=%d concat=%d", xs.KeyBits(), cs.KeyBits())
	}
}

func TestDefaultSpec(t *testing.T) {
	s := DefaultSpec(6)
	if s.Bits != 4 || s.StartBit != 2 || s.Scheme != bits.Reverse || s.Op != OpXor {
		t.Errorf("DefaultSpec(6) = %+v", s)
	}
}

func TestKeyOpString(t *testing.T) {
	if OpXor.String() != "xor" || OpConcat.String() != "concat" {
		t.Error("KeyOp names")
	}
	if KeyOp(9).String() == "" {
		t.Error("unknown KeyOp stringer empty")
	}
}

func TestFullKeyDistinguishes(t *testing.T) {
	r := NewRegister(2)
	r.Push(0x100)
	r.Push(0x200)
	k1 := FullKey(nil, r, 0x1000, 2, 2, 0)
	k2 := FullKey(nil, r, 0x1004, 2, 2, 0) // different branch, h=2 -> different key
	k3 := FullKey(nil, r, 0x1004, 31, 2, 0)
	k4 := FullKey(nil, r, 0x1000, 31, 2, 0) // h=31 -> same selector
	if string(k1) == string(k2) {
		t.Error("per-branch keys collide across branches")
	}
	if string(k3) != string(k4) {
		t.Error("h=31 keys differ for same history")
	}
	r.Push(0x300)
	k5 := FullKey(nil, r, 0x1000, 2, 2, 0)
	if string(k1) == string(k5) {
		t.Error("key unchanged after history push")
	}
	if len(k1) != 4*(1+2) {
		t.Errorf("key length %d, want 12", len(k1))
	}
}

func TestFullKeyExactness(t *testing.T) {
	// Full-precision keys must distinguish histories that differ in any
	// single bit of any target — the §3 experiments rely on this.
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 100; trial++ {
		p := 1 + rng.IntN(8)
		r1, r2 := NewRegister(p), NewRegister(p)
		vals := make([]uint32, p)
		for i := range vals {
			vals[i] = rng.Uint32() &^ 3
			r1.Push(vals[i])
			r2.Push(vals[i])
		}
		// Flip one bit of one push in r2 by re-pushing the sequence.
		r2.Reset()
		flip := rng.IntN(p)
		for i, v := range vals {
			if i == flip {
				v ^= 1 << uint(2+rng.IntN(30))
			}
			r2.Push(v)
		}
		k1 := FullKey(nil, r1, 0x1000, 2, 2, 0)
		k2 := FullKey(nil, r2, 0x1000, 2, 2, 0)
		if string(k1) == string(k2) {
			t.Fatalf("full keys collide despite differing history (p=%d)", p)
		}
	}
}
