package history

import (
	"math/rand/v2"
	"testing"

	"github.com/oocsb/ibp/internal/bits"
)

// trackSpecs enumerates the spec space the simulator actually sweeps: every
// scheme, path lengths through the paper's range, with the paper's b(p)
// choice plus a few off-nominal widths and start bits.
func trackSpecs() []Spec {
	var specs []Spec
	for _, scheme := range []bits.Scheme{bits.Concat, bits.Straight, bits.Reverse, bits.PingPong} {
		for p := 1; p <= 12; p++ {
			specs = append(specs, Spec{
				PathLength: p, Bits: BitsForPath(p), StartBit: 2, Scheme: scheme,
			})
		}
		specs = append(specs,
			Spec{PathLength: 4, Bits: 3, StartBit: 0, Scheme: scheme},
			Spec{PathLength: 6, Bits: 2, StartBit: 5, Scheme: scheme},
			Spec{PathLength: 2, Bits: 12, StartBit: 1, Scheme: scheme},
		)
	}
	return specs
}

// TestTrackedPatternMatchesReassembly is the differential test behind the
// incremental-pattern fast path: a tracking register must report exactly the
// pattern a non-tracking register reassembles from its targets, after every
// single push. PingPong rejects tracking, so there the test degenerates to
// both sides using reassembly — still a valid (if trivial) comparison, and it
// pins that Track does not corrupt state for untrackable specs.
func TestTrackedPatternMatchesReassembly(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	scratch := make([]uint32, 0, 16)
	for _, s := range trackSpecs() {
		tracked := NewRegister(s.PathLength)
		tracked.Track(s)
		plain := NewRegister(s.PathLength)
		if tracked.Tracks(s) == (s.Scheme == bits.PingPong) {
			t.Errorf("%+v: Tracks = %v", s, tracked.Tracks(s))
		}
		for i := 0; i < 500; i++ {
			target := rng.Uint32()
			tracked.Push(target)
			plain.Push(target)
			got := s.Pattern(tracked, scratch)
			want := s.Pattern(plain, scratch)
			if got != want {
				t.Fatalf("%+v: push %d: tracked pattern %#x, reassembled %#x",
					s, i, got, want)
			}
		}
	}
}

// TestTrackMidStream pins that Track on a register with existing contents
// replays them: the maintained pattern must immediately equal the
// reassembled one, not start from a cleared state.
func TestTrackMidStream(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 17))
	scratch := make([]uint32, 0, 16)
	for _, s := range trackSpecs() {
		if s.Scheme == bits.PingPong {
			continue
		}
		r := NewRegister(s.PathLength)
		for i := 0; i < 37; i++ {
			r.Push(rng.Uint32())
		}
		plain := NewRegister(s.PathLength)
		for i := s.PathLength - 1; i >= 0; i-- {
			plain.Push(r.Recent(i))
		}
		r.Track(s)
		if got, want := s.Pattern(r, scratch), s.Pattern(plain, scratch); got != want {
			t.Fatalf("%+v: after mid-stream Track: pattern %#x, want %#x", s, got, want)
		}
	}
}

// TestFileTracksFutureRegisters ensures File.Track applies to registers
// materialized after the call, not just existing ones.
func TestFileTracksFutureRegisters(t *testing.T) {
	s := DefaultSpec(4)
	f := NewFile(2, 4)
	f.Get(0x100) // exists before Track
	f.Track(s)
	f.Get(0x200) // created after Track
	for _, pc := range []uint32{0x100, 0x200} {
		if r := f.Get(pc); !r.Tracks(s) {
			t.Errorf("register for pc %#x not tracking after File.Track", pc)
		}
	}
	// Reset drops the registers; replacements must track too.
	f.Reset()
	if r := f.Get(0x300); !r.Tracks(s) {
		t.Error("register created after Reset not tracking")
	}
}

// TestTrackRejectsWideSpecs pins the guard conditions: tracking must stay
// off when the pattern would not fit the 32-bit fast path or the spec does
// not match the register.
func TestTrackRejectsWideSpecs(t *testing.T) {
	cases := []struct {
		p    int
		spec Spec
	}{
		{4, Spec{PathLength: 4, Bits: 9, StartBit: 2, Scheme: bits.Reverse}}, // 36 bits > 32
		{4, Spec{PathLength: 5, Bits: 4, StartBit: 2, Scheme: bits.Reverse}}, // depth mismatch
		{4, Spec{PathLength: 4, Bits: 0, StartBit: 2, Scheme: bits.Reverse}}, // zero width
		{0, Spec{PathLength: 0, Bits: 4, StartBit: 2, Scheme: bits.Reverse}}, // BTB case
	}
	for _, c := range cases {
		r := NewRegister(c.p)
		r.Track(c.spec)
		if r.Tracks(c.spec) {
			t.Errorf("register depth %d accepted spec %+v", c.p, c.spec)
		}
	}
}
