package minilang

import (
	"fmt"
	"math"

	"github.com/oocsb/ibp/internal/vm"
)

// Compile translates minilang source into an executable VM program.
// Execution starts at func main(). Functions are first-class: a bare
// function name evaluates to a function value, and calling through a
// variable compiles to the VM's indirect call.
func Compile(src string) (*vm.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	decls, err := parse(toks)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		prog:  &vm.Program{Main: -1},
		fnIdx: make(map[string]int, len(decls)),
		arity: make(map[string]int, len(decls)),
	}
	for _, d := range decls {
		if _, dup := c.fnIdx[d.name]; dup {
			return nil, fmt.Errorf("minilang: line %d: duplicate function %q", d.line, d.name)
		}
		c.fnIdx[d.name] = len(c.prog.Funcs)
		c.arity[d.name] = len(d.params)
		if d.name == "main" {
			c.prog.Main = len(c.prog.Funcs)
		}
		c.prog.Funcs = append(c.prog.Funcs, vm.Func{Name: d.name, Params: len(d.params)})
	}
	if c.prog.Main < 0 {
		return nil, fmt.Errorf("minilang: no main function")
	}
	if c.arity["main"] != 0 {
		return nil, fmt.Errorf("minilang: main must take no parameters")
	}
	for i, d := range decls {
		if err := c.compileFunc(i, d); err != nil {
			return nil, err
		}
	}
	return c.prog, nil
}

// compiler holds program-wide state; per-function state is reset in
// compileFunc.
type compiler struct {
	prog  *vm.Program
	fnIdx map[string]int
	arity map[string]int

	locals    map[string]int
	numLocals int
	breaks    []*[]int // fixup positions per enclosing loop
}

func (c *compiler) emit(op vm.Op, arg int32) int {
	c.prog.Code = append(c.prog.Code, vm.Instr{Op: op, Arg: arg})
	return len(c.prog.Code) - 1
}

// here returns the next instruction index.
func (c *compiler) here() int { return len(c.prog.Code) }

// patch sets the jump target of the instruction at pos.
func (c *compiler) patch(pos, target int) {
	c.prog.Code[pos].Arg = int32(target)
}

func (c *compiler) compileFunc(fi int, d fnDecl) error {
	c.locals = make(map[string]int)
	c.numLocals = 0
	c.breaks = nil
	for _, p := range d.params {
		if _, dup := c.locals[p]; dup {
			return fmt.Errorf("minilang: line %d: duplicate parameter %q", d.line, p)
		}
		c.locals[p] = c.numLocals
		c.numLocals++
	}
	c.prog.Funcs[fi].Entry = c.here()
	if err := c.compileStmts(d.body); err != nil {
		return err
	}
	// Falling off the end returns 0.
	c.emit(vm.OpPush, 0)
	c.emit(vm.OpRet, 0)
	c.prog.Funcs[fi].Locals = c.numLocals
	return nil
}

func (c *compiler) compileStmts(stmts []stmt) error {
	for _, s := range stmts {
		if err := c.compileStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) compileStmt(s stmt) error {
	switch s := s.(type) {
	case varStmt:
		if _, dup := c.locals[s.name]; dup {
			return fmt.Errorf("minilang: line %d: variable %q redeclared", s.line, s.name)
		}
		if err := c.compileExpr(s.init); err != nil {
			return err
		}
		slot := c.numLocals
		c.locals[s.name] = slot
		c.numLocals++
		c.emit(vm.OpStore, int32(slot))
		return nil
	case assignStmt:
		slot, ok := c.locals[s.name]
		if !ok {
			return fmt.Errorf("minilang: line %d: assignment to undeclared variable %q", s.line, s.name)
		}
		if err := c.compileExpr(s.value); err != nil {
			return err
		}
		c.emit(vm.OpStore, int32(slot))
		return nil
	case ifStmt:
		if err := c.compileExpr(s.cond); err != nil {
			return err
		}
		jz := c.emit(vm.OpJz, -1)
		if err := c.compileStmts(s.then); err != nil {
			return err
		}
		if len(s.els) == 0 {
			c.patch(jz, c.here())
			return nil
		}
		jend := c.emit(vm.OpJmp, -1)
		c.patch(jz, c.here())
		if err := c.compileStmts(s.els); err != nil {
			return err
		}
		c.patch(jend, c.here())
		return nil
	case whileStmt:
		start := c.here()
		if err := c.compileExpr(s.cond); err != nil {
			return err
		}
		jz := c.emit(vm.OpJz, -1)
		var brks []int
		c.breaks = append(c.breaks, &brks)
		if err := c.compileStmts(s.body); err != nil {
			return err
		}
		c.breaks = c.breaks[:len(c.breaks)-1]
		c.emit(vm.OpJmp, int32(start))
		end := c.here()
		c.patch(jz, end)
		for _, pos := range brks {
			c.patch(pos, end)
		}
		return nil
	case returnStmt:
		if s.value != nil {
			if err := c.compileExpr(s.value); err != nil {
				return err
			}
		} else {
			c.emit(vm.OpPush, 0)
		}
		c.emit(vm.OpRet, 0)
		return nil
	case switchStmt:
		if err := c.compileExpr(s.subject); err != nil {
			return err
		}
		table := make([]int, len(s.cases))
		ti := len(c.prog.Tables)
		c.prog.Tables = append(c.prog.Tables, table)
		c.emit(vm.OpSwitch, int32(ti))
		var ends []int
		for ci, body := range s.cases {
			table[ci] = c.here()
			if err := c.compileStmts(body); err != nil {
				return err
			}
			ends = append(ends, c.emit(vm.OpJmp, -1))
		}
		end := c.here()
		for _, pos := range ends {
			c.patch(pos, end)
		}
		return nil
	case breakStmt:
		if len(c.breaks) == 0 {
			return fmt.Errorf("minilang: line %d: break outside a loop", s.line)
		}
		top := c.breaks[len(c.breaks)-1]
		*top = append(*top, c.emit(vm.OpJmp, -1))
		return nil
	case exprStmt:
		if err := c.compileExpr(s.e); err != nil {
			return err
		}
		c.emit(vm.OpPop, 0) // discard the statement expression's value
		return nil
	default:
		return fmt.Errorf("minilang: unknown statement %T", s)
	}
}

func (c *compiler) compileExpr(e expr) error {
	switch e := e.(type) {
	case numExpr:
		if e.v > math.MaxInt32 || e.v < math.MinInt32 {
			return fmt.Errorf("minilang: literal %d out of 32-bit range", e.v)
		}
		c.emit(vm.OpPush, int32(e.v))
		return nil
	case varExpr:
		if slot, ok := c.locals[e.name]; ok {
			c.emit(vm.OpLoad, int32(slot))
			return nil
		}
		if fi, ok := c.fnIdx[e.name]; ok {
			// A bare function name is a function value.
			c.emit(vm.OpPush, int32(fi))
			return nil
		}
		return fmt.Errorf("minilang: line %d: undefined name %q", e.line, e.name)
	case unExpr:
		if err := c.compileExpr(e.x); err != nil {
			return err
		}
		if e.op == "-" {
			c.emit(vm.OpNeg, 0)
		} else {
			c.emit(vm.OpNot, 0)
		}
		return nil
	case binExpr:
		return c.compileBinary(e)
	case callExpr:
		return c.compileCall(e)
	default:
		return fmt.Errorf("minilang: unknown expression %T", e)
	}
}

func (c *compiler) compileBinary(e binExpr) error {
	// Operand order: Lt pops b then a and pushes a<b, so ">"-family
	// comparisons swap the compile order.
	lFirst := true
	switch e.op {
	case ">", "<=":
		lFirst = false
	}
	first, second := e.l, e.r
	if !lFirst {
		first, second = e.r, e.l
	}
	if err := c.compileExpr(first); err != nil {
		return err
	}
	// Logical operators normalize each side to 0/1 before combining; note
	// that both sides always evaluate (no short-circuit).
	if e.op == "&&" || e.op == "||" {
		c.emit(vm.OpNot, 0)
		if e.op == "&&" {
			c.emit(vm.OpNot, 0)
		}
	}
	if err := c.compileExpr(second); err != nil {
		return err
	}
	switch e.op {
	case "+":
		c.emit(vm.OpAdd, 0)
	case "-":
		c.emit(vm.OpSub, 0)
	case "*":
		c.emit(vm.OpMul, 0)
	case "%":
		c.emit(vm.OpMod, 0)
	case "<", ">":
		c.emit(vm.OpLt, 0)
	case "<=", ">=":
		c.emit(vm.OpLt, 0)
		c.emit(vm.OpNot, 0)
	case "==":
		c.emit(vm.OpEq, 0)
	case "!=":
		c.emit(vm.OpEq, 0)
		c.emit(vm.OpNot, 0)
	case "&&":
		c.emit(vm.OpNot, 0)
		c.emit(vm.OpNot, 0)
		c.emit(vm.OpMul, 0)
	case "||":
		c.emit(vm.OpNot, 0)
		c.emit(vm.OpMul, 0)
		c.emit(vm.OpNot, 0)
	default:
		return fmt.Errorf("minilang: line %d: unknown operator %q", e.line, e.op)
	}
	return nil
}

func (c *compiler) compileCall(e callExpr) error {
	// Direct call when the callee is an unshadowed function name.
	if v, ok := e.callee.(varExpr); ok {
		if _, isLocal := c.locals[v.name]; !isLocal {
			fi, isFn := c.fnIdx[v.name]
			if !isFn {
				return fmt.Errorf("minilang: line %d: call of undefined function %q", e.line, v.name)
			}
			if len(e.args) != c.arity[v.name] {
				return fmt.Errorf("minilang: line %d: %s takes %d arguments, got %d",
					e.line, v.name, c.arity[v.name], len(e.args))
			}
			for _, a := range e.args {
				if err := c.compileExpr(a); err != nil {
					return err
				}
			}
			c.emit(vm.OpCall, int32(fi))
			return nil
		}
	}
	// Indirect call: arguments, then the function value, then callfn.
	for _, a := range e.args {
		if err := c.compileExpr(a); err != nil {
			return err
		}
	}
	if err := c.compileExpr(e.callee); err != nil {
		return err
	}
	c.emit(vm.OpCallFn, 0)
	return nil
}

// Run compiles and executes a minilang program, returning its main result
// and the VM branch trace.
func Run(src string, opts vm.Options) (int64, *vm.VM, error) {
	prog, err := Compile(src)
	if err != nil {
		return 0, nil, err
	}
	m := vm.New(prog, opts)
	v, err := m.Run()
	if err != nil {
		return 0, nil, err
	}
	return v, m, nil
}
