package minilang

import (
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/vm"
)

// FuzzCompile checks the compiler never panics and that accepted programs
// execute cleanly (or fail with a vm: error) under a small step budget.
func FuzzCompile(f *testing.F) {
	f.Add("func main() { return 1 + 2; }")
	f.Add("func f(a) { return a; } func main() { var g = f; return g(4); }")
	f.Add("func main() { var i = 0; while (i < 5) { i = i + 1; } return i; }")
	f.Add("func main() { switch (1) { case 0: return 0; case 1: return 1; } return 2; }")
	f.Add("func main() { if (1 && 0 || !2) { return 1; } else { return 2; } }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		prog, err := Compile(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "minilang:") {
				t.Fatalf("error without minilang prefix: %v", err)
			}
			return
		}
		m := vm.New(prog, vm.Options{MaxSteps: 20000, TraceDispatch: true, TraceCond: true})
		if _, err := m.Run(); err != nil && !strings.HasPrefix(err.Error(), "vm:") {
			t.Fatalf("runtime error without vm prefix: %v", err)
		}
		if err := m.Trace().Validate(); err != nil {
			t.Fatalf("compiled program produced invalid trace: %v", err)
		}
	})
}
