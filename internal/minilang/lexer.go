// Package minilang implements a small imperative language that compiles to
// the bytecode VM (internal/vm): integers, locals, functions, first-class
// function values, if/while control flow and dense switches. Programs
// written in it exercise every indirect-branch kind the VM traces —
// switch jump tables, indirect calls through function values, and (with
// dispatch tracing) the interpreter loop itself — making the compiler a
// workload factory in the spirit of the paper's benchmark suite, which is
// itself dominated by compilers and interpreters.
package minilang

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokPunct
)

// token is one lexeme with its source position.
type token struct {
	kind tokenKind
	text string
	num  int64
	line int
}

var keywords = map[string]bool{
	"func": true, "var": true, "if": true, "else": true, "while": true,
	"return": true, "switch": true, "case": true, "break": true,
}

// twoCharPunct lists the two-character operators.
var twoCharPunct = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
}

// lex tokenizes source text. The error includes a line number.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			n, err := strconv.ParseInt(src[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("minilang: line %d: bad number %q", line, src[i:j])
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], num: n, line: line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: word, line: line})
			i = j
		default:
			if i+1 < len(src) && twoCharPunct[src[i:i+2]] {
				toks = append(toks, token{kind: tokPunct, text: src[i : i+2], line: line})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '%', '<', '>', '=', '!', '(', ')', '{', '}', ',', ';', ':':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line})
				i++
			default:
				return nil, fmt.Errorf("minilang: line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}
