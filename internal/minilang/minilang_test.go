package minilang

import (
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/vm"
)

func runProg(t *testing.T, src string) int64 {
	t.Helper()
	v, _, err := Run(src, vm.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestArithmeticAndPrecedence(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 3 - 2", 5},
		{"17 % 5", 2},
		{"-4 + 1", -3},
		{"2 < 3", 1},
		{"3 < 2", 0},
		{"3 > 2", 1},
		{"2 >= 2", 1},
		{"2 <= 1", 0},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"!0", 1},
		{"!7", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 3", 1},
		{"0 || 0", 0},
		{"1 + 2 == 3 && 4 < 5", 1},
	}
	for _, c := range cases {
		src := "func main() { return " + c.expr + "; }"
		if got := runProg(t, src); got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestVariablesAndLoops(t *testing.T) {
	src := `
func main() {
  var acc = 0;
  var i = 0;
  while (i < 10) {
    if (i % 2 == 0) {
      acc = acc + i;
    } else {
      acc = acc + 1;
    }
    i = i + 1;
  }
  return acc;  # 0+2+4+6+8 + 5*1
}`
	if got := runProg(t, src); got != 25 {
		t.Errorf("loop result %d, want 25", got)
	}
}

func TestBreak(t *testing.T) {
	src := `
func main() {
  var i = 0;
  while (1) {
    if (i >= 7) { break; }
    i = i + 1;
  }
  return i;
}`
	if got := runProg(t, src); got != 7 {
		t.Errorf("break result %d, want 7", got)
	}
}

func TestRecursionAndCalls(t *testing.T) {
	src := `
func fib(k) {
  if (k < 2) { return k; }
  return fib(k - 1) + fib(k - 2);
}
func main() { return fib(15); }`
	if got := runProg(t, src); got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
func classify(x) {
  if (x < 0) { return 0 - 1; }
  else if (x == 0) { return 0; }
  else { return 1; }
}
func main() { return classify(0 - 5) + classify(0) * 10 + classify(9) * 100; }`
	if got := runProg(t, src); got != 99 {
		t.Errorf("classify chain = %d, want 99", got)
	}
}

func TestSwitchCompilesToJumpTable(t *testing.T) {
	src := `
func main() {
  var acc = 0;
  var i = 0;
  while (i < 9) {
    switch (i % 3) {
      case 0: acc = acc + 1;
      case 1: acc = acc + 10;
      case 2: acc = acc + 100;
    }
    i = i + 1;
  }
  return acc;
}`
	v, m, err := Run(src, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 333 {
		t.Errorf("switch result %d, want 333", v)
	}
	if n := m.Trace().CountKind(trace.SwitchJump); n != 9 {
		t.Errorf("switch trace records = %d, want 9", n)
	}
}

func TestFunctionValuesCompileToIndirectCalls(t *testing.T) {
	src := `
func double(x) { return x * 2; }
func square(x) { return x * x; }
func apply(f, x) { return f(x); }
func main() {
  var h = double;
  return apply(square, 5) + h(3);
}`
	v, m, err := Run(src, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 31 {
		t.Errorf("result %d, want 31", v)
	}
	icalls := m.Trace().CountKind(trace.IndirectCall)
	if icalls != 2 {
		t.Errorf("indirect calls = %d, want 2 (f(x) and h(3))", icalls)
	}
}

func TestImplicitReturnZero(t *testing.T) {
	if got := runProg(t, "func main() { var x = 5; }"); got != 0 {
		t.Errorf("implicit return = %d, want 0", got)
	}
	if got := runProg(t, "func f() { return; } func main() { return f() + 3; }"); got != 3 {
		t.Errorf("bare return = %d, want 3", got)
	}
}

func TestLocalShadowsFunction(t *testing.T) {
	src := `
func f() { return 1; }
func main() {
  var f = 41;
  return f + 1;
}`
	if got := runProg(t, src); got != 42 {
		t.Errorf("shadowing = %d, want 42", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"func main() { return x; }", "undefined name"},
		{"func main() { x = 1; }", "undeclared variable"},
		{"func main() { var x = 1; var x = 2; }", "redeclared"},
		{"func main() { break; }", "break outside"},
		{"func main() { return f(); }", "undefined function"},
		{"func f(a) { return a; } func main() { return f(); }", "takes 1 arguments, got 0"},
		{"func f() { return 0; } func f() { return 1; } func main() { return 0; }", "duplicate function"},
		{"func f(a, a) { return a; } func main() { return 0; }", "duplicate parameter"},
		{"func f() { return 0; }", "no main"},
		{"func main(x) { return x; }", "main must take no parameters"},
		{"func main() { switch (1) { } }", "at least one case"},
		{"func main() { switch (1) { case 1: return 0; } }", "dense and ordered"},
		{"func main() { switch (1) { case x: return 0; } }", "case label"},
		{"func main() { return 1 +; }", "unexpected token"},
		{"func main() { return 9999999999999999; }", "out of 32-bit range"},
		{"var x = 1;", "expected func"},
		{"func main() { return 1 }", `expected ";"`},
		{"func main() { @ }", "unexpected character"},
		{"func main() { if 1 { return 0; } }", `expected "("`},
		{"func main() {", "unterminated block"},
		{"func main() { switch (1) { case 0: return 1;", "unterminated"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Compile(%q) error = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestCompiledInterpreterWorkload(t *testing.T) {
	// A token-processing loop compiled from source: the switch becomes a
	// VM jump table whose trace a path-based predictor learns far better
	// than a BTB — the paper's story, end to end through our own
	// compiler.
	src := `
func step(state) { return (state * 25173 + 13849) % 65536; }
func main() {
  var state = 7;
  var acc = 0;
  var i = 0;
  while (i < 2000) {
    state = step(state);
    switch (state % 4) {
      case 0: acc = acc + 1;
      case 1: acc = acc - 1;
      case 2: acc = acc + 2;
      case 3: acc = acc % 1000003;
    }
    i = i + 1;
  }
  return acc;
}`
	_, m, err := Run(src, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if n := tr.CountKind(trace.SwitchJump); n != 2000 {
		t.Fatalf("switch records = %d", n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
}
