package minilang

import "fmt"

// AST node types. The language is deliberately tiny: integer expressions,
// locals, functions (usable as values), if/while/switch control flow.
type (
	fnDecl struct {
		name   string
		params []string
		body   []stmt
		line   int
	}

	stmt interface{ stmtNode() }

	varStmt struct {
		name string
		init expr
		line int
	}
	assignStmt struct {
		name  string
		value expr
		line  int
	}
	ifStmt struct {
		cond expr
		then []stmt
		els  []stmt
	}
	whileStmt struct {
		cond expr
		body []stmt
	}
	returnStmt struct {
		value expr // nil returns 0
	}
	switchStmt struct {
		subject expr
		cases   [][]stmt // dense case bodies for values 0..n-1
		line    int
	}
	breakStmt struct{ line int }
	exprStmt  struct{ e expr }

	expr interface{ exprNode() }

	numExpr struct{ v int64 }
	varExpr struct {
		name string
		line int
	}
	binExpr struct {
		op   string
		l, r expr
		line int
	}
	unExpr struct {
		op string
		x  expr
	}
	callExpr struct {
		callee expr
		args   []expr
		line   int
	}
)

func (varStmt) stmtNode()    {}
func (assignStmt) stmtNode() {}
func (ifStmt) stmtNode()     {}
func (whileStmt) stmtNode()  {}
func (returnStmt) stmtNode() {}
func (switchStmt) stmtNode() {}
func (breakStmt) stmtNode()  {}
func (exprStmt) stmtNode()   {}

func (numExpr) exprNode()  {}
func (varExpr) exprNode()  {}
func (binExpr) exprNode()  {}
func (unExpr) exprNode()   {}
func (callExpr) exprNode() {}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("minilang: line %d: %s", line, fmt.Sprintf(format, args...))
}

// accept consumes the next token if it is the given punct/keyword text.
func (p *parser) accept(text string) bool {
	t := p.peek()
	if (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		t := p.peek()
		return p.errf(t.line, "expected %q, found %q", text, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errf(t.line, "expected identifier, found %q", t.text)
	}
	return t, nil
}

// parse builds the declaration list of a program.
func parse(toks []token) ([]fnDecl, error) {
	p := &parser{toks: toks}
	var fns []fnDecl
	for !p.atEOF() {
		t := p.peek()
		if t.kind != tokKeyword || t.text != "func" {
			return nil, p.errf(t.line, "expected func declaration, found %q", t.text)
		}
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		fns = append(fns, fn)
	}
	return fns, nil
}

func (p *parser) parseFunc() (fnDecl, error) {
	line := p.next().line // "func"
	name, err := p.expectIdent()
	if err != nil {
		return fnDecl{}, err
	}
	if err := p.expect("("); err != nil {
		return fnDecl{}, err
	}
	var params []string
	if !p.accept(")") {
		for {
			id, err := p.expectIdent()
			if err != nil {
				return fnDecl{}, err
			}
			params = append(params, id.text)
			if p.accept(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return fnDecl{}, err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return fnDecl{}, err
	}
	return fnDecl{name: name.text, params: params, body: body, line: line}, nil
}

func (p *parser) parseBlock() ([]stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.accept("}") {
		if p.atEOF() {
			return nil, p.errf(p.peek().line, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.peek()
	switch {
	case t.kind == tokKeyword && t.text == "var":
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return varStmt{name: name.text, init: e, line: name.line}, p.expect(";")
	case t.kind == tokKeyword && t.text == "if":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []stmt
		if p.accept("else") {
			if p.peek().kind == tokKeyword && p.peek().text == "if" {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []stmt{s}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return ifStmt{cond: cond, then: then, els: els}, nil
	case t.kind == tokKeyword && t.text == "while":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return whileStmt{cond: cond, body: body}, nil
	case t.kind == tokKeyword && t.text == "return":
		p.next()
		if p.accept(";") {
			return returnStmt{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return returnStmt{value: e}, p.expect(";")
	case t.kind == tokKeyword && t.text == "switch":
		return p.parseSwitch()
	case t.kind == tokKeyword && t.text == "break":
		p.next()
		return breakStmt{line: t.line}, p.expect(";")
	case t.kind == tokIdent && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "=":
		name := p.next()
		p.next() // "="
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return assignStmt{name: name.text, value: e, line: name.line}, p.expect(";")
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return exprStmt{e: e}, p.expect(";")
	}
}

// parseSwitch parses a dense switch: cases must be the integers 0..n-1 in
// order (the VM's jump tables index by value mod table size). Cases do not
// fall through.
func (p *parser) parseSwitch() (stmt, error) {
	line := p.next().line // "switch"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	subject, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var cases [][]stmt
	for !p.accept("}") {
		if err := p.expect("case"); err != nil {
			return nil, err
		}
		num := p.next()
		if num.kind != tokNumber {
			return nil, p.errf(num.line, "case label must be a number, found %q", num.text)
		}
		if num.num != int64(len(cases)) {
			return nil, p.errf(num.line, "switch cases must be dense and ordered: expected case %d, found %d", len(cases), num.num)
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		var body []stmt
		for {
			t := p.peek()
			if (t.kind == tokKeyword && t.text == "case") || (t.kind == tokPunct && t.text == "}") {
				break
			}
			if p.atEOF() {
				return nil, p.errf(t.line, "unterminated switch")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			body = append(body, s)
		}
		cases = append(cases, body)
	}
	if len(cases) == 0 {
		return nil, p.errf(line, "switch needs at least one case")
	}
	return switchStmt{subject: subject, cases: cases, line: line}, nil
}

// Expression parsing by precedence climbing.

func (p *parser) parseExpr() (expr, error) { return p.parseBinary(0) }

// binary operator precedence levels, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!=", "<", ">", "<=", ">="},
	{"+", "-"},
	{"*", "%"},
}

func (p *parser) parseBinary(level int) (expr, error) {
	if level == len(precLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		matched := false
		if t.kind == tokPunct {
			for _, op := range precLevels[level] {
				if t.text == op {
					matched = true
					break
				}
			}
		}
		if !matched {
			return left, nil
		}
		p.next()
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		left = binExpr{op: t.text, l: left, r: right, line: t.line}
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.peek()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unExpr{op: t.text, x: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.accept("(") {
		call := callExpr{callee: e, line: p.toks[p.pos-1].line}
		if !p.accept(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, a)
				if p.accept(")") {
					break
				}
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
		}
		e = call
	}
	return e, nil
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		return numExpr{v: t.num}, nil
	case t.kind == tokIdent:
		return varExpr{name: t.text, line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	default:
		return nil, p.errf(t.line, "unexpected token %q in expression", t.text)
	}
}
