// Package ptrace is the per-prediction event layer of the simulator: a
// bounded, sampled capture of what happened on every dynamic indirect branch
// — the branch site, the history pattern that indexed the table, the
// predicted and resolved targets, whether the probe hit a live entry, whether
// the update displaced one, and (for hybrids) which component the
// metapredictor chose. Aggregate miss rates say *that* a predictor misses;
// the event stream says *why* (cold start, eviction conflict, history
// aliasing, metapredictor mis-steer), which internal/analysis turns into
// per-branch attribution reports and cmd/ibpreport renders.
//
// The design point mirrors internal/telemetry's nop default: the nil
// *EventSink is the disabled sink, Record on it is a nil check and nothing
// else, and an enabled sink writes into a preallocated ring buffer — the
// simulation hot loop never allocates on either path. A sink belongs to
// exactly one simulation lane and is not safe for concurrent use.
package ptrace

// Event is one recorded prediction of a dynamic indirect branch. Fields are
// ordered wide-to-narrow so the ring buffer packs densely.
type Event struct {
	// Seq is the 1-based index of the dynamic indirect branch within its
	// simulation lane, warmup branches included.
	Seq uint64
	// Pattern is the key the prediction probed the target table with: the
	// folded history pattern + branch address for two-level predictors, the
	// word-aligned address for BTBs, a hash of the exact key in
	// full-precision mode, and 0 when the predictor reports no attribution.
	Pattern uint64
	// PC is the branch site address.
	PC uint32
	// Predicted is the predicted target (0 when HasPred is false).
	Predicted uint32
	// Actual is the resolved target.
	Actual uint32
	// Component is the hybrid component index the metapredictor chose,
	// -1 for non-hybrid predictors or when no component predicted.
	Component int16
	// Conf is the confidence counter of the predicting entry at probe time.
	Conf uint8
	// HasPred reports whether the predictor produced any target.
	HasPred bool
	// Miss reports a misprediction (wrong target or no prediction).
	Miss bool
	// Warmup marks branches inside the warmup window (they train the
	// predictor and the classifier's pattern-seen set, but are excluded
	// from miss accounting).
	Warmup bool
	// TableHit reports whether the predict-time probe found a live entry
	// (for hybrids: in the chosen component's table).
	TableHit bool
	// Evicted reports that the post-resolution update allocated an entry
	// by displacing a live one.
	Evicted bool
	// NewEntry reports that the update allocated a fresh entry (the probe
	// missed and the table learned this pattern now).
	NewEntry bool
	// AltCorrect reports that a hybrid component other than the chosen one
	// predicted the correct target — on a miss, the signature of
	// metapredictor mis-steering.
	AltCorrect bool
}

// Correct reports whether the prediction resolved correctly.
func (e Event) Correct() bool { return !e.Miss }

// DefaultCapacity is the ring size used when NewEventSink is given a
// non-positive capacity: large enough to hold a full default-length
// benchmark run (80k indirect branches) without wrapping.
const DefaultCapacity = 1 << 17

// EventSink captures sampled per-prediction events into a bounded ring
// buffer. The nil *EventSink is the disabled sink: Record is a no-op and
// every accessor returns zero values, so instrumented code holds a possibly-
// nil sink and calls it unconditionally.
//
// A sink records every sampleEvery-th event offered (starting with the
// first); once the ring is full the oldest events are overwritten, so a
// full-trace capture needs capacity ≥ the number of counted branches and
// sampleEvery == 1. Offered/Sampled/Dropped report what the capture covers.
//
// An EventSink belongs to one simulation lane; it is NOT safe for concurrent
// use.
type EventSink struct {
	every   uint64
	offered uint64
	sampled uint64
	buf     []Event
	pos     int
	full    bool
}

// NewEventSink returns a sink over a ring of the given capacity (<=0 selects
// DefaultCapacity) recording every sampleEvery-th event (<=1 records all).
func NewEventSink(capacity, sampleEvery int) *EventSink {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &EventSink{every: uint64(sampleEvery), buf: make([]Event, capacity)}
}

// Record offers one event to the sink. It never allocates; on the nil sink
// it is a nil check and nothing else.
func (s *EventSink) Record(ev Event) {
	if s == nil {
		return
	}
	o := s.offered
	s.offered++
	if s.every > 1 && o%s.every != 0 {
		return
	}
	s.sampled++
	s.buf[s.pos] = ev
	s.pos++
	if s.pos == len(s.buf) {
		s.pos = 0
		s.full = true
	}
}

// Events returns the captured events oldest-first (a copy; the sink can keep
// recording). Nil on the nil or empty sink.
func (s *EventSink) Events() []Event {
	if s == nil || (s.pos == 0 && !s.full) {
		return nil
	}
	if !s.full {
		return append([]Event(nil), s.buf[:s.pos]...)
	}
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.pos:]...)
	out = append(out, s.buf[:s.pos]...)
	return out
}

// Len returns the number of events currently held.
func (s *EventSink) Len() int {
	if s == nil {
		return 0
	}
	if s.full {
		return len(s.buf)
	}
	return s.pos
}

// Capacity returns the ring size (0 for the nil sink).
func (s *EventSink) Capacity() int {
	if s == nil {
		return 0
	}
	return len(s.buf)
}

// SampleEvery returns the sampling stride (0 for the nil sink).
func (s *EventSink) SampleEvery() int {
	if s == nil {
		return 0
	}
	return int(s.every)
}

// Offered returns the number of events presented to Record.
func (s *EventSink) Offered() uint64 {
	if s == nil {
		return 0
	}
	return s.offered
}

// Sampled returns the number of events that passed sampling (recorded,
// though possibly since overwritten by ring wrap-around).
func (s *EventSink) Sampled() uint64 {
	if s == nil {
		return 0
	}
	return s.sampled
}

// Dropped returns the number of sampled events lost to ring wrap-around.
func (s *EventSink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.sampled - uint64(s.Len())
}

// Complete reports whether the capture is lossless: every offered event was
// sampled and none were overwritten. Classification quality degrades on
// incomplete captures (the pattern-seen set has gaps).
func (s *EventSink) Complete() bool {
	return s != nil && s.every == 1 && s.Dropped() == 0
}

// Reset clears the capture (counters and ring) for reuse across runs.
func (s *EventSink) Reset() {
	if s == nil {
		return
	}
	s.offered, s.sampled, s.pos, s.full = 0, 0, 0, false
}
