package ptrace

import (
	"testing"
)

func TestNilSinkIsNoOp(t *testing.T) {
	var s *EventSink
	s.Record(Event{PC: 1}) // must not panic
	if s.Events() != nil || s.Len() != 0 || s.Capacity() != 0 {
		t.Error("nil sink leaked state")
	}
	if s.Offered() != 0 || s.Sampled() != 0 || s.Dropped() != 0 {
		t.Error("nil sink counted")
	}
	if s.SampleEvery() != 0 {
		t.Error("nil sink reports a stride")
	}
	if s.Complete() {
		t.Error("nil sink claims a complete capture")
	}
	s.Reset() // must not panic
}

func TestRecordAndOrder(t *testing.T) {
	s := NewEventSink(8, 1)
	for i := 0; i < 5; i++ {
		s.Record(Event{Seq: uint64(i + 1)})
	}
	evs := s.Events()
	if len(evs) != 5 || s.Len() != 5 {
		t.Fatalf("len = %d/%d, want 5", len(evs), s.Len())
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
	}
	if !s.Complete() {
		t.Error("lossless capture not reported Complete")
	}
}

func TestRingWrapKeepsNewestOldestFirst(t *testing.T) {
	s := NewEventSink(4, 1)
	for i := 1; i <= 10; i++ {
		s.Record(Event{Seq: uint64(i)})
	}
	evs := s.Events()
	want := []uint64{7, 8, 9, 10}
	if len(evs) != len(want) {
		t.Fatalf("len = %d, want %d", len(evs), len(want))
	}
	for i, w := range want {
		if evs[i].Seq != w {
			t.Errorf("event %d: Seq %d, want %d", i, evs[i].Seq, w)
		}
	}
	if s.Offered() != 10 || s.Sampled() != 10 || s.Dropped() != 6 {
		t.Errorf("offered/sampled/dropped = %d/%d/%d, want 10/10/6",
			s.Offered(), s.Sampled(), s.Dropped())
	}
	if s.Complete() {
		t.Error("wrapped capture reported Complete")
	}
}

func TestExactlyFullIsComplete(t *testing.T) {
	s := NewEventSink(4, 1)
	for i := 1; i <= 4; i++ {
		s.Record(Event{Seq: uint64(i)})
	}
	if s.Dropped() != 0 || !s.Complete() {
		t.Errorf("capacity-exact capture: dropped=%d complete=%v, want 0/true",
			s.Dropped(), s.Complete())
	}
	if got := s.Events(); len(got) != 4 || got[0].Seq != 1 {
		t.Errorf("events = %+v", got)
	}
}

func TestSampling(t *testing.T) {
	s := NewEventSink(100, 3)
	for i := 1; i <= 10; i++ {
		s.Record(Event{Seq: uint64(i)})
	}
	evs := s.Events()
	want := []uint64{1, 4, 7, 10} // first event, then every 3rd offered
	if len(evs) != len(want) {
		t.Fatalf("sampled %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, w := range want {
		if evs[i].Seq != w {
			t.Errorf("event %d: Seq %d, want %d", i, evs[i].Seq, w)
		}
	}
	if s.Offered() != 10 || s.Sampled() != 4 {
		t.Errorf("offered/sampled = %d/%d, want 10/4", s.Offered(), s.Sampled())
	}
	if s.Complete() {
		t.Error("sampled capture reported Complete")
	}
}

func TestDefaultsAndReset(t *testing.T) {
	s := NewEventSink(0, 0)
	if s.Capacity() != DefaultCapacity || s.SampleEvery() != 1 {
		t.Errorf("defaults: cap=%d every=%d", s.Capacity(), s.SampleEvery())
	}
	s.Record(Event{Seq: 1})
	s.Reset()
	if s.Len() != 0 || s.Offered() != 0 || s.Events() != nil {
		t.Error("Reset did not clear the sink")
	}
	s.Record(Event{Seq: 9})
	if got := s.Events(); len(got) != 1 || got[0].Seq != 9 {
		t.Errorf("post-Reset capture wrong: %+v", got)
	}
}

// TestRecordZeroAllocs pins the hot-path contract for both sink states: the
// nil (disabled) sink and a live ring must record without allocating.
func TestRecordZeroAllocs(t *testing.T) {
	var nilSink *EventSink
	if a := testing.AllocsPerRun(100, func() { nilSink.Record(Event{PC: 4}) }); a != 0 {
		t.Errorf("nil sink Record allocates %v per op", a)
	}
	s := NewEventSink(64, 1)
	if a := testing.AllocsPerRun(100, func() { s.Record(Event{PC: 4}) }); a != 0 {
		t.Errorf("live sink Record allocates %v per op", a)
	}
	sampled := NewEventSink(64, 7)
	if a := testing.AllocsPerRun(100, func() { sampled.Record(Event{PC: 4}) }); a != 0 {
		t.Errorf("sampling sink Record allocates %v per op", a)
	}
}
