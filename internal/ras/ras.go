// Package ras implements a return address stack, the mechanism the paper
// assumes when excluding procedure returns from indirect branch prediction
// (§2, [KE91]). It exists to verify that premise on workloads that emit
// call/return records.
package ras

import (
	"fmt"

	"github.com/oocsb/ibp/internal/trace"
)

// Stack is a bounded return address stack. When the stack overflows, the
// oldest entry is lost (wrap-around), as in real hardware.
type Stack struct {
	buf   []uint32
	top   int // index of the next free slot
	count int // valid entries, <= len(buf)
	// Overflows counts pushes that destroyed an older entry.
	Overflows int
	// Underflows counts pops from an empty stack.
	Underflows int
}

// New returns a stack holding up to depth return addresses.
func New(depth int) *Stack {
	if depth <= 0 {
		panic(fmt.Sprintf("ras: depth must be positive, got %d", depth))
	}
	return &Stack{buf: make([]uint32, depth)}
}

// Depth returns the stack capacity.
func (s *Stack) Depth() int { return len(s.buf) }

// Len returns the number of live entries.
func (s *Stack) Len() int { return s.count }

// Push records the return address of a call.
func (s *Stack) Push(returnAddr uint32) {
	s.buf[s.top] = returnAddr
	s.top = (s.top + 1) % len(s.buf)
	if s.count == len(s.buf) {
		s.Overflows++
	} else {
		s.count++
	}
}

// Predict returns the address the next return is predicted to transfer to
// (the top of stack) without popping.
func (s *Stack) Predict() (uint32, bool) {
	if s.count == 0 {
		return 0, false
	}
	i := (s.top - 1 + len(s.buf)) % len(s.buf)
	return s.buf[i], true
}

// Pop removes and returns the top entry. It returns 0, false on underflow.
func (s *Stack) Pop() (uint32, bool) {
	if s.count == 0 {
		s.Underflows++
		return 0, false
	}
	s.top = (s.top - 1 + len(s.buf)) % len(s.buf)
	s.count--
	return s.buf[s.top], true
}

// Reset clears the stack (keeping the overflow/underflow counters).
func (s *Stack) Reset() {
	s.top, s.count = 0, 0
}

// Result summarizes a return-prediction simulation.
type Result struct {
	Returns int
	Misses  int
}

// MissRate returns the return misprediction rate in percent.
func (r Result) MissRate() float64 {
	if r.Returns == 0 {
		return 0
	}
	return 100 * float64(r.Misses) / float64(r.Returns)
}

// Simulate replays the trace against a return address stack of the given
// depth: call-kind records push their fall-through address (PC+4), return
// records are predicted by the top of stack and then popped.
func Simulate(tr trace.Trace, depth int) Result {
	s := New(depth)
	var res Result
	for _, r := range tr {
		switch r.Kind {
		case trace.IndirectCall, trace.VirtualCall, trace.DirectCall:
			s.Push(r.PC + 4)
		case trace.Return:
			res.Returns++
			pred, ok := s.Predict()
			s.Pop()
			if !ok || pred != r.Target {
				res.Misses++
			}
		}
	}
	return res
}
