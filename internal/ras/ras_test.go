package ras

import (
	"testing"

	"github.com/oocsb/ibp/internal/trace"
)

func TestStackLIFO(t *testing.T) {
	s := New(8)
	for _, v := range []uint32{0x10, 0x20, 0x30} {
		s.Push(v)
	}
	if top, ok := s.Predict(); !ok || top != 0x30 {
		t.Fatalf("Predict = %#x, %v", top, ok)
	}
	for _, want := range []uint32{0x30, 0x20, 0x10} {
		got, ok := s.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %#x, want %#x", got, want)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Error("pop from empty stack succeeded")
	}
	if s.Underflows != 1 {
		t.Errorf("Underflows = %d", s.Underflows)
	}
}

func TestStackOverflowWraps(t *testing.T) {
	s := New(2)
	s.Push(1 * 4)
	s.Push(2 * 4)
	s.Push(3 * 4) // destroys the oldest (1*4)
	if s.Overflows != 1 {
		t.Fatalf("Overflows = %d", s.Overflows)
	}
	if got, _ := s.Pop(); got != 3*4 {
		t.Errorf("Pop = %#x", got)
	}
	if got, _ := s.Pop(); got != 2*4 {
		t.Errorf("Pop = %#x", got)
	}
	if _, ok := s.Pop(); ok {
		t.Error("entry 1 should have been destroyed by wrap-around")
	}
}

func TestStackDepthAndReset(t *testing.T) {
	s := New(4)
	if s.Depth() != 4 || s.Len() != 0 {
		t.Errorf("Depth/Len: %d/%d", s.Depth(), s.Len())
	}
	s.Push(4)
	s.Push(8)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Errorf("Len after Reset = %d", s.Len())
	}
	if _, ok := s.Predict(); ok {
		t.Error("Predict on empty stack succeeded")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

// nested builds a trace of properly nested calls and returns, depth-first.
func nested(depth int) trace.Trace {
	var out trace.Trace
	var rec func(level int, base uint32)
	rec = func(level int, base uint32) {
		if level == 0 {
			return
		}
		callPC := base
		out = append(out, trace.Record{PC: callPC, Target: base + 0x100, Kind: trace.VirtualCall, Gap: 3})
		rec(level-1, base+0x100)
		out = append(out, trace.Record{PC: base + 0x100 + 0x1C, Target: callPC + 4, Kind: trace.Return, Gap: 2})
	}
	for i := 0; i < 20; i++ {
		rec(depth, 0x1000+uint32(i)*0x1000)
	}
	return out
}

func TestSimulatePerfectlyNested(t *testing.T) {
	res := Simulate(nested(5), 16)
	if res.Returns != 100 {
		t.Fatalf("Returns = %d", res.Returns)
	}
	if res.Misses != 0 {
		t.Errorf("deep-enough RAS missed %d returns", res.Misses)
	}
	if res.MissRate() != 0 {
		t.Errorf("MissRate = %v", res.MissRate())
	}
}

func TestSimulateShallowStackOverflows(t *testing.T) {
	res := Simulate(nested(8), 2)
	if res.Misses == 0 {
		t.Error("depth-2 RAS on depth-8 nesting should miss")
	}
	if res.MissRate() <= 0 || res.MissRate() > 100 {
		t.Errorf("MissRate = %v", res.MissRate())
	}
}

func TestSimulateEmptyTrace(t *testing.T) {
	res := Simulate(nil, 8)
	if res.Returns != 0 || res.MissRate() != 0 {
		t.Errorf("empty trace: %+v", res)
	}
}

func TestSimulateIgnoresJumps(t *testing.T) {
	tr := trace.Trace{
		{PC: 0x1000, Target: 0x2000, Kind: trace.IndirectJump, Gap: 1},
		{PC: 0x1004, Target: 0x3000, Kind: trace.SwitchJump, Gap: 1},
	}
	res := Simulate(tr, 8)
	if res.Returns != 0 {
		t.Errorf("jumps counted as returns: %+v", res)
	}
}
