package serve

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/sessiontrack"
	"github.com/oocsb/ibp/internal/tuner"
	"github.com/oocsb/ibp/internal/workload"
)

// BenchmarkServeLoopback measures end-to-end serve throughput over a loopback
// TCP connection: framing, checksums, shard hand-off, prediction, and the
// ack stream, reported as records/s.
func BenchmarkServeLoopback(b *testing.B) {
	benchServeLoopback(b, nil, false)
}

// BenchmarkServeLoopbackTraced is the same loop with the flight recorder on:
// every frame gets a span, five hop stamps, a ring publish, and four
// histogram observations. CI asserts its records/s stays within 5% of the
// untraced run.
func BenchmarkServeLoopbackTraced(b *testing.B) {
	rec := flight.NewRecorder(flight.Options{Service: "bench"})
	benchServeLoopback(b, rec, false)
}

// BenchmarkServeLoopbackStreamed is the same loop with a /sessions/stream
// consumer attached at the fastest allowed interval (100ms) — the cost of
// someone watching ibptop while the server runs flat out. CI asserts its
// records/s stays within 5% of the unwatched run.
func BenchmarkServeLoopbackStreamed(b *testing.B) {
	benchServeLoopback(b, nil, true)
}

// BenchmarkServeLoopbackTuned is the same loop with the tuner observing
// every record and voting at every frame boundary, but with thresholds set
// so no swap ever fires — the steady-state sampling cost of -tuner, which
// is the price every tuned session pays whether or not it escalates. CI
// asserts its records/s stays within 5% of the untuned run.
func BenchmarkServeLoopbackTuned(b *testing.B) {
	policy, err := tuner.ParsePolicy("warmup=0;interval=512;miss=0.99;low=0.001")
	if err != nil {
		b.Fatal(err)
	}
	benchServeLoopbackCfg(b, Config{Tuner: tuner.New(tuner.Options{Policy: policy})}, false)
}

func benchServeLoopback(b *testing.B, rec *flight.Recorder, streamed bool) {
	benchServeLoopbackCfg(b, Config{Flight: rec}, streamed)
}

func benchServeLoopbackCfg(b *testing.B, cfg Config, streamed bool) {
	wl, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	tr := wl.MustGenerate(20000)
	cfg.Predictor, cfg.Shards, cfg.Window = defaultFlags(), 2, 8
	srv, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	go srv.ListenAndServe("127.0.0.1:0")
	for srv.Addr() == "" {
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr()

	if streamed {
		mux := http.NewServeMux()
		sessiontrack.Mount(mux, sessiontrack.HTTPConfig{Local: srv.Sessions()})
		ms := httptest.NewServer(mux)
		defer ms.Close()
		resp, err := http.Get(ms.URL + "/sessions/stream?interval=100ms")
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		go func() {
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
			for sc.Scan() {
			}
		}()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := Dial(addr, Hello{Benchmark: "gcc"}, DialOptions{Timeout: 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		sum, err := c.Stream(tr, 2048, nil)
		c.Close()
		if err != nil {
			b.Fatal(err)
		}
		if sum.Records != len(tr) {
			b.Fatalf("summary records %d, want %d", sum.Records, len(tr))
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*len(tr))/elapsed.Seconds(), "records/s")
	}
}
