package serve

import (
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/workload"
)

// BenchmarkServeLoopback measures end-to-end serve throughput over a loopback
// TCP connection: framing, checksums, shard hand-off, prediction, and the
// ack stream, reported as records/s.
func BenchmarkServeLoopback(b *testing.B) {
	benchServeLoopback(b, nil)
}

// BenchmarkServeLoopbackTraced is the same loop with the flight recorder on:
// every frame gets a span, five hop stamps, a ring publish, and four
// histogram observations. CI asserts its records/s stays within 5% of the
// untraced run.
func BenchmarkServeLoopbackTraced(b *testing.B) {
	rec := flight.NewRecorder(flight.Options{Service: "bench"})
	benchServeLoopback(b, rec)
}

func benchServeLoopback(b *testing.B, rec *flight.Recorder) {
	cfg, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	tr := cfg.MustGenerate(20000)
	srv, err := New(Config{Predictor: defaultFlags(), Shards: 2, Window: 8, Flight: rec})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	go srv.ListenAndServe("127.0.0.1:0")
	for srv.Addr() == "" {
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := Dial(addr, Hello{Benchmark: "gcc"}, DialOptions{Timeout: 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		sum, err := c.Stream(tr, 2048, nil)
		c.Close()
		if err != nil {
			b.Fatal(err)
		}
		if sum.Records != len(tr) {
			b.Fatalf("summary records %d, want %d", sum.Records, len(tr))
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*len(tr))/elapsed.Seconds(), "records/s")
	}
}
