package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"github.com/oocsb/ibp/internal/trace"
)

// DialOptions controls connection establishment.
type DialOptions struct {
	// Timeout bounds each dial attempt and every subsequent frame read.
	// Defaults to 30s.
	Timeout time.Duration
	// Retries is the number of re-dial attempts after a failed one.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per attempt
	// up to MaxBackoff. Defaults to 100ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff. Defaults to 2s.
	MaxBackoff time.Duration

	// sleep is the backoff sleeper, a test seam. The default honors
	// context cancellation mid-sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

func (o DialOptions) withDefaults() DialOptions {
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Backoff > o.MaxBackoff {
		o.Backoff = o.MaxBackoff
	}
	if o.sleep == nil {
		o.sleep = sleepContext
	}
	return o
}

// sleepContext sleeps for d or until ctx is cancelled, whichever comes
// first, returning ctx.Err() on cancellation.
func sleepContext(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitter spreads d by ±20% so a fleet of clients (or a router's failover
// storm) does not retry in lockstep.
func jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}

// clientPool backs every Client's frame payloads and encode buffers; shared
// process-wide so a fleet of connections (ibpload, the router) recycles one
// set of buffers.
var clientPool = trace.NewBufferPool()

// Client is one prediction session against an ibpserved instance. It is not
// safe for concurrent use; one Client drives one connection.
type Client struct {
	conn    net.Conn
	fw      *trace.FrameWriter
	fr      *trace.FrameReader
	ack     HelloAck
	timeout time.Duration

	// OnEvents, when non-nil, receives the decoded per-branch outcomes of
	// every events frame (sessions opened with Hello.Events). Called from
	// Stream's receive goroutine.
	OnEvents func(seq uint64, evs []EventRec)

	// OnTiming, when non-nil, receives the client-side hop breakdown of
	// every acknowledged frame (window wait, write, round trip). Like onAck
	// it forces a flush per frame, so the RTT is an honest round trip.
	// Called from Stream's receive goroutine.
	OnTiming func(FrameTiming)
}

// FrameTiming is the client-side hop breakdown of one streamed frame: where
// its wall time went before the server ever saw it, and the full round trip.
type FrameTiming struct {
	// Seq is the frame's sequence number.
	Seq uint64
	// WindowWait is the time blocked waiting for a free window slot
	// (including the flush that makes the server able to grant one).
	WindowWait time.Duration
	// Write is the frame encode + write + flush time.
	Write time.Duration
	// RTT is send → ack receipt.
	RTT time.Duration
	// SentAt and AckedAt are the wall-clock endpoints of the round trip,
	// for fusing client-side spans with server flight-recorder dumps.
	SentAt  time.Time
	AckedAt time.Time
}

// sendInfo is the per-inflight-frame bookkeeping behind onAck and OnTiming.
type sendInfo struct {
	sent    time.Time
	winWait time.Duration
	write   time.Duration
}

// Dial connects, retrying with exponential backoff, and performs the
// Hello/HelloAck handshake. It is DialContext with a background context.
func Dial(addr string, hello Hello, o DialOptions) (*Client, error) {
	return DialContext(context.Background(), addr, hello, o)
}

// DialContext connects, retrying with capped, ±20%-jittered exponential
// backoff, and performs the Hello/HelloAck handshake. Cancelling ctx aborts
// the dial immediately, including mid-backoff; the returned error then
// matches ctx.Err(). A Hello the server rejects (a *WireError) is
// deterministic and short-circuits the retry loop.
func DialContext(ctx context.Context, addr string, hello Hello, o DialOptions) (*Client, error) {
	o = o.withDefaults()
	backoff := o.Backoff
	var lastErr error
	for attempt := 0; attempt <= o.Retries; attempt++ {
		if attempt > 0 {
			if err := o.sleep(ctx, jitter(backoff)); err != nil {
				if lastErr != nil {
					return nil, fmt.Errorf("serve: dial %s: %w (last attempt: %v)", addr, err, lastErr)
				}
				return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
			}
			backoff = min(backoff*2, o.MaxBackoff)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
		}
		d := net.Dialer{Timeout: o.Timeout}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			lastErr = err
			continue
		}
		c, err := handshake(conn, hello, o.Timeout)
		if err != nil {
			conn.Close()
			lastErr = err
			// A rejected Hello is deterministic; retrying cannot help.
			var we *WireError
			if errors.As(err, &we) {
				break
			}
			continue
		}
		return c, nil
	}
	return nil, fmt.Errorf("serve: dial %s: %w", addr, lastErr)
}

// handshake sends the preamble and Hello, then waits for the HelloAck.
func handshake(conn net.Conn, hello Hello, timeout time.Duration) (*Client, error) {
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(append([]byte(Preamble), ProtocolVersion)); err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		fw:      trace.NewFrameWriter(conn),
		fr:      trace.NewPooledFrameReader(conn, 1<<24, clientPool),
		timeout: timeout,
	}
	if err := c.fw.WriteFrame(FrameHello, marshalJSON(hello)); err != nil {
		return nil, err
	}
	if err := c.fw.Flush(); err != nil {
		return nil, err
	}
	f, err := c.fr.Next()
	if err != nil {
		return nil, fmt.Errorf("hello ack: %w", err)
	}
	defer f.Release()
	switch f.Type {
	case FrameHelloAck:
		if err := unmarshalPayload(f.Payload, &c.ack); err != nil {
			return nil, err
		}
	case FrameError:
		var we WireError
		if err := unmarshalPayload(f.Payload, &we); err != nil {
			return nil, err
		}
		return nil, &we
	default:
		return nil, fmt.Errorf("serve: unexpected frame %#x during handshake", f.Type)
	}
	conn.SetDeadline(time.Time{})
	return c, nil
}

// Session returns the handshake result.
func (c *Client) Session() HelloAck { return c.ack }

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Raw frame relay
//
// A relay (the ibprouter cluster ingress) speaks the session protocol on
// behalf of another client: it forwards records frames it did not generate
// and interprets acks it will not consume. These methods expose the
// connection at frame granularity for that use; they must not be mixed with
// Stream, which owns the connection's read side from its own goroutine.

// WriteFrame buffers one raw protocol frame. Flush sends it.
func (c *Client) WriteFrame(typ uint64, payload []byte) error {
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	return c.fw.WriteFrame(typ, payload)
}

// Flush writes all buffered frames with the dial timeout as write deadline.
func (c *Client) Flush() error {
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	return c.fw.Flush()
}

// ReadFrame reads the next server frame. A non-zero deadline bounds the
// wait; zero blocks until a frame arrives or the connection dies. The
// frame's payload is borrowed from the client buffer pool: the caller owns
// it and must Release (or Retain/Copy) it — see trace.Frame.
func (c *Client) ReadFrame(deadline time.Duration) (trace.Frame, error) {
	if deadline > 0 {
		c.conn.SetReadDeadline(time.Now().Add(deadline))
	} else {
		c.conn.SetReadDeadline(time.Time{})
	}
	return c.fr.Next()
}

// Stream replays tr through the session in frames of recsPerFrame records
// (<=0 picks the server's maximum), keeping at most the granted window of
// frames unacknowledged, and returns the server's final Summary.
//
// onAck, when non-nil, observes every acknowledgement together with the
// frame's round-trip time (send of the records frame to receipt of its ack).
// A server-initiated drain ends the stream early: Stream stops sending and
// returns the drain Summary (Drained=true) with a nil error — every frame
// acknowledged up to that point is reflected in it.
func (c *Client) Stream(tr trace.Trace, recsPerFrame int, onAck func(Ack, time.Duration)) (Summary, error) {
	if recsPerFrame <= 0 || recsPerFrame > c.ack.MaxFrameRecords {
		recsPerFrame = c.ack.MaxFrameRecords
	}
	window := c.ack.Window
	if window <= 0 {
		window = 1
	}

	// timing gates all per-frame clock/map bookkeeping: pure overhead when
	// nobody is listening.
	timing := onAck != nil || c.OnTiming != nil
	var (
		mu        sync.Mutex
		sendTimes = make(map[uint64]sendInfo)
	)
	sem := make(chan struct{}, window)
	sumCh := make(chan Summary, 1)
	errCh := make(chan error, 1)

	// Receive side: acks release window slots; events feed OnEvents; a
	// summary or error ends the session.
	go func() {
		for {
			c.conn.SetReadDeadline(time.Now().Add(c.timeout))
			f, err := c.fr.Next()
			if err != nil {
				errCh <- fmt.Errorf("serve: response stream: %w", err)
				return
			}
			// Every arm decodes what it needs before the borrowed payload
			// goes back to the pool here.
			switch f.Type {
			case FrameAck:
				ack, err := DecodeAck(f.Payload)
				f.Release()
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				info, ok := sendTimes[ack.Seq]
				delete(sendTimes, ack.Seq)
				mu.Unlock()
				now := time.Now()
				var rtt time.Duration
				if ok {
					rtt = now.Sub(info.sent)
				}
				if onAck != nil {
					onAck(ack, rtt)
				}
				if c.OnTiming != nil && ok {
					c.OnTiming(FrameTiming{
						Seq:        ack.Seq,
						WindowWait: info.winWait,
						Write:      info.write,
						RTT:        rtt,
						SentAt:     info.sent,
						AckedAt:    now,
					})
				}
				select {
				case <-sem:
				default: // ack for a frame the send side already gave up on
				}
			case FrameEvents:
				seq, evs, err := decodeEvents(f.Payload, c.ack.MaxFrameRecords)
				f.Release()
				if err != nil {
					errCh <- err
					return
				}
				if c.OnEvents != nil {
					c.OnEvents(seq, evs)
				}
			case FrameSummary:
				var sum Summary
				err := unmarshalPayload(f.Payload, &sum)
				f.Release()
				if err != nil {
					errCh <- err
					return
				}
				sumCh <- sum
				return
			case FrameError:
				var we WireError
				err := unmarshalPayload(f.Payload, &we)
				f.Release()
				if err != nil {
					errCh <- err
					return
				}
				errCh <- &we
				return
			default:
				// Unknown server frame: skip (forward compatibility).
				f.Release()
			}
		}
	}()

	finish := func() (Summary, error) {
		select {
		case sum := <-sumCh:
			return sum, nil
		case err := <-errCh:
			return Summary{}, err
		}
	}

	// Encode buffer from the shared pool instead of a per-call allocation;
	// 16 bytes covers any record's worst-case encoding (4 varints).
	encBuf := clientPool.Get(recsPerFrame*16 + 2*binary.MaxVarintLen64)
	defer encBuf.Release()
	payload := encBuf.Bytes()[:0]
	var seqNum uint64
	for start := 0; start < len(tr); start += recsPerFrame {
		end := min(start+recsPerFrame, len(tr))
		var waitStart time.Time
		if timing {
			waitStart = time.Now()
		}
		// Acquire a window slot. When none is free, flush buffered frames
		// first — the server cannot ack what is still sitting in our write
		// buffer — then wait (or learn the session ended early). The fast
		// path leaves frames buffered, so a full window's worth of frames
		// coalesces into a few large writes.
		select {
		case sem <- struct{}{}:
		default:
			c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
			if err := c.fw.Flush(); err != nil {
				return finish()
			}
			select {
			case sem <- struct{}{}:
			case sum := <-sumCh:
				return sum, nil
			case err := <-errCh:
				return Summary{}, err
			}
		}
		seqNum++
		payload = appendRecordsFrame(payload[:0], seqNum, tr[start:end])
		if timing {
			// RTT/hop bookkeeping only when someone is listening: the map
			// and clock reads are pure overhead otherwise. The entry lands
			// before the write so a raced ack always finds it.
			now := time.Now()
			mu.Lock()
			sendTimes[seqNum] = sendInfo{sent: now, winWait: now.Sub(waitStart)}
			mu.Unlock()
		}
		c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
		if err := c.fw.WriteFrame(FrameRecords, payload); err != nil {
			return finish()
		}
		if timing {
			// Per-frame flush keeps the reported RTT an honest frame
			// round-trip rather than a measure of our own buffering.
			if err := c.fw.Flush(); err != nil {
				return finish()
			}
			mu.Lock()
			if info, ok := sendTimes[seqNum]; ok { // the ack may have raced us
				info.write = time.Since(info.sent)
				sendTimes[seqNum] = info
			}
			mu.Unlock()
		}
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	if c.fw.WriteFrame(FrameDone, nil) == nil {
		c.fw.Flush()
	}
	return finish()
}
