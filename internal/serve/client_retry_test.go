package serve

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// deadAddr reserves a loopback port and releases it, yielding an address
// that refuses connections (nothing re-binds it during the test).
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialBackoffSchedule pins the retry schedule: exponential from Backoff,
// capped at MaxBackoff, each sleep jittered within ±20%.
func TestDialBackoffSchedule(t *testing.T) {
	addr := deadAddr(t)
	var sleeps []time.Duration
	o := DialOptions{
		Timeout:    200 * time.Millisecond,
		Retries:    5,
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond,
		sleep: func(_ context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil // don't actually wait: the schedule is what's under test
		},
	}
	if _, err := DialContext(context.Background(), addr, Hello{}, o); err == nil {
		t.Fatal("dial against a dead address succeeded")
	}
	want := []time.Duration{10, 20, 40, 40, 40} // ms, pre-jitter
	if len(sleeps) != len(want) {
		t.Fatalf("%d backoff sleeps for %d retries, want %d", len(sleeps), o.Retries, len(want))
	}
	for i, s := range sleeps {
		base := want[i] * time.Millisecond
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if s < lo || s > hi {
			t.Errorf("sleep %d = %v outside jitter bounds [%v, %v]", i, s, lo, hi)
		}
	}
}

// TestDialWireErrorShortCircuit: a Hello the server rejects is deterministic,
// so the retry loop must stop after the first attempt — no backoff sleeps, no
// useless re-dials.
func TestDialWireErrorShortCircuit(t *testing.T) {
	_, addr := startServer(t, Config{})
	bad := defaultFlags()
	bad.Path = -3
	sleeps := 0
	o := DialOptions{
		Timeout: 5 * time.Second,
		Retries: 5,
		Backoff: time.Millisecond,
		sleep: func(_ context.Context, d time.Duration) error {
			sleeps++
			return nil
		},
	}
	_, err := DialContext(context.Background(), addr, Hello{Predictor: &bad}, o)
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeBadHello {
		t.Fatalf("want bad-hello WireError, got %v", err)
	}
	if sleeps != 0 {
		t.Fatalf("%d backoff sleeps after a deterministic rejection, want 0", sleeps)
	}
}

// TestDialContextCancelDuringBackoff: cancellation mid-backoff aborts the
// dial immediately rather than sleeping out the schedule.
func TestDialContextCancelDuringBackoff(t *testing.T) {
	addr := deadAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := DialContext(ctx, addr, Hello{}, DialOptions{
		Timeout: 200 * time.Millisecond,
		Retries: 3,
		Backoff: 10 * time.Second, // would dominate the test if not interrupted
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff sleep was not interrupted", elapsed)
	}
}

// TestDialContextAlreadyCancelled: a cancelled context never dials at all.
func TestDialContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DialContext(ctx, deadAddr(t), Hello{}, DialOptions{Retries: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
