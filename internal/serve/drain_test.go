package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/sim"
)

// TestServeGracefulDrainLosesNoAckedFrame is the drain contract: a Shutdown
// mid-stream must process every frame the server accepted, acknowledge it,
// and fold it into a final Summary (Drained=true) whose counters are
// bit-identical to a local sim over exactly the processed prefix of the
// trace. Nothing acknowledged may be missing from the summary.
func TestServeGracefulDrainLosesNoAckedFrame(t *testing.T) {
	const (
		warmup = 32
		frame  = 100
	)
	srv, addr := startServer(t, Config{Shards: 2, Window: 2})
	tr := benchTrace(t, "gcc", 5000)
	// A long stream: 300 frames of 100 records, paced by the ack callback so
	// the drain lands mid-flight with plenty of runway on both sides.
	long := tr
	for len(long) < 30000 {
		long = append(long, tr...)
	}

	c, err := Dial(addr, Hello{Benchmark: "gcc", Warmup: warmup}, DialOptions{Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var (
		mu    sync.Mutex
		acked []Ack
	)
	trigger := make(chan struct{})
	var once sync.Once
	shutdownDone := make(chan error, 1)
	go func() {
		<-trigger
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	sum, err := c.Stream(long, frame, func(a Ack, _ time.Duration) {
		mu.Lock()
		acked = append(acked, a)
		n := len(acked)
		mu.Unlock()
		if n == 5 {
			once.Do(func() { close(trigger) })
		}
		time.Sleep(2 * time.Millisecond)
	})
	if err != nil {
		t.Fatalf("stream during drain: %v", err)
	}
	if !sum.Drained {
		t.Fatal("summary not marked drained (shutdown landed after the full stream?)")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// Every acknowledged frame must be inside the summary.
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no acks before drain")
	}
	if sum.Frames < len(acked) {
		t.Fatalf("summary covers %d frames but client holds %d acks — acked work was lost", sum.Frames, len(acked))
	}
	for i, a := range acked {
		if a.Seq != uint64(i+1) {
			t.Fatalf("ack %d has seq %d", i, a.Seq)
		}
	}
	last := acked[len(acked)-1]
	if last.TotalExecuted > sum.Executed || last.TotalMisses > sum.Misses {
		t.Fatalf("last ack totals (%d,%d) exceed summary (%d,%d)",
			last.TotalExecuted, last.TotalMisses, sum.Executed, sum.Misses)
	}

	// The drain must have stopped mid-stream, and the summary must equal a
	// local sim over exactly the processed prefix.
	if sum.Records >= len(long) {
		t.Fatalf("server processed the whole stream (%d records); drain never interrupted it", sum.Records)
	}
	if sum.Records != sum.Frames*frame {
		t.Fatalf("summary records %d != %d full frames of %d", sum.Records, sum.Frames, frame)
	}
	pred, err := defaultFlags().Build()
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run(pred, long[:sum.Records], sim.Options{Warmup: warmup})
	if sum.Executed != want.Executed || sum.Misses != want.Misses || sum.NoPrediction != want.NoPrediction {
		t.Fatalf("drained summary (%d,%d,%d) != sim over processed prefix (%d,%d,%d)",
			sum.Executed, sum.Misses, sum.NoPrediction, want.Executed, want.Misses, want.NoPrediction)
	}
}

// TestServeShutdownIdle checks that draining a server with no sessions
// returns promptly and further connections are refused.
func TestServeShutdownIdle(t *testing.T) {
	srv, addr := startServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	if _, err := Dial(addr, Hello{}, DialOptions{Timeout: time.Second}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestServeForcedShutdown checks the hard-stop path: an already-expired
// context cuts sessions without waiting.
func TestServeForcedShutdown(t *testing.T) {
	srv, addr := startServer(t, Config{Window: 1})
	c, err := Dial(addr, Hello{Benchmark: "gcc"}, DialOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("forced shutdown err %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("forced shutdown took %v", d)
	}
}
