package serve

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/telemetry"
	"github.com/oocsb/ibp/internal/trace"
)

// waitGaugeZero polls until the gauge reads zero or the deadline passes —
// unregistration runs on the session goroutines after the socket drops.
func waitGaugeZero(t *testing.T, g *telemetry.Gauge, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g.Load() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s: serve_sessions_active stuck at %v, want 0", what, g.Load())
}

// TestSessionsActiveGaugeBalances drives every session exit path —
// clean completion, client abandonment mid-stream, rejected handshake,
// graceful drain, and hard close — and asserts serve_sessions_active
// returns to zero after each. Guards the leak where an enqueue failure on
// the done/drain sentinel path dropped the session without unregistering.
func TestSessionsActiveGaugeBalances(t *testing.T) {
	reg := telemetry.Enable(nil)
	gauge := reg.Gauge("serve_sessions_active")

	t.Run("clean completion", func(t *testing.T) {
		srv, addr := startServer(t, Config{Shards: 2})
		tr := benchTrace(t, "gcc", 2000)
		c, err := Dial(addr, Hello{Benchmark: "gcc"}, DialOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stream(tr, 256, nil); err != nil {
			t.Fatal(err)
		}
		c.Close()
		waitGaugeZero(t, gauge, "clean completion")
		if n := srv.Sessions().Len(); n != 0 {
			t.Fatalf("registry holds %d sessions after completion", n)
		}
	})

	t.Run("abandoned mid-stream", func(t *testing.T) {
		srv, addr := startServer(t, Config{Shards: 2})
		c, err := Dial(addr, Hello{Benchmark: "gcc"}, DialOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		// Wait until the server actually tracks the session, then cut the
		// socket with frames unsent — the error exit path must unregister.
		deadline := time.Now().Add(5 * time.Second)
		for srv.Sessions().Len() == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if gauge.Load() != 1 {
			t.Fatalf("gauge = %v with one open session", gauge.Load())
		}
		c.Close()
		waitGaugeZero(t, gauge, "abandoned mid-stream")
	})

	t.Run("rejected handshake", func(t *testing.T) {
		_, addr := startServer(t, Config{})
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// A records frame before Hello is rejected pre-registration: the
		// gauge must never move.
		fw := trace.NewFrameWriter(conn)
		fw.WriteFrame(FrameRecords, []byte{0})
		fw.Flush()
		conn.Close()
		time.Sleep(50 * time.Millisecond)
		waitGaugeZero(t, gauge, "rejected handshake")
	})

	t.Run("graceful drain", func(t *testing.T) {
		srv, addr := startServer(t, Config{Shards: 2})
		tr := benchTrace(t, "perl", 2000)
		c, err := Dial(addr, Hello{Benchmark: "perl"}, DialOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		done := make(chan error, 1)
		go func() {
			_, err := c.Stream(tr, 256, nil)
			done <- err
		}()
		deadline := time.Now().Add(5 * time.Second)
		for srv.Sessions().Len() == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		<-done // drained summary or drain error; either way the session ended
		waitGaugeZero(t, gauge, "graceful drain")
	})

	t.Run("hard close", func(t *testing.T) {
		srv, addr := startServer(t, Config{Shards: 2})
		c, err := Dial(addr, Hello{Benchmark: "gcc"}, DialOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		deadline := time.Now().Add(5 * time.Second)
		for srv.Sessions().Len() == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		srv.Close()
		waitGaugeZero(t, gauge, "hard close")
	})
}
