package serve

import (
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/workload"
)

// TestServeGoldenEquivalence streams every benchmark of the paper's suite
// through a live server and requires the server-side accounting — executed,
// misses, no-prediction, and therefore the miss rate — to be bit-identical to
// a local sim.Run with the same predictor configuration. This is the
// correctness contract of the serve subsystem: moving prediction behind a
// socket must not change a single count.
func TestServeGoldenEquivalence(t *testing.T) {
	const (
		n      = 4000
		warmup = 64
		frame  = 317 // deliberately odd so frame boundaries never align with anything
	)
	_, addr := startServer(t, Config{Shards: 4, Window: 4})

	for _, cfg := range workload.Suite() {
		tr := cfg.MustGenerate(n)

		c, err := Dial(addr, Hello{Benchmark: cfg.Name, Warmup: warmup}, DialOptions{Timeout: 20 * time.Second, Retries: 2})
		if err != nil {
			t.Fatalf("%s: dial: %v", cfg.Name, err)
		}
		sum, err := c.Stream(tr, frame, nil)
		c.Close()
		if err != nil {
			t.Fatalf("%s: stream: %v", cfg.Name, err)
		}

		pred, err := defaultFlags().Build()
		if err != nil {
			t.Fatal(err)
		}
		want := sim.Run(pred, tr, sim.Options{Warmup: warmup})

		if sum.Executed != want.Executed {
			t.Errorf("%s: executed %d, sim %d", cfg.Name, sum.Executed, want.Executed)
		}
		if sum.Misses != want.Misses {
			t.Errorf("%s: misses %d, sim %d", cfg.Name, sum.Misses, want.Misses)
		}
		if sum.NoPrediction != want.NoPrediction {
			t.Errorf("%s: noPrediction %d, sim %d", cfg.Name, sum.NoPrediction, want.NoPrediction)
		}
		wantRate := 0.0
		if want.Executed > 0 {
			wantRate = 100 * float64(want.Misses) / float64(want.Executed)
		}
		if sum.MissRate != wantRate {
			t.Errorf("%s: miss rate %v, sim %v (must be bit-identical)", cfg.Name, sum.MissRate, wantRate)
		}
		if sum.Records != len(tr) {
			t.Errorf("%s: records %d, trace %d", cfg.Name, sum.Records, len(tr))
		}
	}
}
