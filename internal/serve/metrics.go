package serve

import "github.com/oocsb/ibp/internal/telemetry"

// metrics is the serve layer's telemetry surface, resolved once per Server
// against the process registry. Handles are nil (no-op) when telemetry is
// disabled, so the serving path updates them unconditionally.
type metrics struct {
	sessionsActive  *telemetry.Gauge   // serve_sessions_active
	sessionsTotal   *telemetry.Counter // serve_sessions_total
	sessionsDropped *telemetry.Counter // serve_sessions_dropped_total
	drains          *telemetry.Counter // serve_drains_total
	frames          *telemetry.Counter // serve_frames_total
	records         *telemetry.Counter // serve_records_total
	acks            *telemetry.Counter // serve_acks_total
	misses          *telemetry.Counter // serve_misses_total
	panics          *telemetry.Counter // serve_panics_total
	queueDepth      *telemetry.Gauge   // serve_shard_queue_depth
	poolHits        *telemetry.Counter // serve_pool_hits
	poolMisses      *telemetry.Counter // serve_pool_misses
	ackBatchSize    *telemetry.Gauge   // serve_ack_batch_size

	// Hot-path latency histograms (log-bucketed, quantile-bearing); one
	// Observe per frame or flush, zero allocations either way.
	frameLatency *telemetry.Histogram // serve_frame_latency: read → ack queued
	queueWait    *telemetry.Histogram // serve_frame_queue_wait: read → shard dequeue
	predictTime  *telemetry.Histogram // serve_frame_predict: predictor walk per frame
	ackFlush     *telemetry.Histogram // serve_ack_flush: one vectored writer flush
}

// newMetrics resolves the handles against r (nil handles when r is nil).
func newMetrics(r *telemetry.Registry) *metrics {
	return &metrics{
		sessionsActive:  r.Gauge("serve_sessions_active"),
		sessionsTotal:   r.Counter("serve_sessions_total"),
		sessionsDropped: r.Counter("serve_sessions_dropped_total"),
		drains:          r.Counter("serve_drains_total"),
		frames:          r.Counter("serve_frames_total"),
		records:         r.Counter("serve_records_total"),
		acks:            r.Counter("serve_acks_total"),
		misses:          r.Counter("serve_misses_total"),
		panics:          r.Counter("serve_panics_total"),
		queueDepth:      r.Gauge("serve_shard_queue_depth"),
		poolHits:        r.Counter("serve_pool_hits"),
		poolMisses:      r.Counter("serve_pool_misses"),
		ackBatchSize:    r.Gauge("serve_ack_batch_size"),
		frameLatency:    r.Histogram("serve_frame_latency"),
		queueWait:       r.Histogram("serve_frame_queue_wait"),
		predictTime:     r.Histogram("serve_frame_predict"),
		ackFlush:        r.Histogram("serve_ack_flush"),
	}
}
