// Package serve is the network face of the reproduction: a long-running TCP
// service (cmd/ibpserved) that accepts streamed branch-trace frames,
// demultiplexes them into per-session predictor state, shards sessions
// across N predictor workers, and streams back per-frame prediction outcomes
// with rolling miss-rate summaries — the paper's predictors packaged as a
// serving component instead of a batch simulator.
//
// The wire format reuses the IBPT v2 trace encoding end to end: every
// message is a length-framed, CRC32-checksummed frame (trace.FrameWriter /
// trace.FrameReader), and record payloads are the v2 chunk codec
// (trace.AppendRecords / trace.DecodeRecords), so a records frame carries
// exactly the bytes a v2 trace file section would. Malformed input is
// rejected with the trace package's corruption machinery and can never panic
// the server (the decode path is covered by internal/trace's fuzz harness).
//
// Protocol (version 1)
//
// A connection is one session. The client opens with the preamble "IBPS"
// plus a uvarint protocol version, then a Hello frame (JSON) that names the
// workload, optionally overrides the server's predictor configuration
// (internal/cli flag surface), and negotiates per-prediction event capture.
// The server answers with a HelloAck carrying the session id, the resolved
// predictor, and the session's limits (frame window, max payload bytes, max
// records per frame).
//
// The client then streams Records frames — each a monotonically increasing
// sequence number plus a record chunk — keeping at most Window frames
// unacknowledged. The server acknowledges every processed frame with an Ack
// frame carrying that frame's prediction outcome and the session's rolling
// totals; when event capture was negotiated, each Ack is preceded by an
// Events frame with the per-branch outcomes. A Done frame asks for the final
// Summary (JSON); a server-initiated drain delivers the same Summary with
// Drained set. Protocol violations and predictor failures arrive as Error
// frames before the connection closes.
package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/trace"
)

// Preamble opens every client connection, mirroring the trace file magic.
const Preamble = "IBPS"

// ProtocolVersion is the wire protocol version this package speaks.
const ProtocolVersion = 1

// Frame types. Client-to-server types sit in 0x10..0x1f, server-to-client in
// 0x20..0x2f; the v2 trace file's section types (1..3) stay reserved so a
// trace file can never be mistaken for a protocol stream.
const (
	FrameHello   = 0x10 // JSON Hello
	FrameRecords = 0x11 // uvarint seq + record chunk
	FrameDone    = 0x12 // empty; requests the final Summary

	FrameHelloAck = 0x20 // JSON HelloAck
	FrameAck      = 0x21 // binary Ack
	FrameEvents   = 0x22 // binary per-branch outcomes for one records frame
	FrameSummary  = 0x23 // JSON Summary; last frame of a clean session
	FrameError    = 0x24 // JSON WireError; last frame of a failed session
)

// Hello is the client's session-open request.
type Hello struct {
	// Benchmark labels the session (reported back in the Summary and the
	// server log); it does not have to name a workload benchmark.
	Benchmark string `json:"benchmark,omitempty"`
	// Predictor overrides the server's default predictor configuration for
	// this session. Nil keeps the server default.
	Predictor *cli.PredictorFlags `json:"predictor,omitempty"`
	// Warmup is the number of leading indirect branches excluded from the
	// session's miss accounting (they still train the predictor).
	Warmup int `json:"warmup,omitempty"`
	// Events requests per-branch outcome frames alongside every Ack.
	Events bool `json:"events,omitempty"`
	// Window requests a frame window; the server clamps it to its own
	// limit and reports the granted value in the HelloAck.
	Window int `json:"window,omitempty"`
	// TraceID, when set, correlates this session's frame spans across
	// processes (client → router → backend) in the flight recorder. It is
	// an optional JSON field, so old peers ignore it and the IBPT v2 byte
	// format is untouched; empty means the receiving tier mints its own.
	TraceID string `json:"traceId,omitempty"`
	// Tenant tags the session's owner for the session introspection plane
	// (grouping in /sessions and ibptop, future per-tenant quotas). Like
	// TraceID it rides the JSON handshake only.
	Tenant string `json:"tenant,omitempty"`
	// RouterSession is the router's proxy-session id, pinned into the
	// forwarded Hello by ibprouter so a backend session can be correlated
	// with its proxy leg in the cluster-wide /sessions fan-in. Zero on
	// direct (router-less) sessions.
	RouterSession uint64 `json:"routerSession,omitempty"`
	// TunerPolicy overrides the server's default tuning policy for this
	// session (tuner.ParsePolicy grammar). ibprouter pins its own
	// -tunerpolicy here so every backend — including a failover
	// replacement replaying the journal — runs the identical policy and
	// converges to the same swap decisions. Ignored when the backend runs
	// without -tuner; rejected (BadHello) when malformed.
	TunerPolicy string `json:"tunerPolicy,omitempty"`
}

// HelloAck is the server's session-open response.
type HelloAck struct {
	// Session is the server-assigned session id.
	Session uint64 `json:"session"`
	// Predictor is the resolved predictor's name.
	Predictor string `json:"predictor"`
	// Window is the granted frame window: the client must keep at most this
	// many records frames unacknowledged.
	Window int `json:"window"`
	// MaxFramePayload is the largest frame payload (bytes) the server will
	// accept on this session.
	MaxFramePayload int `json:"maxFramePayload"`
	// MaxFrameRecords is the largest record count a records frame may carry.
	MaxFrameRecords int `json:"maxFrameRecords"`
	// Events reports whether per-branch event frames were granted.
	Events bool `json:"events"`
	// TraceID echoes the session's effective trace ID (the client's, or one
	// the server minted when the Hello carried none and tracing is on).
	TraceID string `json:"traceId,omitempty"`
}

// Ack is the server's acknowledgement of one processed records frame. All
// counters follow the sim package's accounting: every dynamic indirect
// branch is predicted then resolved, warmup branches train but do not count,
// and a missing prediction is a misprediction.
type Ack struct {
	// Seq is the acknowledged frame's sequence number.
	Seq uint64
	// Records is the number of trace records in the frame (all kinds).
	Records int
	// Executed is the number of counted indirect branches in the frame.
	Executed int
	// Misses is the number of mispredictions in the frame.
	Misses int
	// TotalExecuted and TotalMisses are the session's rolling totals after
	// this frame, from which the rolling miss rate derives.
	TotalExecuted int
	TotalMisses   int
	// TotalNoPrediction is the rolling count of misses with no prediction.
	TotalNoPrediction int
}

// MissRate returns the session's rolling misprediction rate in percent as of
// this ack.
func (a Ack) MissRate() float64 {
	if a.TotalExecuted == 0 {
		return 0
	}
	return 100 * float64(a.TotalMisses) / float64(a.TotalExecuted)
}

// Summary is the server's final per-session report, delivered on Done or on
// a server-initiated drain.
type Summary struct {
	Session   uint64 `json:"session"`
	Benchmark string `json:"benchmark,omitempty"`
	Predictor string `json:"predictor"`
	// Frames and Records count the records frames and trace records the
	// session processed and acknowledged.
	Frames  int `json:"frames"`
	Records int `json:"records"`
	// Executed, Misses, NoPrediction and Warmup follow sim.Result.
	Executed     int     `json:"executed"`
	Misses       int     `json:"misses"`
	NoPrediction int     `json:"noPrediction"`
	Warmup       int     `json:"warmup"`
	MissRate     float64 `json:"missRate"`
	// Drained is set when a server drain (SIGTERM) ended the session before
	// the client sent Done; every acknowledged frame is still included in
	// the totals above.
	Drained bool `json:"drained,omitempty"`
	// Router is attached by the ibprouter cluster ingress when the session
	// was placed through it; sessions served directly leave it nil.
	Router *RouterInfo `json:"router,omitempty"`
}

// RouterInfo is the cluster router's addition to a Summary: where the
// session ended up and what the failover machinery did to keep it alive.
type RouterInfo struct {
	// Backend is the address of the backend that delivered the Summary.
	Backend string `json:"backend"`
	// Failovers counts mid-session backend replacements (each one a
	// journal replay onto a survivor).
	Failovers int `json:"failovers"`
	// ReplayedFrames counts records frames re-sent during those replays.
	ReplayedFrames int `json:"replayedFrames,omitempty"`
}

// WireError is the payload of a FrameError.
type WireError struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

func (e *WireError) Error() string { return fmt.Sprintf("serve: %s: %s", e.Code, e.Msg) }

// Error codes.
const (
	CodeBadFrame  = "bad-frame"  // framing, checksum, or decode violation
	CodeBadHello  = "bad-hello"  // unusable session-open request
	CodeBadSeq    = "bad-seq"    // records frame out of order
	CodeOverLimit = "over-limit" // frame or window limit exceeded
	CodePredictor = "predictor"  // predictor construction or runtime failure
	CodeOverload  = "overload"   // server shed the session under load
)

// EventRec is one per-branch outcome in a FrameEvents payload: the
// sim-visible slice of a ptrace.Event (the server does not ship predictor
// attribution over the wire).
type EventRec struct {
	PC        uint32
	Predicted uint32
	Actual    uint32
	HasPred   bool
	Miss      bool
	Warmup    bool
}

const (
	evFlagHasPred = 1 << 0
	evFlagMiss    = 1 << 1
	evFlagWarmup  = 1 << 2
)

// appendEvents encodes a FrameEvents payload: uvarint seq, uvarint count,
// then per event zigzag word-deltas for PC/predicted/actual (delta state
// starts at zero, like a record chunk) plus a flags byte.
func appendEvents(buf []byte, seq uint64, evs []EventRec) []byte {
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	var prevPC, prevPred, prevAct uint32
	for _, ev := range evs {
		buf = binary.AppendVarint(buf, int64(int32(ev.PC-prevPC))/4)
		buf = binary.AppendVarint(buf, int64(int32(ev.Predicted-prevPred))/4)
		buf = binary.AppendVarint(buf, int64(int32(ev.Actual-prevAct))/4)
		var flags byte
		if ev.HasPred {
			flags |= evFlagHasPred
		}
		if ev.Miss {
			flags |= evFlagMiss
		}
		if ev.Warmup {
			flags |= evFlagWarmup
		}
		buf = append(buf, flags)
		prevPC, prevPred, prevAct = ev.PC, ev.Predicted, ev.Actual
	}
	return buf
}

// decodeEvents decodes a FrameEvents payload. max bounds the declared count.
func decodeEvents(payload []byte, max int) (seq uint64, evs []EventRec, err error) {
	br := newByteReader(payload)
	seq, err = binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("serve: events seq: %w", err)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("serve: events count: %w", err)
	}
	if n > uint64(max) {
		return 0, nil, fmt.Errorf("serve: events frame declares %d events", n)
	}
	evs = make([]EventRec, 0, n)
	var prevPC, prevPred, prevAct uint32
	for i := uint64(0); i < n; i++ {
		pcd, err := binary.ReadVarint(br)
		if err != nil {
			return 0, nil, fmt.Errorf("serve: event %d pc: %w", i, err)
		}
		prd, err := binary.ReadVarint(br)
		if err != nil {
			return 0, nil, fmt.Errorf("serve: event %d predicted: %w", i, err)
		}
		acd, err := binary.ReadVarint(br)
		if err != nil {
			return 0, nil, fmt.Errorf("serve: event %d actual: %w", i, err)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return 0, nil, fmt.Errorf("serve: event %d flags: %w", i, err)
		}
		ev := EventRec{
			PC:        prevPC + uint32(pcd*4),
			Predicted: prevPred + uint32(prd*4),
			Actual:    prevAct + uint32(acd*4),
			HasPred:   flags&evFlagHasPred != 0,
			Miss:      flags&evFlagMiss != 0,
			Warmup:    flags&evFlagWarmup != 0,
		}
		evs = append(evs, ev)
		prevPC, prevPred, prevAct = ev.PC, ev.Predicted, ev.Actual
	}
	if br.Len() != 0 {
		return 0, nil, fmt.Errorf("serve: %d trailing bytes in events frame", br.Len())
	}
	return seq, evs, nil
}

// appendAck encodes an Ack payload as uvarints.
func appendAck(buf []byte, a Ack) []byte {
	buf = binary.AppendUvarint(buf, a.Seq)
	buf = binary.AppendUvarint(buf, uint64(a.Records))
	buf = binary.AppendUvarint(buf, uint64(a.Executed))
	buf = binary.AppendUvarint(buf, uint64(a.Misses))
	buf = binary.AppendUvarint(buf, uint64(a.TotalExecuted))
	buf = binary.AppendUvarint(buf, uint64(a.TotalMisses))
	buf = binary.AppendUvarint(buf, uint64(a.TotalNoPrediction))
	return buf
}

// DecodeAck decodes an Ack payload. It walks the slice directly (no reader
// allocation): the client decodes one ack per processed frame, so this sits
// on the streaming hot path.
func DecodeAck(payload []byte) (Ack, error) {
	var vals [7]uint64
	off := 0
	for i := range vals {
		v, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return Ack{}, fmt.Errorf("serve: ack field %d: %w", i, io.ErrUnexpectedEOF)
		}
		vals[i] = v
		off += n
	}
	if off != len(payload) {
		return Ack{}, fmt.Errorf("serve: %d trailing bytes in ack", len(payload)-off)
	}
	return Ack{
		Seq:               vals[0],
		Records:           int(vals[1]),
		Executed:          int(vals[2]),
		Misses:            int(vals[3]),
		TotalExecuted:     int(vals[4]),
		TotalMisses:       int(vals[5]),
		TotalNoPrediction: int(vals[6]),
	}, nil
}

// appendRecordsFrame encodes a FrameRecords payload: uvarint seq + chunk.
func appendRecordsFrame(buf []byte, seq uint64, recs trace.Trace) []byte {
	buf = binary.AppendUvarint(buf, seq)
	return trace.AppendRecords(buf, recs)
}

// splitRecordsFrame peels the sequence number off a FrameRecords payload,
// returning the record chunk that follows it. It does not validate the chunk
// — the server's reader calls this to route the frame, and the shard worker
// iterating the chunk in place is where decode errors surface.
func splitRecordsFrame(payload []byte) (seq uint64, chunk []byte, err error) {
	seq, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, fmt.Errorf("serve: records seq: %w", io.ErrUnexpectedEOF)
	}
	return seq, payload[n:], nil
}

// decodeRecordsFrame splits a FrameRecords payload into its sequence number
// and a materialized record chunk. maxRecords bounds the chunk's declared
// count.
func decodeRecordsFrame(payload []byte, maxRecords int) (uint64, trace.Trace, error) {
	seq, chunk, err := splitRecordsFrame(payload)
	if err != nil {
		return 0, nil, err
	}
	recs, err := trace.DecodeRecords(chunk, maxRecords)
	if err != nil {
		return seq, nil, err
	}
	return seq, recs, nil
}

// marshalJSON encodes v, panicking only on programmer error (all payload
// types marshal cleanly).
func marshalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: marshal %T: %v", v, err))
	}
	return b
}

// unmarshalPayload decodes a JSON payload, tolerating unknown fields so a
// newer peer may extend the control frames (forward compatibility).
func unmarshalPayload(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("serve: bad JSON payload: %w", err)
	}
	return nil
}

// newByteReader wraps a payload slice for varint decoding.
func newByteReader(b []byte) *bytes.Reader { return bytes.NewReader(b) }
