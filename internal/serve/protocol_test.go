package serve

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/faultio"
	"github.com/oocsb/ibp/internal/trace"
)

func TestAckCodecRoundTrip(t *testing.T) {
	acks := []Ack{
		{},
		{Seq: 1, Records: 512, Executed: 300, Misses: 40, TotalExecuted: 300, TotalMisses: 40, TotalNoPrediction: 7},
		{Seq: 1 << 40, Records: 1, Executed: 1 << 30, Misses: 1 << 29, TotalExecuted: 1 << 31, TotalMisses: 1 << 30, TotalNoPrediction: 1 << 20},
	}
	for _, a := range acks {
		got, err := DecodeAck(appendAck(nil, a))
		if err != nil {
			t.Fatalf("%+v: %v", a, err)
		}
		if got != a {
			t.Fatalf("round trip %+v -> %+v", a, got)
		}
	}
	if _, err := DecodeAck(append(appendAck(nil, acks[1]), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeAck(appendAck(nil, acks[1])[:3]); err == nil {
		t.Fatal("truncated ack accepted")
	}
}

func TestAckMissRate(t *testing.T) {
	if r := (Ack{}).MissRate(); r != 0 {
		t.Fatalf("zero ack miss rate %v", r)
	}
	if r := (Ack{TotalExecuted: 200, TotalMisses: 50}).MissRate(); r != 25 {
		t.Fatalf("miss rate %v, want 25", r)
	}
}

func TestEventsCodecRoundTrip(t *testing.T) {
	evs := []EventRec{
		{PC: 0x1000, Predicted: 0x2000, Actual: 0x2000, HasPred: true},
		{PC: 0x1004, Predicted: 0, Actual: 0x3000, Miss: true},
		{PC: 0x0ffc, Predicted: 0x2004, Actual: 0x2008, HasPred: true, Miss: true, Warmup: true},
		{PC: 0xfffffffc, Predicted: 0x4, Actual: 0x8, HasPred: true},
	}
	payload := appendEvents(nil, 42, evs)
	seq, got, err := decodeEvents(payload, 16)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("seq %d", seq)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip\n got %+v\nwant %+v", got, evs)
	}
	if _, _, err := decodeEvents(payload, 2); err == nil {
		t.Fatal("count over max accepted")
	}
	if _, _, err := decodeEvents(append(payload, 9), 16); err == nil {
		t.Fatal("trailing byte accepted")
	}
	for cut := 1; cut < len(payload); cut++ {
		if _, _, err := decodeEvents(payload[:cut], 16); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, evs, err := decodeEvents(appendEvents(nil, 7, nil), 16); err != nil || len(evs) != 0 {
		t.Fatalf("empty events frame: %v, %d events", err, len(evs))
	}
}

func TestRecordsFrameCodecRoundTrip(t *testing.T) {
	tr := benchTrace(t, "xlisp", 400)
	payload := appendRecordsFrame(nil, 9, tr)
	seq, got, err := decodeRecordsFrame(payload, len(tr))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 {
		t.Fatalf("seq %d", seq)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("records round trip mismatch")
	}
	if _, _, err := decodeRecordsFrame(payload, len(tr)-1); err == nil {
		t.Fatal("record count over max accepted")
	}
}

func TestWireErrorAndPayloadJSON(t *testing.T) {
	we := &WireError{Code: CodeBadSeq, Msg: "frame seq 3, want 2"}
	if s := we.Error(); !strings.Contains(s, CodeBadSeq) || !strings.Contains(s, "want 2") {
		t.Fatalf("error string %q", s)
	}
	var h Hello
	// Unknown fields are tolerated (a newer peer may extend the payloads)...
	if err := unmarshalPayload([]byte(`{"Benchmark":"gcc","Bogus":1}`), &h); err != nil || h.Benchmark != "gcc" {
		t.Fatalf("forward-compatible decode: %v, %+v", err, h)
	}
	// ...but malformed JSON is not.
	if err := unmarshalPayload([]byte(`{"Benchmark":`), &h); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if err := unmarshalPayload(marshalJSON(Hello{Benchmark: "gcc"}), &h); err != nil || h.Benchmark != "gcc" {
		t.Fatalf("round trip: %v, %+v", err, h)
	}
}

// cleanClientStream builds the full byte stream of a well-formed session:
// preamble, Hello, two records frames, Done.
func cleanClientStream(t *testing.T) []byte {
	t.Helper()
	tr := benchTrace(t, "xlisp", 300)
	var buf bytes.Buffer
	buf.WriteString(Preamble)
	buf.WriteByte(ProtocolVersion)
	fw := trace.NewFrameWriter(&buf)
	for _, f := range []struct {
		typ     uint64
		payload []byte
	}{
		{FrameHello, marshalJSON(Hello{Benchmark: "fault"})},
		{FrameRecords, appendRecordsFrame(nil, 1, tr[:150])},
		{FrameRecords, appendRecordsFrame(nil, 2, tr[150:])},
		{FrameDone, nil},
	} {
		if err := fw.WriteFrame(f.typ, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// replayRaw writes a (possibly corrupted) client byte stream to a live server
// and reads responses until the server closes the connection. The assertion
// is survival: the server must terminate every such session without hanging
// (a panic would kill the whole test process).
func replayRaw(t *testing.T, addr string, stream []byte) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	conn.Write(stream) // short writes are fine: the server sees a truncation
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	io.Copy(io.Discard, conn)
}

func TestServeFaultInjectedStreams(t *testing.T) {
	// The server must survive a bit flip at any position and a truncation at
	// any length: frame checksums catch payload damage, limits catch length
	// damage, and either way the session dies cleanly.
	_, addr := startServer(t, Config{ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second})
	clean := cleanClientStream(t)

	for off := 0; off < len(clean); off += 5 {
		flipped, err := io.ReadAll(faultio.FlipBit(bytes.NewReader(clean), int64(off), 0x10))
		if err != nil {
			t.Fatal(err)
		}
		replayRaw(t, addr, flipped)
	}
	for n := 0; n < len(clean); n += 9 {
		cut, err := io.ReadAll(faultio.TruncateAfter(bytes.NewReader(clean), int64(n)))
		if err != nil {
			t.Fatal(err)
		}
		replayRaw(t, addr, cut)
	}
	// The pristine stream must still work after all that abuse.
	replayRaw(t, addr, clean)
}
