package serve

import (
	"errors"
	"log/slog"
	"net"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/workload"
)

// defaultFlags returns the tools' default predictor flag values (2lev, p=3,
// unbounded) without going through a FlagSet.
func defaultFlags() cli.PredictorFlags {
	return cli.PredictorFlags{
		Pred:      "2lev",
		Path:      3,
		HistShare: 32,
		TabShare:  2,
		Precision: -1, // core.AutoPrecision
		Scheme:    "reverse",
		KeyOp:     "xor",
		Table:     "unbounded",
		Update:    "2bc",
	}
}

// startServer runs a Server on a loopback listener and returns it with its
// address. The server is torn down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Predictor.Pred == "" {
		cfg.Predictor = defaultFlags()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// benchTrace memoizes one small benchmark trace per test binary run.
var benchTraces = map[string]trace.Trace{}

func benchTrace(t *testing.T, name string, n int) trace.Trace {
	t.Helper()
	key := name
	if tr, ok := benchTraces[key]; ok && len(tr) > 0 {
		return tr
	}
	cfg, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := cfg.MustGenerate(n)
	benchTraces[key] = tr
	return tr
}

func TestServeSingleSession(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})
	tr := benchTrace(t, "gcc", 5000)

	c, err := Dial(addr, Hello{Benchmark: "gcc", Warmup: 100}, DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Session().Window <= 0 || c.Session().MaxFrameRecords <= 0 {
		t.Fatalf("handshake granted bad limits: %+v", c.Session())
	}

	var acks int
	var lastAck Ack
	sum, err := c.Stream(tr, 512, func(a Ack, rtt time.Duration) {
		acks++
		lastAck = a
		if rtt < 0 {
			t.Errorf("negative rtt %v", rtt)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	pred, err := defaultFlags().Build()
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run(pred, tr, sim.Options{Warmup: 100})
	if sum.Executed != want.Executed || sum.Misses != want.Misses || sum.NoPrediction != want.NoPrediction {
		t.Fatalf("summary %+v != local sim %+v", sum, want)
	}
	if sum.Records != len(tr) {
		t.Fatalf("summary records %d, want %d", sum.Records, len(tr))
	}
	if acks != sum.Frames || acks == 0 {
		t.Fatalf("got %d acks for %d frames", acks, sum.Frames)
	}
	if lastAck.TotalExecuted != want.Executed || lastAck.TotalMisses != want.Misses {
		t.Fatalf("rolling totals %+v diverge from final result %+v", lastAck, want)
	}
	if sum.Drained {
		t.Fatal("clean Done-terminated session reported as drained")
	}
}

func TestServeRollingAcksAreConsistent(t *testing.T) {
	_, addr := startServer(t, Config{})
	tr := benchTrace(t, "perl", 4000)
	c, err := Dial(addr, Hello{Benchmark: "perl"}, DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sumExec, sumMiss int
	var prevSeq uint64
	sum, err := c.Stream(tr, 256, func(a Ack, _ time.Duration) {
		if a.Seq != prevSeq+1 {
			t.Errorf("ack seq %d after %d", a.Seq, prevSeq)
		}
		prevSeq = a.Seq
		sumExec += a.Executed
		sumMiss += a.Misses
		if a.TotalExecuted != sumExec || a.TotalMisses != sumMiss {
			t.Errorf("rolling totals (%d,%d) != summed per-frame (%d,%d)",
				a.TotalExecuted, a.TotalMisses, sumExec, sumMiss)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != sumExec || sum.Misses != sumMiss {
		t.Fatalf("summary (%d,%d) != accumulated acks (%d,%d)", sum.Executed, sum.Misses, sumExec, sumMiss)
	}
}

func TestServeConcurrentSessions(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 3, Window: 4})
	benches := []string{"gcc", "perl", "xlisp", "eqn", "idl", "go"}
	type result struct {
		name string
		sum  Summary
		err  error
	}
	results := make(chan result, len(benches))
	for _, name := range benches {
		tr := benchTrace(t, name, 3000)
		go func() {
			c, err := Dial(addr, Hello{Benchmark: name}, DialOptions{Timeout: 10 * time.Second, Retries: 2})
			if err != nil {
				results <- result{name: name, err: err}
				return
			}
			defer c.Close()
			sum, err := c.Stream(tr, 300, nil)
			results <- result{name: name, sum: sum, err: err}
		}()
	}
	for range benches {
		r := <-results
		if r.err != nil {
			t.Fatalf("%s: %v", r.name, r.err)
		}
		tr := benchTrace(t, r.name, 3000)
		pred, err := defaultFlags().Build()
		if err != nil {
			t.Fatal(err)
		}
		want := sim.Run(pred, tr, sim.Options{})
		if r.sum.Executed != want.Executed || r.sum.Misses != want.Misses {
			t.Fatalf("%s: concurrent session summary (%d,%d) != local sim (%d,%d)",
				r.name, r.sum.Executed, r.sum.Misses, want.Executed, want.Misses)
		}
	}
}

func TestServePredictorOverride(t *testing.T) {
	_, addr := startServer(t, Config{})
	tr := benchTrace(t, "ixx", 4000)
	over := defaultFlags()
	over.Pred = "btb-2bc"
	over.Table = "assoc4"
	over.Entries = 256
	c, err := Dial(addr, Hello{Benchmark: "ixx", Predictor: &over}, DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sum, err := c.Stream(tr, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := over.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run(pred, tr, sim.Options{})
	if sum.Executed != want.Executed || sum.Misses != want.Misses {
		t.Fatalf("override summary (%d,%d) != local sim (%d,%d)", sum.Executed, sum.Misses, want.Executed, want.Misses)
	}
	if sum.Predictor != pred.Name() {
		t.Fatalf("summary predictor %q, want %q", sum.Predictor, pred.Name())
	}
}

func TestServeEventCapture(t *testing.T) {
	_, addr := startServer(t, Config{})
	tr := benchTrace(t, "xlisp", 2000)
	c, err := Dial(addr, Hello{Benchmark: "xlisp", Events: true, Warmup: 50}, DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Session().Events {
		t.Fatal("events not granted")
	}
	var evs []EventRec
	c.OnEvents = func(_ uint64, frame []EventRec) { evs = append(evs, frame...) }
	sum, err := c.Stream(tr, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	indirect := tr.Indirect()
	if len(evs) != len(indirect) {
		t.Fatalf("captured %d events, want %d (one per indirect branch)", len(evs), len(indirect))
	}
	var misses, warm int
	for i, ev := range evs {
		if ev.PC != indirect[i].PC || ev.Actual != indirect[i].Target {
			t.Fatalf("event %d: pc/actual %08x/%08x, want %08x/%08x",
				i, ev.PC, ev.Actual, indirect[i].PC, indirect[i].Target)
		}
		if ev.Warmup != (i < 50) {
			t.Fatalf("event %d: warmup flag %v", i, ev.Warmup)
		}
		if ev.Miss && !ev.Warmup {
			misses++
		}
		if ev.Warmup {
			warm++
		}
	}
	if misses != sum.Misses {
		t.Fatalf("event-stream misses %d != summary misses %d", misses, sum.Misses)
	}
	if warm != 50 {
		t.Fatalf("%d warmup events, want 50", warm)
	}
}

func TestServeRejectsBadHello(t *testing.T) {
	_, addr := startServer(t, Config{})
	bad := defaultFlags()
	bad.Path = -3
	_, err := Dial(addr, Hello{Predictor: &bad}, DialOptions{Timeout: 5 * time.Second})
	var we *WireError
	if !errors.As(err, &we) || we.Code != CodeBadHello {
		t.Fatalf("want bad-hello WireError, got %v", err)
	}
}

func TestServeRejectsOutOfOrderFrames(t *testing.T) {
	_, addr := startServer(t, Config{})
	c, err := Dial(addr, Hello{}, DialOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tr := benchTrace(t, "xlisp", 200)
	// Hand-roll a frame with a wrong sequence number.
	payload := appendRecordsFrame(nil, 7, tr[:10])
	c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := c.fw.WriteFrame(FrameRecords, payload); err != nil {
		t.Fatal(err)
	}
	if err := c.fw.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := c.fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameError {
		t.Fatalf("frame type %#x, want FrameError", f.Type)
	}
	var we WireError
	if err := unmarshalPayload(f.Payload, &we); err != nil {
		t.Fatal(err)
	}
	if we.Code != CodeBadSeq {
		t.Fatalf("error code %q, want %q", we.Code, CodeBadSeq)
	}
}

func TestServeSessionPanicIsolation(t *testing.T) {
	// Two sessions share the single shard; the first one's predictor is
	// swapped for a panicking stub. The panic must drop only that session —
	// the shard worker has to keep serving its sibling.
	srv, addr := startServer(t, Config{Shards: 1, Log: slog.New(slog.DiscardHandler)})
	tr := benchTrace(t, "xlisp", 500)

	// Victim session first: it will share the only shard with the panicker.
	victim, err := Dial(addr, Hello{Benchmark: "victim"}, DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()

	panicker, err := Dial(addr, Hello{Benchmark: "panicker"}, DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer panicker.Close()
	// Reach into the server and replace the panicker session's predictor
	// with one that blows up mid-frame. Neither session is streaming yet, so
	// the shard worker cannot be touching the predictor.
	for _, e := range srv.track.Live() {
		if sess, ok := e.Conn().(*session); ok && sess.hello.Benchmark == "panicker" {
			sess.pred = panicPredictor{}
			sess.condObs = nil
		}
	}

	if _, err := panicker.Stream(tr, 100, nil); err == nil {
		t.Fatal("panicking session returned a clean summary")
	} else {
		var we *WireError
		if !errors.As(err, &we) || we.Code != CodePredictor {
			t.Fatalf("want predictor WireError, got %v", err)
		}
	}

	// The shard that hosted the panic must still serve the victim.
	sum, err := victim.Stream(tr, 100, nil)
	if err != nil {
		t.Fatalf("victim session failed after sibling panic: %v", err)
	}
	pred, err := defaultFlags().Build()
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run(pred, tr, sim.Options{})
	if sum.Executed != want.Executed || sum.Misses != want.Misses {
		t.Fatalf("victim summary (%d,%d) != local sim (%d,%d)", sum.Executed, sum.Misses, want.Executed, want.Misses)
	}
}

// panicPredictor blows up after a few predictions.
type panicPredictor struct{}

func (panicPredictor) Name() string { return "panic-stub" }
func (panicPredictor) Predict(pc uint32) (uint32, bool) {
	panic("injected predictor failure")
}
func (panicPredictor) Update(pc, target uint32) {}

func TestServeDialRetryBackoff(t *testing.T) {
	// Reserve an address with no listener: the first dial attempts fail,
	// then a server appears and the retry succeeds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srvReady := make(chan *Server, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		srv, err := New(Config{Predictor: defaultFlags()})
		if err != nil {
			return
		}
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		go srv.Serve(ln2)
		srvReady <- srv
	}()
	c, err := Dial(addr, Hello{}, DialOptions{Timeout: 2 * time.Second, Retries: 8, Backoff: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial with retries failed: %v", err)
	}
	c.Close()
	if srv := <-srvReady; srv != nil {
		srv.Close()
	}
}
