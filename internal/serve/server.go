package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oocsb/ibp/internal/cli"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/sessiontrack"
	"github.com/oocsb/ibp/internal/telemetry"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/tuner"
)

// Config parameterizes a Server. The zero value is usable: every limit
// defaults to a production-shaped value in New.
type Config struct {
	// Predictor is the server's default predictor configuration; a session
	// Hello may override it per session.
	Predictor cli.PredictorFlags
	// Shards is the number of predictor worker goroutines. Sessions are
	// pinned to one shard (chosen by PC hash of the session's first record)
	// so a session's records are processed in order — the property that
	// keeps server-side miss counts bit-identical to a local sim.Run.
	// Defaults to GOMAXPROCS.
	Shards int
	// QueueDepth is each shard's bounded frame queue. A full queue blocks
	// the session readers feeding it, pushing backpressure into the TCP
	// stream. Defaults to 64.
	QueueDepth int
	// Window is the per-session frame window: the most records frames a
	// client may keep unacknowledged. Defaults to 8.
	Window int
	// MaxFramePayload bounds a frame's payload bytes; MaxFrameRecords
	// bounds a records frame's record count. Defaults: 1 MiB, 8192.
	MaxFramePayload int
	MaxFrameRecords int
	// ReadTimeout bounds the wait for the next client frame; WriteTimeout
	// bounds each response flush. Defaults: 30s each.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Tag labels this instance in the session introspection plane (the
	// /sessions view's tag field); usually the daemon's -tag flag.
	Tag string
	// Log receives structured session lifecycle events; nil discards them.
	Log *slog.Logger
	// Flight, when non-nil, records per-frame hop spans into a bounded ring
	// (the flight recorder) and enables slow-frame SLO logging. Nil disables
	// tracing entirely: the per-frame cost is one nil check, no allocations.
	Flight *flight.Recorder
	// Tuner, when non-nil, attaches the per-session adaptation plane: each
	// non-events session gets a policy state machine that can hot-swap its
	// predictor at a frame boundary (see internal/tuner). Nil disables
	// tuning entirely: the per-record cost is one nil check, no allocations.
	Tuner *tuner.Tuner
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.MaxFramePayload <= 0 {
		c.MaxFramePayload = 1 << 20
	}
	if c.MaxFrameRecords <= 0 {
		c.MaxFrameRecords = 8192
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.Log == nil {
		c.Log = slog.New(slog.DiscardHandler)
	}
	return c
}

// Server is a sharded streaming prediction service. Create with New, run
// with Serve/ListenAndServe, stop with Shutdown (graceful drain) or Close.
type Server struct {
	cfg  Config
	m    *metrics
	pool *trace.BufferPool // frame payload buffers, shared by all readers
	// histPool recycles tuner history arena blocks across sessions; blocks
	// are taken and returned only on shard workers (see session.dropHistory).
	histPool sync.Pool

	shards  []*shard
	shardWG sync.WaitGroup

	// track is the session-lifecycle core (ROADMAP item 5): it owns session
	// id allocation, the live set, the drain handshake, and every
	// per-session stat the introspection plane serves. The router's proxy
	// sessions use the same registry type — one session-management core.
	track *sessiontrack.Registry

	mu sync.Mutex
	ln net.Listener

	connWG      sync.WaitGroup
	draining    atomic.Bool
	hardStop    chan struct{} // closed by Close/forced shutdown
	stopOnce    sync.Once
	workersOnce sync.Once
}

// job is one unit of shard work: a records frame to simulate, or a
// done/drain sentinel asking for the session's final summary. The chunk is
// the borrowed frame payload (backed by buf when pooled); whoever consumes
// the job — the worker, or the drain paths around it — releases buf.
type job struct {
	sess   *session
	seq    uint64
	chunk  []byte           // record chunk, seq already peeled off
	buf    *trace.PooledBuf // backing pooled buffer; nil for sentinels
	recvNS int64            // unix ns the reader pulled the frame off the wire
	span   *flight.Span     // frame span; nil when tracing is off
	done   bool             // client sent Done
	drain  bool             // server drain ended the stream
}

// shard is one predictor worker and its bounded queue. All jobs of a session
// land on the same shard in arrival order.
type shard struct {
	id    int
	queue chan job
}

// New validates the configuration and returns a Server with its shard
// workers running (idle until sessions arrive).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Predictor.Validate(); err != nil {
		return nil, err
	}
	if _, err := cfg.Predictor.Build(); err != nil {
		return nil, fmt.Errorf("serve: default predictor: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		m:        newMetrics(telemetry.Default()),
		pool:     trace.NewBufferPool(),
		track:    sessiontrack.NewRegistry(sessiontrack.Options{Service: "ibpserved", Tag: cfg.Tag}),
		hardStop: make(chan struct{}),
	}
	s.pool.OnStats(func() { s.m.poolHits.Inc() }, func() { s.m.poolMisses.Inc() })
	s.histPool.New = func() any { return new(histBlock) }
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{id: i, queue: make(chan job, cfg.QueueDepth)}
		s.shards[i] = sh
		s.shardWG.Add(1)
		go func() {
			defer s.shardWG.Done()
			sh.run(s)
		}()
	}
	return s, nil
}

// Sessions returns the server's session registry, the live set behind the
// /sessions introspection endpoints (sessiontrack.Mount).
func (s *Server) Sessions() *sessiontrack.Registry { return s.track }

// Addr returns the listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// ListenAndServe binds addr and serves until Shutdown/Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("serve: server closed")

// Serve accepts sessions on ln until the listener is closed by Shutdown or
// Close, then returns ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() || s.stopped() {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) stopped() bool {
	select {
	case <-s.hardStop:
		return true
	default:
		return false
	}
}

// Shutdown drains the server: the listener stops accepting, every live
// session stops reading, already-received frames are processed and
// acknowledged, and each session gets its final Summary (Drained=true)
// before its connection closes. If ctx expires first the remaining sessions
// are cut hard and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	// BeginDrain atomically stops registration and snapshots the live set:
	// every session either gets a Drain below or was refused registration —
	// the race that used to need the server's own session map is gone.
	live := s.track.BeginDrain()
	for _, sess := range live {
		sess.Drain()
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.stopOnce.Do(func() { close(s.hardStop) })
		for _, sess := range live {
			sess.Kill()
		}
		<-done
	}
	s.stopWorkers()
	return err
}

// Close stops the server immediately: live sessions are cut without
// summaries. Prefer Shutdown.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.hardStop) })
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	for _, sess := range s.track.BeginDrain() {
		sess.Kill()
	}
	s.connWG.Wait()
	s.stopWorkers()
	return nil
}

// stopWorkers closes the shard queues (all producers have exited by now) and
// waits for the workers. Safe to reach from both Shutdown and Close.
func (s *Server) stopWorkers() {
	s.workersOnce.Do(func() {
		for _, sh := range s.shards {
			close(sh.queue)
		}
	})
	s.shardWG.Wait()
}

// run is a shard worker: it owns the predictor state of every session pinned
// to this shard and processes their frames in arrival order. A predictor
// panic kills the offending session only — the recover sits inside
// session.processFrame, mirroring the sim engine's lane isolation.
func (sh *shard) run(s *Server) {
	for j := range sh.queue {
		s.m.queueDepth.Add(-1)
		sess := j.sess
		switch {
		case sess.dead.Load():
			// Session already failed; its queued work is void.
			j.buf.Release()
		case j.done:
			sess.emitSummary(false)
		case j.drain:
			sess.emitSummary(true)
		default:
			sess.processFrame(j)
		}
	}
}

// enqueue places a job on the shard's bounded queue, blocking (and thereby
// backpressuring the session's TCP reader) while the queue is full. It
// aborts only on a hard server stop, releasing the job's buffer — once
// enqueued, ownership is the worker's.
func (s *Server) enqueue(sh *shard, j job) bool {
	select {
	case sh.queue <- j:
		s.m.queueDepth.Add(1)
		return true
	case <-s.hardStop:
		j.buf.Release()
		return false
	}
}

// shardFor pins a new session to a shard by FNV-1a hash of its first
// record's PC. Pinning is per-session — records of one session must hit one
// predictor in order, or global-history state (and the bit-identical
// equivalence with sim.Run) would be destroyed.
func (s *Server) shardFor(pc uint32) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < 4; i++ {
		h ^= pc >> (8 * i) & 0xff
		h *= prime32
	}
	return s.shards[h%uint32(len(s.shards))]
}

// handleConn is a session's reader goroutine: handshake, then the frame
// read loop feeding the session's shard.
func (s *Server) handleConn(conn net.Conn) {
	log := s.cfg.Log
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	var pre [len(Preamble) + 1]byte
	if _, err := io.ReadFull(conn, pre[:]); err != nil {
		log.Debug("preamble read failed", "err", err)
		conn.Close()
		return
	}
	if string(pre[:len(Preamble)]) != Preamble || pre[len(Preamble)] != ProtocolVersion {
		log.Debug("bad preamble", "bytes", fmt.Sprintf("%x", pre))
		conn.Close()
		return
	}
	fr := trace.NewPooledFrameReader(conn, s.cfg.MaxFramePayload, s.pool)
	sess, err := s.openSession(conn, fr)
	if err != nil {
		// openSession already wrote the error frame where possible.
		log.Debug("session open failed", "err", err)
		conn.Close()
		return
	}
	log.Info("session open", "session", sess.id, "benchmark", sess.hello.Benchmark,
		"predictor", sess.predName, "events", sess.events, "window", sess.window)
	sess.readLoop(fr)
}

// writeDirect writes one frame straight to the connection (used before the
// session writer exists).
func (s *Server) writeDirect(conn net.Conn, typ uint64, payload []byte) {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	fw := trace.NewFrameWriter(conn)
	fw.WriteFrame(typ, payload)
	fw.Flush()
}

// openSession performs the Hello/HelloAck handshake and registers the
// session (starting its writer goroutine).
func (s *Server) openSession(conn net.Conn, fr *trace.FrameReader) (*session, error) {
	f, err := fr.Next()
	if err != nil {
		return nil, fmt.Errorf("hello frame: %w", err)
	}
	defer f.Release() // borrowed payload; the decoded Hello below outlives it
	if f.Type != FrameHello {
		s.writeDirect(conn, FrameError, marshalJSON(&WireError{Code: CodeBadHello, Msg: "first frame must be Hello"}))
		return nil, fmt.Errorf("first frame type %#x", f.Type)
	}
	var hello Hello
	if err := unmarshalPayload(f.Payload, &hello); err != nil {
		s.writeDirect(conn, FrameError, marshalJSON(&WireError{Code: CodeBadHello, Msg: err.Error()}))
		return nil, err
	}
	// A malformed per-session tuner policy is a handshake error, like a bad
	// predictor spec; validated even when tuning is off so the spec's
	// meaning never depends on server flags.
	policy := s.cfg.Tuner.DefaultPolicy()
	if hello.TunerPolicy != "" {
		var err error
		if policy, err = tuner.ParsePolicy(hello.TunerPolicy); err != nil {
			s.writeDirect(conn, FrameError, marshalJSON(&WireError{Code: CodeBadHello, Msg: err.Error()}))
			return nil, err
		}
	}
	pf := s.cfg.Predictor
	if hello.Predictor != nil {
		pf = *hello.Predictor
	}
	if err := pf.Validate(); err != nil {
		s.writeDirect(conn, FrameError, marshalJSON(&WireError{Code: CodeBadHello, Msg: err.Error()}))
		return nil, err
	}
	pred, err := pf.Build()
	if err != nil {
		s.writeDirect(conn, FrameError, marshalJSON(&WireError{Code: CodeBadHello, Msg: err.Error()}))
		return nil, err
	}
	if hello.Warmup < 0 {
		s.writeDirect(conn, FrameError, marshalJSON(&WireError{Code: CodeBadHello, Msg: "negative warmup"}))
		return nil, fmt.Errorf("negative warmup %d", hello.Warmup)
	}
	window := hello.Window
	if window <= 0 || window > s.cfg.Window {
		window = s.cfg.Window
	}
	sess := newSession(s, conn, pred, hello, window)
	traceID := hello.TraceID
	if traceID == "" && s.cfg.Flight.Enabled() {
		traceID = s.cfg.Flight.NextTraceID()
	}
	meta := sessiontrack.Meta{
		Kind:      sessiontrack.KindServe,
		Benchmark: hello.Benchmark,
		Tenant:    hello.Tenant,
		Predictor: sess.predName,
		TraceID:   traceID,
		Window:    window,
		Upstream:  hello.RouterSession,
	}
	if ts, ok := pred.(core.TableStatser); ok {
		sess.statser = ts
		meta.Tables = ts.TableStats() // baseline for /sessions/{id} deltas
	}
	entry, err := s.track.Register(sess, meta)
	if err != nil {
		return nil, err // draining: no new sessions
	}
	sess.id = entry.ID()
	sess.track = entry
	sess.tracer = s.cfg.Flight.Tracer(traceID, sess.id)
	// Events sessions are not tuned: event frames already shipped under the
	// old predictor could not be reconciled with a swap's replayed
	// accounting, so the deterministic choice is to skip them.
	if s.cfg.Tuner != nil && !hello.Events {
		sess.tun = s.cfg.Tuner.Session(policy, pf, entry)
		if sess.tun != nil {
			if a, ok := pred.(core.Attributor); ok {
				a.SetAttribution(true)
				sess.attrib = a
			}
		}
	}
	s.m.sessionsTotal.Inc()
	s.m.sessionsActive.Add(1)

	s.connWG.Add(1)
	go func() {
		defer s.connWG.Done()
		sess.writeLoop()
	}()
	sess.send(outMsg{typ: FrameHelloAck, payload: marshalJSON(HelloAck{
		Session:         sess.id,
		Predictor:       sess.predName,
		Window:          window,
		MaxFramePayload: s.cfg.MaxFramePayload,
		MaxFrameRecords: s.cfg.MaxFrameRecords,
		Events:          hello.Events,
		TraceID:         sess.tracer.TraceID(),
	})})
	return sess, nil
}

// unregister removes the session from the live set. The registry's
// exactly-once Unregister keys the gauge decrement, so no combination of
// exit paths (summary, fail, shed, hard close, drain race) can decrement
// twice or leave serve_sessions_active elevated.
func (s *Server) unregister(sess *session) {
	if s.track.Unregister(sess.track) {
		s.m.sessionsActive.Add(-1)
		sess.tun.Close()
	}
}
