package serve

import (
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/trace"
)

// outMsg is one frame queued for a session's writer goroutine.
type outMsg struct {
	typ     uint64
	payload []byte
	// final closes the connection after this frame flushes (the last frame
	// of a session: Summary or Error).
	final bool
}

// session is one client connection's state. The reader goroutine
// (Server.handleConn) decodes frames and feeds the session's shard; the
// shard worker owns the predictor and the accounting; the writer goroutine
// owns the connection's write side. The worker-owned fields are never
// touched by the other two goroutines.
type session struct {
	id   uint64
	srv  *Server
	conn net.Conn

	hello    Hello
	predName string
	window   int
	events   bool

	// reader-owned
	nextSeq uint64
	shard   *shard

	// shared
	inflight atomic.Int32
	dead     atomic.Bool
	draining atomic.Bool
	out      chan outMsg
	stop     chan struct{}
	stopOnce sync.Once

	// worker-owned: the predictor and sim-equivalent accounting
	pred     core.Predictor
	condObs  core.CondObserver
	seen     int
	executed int
	misses   int
	noPred   int
	frames   int
	records  int
	evBuf    []EventRec
}

func newSession(s *Server, conn net.Conn, pred core.Predictor, hello Hello, window int) *session {
	sess := &session{
		srv:      s,
		conn:     conn,
		hello:    hello,
		pred:     pred,
		predName: pred.Name(),
		window:   window,
		events:   hello.Events,
		// Each processed frame queues at most two messages (events + ack);
		// the handshake and final summary ride in the slack. The writer
		// drains continuously, so the channel only fills when the client
		// stops reading — which send turns into a shed session rather than
		// a stalled shard.
		out:  make(chan outMsg, 2*window+8),
		stop: make(chan struct{}),
	}
	sess.condObs, _ = pred.(core.CondObserver)
	return sess
}

// send queues a frame for the writer without ever blocking the caller (shard
// workers must not stall on one slow client). A full queue means the client
// stopped consuming acks faster than the window allows: the session is shed.
func (sess *session) send(m outMsg) bool {
	select {
	case sess.out <- m:
		return true
	default:
		sess.fail(CodeOverload, "response queue overflow: client not consuming acks")
		return false
	}
}

// fail marks the session dead exactly once and tears the connection down.
// The session counts as dropped (it will never get a Summary).
func (sess *session) fail(code, msg string) {
	if !sess.dead.CompareAndSwap(false, true) {
		return
	}
	sess.srv.m.sessionsDropped.Inc()
	sess.srv.cfg.Log.Warn("session dropped", "session", sess.id, "code", code, "err", msg)
	sess.srv.unregister(sess)
	// Best effort: tell the client why. If the writer is gone or the queue
	// is full the close alone has to do.
	select {
	case sess.out <- outMsg{typ: FrameError, payload: marshalJSON(&WireError{Code: code, Msg: msg}), final: true}:
	default:
		sess.stopOnce.Do(func() { close(sess.stop) })
	}
}

// beginDrain marks the session draining and kicks its reader off the socket
// (an immediate read deadline); the reader then queues the drain sentinel
// behind any frames already accepted, so everything acknowledged — or about
// to be — lands in the final summary.
func (sess *session) beginDrain() {
	sess.draining.Store(true)
	sess.conn.SetReadDeadline(time.Now())
}

// hardClose cuts the session without ceremony (forced shutdown).
func (sess *session) hardClose() {
	sess.dead.Store(true)
	sess.srv.unregister(sess)
	sess.stopOnce.Do(func() { close(sess.stop) })
}

// writeLoop is the session's writer goroutine: it owns conn's write side,
// flushing after draining whatever is queued.
func (sess *session) writeLoop() {
	fw := trace.NewFrameWriter(sess.conn)
	flushAndMaybeClose := func(final bool) bool {
		sess.conn.SetWriteDeadline(time.Now().Add(sess.srv.cfg.WriteTimeout))
		if err := fw.Flush(); err != nil {
			sess.fail(CodeOverload, fmt.Sprintf("write: %v", err))
			sess.conn.Close()
			return false
		}
		if final {
			sess.conn.Close()
		}
		return !final
	}
	for {
		select {
		case m := <-sess.out:
			final := m.final
			fw.WriteFrame(m.typ, m.payload)
			// Batch everything already queued into one flush.
			for !final {
				select {
				case n := <-sess.out:
					fw.WriteFrame(n.typ, n.payload)
					final = n.final
				default:
					goto flush
				}
			}
		flush:
			if !flushAndMaybeClose(final) {
				return
			}
		case <-sess.stop:
			sess.conn.Close()
			return
		}
	}
}

// readLoop decodes client frames until Done, drain, or failure, feeding the
// session's shard. It owns nextSeq and the shard assignment.
func (sess *session) readLoop(fr *trace.FrameReader) {
	s := sess.srv
	for {
		if sess.dead.Load() {
			return
		}
		if sess.draining.Load() {
			break
		}
		sess.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		// Re-check after arming the deadline: beginDrain sets the draining
		// flag before it sets its immediate deadline, so whichever deadline
		// write lands last, either this check breaks or the read times out
		// at once — the reader can never sleep a full ReadTimeout into a
		// drain.
		if sess.draining.Load() {
			break
		}
		f, err := fr.Next()
		if err != nil {
			if sess.draining.Load() {
				break
			}
			if sess.dead.Load() {
				return
			}
			if err == io.EOF {
				sess.fail(CodeBadFrame, "client closed before Done")
			} else {
				sess.fail(CodeBadFrame, err.Error())
			}
			return
		}
		switch f.Type {
		case FrameRecords:
			seq, recs, err := decodeRecordsFrame(f.Payload, s.cfg.MaxFrameRecords)
			if err != nil {
				sess.fail(CodeBadFrame, err.Error())
				return
			}
			if seq != sess.nextSeq+1 {
				sess.fail(CodeBadSeq, fmt.Sprintf("frame seq %d, want %d", seq, sess.nextSeq+1))
				return
			}
			sess.nextSeq = seq
			if int(sess.inflight.Add(1)) > sess.window+1 {
				// +1 of slack: the client legitimately sends the next frame
				// the instant an ack is on the wire.
				sess.fail(CodeOverLimit, fmt.Sprintf("window overflow: %d frames in flight, window %d", sess.inflight.Load(), sess.window))
				return
			}
			if sess.shard == nil {
				var pc uint32
				if len(recs) > 0 {
					pc = recs[0].PC
				}
				sess.shard = s.shardFor(pc)
			}
			if !s.enqueue(sess.shard, job{sess: sess, seq: seq, recs: recs}) {
				return // hard stop
			}
		case FrameDone:
			if sess.shard == nil {
				// No records ever arrived; summarize from any shard.
				sess.shard = s.shardFor(0)
			}
			s.enqueue(sess.shard, job{sess: sess, done: true})
			return
		default:
			// Unknown-but-checksummed client frame: skip it, mirroring the
			// trace format's forward-compatibility rule.
		}
	}
	// Drain path: everything already queued will be processed; the sentinel
	// asks the worker to summarize after it.
	if sess.shard == nil {
		sess.shard = s.shardFor(0)
	}
	s.enqueue(sess.shard, job{sess: sess, drain: true})
}

// processFrame runs one records frame through the session predictor with the
// sim engine's exact accounting, then queues the (events and) ack frames.
// A predictor panic is confined to this session, like a sim lane's.
func (sess *session) processFrame(seq uint64, recs trace.Trace) {
	defer func() {
		if r := recover(); r != nil {
			sess.srv.m.panics.Inc()
			sess.fail(CodePredictor, fmt.Sprintf("predictor panicked: %v\n%s", r, debug.Stack()))
		}
	}()
	m := sess.srv.m
	exec0, miss0 := sess.executed, sess.misses
	evs := sess.evBuf[:0]
	for _, r := range recs {
		switch {
		case r.Kind == trace.Cond:
			if sess.condObs != nil {
				sess.condObs.ObserveCond(r.PC, r.Target, r.Target != 0)
			}
			continue
		case !r.Kind.Indirect():
			continue
		}
		pred, ok := sess.pred.Predict(r.PC)
		sess.pred.Update(r.PC, r.Target)
		sess.seen++
		miss := !ok || pred != r.Target
		if sess.events {
			evs = append(evs, EventRec{
				PC:        r.PC,
				Predicted: pred,
				Actual:    r.Target,
				HasPred:   ok,
				Miss:      miss,
				Warmup:    sess.seen <= sess.hello.Warmup,
			})
		}
		if sess.seen <= sess.hello.Warmup {
			continue
		}
		sess.executed++
		if miss {
			sess.misses++
			if !ok {
				sess.noPred++
			}
		}
	}
	sess.frames++
	sess.records += len(recs)
	m.frames.Inc()
	m.records.Add(uint64(len(recs)))
	m.misses.Add(uint64(sess.misses - miss0))
	ack := Ack{
		Seq:               seq,
		Records:           len(recs),
		Executed:          sess.executed - exec0,
		Misses:            sess.misses - miss0,
		TotalExecuted:     sess.executed,
		TotalMisses:       sess.misses,
		TotalNoPrediction: sess.noPred,
	}
	if sess.events {
		payload := appendEvents(nil, seq, evs)
		sess.evBuf = evs[:0] // keep the grown buffer for the next frame
		if !sess.send(outMsg{typ: FrameEvents, payload: payload}) {
			return
		}
	}
	sess.inflight.Add(-1)
	if sess.send(outMsg{typ: FrameAck, payload: appendAck(nil, ack)}) {
		m.acks.Inc()
	}
}

// emitSummary finishes the session: the final Summary frame reflects every
// frame the worker processed (every acknowledged frame in particular), then
// the writer closes the connection.
func (sess *session) emitSummary(drained bool) {
	if drained {
		sess.srv.m.drains.Inc()
	}
	sum := Summary{
		Session:      sess.id,
		Benchmark:    sess.hello.Benchmark,
		Predictor:    sess.predName,
		Frames:       sess.frames,
		Records:      sess.records,
		Executed:     sess.executed,
		Misses:       sess.misses,
		NoPrediction: sess.noPred,
		Warmup:       sess.hello.Warmup,
		Drained:      drained,
	}
	if sum.Executed > 0 {
		sum.MissRate = 100 * float64(sum.Misses) / float64(sum.Executed)
	}
	sess.srv.cfg.Log.Info("session summary", "session", sess.id,
		"benchmark", sum.Benchmark, "frames", sum.Frames, "records", sum.Records,
		"executed", sum.Executed, "misses", sum.Misses, "missRate", sum.MissRate,
		"drained", drained)
	sess.srv.unregister(sess)
	sess.send(outMsg{typ: FrameSummary, payload: marshalJSON(sum), final: true})
}
