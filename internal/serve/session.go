package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/sessiontrack"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/tuner"
)

// outMsg is one frame queued for a session's writer goroutine. buf, when
// non-nil, is the pooled buffer backing payload; the writer (or whoever
// drops the message) releases it once the bytes are on the wire.
type outMsg struct {
	typ     uint64
	payload []byte
	buf     *trace.PooledBuf
	// span, when non-nil, is the frame span riding with an ack: the writer
	// stamps its ack-write hop after the flush that carried it and then
	// publishes it to the flight recorder.
	span *flight.Span
	// final closes the connection after this frame flushes (the last frame
	// of a session: Summary or Error).
	final bool
}

// session is one client connection's state. The reader goroutine
// (Server.handleConn) decodes frames and feeds the session's shard; the
// shard worker owns the predictor and the accounting; the writer goroutine
// owns the connection's write side. The worker-owned fields are never
// touched by the other two goroutines.
type session struct {
	id   uint64
	srv  *Server
	conn net.Conn

	hello    Hello
	predName string
	window   int
	events   bool
	// tracer mints a flight span per records frame; nil when tracing is off
	// (the zero-cost path). Set before the reader starts, read-only after.
	tracer *flight.Tracer
	// track is the session's stats entry in the introspection registry,
	// updated once per frame from the clock reads the frame path already
	// takes. Set before the reader starts, read-only after.
	track *sessiontrack.Session

	// reader-owned
	nextSeq uint64
	shard   *shard

	// shared
	inflight atomic.Int32
	dead     atomic.Bool
	draining atomic.Bool
	out      chan outMsg
	stop     chan struct{}
	stopOnce sync.Once

	// worker-owned: the predictor and sim-equivalent accounting
	pred     core.Predictor
	statser  core.TableStatser // pred's table stats view; nil when unsupported
	condObs  core.CondObserver
	seen     int
	executed int
	misses   int
	noPred   int
	frames   int
	records  int
	evBuf    []EventRec

	// tun is the session's adaptation-plane state (nil when tuning is off);
	// attrib is pred's attribution view feeding the tuner's miss sketch.
	// hist retains the session's record frames for the swap replay as views
	// into block-granular arena allocations (histArena is the current fill
	// block) — no reallocation ever copies a retained frame twice.
	// Worker-owned like the predictor, so a hot swap needs no locks.
	tun        *tuner.SessionTuner
	attrib     core.Attributor
	hist       [][]byte
	histBlocks []*histBlock
	histArena  []byte
	histBytes  int
}

// histBlockSize is the arena block granularity for retained frame history:
// large enough that a 30k-record session costs a handful of allocations,
// small enough that a short-lived session doesn't strand much memory.
const histBlockSize = 256 << 10

// histBlock is one history arena block. Blocks are recycled through the
// server's histPool, so steady-state tuned traffic retains history without
// allocating — only the per-frame copy remains.
type histBlock [histBlockSize]byte

// dropHistory returns the session's arena blocks to the server pool and
// forgets the retained frames. Worker-goroutine only (the worker owns hist,
// and a block must not be reused while a queued frame could still append).
func (sess *session) dropHistory() {
	for _, blk := range sess.histBlocks {
		sess.srv.histPool.Put(blk)
	}
	sess.histBlocks, sess.hist, sess.histArena, sess.histBytes = nil, nil, nil, 0
}

func newSession(s *Server, conn net.Conn, pred core.Predictor, hello Hello, window int) *session {
	sess := &session{
		srv:      s,
		conn:     conn,
		hello:    hello,
		pred:     pred,
		predName: pred.Name(),
		window:   window,
		events:   hello.Events,
		// Each processed frame queues at most two messages (events + ack);
		// the handshake and final summary ride in the slack. The writer
		// drains continuously, so the channel only fills when the client
		// stops reading — which send turns into a shed session rather than
		// a stalled shard.
		out:  make(chan outMsg, 2*window+8),
		stop: make(chan struct{}),
	}
	sess.condObs, _ = pred.(core.CondObserver)
	return sess
}

// send queues a frame for the writer without ever blocking the caller (shard
// workers must not stall on one slow client). A full queue means the client
// stopped consuming acks faster than the window allows: the session is shed.
// A message that does not make it to the writer has its buffer released here.
func (sess *session) send(m outMsg) bool {
	if sess.dead.Load() {
		// The writer may already be gone; do not strand a pooled buffer in
		// the queue.
		m.buf.Release()
		return false
	}
	select {
	case sess.out <- m:
		return true
	default:
		m.buf.Release()
		sess.fail(CodeOverload, "response queue overflow: client not consuming acks")
		return false
	}
}

// fail marks the session dead exactly once and tears the connection down.
// The session counts as dropped (it will never get a Summary).
func (sess *session) fail(code, msg string) {
	if !sess.dead.CompareAndSwap(false, true) {
		return
	}
	sess.srv.m.sessionsDropped.Inc()
	sess.srv.cfg.Log.Warn("session dropped", "session", sess.id, "code", code, "err", msg)
	sess.srv.unregister(sess)
	// Best effort: tell the client why. If the writer is gone or the queue
	// is full the close alone has to do.
	select {
	case sess.out <- outMsg{typ: FrameError, payload: marshalJSON(&WireError{Code: code, Msg: msg}), final: true}:
	default:
		sess.stopOnce.Do(func() { close(sess.stop) })
	}
}

// beginDrain marks the session draining and kicks its reader off the socket
// (an immediate read deadline); the reader then queues the drain sentinel
// behind any frames already accepted, so everything acknowledged — or about
// to be — lands in the final summary.
func (sess *session) beginDrain() {
	sess.draining.Store(true)
	sess.conn.SetReadDeadline(time.Now())
}

// hardClose cuts the session without ceremony (forced shutdown).
func (sess *session) hardClose() {
	sess.dead.Store(true)
	sess.srv.unregister(sess)
	sess.stopOnce.Do(func() { close(sess.stop) })
}

// Drain and Kill implement sessiontrack.Conn: the registry's drain
// handshake maps onto the session's graceful drain and hard close.
func (sess *session) Drain() { sess.beginDrain() }
func (sess *session) Kill()  { sess.hardClose() }

// Retune implements sessiontrack.Retuner: the /sessions/{id}/retune admin
// verb forces a tuner decision at the session's next frame boundary.
func (sess *session) Retune() bool { return sess.tun.Retune() }

// writeLoop is the session's writer goroutine: it owns conn's write side.
// Every wakeup gathers all queued frames into one FrameBatcher flush — a
// single (vectored, when payloads are spliced) write per wakeup instead of
// one buffered write+flush per frame.
func (sess *session) writeLoop() {
	var fb trace.FrameBatcher
	// Release anything still queued when the writer exits; the dead flag is
	// set on every exit path first, so send drops (and releases) later
	// messages itself.
	defer func() {
		for {
			select {
			case m := <-sess.out:
				m.buf.Release()
			default:
				return
			}
		}
	}()
	var spans []*flight.Span // acks in the current batch, for post-flush stamping
	for {
		select {
		case m := <-sess.out:
			final := m.final
			fb.Add(m.typ, m.payload, m.buf)
			if m.span != nil {
				spans = append(spans, m.span)
			}
			// Batch everything already queued into one write.
			for !final {
				select {
				case n := <-sess.out:
					fb.Add(n.typ, n.payload, n.buf)
					if n.span != nil {
						spans = append(spans, n.span)
					}
					final = n.final
				default:
					goto flush
				}
			}
		flush:
			sess.srv.m.ackBatchSize.Set(float64(fb.Frames()))
			sess.conn.SetWriteDeadline(time.Now().Add(sess.srv.cfg.WriteTimeout))
			flushStart := time.Now()
			if err := fb.Flush(sess.conn); err != nil {
				sess.fail(CodeOverload, fmt.Sprintf("write: %v", err))
				sess.conn.Close()
				return
			}
			sess.srv.m.ackFlush.Observe(time.Since(flushStart))
			if len(spans) > 0 {
				// One clock read serves the whole flushed batch: every ack in
				// it hit the wire in the same writev.
				now := time.Now().UnixNano()
				for i, sp := range spans {
					sp.StampAt(flight.HopServerAckWrite, now)
					sp.Finish()
					spans[i] = nil
				}
				spans = spans[:0]
			}
			if final {
				sess.conn.Close()
				return
			}
		case <-sess.stop:
			sess.dead.Store(true)
			sess.conn.Close()
			return
		}
	}
}

// readLoop decodes client frames until Done, drain, or failure, feeding the
// session's shard. It owns nextSeq and the shard assignment.
func (sess *session) readLoop(fr *trace.FrameReader) {
	s := sess.srv
	for {
		if sess.dead.Load() {
			return
		}
		if sess.draining.Load() {
			break
		}
		sess.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		// Re-check after arming the deadline: beginDrain sets the draining
		// flag before it sets its immediate deadline, so whichever deadline
		// write lands last, either this check breaks or the read times out
		// at once — the reader can never sleep a full ReadTimeout into a
		// drain.
		if sess.draining.Load() {
			break
		}
		f, err := fr.Next()
		if err != nil {
			if sess.draining.Load() {
				break
			}
			if sess.dead.Load() {
				return
			}
			if err == io.EOF {
				sess.fail(CodeBadFrame, "client closed before Done")
			} else {
				sess.fail(CodeBadFrame, err.Error())
			}
			return
		}
		switch f.Type {
		case FrameRecords:
			// The reader only peels the sequence number and (for shard
			// pinning) peeks the first PC; the chunk itself is validated by
			// the worker while it iterates the borrowed payload in place.
			seq, chunk, err := splitRecordsFrame(f.Payload)
			if err != nil {
				f.Release()
				sess.fail(CodeBadFrame, err.Error())
				return
			}
			if seq != sess.nextSeq+1 {
				f.Release()
				sess.fail(CodeBadSeq, fmt.Sprintf("frame seq %d, want %d", seq, sess.nextSeq+1))
				return
			}
			sess.nextSeq = seq
			sess.track.AddInflight(1)
			if int(sess.inflight.Add(1)) > sess.window+1 {
				// +1 of slack: the client legitimately sends the next frame
				// the instant an ack is on the wire.
				f.Release()
				sess.fail(CodeOverLimit, fmt.Sprintf("window overflow: %d frames in flight, window %d", sess.inflight.Load(), sess.window))
				return
			}
			if sess.shard == nil {
				pc, _ := trace.PeekFirstPC(chunk)
				sess.shard = s.shardFor(pc)
			}
			// One clock read per frame (amortized over its ~thousands of
			// records) feeds the queue-wait/latency histograms and, when
			// tracing is on, the span's receive stamp.
			recvNS := time.Now().UnixNano()
			sp := sess.tracer.Start(seq)
			sp.StampAt(flight.HopServerRecv, recvNS)
			// Stamped before enqueue so a blocked (backpressured) enqueue
			// shows up in the enqueue→dequeue gap, where it belongs.
			sp.Stamp(flight.HopServerEnqueue)
			if !s.enqueue(sess.shard, job{sess: sess, seq: seq, chunk: chunk, buf: f.Buffer(), recvNS: recvNS, span: sp}) {
				// Hard stop; enqueue released the buffer. Take the session
				// off the books — no worker will ever summarize it.
				sess.hardClose()
				return
			}
		case FrameDone:
			f.Release()
			if sess.shard == nil {
				// No records ever arrived; summarize from any shard.
				sess.shard = s.shardFor(0)
			}
			if !s.enqueue(sess.shard, job{sess: sess, done: true}) {
				// Hard stop swallowed the sentinel: emitSummary will never
				// run, so close here or the session stays registered and
				// serve_sessions_active never comes back down.
				sess.hardClose()
			}
			return
		default:
			// Unknown-but-checksummed client frame: skip it, mirroring the
			// trace format's forward-compatibility rule.
			f.Release()
		}
	}
	// Drain path: everything already queued will be processed; the sentinel
	// asks the worker to summarize after it.
	if sess.shard == nil {
		sess.shard = s.shardFor(0)
	}
	if !s.enqueue(sess.shard, job{sess: sess, drain: true}) {
		// Shed during the drain race (hard stop beat the sentinel): no
		// summary is coming, so the session must take itself off the books.
		sess.hardClose()
	}
}

// processFrame drives the session predictor straight off a RecordIter over
// the borrowed chunk — the sim engine's exact accounting with no []Record
// materialization — then queues the (events and) ack frames from pooled
// payload buffers and releases the chunk's buffer. A predictor panic is
// confined to this session, like a sim lane's.
func (sess *session) processFrame(j job) {
	seq, chunk, buf := j.seq, j.chunk, j.buf
	defer buf.Release()
	defer func() {
		if r := recover(); r != nil {
			sess.srv.m.panics.Inc()
			sess.fail(CodePredictor, fmt.Sprintf("predictor panicked: %v\n%s", r, debug.Stack()))
		}
	}()
	s := sess.srv
	m := s.m
	startNS := time.Now().UnixNano()
	j.span.StampAt(flight.HopServerDequeue, startNS)
	m.queueWait.Observe(time.Duration(startNS - j.recvNS))
	it, err := trace.NewRecordIter(chunk, s.cfg.MaxFrameRecords)
	if err != nil {
		sess.fail(CodeBadFrame, err.Error())
		return
	}
	exec0, miss0 := sess.executed, sess.misses
	evs := sess.evBuf[:0]
	nrecs := 0
	var batch [256]trace.Record
	for {
		bn := it.NextBatch(batch[:])
		if bn == 0 {
			break
		}
		nrecs += bn
		for _, r := range batch[:bn] {
			switch {
			case r.Kind == trace.Cond:
				if sess.condObs != nil {
					sess.condObs.ObserveCond(r.PC, r.Target, r.Target != 0)
				}
				continue
			case !r.Kind.Indirect():
				continue
			}
			pred, ok := sess.pred.Predict(r.PC)
			sess.pred.Update(r.PC, r.Target)
			sess.seen++
			miss := !ok || pred != r.Target
			if sess.events {
				evs = append(evs, EventRec{
					PC:        r.PC,
					Predicted: pred,
					Actual:    r.Target,
					HasPred:   ok,
					Miss:      miss,
					Warmup:    sess.seen <= sess.hello.Warmup,
				})
			}
			if sess.seen <= sess.hello.Warmup {
				continue
			}
			sess.executed++
			if miss {
				sess.misses++
				if !ok {
					sess.noPred++
				}
				if sess.tun != nil {
					// Feed the miss sketch — only misses are classified, so
					// correctly predicted records pay the tuner nothing.
					// Attribution when the predictor records it, else the
					// bare hit bit.
					if sess.attrib != nil {
						at := sess.attrib.Attribution()
						sess.tun.ObserveMiss(at.TableHit, at.AltCorrect, at.NewEntry, at.Evicted)
					} else {
						sess.tun.ObserveMiss(ok, false, false, false)
					}
				}
			}
		}
	}
	if err := it.Err(); err != nil {
		// The predictor already saw the frame's valid prefix, but a session
		// that ships a malformed chunk never reaches a Summary, so the
		// bit-identical accounting contract is unaffected.
		sess.fail(CodeBadFrame, fmt.Sprintf("trace: records payload: %v", err))
		return
	}
	sess.frames++
	sess.records += nrecs
	doneNS := time.Now().UnixNano()
	j.span.StampAt(flight.HopServerPredict, doneNS)
	j.span.SetRecords(nrecs)
	// Session introspection rides the clock reads this path already takes:
	// one stats update per frame, zero allocations. The (allocating) table
	// stats refresh is amortized to every 16th frame — the predictor is
	// worker-owned, so only this goroutine may read it.
	sess.track.FrameProcessed(doneNS, nrecs, sess.executed-exec0, sess.misses-miss0,
		time.Duration(startNS-j.recvNS))
	if sess.statser != nil && sess.frames&0xf == 0 {
		sess.track.UpdateTables(sess.statser.TableStats())
	}
	m.predictTime.Observe(time.Duration(doneNS - startNS))
	m.frameLatency.Observe(time.Duration(doneNS - j.recvNS))
	m.frames.Inc()
	m.records.Add(uint64(nrecs))
	m.misses.Add(uint64(sess.misses - miss0))
	ack := Ack{
		Seq:               seq,
		Records:           nrecs,
		Executed:          sess.executed - exec0,
		Misses:            sess.misses - miss0,
		TotalExecuted:     sess.executed,
		TotalMisses:       sess.misses,
		TotalNoPrediction: sess.noPred,
	}
	if sess.events {
		// Worst case per event: three 5-byte varints plus the flags byte.
		eb := s.pool.Get(16*len(evs) + 2*binary.MaxVarintLen64)
		payload := appendEvents(eb.Bytes()[:0], seq, evs)
		sess.evBuf = evs[:0] // keep the grown buffer for the next frame
		if !sess.send(outMsg{typ: FrameEvents, payload: payload, buf: eb}) {
			return
		}
	}
	sess.inflight.Add(-1)
	sess.track.AddInflight(-1)
	ab := s.pool.Get(ackPayloadMax)
	payload := appendAck(ab.Bytes()[:0], ack)
	// The span rides the ack to the writer, which stamps the ack-write hop
	// post-flush and publishes it; a shed message simply drops the span.
	if sess.send(outMsg{typ: FrameAck, payload: payload, buf: ab, span: j.span}) {
		m.acks.Inc()
	}
	// The frame boundary is the tuner's only legal act point; the ack above
	// still carries the pre-swap totals, the next one reflects the replayed
	// accounting.
	if sess.tun != nil {
		sess.tunerFrameEnd(chunk, sess.executed-exec0, sess.misses-miss0)
	}
}

// ackPayloadMax is an Ack payload's encoded size bound: seven uvarints.
const ackPayloadMax = 7 * binary.MaxVarintLen64

// emitSummary finishes the session: the final Summary frame reflects every
// frame the worker processed (every acknowledged frame in particular), then
// the writer closes the connection.
func (sess *session) emitSummary(drained bool) {
	if drained {
		sess.srv.m.drains.Inc()
	}
	// The Done/drain job is the last the worker runs for this session, so
	// its retained tuner history can be recycled here, on the owning worker.
	sess.dropHistory()
	sum := Summary{
		Session:      sess.id,
		Benchmark:    sess.hello.Benchmark,
		Predictor:    sess.predName,
		Frames:       sess.frames,
		Records:      sess.records,
		Executed:     sess.executed,
		Misses:       sess.misses,
		NoPrediction: sess.noPred,
		Warmup:       sess.hello.Warmup,
		Drained:      drained,
	}
	if sum.Executed > 0 {
		sum.MissRate = 100 * float64(sum.Misses) / float64(sum.Executed)
	}
	sess.srv.cfg.Log.Info("session summary", "session", sess.id,
		"benchmark", sum.Benchmark, "frames", sum.Frames, "records", sum.Records,
		"executed", sum.Executed, "misses", sum.Misses, "missRate", sum.MissRate,
		"drained", drained)
	sess.srv.unregister(sess)
	sess.send(outMsg{typ: FrameSummary, payload: marshalJSON(sum), final: true})
}
