package serve

import (
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/trace"
	"github.com/oocsb/ibp/internal/tuner"
)

// tunerFrameEnd is the act side of the adaptation plane, run at every frame
// boundary of a tuned session (worker goroutine, after the frame's ack is
// queued): retain the frame for replay, let the policy vote, and apply any
// decision as a hot swap.
//
// Swap-determinism contract: a swap replays the session's entire retained
// record stream through a freshly built target predictor and recomputes the
// Summary accounting from scratch, so after the swap the session is
// bit-identical — predictor state and executed/miss/noPred counts — to a
// session that ran the target predictor from its first record. Because
// decisions are made on record-counted windows at frame boundaries (never
// wall clock), a router replaying the journal onto a surviving backend
// drives that backend's tuner through the same decisions at the same
// boundaries: failover converges to the same Summary.
func (sess *session) tunerFrameEnd(chunk []byte, executed, misses int) {
	tun := sess.tun
	if !tun.Stopped() {
		// The just-processed frame joins the history before the vote: the
		// decision point is this frame's boundary, so a swap must replay
		// through it. Frames are copied into block-granular arena
		// allocations — a retained frame is written exactly once.
		if sess.histBytes+len(chunk) > tun.Policy().MaxHistoryBytes {
			tun.HistoryOverflow()
			sess.srv.cfg.Log.Warn("tuner history cap hit; session tuning disabled",
				"session", sess.id, "histBytes", sess.histBytes)
		} else {
			if len(sess.histArena) < len(chunk) {
				if len(chunk) > histBlockSize {
					// Oversize frame: a one-shot slice outside the pool.
					sess.histArena = make([]byte, len(chunk))
				} else {
					blk := sess.srv.histPool.Get().(*histBlock)
					sess.histBlocks = append(sess.histBlocks, blk)
					sess.histArena = blk[:]
				}
			}
			n := copy(sess.histArena, chunk)
			sess.hist = append(sess.hist, sess.histArena[:n:n])
			sess.histArena = sess.histArena[n:]
			sess.histBytes += n
		}
	}
	if d := tun.FrameEnd(executed, misses); d != nil {
		sess.applySwap(d)
	}
	if tun.Stopped() {
		// No further swaps can happen; recycle the history now.
		sess.dropHistory()
	}
}

// applySwap builds the decision's target predictor, replays the retained
// history through it with from-scratch accounting, and installs it as the
// session's predictor. On any failure the session keeps its current
// predictor and the tuner stops (SwapFailed) — never a half-applied swap.
func (sess *session) applySwap(d *tuner.Decision) {
	pred, err := d.Target.Build()
	if err != nil {
		// Unreachable in practice: policy targets are build-checked at
		// parse time. Guarded anyway — a swap must be all or nothing.
		sess.tun.SwapFailed()
		sess.srv.cfg.Log.Warn("tuner swap failed", "session", sess.id, "err", err)
		return
	}
	condObs, _ := pred.(core.CondObserver)
	var attrib core.Attributor
	if a, ok := pred.(core.Attributor); ok {
		a.SetAttribution(true)
		attrib = a
	}
	seen, executed, misses, noPred := 0, 0, 0, 0
	replayed := 0
	var batch [256]trace.Record
	for _, frame := range sess.hist {
		it, err := trace.NewRecordIter(frame, sess.srv.cfg.MaxFrameRecords)
		if err != nil {
			sess.tun.SwapFailed()
			sess.srv.cfg.Log.Warn("tuner swap replay failed", "session", sess.id, "err", err)
			return
		}
		for {
			bn := it.NextBatch(batch[:])
			if bn == 0 {
				break
			}
			replayed += bn
			for _, r := range batch[:bn] {
				switch {
				case r.Kind == trace.Cond:
					if condObs != nil {
						condObs.ObserveCond(r.PC, r.Target, r.Target != 0)
					}
					continue
				case !r.Kind.Indirect():
					continue
				}
				p, ok := pred.Predict(r.PC)
				pred.Update(r.PC, r.Target)
				seen++
				if seen <= sess.hello.Warmup {
					continue
				}
				executed++
				if !ok || p != r.Target {
					misses++
					if !ok {
						noPred++
					}
				}
			}
		}
		if err := it.Err(); err != nil {
			sess.tun.SwapFailed()
			sess.srv.cfg.Log.Warn("tuner swap replay failed", "session", sess.id, "err", err)
			return
		}
	}
	sess.pred = pred
	sess.condObs = condObs
	sess.attrib = attrib
	sess.statser, _ = pred.(core.TableStatser)
	sess.predName = pred.Name()
	sess.seen, sess.executed, sess.misses, sess.noPred = seen, executed, misses, noPred
	sess.tun.SwapApplied(d, sess.predName, replayed)
	if sess.statser != nil {
		sess.track.UpdateTables(sess.statser.TableStats())
	}
	sess.srv.cfg.Log.Info("tuner swap", "session", sess.id, "predictor", sess.predName,
		"escalate", d.Escalate, "reason", d.Reason, "replayedRecords", replayed,
		"missRate", missRatePct(misses, executed))
}

func missRatePct(misses, executed int) float64 {
	if executed == 0 {
		return 0
	}
	return 100 * float64(misses) / float64(executed)
}
