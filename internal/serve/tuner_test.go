package serve

import (
	"strings"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/sim"
	"github.com/oocsb/ibp/internal/tuner"
	"github.com/oocsb/ibp/internal/workload"
)

// aggressivePolicy trips on the first post-warmup window of any real
// workload: every window votes to escalate and one vote is enough.
const aggressivePolicy = "warmup=0;interval=256;miss=0.01;low=0.001;hyst=1;swaps=1;coldmax=1;target=ittage:4,256,2"

func tunedServer(t *testing.T, spec string) (*Server, string) {
	t.Helper()
	policy, err := tuner.ParsePolicy(spec)
	if err != nil {
		t.Fatal(err)
	}
	return startServer(t, Config{
		Shards: 2,
		Window: 4,
		Tuner:  tuner.New(tuner.Options{Policy: policy}),
	})
}

// TestTunerSwapBitReproducible is the tuner's correctness contract: a
// session whose predictor was hot-swapped mid-stream must finish with a
// Summary bit-identical to a session that ran the swap target from its
// first record — the swap replays the whole retained history — and two
// identical runs must land identical summaries (decisions are functions of
// the record stream, never the clock). The tuner CI job greps for this
// test, so it must never t.Skip.
func TestTunerSwapBitReproducible(t *testing.T) {
	const (
		n      = 6000
		warmup = 64
		frame  = 317
	)
	_, addr := tunedServer(t, aggressivePolicy)

	cfg := workload.Suite()[0]
	tr := cfg.MustGenerate(n)

	run := func() Summary {
		t.Helper()
		c, err := Dial(addr, Hello{Benchmark: cfg.Name, Warmup: warmup}, DialOptions{Timeout: 20 * time.Second, Retries: 2})
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		sum, err := c.Stream(tr, frame, nil)
		c.Close()
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		return sum
	}

	sum := run()
	if !strings.HasPrefix(sum.Predictor, "ittage") {
		t.Fatalf("session finished on %q — the tuner never escalated", sum.Predictor)
	}

	// Bit-identical to running the escalation target from the first record.
	target, err := tuner.PredictorFor("ittage:4,256,2")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := target.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run(pred, tr, sim.Options{Warmup: warmup})
	if sum.Executed != want.Executed || sum.Misses != want.Misses || sum.NoPrediction != want.NoPrediction {
		t.Errorf("swapped session: executed/misses/noPred = %d/%d/%d, target-from-start sim = %d/%d/%d",
			sum.Executed, sum.Misses, sum.NoPrediction, want.Executed, want.Misses, want.NoPrediction)
	}
	wantRate := 0.0
	if want.Executed > 0 {
		wantRate = 100 * float64(want.Misses) / float64(want.Executed)
	}
	if sum.MissRate != wantRate {
		t.Errorf("miss rate %v, want %v (must be bit-identical)", sum.MissRate, wantRate)
	}

	// Same trace, same policy: the rerun must land the identical summary.
	again := run()
	if again.Executed != sum.Executed || again.Misses != sum.Misses ||
		again.NoPrediction != sum.NoPrediction || again.MissRate != sum.MissRate ||
		again.Predictor != sum.Predictor {
		t.Errorf("rerun diverged: %+v vs %+v", again, sum)
	}
}

// TestTunerUntunedSessionsUnchanged: with the tuner enabled but thresholds
// unreachable, summaries stay bit-identical to the untuned server.
func TestTunerUntunedSessionsUnchanged(t *testing.T) {
	const (
		n      = 3000
		warmup = 64
		frame  = 257
	)
	_, addr := tunedServer(t, "warmup=0;interval=1000000;miss=0.99;low=0.001")
	cfg := workload.Suite()[0]
	tr := cfg.MustGenerate(n)

	c, err := Dial(addr, Hello{Benchmark: cfg.Name, Warmup: warmup}, DialOptions{Timeout: 20 * time.Second, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Stream(tr, frame, nil)
	c.Close()
	if err != nil {
		t.Fatal(err)
	}
	pred, err := defaultFlags().Build()
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run(pred, tr, sim.Options{Warmup: warmup})
	if sum.Executed != want.Executed || sum.Misses != want.Misses || sum.NoPrediction != want.NoPrediction {
		t.Errorf("idle-tuner session: %d/%d/%d, sim %d/%d/%d",
			sum.Executed, sum.Misses, sum.NoPrediction, want.Executed, want.Misses, want.NoPrediction)
	}
}

// TestTunerHelloPolicyOverride: a session-supplied Hello.TunerPolicy
// replaces the server default, and a malformed one is rejected as BadHello
// even before any tuning happens.
func TestTunerHelloPolicyOverride(t *testing.T) {
	_, addr := tunedServer(t, "warmup=0;interval=1000000;miss=0.99;low=0.001")
	cfg := workload.Suite()[0]
	tr := cfg.MustGenerate(4000)

	c, err := Dial(addr, Hello{Benchmark: cfg.Name, Warmup: 64, TunerPolicy: aggressivePolicy},
		DialOptions{Timeout: 20 * time.Second, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Stream(tr, 317, nil)
	c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sum.Predictor, "ittage") {
		t.Errorf("per-session policy ignored: finished on %q", sum.Predictor)
	}

	if _, err := Dial(addr, Hello{Benchmark: cfg.Name, TunerPolicy: "speed=9"},
		DialOptions{Timeout: 5 * time.Second}); err == nil {
		t.Error("malformed Hello.TunerPolicy accepted")
	}
}

// TestTunerPolicyValidatedWhenDisabled: even without -tuner, a malformed
// Hello.TunerPolicy is a BadHello — clients learn about the typo on the
// tuned fleet and the untuned one alike.
func TestTunerPolicyValidatedWhenDisabled(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1})
	if _, err := Dial(addr, Hello{Benchmark: "x", TunerPolicy: "speed=9"},
		DialOptions{Timeout: 5 * time.Second}); err == nil {
		t.Error("tuner-disabled server accepted a malformed TunerPolicy")
	}
	c, err := Dial(addr, Hello{Benchmark: "x", TunerPolicy: aggressivePolicy},
		DialOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Errorf("tuner-disabled server rejected a well-formed TunerPolicy: %v", err)
	} else {
		c.Close()
	}
}
