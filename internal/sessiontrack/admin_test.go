package sessiontrack

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// retuneConn is a fakeConn whose owner supports forced retuning.
type retuneConn struct {
	fakeConn
	retuneOK bool
	retunes  int
}

func (c *retuneConn) Retune() bool {
	c.retunes++
	return c.retuneOK
}

func newAdminPlane(t *testing.T, readOnly bool) (*httptest.Server, *Registry, *retuneConn) {
	t.Helper()
	reg := NewRegistry(Options{Service: "admin"})
	conn := &retuneConn{retuneOK: true}
	if _, err := reg.Register(conn, Meta{Kind: KindServe, Benchmark: "gcc"}); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	Mount(mux, HTTPConfig{Local: reg, ReadOnly: readOnly})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, reg, conn
}

func post(t *testing.T, url, contentType string, body io.Reader) (*http.Response, AdminResult) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res AdminResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("%s: response is not AdminResult JSON: %v", url, err)
	}
	return resp, res
}

func TestAdminKillDrainRetune(t *testing.T) {
	srv, _, conn := newAdminPlane(t, false)

	resp, res := post(t, srv.URL+"/sessions/1/kill", "", nil)
	if resp.StatusCode != http.StatusOK || !res.OK || res.Action != "kill" || res.ID != 1 {
		t.Fatalf("kill: status %d, result %+v", resp.StatusCode, res)
	}
	if conn.kills.Load() != 1 {
		t.Fatalf("kills = %d", conn.kills.Load())
	}

	resp, res = post(t, srv.URL+"/sessions/1/drain", "application/json", strings.NewReader("{}"))
	if resp.StatusCode != http.StatusOK || !res.OK || res.Action != "drain" {
		t.Fatalf("drain: status %d, result %+v", resp.StatusCode, res)
	}
	if conn.drains.Load() != 1 {
		t.Fatalf("drains = %d", conn.drains.Load())
	}

	resp, res = post(t, srv.URL+"/sessions/1/retune", "application/json; charset=utf-8", strings.NewReader("{}"))
	if resp.StatusCode != http.StatusOK || !res.OK || res.Action != "retune" {
		t.Fatalf("retune: status %d, result %+v", resp.StatusCode, res)
	}
	if conn.retunes != 1 {
		t.Fatalf("retunes = %d", conn.retunes)
	}
}

func TestAdminRetuneWithoutTunerConflicts(t *testing.T) {
	srv, _, conn := newAdminPlane(t, false)
	conn.retuneOK = false // owner has no active tuner
	resp, res := post(t, srv.URL+"/sessions/1/retune", "", nil)
	if resp.StatusCode != http.StatusConflict || res.OK {
		t.Fatalf("status %d, result %+v", resp.StatusCode, res)
	}
	if !strings.Contains(res.Error, "no active tuner") {
		t.Fatalf("error %q", res.Error)
	}
}

func TestAdminVerbRejections(t *testing.T) {
	srv, _, conn := newAdminPlane(t, false)

	// Wrong method: the Go 1.22 method-qualified patterns answer 405.
	resp, err := http.Get(srv.URL + "/sessions/1/kill")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET kill: status %d, want 405", resp.StatusCode)
	}

	// Non-JSON body: 415, and the session is untouched.
	resp2, res := post(t, srv.URL+"/sessions/1/kill", "text/plain", strings.NewReader("x"))
	if resp2.StatusCode != http.StatusUnsupportedMediaType || res.OK {
		t.Fatalf("text/plain kill: status %d, result %+v", resp2.StatusCode, res)
	}

	// Unknown and malformed ids.
	if resp, res := post(t, srv.URL+"/sessions/99/kill", "", nil); resp.StatusCode != http.StatusNotFound || res.ID != 99 {
		t.Fatalf("missing id: status %d, result %+v", resp.StatusCode, res)
	}
	if resp, _ := post(t, srv.URL+"/sessions/abc/kill", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: status %d", resp.StatusCode)
	}

	if n := conn.kills.Load(); n != 0 {
		t.Fatalf("rejected verbs still killed the session %d times", n)
	}
}

func TestAdminReadOnlyGuard(t *testing.T) {
	srv, _, conn := newAdminPlane(t, true)
	for _, verb := range []string{"kill", "drain", "retune"} {
		resp, res := post(t, srv.URL+"/sessions/1/"+verb, "", nil)
		if resp.StatusCode != http.StatusForbidden || res.OK {
			t.Fatalf("%s on read-only instance: status %d, result %+v", verb, resp.StatusCode, res)
		}
		if !strings.Contains(res.Error, "read-only") {
			t.Fatalf("%s error %q", verb, res.Error)
		}
	}
	if conn.kills.Load()+conn.drains.Load() != 0 || conn.retunes != 0 {
		t.Fatal("read-only instance still mutated the session")
	}
	// Reads stay up.
	resp, err := http.Get(srv.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read-only GET /sessions: status %d", resp.StatusCode)
	}
}
