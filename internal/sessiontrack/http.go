package sessiontrack

import (
	"encoding/json"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/telemetry"
)

// HTTPConfig wires the /sessions* endpoints into a metrics mux.
type HTTPConfig struct {
	// Source produces the /sessions and /sessions/stream view: the local
	// Registry on a backend, the cluster fan-in on the router.
	Source Source
	// Local is the process's own registry, served at /sessions/{id} (full
	// inspect needs the live *Session) and /sessions/local.
	Local *Registry
	// Telemetry, when non-nil, has its counter deltas fused into each
	// stream tick as a {"type":"stats"} line.
	Telemetry *telemetry.Registry
	// Flight, when non-nil, supplies last-N hop-latency spans for
	// /sessions/{id}.
	Flight *flight.Recorder
	// ReadOnly disables the mutating admin verbs (kill/drain/retune): they
	// stay mounted but answer 403, so an operator probing a locked-down
	// instance learns the verb exists rather than getting a misleading 404.
	ReadOnly bool
}

// AdminResult is the JSON body of every mutating admin verb response.
type AdminResult struct {
	OK     bool   `json:"ok"`
	ID     uint64 `json:"id,omitempty"`
	Action string `json:"action,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Stream line shapes. Every NDJSON line carries "type" so consumers can
// switch without sniffing fields: "tick" opens an interval, one "session"
// line follows per live session, one "stats" line closes the interval when
// a telemetry registry is attached, "error" reports a failed view poll.
type (
	// TickLine opens one stream interval.
	TickLine struct {
		Type       string        `json:"type"`
		UnixNS     int64         `json:"unixNs"`
		IntervalMS float64       `json:"intervalMs"`
		Service    string        `json:"service"`
		Tag        string        `json:"tag,omitempty"`
		Sessions   int           `json:"sessions"`
		Backends   []BackendInfo `json:"backends,omitempty"`
	}

	// StreamDelta is a session's movement since the previous tick. On a
	// session's first appearance the delta equals its cumulative totals.
	StreamDelta struct {
		Frames   uint64 `json:"frames"`
		Records  uint64 `json:"records"`
		Executed uint64 `json:"executed"`
		Misses   uint64 `json:"misses"`
		// MissRate is the interval miss rate (delta misses / delta
		// executed), not the cumulative one.
		MissRate float64 `json:"missRate"`
	}

	// SessionLine pairs a full snapshot with its interval delta.
	SessionLine struct {
		Type    string          `json:"type"`
		Session SessionSnapshot `json:"session"`
		Delta   StreamDelta     `json:"delta"`
	}

	// StatsLine carries the telemetry registry's counter deltas for the
	// interval (zero deltas and quantile keys dropped).
	StatsLine struct {
		Type  string             `json:"type"`
		Delta telemetry.Snapshot `json:"delta"`
	}

	// ErrorLine reports a failed view poll; the stream keeps going.
	ErrorLine struct {
		Type  string `json:"type"`
		Error string `json:"error"`
	}
)

// SessionDetail is the /sessions/{id} full inspect: snapshot plus predictor
// table deltas and the session's most recent flight spans.
type SessionDetail struct {
	SessionSnapshot
	Tables []TableDelta      `json:"tables,omitempty"`
	Flight []flight.SpanJSON `json:"flight,omitempty"`
}

// setJSON stamps the response headers every JSON endpoint must carry:
// explicit media type (regression-tested — see the Content-Type audit in
// ISSUE 9), sniffing disabled, and no caching of live stats.
func setJSON(h http.Header) {
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("X-Content-Type-Options", "nosniff")
	h.Set("Cache-Control", "no-store")
}

func writeJSON(w http.ResponseWriter, v any) {
	setJSON(w.Header())
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Mount registers /sessions, /sessions/local, /sessions/{id} and
// /sessions/stream on mux.
func Mount(mux *http.ServeMux, cfg HTTPConfig) {
	if cfg.Source == nil {
		cfg.Source = cfg.Local
	}
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		v, err := cfg.Source.View(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		shapeView(&v, r)
		writeJSON(w, v)
	})
	// /sessions/local is the process's own registry even when Source is a
	// cluster fan-in — the smoke tests cross-check merged backend
	// attribution against it.
	mux.HandleFunc("GET /sessions/local", func(w http.ResponseWriter, r *http.Request) {
		v, _ := cfg.Local.View(r.Context())
		shapeView(&v, r)
		writeJSON(w, v)
	})
	mux.HandleFunc("GET /sessions/stream", func(w http.ResponseWriter, r *http.Request) {
		streamSessions(w, r, cfg)
	})
	mux.HandleFunc("GET /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad session id", http.StatusBadRequest)
			return
		}
		s, ok := cfg.Local.Get(id)
		if !ok {
			http.Error(w, "no such session", http.StatusNotFound)
			return
		}
		d := SessionDetail{
			SessionSnapshot: s.Snapshot(),
			Tables:          s.Tables(),
		}
		maxSpans := 32
		if n, err := strconv.Atoi(r.URL.Query().Get("spans")); err == nil && n >= 0 {
			maxSpans = n
		}
		if cfg.Flight != nil && maxSpans > 0 {
			spans := cfg.Flight.Spans()
			for i := range spans {
				if spans[i].Session == id {
					d.Flight = append(d.Flight, spans[i].JSON())
				}
			}
			if len(d.Flight) > maxSpans { // keep the most recent N
				d.Flight = d.Flight[len(d.Flight)-maxSpans:]
			}
		}
		writeJSON(w, d)
	})

	// Mutating admin verbs. Method enforcement rides the mux patterns (a
	// non-POST answers 405 with Allow: POST); bodies are optional but, when
	// present, must be JSON — the same Content-Type discipline the read
	// side's responses carry.
	admin := func(action string, run func(s *Session) (int, string)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			fail := func(status int, msg string, id uint64) {
				setJSON(w.Header())
				w.WriteHeader(status)
				json.NewEncoder(w).Encode(AdminResult{ID: id, Action: action, Error: msg})
			}
			if cfg.ReadOnly {
				fail(http.StatusForbidden, "instance is read-only (-readonly)", 0)
				return
			}
			if r.ContentLength != 0 {
				mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
				if err != nil || mt != "application/json" {
					fail(http.StatusUnsupportedMediaType, "request body must be application/json", 0)
					return
				}
			}
			id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
			if err != nil {
				fail(http.StatusBadRequest, "bad session id", 0)
				return
			}
			s, ok := cfg.Local.Get(id)
			if !ok {
				fail(http.StatusNotFound, "no such session", id)
				return
			}
			if status, msg := run(s); msg != "" {
				fail(status, msg, id)
				return
			}
			writeJSON(w, AdminResult{OK: true, ID: id, Action: action})
		}
	}
	mux.HandleFunc("POST /sessions/{id}/kill", admin("kill", func(s *Session) (int, string) {
		s.Kill()
		return 0, ""
	}))
	mux.HandleFunc("POST /sessions/{id}/drain", admin("drain", func(s *Session) (int, string) {
		s.Drain()
		return 0, ""
	}))
	mux.HandleFunc("POST /sessions/{id}/retune", admin("retune", func(s *Session) (int, string) {
		if !s.Retune() {
			return http.StatusConflict, "session has no active tuner"
		}
		return 0, ""
	}))
}

// shapeView applies ?sort= and ?limit= to a view in place.
func shapeView(v *View, r *http.Request) {
	q := r.URL.Query()
	if key := q.Get("sort"); key != "" {
		SortSessions(v.Sessions, key)
	}
	if n, err := strconv.Atoi(q.Get("limit")); err == nil && n >= 0 && n < len(v.Sessions) {
		v.Sessions = v.Sessions[:n]
	}
}

func streamSessions(w http.ResponseWriter, r *http.Request, cfg HTTPConfig) {
	q := r.URL.Query()
	interval := time.Second
	if d, err := time.ParseDuration(q.Get("interval")); err == nil {
		interval = d
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	ticks := 0 // 0 = stream until the client goes away
	if n, err := strconv.Atoi(q.Get("ticks")); err == nil && n > 0 {
		ticks = n
	}
	sortKey := q.Get("sort")
	limit := -1
	if n, err := strconv.Atoi(q.Get("limit")); err == nil && n >= 0 {
		limit = n
	}
	sse := q.Get("sse") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")

	h := w.Header()
	if sse {
		h.Set("Content-Type", "text/event-stream")
	} else {
		h.Set("Content-Type", "application/x-ndjson")
	}
	h.Set("X-Content-Type-Options", "nosniff")
	h.Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	emit := func(v any) {
		if sse {
			w.Write([]byte("data: "))
		}
		enc.Encode(v) // one line per value: NDJSON
		if sse {
			w.Write([]byte("\n"))
		}
	}

	type key struct {
		backend string
		id      uint64
	}
	prev := make(map[key]SessionSnapshot)
	var prevStats telemetry.Snapshot
	if cfg.Telemetry != nil {
		prevStats = cfg.Telemetry.Snapshot()
	}

	timer := time.NewTimer(0) // first tick immediately
	defer timer.Stop()
	sent := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case <-timer.C:
		}

		v, err := cfg.Source.View(r.Context())
		if err != nil {
			emit(ErrorLine{Type: "error", Error: err.Error()})
		} else {
			if sortKey != "" {
				SortSessions(v.Sessions, sortKey)
			}
			if limit >= 0 && limit < len(v.Sessions) {
				v.Sessions = v.Sessions[:limit]
			}
			emit(TickLine{
				Type:       "tick",
				UnixNS:     v.TakenUnixNS,
				IntervalMS: float64(interval) / float64(time.Millisecond),
				Service:    v.Service,
				Tag:        v.Tag,
				Sessions:   len(v.Sessions),
				Backends:   v.Backends,
			})
			next := make(map[key]SessionSnapshot, len(v.Sessions))
			for _, snap := range v.Sessions {
				k := key{snap.Backend, snap.ID}
				d := StreamDelta{
					Frames:   snap.Frames,
					Records:  snap.Records,
					Executed: snap.Executed,
					Misses:   snap.Misses,
				}
				if p, ok := prev[k]; ok {
					d.Frames -= min(d.Frames, p.Frames)
					d.Records -= min(d.Records, p.Records)
					d.Executed -= min(d.Executed, p.Executed)
					d.Misses -= min(d.Misses, p.Misses)
				}
				if d.Executed > 0 {
					d.MissRate = float64(d.Misses) / float64(d.Executed)
				}
				next[k] = snap
				emit(SessionLine{Type: "session", Session: snap, Delta: d})
			}
			prev = next
			if cfg.Telemetry != nil {
				cur := cfg.Telemetry.Snapshot()
				emit(StatsLine{Type: "stats", Delta: cur.Delta(prevStats)})
				prevStats = cur
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		sent++
		if ticks > 0 && sent >= ticks {
			return
		}
		timer.Reset(interval)
	}
}
