package sessiontrack

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/flight"
	"github.com/oocsb/ibp/internal/table"
	"github.com/oocsb/ibp/internal/telemetry"
)

// newTestPlane builds a registry with two live sessions, a telemetry
// registry, and a flight recorder with one span for session 1, mounted on an
// httptest server — the full introspection plane in miniature.
func newTestPlane(t *testing.T) (*httptest.Server, *Registry, *telemetry.Registry) {
	t.Helper()
	reg := NewRegistry(Options{Service: "testsvc", Tag: "t0"})
	a, err := reg.Register(&fakeConn{}, Meta{
		Kind:      KindServe,
		Benchmark: "gcc",
		Tenant:    "teamA",
		Predictor: "btb-2bc",
		Window:    16,
		Tables:    []table.Stats{{Kind: "assoc4", Capacity: 1024, Inserts: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Register(&fakeConn{}, Meta{Kind: KindProxy, Benchmark: "perl"})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	a.FrameProcessed(now, 1000, 900, 45, time.Millisecond)
	a.UpdateTables([]table.Stats{{Kind: "assoc4", Capacity: 1024, Inserts: 60}})
	b.SetBackend("127.0.0.1:9670")
	b.AckRelayed(now, 500, 400, 80)
	b.JournalDelta(2048)

	tel := telemetry.New()
	tel.Counter("test_frames_total").Add(7)

	rec := flight.NewRecorder(flight.Options{Service: "testsvc", Capacity: 8})
	tr := rec.Tracer(rec.NextTraceID(), a.ID())
	sp := tr.Start(1)
	sp.SetRecords(1000)
	sp.Stamp(flight.Hop(0))
	sp.Finish()

	mux := http.NewServeMux()
	Mount(mux, HTTPConfig{Local: reg, Telemetry: tel, Flight: rec})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, reg, tel
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		sb.Write(sc.Bytes())
		sb.WriteByte('\n')
	}
	return resp, []byte(sb.String())
}

// checkJSONHeaders is the Content-Type regression guard for the plane's JSON
// endpoints: explicit media type, sniffing off, caching off.
func checkJSONHeaders(t *testing.T, resp *http.Response) {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("%s: Content-Type = %q", resp.Request.URL.Path, ct)
	}
	if v := resp.Header.Get("X-Content-Type-Options"); v != "nosniff" {
		t.Errorf("%s: X-Content-Type-Options = %q", resp.Request.URL.Path, v)
	}
	if v := resp.Header.Get("Cache-Control"); v != "no-store" {
		t.Errorf("%s: Cache-Control = %q", resp.Request.URL.Path, v)
	}
}

func TestSessionsEndpoint(t *testing.T) {
	srv, _, _ := newTestPlane(t)
	resp, body := get(t, srv.URL+"/sessions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	checkJSONHeaders(t, resp)
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Service != "testsvc" || v.Tag != "t0" || len(v.Sessions) != 2 {
		t.Fatalf("view = %+v", v)
	}
	if v.Sessions[0].ID != 1 || v.Sessions[0].Benchmark != "gcc" {
		t.Fatalf("session 0 = %+v", v.Sessions[0])
	}
	if v.Sessions[1].Kind != "proxy" || v.Sessions[1].JournalBytes != 2048 ||
		v.Sessions[1].Backend != "127.0.0.1:9670" {
		t.Fatalf("session 1 = %+v", v.Sessions[1])
	}

	// ?sort= and ?limit= shape the listing.
	_, body = get(t, srv.URL+"/sessions?sort=missrate&limit=1")
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Sessions) != 1 || v.Sessions[0].Benchmark != "perl" {
		t.Fatalf("sorted+limited view = %+v", v.Sessions)
	}

	// /sessions/local serves the same registry here (no fan-in configured).
	resp, body = get(t, srv.URL+"/sessions/local")
	checkJSONHeaders(t, resp)
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Sessions) != 2 {
		t.Fatalf("local view has %d sessions", len(v.Sessions))
	}
}

func TestSessionDetailEndpoint(t *testing.T) {
	srv, _, _ := newTestPlane(t)
	resp, body := get(t, srv.URL+"/sessions/1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	checkJSONHeaders(t, resp)
	var d SessionDetail
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.ID != 1 || d.Benchmark != "gcc" || d.Tenant != "teamA" {
		t.Fatalf("detail = %+v", d.SessionSnapshot)
	}
	if len(d.Tables) != 1 || d.Tables[0].DeltaInserts != 50 {
		t.Fatalf("tables = %+v", d.Tables)
	}
	if len(d.Flight) != 1 || d.Flight[0].Session != 1 {
		t.Fatalf("flight spans = %+v", d.Flight)
	}

	// ?spans=0 suppresses the flight section.
	_, body = get(t, srv.URL+"/sessions/1?spans=0")
	d = SessionDetail{}
	json.Unmarshal(body, &d)
	if len(d.Flight) != 0 {
		t.Fatalf("spans=0 still returned %d spans", len(d.Flight))
	}

	if resp, _ := get(t, srv.URL+"/sessions/999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing id: status %d", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/sessions/notanumber"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: status %d", resp.StatusCode)
	}
}

// streamLines GETs a stream URL and returns its parsed NDJSON lines as raw
// maps keyed by type.
func streamLines(t *testing.T, url string) (*http.Response, []map[string]json.RawMessage, []string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []map[string]json.RawMessage
	var types []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		line = strings.TrimPrefix(line, "data: ")
		var m map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		lines = append(lines, m)
		var typ string
		json.Unmarshal(m["type"], &typ)
		types = append(types, typ)
	}
	return resp, lines, types
}

func TestSessionsStream(t *testing.T) {
	srv, reg, tel := newTestPlane(t)
	// Move a counter while the stream runs so a stats delta is observable
	// (the stream baselines the registry at start; pre-existing values are
	// not replayed).
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := tel.Counter("test_frames_total")
		for {
			select {
			case <-stop:
				return
			default:
				c.Add(1)
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	resp, lines, types := streamLines(t, srv.URL+"/sessions/stream?ticks=2&interval=100ms")
	close(stop)
	<-done
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	// Two ticks over 2 sessions with telemetry attached:
	// (tick, session, session, stats) x2.
	want := []string{"tick", "session", "session", "stats", "tick", "session", "session", "stats"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("line types = %v, want %v", types, want)
	}

	var tick TickLine
	if err := json.Unmarshal(lines[0]["tick"], new(json.RawMessage)); err == nil {
		// tick fields live at top level, not nested — decode the whole line.
	}
	raw, _ := json.Marshal(lines[0])
	if err := json.Unmarshal(raw, &tick); err != nil {
		t.Fatal(err)
	}
	if tick.Service != "testsvc" || tick.Sessions != 2 {
		t.Fatalf("tick = %+v", tick)
	}

	// First appearance: delta equals cumulative totals.
	var sl SessionLine
	raw, _ = json.Marshal(lines[1])
	if err := json.Unmarshal(raw, &sl); err != nil {
		t.Fatal(err)
	}
	if sl.Delta.Records != sl.Session.Records || sl.Delta.Records == 0 {
		t.Fatalf("first-tick delta %+v vs session %+v", sl.Delta, sl.Session)
	}

	// Stats lines carry the counter movement per interval; across the two
	// ticks the background increments must show up.
	var statsTotal float64
	for i := range lines {
		if types[i] != "stats" {
			continue
		}
		var st StatsLine
		raw, _ := json.Marshal(lines[i])
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		statsTotal += st.Delta["test_frames_total"]
	}
	if statsTotal <= 0 {
		t.Fatal("stats deltas never reported the moving counter")
	}

	// Second tick: sessions are idle, so their deltas are zero.
	raw, _ = json.Marshal(lines[5])
	sl = SessionLine{}
	if err := json.Unmarshal(raw, &sl); err != nil {
		t.Fatal(err)
	}
	if sl.Delta.Records != 0 || sl.Delta.Frames != 0 {
		t.Fatalf("idle second-tick delta = %+v", sl.Delta)
	}
	_ = reg
}

func TestSessionsStreamSSE(t *testing.T) {
	srv, _, _ := newTestPlane(t)
	resp, err := http.Get(srv.URL + "/sessions/stream?ticks=1&sse=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	dataLines := 0
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			dataLines++
		}
	}
	if dataLines < 2 { // at least the tick and one session line
		t.Fatalf("SSE framing produced %d data lines", dataLines)
	}
}

// TestEndpointContentTypes is the Content-Type audit across the whole
// -metrics mux as the daemons assemble it: every endpoint must declare an
// explicit media type, disable sniffing, and (for live data) disable caching.
func TestEndpointContentTypes(t *testing.T) {
	reg := NewRegistry(Options{Service: "ct"})
	s, _ := reg.Register(&fakeConn{}, Meta{Kind: KindServe, Benchmark: "ct"})
	tel := telemetry.New()
	tel.Counter("ct_total").Add(1)
	rec := flight.NewRecorder(flight.Options{Service: "ct", Capacity: 4})

	msrv, maddr, err := telemetry.ServeMetrics("127.0.0.1:0", tel,
		func(mux *http.ServeMux) {
			Mount(mux, HTTPConfig{Local: reg, Telemetry: tel, Flight: rec})
			mux.Handle("/debug/flightrecorder", rec.Handler())
		})
	if err != nil {
		t.Fatal(err)
	}
	defer msrv.Close()

	cases := []struct {
		path string
		ct   string
	}{
		{"/metrics", "text/plain; version=0.0.4"},
		{"/metrics?format=json", "application/json; charset=utf-8"},
		{"/vars", "application/json; charset=utf-8"},
		{"/debug/flightrecorder", "application/json; charset=utf-8"},
		{"/sessions", "application/json; charset=utf-8"},
		{"/sessions/local", "application/json; charset=utf-8"},
		{"/sessions/1", "application/json; charset=utf-8"},
		{"/sessions/stream?ticks=1", "application/x-ndjson"},
		{"/sessions/stream?ticks=1&sse=1", "text/event-stream"},
	}
	for _, c := range cases {
		resp, body := get(t, "http://"+maddr+c.path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d (%s)", c.path, resp.StatusCode, body)
			continue
		}
		if got := resp.Header.Get("Content-Type"); got != c.ct {
			t.Errorf("%s: Content-Type = %q, want %q", c.path, got, c.ct)
		}
		if got := resp.Header.Get("X-Content-Type-Options"); got != "nosniff" {
			t.Errorf("%s: X-Content-Type-Options = %q, want nosniff", c.path, got)
		}
		if got := resp.Header.Get("Cache-Control"); got != "no-store" {
			t.Errorf("%s: Cache-Control = %q, want no-store", c.path, got)
		}
	}
	reg.Unregister(s)
}

// TestStreamSurvivesSessionChurn streams while sessions register and
// unregister, asserting the feed never emits a negative-looking delta and
// keeps ticking.
func TestStreamSurvivesSessionChurn(t *testing.T) {
	reg := NewRegistry(Options{Service: "churn"})
	mux := http.NewServeMux()
	Mount(mux, HTTPConfig{Local: reg})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s, err := reg.Register(&fakeConn{}, Meta{Kind: KindServe, Benchmark: "churn"})
			if err != nil {
				return
			}
			s.FrameProcessed(time.Now().UnixNano(), 10, 10, 1, 0)
			reg.Unregister(s)
		}
	}()
	defer close(stop)

	_, lines, types := streamLines(t, srv.URL+"/sessions/stream?ticks=3&interval=100ms")
	tickCount := 0
	for _, typ := range types {
		if typ == "tick" {
			tickCount++
		}
	}
	if tickCount != 3 {
		t.Fatalf("got %d ticks, want 3", tickCount)
	}
	for i, m := range lines {
		if types[i] != "session" {
			continue
		}
		var sl SessionLine
		raw, _ := json.Marshal(m)
		if err := json.Unmarshal(raw, &sl); err != nil {
			t.Fatal(err)
		}
		if sl.Delta.Records > sl.Session.Records {
			t.Fatalf("delta exceeds cumulative: %+v", sl)
		}
	}
}
