// Package sessiontrack is the live session introspection plane: a
// lock-light registry that every serve session and every router proxy
// session registers into, tracking identity (session id, tenant, benchmark,
// predictor config), lifecycle state, and per-window sliding stats
// (records/s, miss rate, queue wait, window occupancy, journal bytes,
// replay/failover state) updated from the serving hot paths.
//
// The package doubles as the session-management core the serve and cluster
// layers share (ROADMAP item 5): the registry owns session id allocation,
// the live set, and the drain handshake — BeginDrain atomically stops new
// registrations and snapshots the sessions to wind down, closing the
// register-vs-drain race both layers used to handle with their own maps.
//
// Design rules, inherited from the telemetry layer:
//
//   - Nil is disabled. A nil *Registry and a nil *Session are valid no-op
//     values; every method is nil-safe and the disabled update path costs a
//     nil check and nothing else (asserted by TestNilSessionTrackZeroAllocs).
//   - No allocations on the update path, enabled or not. Per-session stats
//     are atomics and a fixed ring of sliding-window buckets; hot paths pass
//     the clock reading they already took, so tracking adds no time.Now
//     calls to the frame path (asserted by TestSessionUpdateZeroAllocs).
//   - Readers never block writers. Snapshots read atomics one by one — a
//     snapshot is not a global cut, but every value is one the session
//     actually held.
package sessiontrack

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oocsb/ibp/internal/table"
)

// Kind distinguishes the two session shapes in a cluster.
type Kind uint8

const (
	// KindServe is a backend (ibpserved) session that owns a predictor.
	KindServe Kind = iota
	// KindProxy is a router (ibprouter) session: journal + relay, no
	// predictor of its own.
	KindProxy
)

func (k Kind) String() string {
	if k == KindProxy {
		return "proxy"
	}
	return "serve"
}

// State is a session's lifecycle position, shown in /sessions and ibptop.
type State uint32

const (
	// StatePlacing — a proxy session awaiting its first records frame (the
	// placement key) or a backend that accepts it.
	StatePlacing State = iota
	// StateActive — streaming frames normally.
	StateActive
	// StateDraining — a server drain ended the stream; queued frames are
	// being flushed into the final summary.
	StateDraining
	// StateFailover — the session's backend died; the router is looking for
	// a survivor.
	StateFailover
	// StateReplaying — the journal prefix is being replayed onto a
	// replacement backend.
	StateReplaying
)

var stateNames = [...]string{"placing", "active", "draining", "failover", "replaying"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "invalid"
}

// Conn is the lifecycle control surface a session owner registers with its
// stats: how to wind the session down. Serve sessions map Drain to their
// graceful drain (process what's queued, summarize) and Kill to a hard
// close; proxy sessions run to completion on drain (Drain is a no-op there)
// and map Kill to connection teardown.
type Conn interface {
	Drain()
	Kill()
}

// Meta is a session's immutable identity, captured at registration.
type Meta struct {
	Kind      Kind
	Benchmark string
	// Tenant is the client-declared tenant tag (Hello.Tenant), the grouping
	// key for per-tenant views and future quota enforcement.
	Tenant    string
	Predictor string
	TraceID   string
	// Window is the granted frame window (occupancy is tracked live).
	Window int
	// Upstream is the router-side session id pinned into the forwarded
	// Hello when the session arrived through ibprouter; it is the fan-in
	// correlation key between a backend session and its proxy session.
	Upstream uint64
	// Tables is the predictor's table stats at session open — the baseline
	// /sessions/{id} diffs live stats against.
	Tables []table.Stats
}

// winBuckets is the sliding window's ring size; with the default 1s bucket
// the window covers the last ~8 seconds.
const winBuckets = 8

// winBucket is one time slice of the sliding window. The epoch tags which
// absolute bucket interval the counters belong to; a writer that finds a
// stale epoch CASes it forward and zeroes the counters. Updates racing a
// reset can lose a sample — acceptable for monitoring, and every access is
// atomic so there is no data race.
type winBucket struct {
	epoch    atomic.Int64
	records  atomic.Int64
	executed atomic.Int64
	misses   atomic.Int64
	waitNS   atomic.Int64
	waitN    atomic.Int64
}

func (b *winBucket) roll(e int64) {
	old := b.epoch.Load()
	if old != e && b.epoch.CompareAndSwap(old, e) {
		b.records.Store(0)
		b.executed.Store(0)
		b.misses.Store(0)
		b.waitNS.Store(0)
		b.waitN.Store(0)
	}
}

// Session is one tracked session's stats block. All update methods are
// nil-safe no-ops and never allocate; they are called from the serving hot
// paths (once per processed frame or relayed ack, not per record).
type Session struct {
	id   uint64
	reg  *Registry
	conn Conn
	meta Meta

	connectedNS int64
	state       atomic.Uint32
	backend     atomic.Pointer[string]
	lastNS      atomic.Int64

	frames   atomic.Uint64
	records  atomic.Uint64
	executed atomic.Uint64
	misses   atomic.Uint64
	waitNS   atomic.Int64
	waitN    atomic.Int64
	inflight atomic.Int32

	// Tuner-facing state: the live predictor name (meta.Predictor is the
	// config at open; this tracks hot swaps), the swap count, and the
	// per-class miss sketch counters (cold, conflict, alias, meta), flushed
	// once per frame by the tuner.
	predictor atomic.Pointer[string]
	swaps     atomic.Uint64
	missClass [4]atomic.Uint64

	journalBytes atomic.Int64
	failovers    atomic.Uint64
	replayed     atomic.Uint64
	// replayLost flips when journal eviction forfeited the session's
	// lossless-failover guarantee.
	replayLost atomic.Bool

	buckets [winBuckets]winBucket

	// tmu guards the periodically refreshed live table stats (serve
	// sessions only; refreshed by the owning shard worker, read by
	// /sessions/{id}).
	tmu    sync.Mutex
	tables []table.Stats

	unreg atomic.Bool
}

// ID returns the registry-assigned session id (0 on nil).
func (s *Session) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Conn returns the owner the session registered with (nil on nil) — the way
// back from a registry entry to the owning serve/proxy session.
func (s *Session) Conn() Conn {
	if s == nil {
		return nil
	}
	return s.conn
}

// Drain forwards to the owner's graceful drain. Nil-safe.
func (s *Session) Drain() {
	if s != nil && s.conn != nil {
		s.SetState(StateDraining)
		s.conn.Drain()
	}
}

// Kill forwards to the owner's hard close. Nil-safe.
func (s *Session) Kill() {
	if s != nil && s.conn != nil {
		s.conn.Kill()
	}
}

// Retuner is the optional Conn extension a tuned serve session implements:
// Retune forces a tuner policy evaluation at the next frame boundary.
type Retuner interface {
	Retune() bool
}

// Retune forwards to the owner when it supports forced retuning (the
// /sessions/{id}/retune admin verb). Nil-safe; false when the session's
// owner has no tuner attached.
func (s *Session) Retune() bool {
	if s == nil || s.conn == nil {
		return false
	}
	rt, ok := s.conn.(Retuner)
	return ok && rt.Retune()
}

// PredictorSwapped records a tuner predictor hot-swap: the session now runs
// name. Called at most once per swap, so the boxed string is off the frame
// path.
func (s *Session) PredictorSwapped(name string) {
	if s == nil {
		return
	}
	p := new(string)
	*p = name
	s.predictor.Store(p)
	s.swaps.Add(1)
}

// Swaps returns the tuner hot-swap count. Nil-safe.
func (s *Session) Swaps() uint64 {
	if s == nil {
		return 0
	}
	return s.swaps.Load()
}

// AddMissClasses flushes one frame's miss-class sketch deltas
// (cold/conflict/alias/meta) from the tuner. Zero deltas cost nothing.
func (s *Session) AddMissClasses(cold, conflict, alias, meta uint64) {
	if s == nil {
		return
	}
	if cold != 0 {
		s.missClass[0].Add(cold)
	}
	if conflict != 0 {
		s.missClass[1].Add(conflict)
	}
	if alias != 0 {
		s.missClass[2].Add(alias)
	}
	if meta != 0 {
		s.missClass[3].Add(meta)
	}
}

// SetState moves the session's lifecycle state.
func (s *Session) SetState(st State) {
	if s != nil {
		s.state.Store(uint32(st))
	}
}

// SetBackend records the session's current backend placement (proxy
// sessions; called once per placement, so the boxed string is off the frame
// path).
func (s *Session) SetBackend(addr string) {
	if s == nil {
		return
	}
	// Box after the nil check: taking &addr directly would move the parameter
	// to the heap at function entry and make even the disabled path allocate.
	p := new(string)
	*p = addr
	s.backend.Store(p)
}

// AddInflight tracks frame window occupancy (+1 on accept, -1 on ack).
func (s *Session) AddInflight(d int32) {
	if s != nil {
		s.inflight.Add(d)
	}
}

// SetInflight overwrites the occupancy estimate (the router derives it from
// the seq/ack watermark distance rather than counting).
func (s *Session) SetInflight(n int32) {
	if s != nil {
		s.inflight.Store(n)
	}
}

// JournalDelta moves the session's journal byte accounting (append
// positive, eviction/release negative).
func (s *Session) JournalDelta(bytes int64) {
	if s != nil {
		s.journalBytes.Add(bytes)
	}
}

// Failover counts one backend replacement.
func (s *Session) Failover() {
	if s != nil {
		s.failovers.Add(1)
		s.SetState(StateFailover)
	}
}

// ReplayedFrames counts frames re-sent while replaying the journal.
func (s *Session) ReplayedFrames(n int) {
	if s != nil {
		s.replayed.Add(uint64(n))
	}
}

// SetReplayable(false) records that journal eviction forfeited lossless
// failover for this session.
func (s *Session) SetReplayable(ok bool) {
	if s != nil {
		s.replayLost.Store(!ok)
	}
}

// FrameProcessed records one processed records frame (serve side): the
// frame's record/executed/miss deltas and its shard queue wait. nowNS is the
// caller's existing clock reading — tracking adds no clock read of its own.
func (s *Session) FrameProcessed(nowNS int64, records, executed, misses int, queueWait time.Duration) {
	if s == nil {
		return
	}
	s.frames.Add(1)
	s.records.Add(uint64(records))
	s.executed.Add(uint64(executed))
	s.misses.Add(uint64(misses))
	s.waitNS.Add(int64(queueWait))
	s.waitN.Add(1)
	s.lastNS.Store(nowNS)
	e := nowNS / s.reg.bucketNS
	b := &s.buckets[e%winBuckets]
	b.roll(e)
	b.records.Add(int64(records))
	b.executed.Add(int64(executed))
	b.misses.Add(int64(misses))
	b.waitNS.Add(int64(queueWait))
	b.waitN.Add(1)
}

// AckRelayed records one relayed ack (router side): the acknowledged
// frame's decoded per-frame counts, giving the proxy session the same
// per-window miss/throughput lens as a backend session.
func (s *Session) AckRelayed(nowNS int64, records, executed, misses int) {
	if s == nil {
		return
	}
	s.frames.Add(1)
	s.records.Add(uint64(records))
	s.executed.Add(uint64(executed))
	s.misses.Add(uint64(misses))
	s.lastNS.Store(nowNS)
	e := nowNS / s.reg.bucketNS
	b := &s.buckets[e%winBuckets]
	b.roll(e)
	b.records.Add(int64(records))
	b.executed.Add(int64(executed))
	b.misses.Add(int64(misses))
}

// UpdateTables refreshes the live predictor table stats (serve sessions;
// called by the owning shard worker, amortized to every few frames so the
// frame path stays allocation-free in steady state).
func (s *Session) UpdateTables(ts []table.Stats) {
	if s == nil {
		return
	}
	s.tmu.Lock()
	s.tables = append(s.tables[:0], ts...)
	s.tmu.Unlock()
}

// ErrDraining is returned by Register once BeginDrain has run.
var ErrDraining = errors.New("sessiontrack: registry draining")

// Options configures a Registry.
type Options struct {
	// Service names the process in views ("ibpserved", "ibprouter").
	Service string
	// Tag is the instance label (ibpserved -tag) shown next to the service.
	Tag string
	// Bucket is the sliding window bucket width; the window spans 8 buckets.
	// <= 0 means 1s (an ~8s window).
	Bucket time.Duration
}

// Registry is the live session set of one process. The nil *Registry is the
// disabled registry: Register returns a nil session (whose methods are all
// no-ops) and every query returns zero values.
type Registry struct {
	service  string
	tag      string
	bucketNS int64

	mu       sync.Mutex
	sessions map[uint64]*Session
	nextID   uint64
	draining bool
}

// NewRegistry builds an enabled registry.
func NewRegistry(o Options) *Registry {
	if o.Bucket <= 0 {
		o.Bucket = time.Second
	}
	return &Registry{
		service:  o.Service,
		tag:      o.Tag,
		bucketNS: o.Bucket.Nanoseconds(),
		sessions: make(map[uint64]*Session),
	}
}

// Register allocates a session id and adds the session to the live set.
// Returns ErrDraining after BeginDrain (no new sessions during wind-down).
// On the nil registry it returns (nil, nil): the nil session is the
// zero-cost disabled stats handle.
func (r *Registry) Register(c Conn, m Meta) (*Session, error) {
	if r == nil {
		return nil, nil
	}
	s := &Session{
		reg:         r,
		conn:        c,
		meta:        m,
		connectedNS: time.Now().UnixNano(),
	}
	s.lastNS.Store(s.connectedNS)
	if m.Kind == KindProxy {
		s.state.Store(uint32(StatePlacing))
	} else {
		s.state.Store(uint32(StateActive))
	}
	if len(m.Tables) > 0 {
		s.tables = append([]table.Stats(nil), m.Tables...)
	}
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return nil, ErrDraining
	}
	r.nextID++
	s.id = r.nextID
	s.meta.Tables = append([]table.Stats(nil), m.Tables...) // private baseline copy
	r.sessions[s.id] = s
	r.mu.Unlock()
	return s, nil
}

// Unregister removes the session from the live set. Exactly-once: the first
// call returns true, every later one (and any call with a nil session or
// registry) returns false — callers key their sessions-active gauge
// decrement on that, so no exit-path race can leave the gauge elevated.
func (r *Registry) Unregister(s *Session) bool {
	if r == nil || s == nil {
		return false
	}
	if !s.unreg.CompareAndSwap(false, true) {
		return false
	}
	r.mu.Lock()
	delete(r.sessions, s.id)
	r.mu.Unlock()
	return true
}

// BeginDrain marks the registry draining — subsequent Registers fail with
// ErrDraining — and returns the live sessions at that instant. The mark and
// the snapshot are atomic, so every session is either in the returned slice
// or was refused registration; none can slip between drain and snapshot.
func (r *Registry) BeginDrain() []*Session {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.draining = true
	live := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		live = append(live, s)
	}
	r.mu.Unlock()
	return live
}

// Live returns the current live sessions.
func (r *Registry) Live() []*Session {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	live := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		live = append(live, s)
	}
	r.mu.Unlock()
	return live
}

// Len returns the live session count.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Get returns the live session with the given id.
func (r *Registry) Get(id uint64) (*Session, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	return s, ok
}
