package sessiontrack

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/oocsb/ibp/internal/table"
)

type fakeConn struct {
	drains atomic.Int32
	kills  atomic.Int32
}

func (c *fakeConn) Drain() { c.drains.Add(1) }
func (c *fakeConn) Kill()  { c.kills.Add(1) }

func TestRegisterUnregisterLifecycle(t *testing.T) {
	r := NewRegistry(Options{Service: "test"})
	c := &fakeConn{}
	s, err := r.Register(c, Meta{Kind: KindServe, Benchmark: "gcc", Tenant: "teamA"})
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() == 0 {
		t.Fatal("registered session has id 0")
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	got, ok := r.Get(s.ID())
	if !ok || got != s {
		t.Fatalf("Get(%d) = %v, %v", s.ID(), got, ok)
	}
	if got.Conn() != Conn(c) {
		t.Fatal("Conn() does not round-trip the owner")
	}

	// Exactly-once unregister: first true, repeats false.
	if !r.Unregister(s) {
		t.Fatal("first Unregister returned false")
	}
	if r.Unregister(s) {
		t.Fatal("second Unregister returned true; gauge would double-decrement")
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("Len after unregister = %d, want 0", got)
	}

	// Distinct ids across sessions.
	s2, _ := r.Register(&fakeConn{}, Meta{})
	if s2.ID() == s.ID() {
		t.Fatalf("id reused: %d", s2.ID())
	}
}

func TestBeginDrainAtomicWithRegister(t *testing.T) {
	r := NewRegistry(Options{})
	c := &fakeConn{}
	pre, _ := r.Register(c, Meta{})
	live := r.BeginDrain()
	if len(live) != 1 || live[0] != pre {
		t.Fatalf("BeginDrain returned %d sessions, want the 1 pre-drain session", len(live))
	}
	if _, err := r.Register(&fakeConn{}, Meta{}); err != ErrDraining {
		t.Fatalf("Register after BeginDrain: err = %v, want ErrDraining", err)
	}
	// Drain/Kill forward to the owner.
	live[0].Drain()
	live[0].Kill()
	if c.drains.Load() != 1 || c.kills.Load() != 1 {
		t.Fatalf("drain/kill not forwarded: drains=%d kills=%d", c.drains.Load(), c.kills.Load())
	}
	if State(live[0].state.Load()) != StateDraining {
		t.Fatal("Drain did not move state to draining")
	}
}

func TestProxyStateAndJournalAccounting(t *testing.T) {
	r := NewRegistry(Options{})
	s, _ := r.Register(&fakeConn{}, Meta{Kind: KindProxy})
	snap := s.Snapshot()
	if snap.Kind != "proxy" || snap.State != "placing" {
		t.Fatalf("fresh proxy snapshot = kind %q state %q", snap.Kind, snap.State)
	}
	s.SetBackend("10.0.0.1:9670")
	s.SetState(StateActive)
	s.JournalDelta(4096)
	s.JournalDelta(-1024)
	s.Failover()
	s.ReplayedFrames(7)
	s.SetReplayable(false)
	s.SetInflight(3)
	snap = s.Snapshot()
	if snap.Backend != "10.0.0.1:9670" {
		t.Fatalf("backend = %q", snap.Backend)
	}
	if snap.State != "failover" {
		t.Fatalf("state after Failover = %q", snap.State)
	}
	if snap.JournalBytes != 3072 {
		t.Fatalf("journalBytes = %d, want 3072", snap.JournalBytes)
	}
	if snap.Failovers != 1 || snap.ReplayedFrames != 7 || snap.Replayable || snap.Inflight != 3 {
		t.Fatalf("failover accounting off: %+v", snap)
	}
}

// TestWindowRatesDeterministic drives FrameProcessed with explicit clock
// readings so the sliding window's rates are exact.
func TestWindowRatesDeterministic(t *testing.T) {
	r := NewRegistry(Options{Bucket: time.Second})
	s, _ := r.Register(&fakeConn{}, Meta{Kind: KindServe})
	base := int64(1_000) * int64(time.Second) // aligned to a bucket boundary

	// 4 frames over 2 seconds: 1000 records each, half executed, 10% missed.
	for i := int64(0); i < 4; i++ {
		now := base + i*int64(500*time.Millisecond)
		s.FrameProcessed(now, 1000, 500, 50, 2*time.Millisecond)
	}
	nowNS := base + 2*int64(time.Second) // just past the last frame
	snap := s.snapshotAt(nowNS)
	if snap.Frames != 4 || snap.Records != 4000 || snap.Executed != 2000 || snap.Misses != 200 {
		t.Fatalf("cumulative counters off: %+v", snap)
	}
	if snap.MissRate != 0.1 {
		t.Fatalf("missRate = %v, want 0.1", snap.MissRate)
	}
	if snap.QueueWaitAvgUS != 2000 {
		t.Fatalf("queueWaitAvgUs = %v, want 2000", snap.QueueWaitAvgUS)
	}
	w := snap.Win
	if w.Records != 4000 || w.Executed != 2000 || w.Misses != 200 {
		t.Fatalf("window counters off: %+v", w)
	}
	if w.Seconds != 2 {
		t.Fatalf("window seconds = %v, want 2", w.Seconds)
	}
	if w.RecordsPerSec != 2000 {
		t.Fatalf("recordsPerSec = %v, want 2000", w.RecordsPerSec)
	}
	if w.MissRate != 0.1 || w.QueueWaitAvgUS != 2000 {
		t.Fatalf("window rates off: %+v", w)
	}

	// 10 buckets later everything has aged out of the window.
	later := nowNS + 10*int64(time.Second)
	w = s.windowAt(later)
	if w.Records != 0 || w.RecordsPerSec != 0 {
		t.Fatalf("stale window not empty: %+v", w)
	}
	// …but the ring reuses buckets: a new frame rolls the stale epoch.
	s.FrameProcessed(later, 100, 100, 1, 0)
	w = s.windowAt(later + 1)
	if w.Records != 100 || w.Misses != 1 {
		t.Fatalf("bucket not rolled: %+v", w)
	}
}

func TestTableDeltasAgainstBaseline(t *testing.T) {
	r := NewRegistry(Options{})
	base := []table.Stats{{Kind: "assoc4", Capacity: 1024, Inserts: 100, Evictions: 10, Resets: 1}}
	s, _ := r.Register(&fakeConn{}, Meta{Kind: KindServe, Tables: base})
	// Mutating the caller's slice after Register must not corrupt the baseline.
	base[0].Inserts = 999999
	s.UpdateTables([]table.Stats{{Kind: "assoc4", Capacity: 1024, Inserts: 150, Evictions: 14, Resets: 1}})
	d := s.Tables()
	if len(d) != 1 {
		t.Fatalf("got %d table deltas, want 1", len(d))
	}
	if d[0].DeltaInserts != 50 || d[0].DeltaEvictions != 4 || d[0].DeltaResets != 0 {
		t.Fatalf("deltas = +%d/+%d/+%d, want +50/+4/+0",
			d[0].DeltaInserts, d[0].DeltaEvictions, d[0].DeltaResets)
	}
	if d[0].Inserts != 150 {
		t.Fatalf("live inserts = %d, want 150", d[0].Inserts)
	}
}

func TestViewSortAndShape(t *testing.T) {
	r := NewRegistry(Options{Service: "svc", Tag: "b1"})
	a, _ := r.Register(&fakeConn{}, Meta{Benchmark: "one"})
	b, _ := r.Register(&fakeConn{}, Meta{Benchmark: "two"})
	now := time.Now().UnixNano()
	// b is busier and missier than a.
	a.FrameProcessed(now, 100, 100, 1, time.Millisecond)
	b.FrameProcessed(now, 1000, 1000, 500, 10*time.Millisecond)

	v, err := r.View(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Service != "svc" || v.Tag != "b1" || len(v.Sessions) != 2 {
		t.Fatalf("view shape off: %+v", v)
	}
	if v.Sessions[0].ID != a.ID() {
		t.Fatal("default view not id-sorted")
	}
	for _, key := range []string{SortMissRate, SortRPS, SortWait, SortRecords} {
		SortSessions(v.Sessions, key)
		if v.Sessions[0].ID != b.ID() {
			t.Fatalf("sort %q: busy session not first", key)
		}
	}
	SortSessions(v.Sessions, SortID)
	if v.Sessions[0].ID != a.ID() {
		t.Fatal("sort id: wrong order")
	}
}

// TestConcurrentRegistryUse exercises register/update/snapshot/unregister
// from many goroutines at once; run under -race it is the package's
// thread-safety proof.
func TestConcurrentRegistryUse(t *testing.T) {
	r := NewRegistry(Options{Bucket: 10 * time.Millisecond})
	const workers = 8
	const sessionsPerWorker = 25
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Churners: register, hammer updates, snapshot, unregister.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < sessionsPerWorker; i++ {
				s, err := r.Register(&fakeConn{}, Meta{Kind: KindProxy, Benchmark: "conc"})
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < 50; j++ {
					now := time.Now().UnixNano()
					s.FrameProcessed(now, 10, 10, 1, time.Microsecond)
					s.AckRelayed(now, 10, 10, 1)
					s.JournalDelta(64)
					s.SetBackend("b")
					s.SetInflight(int32(j))
					_ = s.Snapshot()
				}
				if !r.Unregister(s) {
					t.Error("concurrent Unregister lost the first call")
					return
				}
			}
		}()
	}
	// Readers: whole-registry views while the churn runs.
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					v, _ := r.View(context.Background())
					_ = v.Sessions
					_ = r.Live()
					_ = r.Len()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Len(); got != 0 {
		t.Fatalf("registry leaked %d sessions", got)
	}
}

// TestSessionUpdateZeroAllocs pins the enabled hot path at zero allocations
// per update. CI greps for this test name to keep it un-skipped.
func TestSessionUpdateZeroAllocs(t *testing.T) {
	r := NewRegistry(Options{})
	s, _ := r.Register(&fakeConn{}, Meta{Kind: KindServe})
	now := time.Now().UnixNano()
	allocs := testing.AllocsPerRun(1000, func() {
		s.FrameProcessed(now, 100, 100, 5, time.Microsecond)
		s.AckRelayed(now, 100, 100, 5)
		s.AddInflight(1)
		s.AddInflight(-1)
		s.JournalDelta(128)
		s.SetState(StateActive)
	})
	if allocs != 0 {
		t.Fatalf("enabled update path allocates %v per run, want 0", allocs)
	}
}

// TestNilSessionTrackZeroAllocs pins the disabled (nil) path at zero
// allocations — tracking off must cost a nil check and nothing else. CI
// greps for this test name to keep it un-skipped.
func TestNilSessionTrackZeroAllocs(t *testing.T) {
	var r *Registry
	s, err := r.Register(nil, Meta{})
	if s != nil || err != nil {
		t.Fatalf("nil registry Register = %v, %v; want nil, nil", s, err)
	}
	now := time.Now().UnixNano()
	allocs := testing.AllocsPerRun(1000, func() {
		s.FrameProcessed(now, 100, 100, 5, time.Microsecond)
		s.AckRelayed(now, 100, 100, 5)
		s.AddInflight(1)
		s.SetInflight(0)
		s.JournalDelta(128)
		s.SetState(StateActive)
		s.SetBackend("b")
		s.Failover()
		s.ReplayedFrames(1)
		s.SetReplayable(false)
		s.UpdateTables(nil)
		s.Drain()
		s.Kill()
		_ = s.ID()
		_ = s.Snapshot()
		_ = s.Tables()
		r.Unregister(s)
		_ = r.Len()
		_ = r.Live()
		_ = r.BeginDrain()
	})
	if allocs != 0 {
		t.Fatalf("nil (disabled) path allocates %v per run, want 0", allocs)
	}
}
