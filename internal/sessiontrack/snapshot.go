package sessiontrack

import (
	"context"
	"sort"
	"time"

	"github.com/oocsb/ibp/internal/table"
)

// WindowStats is the sliding-window slice of a session's counters: rates
// over the last ~8 seconds rather than since connect.
type WindowStats struct {
	// Seconds is the span the window actually covers (shorter right after
	// connect).
	Seconds       float64 `json:"seconds"`
	Records       int64   `json:"records"`
	Executed      int64   `json:"executed"`
	Misses        int64   `json:"misses"`
	MissRate      float64 `json:"missRate"`
	RecordsPerSec float64 `json:"recordsPerSec"`
	// QueueWaitAvgUS is the mean shard-queue wait per frame in the window,
	// microseconds (serve sessions only).
	QueueWaitAvgUS float64 `json:"queueWaitAvgUs"`
}

// SessionSnapshot is one session's externally visible state: identity,
// lifecycle, cumulative counters, and the sliding window.
type SessionSnapshot struct {
	ID   uint64 `json:"id"`
	Kind string `json:"kind"`
	// Backend is the wire address serving this session: the proxy's current
	// placement on the router side, or (filled by fan-in) the backend a
	// merged serve session lives on.
	Backend   string `json:"backend,omitempty"`
	Upstream  uint64 `json:"upstream,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	Predictor string `json:"predictor,omitempty"`
	TraceID   string `json:"traceId,omitempty"`
	State     string `json:"state"`
	Window    int    `json:"window,omitempty"`

	ConnectedUnixNS int64   `json:"connectedUnixNs"`
	AgeSec          float64 `json:"ageSec"`
	IdleMS          float64 `json:"idleMs"`

	Inflight       int32   `json:"inflight"`
	Frames         uint64  `json:"frames"`
	Records        uint64  `json:"records"`
	Executed       uint64  `json:"executed"`
	Misses         uint64  `json:"misses"`
	MissRate       float64 `json:"missRate"`
	QueueWaitAvgUS float64 `json:"queueWaitAvgUs,omitempty"`

	// Swaps counts tuner predictor hot-swaps; Predictor above reflects the
	// live (post-swap) predictor, not the one the session opened with.
	Swaps uint64 `json:"swaps,omitempty"`
	// MissClasses breaks the session's post-warmup misses down by the
	// tuner's sketch; nil unless a tuner observed the session.
	MissClasses *MissClassCounts `json:"missClasses,omitempty"`

	JournalBytes   int64  `json:"journalBytes,omitempty"`
	Failovers      uint64 `json:"failovers,omitempty"`
	ReplayedFrames uint64 `json:"replayedFrames,omitempty"`
	// Replayable is false once journal eviction forfeited lossless failover
	// (proxy sessions; serve sessions report true vacuously).
	Replayable bool `json:"replayable"`

	Win WindowStats `json:"win"`
}

// MissClassCounts is the tuner's per-session miss-class sketch, using the
// internal/analysis classifier taxonomy.
type MissClassCounts struct {
	Cold     uint64 `json:"cold"`
	Conflict uint64 `json:"conflict"`
	Alias    uint64 `json:"alias"`
	Meta     uint64 `json:"meta"`
}

// TableDelta pairs a predictor table's live stats with the change since the
// session opened, so /sessions/{id} shows what this session did to the
// tables rather than process lifetime totals.
type TableDelta struct {
	table.Stats
	DeltaInserts   uint64 `json:"deltaInserts"`
	DeltaEvictions uint64 `json:"deltaEvictions"`
	DeltaResets    uint64 `json:"deltaResets"`
}

// BackendInfo is one backend's health line in a cluster view.
type BackendInfo struct {
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Sessions int    `json:"sessions"`
	// MetricsAddr is the backend's metrics listener the fan-in polls.
	MetricsAddr string `json:"metricsAddr,omitempty"`
	// Err is the last fan-in poll failure, empty when the poll succeeded.
	Err string `json:"err,omitempty"`
}

// View is a whole-process (or, via fan-in, whole-cluster) session listing.
type View struct {
	Service     string            `json:"service"`
	Tag         string            `json:"tag,omitempty"`
	TakenUnixNS int64             `json:"takenUnixNs"`
	Backends    []BackendInfo     `json:"backends,omitempty"`
	Sessions    []SessionSnapshot `json:"sessions"`
}

// Source is anything that can produce a View: a local Registry, or the
// cluster fan-in that merges backend views. The HTTP layer serves either.
type Source interface {
	View(ctx context.Context) (View, error)
}

func (s *Session) snapshotAt(nowNS int64) SessionSnapshot {
	snap := SessionSnapshot{
		ID:              s.id,
		Kind:            s.meta.Kind.String(),
		Upstream:        s.meta.Upstream,
		Benchmark:       s.meta.Benchmark,
		Tenant:          s.meta.Tenant,
		Predictor:       s.meta.Predictor,
		TraceID:         s.meta.TraceID,
		State:           State(s.state.Load()).String(),
		Window:          s.meta.Window,
		ConnectedUnixNS: s.connectedNS,
		AgeSec:          float64(nowNS-s.connectedNS) / 1e9,
		IdleMS:          float64(nowNS-s.lastNS.Load()) / 1e6,
		Inflight:        s.inflight.Load(),
		Frames:          s.frames.Load(),
		Records:         s.records.Load(),
		Executed:        s.executed.Load(),
		Misses:          s.misses.Load(),
		JournalBytes:    s.journalBytes.Load(),
		Failovers:       s.failovers.Load(),
		ReplayedFrames:  s.replayed.Load(),
		Replayable:      !s.replayLost.Load(),
	}
	if b := s.backend.Load(); b != nil {
		snap.Backend = *b
	}
	if p := s.predictor.Load(); p != nil {
		snap.Predictor = *p
	}
	snap.Swaps = s.swaps.Load()
	c0, c1 := s.missClass[0].Load(), s.missClass[1].Load()
	c2, c3 := s.missClass[2].Load(), s.missClass[3].Load()
	if c0|c1|c2|c3 != 0 {
		snap.MissClasses = &MissClassCounts{Cold: c0, Conflict: c1, Alias: c2, Meta: c3}
	}
	if snap.Executed > 0 {
		snap.MissRate = float64(snap.Misses) / float64(snap.Executed)
	}
	if n := s.waitN.Load(); n > 0 {
		snap.QueueWaitAvgUS = float64(s.waitNS.Load()) / float64(n) / 1e3
	}
	snap.Win = s.windowAt(nowNS)
	return snap
}

// Snapshot returns the session's state as of now. Nil-safe (zero snapshot).
func (s *Session) Snapshot() SessionSnapshot {
	if s == nil {
		return SessionSnapshot{}
	}
	return s.snapshotAt(time.Now().UnixNano())
}

func (s *Session) windowAt(nowNS int64) WindowStats {
	var w WindowStats
	bucketNS := s.reg.bucketNS
	cur := nowNS / bucketNS
	oldest := cur
	var waitNS, waitN int64
	for i := range s.buckets {
		b := &s.buckets[i]
		e := b.epoch.Load()
		if e > cur-winBuckets && e <= cur {
			w.Records += b.records.Load()
			w.Executed += b.executed.Load()
			w.Misses += b.misses.Load()
			waitNS += b.waitNS.Load()
			waitN += b.waitN.Load()
			if e < oldest {
				oldest = e
			}
		}
	}
	// Span from the start of the oldest live bucket to now; floor it so a
	// brand-new session doesn't divide by ~zero.
	w.Seconds = float64(nowNS-oldest*bucketNS) / 1e9
	if w.Seconds < 0.1 {
		w.Seconds = 0.1
	}
	if w.Executed > 0 {
		w.MissRate = float64(w.Misses) / float64(w.Executed)
	}
	w.RecordsPerSec = float64(w.Records) / w.Seconds
	if waitN > 0 {
		w.QueueWaitAvgUS = float64(waitNS) / float64(waitN) / 1e3
	}
	return w
}

// Tables returns the live table stats diffed against the registration
// baseline. Nil for proxy sessions and predictors without table stats.
func (s *Session) Tables() []TableDelta {
	if s == nil {
		return nil
	}
	s.tmu.Lock()
	cur := append([]table.Stats(nil), s.tables...)
	s.tmu.Unlock()
	if len(cur) == 0 {
		return nil
	}
	out := make([]TableDelta, len(cur))
	for i, ts := range cur {
		d := TableDelta{Stats: ts}
		if i < len(s.meta.Tables) {
			base := s.meta.Tables[i]
			d.DeltaInserts = ts.Inserts - base.Inserts
			d.DeltaEvictions = ts.Evictions - base.Evictions
			d.DeltaResets = ts.Resets - base.Resets
		} else {
			d.DeltaInserts = ts.Inserts
			d.DeltaEvictions = ts.Evictions
			d.DeltaResets = ts.Resets
		}
		out[i] = d
	}
	return out
}

func (r *Registry) viewAt(nowNS int64) View {
	v := View{TakenUnixNS: nowNS, Sessions: []SessionSnapshot{}}
	if r == nil {
		return v
	}
	v.Service = r.service
	v.Tag = r.tag
	for _, s := range r.Live() {
		v.Sessions = append(v.Sessions, s.snapshotAt(nowNS))
	}
	SortSessions(v.Sessions, "id")
	return v
}

// View implements Source over the local registry. Never errors.
func (r *Registry) View(context.Context) (View, error) {
	return r.viewAt(time.Now().UnixNano()), nil
}

// Sort keys accepted by SortSessions, /sessions?sort= and ibptop -sort.
const (
	SortID       = "id"       // ascending session id (stable listing)
	SortMissRate = "missrate" // descending windowed miss rate
	SortRPS      = "rps"      // descending windowed records/s
	SortWait     = "wait"     // descending windowed queue wait
	SortRecords  = "records"  // descending cumulative records
)

// SortSessions orders a snapshot slice by the given key (unknown keys fall
// back to id order). All orders tie-break on (backend, id) so output is
// deterministic for tests and scripting.
func SortSessions(ss []SessionSnapshot, key string) {
	less := func(a, b *SessionSnapshot) bool { return false }
	switch key {
	case SortMissRate:
		less = func(a, b *SessionSnapshot) bool { return a.Win.MissRate > b.Win.MissRate }
	case SortRPS:
		less = func(a, b *SessionSnapshot) bool { return a.Win.RecordsPerSec > b.Win.RecordsPerSec }
	case SortWait:
		less = func(a, b *SessionSnapshot) bool { return a.Win.QueueWaitAvgUS > b.Win.QueueWaitAvgUS }
	case SortRecords:
		less = func(a, b *SessionSnapshot) bool { return a.Records > b.Records }
	}
	sort.SliceStable(ss, func(i, j int) bool {
		a, b := &ss[i], &ss[j]
		if less(a, b) {
			return true
		}
		if less(b, a) {
			return false
		}
		if a.Backend != b.Backend {
			return a.Backend < b.Backend
		}
		return a.ID < b.ID
	})
}
