package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/workload"
)

// batchLaneSpec builds one lane for the batch-vs-sequential equivalence
// test: fresh predictors (and shadows) are constructed per run so the two
// engines start from identical state.
type batchLaneSpec struct {
	name     string
	mk       func(t *testing.T) core.Predictor
	mkShadow func(t *testing.T) core.Predictor
	opts     Options // Shadow filled from mkShadow per run
}

func mk2lev(cfg core.Config) func(t *testing.T) core.Predictor {
	return func(t *testing.T) core.Predictor {
		t.Helper()
		p, err := core.NewTwoLevel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

// equivalenceLanes covers every table organization, the exact/unbounded §3
// modes, BTB, the hybrid predictors, and each Options knob (Warmup,
// FlushEvery, Shadow, Sites) plus their combination.
func equivalenceLanes() []batchLaneSpec {
	bounded := func(p int, kind string, entries int) core.Config {
		return core.Config{PathLength: p, Precision: core.AutoPrecision,
			Scheme: bits.Reverse, TableKind: kind, Entries: entries}
	}
	lanes := []batchLaneSpec{
		{name: "exact", mk: mk2lev(core.Config{PathLength: 4, Precision: 0})},
		{name: "unbounded", mk: mk2lev(core.Config{PathLength: 4, Precision: core.AutoPrecision})},
		{name: "tagless", mk: mk2lev(bounded(6, "tagless", 512))},
		{name: "assoc1", mk: mk2lev(bounded(2, "assoc1", 256))},
		{name: "assoc2", mk: mk2lev(bounded(6, "assoc2", 512))},
		{name: "assoc4", mk: mk2lev(bounded(3, "assoc4", 512))},
		{name: "fullassoc", mk: mk2lev(bounded(2, "fullassoc", 128))},
		{name: "pingpong", mk: mk2lev(core.Config{PathLength: 4, Precision: core.AutoPrecision,
			Scheme: bits.PingPong, TableKind: "assoc1", Entries: 256})},
		{name: "include-cond", mk: mk2lev(core.Config{PathLength: 4, Precision: core.AutoPrecision,
			IncludeCond: true})},
		{name: "btb", mk: func(t *testing.T) core.Predictor {
			return core.NewBTB(nil, core.UpdateTwoMiss)
		}},
		{name: "hybrid", mk: func(t *testing.T) core.Predictor {
			t.Helper()
			h, err := core.NewDualPath(1, 3, "assoc4", 256)
			if err != nil {
				t.Fatal(err)
			}
			return h
		}},
		{name: "shared-hybrid", mk: func(t *testing.T) core.Predictor {
			t.Helper()
			h, err := core.NewSharedHybrid(3, 1, "assoc4", 512)
			if err != nil {
				t.Fatal(err)
			}
			return h
		}},
		{name: "ittage", mk: mkITTAGE(4, 256, 2)},
	}
	// Options knobs over a representative subject.
	withOpts := func(name string, opts Options) batchLaneSpec {
		return batchLaneSpec{name: name, mk: mk2lev(bounded(3, "assoc4", 256)), opts: opts}
	}
	lanes = append(lanes,
		withOpts("warmup", Options{Warmup: 100}),
		withOpts("flush", Options{FlushEvery: 173}),
		withOpts("sites", Options{Sites: true}),
		withOpts("all-knobs", Options{Warmup: 50, FlushEvery: 211, Sites: true}),
	)
	shadowed := batchLaneSpec{
		name: "shadowed",
		mk:   mk2lev(bounded(3, "assoc4", 64)),
		mkShadow: func(t *testing.T) core.Predictor {
			t.Helper()
			cfg := core.Config{PathLength: 3, Precision: core.AutoPrecision, TableKind: "unbounded"}
			p, err := core.NewTwoLevel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	return append(lanes, shadowed)
}

// TestRunBatchMatchesSequential is the engine's golden equivalence guarantee:
// for every lane configuration, one batched pass must produce a Result
// byte-identical to a sequential Run of a fresh predictor. The benchmark CI
// job greps for this test being skipped, so it must never t.Skip.
func TestRunBatchMatchesSequential(t *testing.T) {
	cfg := workload.Suite()[0]
	full := cfg.MustGenerate(2000) // includes conditional records

	specs := equivalenceLanes()
	ps := make([]core.Predictor, len(specs))
	opts := make([]Options, len(specs))
	for i, s := range specs {
		ps[i] = s.mk(t)
		opts[i] = s.opts
		if s.mkShadow != nil {
			opts[i].Shadow = s.mkShadow(t)
		}
	}
	batch, err := RunBatchEach(context.Background(), ps, full, opts)
	if err != nil {
		t.Fatalf("RunBatchEach: %v", err)
	}
	for i, s := range specs {
		seq := s.opts
		if s.mkShadow != nil {
			seq.Shadow = s.mkShadow(t)
		}
		want := Run(s.mk(t), full, seq)
		if !reflect.DeepEqual(batch[i], want) {
			t.Errorf("lane %q: batch %+v != sequential %+v", s.name, batch[i], want)
		}
	}
}

func mkITTAGE(banks, entries, minHist int) func(t *testing.T) core.Predictor {
	return func(t *testing.T) core.Predictor {
		t.Helper()
		p, err := core.NewITTAGE(banks, entries, minHist)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

// TestRunBatchITTAGESuiteEquivalence is ITTAGE's membership proof in the
// engine equivalence guarantee, across the full paper suite: for every
// benchmark, one batched pass matches a sequential run byte for byte, and a
// single predictor reused across benchmarks with the O(1) gen-stamped
// Reset() between them matches a freshly constructed predictor on each — so
// Reset really is "as new". The benchmark CI job greps for this test being
// skipped, so it must never t.Skip.
func TestRunBatchITTAGESuiteEquivalence(t *testing.T) {
	reused := mkITTAGE(4, 256, 2)(t)
	for _, cfg := range workload.Suite() {
		tr := cfg.MustGenerate(1500)
		opts := Options{Warmup: 100}

		batch, err := RunBatchEach(context.Background(),
			[]core.Predictor{mkITTAGE(4, 256, 2)(t)}, tr, []Options{opts})
		if err != nil {
			t.Fatalf("%s: RunBatchEach: %v", cfg.Name, err)
		}
		want := Run(mkITTAGE(4, 256, 2)(t), tr, opts)
		if !reflect.DeepEqual(batch[0], want) {
			t.Errorf("%s: batch %+v != sequential %+v", cfg.Name, batch[0], want)
		}

		reused.(core.Resetter).Reset()
		if got := Run(reused, tr, opts); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Reset-reused %+v != fresh %+v", cfg.Name, got, want)
		}
	}
}

// TestRunBatchSharedOptions exercises the RunBatch wrapper (shared Options)
// against sequential runs.
func TestRunBatchSharedOptions(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000, 0x4000}, 400)
	mk := func() []core.Predictor {
		return []core.Predictor{
			core.NewBTB(nil, core.UpdateTwoMiss),
			core.MustTwoLevel(core.Config{PathLength: 2, Precision: core.AutoPrecision,
				TableKind: "assoc2", Entries: 64}),
		}
	}
	opts := Options{Warmup: 10}
	batch, err := RunBatch(context.Background(), mk(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range mk() {
		want := Run(p, tr, opts)
		if !reflect.DeepEqual(batch[i], want) {
			t.Errorf("lane %d: batch %+v != sequential %+v", i, batch[i], want)
		}
	}
}

func TestRunBatchRejectsSharedShadow(t *testing.T) {
	shadow := core.MustTwoLevel(core.Config{PathLength: 0, Precision: core.AutoPrecision})
	ps := []core.Predictor{
		core.NewBTB(nil, core.UpdateAlways),
		core.NewBTB(nil, core.UpdateTwoMiss),
	}
	if _, err := RunBatch(context.Background(), ps, nil, Options{Shadow: shadow}); err == nil {
		t.Fatal("RunBatch accepted one shadow for two lanes")
	}
	// A single lane may carry a shadow through RunBatch.
	if _, err := RunBatch(context.Background(), ps[:1], nil, Options{Shadow: shadow}); err != nil {
		t.Fatalf("single-lane shadow rejected: %v", err)
	}
}

// panicAfter panics on the n-th Update.
type panicAfter struct {
	n int
}

func (p *panicAfter) Predict(pc uint32) (uint32, bool) { return 0, false }
func (p *panicAfter) Update(pc, target uint32) {
	p.n--
	if p.n <= 0 {
		panic("predictor blew up")
	}
}
func (p *panicAfter) Name() string { return "panic-after" }

// TestRunBatchIsolatesLanePanic: a panicking predictor degrades its own lane
// and leaves the others' results untouched.
func TestRunBatchIsolatesLanePanic(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000}, 300)
	good := func() core.Predictor { return core.NewBTB(nil, core.UpdateTwoMiss) }
	ps := []core.Predictor{good(), &panicAfter{n: 100}, good()}
	rs, err := RunBatch(context.Background(), ps, tr, Options{})
	if err == nil {
		t.Fatal("lane panic not reported")
	}
	var be *BatchError
	if !errors.As(err, &be) || len(be.Lanes) != 1 || be.Lanes[0].Lane != 1 {
		t.Fatalf("err = %v, want BatchError for lane 1", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Val != "predictor blew up" {
		t.Fatalf("lane error does not carry the panic value: %v", err)
	}
	want := Run(good(), tr, Options{})
	for _, i := range []int{0, 2} {
		if !reflect.DeepEqual(rs[i], want) {
			t.Errorf("healthy lane %d: %+v != %+v", i, rs[i], want)
		}
	}
}

// TestRunContextRepanics: the single-lane wrappers preserve the historical
// contract that predictor panics propagate to the caller.
func TestRunContextRepanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "predictor blew up" {
			t.Fatalf("recovered %v, want the original panic value", r)
		}
	}()
	tr := cycleTrace(0x1000, []uint32{0x2000}, 10)
	Run(&panicAfter{n: 3}, tr, Options{})
	t.Fatal("Run returned despite predictor panic")
}

// TestRunBatchCancellation: cancellation returns partial results with
// ctx.Err() identity preserved.
func TestRunBatchCancellation(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000}, 2*blockSize)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, err := RunBatch(ctx, []core.Predictor{core.NewBTB(nil, core.UpdateTwoMiss)}, tr, Options{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled identity", err)
	}
	if rs[0].Executed >= len(tr) {
		t.Errorf("cancelled batch executed all %d branches", rs[0].Executed)
	}
}
