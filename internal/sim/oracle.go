package sim

import "github.com/oocsb/ibp/internal/trace"

// OracleStatic returns the misprediction rate (percent) of a perfect static
// predictor: each site always predicts its overall most frequent target,
// chosen with full knowledge of the trace. It bounds what profile-guided
// (compile-time) devirtualization could achieve and separates a benchmark's
// "dominant target" predictability from its history predictability
// (cf. Driesen & Hölzle, "Limits of Indirect Branch Prediction", TRCS97-10).
func OracleStatic(tr trace.Trace) float64 {
	counts := make(map[uint32]map[uint32]int)
	total := 0
	for _, r := range tr {
		if !r.Kind.Indirect() {
			continue
		}
		m := counts[r.PC]
		if m == nil {
			m = make(map[uint32]int)
			counts[r.PC] = m
		}
		m[r.Target]++
		total++
	}
	if total == 0 {
		return 0
	}
	hits := 0
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		hits += best
	}
	return 100 * float64(total-hits) / float64(total)
}

// OracleFirstOrder returns the misprediction rate (percent) of a perfect
// first-order predictor: for each (site, previous target at that site) pair
// it predicts the most frequent successor, again with full knowledge of the
// trace. It bounds what any per-branch (s=2, p=1) predictor could learn.
func OracleFirstOrder(tr trace.Trace) float64 {
	type key struct{ pc, prev uint32 }
	counts := make(map[key]map[uint32]int)
	last := make(map[uint32]uint32)
	seen := make(map[uint32]bool)
	total := 0
	for _, r := range tr {
		if !r.Kind.Indirect() {
			continue
		}
		if seen[r.PC] {
			k := key{r.PC, last[r.PC]}
			m := counts[k]
			if m == nil {
				m = make(map[uint32]int)
				counts[k] = m
			}
			m[r.Target]++
			total++
		}
		last[r.PC] = r.Target
		seen[r.PC] = true
	}
	if total == 0 {
		return 0
	}
	hits := 0
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		hits += best
	}
	return 100 * float64(total-hits) / float64(total)
}
