package sim

import (
	"testing"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/trace"
)

func TestOracleStatic(t *testing.T) {
	// 70/30 split at one site: the oracle always predicts the majority
	// target, missing exactly 30%.
	var tr trace.Trace
	for i := 0; i < 100; i++ {
		tgt := uint32(0x2000)
		if i%10 >= 7 {
			tgt = 0x3000
		}
		tr = append(tr, trace.Record{PC: 0x1000, Target: tgt, Kind: trace.VirtualCall, Gap: 1})
	}
	if got := OracleStatic(tr); got != 30 {
		t.Errorf("OracleStatic = %v, want 30", got)
	}
	if got := OracleStatic(nil); got != 0 {
		t.Errorf("empty OracleStatic = %v", got)
	}
}

func TestOracleFirstOrderBeatsStaticOnCycle(t *testing.T) {
	// A period-2 cycle is 50% for the static oracle but 0% for the
	// first-order oracle (the previous target determines the next).
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000}, 200)
	if got := OracleStatic(tr); got != 50 {
		t.Errorf("OracleStatic = %v, want 50", got)
	}
	if got := OracleFirstOrder(tr); got != 0 {
		t.Errorf("OracleFirstOrder = %v, want 0", got)
	}
	if got := OracleFirstOrder(nil); got != 0 {
		t.Errorf("empty OracleFirstOrder = %v", got)
	}
}

func TestOraclesLowerBoundPredictors(t *testing.T) {
	// On any stream, no realizable BTB beats the static oracle by more
	// than warm-up effects allow; check the ordering on a mixed stream.
	tr := append(cycleTrace(0x1000, []uint32{0x2000, 0x3000, 0x4000}, 200),
		cycleTrace(0x2000, []uint32{0x5000}, 100)...)
	static := OracleStatic(tr)
	first := OracleFirstOrder(tr)
	btb := MissRate(core.NewBTB(nil, core.UpdateTwoMiss), tr)
	if first > static {
		t.Errorf("first-order oracle (%v) worse than static (%v)", first, static)
	}
	if btb < first-1 {
		t.Errorf("BTB (%v) beat the first-order oracle (%v)", btb, first)
	}
}

func TestFlushEveryHurtsLearnedState(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000, 0x4000}, 500)
	mk := func() core.Predictor {
		return core.MustTwoLevel(core.Config{PathLength: 1, Precision: core.AutoPrecision})
	}
	clean := Run(mk(), tr, Options{})
	flushed := Run(mk(), tr, Options{FlushEvery: 50})
	if flushed.Misses <= clean.Misses {
		t.Errorf("flushing every 50 branches: %d misses vs %d clean", flushed.Misses, clean.Misses)
	}
	// Roughly: each flush costs ~3 cold misses (one per pattern).
	if flushed.Misses < clean.Misses+20 {
		t.Errorf("flush cost implausibly low: %d vs %d", flushed.Misses, clean.Misses)
	}
}
