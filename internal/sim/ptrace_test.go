package sim

import (
	"context"
	"testing"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/ptrace"
	"github.com/oocsb/ibp/internal/trace"
)

// TestDisabledEventSinkZeroAllocs is the event layer's overhead guard: with
// no sink attached (the default of every sweep and benchmark), the steady-
// state block step must not allocate — the per-record cost of the event hook
// is one nil check. CI refuses to let this assertion skip.
func TestDisabledEventSinkZeroAllocs(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x2040, 0x2080}, 300)
	p := core.MustTwoLevel(core.Config{PathLength: 4, Precision: core.AutoPrecision,
		Scheme: bits.Reverse, TableKind: "tagless", Entries: 512})
	l := trainedLane(p, tr, nil)
	if l.sink != nil {
		t.Fatal("sink attached without Options.Events")
	}
	allocs := testing.AllocsPerRun(5, func() {
		l.step(tr, nil)
	})
	if allocs != 0 {
		t.Errorf("disabled-sink step: %v allocs per %d-record block, want 0", allocs, len(tr))
	}
}

// TestEnabledEventSinkZeroAllocs pins the other half: a live sink records
// into its preallocated ring, so even full-trace capture adds no GC pressure
// to the hot loop.
func TestEnabledEventSinkZeroAllocs(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x2040, 0x2080}, 300)
	p := core.MustTwoLevel(core.Config{PathLength: 4, Precision: core.AutoPrecision,
		Scheme: bits.Reverse, TableKind: "tagless", Entries: 512})
	sink := ptrace.NewEventSink(1<<16, 1)
	l := &lane{}
	l.init(p, Options{Events: sink}, nil)
	for pass := 0; pass < 2; pass++ {
		l.step(tr, nil)
	}
	allocs := testing.AllocsPerRun(5, func() {
		l.step(tr, nil)
	})
	if allocs != 0 {
		t.Errorf("enabled-sink step: %v allocs per %d-record block, want 0", allocs, len(tr))
	}
	if sink.Offered() == 0 {
		t.Error("sink saw no events")
	}
}

// TestEventStreamMatchesResult replays a run's event stream and checks it
// reproduces the Result's accounting exactly: executed, misses, and
// no-prediction counts, with warmup excluded the same way.
func TestEventStreamMatchesResult(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000, 0x4000}, 200)
	p := core.MustTwoLevel(core.Config{PathLength: 2, Precision: core.AutoPrecision,
		Scheme: bits.Reverse, TableKind: "assoc2", Entries: 64})
	sink := ptrace.NewEventSink(len(tr), 1)
	res, err := RunBatchEach(context.Background(), []core.Predictor{p}, tr, []Options{{Warmup: 50, Events: sink}})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Complete() {
		t.Fatalf("capture incomplete: offered %d, held %d", sink.Offered(), sink.Len())
	}
	evs := sink.Events()
	if len(evs) != len(tr) {
		t.Fatalf("captured %d events over %d indirect branches", len(evs), len(tr))
	}
	var executed, misses, nopred int
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if ev.Warmup {
			continue
		}
		executed++
		if ev.Miss {
			misses++
		}
		if !ev.HasPred {
			nopred++
		}
	}
	if executed != res[0].Executed || misses != res[0].Misses || nopred != res[0].NoPrediction {
		t.Errorf("event replay %d/%d/%d != Result %d/%d/%d",
			executed, misses, nopred, res[0].Executed, res[0].Misses, res[0].NoPrediction)
	}
}

// TestEventAttributionDetail checks the predictor-side enrichment on a
// single-site trace: the first encounter is a no-prediction miss that
// allocates a new entry, later encounters hit the table under the same
// pattern set.
func TestEventAttributionDetail(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000}, 50)
	p := core.NewBTB(nil, core.UpdateTwoMiss)
	sink := ptrace.NewEventSink(len(tr), 1)
	if _, err := RunBatchEach(context.Background(), []core.Predictor{p}, tr, []Options{{Events: sink}}); err != nil {
		t.Fatal(err)
	}
	evs := sink.Events()
	first := evs[0]
	if first.HasPred || !first.Miss || first.TableHit {
		t.Errorf("first event should be a cold table miss: %+v", first)
	}
	if !first.NewEntry || first.Evicted {
		t.Errorf("first update should allocate without evicting: %+v", first)
	}
	if first.Pattern == 0 {
		t.Errorf("BTB attribution left Pattern empty: %+v", first)
	}
	for i, ev := range evs[1:] {
		if !ev.TableHit || ev.Miss {
			t.Fatalf("event %d: monomorphic site missed after training: %+v", i+1, ev)
		}
		if ev.Pattern != first.Pattern {
			t.Fatalf("pattern drifted on a single-site BTB: %x vs %x", ev.Pattern, first.Pattern)
		}
	}
}

// TestEventHybridComponentAndMisSteer drives a dual-path hybrid and checks
// the metapredictor attribution: events carry a chosen component, and over a
// noisy stream at least one miss is flagged AltCorrect (the other component
// was right while the chosen one was wrong).
func TestEventHybridComponentAndMisSteer(t *testing.T) {
	// Alternating short cycles with occasional phase flips make the two
	// path lengths disagree regularly.
	var tr trace.Trace
	for i := 0; i < 400; i++ {
		t1 := uint32(0x2000 + 0x40*(i%3))
		t2 := uint32(0x8000 + 0x40*((i/7)%5))
		tr = append(tr,
			trace.Record{PC: 0x1000, Target: t1, Kind: trace.IndirectJump, Gap: 10},
			trace.Record{PC: 0x1400, Target: t2, Kind: trace.VirtualCall, Gap: 10},
		)
	}
	h, err := core.NewDualPath(1, 6, "assoc4", 256)
	if err != nil {
		t.Fatal(err)
	}
	sink := ptrace.NewEventSink(len(tr), 1)
	if _, err := RunBatchEach(context.Background(), []core.Predictor{h}, tr, []Options{{Events: sink}}); err != nil {
		t.Fatal(err)
	}
	var chosen0, chosen1, altCorrect int
	for _, ev := range sink.Events() {
		switch ev.Component {
		case 0:
			chosen0++
		case 1:
			chosen1++
		}
		if ev.Miss && ev.AltCorrect {
			altCorrect++
		}
	}
	if chosen0 == 0 || chosen1 == 0 {
		t.Errorf("metapredictor never exercised both components: %d/%d", chosen0, chosen1)
	}
	if altCorrect == 0 {
		t.Error("no metapredictor mis-steer detected over a divergent stream")
	}
}

// TestSharedEventSinkRejected pins the one-sink-per-lane contract for both
// batch entry points.
func TestSharedEventSinkRejected(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000}, 10)
	mk := func() core.Predictor { return core.NewBTB(nil, core.UpdateTwoMiss) }
	sink := ptrace.NewEventSink(64, 1)
	_, err := RunBatch(context.Background(), []core.Predictor{mk(), mk()}, tr, Options{Events: sink})
	if err == nil {
		t.Error("RunBatch accepted a shared sink across 2 lanes")
	}
	_, err = RunBatchEach(context.Background(), []core.Predictor{mk(), mk()}, tr,
		[]Options{{Events: sink}, {Events: sink}})
	if err == nil {
		t.Error("RunBatchEach accepted one sink on 2 lanes")
	}
	// Distinct sinks are fine.
	_, err = RunBatchEach(context.Background(), []core.Predictor{mk(), mk()}, tr,
		[]Options{{Events: ptrace.NewEventSink(64, 1)}, {Events: ptrace.NewEventSink(64, 1)}})
	if err != nil {
		t.Errorf("distinct sinks rejected: %v", err)
	}
}
