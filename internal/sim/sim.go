// Package sim drives predictors over branch traces and accounts for
// mispredictions the way the paper does: every dynamic indirect branch is
// predicted then resolved; a missing prediction counts as a misprediction;
// returns are excluded (they belong to the return address stack); and an
// optional unbounded shadow twin attributes misses to capacity/conflict
// effects (§5.1).
package sim

import (
	"context"
	"fmt"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/trace"
)

// Options controls a simulation run.
type Options struct {
	// Warmup is the number of leading indirect branches excluded from the
	// accounting (they still train the predictor). The paper skips
	// initialization phases of two benchmarks the same way (§2).
	Warmup int
	// Shadow, when non-nil, is an unbounded predictor with the same key
	// function as the subject; a subject miss that the shadow predicts
	// correctly is counted as a capacity/conflict miss.
	Shadow core.Predictor
	// Sites enables per-site accounting (used for benchmark analysis).
	Sites bool
	// FlushEvery clears all predictor state every N indirect branches,
	// modelling context switches that lose the predictor's contents
	// (cf. [ECP96]). 0 disables flushing. Requires a predictor
	// implementing core.Resetter; others are left untouched.
	FlushEvery int
}

// SiteStats is the per-branch-site accounting collected when Options.Sites
// is set.
type SiteStats struct {
	Executed int
	Misses   int
}

// Result summarizes one simulation.
type Result struct {
	// Executed is the number of indirect branches counted (after warmup).
	Executed int
	// Misses is the number of mispredictions (wrong target or no
	// prediction).
	Misses int
	// NoPrediction is the subset of Misses where the predictor produced
	// no target at all.
	NoPrediction int
	// CapacityMisses is the subset of Misses the unbounded shadow twin
	// predicted correctly (only populated when a shadow was supplied).
	CapacityMisses int
	// Warmup is the number of indirect branches excluded from accounting.
	Warmup int
	// PerSite holds per-site counts when requested.
	PerSite map[uint32]*SiteStats
}

// MissRate returns the misprediction rate in percent.
func (r Result) MissRate() float64 {
	if r.Executed == 0 {
		return 0
	}
	return 100 * float64(r.Misses) / float64(r.Executed)
}

// CapacityRate returns the capacity/conflict misprediction rate in percent.
func (r Result) CapacityRate() float64 {
	if r.Executed == 0 {
		return 0
	}
	return 100 * float64(r.CapacityMisses) / float64(r.Executed)
}

// String renders the result as a one-line report.
func (r Result) String() string {
	s := fmt.Sprintf("%.2f%% misses (%d/%d, %d no-prediction)",
		r.MissRate(), r.Misses, r.Executed, r.NoPrediction)
	if r.CapacityMisses > 0 {
		s += fmt.Sprintf(", %.2f%% capacity", r.CapacityRate())
	}
	return s
}

// Run simulates the predictor over the trace. Conditional-branch records are
// delivered to predictors implementing core.CondObserver; return records are
// skipped (see the ras package).
func Run(p core.Predictor, tr trace.Trace, opts Options) Result {
	res, _ := RunContext(context.Background(), p, tr, opts)
	return res
}

// cancelCheckStride is how many trace records RunContext processes between
// context checks; a power of two keeps the hot-loop test to a mask.
const cancelCheckStride = 1 << 13

// RunContext is Run with cooperative cancellation: the context is polled
// every few thousand records and, once it is done, the partial Result
// accumulated so far is returned together with ctx.Err(). The partial result
// is internally consistent (all counters describe the records actually
// simulated) but must not be mistaken for a full-trace measurement.
func RunContext(ctx context.Context, p core.Predictor, tr trace.Trace, opts Options) (Result, error) {
	res := Result{Warmup: opts.Warmup}
	if opts.Sites {
		res.PerSite = make(map[uint32]*SiteStats)
	}
	condObs, _ := p.(core.CondObserver)
	var shadowObs core.CondObserver
	if opts.Shadow != nil {
		shadowObs, _ = opts.Shadow.(core.CondObserver)
	}
	resetter, _ := p.(core.Resetter)
	var shadowResetter core.Resetter
	if opts.Shadow != nil {
		shadowResetter, _ = opts.Shadow.(core.Resetter)
	}
	done := ctx.Done()
	seen := 0
	for ri, r := range tr {
		if done != nil && ri&(cancelCheckStride-1) == 0 {
			select {
			case <-done:
				return res, ctx.Err()
			default:
			}
		}
		switch {
		case r.Kind == trace.Cond:
			if condObs != nil {
				condObs.ObserveCond(r.PC, r.Target, r.Target != 0)
			}
			if shadowObs != nil {
				shadowObs.ObserveCond(r.PC, r.Target, r.Target != 0)
			}
			continue
		case !r.Kind.Indirect():
			continue
		}
		if opts.FlushEvery > 0 && seen > 0 && seen%opts.FlushEvery == 0 {
			if resetter != nil {
				resetter.Reset()
			}
			if shadowResetter != nil {
				shadowResetter.Reset()
			}
		}
		pred, ok := p.Predict(r.PC)
		p.Update(r.PC, r.Target)
		var shadowCorrect bool
		if opts.Shadow != nil {
			st, sok := opts.Shadow.Predict(r.PC)
			opts.Shadow.Update(r.PC, r.Target)
			shadowCorrect = sok && st == r.Target
		}
		seen++
		if seen <= opts.Warmup {
			continue
		}
		res.Executed++
		miss := !ok || pred != r.Target
		if miss {
			res.Misses++
			if !ok {
				res.NoPrediction++
			}
			if shadowCorrect {
				res.CapacityMisses++
			}
		}
		if res.PerSite != nil {
			ss := res.PerSite[r.PC]
			if ss == nil {
				ss = &SiteStats{}
				res.PerSite[r.PC] = ss
			}
			ss.Executed++
			if miss {
				ss.Misses++
			}
		}
	}
	return res, nil
}

// MissRate is a convenience wrapper: simulate and return the misprediction
// percentage with default options.
func MissRate(p core.Predictor, tr trace.Trace) float64 {
	return Run(p, tr, Options{}).MissRate()
}
