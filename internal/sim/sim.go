// Package sim drives predictors over branch traces and accounts for
// mispredictions the way the paper does: every dynamic indirect branch is
// predicted then resolved; a missing prediction counts as a misprediction;
// returns are excluded (they belong to the return address stack); and an
// optional unbounded shadow twin attributes misses to capacity/conflict
// effects (§5.1).
//
// The engine is batched: RunBatchEach drives any number of predictors
// ("lanes") over one trace in a single pass, sharing the record decode and
// cancellation checks and isolating each lane's panics, so a sweep over a
// configuration grid pays for the trace once per benchmark instead of once
// per configuration. Run/RunContext are the single-lane form.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/ptrace"
	"github.com/oocsb/ibp/internal/table"
	"github.com/oocsb/ibp/internal/telemetry"
	"github.com/oocsb/ibp/internal/trace"
)

// Options controls a simulation run.
type Options struct {
	// Warmup is the number of leading indirect branches excluded from the
	// accounting (they still train the predictor). The paper skips
	// initialization phases of two benchmarks the same way (§2).
	Warmup int
	// Shadow, when non-nil, is an unbounded predictor with the same key
	// function as the subject; a subject miss that the shadow predicts
	// correctly is counted as a capacity/conflict miss. A Shadow instance
	// belongs to exactly one lane: it trains on every branch of that
	// lane's run, so sharing one across RunBatch lanes would corrupt it
	// (RunBatch rejects that; RunBatchEach takes per-lane Options).
	Shadow core.Predictor
	// Sites enables per-site accounting (used for benchmark analysis).
	Sites bool
	// FlushEvery clears all predictor state every N indirect branches,
	// modelling context switches that lose the predictor's contents
	// (cf. [ECP96]). 0 disables flushing. Requires a predictor
	// implementing core.Resetter; others are left untouched.
	FlushEvery int
	// Events, when non-nil, receives one ptrace.Event per dynamic indirect
	// branch (warmup included, sampling and ring bounds applied by the
	// sink). Predictors implementing core.Attributor have attribution
	// recording switched on for the run, enriching events with the history
	// pattern, table hit/evict detail, and the hybrid component chosen;
	// other predictors produce events with sim-visible fields only. Like a
	// Shadow, a sink belongs to exactly one lane — it is not safe for
	// concurrent use, so sharing one across RunBatch lanes is rejected.
	Events *ptrace.EventSink
}

// SiteStats is the per-branch-site accounting collected when Options.Sites
// is set.
type SiteStats struct {
	Executed int
	Misses   int
}

// Result summarizes one simulation.
type Result struct {
	// Executed is the number of indirect branches counted (after warmup).
	Executed int
	// Misses is the number of mispredictions (wrong target or no
	// prediction).
	Misses int
	// NoPrediction is the subset of Misses where the predictor produced
	// no target at all.
	NoPrediction int
	// CapacityMisses is the subset of Misses the unbounded shadow twin
	// predicted correctly (only populated when a shadow was supplied).
	CapacityMisses int
	// Warmup is the number of indirect branches excluded from accounting.
	Warmup int
	// PerSite holds per-site counts when requested.
	PerSite map[uint32]*SiteStats
	// Tables summarizes the predictor's target tables over this run
	// (occupancy at completion; insert/eviction/reset deltas attributed to
	// this run even on a reused predictor instance). Populated only when
	// telemetry is enabled (telemetry.Default() non-nil) and the predictor
	// implements core.TableStatser; nil otherwise.
	Tables []table.Stats
}

// MissRate returns the misprediction rate in percent.
func (r Result) MissRate() float64 {
	if r.Executed == 0 {
		return 0
	}
	return 100 * float64(r.Misses) / float64(r.Executed)
}

// CapacityRate returns the capacity/conflict misprediction rate in percent.
func (r Result) CapacityRate() float64 {
	if r.Executed == 0 {
		return 0
	}
	return 100 * float64(r.CapacityMisses) / float64(r.Executed)
}

// String renders the result as a one-line report.
func (r Result) String() string {
	s := fmt.Sprintf("%.2f%% misses (%d/%d, %d no-prediction)",
		r.MissRate(), r.Misses, r.Executed, r.NoPrediction)
	if r.CapacityMisses > 0 {
		s += fmt.Sprintf(", %.2f%% capacity", r.CapacityRate())
	}
	return s
}

// PanicError wraps a panic recovered from one predictor lane of a batched
// run. The lane is dead from that point on (its partial Result must not be
// used); the other lanes are unaffected.
type PanicError struct {
	// Val is the original panic value.
	Val any
	// Stack is the stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("predictor panicked: %v\n%s", e.Val, e.Stack)
}

// LaneError attributes a failure to one lane of a batched run.
type LaneError struct {
	// Lane indexes the predictor in the RunBatch/RunBatchEach call.
	Lane int
	// Err is the lane's failure (a *PanicError for recovered panics).
	Err error
}

func (e LaneError) Error() string { return fmt.Sprintf("lane %d: %v", e.Lane, e.Err) }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e LaneError) Unwrap() error { return e.Err }

// BatchError aggregates the per-lane failures of a batched run. Lanes not
// listed completed normally and their Results are valid: a misbehaving
// predictor degrades its own lane, not the whole pass.
type BatchError struct {
	Lanes []LaneError
}

func (e *BatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %d of batch lanes failed", len(e.Lanes))
	for _, le := range e.Lanes {
		fmt.Fprintf(&b, "; %v", le)
	}
	return b.String()
}

// Unwrap exposes the lane errors to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Lanes))
	for i, le := range e.Lanes {
		out[i] = le
	}
	return out
}

// runMetrics is the set of hot-loop telemetry handles resolved once per
// batched run. A nil *runMetrics means telemetry is disabled and the engine
// takes the uninstrumented path.
type runMetrics struct {
	records   *telemetry.Counter   // trace records scanned, summed over lanes
	predicts  *telemetry.Counter   // indirect branches predicted (incl. warmup)
	misses    *telemetry.Counter   // mispredictions
	panics    *telemetry.Counter   // lanes killed by a predictor panic
	evictions *telemetry.Counter   // table entries displaced (per-run deltas)
	resets    *telemetry.Counter   // whole-table resets (per-run deltas)
	occupancy *telemetry.Gauge     // last observed end-of-run table occupancy
	block     *telemetry.Histogram // wall time per lane-block
}

// newRunMetrics resolves the handles against r, or returns nil when
// telemetry is disabled.
func newRunMetrics(r *telemetry.Registry) *runMetrics {
	if r == nil {
		return nil
	}
	return &runMetrics{
		records:   r.Counter("sim_records_total"),
		predicts:  r.Counter("sim_predicts_total"),
		misses:    r.Counter("sim_misses_total"),
		panics:    r.Counter("sim_lane_panics_total"),
		evictions: r.Counter("sim_table_evictions_total"),
		resets:    r.Counter("sim_table_resets_total"),
		occupancy: r.Gauge("sim_table_occupancy"),
		block:     r.Histogram("sim_block"),
	}
}

// lane is the per-predictor state of a batched run.
type lane struct {
	p         core.Predictor
	condObs   core.CondObserver
	resetter  core.Resetter
	statser   core.TableStatser
	shadow    core.Predictor
	shadowObs core.CondObserver
	shadowRst core.Resetter
	sink      *ptrace.EventSink
	attrib    core.Attributor
	opts      Options
	seen      int
	res       Result
	dead      bool
	err       error
	// baseStats is the predictor's table counters at run start, so the
	// per-Result snapshot reports this run's deltas even when the predictor
	// is a reused (Reset) instance. Only captured when telemetry is on.
	baseStats []table.Stats
}

func (l *lane) init(p core.Predictor, opts Options, m *runMetrics) {
	l.p = p
	l.opts = opts
	l.condObs, _ = p.(core.CondObserver)
	l.resetter, _ = p.(core.Resetter)
	l.shadow = opts.Shadow
	if l.shadow != nil {
		l.shadowObs, _ = l.shadow.(core.CondObserver)
		l.shadowRst, _ = l.shadow.(core.Resetter)
	}
	l.res = Result{Warmup: opts.Warmup}
	if opts.Sites {
		l.res.PerSite = make(map[uint32]*SiteStats)
	}
	if opts.Events != nil {
		l.sink = opts.Events
		if a, ok := p.(core.Attributor); ok {
			a.SetAttribution(true)
			l.attrib = a
		}
	}
	if m != nil {
		if l.statser, _ = p.(core.TableStatser); l.statser != nil {
			l.baseStats = l.statser.TableStats()
		}
	}
}

// finishStats attaches the lane's per-run table snapshot to its Result and
// publishes the deltas to the registry. Dead lanes are skipped (their tables
// may be mid-mutation).
func (l *lane) finishStats(m *runMetrics) {
	if m == nil || l.statser == nil || l.dead {
		return
	}
	cur := l.statser.TableStats()
	if len(cur) != len(l.baseStats) {
		return // table topology changed under us; don't misattribute
	}
	for i := range cur {
		cur[i] = cur[i].Sub(l.baseStats[i])
		m.evictions.Add(cur[i].Evictions)
		m.resets.Add(cur[i].Resets)
	}
	l.res.Tables = cur
	m.occupancy.Set(table.Merge(cur).Occupancy)
}

// step advances the lane over one block and publishes the block's counter
// deltas: one histogram observation and three atomic adds per 8192-record block,
// so enabled telemetry never touches the per-record path.
func (l *lane) step(block []trace.Record, m *runMetrics) {
	if m == nil {
		l.runBlock(block)
		return
	}
	start := time.Now()
	seen0, miss0 := l.seen, l.res.Misses
	l.runBlock(block)
	m.block.Observe(time.Since(start))
	m.records.Add(uint64(len(block)))
	m.predicts.Add(uint64(l.seen - seen0))
	m.misses.Add(uint64(l.res.Misses - miss0))
	if l.dead {
		m.panics.Inc()
	}
}

// runBlock advances the lane over one block of trace records. The hot
// counters live in locals for the duration of the block and are written back
// by the deferred function, which also converts a predictor panic into a
// dead lane carrying a *PanicError — one deferred frame per lane-block
// instead of per record keeps isolation off the per-branch path.
func (l *lane) runBlock(block []trace.Record) {
	seen, res := l.seen, l.res
	defer func() {
		l.seen, l.res = seen, res
		if r := recover(); r != nil {
			l.dead = true
			l.err = &PanicError{Val: r, Stack: debug.Stack()}
		}
	}()
	for _, r := range block {
		switch {
		case r.Kind == trace.Cond:
			if l.condObs != nil {
				l.condObs.ObserveCond(r.PC, r.Target, r.Target != 0)
			}
			if l.shadowObs != nil {
				l.shadowObs.ObserveCond(r.PC, r.Target, r.Target != 0)
			}
			continue
		case !r.Kind.Indirect():
			continue
		}
		if l.opts.FlushEvery > 0 && seen > 0 && seen%l.opts.FlushEvery == 0 {
			if l.resetter != nil {
				l.resetter.Reset()
			}
			if l.shadowRst != nil {
				l.shadowRst.Reset()
			}
		}
		pred, ok := l.p.Predict(r.PC)
		l.p.Update(r.PC, r.Target)
		var shadowCorrect bool
		if l.shadow != nil {
			st, sok := l.shadow.Predict(r.PC)
			l.shadow.Update(r.PC, r.Target)
			shadowCorrect = sok && st == r.Target
		}
		seen++
		miss := !ok || pred != r.Target
		if l.sink != nil {
			l.emit(r, pred, ok, miss, seen)
		}
		if seen <= l.opts.Warmup {
			continue
		}
		res.Executed++
		if miss {
			res.Misses++
			if !ok {
				res.NoPrediction++
			}
			if shadowCorrect {
				res.CapacityMisses++
			}
		}
		if res.PerSite != nil {
			ss := res.PerSite[r.PC]
			if ss == nil {
				ss = &SiteStats{}
				res.PerSite[r.PC] = ss
			}
			ss.Executed++
			if miss {
				ss.Misses++
			}
		}
	}
}

// emit offers one per-prediction event to the lane's sink, merging the
// sim-visible outcome with the predictor's attribution detail when the
// predictor records it. Kept out of runBlock so the hot loop's sink-disabled
// cost stays at a single nil check.
func (l *lane) emit(r trace.Record, pred uint32, ok, miss bool, seen int) {
	ev := ptrace.Event{
		Seq:       uint64(seen),
		PC:        r.PC,
		Predicted: pred,
		Actual:    r.Target,
		Component: -1,
		HasPred:   ok,
		Miss:      miss,
		Warmup:    seen <= l.opts.Warmup,
		TableHit:  ok,
	}
	if l.attrib != nil {
		a := l.attrib.Attribution()
		ev.Pattern, ev.Component, ev.Conf = a.Pattern, a.Component, a.Conf
		ev.TableHit, ev.Evicted = a.TableHit, a.Evicted
		ev.NewEntry, ev.AltCorrect = a.NewEntry, a.AltCorrect
	}
	l.sink.Record(ev)
}

// blockSize is how many trace records a lane processes per protected block;
// the context is polled once per block. A power of two matching the old
// single-lane cancellation stride keeps partial results at cancellation
// identical to the previous engine.
const blockSize = 1 << 13

// RunBatchEach simulates each predictor — with its own Options — over the
// trace in a single pass. Lanes are independent: predictors (and their
// shadows) must not share mutable state, or the interleaved updates of one
// lane would corrupt another; nothing else is shared between lanes.
//
// A panic inside one lane's predictor kills that lane only: its partial
// Result must be discarded, and the failure is reported as a LaneError
// (wrapping *PanicError) inside a *BatchError. Lanes absent from the
// BatchError completed normally and their Results are valid.
//
// Cancellation is checked between blocks of records; once ctx is done the
// partial results accumulated so far are returned with an error satisfying
// errors.Is(err, ctx.Err()). Partial results are internally consistent (all
// counters describe the records actually simulated) but must not be mistaken
// for full-trace measurements.
func RunBatchEach(ctx context.Context, ps []core.Predictor, tr trace.Trace, opts []Options) ([]Result, error) {
	if len(opts) != len(ps) {
		return nil, fmt.Errorf("sim: %d predictors but %d option sets", len(ps), len(opts))
	}
	if len(opts) > 1 {
		sinks := make(map[*ptrace.EventSink]int)
		for i, o := range opts {
			if o.Events == nil {
				continue
			}
			if j, dup := sinks[o.Events]; dup {
				return nil, fmt.Errorf("sim: lanes %d and %d share one Options.Events sink; a sink serves exactly one lane", j, i)
			}
			sinks[o.Events] = i
		}
	}
	m := newRunMetrics(telemetry.Default())
	lanes := make([]lane, len(ps))
	for i := range lanes {
		lanes[i].init(ps[i], opts[i], m)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	live := len(lanes)
	for base := 0; base < len(tr) && live > 0; base += blockSize {
		if done != nil {
			select {
			case <-done:
				return collect(lanes, ctx.Err(), m)
			default:
			}
		}
		end := base + blockSize
		if end > len(tr) {
			end = len(tr)
		}
		block := tr[base:end]
		for i := range lanes {
			if l := &lanes[i]; !l.dead {
				l.step(block, m)
				if l.dead {
					live--
				}
			}
		}
	}
	return collect(lanes, nil, m)
}

// collect gathers per-lane results and folds lane failures (and an optional
// cancellation error) into the returned error.
func collect(lanes []lane, cancel error, m *runMetrics) ([]Result, error) {
	results := make([]Result, len(lanes))
	var failed []LaneError
	for i := range lanes {
		lanes[i].finishStats(m)
		results[i] = lanes[i].res
		if lanes[i].err != nil {
			failed = append(failed, LaneError{Lane: i, Err: lanes[i].err})
		}
	}
	var err error
	if failed != nil {
		err = &BatchError{Lanes: failed}
	}
	switch {
	case cancel == nil:
	case err == nil:
		err = cancel // keep the identity of ctx.Err() when it is the only failure
	default:
		err = errors.Join(cancel, err)
	}
	return results, err
}

// RunBatch is RunBatchEach with one shared Options value. Options.Shadow
// and Options.Events must be nil unless there is exactly one lane — a shadow
// trains on (and a sink captures) one lane's branches and cannot serve
// several lanes.
func RunBatch(ctx context.Context, ps []core.Predictor, tr trace.Trace, opts Options) ([]Result, error) {
	if opts.Shadow != nil && len(ps) > 1 {
		return nil, fmt.Errorf("sim: one Options.Shadow cannot serve %d lanes; use RunBatchEach with a shadow per lane", len(ps))
	}
	if opts.Events != nil && len(ps) > 1 {
		return nil, fmt.Errorf("sim: one Options.Events sink cannot serve %d lanes; use RunBatchEach with a sink per lane", len(ps))
	}
	all := make([]Options, len(ps))
	for i := range all {
		all[i] = opts
	}
	return RunBatchEach(ctx, ps, tr, all)
}

// Run simulates the predictor over the trace. Conditional-branch records are
// delivered to predictors implementing core.CondObserver; return records are
// skipped (see the ras package).
func Run(p core.Predictor, tr trace.Trace, opts Options) Result {
	res, _ := RunContext(context.Background(), p, tr, opts)
	return res
}

// RunContext is Run with cooperative cancellation: the context is polled
// every few thousand records and, once it is done, the partial Result
// accumulated so far is returned together with ctx.Err(). It is the
// single-lane form of RunBatchEach and keeps the historical contract that a
// predictor panic propagates to the caller.
func RunContext(ctx context.Context, p core.Predictor, tr trace.Trace, opts Options) (Result, error) {
	rs, err := RunBatchEach(ctx, []core.Predictor{p}, tr, []Options{opts})
	if err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			panic(pe.Val)
		}
		return rs[0], err
	}
	return rs[0], nil
}

// MissRate is a convenience wrapper: simulate and return the misprediction
// percentage with default options.
func MissRate(p core.Predictor, tr trace.Trace) float64 {
	return Run(p, tr, Options{}).MissRate()
}
