package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/trace"
)

// cycleTrace builds n repetitions of a target cycle at one site.
func cycleTrace(pc uint32, targets []uint32, n int) trace.Trace {
	out := make(trace.Trace, 0, n*len(targets))
	for i := 0; i < n; i++ {
		for _, t := range targets {
			out = append(out, trace.Record{PC: pc, Target: t, Kind: trace.IndirectJump, Gap: 10})
		}
	}
	return out
}

func TestRunCountsMisses(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000}, 100)
	res := Run(core.NewBTB(nil, core.UpdateTwoMiss), tr, Options{})
	if res.Executed != 100 {
		t.Fatalf("Executed = %d", res.Executed)
	}
	if res.Misses != 1 || res.NoPrediction != 1 {
		t.Errorf("monomorphic branch: %d misses, %d no-prediction (want 1, 1)", res.Misses, res.NoPrediction)
	}
	if got := res.MissRate(); got != 1.0 {
		t.Errorf("MissRate = %v, want 1.0", got)
	}
}

func TestRunSkipsNonIndirect(t *testing.T) {
	tr := trace.Trace{
		{PC: 0x1000, Target: 0x2000, Kind: trace.Return, Gap: 1},
		{PC: 0x1004, Target: 0x2000, Kind: trace.Cond, Gap: 1},
		{PC: 0x1008, Target: 0x2000, Kind: trace.VirtualCall, Gap: 1},
	}
	res := Run(core.NewBTB(nil, core.UpdateTwoMiss), tr, Options{})
	if res.Executed != 1 {
		t.Errorf("Executed = %d, want 1 (returns and conds excluded)", res.Executed)
	}
}

func TestRunWarmup(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000, 0x4000}, 50)
	pred := core.MustTwoLevel(core.Config{PathLength: 1, Precision: core.AutoPrecision})
	res := Run(pred, tr, Options{Warmup: 30})
	if res.Executed != 120 {
		t.Fatalf("Executed = %d, want 120", res.Executed)
	}
	if res.Misses != 0 {
		t.Errorf("after warmup the p=1 predictor should be perfect, got %d misses", res.Misses)
	}
	if res.Warmup != 30 {
		t.Errorf("Warmup = %d", res.Warmup)
	}
}

func TestRunShadowAttributesCapacityMisses(t *testing.T) {
	// 8 round-robin monomorphic sites against a 4-entry BTB: after the
	// first pass every miss is a pure capacity miss (the unbounded shadow
	// predicts it).
	var tr trace.Trace
	for i := 0; i < 50; i++ {
		for s := uint32(0); s < 8; s++ {
			tr = append(tr, trace.Record{PC: 0x1000 + s*4, Target: 0x2000 + s*0x100, Kind: trace.IndirectCall, Gap: 5})
		}
	}
	subject := core.MustTwoLevel(core.Config{PathLength: 0, Precision: core.AutoPrecision, TableKind: "fullassoc", Entries: 4})
	shadow := core.MustTwoLevel(core.Config{PathLength: 0, Precision: core.AutoPrecision})
	res := Run(subject, tr, Options{Shadow: shadow})
	if res.Misses != res.Executed {
		t.Fatalf("LRU thrash expected: %d/%d misses", res.Misses, res.Executed)
	}
	wantCapacity := res.Misses - 8 // all but the 8 cold misses
	if res.CapacityMisses != wantCapacity {
		t.Errorf("CapacityMisses = %d, want %d", res.CapacityMisses, wantCapacity)
	}
	if res.CapacityRate() <= 0 {
		t.Errorf("CapacityRate = %v", res.CapacityRate())
	}
	if !strings.Contains(res.String(), "capacity") {
		t.Errorf("String() = %q, missing capacity", res.String())
	}
}

func TestRunDeliversCondToObservers(t *testing.T) {
	tc, err := core.NewTargetCache(4, "tagless", 64)
	if err != nil {
		t.Fatal(err)
	}
	// Branch target decided by preceding conditional direction.
	var tr trace.Trace
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		var ct uint32
		target := uint32(0x2000)
		if taken {
			ct = 0x5000
			target = 0x3000
		}
		tr = append(tr,
			trace.Record{PC: 0x4000, Target: ct, Kind: trace.Cond, Gap: 2},
			trace.Record{PC: 0x1000, Target: target, Kind: trace.SwitchJump, Gap: 8},
		)
	}
	res := Run(tc, tr, Options{})
	if res.MissRate() > 10 {
		t.Errorf("target cache with cond feed: %.1f%% misses", res.MissRate())
	}
	// Without the conditional records the same branch is a coin flip.
	tc2, _ := core.NewTargetCache(4, "tagless", 64)
	var noCond trace.Trace
	for _, r := range tr {
		if r.Kind != trace.Cond {
			noCond = append(noCond, r)
		}
	}
	res2 := Run(tc2, noCond, Options{})
	if res2.MissRate() < 25 {
		t.Errorf("cond-blind run unexpectedly good: %.1f%%", res2.MissRate())
	}
}

func TestRunPerSite(t *testing.T) {
	tr := append(cycleTrace(0x1000, []uint32{0x2000}, 10),
		cycleTrace(0x2000, []uint32{0x3000, 0x4000}, 10)...)
	res := Run(core.NewBTB(nil, core.UpdateAlways), tr, Options{Sites: true})
	if len(res.PerSite) != 2 {
		t.Fatalf("PerSite has %d sites", len(res.PerSite))
	}
	easy, hard := res.PerSite[0x1000], res.PerSite[0x2000]
	if easy.Executed != 10 || hard.Executed != 20 {
		t.Errorf("per-site executed: %+v %+v", easy, hard)
	}
	if easy.Misses >= hard.Misses {
		t.Errorf("alternating site should miss more: %d vs %d", easy.Misses, hard.Misses)
	}
}

func TestResultZeroValues(t *testing.T) {
	var r Result
	if r.MissRate() != 0 || r.CapacityRate() != 0 {
		t.Error("zero result rates")
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestMissRateHelper(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000}, 100)
	always := MissRate(core.NewBTB(nil, core.UpdateAlways), tr)
	twobc := MissRate(core.NewBTB(nil, core.UpdateTwoMiss), tr)
	if always <= twobc {
		t.Errorf("update-always (%v) should trail 2bc (%v) on alternation", always, twobc)
	}
}

func TestRunContextCancelled(t *testing.T) {
	// Big enough to span several cancellation-check strides.
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000}, 3*blockSize)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, core.NewBTB(nil, core.UpdateTwoMiss), tr, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Executed >= len(tr) {
		t.Errorf("cancelled run executed all %d branches", res.Executed)
	}
}

func TestRunContextCleanMatchesRun(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000}, 500)
	want := Run(core.NewBTB(nil, core.UpdateTwoMiss), tr, Options{})
	got, err := RunContext(context.Background(), core.NewBTB(nil, core.UpdateTwoMiss), tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Misses != want.Misses || got.Executed != want.Executed {
		t.Errorf("RunContext %+v != Run %+v", got, want)
	}
}
