package sim

import (
	"context"
	"testing"

	"github.com/oocsb/ibp/internal/bits"
	"github.com/oocsb/ibp/internal/core"
	"github.com/oocsb/ibp/internal/telemetry"
	"github.com/oocsb/ibp/internal/trace"
)

// trainedLane returns a lane over p trained on tr (two full passes), wired to
// the given metrics, so a replay of tr is pure steady state.
func trainedLane(p core.Predictor, tr trace.Trace, m *runMetrics) *lane {
	l := &lane{}
	l.init(p, Options{}, m)
	for pass := 0; pass < 2; pass++ {
		l.step(tr, m)
	}
	return l
}

// TestInstrumentedStepZeroAllocs is the overhead guard's allocation half: the
// per-block step with LIVE telemetry handles must not allocate in steady
// state. Together with core's TestSteadyStateZeroAllocs (the uninstrumented
// loop) this pins the invariant that enabling -metrics cannot introduce GC
// pressure into the hot loop.
func TestInstrumentedStepZeroAllocs(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x2040, 0x2080}, 300)
	reg := telemetry.New()
	m := newRunMetrics(reg)
	if m == nil {
		t.Fatal("metrics nil with a live registry")
	}
	p := core.MustTwoLevel(core.Config{PathLength: 4, Precision: core.AutoPrecision,
		Scheme: bits.Reverse, TableKind: "tagless", Entries: 512})
	l := trainedLane(p, tr, m)
	allocs := testing.AllocsPerRun(5, func() {
		l.step(tr, m)
	})
	if allocs != 0 {
		t.Errorf("instrumented step: %v allocs per %d-record block, want 0", allocs, len(tr))
	}
	if reg.Snapshot()["sim_records_total"] == 0 {
		t.Error("metrics did not move during the instrumented steps")
	}
}

// TestRunBatchEachPublishesTelemetry runs the batch engine with the default
// registry enabled and checks both outputs: registry counters and the
// per-Result table snapshot.
func TestRunBatchEachPublishesTelemetry(t *testing.T) {
	telemetry.Enable(nil)
	defer telemetry.Disable()
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000}, 500)
	p := core.MustTwoLevel(core.Config{PathLength: 2, Precision: core.AutoPrecision,
		Scheme: bits.Reverse, TableKind: "assoc2", Entries: 64})
	res, err := RunBatchEach(context.Background(), []core.Predictor{p}, tr, []Options{{}})
	if err != nil {
		t.Fatal(err)
	}
	s := telemetry.Default().Snapshot()
	if s["sim_records_total"] < float64(len(tr)) {
		t.Errorf("sim_records_total = %v, want >= %d", s["sim_records_total"], len(tr))
	}
	if s["sim_predicts_total"] == 0 || s["sim_block_count"] == 0 {
		t.Errorf("counters did not move: %v", s)
	}
	if len(res[0].Tables) == 0 {
		t.Fatalf("no table snapshot on Result with telemetry enabled")
	}
	st := res[0].Tables[0]
	if st.Inserts == 0 || st.Capacity != 64 {
		t.Errorf("table snapshot: %+v", st)
	}
}

// TestResultTablesNilWhenDisabled pins that the table snapshot is a
// telemetry-only extension: with the registry disabled, Results stay exactly
// as before (batch-vs-sequential equivalence tests compare them with
// reflect.DeepEqual).
func TestResultTablesNilWhenDisabled(t *testing.T) {
	tr := cycleTrace(0x1000, []uint32{0x2000}, 100)
	p := core.MustTwoLevel(core.Config{PathLength: 2, Precision: core.AutoPrecision,
		Scheme: bits.Reverse, TableKind: "assoc2", Entries: 64})
	res, err := RunBatchEach(context.Background(), []core.Predictor{p}, tr, []Options{{}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Tables != nil {
		t.Errorf("Tables = %+v with telemetry disabled, want nil", res[0].Tables)
	}
}

// TestTableStatsDeltaAcrossReuse pins the reused-predictor semantics: a
// second batched run on the same (Reset) predictor must report only that
// run's inserts, not the cumulative total since construction.
func TestTableStatsDeltaAcrossReuse(t *testing.T) {
	telemetry.Enable(nil)
	defer telemetry.Disable()
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x3000}, 200)
	p := core.MustTwoLevel(core.Config{PathLength: 2, Precision: core.AutoPrecision,
		Scheme: bits.Reverse, TableKind: "assoc2", Entries: 64})
	first, err := RunBatchEach(context.Background(), []core.Predictor{p}, tr, []Options{{}})
	if err != nil {
		t.Fatal(err)
	}
	p.Reset()
	second, err := RunBatchEach(context.Background(), []core.Predictor{p}, tr, []Options{{}})
	if err != nil {
		t.Fatal(err)
	}
	f, s := first[0].Tables[0], second[0].Tables[0]
	if s.Inserts == 0 || s.Inserts > 2*f.Inserts {
		t.Errorf("reused-predictor delta looks cumulative: first %+v, second %+v", f, s)
	}
	if s.Resets != 0 {
		// The Reset happened between runs, before the second baseline.
		t.Errorf("second run charged with the inter-run reset: %+v", s)
	}
}

// BenchmarkTelemetryOverhead measures the batch engine with telemetry off vs
// on over an identical trace; CI's overhead guard compares the two (the "on"
// case must stay within a few percent of "off", and neither may allocate in
// steady state beyond the per-run setup).
func BenchmarkTelemetryOverhead(b *testing.B) {
	tr := cycleTrace(0x1000, []uint32{0x2000, 0x2040, 0x2080, 0x20C0}, 25000)
	mk := func() core.Predictor {
		return core.MustTwoLevel(core.Config{PathLength: 6, Precision: core.AutoPrecision,
			Scheme: bits.Reverse, TableKind: "assoc4", Entries: 1024})
	}
	run := func(b *testing.B) {
		b.Helper()
		p := mk()
		b.SetBytes(int64(len(tr)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunBatchEach(context.Background(), []core.Predictor{p}, tr, []Options{{}}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		telemetry.Disable()
		run(b)
	})
	b.Run("on", func(b *testing.B) {
		telemetry.Enable(nil)
		defer telemetry.Disable()
		run(b)
	})
}
