// Package stats implements the paper's benchmark grouping (Table 3) and the
// result-table plumbing shared by all experiments: building, averaging,
// rendering and exporting tables of misprediction rates.
package stats

import (
	"fmt"
	"sort"

	"github.com/oocsb/ibp/internal/workload"
)

// Group names per Table 3.
const (
	GroupAVG    = "AVG"        // AVG-100 plus AVG-200 (13 programs)
	GroupOO     = "AVG-OO"     // the OO benchmarks of Table 1
	GroupC      = "AVG-C"      // C benchmarks excluding AVG-infreq
	Group100    = "AVG-100"    // fewer than 100 instructions per indirect
	Group200    = "AVG-200"    // between 100 and 200 instructions per indirect
	GroupInfreq = "AVG-infreq" // more than 1,000 instructions per indirect
)

// GroupNames lists the groups in presentation order.
func GroupNames() []string {
	return []string{GroupAVG, GroupOO, GroupC, Group100, Group200, GroupInfreq}
}

// GroupsFor returns the groups a benchmark belongs to, derived from the
// paper's dynamic instruction densities (Table 3 criteria).
func GroupsFor(m workload.Meta) []string {
	var out []string
	ipi := m.InstrPerIndirect
	switch {
	case ipi > 1000:
		out = append(out, GroupInfreq)
	case ipi < 100:
		out = append(out, GroupAVG, Group100)
	default:
		out = append(out, GroupAVG, Group200)
	}
	if ipi <= 1000 {
		if m.OO() {
			out = append(out, GroupOO)
		} else {
			out = append(out, GroupC)
		}
	}
	return out
}

// InGroup reports whether the benchmark belongs to the named group.
func InGroup(m workload.Meta, group string) bool {
	for _, g := range GroupsFor(m) {
		if g == group {
			return true
		}
	}
	return false
}

// GroupAverage computes the arithmetic mean of per-benchmark values over the
// members of a group (the paper reports arithmetic averages). Benchmarks
// missing from values are skipped.
func GroupAverage(values map[string]float64, group string) (float64, int) {
	sum, n := 0.0, 0
	for _, cfg := range workload.Suite() {
		v, ok := values[cfg.Name]
		if !ok || !InGroup(cfg.Meta, group) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// Average is the arithmetic mean of all values.
func Average(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// WithGroups extends a per-benchmark value map with one entry per group
// average, keyed by the group name.
func WithGroups(values map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(values)+6)
	for k, v := range values {
		out[k] = v
	}
	for _, g := range GroupNames() {
		if avg, n := GroupAverage(values, g); n > 0 {
			out[g] = avg
		}
	}
	return out
}

// SortedKeys returns the map keys sorted: suite benchmarks first in suite
// order, then groups, then anything else alphabetically.
func SortedKeys(values map[string]float64) []string {
	rank := make(map[string]int)
	for i, name := range workload.Names() {
		rank[name] = i
	}
	for i, g := range GroupNames() {
		rank[g] = 100 + i
	}
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ri, iok := rank[keys[i]]
		rj, jok := rank[keys[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return keys[i] < keys[j]
		}
	})
	return keys
}

// MinIndex returns the index of the smallest value (first on ties), or -1
// for an empty slice.
func MinIndex(values []float64) int {
	best := -1
	for i, v := range values {
		if best < 0 || v < values[best] {
			best = i
		}
	}
	return best
}

// Fmt renders a misprediction rate like the paper's tables ("5.95").
func Fmt(v float64) string { return fmt.Sprintf("%.2f", v) }
