package stats

import (
	"bytes"
	"strings"
	"testing"

	"github.com/oocsb/ibp/internal/workload"
)

func metaFor(t *testing.T, name string) workload.Meta {
	t.Helper()
	cfg, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Meta
}

func TestGroupsForMatchesPaperTable3(t *testing.T) {
	// Spot checks against the paper's groups.
	cases := map[string][]string{
		"idl":     {GroupAVG, Group100, GroupOO},
		"xlisp":   {GroupAVG, Group100, GroupC},
		"perl":    {GroupAVG, Group200, GroupC},
		"beta":    {GroupAVG, Group200, GroupOO},
		"gcc":     {GroupAVG, Group200, GroupC},
		"go":      {GroupInfreq},
		"m88ksim": {GroupInfreq},
	}
	for name, want := range cases {
		got := GroupsFor(metaFor(t, name))
		if len(got) != len(want) {
			t.Errorf("%s: groups %v, want %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: groups %v, want %v", name, got, want)
			}
		}
	}
}

func TestGroupSizesMatchPaper(t *testing.T) {
	// Table 3: AVG=13, AVG-OO=9, AVG-C=4, AVG-100=6, AVG-200=7, infreq=4.
	want := map[string]int{
		GroupAVG: 13, GroupOO: 9, GroupC: 4,
		Group100: 6, Group200: 7, GroupInfreq: 4,
	}
	for group, n := range want {
		count := 0
		for _, cfg := range workload.Suite() {
			if InGroup(cfg.Meta, group) {
				count++
			}
		}
		if count != n {
			t.Errorf("group %s has %d members, paper says %d", group, count, n)
		}
	}
}

func TestGroupAverage(t *testing.T) {
	values := map[string]float64{}
	for _, cfg := range workload.Suite() {
		values[cfg.Name] = 10
	}
	values["gcc"] = 23 // AVG (13 members) average shifts by 1
	avg, n := GroupAverage(values, GroupAVG)
	if n != 13 {
		t.Fatalf("AVG n = %d", n)
	}
	if avg != 11 {
		t.Errorf("AVG = %v, want 11", avg)
	}
	if _, n := GroupAverage(map[string]float64{}, GroupAVG); n != 0 {
		t.Errorf("empty values gave n=%d", n)
	}
}

func TestWithGroupsAndSortedKeys(t *testing.T) {
	values := map[string]float64{}
	for _, cfg := range workload.Suite() {
		values[cfg.Name] = 5
	}
	ext := WithGroups(values)
	for _, g := range GroupNames() {
		if v, ok := ext[g]; !ok || v != 5 {
			t.Errorf("group %s = %v, %v", g, v, ok)
		}
	}
	keys := SortedKeys(ext)
	if keys[0] != "idl" {
		t.Errorf("first key %q, want idl", keys[0])
	}
	// Groups come after all benchmarks.
	if keys[len(keys)-6] != GroupAVG {
		t.Errorf("keys tail: %v", keys[len(keys)-6:])
	}
}

func TestAverageAndMinIndex(t *testing.T) {
	if Average(nil) != 0 {
		t.Error("Average(nil)")
	}
	if got := Average([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Average = %v", got)
	}
	if MinIndex(nil) != -1 {
		t.Error("MinIndex(nil)")
	}
	if got := MinIndex([]float64{3, 1, 2, 1}); got != 1 {
		t.Errorf("MinIndex = %d", got)
	}
}

func TestTableSetGet(t *testing.T) {
	tb := NewTable("Figure X", "bench", "a", "b")
	tb.Set("r1", "a", 1.5)
	tb.Set("r1", "b", 2.5)
	tb.Set("r2", "b", 3.5)
	tb.Set("r2", "c", 4.5) // new column on the fly
	if v, ok := tb.Get("r1", "a"); !ok || v != 1.5 {
		t.Errorf("Get r1/a = %v, %v", v, ok)
	}
	if _, ok := tb.Get("r2", "a"); ok {
		t.Error("unset cell reported present")
	}
	if _, ok := tb.Get("nope", "a"); ok {
		t.Error("missing row reported present")
	}
	if len(tb.Cols) != 3 {
		t.Errorf("Cols = %v", tb.Cols)
	}
	row := tb.Row("r2")
	if len(row) != 3 || row[1] != 3.5 || row[2] != 4.5 {
		t.Errorf("Row = %v", row)
	}
	if rows := tb.Rows(); len(rows) != 2 || rows[0] != "r1" {
		t.Errorf("Rows = %v", rows)
	}
}

func TestTableAddRow(t *testing.T) {
	tb := NewTable("T", "k", "x", "y")
	tb.AddRow("r", 1, 2)
	if v, _ := tb.Get("r", "y"); v != 2 {
		t.Errorf("AddRow cell = %v", v)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Figure 9", "bench", "p0", "p1")
	tb.AddRow("gcc", 65.7, 17.5)
	tb.AddRow("AVG", 24.9, 13.1)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"Figure 9", "bench", "gcc", "65.70", "13.10"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "bench", "p0")
	tb.AddRow("gcc", 65.7)
	tb.Set("idl", "p1", 1.0) // leaves p0 unset
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines: %v", lines)
	}
	if lines[0] != "bench,p0,p1" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "gcc,65.7") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "idl,,1") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestFmt(t *testing.T) {
	if Fmt(5.954) != "5.95" {
		t.Errorf("Fmt = %q", Fmt(5.954))
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tb := NewTable("Figure 9", "bench", "p0", "p1")
	tb.AddRow("gcc", 65.7, 17.5)
	tb.Set("idl", "p0", 2.4) // p1 unset
	var buf bytes.Buffer
	if err := tb.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"**Figure 9**",
		"| bench | p0 | p1 |",
		"|---|---|---|",
		"| gcc | 65.70 | 17.50 |",
		"| idl | 2.40 |  |",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
}
