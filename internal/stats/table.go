package stats

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Table is a labelled grid of float64 cells — one experiment output (a paper
// figure's series or a paper table).
type Table struct {
	// Title names the experiment artifact, e.g. "Figure 9".
	Title string
	// RowHeader labels the row-key column, e.g. "benchmark".
	RowHeader string
	// Cols are column labels, e.g. path lengths.
	Cols []string
	rows []string
	data map[string][]float64
}

// NewTable creates an empty table with the given columns.
func NewTable(title, rowHeader string, cols ...string) *Table {
	return &Table{
		Title:     title,
		RowHeader: rowHeader,
		Cols:      cols,
		data:      make(map[string][]float64),
	}
}

// Set stores a single cell, growing the row as needed. Unset cells are NaN.
func (t *Table) Set(row, col string, v float64) {
	ci := t.colIndex(col)
	if ci < 0 {
		t.Cols = append(t.Cols, col)
		ci = len(t.Cols) - 1
	}
	cells, ok := t.data[row]
	if !ok {
		t.rows = append(t.rows, row)
	}
	for len(cells) < len(t.Cols) {
		cells = append(cells, math.NaN())
	}
	cells[ci] = v
	t.data[row] = cells
}

// AddRow appends a full row of cells in column order.
func (t *Table) AddRow(row string, cells ...float64) {
	for i, v := range cells {
		if i < len(t.Cols) {
			t.Set(row, t.Cols[i], v)
		}
	}
}

// Get returns the cell value; ok is false for missing cells.
func (t *Table) Get(row, col string) (float64, bool) {
	ci := t.colIndex(col)
	cells, rok := t.data[row]
	if ci < 0 || !rok || ci >= len(cells) || math.IsNaN(cells[ci]) {
		return 0, false
	}
	return cells[ci], true
}

// Row returns the cells of a row in column order (NaN for unset).
func (t *Table) Row(row string) []float64 {
	cells := t.data[row]
	out := make([]float64, len(t.Cols))
	for i := range out {
		if i < len(cells) {
			out[i] = cells[i]
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// Rows returns the row labels in insertion order.
func (t *Table) Rows() []string { return t.rows }

func (t *Table) colIndex(col string) int {
	for i, c := range t.Cols {
		if c == col {
			return i
		}
	}
	return -1
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintf(bw, "## %s\n", t.Title)
	}
	rowW := len(t.RowHeader)
	for _, r := range t.rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		colW[i] = len(c)
		if colW[i] < 6 {
			colW[i] = 6
		}
	}
	fmt.Fprintf(bw, "%-*s", rowW, t.RowHeader)
	for i, c := range t.Cols {
		fmt.Fprintf(bw, "  %*s", colW[i], c)
	}
	fmt.Fprintln(bw)
	for _, r := range t.rows {
		fmt.Fprintf(bw, "%-*s", rowW, r)
		cells := t.data[r]
		for i := range t.Cols {
			s := ""
			if i < len(cells) && !math.IsNaN(cells[i]) {
				s = strconv.FormatFloat(cells[i], 'f', 2, 64)
			}
			fmt.Fprintf(bw, "  %*s", colW[i], s)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintf(bw, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(bw, "| %s |", t.RowHeader)
	for _, c := range t.Cols {
		fmt.Fprintf(bw, " %s |", c)
	}
	fmt.Fprint(bw, "\n|---|")
	for range t.Cols {
		fmt.Fprint(bw, "---|")
	}
	fmt.Fprintln(bw)
	for _, r := range t.rows {
		fmt.Fprintf(bw, "| %s |", r)
		cells := t.data[r]
		for i := range t.Cols {
			s := ""
			if i < len(cells) && !math.IsNaN(cells[i]) {
				s = strconv.FormatFloat(cells[i], 'f', 2, 64)
			}
			fmt.Fprintf(bw, " %s |", s)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteCSV exports the table as CSV with the row header as the first column.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.RowHeader}, t.Cols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.rows {
		rec := make([]string, 0, len(t.Cols)+1)
		rec = append(rec, r)
		cells := t.data[r]
		for i := range t.Cols {
			if i < len(cells) && !math.IsNaN(cells[i]) {
				rec = append(rec, strconv.FormatFloat(cells[i], 'f', 4, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
