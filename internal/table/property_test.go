package table

import (
	"math/rand/v2"
	"testing"
)

// TestSetAssocFullWaysEqualsFullAssoc: a set-associative table whose
// associativity equals its capacity has a single set with true LRU, i.e. it
// must behave exactly like the fully-associative table on any traffic.
func TestSetAssocFullWaysEqualsFullAssoc(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		const entries = 16
		sa := NewSetAssoc(entries, entries)
		fa := NewFullAssoc(entries)
		rng := rand.New(rand.NewPCG(uint64(trial), 77))
		for step := 0; step < 5000; step++ {
			key := uint64(rng.IntN(64))
			se := sa.Probe(key)
			fe := fa.Probe(key)
			if (se == nil) != (fe == nil) {
				t.Fatalf("trial %d step %d: hit mismatch for key %d", trial, step, key)
			}
			if se == nil {
				tgt := rng.Uint32()
				sa.Insert(key).Target = tgt
				fa.Insert(key).Target = tgt
			} else if se.Target != fe.Target {
				t.Fatalf("trial %d step %d: targets differ: %d vs %d", trial, step, se.Target, fe.Target)
			}
		}
	}
}

// TestVictimPredictsEviction: the entry returned by Victim is exactly the
// entry whose contents vanish after Insert (for tagged tables).
func TestVictimPredictsEviction(t *testing.T) {
	makers := []func() Bounded{
		func() Bounded { return NewSetAssoc(16, 4) },
		func() Bounded { return NewSetAssoc(16, 1) },
		func() Bounded { return NewFullAssoc(16) },
		func() Bounded { return NewTagless(16) },
	}
	for _, mk := range makers {
		tb := mk()
		rng := rand.New(rand.NewPCG(5, 6))
		for step := 0; step < 3000; step++ {
			key := uint64(rng.IntN(80))
			if tb.Probe(key) != nil {
				continue
			}
			victim := tb.Victim(key)
			var victimKey uint64
			hadVictim := victim != nil
			if hadVictim {
				victimKey = victim.Key()
			}
			tb.Insert(key).Target = uint32(step)
			if hadVictim && victimKey != key {
				if _, isTagless := tb.(*Tagless); !isTagless {
					if tb.Probe(victimKey) != nil {
						t.Fatalf("%s: victim key %d still present after Insert(%d)",
							tb.Kind(), victimKey, key)
					}
				}
			}
			if got := tb.Probe(key); got == nil || got.Target != uint32(step) {
				t.Fatalf("%s: inserted key %d not found", tb.Kind(), key)
			}
		}
	}
}

// TestUnboundedIsSupersetOfBounded: any key a bounded table predicts, the
// unbounded table predicts identically when driven with the same traffic
// (bounded tables only lose information, never invent it).
func TestUnboundedIsSupersetOfBounded(t *testing.T) {
	bounded := NewSetAssoc(32, 2)
	unbounded := NewUnbounded64()
	rng := rand.New(rand.NewPCG(8, 9))
	for step := 0; step < 5000; step++ {
		key := uint64(rng.IntN(300))
		be := bounded.Probe(key)
		ue := unbounded.Probe(key)
		if be != nil {
			if ue == nil {
				t.Fatalf("step %d: bounded has key %d, unbounded lost it", step, key)
			}
			if be.Target != ue.Target {
				t.Fatalf("step %d: key %d targets differ: %d vs %d", step, key, be.Target, ue.Target)
			}
		}
		tgt := rng.Uint32()
		if be == nil {
			bounded.Insert(key).Target = tgt
		} else {
			be.Target = tgt
		}
		if ue == nil {
			unbounded.Insert(key).Target = tgt
		} else {
			ue.Target = tgt
		}
	}
}
