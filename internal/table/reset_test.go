package table

import (
	"math/rand/v2"
	"testing"
	"unsafe"
)

// boundedKinds builds one instance of every bounded organization at a small
// capacity, so interference and eviction paths are exercised.
func boundedKinds(t *testing.T) []Bounded {
	t.Helper()
	mk := func(kind string, entries int) Bounded {
		tb, err := New(kind, entries)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	return []Bounded{
		mk("tagless", 32),
		mk("assoc1", 32),
		mk("assoc2", 32),
		mk("assoc4", 32),
		mk("fullassoc", 16),
		mk("unbounded", 0),
	}
}

// TestProbeOrInsertMatchesProbeInsert drives twin tables through the same
// random key stream: one via the combined walk, one via the classic
// Probe-then-Insert pair. Every observable (hit/miss, stored target,
// utilization) must agree — ProbeOrInsert is a pure fusion, not a semantic
// change.
func TestProbeOrInsertMatchesProbeInsert(t *testing.T) {
	a := boundedKinds(t)
	b := boundedKinds(t)
	rng := rand.New(rand.NewPCG(7, 11))
	for i := 0; i < 4000; i++ {
		key := uint64(rng.IntN(96)) // collisions and evictions guaranteed
		target := rng.Uint32()
		for k := range a {
			ea, found := a[k].ProbeOrInsert(key)
			eb := b[k].Probe(key)
			if found != (eb != nil) {
				t.Fatalf("%s: step %d key %d: combined found=%v, probe hit=%v",
					a[k].Kind(), i, key, found, eb != nil)
			}
			if !found {
				eb = b[k].Insert(key)
				ea.Target = target
				eb.Target = target
			} else if ea.Target != eb.Target {
				t.Fatalf("%s: step %d key %d: target %#x != %#x",
					a[k].Kind(), i, key, ea.Target, eb.Target)
			}
		}
		if i%977 == 0 {
			for k := range a {
				a[k].Reset()
				b[k].Reset()
			}
		}
	}
	for k := range a {
		if ua, ub := a[k].Utilization(), b[k].Utilization(); ua != ub {
			t.Errorf("%s: utilization %v != %v", a[k].Kind(), ua, ub)
		}
	}
}

// TestResetEquivalentToFresh is the contract behind predictor reuse across
// sweep cells: a table that has been filled and Reset must behave exactly
// like a newly constructed one — same hits, misses, LRU evictions, and
// victim choices — even for the generation-stamped tables whose Reset does
// not touch the slot array.
func TestResetEquivalentToFresh(t *testing.T) {
	used := boundedKinds(t)
	rng := rand.New(rand.NewPCG(1, 2))
	for _, tb := range used {
		for i := 0; i < 2000; i++ {
			e, found := tb.ProbeOrInsert(uint64(rng.IntN(80)))
			if !found {
				e.Target = rng.Uint32()
			}
		}
		tb.Reset()
	}
	fresh := boundedKinds(t)
	for i := 0; i < 4000; i++ {
		key := uint64(rng.IntN(96))
		target := rng.Uint32()
		for k := range used {
			kind := used[k].Kind()
			va, vb := used[k].Victim(key), fresh[k].Victim(key)
			if (va == nil) != (vb == nil) {
				t.Fatalf("%s: step %d key %d: victim %v vs fresh %v", kind, i, key, va, vb)
			}
			if va != nil && va.Key() != vb.Key() {
				t.Fatalf("%s: step %d key %d: victim key %d != %d", kind, i, key, va.Key(), vb.Key())
			}
			ea, founda := used[k].ProbeOrInsert(key)
			eb, foundb := fresh[k].ProbeOrInsert(key)
			if founda != foundb {
				t.Fatalf("%s: step %d key %d: reset table found=%v, fresh found=%v",
					kind, i, key, founda, foundb)
			}
			if !founda {
				ea.Target = target
				eb.Target = target
			} else if ea.Target != eb.Target {
				t.Fatalf("%s: step %d key %d: target %#x != %#x", kind, i, key, ea.Target, eb.Target)
			}
			if ua, ub := used[k].Utilization(), fresh[k].Utilization(); ua != ub {
				t.Fatalf("%s: step %d: utilization %v != %v", kind, i, ua, ub)
			}
		}
	}
}

// TestResetGenerationWraparound pins the wrap hardening: when the generation
// counter overflows back to zero, the slots must be cleared for real or
// entries stamped gen=0 eons ago would resurrect.
func TestResetGenerationWraparound(t *testing.T) {
	tl := NewTagless(8)
	tl.Insert(3).Target = 0xAB // stamped with gen 0
	tl.gen = ^uint32(0)        // simulate 2^32-1 resets
	if tl.Probe(3) != nil {
		t.Fatal("tagless: stale generation visible before wrap test setup")
	}
	tl.Reset() // wraps to 0
	if tl.gen != 0 {
		t.Fatalf("tagless: gen = %d after wrap", tl.gen)
	}
	if e := tl.Probe(3); e != nil {
		t.Fatalf("tagless: pre-wrap entry resurrected: %+v", e)
	}

	sa := NewSetAssoc(8, 2)
	sa.Insert(5).Target = 0xCD
	sa.gen = ^uint32(0)
	sa.Reset()
	if sa.gen != 0 {
		t.Fatalf("setassoc: gen = %d after wrap", sa.gen)
	}
	if e := sa.Probe(5); e != nil {
		t.Fatalf("setassoc: pre-wrap entry resurrected: %+v", e)
	}
}

// TestEntrySize pins Entry at 24 bytes: the generation stamp must live in
// former padding, not grow the struct the hot tables are arrays of.
func TestEntrySize(t *testing.T) {
	if s := unsafe.Sizeof(Entry{}); s != 24 {
		t.Fatalf("Entry is %d bytes, want 24", s)
	}
}
