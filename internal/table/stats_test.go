package table

import (
	"testing"
)

// TestTaglessStats pins the eviction semantics of the tagless table: an
// explicit Insert over a live different-key entry is an eviction; a
// ProbeOrInsert of a live slot is a hit regardless of key (the tagless
// interference property) and must count nothing.
func TestTaglessStats(t *testing.T) {
	tb := NewTagless(8)
	tb.Insert(0) // empty slot: insert, no eviction
	if s := tb.Stats(); s.Inserts != 1 || s.Evictions != 0 {
		t.Fatalf("first insert: %+v", s)
	}
	tb.Insert(8) // same slot (8 & 7 == 0), different key: eviction
	if s := tb.Stats(); s.Inserts != 2 || s.Evictions != 1 {
		t.Fatalf("conflicting insert: %+v", s)
	}
	tb.Insert(8) // same key re-insert: not an eviction
	if s := tb.Stats(); s.Inserts != 3 || s.Evictions != 1 {
		t.Fatalf("same-key insert: %+v", s)
	}
	if _, hit := tb.ProbeOrInsert(16); !hit {
		t.Fatal("tagless ProbeOrInsert of a live slot must hit")
	}
	if s := tb.Stats(); s.Inserts != 3 {
		t.Fatalf("hit must not count as insert: %+v", s)
	}
	tb.Reset()
	s := tb.Stats()
	if s.Resets != 1 || s.Occupancy != 0 {
		t.Fatalf("after reset: %+v", s)
	}
	if _, hit := tb.ProbeOrInsert(16); hit {
		t.Fatal("post-reset slot must miss")
	}
	if s = tb.Stats(); s.Inserts != 4 {
		t.Fatalf("post-reset miss must insert: %+v", s)
	}
	if s.Kind != "tagless" || s.Capacity != 8 {
		t.Errorf("identity: %+v", s)
	}
}

// TestBoundedStatsFillAndEvict drives every bounded organization past
// capacity and checks the common invariants: inserts counted, evictions
// appear once the table is full, occupancy reaches 1. The tagless table is
// the exception on evictions: ProbeOrInsert of a live slot is a hit by
// design (no tags to mismatch), so only explicit Insert evicts — covered by
// TestTaglessStats.
func TestBoundedStatsFillAndEvict(t *testing.T) {
	for _, kind := range []string{"tagless", "assoc1", "assoc2", "assoc4", "fullassoc"} {
		t.Run(kind, func(t *testing.T) {
			tb, err := New(kind, 16)
			if err != nil {
				t.Fatal(err)
			}
			// Two full passes over 2× capacity of distinct keys: every
			// set is exercised and, for the tagged tables, the conflicting
			// keys must displace live entries.
			for pass := 0; pass < 2; pass++ {
				for k := uint64(0); k < 32; k++ {
					tb.ProbeOrInsert(k * 1315423911)
				}
			}
			s := tb.Stats()
			if s.Inserts == 0 {
				t.Fatalf("no inserts counted: %+v", s)
			}
			if kind != "tagless" && s.Evictions == 0 {
				t.Errorf("2× capacity stream produced no evictions: %+v", s)
			}
			if s.Evictions > s.Inserts {
				t.Errorf("more evictions than inserts: %+v", s)
			}
			if s.Occupancy != 1 {
				t.Errorf("occupancy = %v after overfilling, want 1", s.Occupancy)
			}
			if s.Capacity != 16 || s.Kind != kind {
				t.Errorf("identity: %+v", s)
			}
		})
	}
}

func TestUnboundedStats(t *testing.T) {
	tb := NewUnbounded64()
	for k := uint64(0); k < 10; k++ {
		tb.ProbeOrInsert(k)
	}
	s := tb.Stats()
	if s.Inserts != 10 || s.Evictions != 0 || s.Capacity != -1 || s.Occupancy != 1 {
		t.Errorf("unbounded64: %+v", s)
	}
	tb.Reset()
	if s = tb.Stats(); s.Resets != 1 {
		t.Errorf("unbounded64 reset: %+v", s)
	}

	str := NewUnboundedStr()
	e, hit := str.ProbeOrInsert([]byte("abc"))
	if hit || e == nil {
		t.Fatal("fresh key must miss")
	}
	if s := str.Stats(); s.Inserts != 1 || s.Kind != "exact" || s.Capacity != -1 {
		t.Errorf("unboundedStr: %+v", s)
	}
}

func TestStatsSub(t *testing.T) {
	cur := Stats{Kind: "assoc2", Capacity: 64, Occupancy: 0.5, Inserts: 100, Evictions: 30, Resets: 4}
	prev := Stats{Inserts: 60, Evictions: 10, Resets: 1}
	d := cur.Sub(prev)
	if d.Inserts != 40 || d.Evictions != 20 || d.Resets != 3 {
		t.Errorf("Sub counters: %+v", d)
	}
	// Occupancy and identity are point-in-time, kept from cur.
	if d.Occupancy != 0.5 || d.Kind != "assoc2" || d.Capacity != 64 {
		t.Errorf("Sub identity: %+v", d)
	}
}

func TestStatsMerge(t *testing.T) {
	got := Merge([]Stats{
		{Kind: "assoc2", Capacity: 64, Occupancy: 0.5, Inserts: 10, Evictions: 2},
		{Kind: "assoc2", Capacity: 64, Occupancy: 1.0, Inserts: 20, Resets: 1},
	})
	if got.Kind != "assoc2" || got.Capacity != 128 || got.Occupancy != 0.75 ||
		got.Inserts != 30 || got.Evictions != 2 || got.Resets != 1 {
		t.Errorf("homogeneous merge: %+v", got)
	}

	mixed := Merge([]Stats{
		{Kind: "btb", Capacity: 512, Occupancy: 0.25, Inserts: 5},
		{Kind: "exact", Capacity: -1, Occupancy: 1, Inserts: 7},
	})
	if mixed.Kind != "mixed" || mixed.Capacity != -1 || mixed.Occupancy != 0.25 ||
		mixed.Inserts != 12 {
		t.Errorf("mixed merge: %+v", mixed)
	}

	if all := Merge([]Stats{{Capacity: -1, Occupancy: 1}}); all.Occupancy != 1 {
		t.Errorf("all-unbounded merge occupancy = %v, want 1", all.Occupancy)
	}
	if empty := Merge(nil); empty != (Stats{}) {
		t.Errorf("empty merge: %+v", empty)
	}
}

// TestResetStatsIndependence guards the lane-baseline mechanism: counters
// are cumulative across Reset (they are provenance, not state), while Reset
// still restores predictive state exactly — which the reset_test.go
// equivalence tests verify separately.
func TestResetStatsIndependence(t *testing.T) {
	tb := NewTagless(8)
	tb.Insert(1)
	tb.Insert(2)
	before := tb.Stats()
	tb.Reset()
	after := tb.Stats()
	if after.Inserts != before.Inserts {
		t.Errorf("Reset clobbered insert count: %+v -> %+v", before, after)
	}
	if after.Resets != before.Resets+1 {
		t.Errorf("Reset not counted: %+v -> %+v", before, after)
	}
	d := after.Sub(before)
	if d.Inserts != 0 || d.Resets != 1 {
		t.Errorf("delta across reset: %+v", d)
	}
}
